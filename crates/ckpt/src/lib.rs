//! # ckpt — deterministic checkpoint/restart
//!
//! The durability layer of the stack (DESIGN §10): production plasma
//! campaigns on preemptible heterogeneous nodes must survive a mid-run
//! kill, so VPIC ships checkpoint/restart as a first-class feature and so
//! does this reproduction. The crate is deliberately low-level and
//! simulation-agnostic — it defines the container, not the contents:
//!
//! * [`format`] — the versioned `VPCK` snapshot container: named sections,
//!   each CRC-32-checked, decoded strictly so *every* corruption maps to a
//!   typed [`RestoreError`] (`Truncated` / `BadCrc` / `VersionMismatch` /
//!   `SchemaDrift`), never a silently-wrong `Ok`.
//! * [`file`] — atomic persistence: write temp → fsync → rotate the old
//!   snapshot to `.prev` → rename. A kill at any instant leaves a loadable
//!   snapshot; [`file::load_with_fallback`] encodes the recovery policy.
//! * [`faults`] — the injection harness the contract is tested against:
//!   truncate at any byte, flip any bit, die mid-write, kill a pooled
//!   worker ([`pk::pool::WorkerPool`]) at a chosen step.
//!
//! What goes *into* the sections — fields, particles, tuner state,
//! telemetry baselines — is owned by `vpic-core::checkpoint`, which keeps
//! this crate's guarantees checkable in isolation (see the exhaustive
//! bit-flip tests in [`format`]).

pub mod crc32;
pub mod faults;
pub mod file;
pub mod format;

pub use file::{load, load_with_fallback, save_atomic, save_bytes_atomic};
pub use format::{RestoreError, SectionBuf, SectionReader, Snapshot, Writer, MAGIC, VERSION};
