//! Atomic on-disk persistence with one-deep rotation.
//!
//! A save writes `<path>.tmp`, fsyncs it, rotates any existing snapshot to
//! `<path>.prev`, then renames the temp file into place. A process killed
//! at *any* instant therefore leaves either the old snapshot, the new one,
//! or (between the two renames) only `<path>.prev` — never a half-written
//! file under the primary name. [`load_with_fallback`] makes the recovery
//! policy explicit: try the primary, and on any typed failure fall back to
//! the previous good snapshot.

use crate::format::{RestoreError, Snapshot, Writer};
use std::fs::{self, File};
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// The temp-file name a save stages through (`<path>.tmp`).
pub fn tmp_path(path: &Path) -> PathBuf {
    let mut name = path.as_os_str().to_owned();
    name.push(".tmp");
    PathBuf::from(name)
}

/// Where the previous good snapshot is rotated to (`<path>.prev`).
pub fn prev_path(path: &Path) -> PathBuf {
    let mut name = path.as_os_str().to_owned();
    name.push(".prev");
    PathBuf::from(name)
}

/// Atomically persist raw snapshot bytes to `path` (write temp → fsync →
/// rotate old → rename). Returns the byte count written.
pub fn save_bytes_atomic(path: &Path, bytes: &[u8]) -> std::io::Result<u64> {
    let tmp = tmp_path(path);
    {
        let mut f = File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
    }
    if path.exists() {
        fs::rename(path, prev_path(path))?;
    }
    fs::rename(&tmp, path)?;
    Ok(bytes.len() as u64)
}

/// Atomically persist a [`Writer`]'s snapshot to `path`.
pub fn save_atomic(path: &Path, writer: &Writer) -> std::io::Result<u64> {
    save_bytes_atomic(path, &writer.to_bytes())
}

/// Load and verify the snapshot at `path`.
pub fn load(path: &Path) -> Result<Snapshot, RestoreError> {
    Snapshot::from_bytes(&fs::read(path)?)
}

/// Load `path`; on any failure fall back to the rotated `<path>.prev`.
/// Returns the snapshot and whether the fallback was taken. When both
/// fail, the *primary* error is returned (it names the fresher fault).
pub fn load_with_fallback(path: &Path) -> Result<(Snapshot, bool), RestoreError> {
    match load(path) {
        Ok(snap) => Ok((snap, false)),
        Err(primary) => match load(&prev_path(path)) {
            Ok(snap) => Ok((snap, true)),
            Err(_) => Err(primary),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("ckpt-file-{tag}-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn snapshot_with(step: u64) -> Writer {
        let mut w = Writer::new();
        w.section("STEP").put_u64(step);
        w
    }

    fn step_of(snap: &Snapshot) -> u64 {
        snap.section("STEP").unwrap().get_u64().unwrap()
    }

    #[test]
    fn save_load_round_trip() {
        let dir = scratch_dir("roundtrip");
        let path = dir.join("a.vpck");
        let n = save_atomic(&path, &snapshot_with(42)).unwrap();
        assert!(n > 0);
        assert_eq!(step_of(&load(&path).unwrap()), 42);
        assert!(!tmp_path(&path).exists(), "temp file must not survive a save");
        fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn second_save_rotates_the_previous_snapshot() {
        let dir = scratch_dir("rotate");
        let path = dir.join("a.vpck");
        save_atomic(&path, &snapshot_with(1)).unwrap();
        save_atomic(&path, &snapshot_with(2)).unwrap();
        assert_eq!(step_of(&load(&path).unwrap()), 2);
        assert_eq!(step_of(&load(&prev_path(&path)).unwrap()), 1);
        fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn corrupt_primary_falls_back_to_previous() {
        let dir = scratch_dir("fallback");
        let path = dir.join("a.vpck");
        save_atomic(&path, &snapshot_with(1)).unwrap();
        save_atomic(&path, &snapshot_with(2)).unwrap();
        // corrupt the primary in place (bit flip mid-file)
        let mut bytes = fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x10;
        fs::write(&path, &bytes).unwrap();
        let (snap, fell_back) = load_with_fallback(&path).unwrap();
        assert!(fell_back);
        assert_eq!(step_of(&snap), 1);
        fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn missing_primary_and_previous_reports_the_primary_error() {
        let dir = scratch_dir("missing");
        let path = dir.join("never-written.vpck");
        match load_with_fallback(&path) {
            Err(RestoreError::Io(_)) => {}
            other => panic!("expected Io error, got {other:?}"),
        }
        fs::remove_dir_all(dir).unwrap();
    }
}
