//! CRC-32 (IEEE 802.3, the zlib/PNG polynomial), table-driven and
//! dependency-free. Every checkpoint section carries one of these over its
//! name + payload, so any single corrupted bit inside a section is caught
//! deterministically at restore time.

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = build_table();

/// CRC-32 of `bytes` (init `!0`, reflected, final xor `!0`).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = !0u32;
    for &b in bytes {
        c = TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_the_standard_check_value() {
        // the canonical CRC-32 test vector
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn any_single_bit_flip_changes_the_crc() {
        let data: Vec<u8> = (0u16..300).map(|i| (i % 251) as u8).collect();
        let clean = crc32(&data);
        for byte in [0usize, 1, 100, 299] {
            for bit in 0..8 {
                let mut flipped = data.clone();
                flipped[byte] ^= 1 << bit;
                assert_ne!(crc32(&flipped), clean, "flip at {byte}:{bit} undetected");
            }
        }
    }
}
