//! The `VPCK` snapshot container: a versioned header followed by named,
//! length-prefixed, CRC-checked sections.
//!
//! ```text
//! magic  "VPCK"                     4 bytes
//! version u32 LE                    4 bytes
//! section_count u32 LE              4 bytes
//! per section:
//!   name_len u16 LE + name bytes
//!   payload_len u64 LE + payload bytes
//!   crc32 u32 LE                    over name bytes + payload bytes
//! ```
//!
//! The reader consumes the *entire* byte stream strictly: a short stream
//! is [`RestoreError::Truncated`], a corrupted section is
//! [`RestoreError::BadCrc`], an unknown version is
//! [`RestoreError::VersionMismatch`], and anything else that does not
//! parse — bad magic, trailing bytes, duplicate or missing sections, a
//! payload that decodes to the wrong length — is
//! [`RestoreError::SchemaDrift`]. Between them those four arms cover every
//! possible corruption of a well-formed snapshot: no input maps to a
//! silently-wrong `Ok`.
//!
//! All scalars are little-endian; floats travel as their IEEE-754 bit
//! patterns so a checkpoint→restore round trip is bit-exact by
//! construction.

use crate::crc32::crc32;
use std::fmt;
use std::io::{Read, Write};

/// Leading magic of every snapshot.
pub const MAGIC: [u8; 4] = *b"VPCK";

/// Current snapshot format version. Bump on any layout change; readers
/// reject other versions with [`RestoreError::VersionMismatch`] rather
/// than guessing.
pub const VERSION: u32 = 1;

/// Why a snapshot could not be restored. Every injected fault — byte
/// truncation, bit flips, interrupted writes — maps to exactly one of
/// these; restore never silently diverges.
#[derive(Debug)]
pub enum RestoreError {
    /// The byte stream ends before the announced content does.
    Truncated,
    /// A section's stored CRC-32 does not match its content.
    BadCrc {
        /// Name of the failing section (possibly garbled by the fault).
        section: String,
    },
    /// The snapshot was written by a different format version.
    VersionMismatch {
        /// Version found in the header.
        found: u32,
        /// Version this reader understands.
        expected: u32,
    },
    /// The bytes parse but do not describe the expected schema: bad
    /// magic, trailing bytes, duplicate/missing/misshapen sections, or a
    /// decoded value that is out of range for the state being restored.
    SchemaDrift(String),
    /// The underlying reader/writer failed.
    Io(std::io::Error),
}

impl fmt::Display for RestoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RestoreError::Truncated => write!(f, "snapshot truncated"),
            RestoreError::BadCrc { section } => {
                write!(f, "CRC mismatch in section {section:?}")
            }
            RestoreError::VersionMismatch { found, expected } => {
                write!(f, "snapshot version {found} (reader supports {expected})")
            }
            RestoreError::SchemaDrift(what) => write!(f, "schema drift: {what}"),
            RestoreError::Io(e) => write!(f, "snapshot I/O: {e}"),
        }
    }
}

impl std::error::Error for RestoreError {}

impl From<std::io::Error> for RestoreError {
    fn from(e: std::io::Error) -> Self {
        RestoreError::Io(e)
    }
}

/// One section's payload being built. Scalars append little-endian;
/// floats append as IEEE bit patterns; slices are length-prefixed.
#[derive(Debug, Default)]
pub struct SectionBuf {
    buf: Vec<u8>,
}

impl SectionBuf {
    /// Append one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append a bool as one byte.
    pub fn put_bool(&mut self, v: bool) {
        self.buf.push(v as u8);
    }

    /// Append a `u32`, little-endian.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `u64`, little-endian.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `usize` as `u64`.
    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Append an `f32` as its bit pattern (bit-exact round trip).
    pub fn put_f32(&mut self, v: f32) {
        self.put_u32(v.to_bits());
    }

    /// Append an `f64` as its bit pattern.
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Append a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, s: &str) {
        self.put_u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Append a length-prefixed `f32` slice.
    pub fn put_f32s(&mut self, v: &[f32]) {
        self.put_u64(v.len() as u64);
        for &x in v {
            self.put_u32(x.to_bits());
        }
    }

    /// Append a length-prefixed `f64` slice.
    pub fn put_f64s(&mut self, v: &[f64]) {
        self.put_u64(v.len() as u64);
        for &x in v {
            self.put_u64(x.to_bits());
        }
    }

    /// Append a length-prefixed `u32` slice.
    pub fn put_u32s(&mut self, v: &[u32]) {
        self.put_u64(v.len() as u64);
        for &x in v {
            self.put_u32(x);
        }
    }

    /// Append raw bytes verbatim (no length prefix). For re-encoding a
    /// section payload unchanged — e.g. fault harnesses building a
    /// container with one section tampered and the rest intact.
    pub fn put_raw(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been appended.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

/// Builds one snapshot: named sections in insertion order.
#[derive(Debug, Default)]
pub struct Writer {
    sections: Vec<(String, SectionBuf)>,
}

impl Writer {
    /// An empty snapshot writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Start (and return) a new section. Names must be unique per
    /// snapshot; the reader rejects duplicates.
    pub fn section(&mut self, name: &str) -> &mut SectionBuf {
        debug_assert!(
            self.sections.iter().all(|(n, _)| n != name),
            "duplicate checkpoint section {name:?}"
        );
        self.sections.push((name.to_string(), SectionBuf::default()));
        &mut self.sections.last_mut().expect("just pushed").1
    }

    /// Serialize the snapshot to a byte vector.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(
            12 + self.sections.iter().map(|(n, s)| 18 + n.len() + s.buf.len()).sum::<usize>(),
        );
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&VERSION.to_le_bytes());
        out.extend_from_slice(&(self.sections.len() as u32).to_le_bytes());
        for (name, sec) in &self.sections {
            out.extend_from_slice(&(name.len() as u16).to_le_bytes());
            out.extend_from_slice(name.as_bytes());
            out.extend_from_slice(&(sec.buf.len() as u64).to_le_bytes());
            out.extend_from_slice(&sec.buf);
            let mut crc_input = Vec::with_capacity(name.len() + sec.buf.len());
            crc_input.extend_from_slice(name.as_bytes());
            crc_input.extend_from_slice(&sec.buf);
            out.extend_from_slice(&crc32(&crc_input).to_le_bytes());
        }
        out
    }

    /// Serialize into `w`, returning the byte count.
    pub fn write_to<W: Write>(&self, w: &mut W) -> std::io::Result<u64> {
        let bytes = self.to_bytes();
        w.write_all(&bytes)?;
        Ok(bytes.len() as u64)
    }
}

/// A parsed, CRC-verified snapshot.
#[derive(Debug)]
pub struct Snapshot {
    /// Format version found in the header (always [`VERSION`] today).
    pub version: u32,
    sections: Vec<(String, Vec<u8>)>,
}

/// Strict little-endian cursor over the raw container bytes.
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], RestoreError> {
        let end = self.pos.checked_add(n).ok_or(RestoreError::Truncated)?;
        if end > self.bytes.len() {
            return Err(RestoreError::Truncated);
        }
        let s = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u16(&mut self) -> Result<u16, RestoreError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("2 bytes")))
    }

    fn u32(&mut self) -> Result<u32, RestoreError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    fn u64(&mut self) -> Result<u64, RestoreError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }
}

impl Snapshot {
    /// Parse and CRC-verify a snapshot from raw bytes. Strict: trailing
    /// bytes after the last section are rejected.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, RestoreError> {
        let mut c = Cursor { bytes, pos: 0 };
        let magic = c.take(4)?;
        if magic != MAGIC {
            return Err(RestoreError::SchemaDrift(format!("bad magic {magic:02x?}")));
        }
        let version = c.u32()?;
        if version != VERSION {
            return Err(RestoreError::VersionMismatch { found: version, expected: VERSION });
        }
        let count = c.u32()? as usize;
        let mut sections: Vec<(String, Vec<u8>)> = Vec::new();
        for _ in 0..count {
            let name_len = c.u16()? as usize;
            let name_bytes = c.take(name_len)?;
            let payload_len = usize::try_from(c.u64()?).map_err(|_| RestoreError::Truncated)?;
            let payload = c.take(payload_len)?;
            let stored_crc = c.u32()?;
            let mut crc_input = Vec::with_capacity(name_len + payload_len);
            crc_input.extend_from_slice(name_bytes);
            crc_input.extend_from_slice(payload);
            let name = String::from_utf8_lossy(name_bytes).into_owned();
            if crc32(&crc_input) != stored_crc {
                return Err(RestoreError::BadCrc { section: name });
            }
            if sections.iter().any(|(n, _)| *n == name) {
                return Err(RestoreError::SchemaDrift(format!("duplicate section {name:?}")));
            }
            sections.push((name, payload.to_vec()));
        }
        if c.pos != bytes.len() {
            return Err(RestoreError::SchemaDrift(format!(
                "{} trailing byte(s) after the last section",
                bytes.len() - c.pos
            )));
        }
        Ok(Snapshot { version, sections })
    }

    /// Read the whole stream and parse it. Note a truncated *file* read
    /// returns fewer bytes without an I/O error, so truncation still
    /// surfaces as [`RestoreError::Truncated`], not `Io`.
    pub fn read_from<R: Read>(r: &mut R) -> Result<Self, RestoreError> {
        let mut bytes = Vec::new();
        r.read_to_end(&mut bytes)?;
        Self::from_bytes(&bytes)
    }

    /// Section names, in stored order.
    pub fn section_names(&self) -> impl Iterator<Item = &str> {
        self.sections.iter().map(|(n, _)| n.as_str())
    }

    /// True when the snapshot carries the named section.
    pub fn has_section(&self, name: &str) -> bool {
        self.sections.iter().any(|(n, _)| n == name)
    }

    /// Open the named section for strict decoding. A missing section is
    /// [`RestoreError::SchemaDrift`].
    pub fn section<'a>(&'a self, name: &str) -> Result<SectionReader<'a>, RestoreError> {
        self.sections
            .iter()
            .find(|(n, _)| n == name)
            .map(|(n, payload)| SectionReader { name: n, buf: payload, pos: 0 })
            .ok_or_else(|| RestoreError::SchemaDrift(format!("missing section {name:?}")))
    }
}

/// Strict decoder over one section's payload. Every getter fails with
/// [`RestoreError::SchemaDrift`] when the payload runs short, and
/// [`SectionReader::finish`] fails when bytes are left over — so a
/// payload either decodes completely or reports a typed error.
pub struct SectionReader<'a> {
    name: &'a str,
    buf: &'a [u8],
    pos: usize,
}

impl SectionReader<'_> {
    fn take(&mut self, n: usize) -> Result<&[u8], RestoreError> {
        let end = self.pos.checked_add(n);
        match end {
            Some(end) if end <= self.buf.len() => {
                let s = &self.buf[self.pos..end];
                self.pos = end;
                Ok(s)
            }
            _ => Err(RestoreError::SchemaDrift(format!(
                "section {:?} exhausted at byte {} (wanted {n} more)",
                self.name, self.pos
            ))),
        }
    }

    /// Decode one byte.
    pub fn get_u8(&mut self) -> Result<u8, RestoreError> {
        Ok(self.take(1)?[0])
    }

    /// Decode a bool; bytes other than 0/1 are schema drift.
    pub fn get_bool(&mut self) -> Result<bool, RestoreError> {
        match self.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            v => Err(self.drift(format!("invalid bool byte {v}"))),
        }
    }

    /// Decode a `u32`.
    pub fn get_u32(&mut self) -> Result<u32, RestoreError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    /// Decode a `u64`.
    pub fn get_u64(&mut self) -> Result<u64, RestoreError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    /// Decode a `usize` (stored as `u64`); values beyond the platform's
    /// range are schema drift.
    pub fn get_usize(&mut self) -> Result<usize, RestoreError> {
        let v = self.get_u64()?;
        usize::try_from(v).map_err(|_| self.drift(format!("usize out of range: {v}")))
    }

    /// Decode an `f32` from its bit pattern.
    pub fn get_f32(&mut self) -> Result<f32, RestoreError> {
        Ok(f32::from_bits(self.get_u32()?))
    }

    /// Decode an `f64` from its bit pattern.
    pub fn get_f64(&mut self) -> Result<f64, RestoreError> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// Decode a length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> Result<String, RestoreError> {
        let len = self.get_u32()? as usize;
        let name = self.name;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| RestoreError::SchemaDrift(format!("section {name:?}: non-UTF-8 string")))
    }

    /// Decode a length-prefixed `f32` slice.
    pub fn get_f32s(&mut self) -> Result<Vec<f32>, RestoreError> {
        let len = self.checked_len(4)?;
        (0..len).map(|_| self.get_f32()).collect()
    }

    /// Decode a length-prefixed `f64` slice.
    pub fn get_f64s(&mut self) -> Result<Vec<f64>, RestoreError> {
        let len = self.checked_len(8)?;
        (0..len).map(|_| self.get_f64()).collect()
    }

    /// Decode a length-prefixed `u32` slice.
    pub fn get_u32s(&mut self) -> Result<Vec<u32>, RestoreError> {
        let len = self.checked_len(4)?;
        (0..len).map(|_| self.get_u32()).collect()
    }

    /// A slice length that provably fits in the remaining payload — so a
    /// corrupt length fails fast instead of attempting a huge allocation.
    fn checked_len(&mut self, elem_size: usize) -> Result<usize, RestoreError> {
        let len = self.get_usize()?;
        let remaining = self.buf.len() - self.pos;
        if len.checked_mul(elem_size).is_none_or(|bytes| bytes > remaining) {
            return Err(self.drift(format!("slice length {len} exceeds payload")));
        }
        Ok(len)
    }

    /// Take every remaining payload byte verbatim. Pairs with
    /// [`SectionBuf::put_raw`] for re-encoding a section unchanged.
    pub fn take_rest(&mut self) -> &[u8] {
        let rest = &self.buf[self.pos..];
        self.pos = self.buf.len();
        rest
    }

    /// Assert the payload was fully consumed.
    pub fn finish(self) -> Result<(), RestoreError> {
        if self.pos != self.buf.len() {
            return Err(RestoreError::SchemaDrift(format!(
                "section {:?}: {} undecoded byte(s)",
                self.name,
                self.buf.len() - self.pos
            )));
        }
        Ok(())
    }

    fn drift(&self, what: String) -> RestoreError {
        RestoreError::SchemaDrift(format!("section {:?}: {what}", self.name))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Writer {
        let mut w = Writer::new();
        let s = w.section("GRID");
        s.put_u64(8);
        s.put_f32(0.125);
        let s = w.section("DATA");
        s.put_f32s(&[1.0, -2.5, f32::NAN]);
        s.put_u32s(&[7, 11]);
        s.put_str("electron");
        w
    }

    #[test]
    fn round_trip_is_bit_exact() {
        let bytes = sample().to_bytes();
        let snap = Snapshot::from_bytes(&bytes).unwrap();
        assert_eq!(snap.version, VERSION);
        assert_eq!(snap.section_names().collect::<Vec<_>>(), ["GRID", "DATA"]);
        let mut g = snap.section("GRID").unwrap();
        assert_eq!(g.get_u64().unwrap(), 8);
        assert_eq!(g.get_f32().unwrap().to_bits(), 0.125f32.to_bits());
        g.finish().unwrap();
        let mut d = snap.section("DATA").unwrap();
        let f = d.get_f32s().unwrap();
        assert_eq!(f.len(), 3);
        assert_eq!(f[2].to_bits(), f32::NAN.to_bits(), "NaN payload preserved bit-exactly");
        assert_eq!(d.get_u32s().unwrap(), vec![7, 11]);
        assert_eq!(d.get_str().unwrap(), "electron");
        d.finish().unwrap();
    }

    #[test]
    fn every_truncation_point_is_a_typed_error() {
        let bytes = sample().to_bytes();
        for keep in 0..bytes.len() {
            let err = Snapshot::from_bytes(&bytes[..keep])
                .expect_err("truncated snapshot must not parse");
            assert!(
                matches!(err, RestoreError::Truncated | RestoreError::SchemaDrift(_)),
                "keep={keep}: unexpected {err}"
            );
        }
    }

    #[test]
    fn every_single_bit_flip_is_a_typed_error() {
        let bytes = sample().to_bytes();
        for byte in 0..bytes.len() {
            for bit in 0..8 {
                let mut bad = bytes.clone();
                bad[byte] ^= 1 << bit;
                assert!(
                    Snapshot::from_bytes(&bad).is_err(),
                    "flip at {byte}:{bit} parsed as Ok — silent divergence"
                );
            }
        }
    }

    #[test]
    fn version_bump_is_rejected_explicitly() {
        let mut bytes = sample().to_bytes();
        bytes[4..8].copy_from_slice(&(VERSION + 1).to_le_bytes());
        match Snapshot::from_bytes(&bytes) {
            Err(RestoreError::VersionMismatch { found, expected }) => {
                assert_eq!(found, VERSION + 1);
                assert_eq!(expected, VERSION);
            }
            other => panic!("expected VersionMismatch, got {other:?}"),
        }
    }

    #[test]
    fn trailing_bytes_are_schema_drift() {
        let mut bytes = sample().to_bytes();
        bytes.push(0);
        assert!(matches!(
            Snapshot::from_bytes(&bytes),
            Err(RestoreError::SchemaDrift(_))
        ));
    }

    #[test]
    fn leftover_payload_bytes_are_schema_drift() {
        let bytes = sample().to_bytes();
        let snap = Snapshot::from_bytes(&bytes).unwrap();
        let mut g = snap.section("GRID").unwrap();
        let _ = g.get_u64().unwrap();
        // the f32 is still unread
        assert!(matches!(g.finish(), Err(RestoreError::SchemaDrift(_))));
    }

    #[test]
    fn oversized_slice_length_fails_without_allocating() {
        let mut w = Writer::new();
        w.section("S").put_u64(u64::MAX); // slice length prefix, no elements
        let snap = Snapshot::from_bytes(&w.to_bytes()).unwrap();
        let mut s = snap.section("S").unwrap();
        assert!(s.get_f32s().is_err());
    }

    #[test]
    fn missing_section_is_schema_drift() {
        let snap = Snapshot::from_bytes(&sample().to_bytes()).unwrap();
        assert!(matches!(
            snap.section("NOPE"),
            Err(RestoreError::SchemaDrift(_))
        ));
        assert!(snap.has_section("GRID"));
        assert!(!snap.has_section("NOPE"));
    }
}
