//! Fault injection for the checkpoint/restart contract.
//!
//! Each injector produces one of the failure modes a production run can
//! hit — a snapshot cut short, silent media bit rot, a process killed
//! mid-write, a worker thread dying mid-step — so tests can assert the
//! invariant directly: every fault yields a typed [`RestoreError`] (and a
//! fallback to the previous good snapshot), or a bit-identical resume.
//! Never a silently diverging `Ok`.

use crate::file::tmp_path;
use pk::pool::{DispatchPanic, WorkerPool};
use std::io::Write;
use std::path::Path;

/// A copy of `bytes` truncated to its first `keep` bytes (clamped).
pub fn truncated(bytes: &[u8], keep: usize) -> Vec<u8> {
    bytes[..keep.min(bytes.len())].to_vec()
}

/// A copy of `bytes` with one bit flipped at `byte` (clamped) : `bit`.
pub fn with_bit_flipped(bytes: &[u8], byte: usize, bit: u8) -> Vec<u8> {
    let mut out = bytes.to_vec();
    if let Some(b) = out.get_mut(byte.min(bytes.len().saturating_sub(1))) {
        *b ^= 1 << (bit % 8);
    }
    out
}

/// Reproduce what a process killed mid-save leaves on disk: a truncated
/// `<path>.tmp` staged next to `path`, with `path` itself untouched.
/// Because [`crate::file::save_bytes_atomic`] renames only after a full
/// fsync, the primary (or its `.prev` rotation) stays loadable.
pub fn crash_mid_write(path: &Path, bytes: &[u8], keep: usize) -> std::io::Result<()> {
    std::fs::write(tmp_path(path), truncated(bytes, keep))
}

/// An `io::Write` that accepts `budget` bytes and then fails — the
/// in-memory version of a process dying (or a disk filling) mid-write.
#[derive(Debug)]
pub struct FailingWriter {
    /// Bytes accepted so far.
    pub written: Vec<u8>,
    budget: usize,
}

impl FailingWriter {
    /// A writer that dies after `budget` bytes.
    pub fn new(budget: usize) -> Self {
        Self { written: Vec::new(), budget }
    }
}

impl Write for FailingWriter {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        let room = self.budget - self.written.len();
        if room == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::BrokenPipe,
                "injected mid-write failure",
            ));
        }
        let n = buf.len().min(room);
        self.written.extend_from_slice(&buf[..n]);
        Ok(n)
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// Kill one dispatch on `pool`: panic the lane `at_lane` (mod the lane
/// count) inside a pooled task and return the typed [`DispatchPanic`] the
/// pool surfaces. The pool stays usable afterwards — this is the
/// "worker died at step k, restore from the last snapshot" fault.
pub fn kill_dispatch(pool: &WorkerPool, at_lane: usize) -> DispatchPanic {
    let victim = at_lane % pool.lanes();
    pool.try_run(&|lane| {
        if lane == victim {
            panic!("ckpt::faults injected worker kill on lane {lane}");
        }
    })
    .expect_err("the injected panic must surface as a DispatchPanic")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::{RestoreError, Snapshot, Writer};

    fn sample_bytes() -> Vec<u8> {
        let mut w = Writer::new();
        w.section("A").put_f32s(&[1.0, 2.0, 3.0]);
        w.section("B").put_u64(99);
        w.to_bytes()
    }

    #[test]
    fn truncation_injector_produces_typed_errors() {
        let bytes = sample_bytes();
        for keep in [0, 3, 7, bytes.len() / 2, bytes.len() - 1] {
            let cut = truncated(&bytes, keep);
            assert_eq!(cut.len(), keep);
            assert!(Snapshot::from_bytes(&cut).is_err(), "keep={keep}");
        }
        // keeping everything is not a fault
        assert!(Snapshot::from_bytes(&truncated(&bytes, bytes.len())).is_ok());
    }

    #[test]
    fn bitflip_injector_produces_typed_errors() {
        let bytes = sample_bytes();
        for byte in [0, 5, 11, bytes.len() - 2] {
            let bad = with_bit_flipped(&bytes, byte, 3);
            assert_ne!(bad, bytes);
            assert!(Snapshot::from_bytes(&bad).is_err(), "byte={byte}");
        }
    }

    #[test]
    fn failing_writer_dies_on_budget() {
        let bytes = sample_bytes();
        let mut w = FailingWriter::new(10);
        let err = w.write_all(&bytes).expect_err("budget exceeded");
        assert_eq!(err.kind(), std::io::ErrorKind::BrokenPipe);
        assert_eq!(w.written.len(), 10);
        // the partial write is itself a typed restore failure
        assert!(matches!(
            Snapshot::from_bytes(&w.written),
            Err(RestoreError::Truncated | RestoreError::SchemaDrift(_))
        ));
    }

    #[test]
    fn kill_dispatch_surfaces_a_typed_panic_and_pool_survives() {
        let pool = WorkerPool::new(3);
        let dp = kill_dispatch(&pool, 1);
        assert_eq!(dp.panicked_lanes, 1);
        // caller-lane kills are typed too
        let dp0 = kill_dispatch(&pool, 0);
        assert_eq!(dp0.panicked_lanes, 1);
        // and the pool still dispatches cleanly
        pool.try_run(&|_| {}).unwrap();
    }
}
