//! Criterion bench: kernel-dispatch overhead — the persistent worker
//! pool behind `pk::Threads` vs spawning scoped threads per dispatch —
//! and pooled push throughput vs `pk::Serial`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pk::atomic::ScatterMode;
use pk::{Serial, Threads, WorkerPool};
use vpic_core::accumulate::Accumulator;
use vpic_core::interp::load_interpolators;
use vpic_core::push::push_species_on;
use vpic_core::Deck;
use vsimd::Strategy;

fn bench_empty_dispatch(c: &mut Criterion) {
    let mut g = c.benchmark_group("dispatch/empty");
    g.sample_size(30);
    for lanes in [1usize, 2, 4] {
        let pool = WorkerPool::new(lanes);
        g.bench_with_input(BenchmarkId::new("pool", lanes), &lanes, |b, _| {
            b.iter(|| pool.run(&|_| {}));
        });
        g.bench_with_input(BenchmarkId::new("spawn", lanes), &lanes, |b, &lanes| {
            b.iter(|| {
                std::thread::scope(|s| {
                    for _ in 1..lanes {
                        s.spawn(|| {});
                    }
                })
            });
        });
    }
    g.finish();
}

fn bench_push_spaces(c: &mut Criterion) {
    let mut sim = Deck::lpi(16, 8, 8, 8).build();
    sim.run(5); // non-trivial fields and particle distribution
    let grid = sim.grid.clone();
    let interps = load_interpolators(&sim.fields);

    let mut g = c.benchmark_group("dispatch/push");
    g.sample_size(10);
    g.throughput(criterion::Throughput::Elements(sim.particle_count() as u64));
    {
        let acc = Accumulator::new(grid.cells(), 1, ScatterMode::Atomic);
        g.bench_function("serial", |b| {
            b.iter_batched(
                || sim.species.clone(),
                |mut species| {
                    acc.reset();
                    for sp in &mut species {
                        push_species_on(&Serial, Strategy::Auto, &grid, sp, &interps, &acc);
                    }
                    species
                },
                criterion::BatchSize::LargeInput,
            )
        });
    }
    for workers in [2usize, 4] {
        let threads = Threads::new(workers);
        let acc = Accumulator::new(grid.cells(), workers, ScatterMode::Duplicated);
        g.bench_with_input(BenchmarkId::new("threads", workers), &workers, |b, _| {
            b.iter_batched(
                || sim.species.clone(),
                |mut species| {
                    acc.reset();
                    for sp in &mut species {
                        push_species_on(&threads, Strategy::Auto, &grid, sp, &interps, &acc);
                    }
                    species
                },
                criterion::BatchSize::LargeInput,
            )
        });
    }
    g.finish();
}

criterion_group!(benches, bench_empty_dispatch, bench_push_spaces);
criterion_main!(benches);
