//! Criterion bench: ablations of the design choices DESIGN.md calls out.
//!
//! * **tile size** — the tiled-strided tile parameter (paper rule:
//!   #threads on CPU, 3×cores on GPU) swept over two orders of magnitude;
//! * **sort interval** — how often a running simulation re-sorts;
//! * **scatter mode** — atomic vs duplicated current deposition.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pk::atomic::ScatterMode;
use psort::{patterns, sort_pairs, SortOrder};
use vpic_core::Deck;

fn bench_tile_size(c: &mut Criterion) {
    let keys0 = patterns::repeated_keys(1 << 13, 64, 9);
    let values: Vec<u32> = (0..keys0.len() as u32).collect();
    let mut g = c.benchmark_group("ablate/tile_size");
    g.sample_size(10);
    for tile in [16usize, 64, 256, 1024, 4096] {
        g.bench_with_input(BenchmarkId::from_parameter(tile), &tile, |b, &tile| {
            b.iter_batched(
                || (keys0.clone(), values.clone()),
                |(mut k, mut v)| {
                    sort_pairs(SortOrder::TiledStrided { tile }, &mut k, &mut v);
                    (k, v)
                },
                criterion::BatchSize::LargeInput,
            )
        });
    }
    g.finish();
}

fn bench_sort_interval(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablate/sort_interval");
    g.sample_size(10);
    for interval in [1usize, 5, 20, 100] {
        g.bench_with_input(
            BenchmarkId::from_parameter(interval),
            &interval,
            |b, &interval| {
                b.iter_batched(
                    || {
                        let mut sim = Deck::uniform(8, 8, 8, 8).build();
                        sim.sort_order = Some(SortOrder::Standard);
                        sim.sort_interval = interval;
                        sim
                    },
                    |mut sim| {
                        sim.run(10);
                        sim
                    },
                    criterion::BatchSize::LargeInput,
                )
            },
        );
    }
    g.finish();
}

fn bench_scatter_mode(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablate/scatter_mode");
    g.sample_size(10);
    for (name, mode) in [("atomic", ScatterMode::Atomic), ("duplicated", ScatterMode::Duplicated)]
    {
        g.bench_with_input(BenchmarkId::from_parameter(name), &mode, |b, &mode| {
            b.iter_batched(
                || {
                    let mut sim = Deck::uniform(8, 8, 8, 8).build();
                    sim.configure_scatter(4, mode);
                    sim
                },
                |mut sim| {
                    sim.run(5);
                    sim
                },
                criterion::BatchSize::LargeInput,
            )
        });
    }
    g.finish();
}

criterion_group!(benches, bench_tile_size, bench_sort_interval, bench_scatter_mode);
criterion_main!(benches);
