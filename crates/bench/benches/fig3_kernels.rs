//! Criterion bench: the RAJAPerf microkernels under each vectorization
//! strategy (the measured half of Figure 3).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rajaperf::{axpy, pi_reduce, planckian};
use std::hint::black_box;
use vsimd::Strategy;

const N: usize = 1 << 20;

fn bench_axpy(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig3/axpy");
    g.sample_size(20);
    let x: Vec<f64> = (0..N).map(|i| (i % 97) as f64).collect();
    let mut y = vec![1.0f64; N];
    for s in Strategy::MICRO {
        g.bench_with_input(BenchmarkId::from_parameter(s.name()), &s, |b, &s| {
            b.iter(|| axpy::run(s, 1.0001, black_box(&x), black_box(&mut y)))
        });
    }
    g.finish();
}

fn bench_planckian(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig3/planckian");
    g.sample_size(20);
    let u: Vec<f64> = (0..N).map(|i| 0.5 + (i % 13) as f64 * 0.1).collect();
    let v: Vec<f64> = (0..N).map(|i| 1.0 + (i % 7) as f64 * 0.1).collect();
    let y = vec![2.0f64; N];
    let mut w = vec![0.0f64; N];
    for s in Strategy::MICRO {
        g.bench_with_input(BenchmarkId::from_parameter(s.name()), &s, |b, &s| {
            b.iter(|| planckian::run(s, black_box(&u), black_box(&v), black_box(&y), &mut w))
        });
    }
    g.finish();
}

fn bench_pi_reduce(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig3/pi_reduce");
    g.sample_size(20);
    for s in Strategy::MICRO {
        g.bench_with_input(BenchmarkId::from_parameter(s.name()), &s, |b, &s| {
            b.iter(|| black_box(pi_reduce::run(s, N)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_axpy, bench_planckian, bench_pi_reduce);
criterion_main!(benches);
