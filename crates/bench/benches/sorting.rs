//! Criterion bench: cost of the sorting algorithms themselves (the O(N)
//! key rewrite + sort_by_key the paper describes in §4.3) and the host
//! gather-scatter kernel under each resulting order.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use psort::gather_scatter::run_serial;
use psort::{patterns, sort_pairs, SortOrder};
use std::hint::black_box;

const UNIQUE: usize = 1 << 13;
const REPEATS: usize = 64;

fn bench_sort_algorithms(c: &mut Criterion) {
    let keys = patterns::repeated_keys(UNIQUE, REPEATS, 3);
    let values: Vec<u32> = (0..keys.len() as u32).collect();
    let mut g = c.benchmark_group("sorting/algorithms");
    g.sample_size(10);
    g.throughput(criterion::Throughput::Elements(keys.len() as u64));
    for order in SortOrder::sorted_set(256) {
        g.bench_with_input(BenchmarkId::from_parameter(order.name()), &order, |b, &order| {
            b.iter_batched(
                || (keys.clone(), values.clone()),
                |(mut k, mut v)| {
                    sort_pairs(order, &mut k, &mut v);
                    (k, v)
                },
                criterion::BatchSize::LargeInput,
            )
        });
    }
    g.finish();
}

fn bench_gather_scatter_by_order(c: &mut Criterion) {
    let keys0 = patterns::repeated_keys(UNIQUE, REPEATS, 3);
    let values: Vec<f64> = (0..keys0.len()).map(|i| (i % 11) as f64).collect();
    let table: Vec<f64> = (0..UNIQUE).map(|i| (i as f64 * 0.1).sin()).collect();
    let stencil = patterns::five_point_stencil((UNIQUE as f64).sqrt() as usize);
    let mut g = c.benchmark_group("sorting/gather_scatter_host");
    g.sample_size(10);
    for order in SortOrder::fig7_set(256) {
        let mut k = keys0.clone();
        let mut v = values.clone();
        sort_pairs(order, &mut k, &mut v);
        g.bench_with_input(BenchmarkId::from_parameter(order.name()), &(), |b, _| {
            b.iter(|| black_box(run_serial(black_box(&k), black_box(&v), &table, &stencil)))
        });
    }
    g.finish();
}

fn bench_sort_backend_paths(c: &mut Criterion) {
    // pk::sort_by_key picks counting sort for dense ranges and a
    // comparison argsort for sparse ones — compare the two paths
    let n = 1 << 16;
    let dense: Vec<u64> = (0..n as u64).map(|i| (i * 7919) % 1024).collect();
    let sparse: Vec<u64> = (0..n as u64).map(|i| i.wrapping_mul(0x9E3779B97F4A7C15)).collect();
    let vals: Vec<u32> = (0..n as u32).collect();
    let mut g = c.benchmark_group("sorting/backends");
    g.sample_size(10);
    for (name, keys) in [("counting(dense)", &dense), ("comparison(sparse)", &sparse)] {
        g.bench_with_input(BenchmarkId::from_parameter(name), &(), |b, _| {
            b.iter_batched(
                || (keys.clone(), vals.clone()),
                |(mut k, mut v)| {
                    pk::sort::sort_by_key(&mut k, &mut v);
                    (k, v)
                },
                criterion::BatchSize::LargeInput,
            )
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_sort_algorithms,
    bench_gather_scatter_by_order,
    bench_sort_backend_paths
);
criterion_main!(benches);
