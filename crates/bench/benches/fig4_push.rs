//! Criterion bench: the VPIC particle push under each vectorization
//! strategy (the measured half of Figure 4), on the LPI deck.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pk::atomic::ScatterMode;
use vpic_core::accumulate::Accumulator;
use vpic_core::interp::load_interpolators;
use vpic_core::push::push_species;
use vpic_core::Deck;
use vsimd::Strategy;

fn bench_push_strategies(c: &mut Criterion) {
    let mut sim = Deck::lpi(16, 8, 8, 8).build();
    sim.run(5); // non-trivial fields and particle distribution
    let grid = sim.grid.clone();
    let interps = load_interpolators(&sim.fields);
    let acc = Accumulator::new(grid.cells(), 1, ScatterMode::Atomic);

    let mut g = c.benchmark_group("fig4/push");
    g.sample_size(10);
    g.throughput(criterion::Throughput::Elements(sim.particle_count() as u64));
    for s in Strategy::ALL {
        g.bench_with_input(BenchmarkId::from_parameter(s.name()), &s, |b, &s| {
            b.iter_batched(
                || sim.species.clone(),
                |mut species| {
                    acc.reset();
                    for sp in &mut species {
                        push_species(s, &grid, sp, &interps, &acc);
                    }
                    species
                },
                criterion::BatchSize::LargeInput,
            )
        });
    }
    g.finish();
}

fn bench_push_by_sort_order(c: &mut Criterion) {
    // host-side counterpart of Fig 7: particle ordering changes host push
    // cost too (cache locality of the interpolator gathers)
    use psort::SortOrder;
    let mut sim = Deck::lpi(16, 8, 8, 8).build();
    sim.run(5);
    let grid = sim.grid.clone();
    let interps = load_interpolators(&sim.fields);
    let acc = Accumulator::new(grid.cells(), 1, ScatterMode::Atomic);

    let mut g = c.benchmark_group("fig7/host_push_order");
    g.sample_size(10);
    for order in SortOrder::fig7_set(128) {
        g.bench_with_input(BenchmarkId::from_parameter(order.name()), &order, |b, &order| {
            b.iter_batched(
                || {
                    let mut species = sim.species.clone();
                    for sp in &mut species {
                        sp.sort(order);
                    }
                    species
                },
                |mut species| {
                    acc.reset();
                    for sp in &mut species {
                        push_species(Strategy::Auto, &grid, sp, &interps, &acc);
                    }
                    species
                },
                criterion::BatchSize::LargeInput,
            )
        });
    }
    g.finish();
}

criterion_group!(benches, bench_push_strategies, bench_push_by_sort_order);
criterion_main!(benches);
