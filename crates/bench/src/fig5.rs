//! Figures 5 and 6 — gather-scatter bandwidth under the three key
//! patterns (contiguous, repeated ×100, 5-point stencil) and three
//! sorting algorithms, on the six CPU (Fig 5) and six GPU (Fig 6)
//! platforms.
//!
//! The key arrays are produced by the *real* sorting algorithms in
//! `psort`; the per-platform bandwidths come from the `memsim` engines at
//! a scaled problem size: the paper runs 10⁹ elements with 10⁷ unique
//! keys, we run `N_MODEL` with the same 100× duplication and shrink each
//! platform's simulated cache by the same factor, preserving every
//! working-set:cache ratio (tile size included).

use memsim::platform::{self, Platform, PlatformKind};
use memsim::trace::GatherScatterSpec;
use memsim::{CpuModel, GpuModel};
use psort::patterns;
use psort::{sort_pairs, SortOrder};
use serde::Serialize;

/// Modelled element count (paper: 10⁹).
pub const N_MODEL: usize = 1 << 21;

/// Duplication factor (paper: each key repeated 100 times).
pub const REPEATS: usize = patterns::PAPER_REPEATS;

/// Problem-scale factor between the paper's run and the model.
pub fn problem_scale() -> f64 {
    patterns::PAPER_ELEMENTS as f64 / N_MODEL as f64
}

/// The three panels of each figure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum Panel {
    /// (a) unique contiguous keys.
    Contiguous,
    /// (b) each key repeated 100 times.
    Repeated,
    /// (c) 5-point stencil over repeated keys.
    Stencil,
}

impl Panel {
    /// All three panels in figure order.
    pub const ALL: [Panel; 3] = [Panel::Contiguous, Panel::Repeated, Panel::Stencil];

    /// Panel label.
    pub fn name(self) -> &'static str {
        match self {
            Panel::Contiguous => "contiguous",
            Panel::Repeated => "repeated x100",
            Panel::Stencil => "5-pt stencil",
        }
    }
}

/// One bar: bandwidth of a (panel, platform, sort) combination.
#[derive(Debug, Clone, Serialize)]
pub struct GatherScatterRow {
    /// Figure panel.
    pub panel: String,
    /// Platform name.
    pub platform: String,
    /// Sorting algorithm.
    pub sort: String,
    /// Achieved bandwidth, bytes/s (the paper's metric).
    pub bandwidth: f64,
}

/// The tile-size rule at model scale. GPU tiles scale with the key
/// space (their budget is the scaled LLC); CPU tiles stay at the thread
/// count (their budget is the per-thread cache share, which the CPU
/// model already scales).
pub fn model_tile(platform: &Platform, unique: usize) -> usize {
    match platform.kind {
        PlatformKind::Cpu => platform.paper_tile_size().max(2),
        PlatformKind::Gpu => {
            let paper_unique = patterns::PAPER_ELEMENTS / REPEATS;
            let tile = platform.paper_tile_size() as f64 * unique as f64 / paper_unique as f64;
            (tile as usize).max(2)
        }
    }
}

/// Build the ordered key array for one (panel, sort) combination.
pub fn build_keys(panel: Panel, order: SortOrder, unique: usize) -> Vec<u32> {
    let mut keys = match panel {
        Panel::Contiguous => patterns::contiguous_keys(N_MODEL),
        Panel::Repeated | Panel::Stencil => patterns::repeated_keys(unique, REPEATS, 1234),
    };
    let mut values: Vec<u32> = (0..keys.len() as u32).collect();
    sort_pairs(order, &mut keys, &mut values);
    keys
}

/// Evaluate one platform × panel × sort cell.
pub fn bandwidth_of(platform: &Platform, panel: Panel, order: SortOrder) -> f64 {
    let unique = N_MODEL / REPEATS;
    let keys = build_keys(panel, order, unique);
    let table_len = match panel {
        Panel::Contiguous => N_MODEL,
        _ => unique,
    };
    let stencil: Vec<i64> = match panel {
        Panel::Stencil => patterns::five_point_stencil((table_len as f64).sqrt() as usize).to_vec(),
        _ => vec![0],
    };
    let spec = GatherScatterSpec {
        keys: &keys,
        table_len,
        elem_bytes: 8,
        stencil: &stencil,
        stream_bytes: 8.0,
        flops: psort::gather_scatter::flops_per_element(stencil.len()),
        atomic: true,
    };
    let scale = problem_scale();
    let cost = match platform.kind {
        PlatformKind::Cpu => CpuModel::scaled(platform.clone(), scale).run(&spec),
        PlatformKind::Gpu => GpuModel::scaled(platform.clone(), scale).run(&spec),
    };
    cost.bandwidth()
}

fn run_figure(platforms: Vec<Platform>, figure: &str) -> Vec<GatherScatterRow> {
    let unique = N_MODEL / REPEATS;
    let mut rows = Vec::new();
    for panel in Panel::ALL {
        println!("\n{figure}{} — {}", ['a', 'b', 'c'][panel as usize], panel.name());
        println!(
            "{:<14} {:>14} {:>14} {:>14}",
            "platform", "standard", "strided", "tiled-strided"
        );
        for p in &platforms {
            let tile = model_tile(p, unique);
            let mut vals = Vec::new();
            for order in SortOrder::sorted_set(tile) {
                let bw = bandwidth_of(p, panel, order);
                vals.push(bw);
                rows.push(GatherScatterRow {
                    panel: panel.name().to_string(),
                    platform: p.name.to_string(),
                    sort: order.name().to_string(),
                    bandwidth: bw,
                });
            }
            println!(
                "{:<14} {:>12.1}G {:>12.1}G {:>12.1}G",
                p.name,
                vals[0] / 1e9,
                vals[1] / 1e9,
                vals[2] / 1e9
            );
        }
    }
    rows
}

/// Figure 5: the six CPU platforms.
pub fn run_cpu() -> Vec<GatherScatterRow> {
    println!("Figure 5 — CPU gather-scatter bandwidth (modelled, real key streams)");
    run_figure(platform::cpus(), "Fig 5")
}

/// Figure 6: the six GPU platforms.
pub fn run_gpu() -> Vec<GatherScatterRow> {
    println!("Figure 6 — GPU gather-scatter bandwidth (modelled, real key streams)");
    run_figure(platform::gpus(), "Fig 6")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bw(rows: &[GatherScatterRow], panel: &str, platform: &str, sort: &str) -> f64 {
        rows.iter()
            .find(|r| r.panel == panel && r.platform == platform && r.sort == sort)
            .unwrap_or_else(|| panic!("missing {panel}/{platform}/{sort}"))
            .bandwidth
    }

    #[test]
    fn fig6_gpu_shapes_hold() {
        if crate::skip_heavy_in_debug() {
            return;
        }
        let rows = run_gpu();
        assert_eq!(rows.len(), 3 * 6 * 3);
        // 6a: contiguous — all sorts within a few percent of each other
        for p in ["V100", "A100", "H100", "MI100", "MI250"] {
            let s = bw(&rows, "contiguous", p, "standard");
            let t = bw(&rows, "contiguous", p, "tiled-strided");
            assert!((s / t - 1.0).abs() < 0.25, "{p}: contiguous should be sort-insensitive");
        }
        // 6b: repeated — strided and tiled beat standard on NVIDIA
        for p in ["V100", "A100", "H100"] {
            let std_bw = bw(&rows, "repeated x100", p, "standard");
            let str_bw = bw(&rows, "repeated x100", p, "strided");
            let til_bw = bw(&rows, "repeated x100", p, "tiled-strided");
            assert!(str_bw > 1.5 * std_bw, "{p}: strided must restore coalescing");
            assert!(til_bw > str_bw, "{p}: tiled must add reuse on top");
        }
        // tiled roughly doubles strided on A100/H100 (paper: "nearly
        // doubling bandwidth")
        for p in ["A100", "H100"] {
            let ratio = bw(&rows, "repeated x100", p, "tiled-strided")
                / bw(&rows, "repeated x100", p, "strided");
            assert!((1.4..4.0).contains(&ratio), "{p}: tiled/strided = {ratio}");
        }
    }

    #[test]
    fn fig5_cpu_shapes_hold() {
        if crate::skip_heavy_in_debug() {
            return;
        }
        let rows = run_cpu();
        assert_eq!(rows.len(), 3 * 6 * 3);
        for p in crate::fig3::cpu_names() {
            // 5b: repeated keys collapse far below contiguous
            let con = bw(&rows, "contiguous", &p, "standard");
            let rep_best = ["standard", "strided", "tiled-strided"]
                .iter()
                .map(|s| bw(&rows, "repeated x100", &p, s))
                .fold(0.0, f64::max);
            assert!(
                rep_best < con,
                "{p}: repeated keys must lose to contiguous ({rep_best:.2e} vs {con:.2e})"
            );
            // tiled-strided is the best of the three on repeated keys,
            // and strided "often matches or underperforms standard"
            let til = bw(&rows, "repeated x100", &p, "tiled-strided");
            let std_bw = bw(&rows, "repeated x100", &p, "standard");
            let str_bw = bw(&rows, "repeated x100", &p, "strided");
            assert!(til >= std_bw && til >= str_bw, "{p}: tiled must win on CPU");
            // "strided often matches or underperforms standard" — at
            // minimum it must never dramatically beat it on a CPU
            // ("often", so a modest win on some platforms is acceptable)
            assert!(
                str_bw <= std_bw * 1.8,
                "{p}: strided should not clearly beat standard on CPU ({str_bw:.2e} vs {std_bw:.2e})"
            );
        }
    }

    #[test]
    fn stencil_panel_lowers_bandwidth_vs_plain_repeated() {
        if crate::skip_heavy_in_debug() {
            return;
        }
        // paper 5c/6c: "patterns resemble the repeated keys case but with
        // more irregular accesses and lower bandwidth"
        let p = platform::by_name("A100").unwrap();
        let unique = N_MODEL / REPEATS;
        let tile = model_tile(&p, unique);
        let rep = bandwidth_of(&p, Panel::Repeated, SortOrder::TiledStrided { tile });
        let sten = bandwidth_of(&p, Panel::Stencil, SortOrder::TiledStrided { tile });
        // bandwidth metric counts all stencil reads as useful, so compare
        // *time-normalized*: stencil must not be faster per access
        assert!(sten < rep * 2.0, "stencil should not massively exceed repeated");
    }

    #[test]
    fn tile_rule_scales_with_problem() {
        let a100 = platform::by_name("A100").unwrap();
        let t = model_tile(&a100, N_MODEL / REPEATS);
        // paper tile 3×6912 over 10M keys ≈ 0.2% of key space
        let frac = t as f64 / (N_MODEL / REPEATS) as f64;
        assert!((0.0005..0.01).contains(&frac), "tile fraction {frac}");
        // CPU tiles stay at the paper's thread-count rule
        let epyc = platform::by_name("EPYC 7763").unwrap();
        assert_eq!(model_tile(&epyc, N_MODEL / REPEATS), 128);
    }
}
