//! `repro` — regenerate every table and figure of the paper.
//!
//! ```text
//! repro <target> [targets...]
//!   fig1   VPIC 1.2 SIMD code breakdown
//!   table1 platform table + STREAM Triad validation
//!   fig3   RAJAPerf vectorization strategies (CPUs)
//!   fig4   particle-push vectorization strategies (CPUs)
//!   fig5   CPU gather-scatter bandwidth by sorting
//!   fig6   GPU gather-scatter bandwidth by sorting
//!   fig7   push kernel vs sorting order (GPUs)
//!   fig8   push-kernel rooflines (H100/MI250/MI300A)
//!   fig9   pushes/ns vs grid size (cache cliff)
//!   fig10  strong scaling (Sierra/Selene/Tuolumne)
//!   all    everything above
//!
//!   ckpt              checkpoint/restore cost vs step cost, resume check
//!   gpu               SimGpu one-sweep: per-platform sort-order costs,
//!                     crossover vs the standalone model, tuner vs
//!                     exhaustive, and all-platform rooflines
//!                     (GPU_STEPS / GPU_WARMUP)
//!   ranks             executed multi-rank stepping: speedup + overlap
//!                     at 1/2/4/8 virtual ranks vs the closed-form model
//!   dispatch          pooled-vs-spawn dispatch latency + push throughput
//!   push              profiled push loop: spans reconciled vs wall time
//!   field             grid-side pipeline (interpolate/solve/unload):
//!                     parallel+vectorized vs pre-rewrite serial baseline
//!   tune              adaptive tuner vs exhaustive config sweep
//!                     (TUNE_EPOCH_STEPS / TUNE_SWEEP_STEPS / TUNE_PLATFORM)
//!   tile              out-of-core tiled stepping: capacity ratio vs the
//!                     hot-pool budget, codec ratio, pushes/s, bit-stable
//!                     ledger (TILE_STEPS / TILE_GRID / TILE_PPC)
//!   serve             multi-tenant serving: jobs/s + p95 step latency
//!                     under 100+ concurrent preempted tenants
//!                     (SERVE_TENANTS / SERVE_STEPS / SERVE_QUANTUM /
//!                     SERVE_RESIDENT)
//!   ablate-tile       tiled-strided tile-size sweep (A100)
//!   ablate-gpu-aware  Sierra with GPU-aware MPI forced on
//!   ablate-weak       weak scaling on all three systems
//!
//!   suite             continuous perf-regression harness: run the fast
//!                     measured targets with telemetry on, fold wall
//!                     times + streaming histograms into results/BENCH.json
//!   regress <a> <b>   diff two BENCH.json files; exit nonzero on >15%
//!                     median regressions (--warn reports without failing)
//!   regress-selftest  prove the comparator flags an injected 20% slowdown
//!
//! options:
//!   --profile[=path]  enable telemetry; print the span summary table,
//!                     write a Chrome/Perfetto trace to `path` (default
//!                     trace.json) and a machine-readable summary to
//!                     `results/telemetry.json`
//! ```
//!
//! JSON copies of every result land in `results/` (override with
//! `REPRO_RESULTS_DIR`).

use std::process::ExitCode;

const TARGETS: [&str; 10] = [
    "fig1", "table1", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10",
];

fn run_target(name: &str) -> bool {
    let started = std::time::Instant::now();
    let saved = match name {
        "fig1" => bench::save_json("fig1", &bench::fig1::run()),
        "table1" => bench::save_json("table1", &bench::table1::run()),
        "fig3" => bench::save_json("fig3", &bench::fig3::run()),
        "fig4" => bench::save_json("fig4", &bench::fig4::run()),
        "fig5" => bench::save_json("fig5", &bench::fig5::run_cpu()),
        "fig6" => bench::save_json("fig6", &bench::fig5::run_gpu()),
        "fig7" => bench::save_json("fig7", &bench::fig7::run()),
        "fig8" => bench::save_json("fig8", &bench::fig8::run()),
        "fig9" => bench::save_json("fig9", &bench::fig9::run()),
        "fig10" => bench::save_json("fig10", &bench::fig10::run()),
        "ablate-tile" => bench::save_json("ablate-tile", &bench::ablate::run_tile()),
        "ablate-gpu-aware" => {
            bench::save_json("ablate-gpu-aware", &bench::ablate::run_gpu_aware())
        }
        "ablate-weak" => bench::save_json("ablate-weak", &bench::ablate::run_weak()),
        "ckpt" => bench::save_json("ckpt", &bench::ckpt::run()),
        "gpu" => bench::save_json("gpu", &bench::gpu::run()),
        "ranks" => bench::save_json("ranks", &bench::ranks::run()),
        "dispatch" => bench::save_json("dispatch", &bench::dispatch::run()),
        "push" => bench::save_json("push", &bench::push::run()),
        "field" => bench::save_json("field", &bench::field::run()),
        "tune" => bench::save_json("tune", &bench::tune::run()),
        "tile" => bench::save_json("tile", &bench::tile::run()),
        "serve" => bench::save_json("serve", &bench::serve::run()),
        "suite" => bench::save_json("BENCH", &bench::suite::run()),
        other => {
            eprintln!("unknown target: {other}");
            return false;
        }
    };
    match saved {
        Ok(path) => {
            println!(
                "\n[{name}] done in {:.1}s → {}\n",
                started.elapsed().as_secs_f64(),
                path.display()
            );
            true
        }
        Err(e) => {
            eprintln!("[{name}] failed to save results: {e}");
            false
        }
    }
}

/// Print the span summary + metrics tables and write the Chrome-trace,
/// JSON, and Prometheus exports.
fn write_profile(trace_path: &str) -> std::io::Result<()> {
    let snap = telemetry::snapshot();
    let stats = telemetry::aggregate(&snap.events);
    print!("{}", telemetry::format_summary(&stats));
    print!("{}", telemetry::format_metrics(&snap.metrics));
    std::fs::write(trace_path, telemetry::chrome_trace(&snap.events))?;
    let dir = bench::results_dir();
    std::fs::create_dir_all(&dir)?;
    let summary_path = dir.join("telemetry.json");
    std::fs::write(&summary_path, telemetry::summary_json(&snap))?;
    let prom_path = dir.join("metrics.prom");
    std::fs::write(&prom_path, telemetry::prometheus_text(&snap))?;
    println!(
        "profile: {} span(s) → {trace_path} (load in ui.perfetto.dev) + {} + {}",
        snap.events.len(),
        summary_path.display(),
        prom_path.display()
    );
    Ok(())
}

/// `repro regress <base> <new> [--warn]`: diff two BENCH.json files.
fn run_regress(args: &[String]) -> ExitCode {
    let warn_only = args.iter().any(|a| a == "--warn");
    let paths: Vec<&String> = args.iter().filter(|a| !a.starts_with("--")).collect();
    let [base, new] = paths.as_slice() else {
        eprintln!("usage: repro regress <base BENCH.json> <new BENCH.json> [--warn]");
        return ExitCode::FAILURE;
    };
    match bench::regress::compare_files(base, new) {
        Ok(cmp) => {
            print!("{}", cmp.render());
            if cmp.regressions().is_empty() {
                ExitCode::SUCCESS
            } else if warn_only {
                println!("(--warn: regressions reported but not fatal)");
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("regress: {e}");
            ExitCode::FAILURE
        }
    }
}

fn main() -> ExitCode {
    let mut profile: Option<String> = None;
    let mut targets: Vec<String> = Vec::new();
    for arg in std::env::args().skip(1) {
        if arg == "--profile" {
            profile = Some("trace.json".into());
        } else if let Some(path) = arg.strip_prefix("--profile=") {
            profile = Some(path.to_string());
        } else {
            targets.push(arg);
        }
    }
    if targets.first().map(String::as_str) == Some("regress") {
        return run_regress(&targets[1..]);
    }
    if targets.first().map(String::as_str) == Some("regress-selftest") {
        return match bench::regress::self_test() {
            Ok(()) => {
                println!("regress self-test: injected 20% slowdown flagged, identical inputs pass");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("regress self-test FAILED: {e}");
                ExitCode::FAILURE
            }
        };
    }
    if targets.is_empty() || targets.iter().any(|a| a == "-h" || a == "--help") {
        println!(
            "usage: repro [--profile[=path]] <target>...   targets: {} all suite\n\
             \x20      extra: ckpt gpu ranks dispatch push field tune tile serve \
             ablate-tile ablate-gpu-aware ablate-weak\n\
             \x20      repro regress <base BENCH.json> <new BENCH.json> [--warn]\n\
             \x20      repro regress-selftest",
            TARGETS.join(" ")
        );
        return ExitCode::SUCCESS;
    }
    if profile.is_some() {
        telemetry::set_enabled(true);
    }
    let mut ok = true;
    for arg in &targets {
        if arg == "all" {
            for t in TARGETS {
                ok &= run_target(t);
            }
        } else {
            ok &= run_target(arg);
        }
    }
    if let Some(path) = &profile {
        if let Err(e) = write_profile(path) {
            eprintln!("failed to write profile: {e}");
            ok = false;
        }
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
