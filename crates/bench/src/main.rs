//! `repro` — regenerate every table and figure of the paper.
//!
//! ```text
//! repro <target> [targets...]
//!   fig1   VPIC 1.2 SIMD code breakdown
//!   table1 platform table + STREAM Triad validation
//!   fig3   RAJAPerf vectorization strategies (CPUs)
//!   fig4   particle-push vectorization strategies (CPUs)
//!   fig5   CPU gather-scatter bandwidth by sorting
//!   fig6   GPU gather-scatter bandwidth by sorting
//!   fig7   push kernel vs sorting order (GPUs)
//!   fig8   push-kernel rooflines (H100/MI250/MI300A)
//!   fig9   pushes/ns vs grid size (cache cliff)
//!   fig10  strong scaling (Sierra/Selene/Tuolumne)
//!   all    everything above
//!
//!   dispatch          pooled-vs-spawn dispatch latency + push throughput
//!   ablate-tile       tiled-strided tile-size sweep (A100)
//!   ablate-gpu-aware  Sierra with GPU-aware MPI forced on
//!   ablate-weak       weak scaling on all three systems
//! ```
//!
//! JSON copies of every result land in `results/` (override with
//! `REPRO_RESULTS_DIR`).

use std::process::ExitCode;

const TARGETS: [&str; 10] = [
    "fig1", "table1", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10",
];

fn run_target(name: &str) -> bool {
    let started = std::time::Instant::now();
    let saved = match name {
        "fig1" => bench::save_json("fig1", &bench::fig1::run()),
        "table1" => bench::save_json("table1", &bench::table1::run()),
        "fig3" => bench::save_json("fig3", &bench::fig3::run()),
        "fig4" => bench::save_json("fig4", &bench::fig4::run()),
        "fig5" => bench::save_json("fig5", &bench::fig5::run_cpu()),
        "fig6" => bench::save_json("fig6", &bench::fig5::run_gpu()),
        "fig7" => bench::save_json("fig7", &bench::fig7::run()),
        "fig8" => bench::save_json("fig8", &bench::fig8::run()),
        "fig9" => bench::save_json("fig9", &bench::fig9::run()),
        "fig10" => bench::save_json("fig10", &bench::fig10::run()),
        "ablate-tile" => bench::save_json("ablate-tile", &bench::ablate::run_tile()),
        "ablate-gpu-aware" => {
            bench::save_json("ablate-gpu-aware", &bench::ablate::run_gpu_aware())
        }
        "ablate-weak" => bench::save_json("ablate-weak", &bench::ablate::run_weak()),
        "dispatch" => bench::save_json("dispatch", &bench::dispatch::run()),
        other => {
            eprintln!("unknown target: {other}");
            return false;
        }
    };
    match saved {
        Ok(path) => {
            println!(
                "\n[{name}] done in {:.1}s → {}\n",
                started.elapsed().as_secs_f64(),
                path.display()
            );
            true
        }
        Err(e) => {
            eprintln!("[{name}] failed to save results: {e}");
            false
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args.iter().any(|a| a == "-h" || a == "--help") {
        println!("usage: repro <target>...   targets: {} all", TARGETS.join(" "));
        return ExitCode::SUCCESS;
    }
    let mut ok = true;
    for arg in &args {
        if arg == "all" {
            for t in TARGETS {
                ok &= run_target(t);
            }
        } else {
            ok &= run_target(arg);
        }
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
