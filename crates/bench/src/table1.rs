//! Table 1 — the platform table with modelled STREAM Triad bandwidth.
//!
//! Prints the paper's columns (core count, memory, LLC, bandwidth) from
//! the platform registry and validates the performance model by running
//! STREAM Triad through the same engines used for every other figure:
//! the achieved bandwidth must land on the Table 1 number.

use memsim::platform;
use memsim::stream::triad;
use serde::Serialize;

/// One row of the printed table.
#[derive(Debug, Clone, Serialize)]
pub struct Table1Row {
    /// Platform name.
    pub platform: String,
    /// Core count (Table 1).
    pub cores: usize,
    /// Memory capacity + kind.
    pub memory: String,
    /// Last-level cache, MB.
    pub llc_mb: f64,
    /// Table 1 spec bandwidth, GB/s.
    pub spec_bw_gbps: f64,
    /// Modelled STREAM Triad bandwidth, GB/s.
    pub triad_bw_gbps: f64,
    /// Model / spec.
    pub efficiency: f64,
}

/// Produce and print Table 1.
pub fn run() -> Vec<Table1Row> {
    println!("Table 1 — platforms (spec vs modelled STREAM Triad)");
    println!(
        "{:<14} {:>6} {:>12} {:>8} {:>10} {:>10} {:>6}",
        "platform", "cores", "memory", "LLC", "spec BW", "triad BW", "eff"
    );
    let mut rows = Vec::new();
    for p in platform::all() {
        let t = triad(&p, 1 << 19);
        let row = Table1Row {
            platform: p.name.to_string(),
            cores: p.cores,
            memory: format!("{} GB {}", p.mem_bytes >> 30, p.mem_kind),
            llc_mb: p.llc_bytes as f64 / (1024.0 * 1024.0),
            spec_bw_gbps: p.dram_bw / 1e9,
            triad_bw_gbps: t.bandwidth / 1e9,
            efficiency: t.efficiency,
        };
        println!(
            "{:<14} {:>6} {:>12} {:>6.0}MB {:>8.1}G {:>8.1}G {:>6.2}",
            row.platform,
            row.cores,
            row.memory,
            row.llc_mb,
            row.spec_bw_gbps,
            row.triad_bw_gbps,
            row.efficiency
        );
        rows.push(row);
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twelve_rows_all_validated() {
        if crate::skip_heavy_in_debug() {
            return;
        }
        let rows = run();
        assert_eq!(rows.len(), 12);
        for r in &rows {
            assert!(
                r.efficiency > 0.5 && r.efficiency < 1.4,
                "{}: triad off spec ({:.2})",
                r.platform,
                r.efficiency
            );
        }
    }
}
