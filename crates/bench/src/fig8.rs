//! Figure 8 — rooflines of the particle push under each sorting order on
//! H100, MI250, and MI300A.
//!
//! The paper profiles with nsight-compute/rocprof; here the model's FLOP
//! and DRAM-byte counters place each sorting order on the platform
//! roofline. Paper shapes: on H100 standard sort has high intensity but
//! ~1% utilization, strided raises utilization but lowers intensity, and
//! tiled-strided recovers the intensity while lifting throughput ≈12×;
//! MI250 shows the same pattern (≈20× throughput). MI300A is
//! bandwidth-bound at low intensity for every order.

use crate::fig7;
use memsim::roofline::{Roofline, RooflineSample};
use psort::SortOrder;
use serde::Serialize;

/// The three GPUs of Figure 8.
pub const GPUS: [&str; 3] = ["H100", "MI250", "MI300A (GPU)"];

/// One roofline point.
#[derive(Debug, Clone, Serialize)]
pub struct Fig8Row {
    /// GPU platform.
    pub platform: String,
    /// Sorting order.
    pub order: String,
    /// The roofline placement.
    pub sample: RooflineSample,
}

/// Produce and print Figure 8.
pub fn run() -> Vec<Fig8Row> {
    println!("Figure 8 — push-kernel rooflines by sorting order");
    let mut rows = Vec::new();
    for gpu in GPUS {
        let platform = memsim::platform::by_name(gpu).expect("known GPU");
        let roof = Roofline::of(&platform);
        println!(
            "\n{gpu}: ridge at {:.1} FLOP/B, peak {:.1} TFLOP/s, {:.0} GB/s",
            roof.ridge(),
            roof.peak_flops / 1e12,
            roof.peak_bw / 1e9
        );
        println!(
            "{:<16} {:>10} {:>12} {:>10}",
            "order", "AI (F/B)", "GFLOP/s", "% of peak"
        );
        let tile = fig7::tile_for(gpu);
        for order in SortOrder::sorted_set(tile) {
            let cost = fig7::push_cost(gpu, order).cost;
            let sample = roof.sample(order.name(), &cost);
            println!(
                "{:<16} {:>10.2} {:>12.1} {:>9.2}%",
                order.name(),
                sample.arithmetic_intensity,
                sample.gflops,
                100.0 * sample.peak_fraction
            );
            rows.push(Fig8Row {
                platform: gpu.to_string(),
                order: order.name().to_string(),
                sample,
            });
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_of<'a>(rows: &'a [Fig8Row], p: &str, o: &str) -> &'a RooflineSample {
        &rows.iter().find(|r| r.platform == p && r.order == o).unwrap().sample
    }

    #[test]
    fn h100_tiled_lifts_throughput_an_order_of_magnitude() {
        if crate::skip_heavy_in_debug() {
            return;
        }
        let rows = run();
        let std_s = sample_of(&rows, "H100", "standard");
        let til_s = sample_of(&rows, "H100", "tiled-strided");
        let gain = til_s.gflops / std_s.gflops;
        // paper: 550 GF/s → 6.51 TF/s (11.8×); accept the same order of
        // magnitude
        assert!((4.0..60.0).contains(&gain), "H100 tiled gain {gain}");
    }

    #[test]
    fn standard_order_has_higher_intensity_than_strided() {
        if crate::skip_heavy_in_debug() {
            return;
        }
        // standard reuses cached cell data (few DRAM bytes → high AI);
        // strided streams the grid every pass (low AI)
        let rows = run();
        for p in ["H100", "MI250"] {
            let std_ai = sample_of(&rows, p, "standard").arithmetic_intensity;
            let str_ai = sample_of(&rows, p, "strided").arithmetic_intensity;
            assert!(
                std_ai > str_ai,
                "{p}: AI(standard)={std_ai} must exceed AI(strided)={str_ai}"
            );
        }
    }

    #[test]
    fn every_order_stays_under_the_roofline() {
        if crate::skip_heavy_in_debug() {
            return;
        }
        let rows = run();
        for r in &rows {
            assert!(
                r.sample.attainable_fraction <= 1.05,
                "{}/{} exceeds its roofline: {}",
                r.platform,
                r.order,
                r.sample.attainable_fraction
            );
            assert!(r.sample.gflops > 0.0);
        }
    }

    #[test]
    fn standard_utilization_is_poor_everywhere() {
        if crate::skip_heavy_in_debug() {
            return;
        }
        // paper: H100 standard at ~1% of peak FP32
        let rows = run();
        for p in GPUS {
            let f = sample_of(&rows, p, "standard").peak_fraction;
            assert!(f < 0.10, "{p}: standard order should waste the GPU ({f})");
        }
    }
}
