//! `tune` target: the adaptive tuner vs. an exhaustive sweep.
//!
//! For each deck (Weibel, laser-plasma) this target:
//!
//! 1. seeds a tuner with the cache-model prior for the modelled platform
//!    (`TUNE_PLATFORM`, default `EPYC 7763`) and lets it run its
//!    explore/commit loop live on this host;
//! 2. sweeps **every** arm of the same configuration space as a fixed
//!    config (the ablation), measuring each the same way;
//! 3. re-measures the tuner's committed choice under the sweep's
//!    protocol and reports `ratio = tuned / best-fixed` — the paper-style
//!    acceptance number (converged when ≤ 1.10).
//!
//! Knobs (all env vars, for CI's short-budget smoke run):
//! `TUNE_EPOCH_STEPS` (default 12), `TUNE_SWEEP_STEPS` (default 50,
//! covers the longest sort interval), `TUNE_PLATFORM`.

use pk::Serial;
use serde::Serialize;
use tuner::{config_space, prior, Config, Tuner};
use vpic_core::{Deck, Simulation, TuneDriver};

/// Tile parameter for the tiled-strided arms (CPU rule: thread count;
/// this is a small-deck host run, so a modest tile).
const TILE: usize = 16;

/// One fixed configuration's sweep measurement.
#[derive(Serialize)]
pub struct ArmCost {
    /// `Config::label()` of the arm.
    pub config: String,
    /// Measured ns per particle push (sort time amortized naturally over
    /// the measurement window).
    pub cost_ns: f64,
}

/// Tuner-vs-sweep outcome on one deck.
#[derive(Serialize)]
pub struct DeckReport {
    /// Deck name.
    pub deck: String,
    /// Grid cells (the prior's input).
    pub cells: u64,
    /// Platform the cache prior was computed against.
    pub platform: String,
    /// Whether the prior said "grid fits LLC → start unsorted".
    pub prior_unsorted: bool,
    /// Steps per tuner epoch.
    pub epoch_steps: u64,
    /// Epochs the tuner ran.
    pub epochs: u64,
    /// Epochs discarded for telemetry truncation.
    pub truncated_epochs: u64,
    /// The arm the tuner committed to.
    pub tuned_config: String,
    /// The committed arm re-measured under the sweep protocol, ns/push.
    pub tuned_cost_ns: f64,
    /// Best fixed arm from the exhaustive sweep.
    pub best_config: String,
    /// Its cost, ns/push.
    pub best_cost_ns: f64,
    /// `tuned_cost_ns / best_cost_ns` — 1.0 is a perfect pick.
    pub ratio: f64,
    /// The full ablation: every fixed arm's measured cost.
    pub sweep: Vec<ArmCost>,
}

/// The `tune` target's result.
#[derive(Serialize)]
pub struct Report {
    /// One entry per deck.
    pub decks: Vec<DeckReport>,
}

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

/// Windows per fixed-config measurement; the minimum is reported.
/// Wall-clock noise is one-sided (preemption only slows a window down),
/// so min-of-N is the sharper estimate of an arm's true cost.
const MEASURE_WINDOWS: usize = 3;

/// Measure one fixed config on a fresh deck: apply, warm up, then time
/// `steps` steps of wall clock per particle pushed, taking the best of
/// [`MEASURE_WINDOWS`] windows. Each window covers the longest sort
/// interval, so every arm's sort cost is amortized naturally.
fn measure_fixed(build: &dyn Fn() -> Simulation, cfg: &Config, steps: usize) -> f64 {
    let mut sim = build();
    sim.apply_tune_config(cfg, 1);
    // warmup: populate sort scratch, settle the branch predictor, and get
    // past the first (full) sort before any timed window opens
    sim.run_on(&Serial, steps.min(5));
    let mut best = f64::INFINITY;
    for _ in 0..MEASURE_WINDOWS {
        let t0 = telemetry::now_ns();
        let stats = sim.run_on(&Serial, steps);
        let dt = telemetry::now_ns().saturating_sub(t0);
        if stats.pushed > 0 {
            best = best.min(dt as f64 / stats.pushed as f64);
        }
    }
    best
}

fn run_deck(name: &str, build: &dyn Fn() -> Simulation, platform_name: &str) -> DeckReport {
    let epoch_steps = env_usize("TUNE_EPOCH_STEPS", 12);
    let sweep_steps = env_usize("TUNE_SWEEP_STEPS", 50);
    let platform = memsim::platform::by_name(platform_name)
        .unwrap_or_else(|| panic!("unknown TUNE_PLATFORM {platform_name:?}"));

    let probe = build();
    let cells = probe.grid.cells();
    let prior_unsorted = prior::prefer_unsorted(&platform, cells);
    let arms = config_space(TILE, &tuner::DEFAULT_INTERVALS);

    // 1. the live tuned run: explore every arm, then a few committed epochs
    let mut sim = build();
    let tuner = Tuner::new(arms.clone(), epoch_steps)
        .with_cache_prior(prior_unsorted)
        .with_refinement(8);
    sim.set_tuner(TuneDriver::new(tuner));
    let tuned_steps = (arms.len() + 8 + 3) * epoch_steps;
    sim.run_on(&Serial, tuned_steps);
    let driver = sim.take_tuner().expect("tuner armed");
    let tuned_config = *driver
        .tuner()
        .committed()
        .or_else(|| driver.tuner().best().map(|(c, _)| c))
        .expect("tuner measured at least one arm");

    // 2. exhaustive sweep: every arm as a fixed config (the ablation)
    let sweep: Vec<ArmCost> = arms
        .iter()
        .map(|a| ArmCost { config: a.label(), cost_ns: measure_fixed(build, a, sweep_steps) })
        .collect();
    let best = sweep
        .iter()
        .min_by(|a, b| a.cost_ns.total_cmp(&b.cost_ns))
        .expect("non-empty sweep");

    // 3. the tuner's pick, re-measured under the sweep's own protocol.
    // The pick is itself one of the swept arms, so the sweep's sample of
    // it is equally valid — keep the min of the two (one-sided noise).
    let tuned_label = tuned_config.label();
    let tuned_cost_ns = sweep
        .iter()
        .filter(|a| a.config == tuned_label)
        .map(|a| a.cost_ns)
        .fold(measure_fixed(build, &tuned_config, sweep_steps), f64::min);

    let report = DeckReport {
        deck: name.to_string(),
        cells: cells as u64,
        platform: platform_name.to_string(),
        prior_unsorted,
        epoch_steps: epoch_steps as u64,
        epochs: driver.epochs(),
        truncated_epochs: driver.tuner().truncated_epochs(),
        tuned_config: tuned_label,
        tuned_cost_ns,
        best_config: best.config.clone(),
        best_cost_ns: best.cost_ns,
        ratio: tuned_cost_ns / best.cost_ns,
        sweep,
    };
    println!(
        "tune[{name}]: prior({platform_name}, {cells} cells) → {}; {} epochs ({} truncated)",
        if report.prior_unsorted { "start unsorted" } else { "start sorting" },
        report.epochs,
        report.truncated_epochs,
    );
    println!(
        "  tuned  {:<28} {:>8.2} ns/push\n  best   {:<28} {:>8.2} ns/push   ratio {:.3}",
        report.tuned_config, report.tuned_cost_ns, report.best_config, report.best_cost_ns,
        report.ratio
    );
    report
}

/// Run the tuner-vs-sweep comparison on both decks.
pub fn run() -> Report {
    let platform = std::env::var("TUNE_PLATFORM").unwrap_or_else(|_| "EPYC 7763".into());
    type DeckBuilder = Box<dyn Fn() -> Simulation>;
    let decks: Vec<(&str, DeckBuilder)> = vec![
        ("weibel", Box::new(|| Deck::weibel(8, 8, 8, 6, 0.4).build())),
        ("lpi", Box::new(|| Deck::lpi(16, 8, 8, 4).build())),
    ];
    Report {
        decks: decks.iter().map(|(name, build)| run_deck(name, build.as_ref(), &platform)).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tuner_converges_near_the_best_fixed_config() {
        if crate::skip_heavy_in_debug() {
            return;
        }
        let _g = crate::telemetry_test_lock();
        // short-but-real budget; the wide margin absorbs timer noise on a
        // busy CI host — `repro -- tune` reports the true ratio
        std::env::set_var("TUNE_EPOCH_STEPS", "6");
        std::env::set_var("TUNE_SWEEP_STEPS", "20");
        let report = run();
        std::env::remove_var("TUNE_EPOCH_STEPS");
        std::env::remove_var("TUNE_SWEEP_STEPS");
        assert_eq!(report.decks.len(), 2);
        for d in &report.decks {
            assert!(d.prior_unsorted, "both small decks fit the modelled LLC");
            assert!(d.epochs as usize >= 80, "{}: explored the space ({})", d.deck, d.epochs);
            assert!(d.tuned_cost_ns.is_finite() && d.best_cost_ns > 0.0);
            assert_eq!(d.sweep.len(), config_space(TILE, &tuner::DEFAULT_INTERVALS).len());
            assert!(
                d.ratio < 1.5,
                "{}: tuned {} ({:.2} ns) vs best {} ({:.2} ns): ratio {:.3}",
                d.deck,
                d.tuned_config,
                d.tuned_cost_ns,
                d.best_config,
                d.best_cost_ns,
                d.ratio
            );
        }
    }
}
