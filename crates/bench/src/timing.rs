//! Minimal wall-clock timing for the repro harness.
//!
//! Criterion benches (in `benches/`) provide statistically careful
//! numbers; the harness needs only quick, stable medians to print
//! figure-shaped output, so this module does warmup + median-of-reps.
//!
//! Timing runs on [`telemetry::timed`], so every measured repetition
//! shares the profiler's monotonic clock and — when profiling is
//! enabled — lands in the trace as a named span alongside the kernel
//! spans it encloses. When profiling is off `timed` still measures but
//! records nothing, so the harness output is identical either way.

/// Wall-time distribution of the measured reps: median for headline
/// numbers, min/p95/max so a noisy run is visible in the report instead
/// of silently folded into one number.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimingStats {
    /// Median measured rep, seconds.
    pub median_s: f64,
    /// Fastest measured rep, seconds.
    pub min_s: f64,
    /// Nearest-rank 95th percentile, seconds.
    pub p95_s: f64,
    /// Slowest measured rep, seconds.
    pub max_s: f64,
    /// Number of measured reps.
    pub reps: usize,
}

/// Measure `reps` invocations of `f` after `warmup` unmeasured ones and
/// return the full [`TimingStats`], with each measured rep recorded as a
/// `name` span when profiling is enabled.
pub fn measure_named(
    name: &'static str,
    warmup: usize,
    reps: usize,
    mut f: impl FnMut(),
) -> TimingStats {
    for _ in 0..warmup {
        f();
    }
    let mut samples: Vec<f64> = (0..reps.max(1))
        .map(|_| {
            let ((), ns) = telemetry::timed(name, &mut f);
            ns as f64 / 1e9
        })
        .collect();
    samples.sort_by(|a, b| a.total_cmp(b));
    let n = samples.len();
    // nearest-rank p95, matching the exporters' percentile convention
    let p95_idx = ((95.0 / 100.0 * n as f64).ceil() as usize).clamp(1, n) - 1;
    TimingStats {
        median_s: samples[n / 2],
        min_s: samples[0],
        p95_s: samples[p95_idx],
        max_s: samples[n - 1],
        reps: n,
    }
}

/// Median wall time of `reps` invocations of `f`, after `warmup` unmeasured
/// invocations, with each measured rep recorded as a `name` span when
/// profiling is enabled. Returns seconds.
pub fn median_time_named(
    name: &'static str,
    warmup: usize,
    reps: usize,
    f: impl FnMut(),
) -> f64 {
    measure_named(name, warmup, reps, f).median_s
}

/// [`median_time_named`] under the generic `bench.rep` span name.
pub fn median_time(warmup: usize, reps: usize, f: impl FnMut()) -> f64 {
    median_time_named("bench.rep", warmup, reps, f)
}

/// Keep a value alive and opaque to the optimizer (stable-Rust black box).
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_time_is_positive_and_ordered() {
        // runtime-dependent bounds so the optimizer cannot fold the work
        let small = black_box(100u64);
        let large = black_box(3_000_000u64);
        let fast = median_time(1, 5, || {
            black_box((0..small).fold(0u64, |a, i| a ^ i.wrapping_mul(31)));
        });
        let slow = median_time(1, 5, || {
            black_box((0..large).fold(0u64, |a, i| a ^ i.wrapping_mul(31)));
        });
        assert!(fast >= 0.0);
        assert!(slow > fast, "{slow} vs {fast}");
    }

    #[test]
    fn zero_reps_clamped() {
        let t = median_time(0, 0, || {});
        assert!(t >= 0.0);
    }

    #[test]
    fn stats_are_ordered_min_median_p95_max() {
        let s = measure_named("bench.timing-stats", 1, 9, || {
            black_box((0..black_box(20_000u64)).fold(0u64, |a, i| a ^ i.wrapping_mul(31)));
        });
        assert_eq!(s.reps, 9);
        assert!(s.min_s <= s.median_s, "{s:?}");
        assert!(s.median_s <= s.p95_s, "{s:?}");
        assert!(s.p95_s <= s.max_s, "{s:?}");
    }

    #[test]
    fn named_reps_recorded_when_profiling() {
        let _g = crate::telemetry_test_lock();
        telemetry::set_enabled(true);
        let t = median_time_named("bench.timing-test-rep", 0, 3, || {
            black_box((0..10_000u64).fold(0u64, |a, i| a ^ i));
        });
        telemetry::set_enabled(false);
        assert!(t >= 0.0);
        let snap = telemetry::snapshot();
        let reps =
            snap.events.iter().filter(|e| e.name == "bench.timing-test-rep").count();
        assert!(reps >= 3, "expected ≥3 recorded reps, saw {reps}");
    }
}
