//! Minimal wall-clock timing for the repro harness.
//!
//! Criterion benches (in `benches/`) provide statistically careful
//! numbers; the harness needs only quick, stable medians to print
//! figure-shaped output, so this module does warmup + median-of-reps.

use std::time::Instant;

/// Median wall time of `reps` invocations of `f`, after `warmup` unmeasured
/// invocations. Returns seconds.
pub fn median_time(warmup: usize, reps: usize, mut f: impl FnMut()) -> f64 {
    for _ in 0..warmup {
        f();
    }
    let mut samples: Vec<f64> = (0..reps.max(1))
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(|a, b| a.total_cmp(b));
    samples[samples.len() / 2]
}

/// Keep a value alive and opaque to the optimizer (stable-Rust black box).
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_time_is_positive_and_ordered() {
        // runtime-dependent bounds so the optimizer cannot fold the work
        let small = black_box(100u64);
        let large = black_box(3_000_000u64);
        let fast = median_time(1, 5, || {
            black_box((0..small).fold(0u64, |a, i| a ^ i.wrapping_mul(31)));
        });
        let slow = median_time(1, 5, || {
            black_box((0..large).fold(0u64, |a, i| a ^ i.wrapping_mul(31)));
        });
        assert!(fast >= 0.0);
        assert!(slow > fast, "{slow} vs {fast}");
    }

    #[test]
    fn zero_reps_clamped() {
        let t = median_time(0, 0, || {});
        assert!(t >= 0.0);
    }
}
