//! Figure 7 — impact of sorting order on the VPIC particle push across
//! four GPU architectures.
//!
//! The cell sequences are real: an LPI-like particle population is
//! ordered by each of the four sorts (`psort`), and the `memsim` push
//! model executes the resulting gather/scatter streams. Paper shapes:
//! strided >2× faster than standard on NVIDIA, tiled ≈2× strided; on AMD,
//! random and standard are an order of magnitude (or more) slower than
//! strided/tiled.

use memsim::gpu::GpuModel;
use memsim::push::{gpu_push, PushCost, PushSpec};
use psort::patterns::random_cells;
use psort::{sort_pairs, SortOrder};
use serde::Serialize;

/// Grid cells for the modelled push (big enough that per-cell data does
/// not fit any GPU's scaled LLC).
pub const GRID_CELLS: usize = 1 << 15;

/// Particles (≈6 per cell, LPI-like occupancy).
pub const PARTICLES: usize = 200_000;

/// Problem scale: the paper's LPI runs use grids ~100× larger.
pub const SCALE: f64 = 100.0;

/// The four GPUs of Figure 7.
pub const GPUS: [&str; 4] = ["V100", "A100", "MI250", "MI300A (GPU)"];

/// One bar of Figure 7.
#[derive(Debug, Clone, Serialize)]
pub struct Fig7Row {
    /// GPU platform.
    pub platform: String,
    /// Particle order.
    pub order: String,
    /// Modelled push time, seconds.
    pub time: f64,
    /// Speedup over the standard order on the same GPU.
    pub speedup_vs_standard: f64,
}

/// Cell sequence for one order (shared across platforms).
pub fn ordered_cells(order: SortOrder) -> Vec<u32> {
    let mut cells = random_cells(PARTICLES, GRID_CELLS, 0xF167);
    let mut idx: Vec<u32> = (0..PARTICLES as u32).collect();
    sort_pairs(order, &mut cells, &mut idx);
    cells
}

/// Model one (platform, order) cell.
pub fn push_cost(platform_name: &str, order: SortOrder) -> PushCost {
    let platform = memsim::platform::by_name(platform_name).expect("known GPU");
    let cells = ordered_cells(order);
    let model = GpuModel::scaled(platform, SCALE);
    gpu_push(&model, &PushSpec::vpic(&cells, GRID_CELLS))
}

/// Tile size for the push: half the (scaled) LLC's worth of cells, so a
/// tile's interpolator+accumulator working set is cache-resident with
/// headroom (the paper's 3×cores rule has the same intent — fill the
/// cache — expressed in its gather-scatter element size).
pub fn tile_for(platform_name: &str) -> usize {
    let p = memsim::platform::by_name(platform_name).expect("known GPU");
    let scaled_llc = p.llc_bytes as f64 / SCALE;
    let cells = scaled_llc / (2.0 * memsim::push::CELL_FOOTPRINT_BYTES as f64);
    (cells as usize).clamp(16, GRID_CELLS / 4)
}

/// Produce and print Figure 7.
pub fn run() -> Vec<Fig7Row> {
    println!("Figure 7 — push time by sorting order (modelled GPUs, real orders)");
    println!(
        "{:<14} {:>11} {:>11} {:>11} {:>11}   speedup(tiled/std)",
        "platform", "random", "standard", "strided", "tiled"
    );
    let mut rows = Vec::new();
    for gpu in GPUS {
        let tile = tile_for(gpu);
        let orders = SortOrder::fig7_set(tile);
        let times: Vec<f64> = orders.iter().map(|&o| push_cost(gpu, o).cost.time).collect();
        let std_time = times[1];
        for (o, &t) in orders.iter().zip(&times) {
            rows.push(Fig7Row {
                platform: gpu.to_string(),
                order: o.name().to_string(),
                time: t,
                speedup_vs_standard: std_time / t,
            });
        }
        println!(
            "{:<14} {:>11} {:>11} {:>11} {:>11}   {:.1}x",
            gpu,
            crate::fmt_time(times[0]),
            crate::fmt_time(times[1]),
            crate::fmt_time(times[2]),
            crate::fmt_time(times[3]),
            std_time / times[3]
        );
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    fn time_of(rows: &[Fig7Row], p: &str, o: &str) -> f64 {
        rows.iter().find(|r| r.platform == p && r.order == o).unwrap().time
    }

    #[test]
    fn nvidia_strided_beats_standard_by_2x() {
        if crate::skip_heavy_in_debug() {
            return;
        }
        let rows = run();
        for p in ["V100", "A100"] {
            let std_t = time_of(&rows, p, "standard");
            let str_t = time_of(&rows, p, "strided");
            assert!(
                std_t / str_t > 2.0,
                "{p}: paper says strided >2x faster (got {:.2}x)",
                std_t / str_t
            );
            let til_t = time_of(&rows, p, "tiled-strided");
            assert!(til_t < str_t, "{p}: tiled must beat strided");
        }
    }

    #[test]
    fn amd_random_and_standard_are_much_slower() {
        if crate::skip_heavy_in_debug() {
            return;
        }
        let rows = run();
        {
            let p = "MI250";
            let rnd = time_of(&rows, p, "random");
            let std_t = time_of(&rows, p, "standard");
            let best = time_of(&rows, p, "tiled-strided").min(time_of(&rows, p, "strided"));
            assert!(
                rnd / best > 5.0 && std_t / best > 5.0,
                "{p}: paper says random/standard are >>slower: rnd {:.1}x std {:.1}x",
                rnd / best,
                std_t / best
            );
        }
    }

    #[test]
    fn headline_speedup_up_to_37x_is_in_range() {
        if crate::skip_heavy_in_debug() {
            return;
        }
        // conclusion: "up to 37× faster than using the standard sorting
        // order on GPUs" — the best (platform, order) speedup should be
        // of that magnitude (within a factor ~3)
        let rows = run();
        let best = rows
            .iter()
            .map(|r| r.speedup_vs_standard)
            .fold(0.0, f64::max);
        assert!((5.0..120.0).contains(&best), "best speedup {best}");
    }

    #[test]
    fn ordered_cells_are_permutations() {
        if crate::skip_heavy_in_debug() {
            return;
        }
        let base = {
            let mut b = ordered_cells(SortOrder::Standard);
            b.sort_unstable();
            b
        };
        for order in SortOrder::fig7_set(64) {
            let mut c = ordered_cells(order);
            c.sort_unstable();
            assert_eq!(c, base, "{order} changed the population");
        }
    }
}
