//! `repro -- gpu`: the one-sweep SimGpu target.
//!
//! For every Table-1 GPU the sweep runs the *same* Weibel deck through
//! `pk::SimGpu` — real kernels, bit-identical to `Serial`, with every
//! memory access charged through the `memsim` cost model — once per
//! sort-order arm, and then checks three things the paper claims:
//!
//! 1. **Crossover**: the executed per-order push costs (from the SimGpu
//!    ledger, i.e. the cell streams the simulation actually visited)
//!    rank the orders the same way the standalone `memsim::push` model
//!    ranks the deck's initial population (Figs 6–8 winners).
//! 2. **Tuning**: a [`tuner::Tuner`] over [`tuner::gpu_config_space`],
//!    seeded with the particle-aware cache prior and fed the modeled
//!    costs, commits to an arm within 10% of the exhaustive sweep's best.
//! 3. **Rooflines**: every (platform, order) push kernel is placed under
//!    the platform's roofline (`memsim::roofline`) in one pass — the Fig 8
//!    plot for *all six* GPUs, saved as `results/gpu-roofline.json`.
//!
//! The deck is scaled per platform: the model LLC is shrunk until the
//! grid's push working set is ~4× the cache, which puts every GPU on the
//! steep side of the Fig 9 cliff where sorting order matters.
//!
//! Knobs: `GPU_STEPS` (measured steps per arm, default 6), `GPU_WARMUP`
//! (unmeasured settle steps, default 2).

use memsim::gpu::GpuModel;
use memsim::platform::Platform;
use memsim::push::{gpu_push, grid_footprint_bytes, PushSpec, CELL_FOOTPRINT_BYTES};
use memsim::roofline::Roofline;
use memsim::trace::KernelCost;
use pk::SimGpu;
use psort::{sort_pairs, SortOrder};
use serde::Serialize;
use tuner::{gpu_cache_prior, gpu_config_space, Config, Measurement, Tuner};
use vpic_core::{Deck, Simulation};

/// Weibel deck shape: 24³ cells × 6 ppc (counter-streaming, so two
/// electron beams plus a neutralizing ion background). 24³ = 13,824
/// cells is the paper's Fig 9 V100 sweet spot; with the per-platform
/// LLC scale below every GPU sits past its cache cliff.
const SHAPE: (usize, usize, usize) = (24, 24, 24);
const PPC: usize = 6;
const U_BEAM: f32 = 0.4;

/// Sort cadence for every sorting arm (and the tuner's interval axis).
const SORT_INTERVAL: usize = 5;

/// One sort-order arm on one platform.
#[derive(Debug, Clone, Serialize)]
pub struct OrderRow {
    /// Arm name: `unsorted`, `standard`, `strided`, `tiled-strided`.
    pub order: String,
    /// Modeled time per step from the SimGpu ledger, seconds.
    pub modeled_step_s: f64,
    /// Of that, the push kernel per step.
    pub push_step_s: f64,
    /// Amortized sort charge per step.
    pub sort_step_s: f64,
    /// Standalone `memsim::push` prediction on the deck's initial
    /// population pre-ordered by this arm, seconds per step.
    pub predicted_push_s: f64,
    /// Modeled cost per particle push, ns.
    pub cost_ns_per_push: f64,
}

/// One GPU platform's sweep + tuner outcome.
#[derive(Debug, Clone, Serialize)]
pub struct PlatformReport {
    /// Platform name (Table 1).
    pub platform: String,
    /// LLC shrink factor applied so the deck sits past the cache cliff.
    pub scale: f64,
    /// The scaled model LLC, bytes.
    pub scaled_llc_bytes: u64,
    /// Tile parameter for the tiled-strided arm.
    pub tile: usize,
    /// What the particle-aware cache prior said (false ⇒ sort).
    pub prior_unsorted: bool,
    /// Per-arm executed + predicted costs.
    pub orders: Vec<OrderRow>,
    /// Orders fastest→slowest by executed push time.
    pub executed_ranking: Vec<String>,
    /// Orders fastest→slowest by standalone prediction.
    pub predicted_ranking: Vec<String>,
    /// Executed and predicted agree on the winning order.
    pub winner_agrees: bool,
    /// Executed and predicted agree on the full ordering.
    pub ranking_agrees: bool,
    /// The arm the tuner committed to.
    pub tuned_config: String,
    /// Its cost under the sweep protocol, ns/push.
    pub tuned_cost_ns: f64,
    /// Exhaustive-sweep best arm.
    pub best_config: String,
    /// Its cost, ns/push.
    pub best_cost_ns: f64,
    /// `tuned / best` — acceptance asks ≤ 1.10.
    pub ratio: f64,
    /// Epochs the tuner spent before committing.
    pub tuner_epochs: u64,
}

/// The whole `gpu` target: one report per Table-1 GPU.
#[derive(Debug, Clone, Serialize)]
pub struct Report {
    /// Deck name.
    pub deck: String,
    /// Grid cells.
    pub grid_cells: u64,
    /// Particles across species.
    pub particles: u64,
    /// Sort cadence of the sorting arms.
    pub sort_interval: u64,
    /// Measured steps per arm.
    pub steps: u64,
    /// Unmeasured warmup steps per arm.
    pub warmup: u64,
    /// Per-platform results.
    pub platforms: Vec<PlatformReport>,
}

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

fn build_deck() -> Simulation {
    Deck::weibel(SHAPE.0, SHAPE.1, SHAPE.2, PPC, U_BEAM).build()
}

fn order_name(order: Option<SortOrder>) -> String {
    order.map_or_else(|| "unsorted".to_string(), |o| o.name().to_string())
}

/// LLC shrink factor putting this platform past the cache cliff: the
/// scaled cache is a quarter of the deck's grid footprint, so the push
/// working set spills and sorting order decides the bandwidth bill.
fn scale_for(platform: &Platform, cells: usize) -> f64 {
    (4.0 * platform.llc_bytes as f64 / grid_footprint_bytes(cells) as f64).max(1.0)
}

/// Tile parameter: half the scaled LLC's worth of cells (same rule as
/// `fig7`, applied to the per-platform scale).
fn tile_for(scaled_llc: u64, cells: usize) -> usize {
    let t = scaled_llc as f64 / (2.0 * CELL_FOOTPRINT_BYTES as f64);
    (t as usize).clamp(16, (cells / 4).max(16))
}

/// Run one arm on a fresh deck and return the modeled measurement: the
/// SimGpu ledger's nanoseconds slot straight into [`Measurement`] (the
/// tuner only ever compares costs, so modeled and wall ns are
/// interchangeable).
fn measure_arm(
    platform: &Platform,
    scale: f64,
    cfg: &Config,
    warmup: usize,
    steps: usize,
) -> Measurement {
    let mut sim = build_deck();
    sim.apply_tune_config(cfg, 1);
    let gpu = SimGpu::scaled(platform.clone(), scale);
    sim.run_on(&gpu, warmup);
    gpu.reset();
    let stats = sim.run_on(&gpu, steps);
    let sorts = gpu.records().iter().filter(|r| r.label == "sort").count() as u64;
    Measurement {
        steps: steps as u64,
        pushed: stats.pushed as u64,
        crossings: stats.crossings as u64,
        step_ns: (gpu.modeled_time() * 1e9) as u64,
        sort_ns: (gpu.kernel_time("sort") * 1e9) as u64,
        sorts,
        truncated: false,
    }
}

/// Per-kernel step costs for one arm (the sweep's detailed row).
fn run_order(
    platform: &Platform,
    scale: f64,
    order: Option<SortOrder>,
    warmup: usize,
    steps: usize,
) -> (f64, f64, f64, f64) {
    let mut sim = build_deck();
    sim.sort_order = order;
    sim.sort_interval = SORT_INTERVAL;
    let gpu = SimGpu::scaled(platform.clone(), scale);
    sim.run_on(&gpu, warmup);
    gpu.reset();
    let stats = sim.run_on(&gpu, steps);
    let s = steps as f64;
    (
        gpu.modeled_time() / s,
        gpu.kernel_time("push") / s,
        gpu.kernel_time("sort") / s,
        gpu.modeled_time() * 1e9 / stats.pushed.max(1) as f64,
    )
}

/// Standalone prediction: each species' initial cells, pre-ordered by
/// the arm, through `memsim::push::gpu_push` — the Figs 6–8 methodology,
/// with zero simulation in the loop. Returns the summed per-step push
/// time and the largest species' [`KernelCost`] (the roofline sample).
fn predict_order(model: &GpuModel, order: Option<SortOrder>) -> (f64, KernelCost) {
    let sim = build_deck();
    let cells = sim.grid.cells();
    let mut total = 0.0;
    let mut biggest: Option<(usize, KernelCost)> = None;
    for s in &sim.species {
        if s.cell.is_empty() {
            continue;
        }
        let mut keys = s.cell.clone();
        if let Some(o) = order {
            let mut idx: Vec<u32> = (0..keys.len() as u32).collect();
            sort_pairs(o, &mut keys, &mut idx);
        }
        let cost = gpu_push(model, &PushSpec::vpic(&keys, cells)).cost;
        total += cost.time;
        if biggest.as_ref().is_none_or(|(n, _)| s.len() > *n) {
            biggest = Some((s.len(), cost));
        }
    }
    (total, biggest.expect("deck has particles").1)
}

fn ranking(rows: &[(String, f64)]) -> Vec<String> {
    let mut sorted: Vec<_> = rows.to_vec();
    sorted.sort_by(|a, b| a.1.total_cmp(&b.1));
    sorted.into_iter().map(|(name, _)| name).collect()
}

fn run_platform(
    platform: &Platform,
    warmup: usize,
    steps: usize,
    rooflines: &mut Vec<memsim::roofline::RooflineSample>,
) -> PlatformReport {
    let probe = build_deck();
    let cells = probe.grid.cells();
    let particles = probe.particle_count();
    let scale = scale_for(platform, cells);
    let model = GpuModel::scaled(platform.clone(), scale);
    let scaled_llc = model.llc_bytes();
    let tile = tile_for(scaled_llc, cells);
    // the prior must see the same cache the model charges: a platform
    // copy with the scaled LLC, and the resident particle window
    let scaled_platform = {
        let mut p = platform.clone();
        p.llc_bytes = scaled_llc;
        p
    };
    let resident = cluster::scaling::resident_particles(platform);
    let prior_unsorted = gpu_cache_prior(&scaled_platform, cells, resident);

    // 1. executed sweep: every order through SimGpu, plus the standalone
    // prediction for the same arm
    let arms = SortOrder::gpu_arm_set(tile);
    let roof = Roofline::of(platform);
    let mut orders = Vec::new();
    for order in arms {
        let name = order_name(order);
        let (step_s, push_s, sort_s, cost_ns) = run_order(platform, scale, order, warmup, steps);
        let (predicted, cost) = predict_order(&model, order);
        rooflines.push(roof.sample(format!("{} / {name}", platform.name), &cost));
        orders.push(OrderRow {
            order: name,
            modeled_step_s: step_s,
            push_step_s: push_s,
            sort_step_s: sort_s,
            predicted_push_s: predicted,
            cost_ns_per_push: cost_ns,
        });
    }
    let executed_ranking =
        ranking(&orders.iter().map(|r| (r.order.clone(), r.push_step_s)).collect::<Vec<_>>());
    let predicted_ranking =
        ranking(&orders.iter().map(|r| (r.order.clone(), r.predicted_push_s)).collect::<Vec<_>>());
    let winner_agrees = executed_ranking[0] == predicted_ranking[0];
    let ranking_agrees = executed_ranking == predicted_ranking;

    // 2. the tuner over the same space, fed modeled costs. Costs are
    // deterministic (no wall clock anywhere), so one epoch per arm is an
    // exact measurement and the engine commits after one pass.
    let tuner_arms = gpu_config_space(tile, &[SORT_INTERVAL]);
    // measurements are deterministic (fresh deck, modeled ns, no wall
    // clock), so one measurement per arm serves both the tuner's epochs
    // and the exhaustive sweep
    let mut measured: std::collections::HashMap<String, Measurement> = Default::default();
    let mut measure = |cfg: &Config| {
        *measured
            .entry(cfg.label())
            .or_insert_with(|| measure_arm(platform, scale, cfg, warmup, steps))
    };
    let mut t = Tuner::new(tuner_arms.clone(), steps).with_cache_prior(prior_unsorted);
    let mut epochs = 0u64;
    while t.committed().is_none() && epochs < 4 * tuner_arms.len() as u64 {
        let cfg = *t.current();
        let m = measure(&cfg);
        t.finish_epoch(&m);
        epochs += 1;
    }
    let tuned = *t
        .committed()
        .or_else(|| t.best().map(|(c, _)| c))
        .expect("tuner measured at least one arm");

    // 3. exhaustive sweep under the identical protocol
    let sweep: Vec<(String, f64)> = tuner_arms
        .iter()
        .map(|a| (a.label(), measure(a).cost_per_particle(a.interval)))
        .collect();
    let (best_config, best_cost_ns) = sweep
        .iter()
        .min_by(|a, b| a.1.total_cmp(&b.1))
        .cloned()
        .expect("non-empty sweep");
    let tuned_label = tuned.label();
    let tuned_cost_ns = sweep
        .iter()
        .find(|(l, _)| *l == tuned_label)
        .map(|(_, c)| *c)
        .unwrap_or_else(|| {
            measure_arm(platform, scale, &tuned, warmup, steps).cost_per_particle(tuned.interval)
        });

    let report = PlatformReport {
        platform: platform.name.to_string(),
        scale,
        scaled_llc_bytes: scaled_llc,
        tile,
        prior_unsorted,
        orders,
        executed_ranking,
        predicted_ranking,
        winner_agrees,
        ranking_agrees,
        tuned_config: tuned_label,
        tuned_cost_ns,
        best_config: best_config.clone(),
        best_cost_ns,
        ratio: tuned_cost_ns / best_cost_ns,
        tuner_epochs: epochs,
    };
    println!(
        "{:<14} scale {:>6.1} tile {:>4} prior {:<8} winner {:<13} ({}) tuned {:<28} ratio {:.3}",
        report.platform,
        report.scale,
        report.tile,
        if report.prior_unsorted { "unsorted" } else { "sort" },
        report.executed_ranking[0],
        if report.winner_agrees { "agrees" } else { "DISAGREES" },
        report.tuned_config,
        report.ratio
    );
    let _ = particles; // reported at the top level
    report
}

/// Run the full GPU sweep: executed costs, crossover check, tuner vs
/// exhaustive, and the all-platform roofline file.
pub fn run() -> Report {
    let steps = env_usize("GPU_STEPS", 6);
    let warmup = env_usize("GPU_WARMUP", 2);
    let probe = build_deck();
    println!(
        "SimGpu sweep — weibel {}³ ({} cells, {} particles), {} warmup + {} measured steps/arm",
        SHAPE.0,
        probe.grid.cells(),
        probe.particle_count(),
        warmup,
        steps
    );
    let mut rooflines = Vec::new();
    let platforms: Vec<PlatformReport> = memsim::platform::gpus()
        .iter()
        .map(|p| run_platform(p, warmup, steps, &mut rooflines))
        .collect();
    match crate::save_json("gpu-roofline", &rooflines) {
        Ok(path) => println!("rooflines: {} samples → {}", rooflines.len(), path.display()),
        Err(e) => eprintln!("failed to save rooflines: {e}"),
    }
    Report {
        deck: "weibel".into(),
        grid_cells: probe.grid.cells() as u64,
        particles: probe.particle_count() as u64,
        sort_interval: SORT_INTERVAL as u64,
        steps: steps as u64,
        warmup: warmup as u64,
        platforms,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crossover_and_tuner_agree_on_every_gpu() {
        if crate::skip_heavy_in_debug() {
            return;
        }
        let report = run();
        assert_eq!(report.platforms.len(), memsim::platform::gpus().len());
        for p in &report.platforms {
            assert!(
                p.winner_agrees,
                "{}: executed winner {:?} vs predicted {:?}",
                p.platform, p.executed_ranking, p.predicted_ranking
            );
            assert!(
                p.ratio <= 1.10,
                "{}: tuned {} ({:.2} ns) vs best {} ({:.2} ns): ratio {:.3}",
                p.platform, p.tuned_config, p.tuned_cost_ns, p.best_config, p.best_cost_ns, p.ratio
            );
            // past the cache cliff a sorted order must beat unsorted
            let unsorted = p.orders.iter().find(|o| o.order == "unsorted").unwrap();
            let best_sorted = p
                .orders
                .iter()
                .filter(|o| o.order != "unsorted")
                .map(|o| o.push_step_s)
                .fold(f64::INFINITY, f64::min);
            assert!(
                best_sorted < unsorted.push_step_s,
                "{}: sorting must pay past the cliff",
                p.platform
            );
        }
    }

    #[test]
    fn scale_puts_every_gpu_past_the_cliff() {
        let cells = SHAPE.0 * SHAPE.1 * SHAPE.2;
        for p in memsim::platform::gpus() {
            let scale = scale_for(&p, cells);
            let model = GpuModel::scaled(p.clone(), scale);
            assert!(
                grid_footprint_bytes(cells) > model.llc_bytes(),
                "{}: grid must spill the scaled LLC",
                p.name
            );
        }
    }
}
