//! Checkpoint cost: what one snapshot costs relative to one step.
//!
//! Measures the Weibel deck's serialize-to-memory, atomic-write-to-disk,
//! and restore times against the median step time, and verifies end to
//! end that a checkpoint/restore mid-run resumes bit-identically to the
//! uninterrupted run — the number EXPERIMENTS.md quotes for "checkpoint
//! cost" and CI regression-checks via `results/ckpt.json`.

use crate::timing::{black_box, median_time_named};
use serde::Serialize;
use vpic_core::{Deck, Simulation};

/// The `ckpt` target's result set.
#[derive(Serialize)]
pub struct Report {
    /// Deck the measurements ran on.
    pub deck: String,
    /// Particles in the deck.
    pub particles: u64,
    /// Grid cells.
    pub cells: u64,
    /// Snapshot size on the wire, bytes.
    pub snapshot_bytes: u64,
    /// Median simulation step, milliseconds.
    pub step_ms: f64,
    /// Median serialize-to-memory, milliseconds.
    pub serialize_ms: f64,
    /// Median atomic write to disk (temp file + fsync + rename), ms.
    pub disk_write_ms: f64,
    /// Median restore-from-bytes, milliseconds.
    pub restore_ms: f64,
    /// Serialize cost in units of steps (the amortization number: a
    /// checkpoint every N steps costs `this / N` relative overhead).
    pub serialize_cost_steps: f64,
    /// Whether a mid-run checkpoint/restore resumed bit-identically to
    /// the uninterrupted run.
    pub resume_bit_identical: bool,
}

fn bit_identical(a: &Simulation, b: &Simulation) -> bool {
    let fb = |v: &[f32]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
    a.step_count() == b.step_count()
        && fb(&a.fields.ex) == fb(&b.fields.ex)
        && fb(&a.fields.ey) == fb(&b.fields.ey)
        && fb(&a.fields.ez) == fb(&b.fields.ez)
        && fb(&a.fields.bx) == fb(&b.fields.bx)
        && fb(&a.fields.by) == fb(&b.fields.by)
        && fb(&a.fields.bz) == fb(&b.fields.bz)
        && a.species.len() == b.species.len()
        && a.species.iter().zip(&b.species).all(|(sa, sb)| {
            sa.cell == sb.cell
                && fb(&sa.dx) == fb(&sb.dx)
                && fb(&sa.dy) == fb(&sb.dy)
                && fb(&sa.dz) == fb(&sb.dz)
                && fb(&sa.ux) == fb(&sb.ux)
                && fb(&sa.uy) == fb(&sb.uy)
                && fb(&sa.uz) == fb(&sb.uz)
        })
}

/// Run the checkpoint-cost measurement and print the summary table.
pub fn run() -> Report {
    let deck = Deck::weibel(12, 12, 12, 8, 0.3);
    let mut sim = deck.build();
    sim.run(5); // past the initial transient

    let (warmup, reps) = (2, 9);
    let step_s = median_time_named("bench.ckpt.step", warmup, reps, || {
        sim.step();
    });
    let snapshot_bytes = sim.checkpoint_bytes().len() as u64;
    let serialize_s = median_time_named("bench.ckpt.serialize", warmup, reps, || {
        black_box(sim.checkpoint_bytes());
    });

    let dir = std::env::temp_dir().join(format!("vpic-ckpt-bench-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("bench.vpck");
    let disk_s = median_time_named("bench.ckpt.disk", warmup, reps, || {
        sim.checkpoint_to(&path).expect("atomic save");
    });
    let bytes = std::fs::read(&path).expect("read snapshot back");
    let restore_s = median_time_named("bench.ckpt.restore", warmup, reps, || {
        black_box(Simulation::restore_bytes(&bytes).expect("restore"));
    });
    std::fs::remove_dir_all(&dir).ok();

    // end-to-end: interrupt at step k, restore, run to n — must match
    // the uninterrupted run exactly
    let mut full = deck.build();
    full.run(12);
    let mut half = deck.build();
    half.run(5);
    let mut resumed =
        Simulation::restore_bytes(&half.checkpoint_bytes()).expect("mid-run restore");
    resumed.run(7);
    let resume_bit_identical = bit_identical(&full, &resumed);

    let report = Report {
        deck: "weibel 12x12x12 ppc=8".into(),
        particles: sim.particle_count() as u64,
        cells: sim.grid.cells() as u64,
        snapshot_bytes,
        step_ms: step_s * 1e3,
        serialize_ms: serialize_s * 1e3,
        disk_write_ms: disk_s * 1e3,
        restore_ms: restore_s * 1e3,
        serialize_cost_steps: if step_s > 0.0 { serialize_s / step_s } else { 0.0 },
        resume_bit_identical,
    };

    println!("checkpoint cost — {} ({} particles)", report.deck, report.particles);
    println!("  snapshot size       {:>10} bytes", report.snapshot_bytes);
    println!("  step                {:>10.3} ms", report.step_ms);
    println!(
        "  serialize           {:>10.3} ms  ({:.2} steps)",
        report.serialize_ms, report.serialize_cost_steps
    );
    println!("  atomic disk write   {:>10.3} ms", report.disk_write_ms);
    println!("  restore             {:>10.3} ms", report.restore_ms);
    println!("  resume bit-identical: {}", report.resume_bit_identical);
    assert!(report.resume_bit_identical, "restore must resume bit-identically");
    report
}
