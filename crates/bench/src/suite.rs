//! `repro -- suite`: the continuous perf-regression harness.
//!
//! Runs the fast measured targets back-to-back with telemetry enabled
//! and folds their wall times plus the streaming-histogram deltas each
//! target produced (per-phase step durations, dispatch latency, sort
//! occupancy, exchange overlap — see `telemetry::metrics`) into one
//! versioned `BENCH.json`. A committed baseline plus [`crate::regress`]
//! turns any checkout into a perf gate: run the suite, diff against the
//! baseline, fail on >15% median regressions.
//!
//! The schema is versioned (`bench_schema`) so the comparator can refuse
//! files it does not understand instead of silently mis-reading them,
//! and the host descriptor travels with the numbers so cross-machine
//! diffs are visibly apples-to-oranges.

use serde::Serialize;
use std::collections::BTreeMap;

/// Current `BENCH.json` schema version.
pub const BENCH_SCHEMA: u64 = 1;

/// The machine that produced the numbers. Medians only transfer within
/// the same descriptor; the comparator reports a mismatch as a warning.
#[derive(Serialize, Debug, Clone, PartialEq)]
pub struct Host {
    /// `std::env::consts::OS`.
    pub os: String,
    /// `std::env::consts::ARCH`.
    pub arch: String,
    /// `std::thread::available_parallelism()`.
    pub hardware_threads: u64,
}

/// One streaming-histogram distribution recorded while a target ran.
#[derive(Serialize, Debug, Clone, PartialEq)]
pub struct HistRow {
    /// Histogram name (e.g. `sim.step`, `pk.pool.dispatch.ns`).
    pub name: String,
    /// Samples recorded during this target.
    pub count: u64,
    /// Mean sample value.
    pub mean: u64,
    /// Nearest-rank percentiles over bucket floors (≤12.5% quantization).
    pub p50: u64,
    /// 95th percentile.
    pub p95: u64,
    /// 99th percentile.
    pub p99: u64,
}

/// One suite target's results.
#[derive(Serialize, Debug, Clone, PartialEq)]
pub struct TargetRow {
    /// Target name as passed to `repro`.
    pub name: String,
    /// Wall time of one full target run, seconds.
    pub wall_s: f64,
    /// Histogram deltas attributable to this target.
    pub hists: Vec<HistRow>,
}

/// The whole `BENCH.json` document.
#[derive(Serialize, Debug, Clone, PartialEq)]
pub struct BenchReport {
    /// Schema version ([`BENCH_SCHEMA`]).
    pub bench_schema: u64,
    /// `git rev-parse --short HEAD` (override: `BENCH_GIT_REV`).
    pub git_rev: String,
    /// Measuring host descriptor.
    pub host: Host,
    /// Per-target medians and distributions, in run order.
    pub targets: Vec<TargetRow>,
    /// Targets that did *not* produce a row, and why: skipped via
    /// `SUITE_SKIP`, or named in [`SUITE_TARGETS`] but not wired to a
    /// runner. An empty list means every target ran. The comparator
    /// ignores this field, but a missing target shows up here instead of
    /// silently vanishing from the report.
    pub notes: Vec<String>,
}

/// The fast measured targets the suite runs, in order. `tune` and `gpu`
/// run with short budgets (see [`run`]) so the whole suite stays
/// CI-sized. `SUITE_SKIP` (comma-separated names) drops targets from a
/// run; each skip is recorded in [`BenchReport::notes`].
pub const SUITE_TARGETS: [&str; 9] =
    ["dispatch", "push", "field", "tune", "gpu", "ckpt", "tile", "ranks", "serve"];

fn git_rev() -> String {
    if let Ok(rev) = std::env::var("BENCH_GIT_REV") {
        return rev;
    }
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .map(|o| String::from_utf8_lossy(&o.stdout).trim().to_string())
        .unwrap_or_else(|| "unknown".to_string())
}

fn host() -> Host {
    Host {
        os: std::env::consts::OS.to_string(),
        arch: std::env::consts::ARCH.to_string(),
        hardware_threads: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
            as u64,
    }
}

/// Turn a metrics delta into sorted rows (BTreeMap iteration order, so
/// the report is deterministic for a fixed set of recordings).
fn hist_rows(delta: &telemetry::MetricsSnapshot) -> Vec<HistRow> {
    delta
        .hists
        .iter()
        .filter(|(_, h)| h.count > 0)
        .map(|(name, h)| HistRow {
            name: name.clone(),
            count: h.count,
            mean: h.mean(),
            p50: h.percentile(50.0),
            p95: h.percentile(95.0),
            p99: h.percentile(99.0),
        })
        .collect()
}

/// Set `key` only when the caller hasn't: suite runs want short tuner
/// budgets, explicit env still wins.
fn default_env(key: &str, value: &str) {
    if std::env::var_os(key).is_none() {
        std::env::set_var(key, value);
    }
}

/// Run one target, returning its wall time and histogram deltas.
fn run_one(name: &str, run: impl FnOnce()) -> TargetRow {
    let before = telemetry::metrics_snapshot();
    let t0 = std::time::Instant::now();
    run();
    let wall_s = t0.elapsed().as_secs_f64();
    let after = telemetry::metrics_snapshot();
    TargetRow { name: name.to_string(), wall_s, hists: hist_rows(&after.delta_since(&before)) }
}

/// Run the full suite and return the report. Telemetry is force-enabled
/// for the duration so the hot-path histograms actually fill; the prior
/// enabled state is restored on exit.
pub fn run() -> BenchReport {
    // the tuner's exhaustive sweep dominates suite wall time at default
    // budgets; shrink it unless the caller asked for something specific
    default_env("TUNE_EPOCH_STEPS", "6");
    default_env("TUNE_SWEEP_STEPS", "20");
    default_env("TILE_STEPS", "10");
    default_env("SERVE_TENANTS", "120");
    default_env("SERVE_STEPS", "6");
    // the GPU sweep's modeled cost is deterministic, so a short budget
    // loses no fidelity — only wall time
    default_env("GPU_STEPS", "3");
    default_env("GPU_WARMUP", "1");

    let skip: Vec<String> = std::env::var("SUITE_SKIP")
        .map(|v| v.split(',').map(|s| s.trim().to_string()).filter(|s| !s.is_empty()).collect())
        .unwrap_or_default();

    let was_enabled = telemetry::enabled();
    telemetry::set_enabled(true);

    let mut targets = Vec::new();
    let mut notes = Vec::new();
    for name in SUITE_TARGETS {
        if skip.iter().any(|s| s == name) {
            println!("── suite: {name} (skipped via SUITE_SKIP) ──");
            notes.push(format!("{name}: skipped via SUITE_SKIP"));
            continue;
        }
        println!("── suite: {name} ──");
        let row = match name {
            "dispatch" => run_one(name, || {
                crate::dispatch::run();
            }),
            "push" => run_one(name, || {
                crate::push::run();
            }),
            "field" => run_one(name, || {
                crate::field::run();
            }),
            "tune" => run_one(name, || {
                crate::tune::run();
            }),
            "gpu" => run_one(name, || {
                crate::gpu::run();
            }),
            "ckpt" => run_one(name, || {
                crate::ckpt::run();
            }),
            "tile" => run_one(name, || {
                crate::tile::run();
            }),
            "ranks" => run_one(name, || {
                crate::ranks::run();
            }),
            "serve" => run_one(name, || {
                crate::serve::run();
            }),
            other => {
                // a target listed but not wired is a harness bug; record
                // it in the report instead of pretending full coverage
                eprintln!("[suite] {other}: listed in SUITE_TARGETS but not wired — skipped");
                notes.push(format!("{other}: listed in SUITE_TARGETS but not wired"));
                continue;
            }
        };
        println!(
            "[suite] {name}: {} wall, {} histogram(s)",
            crate::fmt_time(row.wall_s),
            row.hists.len()
        );
        targets.push(row);
    }
    if notes.is_empty() {
        println!("[suite] all {} targets ran", SUITE_TARGETS.len());
    } else {
        println!("[suite] {} target(s) missing from this report:", notes.len());
        for n in &notes {
            println!("  - {n}");
        }
    }

    telemetry::set_enabled(was_enabled);
    BenchReport { bench_schema: BENCH_SCHEMA, git_rev: git_rev(), host: host(), targets, notes }
}

/// Index a report's targets by name (the comparator's access pattern).
pub fn by_name(report: &BenchReport) -> BTreeMap<&str, &TargetRow> {
    report.targets.iter().map(|t| (t.name.as_str(), t)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn host_descriptor_is_sane() {
        let h = host();
        assert!(!h.os.is_empty());
        assert!(!h.arch.is_empty());
        assert!(h.hardware_threads >= 1);
    }

    #[test]
    fn git_rev_env_override_wins() {
        std::env::set_var("BENCH_GIT_REV", "deadbeef");
        assert_eq!(git_rev(), "deadbeef");
        std::env::remove_var("BENCH_GIT_REV");
    }

    #[test]
    fn hist_rows_skip_empty_and_sort_by_name() {
        let mut delta = telemetry::MetricsSnapshot::default();
        let mut a = telemetry::HistData { count: 2, sum: 30, ..Default::default() };
        *a.buckets.entry(telemetry::bucket_index(10) as u32).or_insert(0) += 1;
        *a.buckets.entry(telemetry::bucket_index(20) as u32).or_insert(0) += 1;
        delta.hists.insert("z.second".into(), a);
        delta.hists.insert("a.empty".into(), telemetry::HistData::default());
        let rows = hist_rows(&delta);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].name, "z.second");
        assert_eq!(rows[0].count, 2);
        assert!(rows[0].p50 <= rows[0].p95 && rows[0].p95 <= rows[0].p99);
    }

    #[test]
    fn report_serializes_with_schema_and_host() {
        let report = BenchReport {
            bench_schema: BENCH_SCHEMA,
            git_rev: "abc1234".into(),
            host: host(),
            targets: vec![TargetRow {
                name: "dispatch".into(),
                wall_s: 1.25,
                hists: vec![],
            }],
            notes: vec!["gpu: skipped via SUITE_SKIP".into()],
        };
        let json = serde_json::to_string_pretty(&report).unwrap();
        assert!(json.contains("\"bench_schema\": 1"));
        assert!(json.contains("\"git_rev\": \"abc1234\""));
        assert!(json.contains("\"wall_s\": 1.25"));
        assert!(json.contains("gpu: skipped via SUITE_SKIP"));
    }

    #[test]
    fn suite_lists_gpu_target() {
        assert!(SUITE_TARGETS.contains(&"gpu"));
    }
}
