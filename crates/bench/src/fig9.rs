//! Figure 9 — particle pushes per nanosecond vs grid size (sorting
//! disabled, fixed particle count) on V100, A100, and MI300A.
//!
//! The paper's cache cliff: each GPU peaks where its grid's per-cell data
//! (≈432 B, see `memsim::push::CELL_FOOTPRINT_BYTES`) just fills the LLC
//! — 13,824 points on V100, 85,184 on A100 — and collapses on tiny grids
//! where colliding atomic writes serialize. Grid sizes are modelled at
//! full scale (real LLC capacities), so the peak *locations* are directly
//! comparable to the paper's.

use memsim::gpu::GpuModel;
use memsim::push::{gpu_push, PushSpec, CELL_FOOTPRINT_BYTES};
use psort::patterns::random_cells;
use serde::Serialize;

/// Fixed particle count for the sweep.
pub const PARTICLES: usize = 150_000;

/// The GPUs of Figure 9 and their paper peak grid sizes.
pub const GPUS: [(&str, usize, f64); 3] = [
    ("V100", 13_824, 4.0),
    ("A100", 85_184, 6.0),
    ("MI300A (GPU)", 39_304, 9.0),
];

/// One point of a Fig 9 series.
#[derive(Debug, Clone, Serialize)]
pub struct Fig9Point {
    /// GPU platform.
    pub platform: String,
    /// Grid points.
    pub grid_cells: usize,
    /// Pushes per nanosecond (the paper's y-axis).
    pub pushes_per_ns: f64,
}

/// Grid sizes swept: cubes from 8³ up to 128³ plus each paper peak.
pub fn grid_sweep() -> Vec<usize> {
    let mut grids: Vec<usize> = [8usize, 12, 16, 20, 24, 28, 32, 40, 44, 52, 64, 80, 96, 128]
        .iter()
        .map(|&n| n * n * n)
        .collect();
    for (_, peak, _) in GPUS {
        grids.push(peak);
    }
    grids.sort_unstable();
    grids.dedup();
    grids
}

/// Model one (platform, grid) point.
pub fn point(platform_name: &str, grid_cells: usize) -> Fig9Point {
    let platform = memsim::platform::by_name(platform_name).expect("known GPU");
    let cells = random_cells(PARTICLES, grid_cells, 0xF19 + grid_cells as u64);
    let model = GpuModel::new(platform);
    let cost = gpu_push(&model, &PushSpec::vpic(&cells, grid_cells));
    Fig9Point {
        platform: platform_name.to_string(),
        grid_cells,
        pushes_per_ns: cost.pushes_per_ns,
    }
}

/// Produce and print Figure 9.
pub fn run() -> Vec<Fig9Point> {
    println!("Figure 9 — pushes/ns vs grid size (sorting disabled, {PARTICLES} particles)");
    let grids = grid_sweep();
    let mut all = Vec::new();
    print!("{:>10}", "cells");
    for (gpu, _, _) in GPUS {
        print!(" {gpu:>14}");
    }
    println!();
    let mut series: Vec<Vec<Fig9Point>> = GPUS
        .iter()
        .map(|(gpu, _, _)| grids.iter().map(|&g| point(gpu, g)).collect())
        .collect();
    for (gi, &g) in grids.iter().enumerate() {
        print!("{g:>10}");
        for s in &series {
            print!(" {:>14.2}", s[gi].pushes_per_ns);
        }
        println!();
    }
    for ((gpu, paper_peak, paper_rate), s) in GPUS.iter().zip(&series) {
        let best = s
            .iter()
            .max_by(|a, b| a.pushes_per_ns.total_cmp(&b.pushes_per_ns))
            .unwrap();
        println!(
            "{gpu}: model peak {:.1} pushes/ns at {} cells (paper: ~{} at {})",
            best.pushes_per_ns, best.grid_cells, paper_rate, paper_peak
        );
    }
    for s in &mut series {
        all.append(s);
    }
    all
}

/// The grid size at which a platform's cell data exactly fills its LLC.
pub fn cache_capacity_cells(platform_name: &str) -> usize {
    let p = memsim::platform::by_name(platform_name).expect("known GPU");
    (p.llc_bytes / CELL_FOOTPRINT_BYTES) as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;
    use std::sync::OnceLock;

    fn series(platform: &str) -> &'static [Fig9Point] {
        static CACHE: OnceLock<HashMap<&'static str, Vec<Fig9Point>>> = OnceLock::new();
        let all = CACHE.get_or_init(|| {
            GPUS.iter()
                .map(|&(gpu, _, _)| {
                    (gpu, grid_sweep().into_iter().map(|g| point(gpu, g)).collect())
                })
                .collect()
        });
        &all[platform]
    }

    #[test]
    fn paper_peak_grid_sits_in_the_models_top_band() {
        if crate::skip_heavy_in_debug() {
            return;
        }
        for (gpu, paper_peak, _) in GPUS {
            let s = series(gpu);
            let best = s
                .iter()
                .map(|p| p.pushes_per_ns)
                .fold(0.0, f64::max);
            let at_paper = s
                .iter()
                .find(|p| p.grid_cells == paper_peak)
                .unwrap()
                .pushes_per_ns;
            assert!(
                at_paper > 0.7 * best,
                "{gpu}: the paper's peak grid ({paper_peak}) must be near the model's \
                 best: {at_paper:.2} vs {best:.2} pushes/ns"
            );
        }
    }

    #[test]
    fn performance_falls_beyond_the_cache() {
        if crate::skip_heavy_in_debug() {
            return;
        }
        for (gpu, _, _) in GPUS {
            let s = series(gpu);
            let cap = cache_capacity_cells(gpu);
            let at_cap = s
                .iter()
                .filter(|p| p.grid_cells <= cap)
                .map(|p| p.pushes_per_ns)
                .fold(0.0, f64::max);
            // grids well beyond capacity must be clearly slower
            let beyond: Vec<&Fig9Point> =
                s.iter().filter(|p| p.grid_cells >= 4 * cap).collect();
            for p in beyond {
                assert!(
                    p.pushes_per_ns < 0.8 * at_cap,
                    "{gpu}: {} cells should overflow the LLC: {:.2} vs {:.2}",
                    p.grid_cells,
                    p.pushes_per_ns,
                    at_cap
                );
            }
        }
    }

    #[test]
    fn tiny_grids_collapse_under_colliding_writes() {
        if crate::skip_heavy_in_debug() {
            return;
        }
        for (gpu, _, _) in GPUS {
            let s = series(gpu);
            let best = s.iter().map(|p| p.pushes_per_ns).fold(0.0, f64::max);
            let tiny = s.first().unwrap(); // 512 cells
            assert!(
                tiny.pushes_per_ns < best,
                "{gpu}: very high particles-per-cell must hurt (Fig 9 left edge)"
            );
        }
    }

    #[test]
    fn a100_peak_grid_is_about_6x_v100s() {
        if crate::skip_heavy_in_debug() {
            return;
        }
        // paper: "For the A100, the peak grid size is about 6× that of
        // the V100, matching its cache increase"
        let v = cache_capacity_cells("V100");
        let a = cache_capacity_cells("A100");
        let ratio = a as f64 / v as f64;
        assert!((5.0..8.0).contains(&ratio), "cache-capacity ratio {ratio}");
    }

    #[test]
    fn peak_rates_ordered_v100_a100_mi300a() {
        if crate::skip_heavy_in_debug() {
            return;
        }
        // paper: ~4, ~6, ~9 pushes/ns
        let peaks: Vec<f64> = GPUS
            .iter()
            .map(|(gpu, _, _)| {
                series(gpu)
                    .iter()
                    .map(|p| p.pushes_per_ns)
                    .fold(0.0, f64::max)
            })
            .collect();
        assert!(peaks[0] < peaks[1], "V100 < A100: {peaks:?}");
        assert!(peaks[1] < peaks[2], "A100 < MI300A: {peaks:?}");
        assert!((1.0..=16.0).contains(&peaks[0]), "V100 magnitude: {peaks:?}");
        assert!((2.0..=25.0).contains(&peaks[1]), "A100 magnitude: {peaks:?}");
        assert!((3.0..=40.0).contains(&peaks[2]), "MI300A magnitude: {peaks:?}");
    }
}
