//! Ablation targets: the what-ifs DESIGN.md commits to.
//!
//! * `ablate-gpu-aware` — Sierra with GPU-aware MPI forced on (the
//!   paper's named future-work item, quantified);
//! * `ablate-weak` — weak scaling on all three systems (the paper's §6
//!   "large batches of smaller simulations" scenario);
//! * `ablate-tile` — tiled-strided push cost vs tile size on the A100,
//!   showing the cache-fit optimum the paper's tile rule targets.

use cluster::ablation::{gpu_aware_mpi, weak_scaling, GpuAwareAblation, WeakPoint};
use cluster::scaling::paper_global_grid;
use cluster::systems;
use memsim::gpu::GpuModel;
use memsim::push::{gpu_push, PushSpec};
use psort::patterns::random_cells;
use psort::{sort_pairs, SortOrder};
use serde::Serialize;

/// Run and print the GPU-aware-MPI ablation on Sierra.
pub fn run_gpu_aware() -> GpuAwareAblation {
    let sys = systems::sierra();
    let ab = gpu_aware_mpi(&sys, paper_global_grid(&sys), 24);
    println!("Ablation — Sierra with GPU-aware MPI (the paper's future-work claim)");
    println!(
        "{:>6} {:>12} {:>12} {:>8}",
        "GPUs", "staged step", "aware step", "gain"
    );
    for (b, a) in ab.baseline.iter().zip(&ab.gpu_aware) {
        println!(
            "{:>6} {:>12} {:>12} {:>7.2}x",
            b.gpus,
            crate::fmt_time(b.step_time),
            crate::fmt_time(a.step_time),
            b.step_time / a.step_time
        );
    }
    println!("endpoint gain: {:.2}x", ab.endpoint_gain());
    ab
}

/// Run and print weak scaling on all three systems.
pub fn run_weak() -> Vec<(String, Vec<WeakPoint>)> {
    println!("Ablation — weak scaling (fixed per-GPU problem)");
    let mut out = Vec::new();
    for sys in systems::all() {
        let pts = weak_scaling(&sys, 24_000, 16);
        println!("\n{}:", sys.name);
        println!("{:>6} {:>12} {:>10}", "GPUs", "step", "efficiency");
        for p in &pts {
            println!(
                "{:>6} {:>12} {:>9.2}",
                p.gpus,
                crate::fmt_time(p.step_time),
                p.efficiency
            );
        }
        out.push((sys.name.to_string(), pts));
    }
    out
}

/// One tile-size ablation point.
#[derive(Debug, Clone, Serialize)]
pub struct TilePoint {
    /// Distinct cells per tile.
    pub tile: usize,
    /// Tile working set / (scaled) LLC capacity.
    pub cache_fraction: f64,
    /// Modelled push time on the A100, seconds.
    pub time: f64,
}

/// Sweep tiled-strided tile sizes through the A100 push model: too-small
/// tiles forfeit streaming efficiency, too-large tiles overflow the
/// cache; the optimum sits below 1× capacity — what the paper's
/// 3×cores rule lands near.
pub fn run_tile() -> Vec<TilePoint> {
    const GRID: usize = 1 << 15;
    const PARTICLES: usize = 150_000;
    const SCALE: f64 = 100.0;
    let platform = memsim::platform::by_name("A100").unwrap();
    let base = random_cells(PARTICLES, GRID, 0xAB1A7E);
    let scaled_llc = platform.llc_bytes as f64 / SCALE;
    println!("Ablation — tiled-strided tile size on the A100 push model");
    println!("{:>8} {:>12} {:>12}", "tile", "tile/LLC", "push time");
    let mut out = Vec::new();
    for tile in [16usize, 64, 128, 256, 512, 1024, 2048, 4096, 8192] {
        let mut cells = base.clone();
        let mut idx: Vec<u32> = (0..PARTICLES as u32).collect();
        sort_pairs(SortOrder::TiledStrided { tile }, &mut cells, &mut idx);
        let model = GpuModel::scaled(platform.clone(), SCALE);
        let cost = gpu_push(&model, &PushSpec::vpic(&cells, GRID));
        let cache_fraction =
            tile as f64 * memsim::push::CELL_FOOTPRINT_BYTES as f64 / scaled_llc;
        println!(
            "{:>8} {:>12.2} {:>12}",
            tile,
            cache_fraction,
            crate::fmt_time(cost.cost.time)
        );
        out.push(TilePoint { tile, cache_fraction, time: cost.cost.time });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tile_sweep_has_an_interior_optimum() {
        if crate::skip_heavy_in_debug() {
            return;
        }
        let pts = run_tile();
        let best = pts
            .iter()
            .min_by(|a, b| a.time.total_cmp(&b.time))
            .unwrap();
        // the best tile keeps its working set within the cache
        assert!(
            best.cache_fraction < 1.5,
            "optimal tile should be cache-resident-ish: {:.2}",
            best.cache_fraction
        );
        // and hugely oversized tiles (cache-overflowing) are worse
        let worst_large = pts.last().unwrap();
        if worst_large.cache_fraction > 2.0 {
            assert!(worst_large.time > best.time);
        }
    }

    #[test]
    fn gpu_aware_ablation_prints_positive_gain() {
        if crate::skip_heavy_in_debug() {
            return;
        }
        let ab = run_gpu_aware();
        assert!(ab.endpoint_gain() >= 1.0);
    }
}
