//! `field` target: the grid-side pipeline (interpolate → field solve →
//! unload) before vs after the parallel/vectorized rewrite.
//!
//! The baseline is the pre-rewrite serial path kept in-tree as the
//! bit-identity oracle: allocating `load_interpolators`, the wrapped
//! `advance_{b,e}_ref` curl loops, and the scatter-order
//! `unload_scatter_ref`. Against it the target times the row-parallel
//! pipeline (`load_interpolators_into` / `advance_{b,e}_on` /
//! `unload_on`) for every vectorization strategy at 1 and 4 worker
//! lanes, on a Weibel deck sized to sit in last-level cache so the
//! numbers measure kernels, not DRAM.
//!
//! Before timing anything the target re-checks the correctness contract
//! (parallel interpolators and curls bitwise-equal to the references),
//! so a speedup can never be quoted for a wrong answer.

use pk::atomic::ScatterMode;
use pk::{Serial, Threads};
use serde::Serialize;
use vpic_core::accumulate::Accumulator;
use vpic_core::{load_interpolators, load_interpolators_into, Deck, FieldArray, InterpolatorArray};
use vsimd::Strategy;

/// Wall time of the three grid-side phases, seconds (median of reps).
#[derive(Serialize, Clone, Copy)]
pub struct PhaseTimes {
    /// Interpolator-coefficient load.
    pub interpolate_s: f64,
    /// Half-B, E, half-B curl sweeps.
    pub field_solve_s: f64,
    /// Accumulator → J current unload.
    pub unload_s: f64,
}

impl PhaseTimes {
    fn total(&self) -> f64 {
        self.interpolate_s + self.field_solve_s + self.unload_s
    }
}

/// One (strategy × worker-lane) configuration of the new pipeline.
#[derive(Serialize)]
pub struct Variant {
    /// Vectorization strategy name (paper §3.1).
    pub strategy: String,
    /// Worker lanes of the pooled `Threads` space.
    pub workers: u64,
    /// Phase medians for this configuration.
    pub phases: PhaseTimes,
    /// Baseline grid-phase total / this configuration's total.
    pub speedup: f64,
}

/// The `field` target's result.
#[derive(Serialize)]
pub struct Report {
    /// Cells in the benchmark deck (sized to fit in LLC).
    pub cells: u64,
    /// Pre-rewrite serial path (allocating load, wrapped curls,
    /// scatter-order unload).
    pub baseline: PhaseTimes,
    /// Every strategy at 1 and 4 lanes.
    pub variants: Vec<Variant>,
    /// Best single-lane speedup — the allocation/affine-interior/SIMD
    /// win alone, with no thread-level parallelism in the numerator.
    pub best_single_lane_speedup: f64,
}

/// Fields with physically structured content: a Weibel deck stepped a
/// few times so E, B and J carry real spatial spectra.
fn warmed_fields(nx: usize, ny: usize, nz: usize) -> FieldArray {
    let mut sim = Deck::weibel(nx, ny, nz, 2, 0.3).build();
    sim.run(3);
    sim.fields.clone()
}

/// An accumulator with a Villasenor–Buneman segment in every cell, so
/// the unload sweep touches all 12 slots everywhere.
fn seeded_accumulator(cells: usize, workers: usize) -> Accumulator {
    let mode = if workers > 1 { ScatterMode::Duplicated } else { ScatterMode::Atomic };
    let acc = Accumulator::new(cells, workers, mode);
    for v in 0..cells {
        let t = v as f32 * 0.37;
        acc.deposit_segment(
            v % workers.max(1),
            v,
            t.sin() * 0.4,
            t.cos() * 0.4,
            (2.0 * t).sin() * 0.4,
            (t + 1.0).sin() * 0.4,
            (t + 1.0).cos() * 0.4,
            (2.0 * t + 1.0).sin() * 0.4,
            0.8,
        );
    }
    acc
}

/// Bit-exactness of the parallel pipeline against the serial reference
/// on the benchmark deck itself (degenerate shapes are covered by the
/// `field_pipeline` property tests).
fn assert_pipeline_matches_reference(f: &FieldArray, space: &Threads, strategy: Strategy) {
    let reference = load_interpolators(f);
    let mut out = InterpolatorArray::new();
    load_interpolators_into(space, strategy, f, &mut out);
    assert!(
        reference
            .iter()
            .zip(out.iter())
            .all(|(a, b)| (0..vpic_core::interp::COEFFS).all(|c| a.0[c].to_bits() == b.0[c].to_bits())),
        "{strategy:?}: interpolators diverged from reference"
    );

    let mut want = f.clone();
    want.advance_b_ref(0.5);
    want.advance_e_ref();
    want.advance_b_ref(0.5);
    let mut got = f.clone();
    got.advance_b_on(space, strategy, 0.5);
    got.advance_e_on(space, strategy);
    got.advance_b_on(space, strategy, 0.5);
    let bits = |v: &[f32]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
    for (name, a, b) in [
        ("ex", &want.ex, &got.ex),
        ("ey", &want.ey, &got.ey),
        ("ez", &want.ez, &got.ez),
        ("bx", &want.bx, &got.bx),
        ("by", &want.by, &got.by),
        ("bz", &want.bz, &got.bz),
    ] {
        assert_eq!(bits(a), bits(b), "{strategy:?}: {name} diverged from reference");
    }
}

fn time_baseline(f: &FieldArray, warmup: usize, reps: usize) -> PhaseTimes {
    let cells = f.grid.cells();
    let interpolate_s = crate::timing::median_time_named("field.base.interp", warmup, reps, || {
        crate::timing::black_box(load_interpolators(f));
    });
    let mut work = f.clone();
    let field_solve_s = crate::timing::median_time_named("field.base.solve", warmup, reps, || {
        work.advance_b_ref(0.5);
        work.advance_e_ref();
        work.advance_b_ref(0.5);
    });
    let acc = seeded_accumulator(cells, 1);
    let mut work = f.clone();
    let unload_s = crate::timing::median_time_named("field.base.unload", warmup, reps, || {
        work.clear_j_on(&Serial);
        acc.unload_scatter_ref(&mut work);
    });
    PhaseTimes { interpolate_s, field_solve_s, unload_s }
}

fn time_variant(
    f: &FieldArray,
    space: &Threads,
    strategy: Strategy,
    workers: usize,
    warmup: usize,
    reps: usize,
) -> PhaseTimes {
    let cells = f.grid.cells();
    let mut interp = InterpolatorArray::new();
    let interpolate_s = crate::timing::median_time_named("field.new.interp", warmup, reps, || {
        load_interpolators_into(space, strategy, f, &mut interp);
    });
    let mut work = f.clone();
    let field_solve_s = crate::timing::median_time_named("field.new.solve", warmup, reps, || {
        work.advance_b_on(space, strategy, 0.5);
        work.advance_e_on(space, strategy);
        work.advance_b_on(space, strategy, 0.5);
    });
    let mut acc = seeded_accumulator(cells, workers);
    let mut work = f.clone();
    let unload_s = crate::timing::median_time_named("field.new.unload", warmup, reps, || {
        work.clear_j_on(space);
        acc.unload_on(space, strategy, &mut work);
    });
    PhaseTimes { interpolate_s, field_solve_s, unload_s }
}

/// Run the field target at its default shape: a 32×16×16 Weibel deck
/// (~8k cells ≈ 1.7 MB of grid state — inside any LLC), 2 warmup and
/// 9 measured reps per phase.
pub fn run() -> Report {
    run_with(32, 16, 16, 2, 9)
}

/// Parameterized body of the `field` target.
pub fn run_with(nx: usize, ny: usize, nz: usize, warmup: usize, reps: usize) -> Report {
    let f = warmed_fields(nx, ny, nz);
    let cells = f.grid.cells() as u64;

    let baseline = time_baseline(&f, warmup, reps);
    let mut variants = Vec::new();
    let mut best_single_lane_speedup = 0.0f64;
    for &workers in &[1usize, 4] {
        let space = Threads::new(workers);
        for strategy in Strategy::ALL {
            assert_pipeline_matches_reference(&f, &space, strategy);
            let phases = time_variant(&f, &space, strategy, workers, warmup, reps);
            let speedup = baseline.total() / phases.total();
            if workers == 1 {
                best_single_lane_speedup = best_single_lane_speedup.max(speedup);
            }
            variants.push(Variant {
                strategy: strategy.name().to_string(),
                workers: workers as u64,
                phases,
                speedup,
            });
        }
    }

    println!("field: grid-side pipeline, {cells} cells (baseline = pre-rewrite serial path)");
    println!(
        "  {:<10} {:>3}  {:>12} {:>12} {:>12} {:>12} {:>8}",
        "strategy", "wrk", "interp (µs)", "solve (µs)", "unload (µs)", "total (µs)", "speedup"
    );
    let us = |s: f64| s * 1e6;
    println!(
        "  {:<10} {:>3}  {:>12.1} {:>12.1} {:>12.1} {:>12.1} {:>8}",
        "baseline",
        1,
        us(baseline.interpolate_s),
        us(baseline.field_solve_s),
        us(baseline.unload_s),
        us(baseline.total()),
        "1.00x"
    );
    for v in &variants {
        println!(
            "  {:<10} {:>3}  {:>12.1} {:>12.1} {:>12.1} {:>12.1} {:>7.2}x",
            v.strategy,
            v.workers,
            us(v.phases.interpolate_s),
            us(v.phases.field_solve_s),
            us(v.phases.unload_s),
            us(v.phases.total()),
            v.speedup
        );
    }
    println!("  best single-lane speedup: {best_single_lane_speedup:.2}x");

    Report { cells, baseline, variants, best_single_lane_speedup }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn field_target_reports_all_variants() {
        if crate::skip_heavy_in_debug() {
            return;
        }
        let report = run_with(8, 8, 8, 1, 3);
        assert_eq!(report.cells, 512);
        assert_eq!(report.variants.len(), 2 * Strategy::ALL.len());
        assert!(report.baseline.total() > 0.0);
        for v in &report.variants {
            assert!(v.phases.total() > 0.0, "{}/{} lanes: zero time", v.strategy, v.workers);
            assert!(v.speedup.is_finite());
        }
        assert!(report.best_single_lane_speedup > 0.0);
    }
}
