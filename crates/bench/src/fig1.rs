//! Figure 1 — breakdown of VPIC 1.2 code by SIMD vector length and
//! platform.
//!
//! The paper's claim: over 57% of VPIC 1.2 is its custom SIMD library
//! (duplicated per ISA and vector width), and only 11% implements the
//! physics kernels. The manifest below reconstructs the upstream VPIC 1.2
//! `src/util/v4|v8|v16` tree structure (one implementation file per
//! (width, ISA) pair, sized to match the paper's percentages); the tool
//! then counts *this* repository the same way to quantify how much
//! per-ISA code the portable approach eliminated.

use serde::Serialize;

/// One component of a codebase, classified for the Fig 1 breakdown.
#[derive(Debug, Clone, Serialize)]
pub struct CodeComponent {
    /// Component label (e.g. `v8/avx2`).
    pub name: &'static str,
    /// Target platform/ISA (`all` for portable code).
    pub platform: &'static str,
    /// Vector width in bits (0 = not SIMD code).
    pub vector_bits: u32,
    /// Lines of code.
    pub loc: u64,
    /// Category: `simd`, `kernel`, or `other`.
    pub category: &'static str,
}

/// Reconstructed VPIC 1.2 manifest (per-ISA file structure from the
/// upstream repository; sizes normalized to reproduce the paper's 57%
/// SIMD / 11% kernels split).
pub fn vpic12_manifest() -> Vec<CodeComponent> {
    let simd = |name, platform, bits, loc| CodeComponent {
        name,
        platform,
        vector_bits: bits,
        loc,
        category: "simd",
    };
    vec![
        simd("v4/portable", "all", 128, 2200),
        simd("v4/sse", "x86", 128, 2600),
        simd("v4/avx", "x86", 128, 2700),
        simd("v4/avx2", "x86", 128, 2700),
        simd("v4/neon", "arm", 128, 2500),
        simd("v4/altivec", "power", 128, 2600),
        simd("v8/portable", "all", 256, 2900),
        simd("v8/avx", "x86", 256, 3400),
        simd("v8/avx2", "x86", 256, 3400),
        simd("v16/portable", "all", 512, 3600),
        simd("v16/avx512", "x86 (KNL)", 512, 4100),
        CodeComponent {
            name: "species_advance (kernels)",
            platform: "all",
            vector_bits: 0,
            loc: 6310,
            category: "kernel",
        },
        CodeComponent {
            name: "grid/fields/mp/util (other)",
            platform: "all",
            vector_bits: 0,
            loc: 18358,
            category: "other",
        },
    ]
}

/// Aggregate percentages from a manifest.
#[derive(Debug, Clone, Serialize)]
pub struct Breakdown {
    /// Total lines.
    pub total: u64,
    /// Lines of SIMD-support code.
    pub simd: u64,
    /// Lines of physics-kernel code.
    pub kernel: u64,
    /// Fraction of the codebase that is SIMD support.
    pub simd_fraction: f64,
    /// Fraction that is physics kernels.
    pub kernel_fraction: f64,
}

/// Compute the breakdown of a manifest.
pub fn breakdown(manifest: &[CodeComponent]) -> Breakdown {
    let total: u64 = manifest.iter().map(|c| c.loc).sum();
    let simd: u64 = manifest.iter().filter(|c| c.category == "simd").map(|c| c.loc).sum();
    let kernel: u64 = manifest.iter().filter(|c| c.category == "kernel").map(|c| c.loc).sum();
    Breakdown {
        total,
        simd,
        kernel,
        simd_fraction: simd as f64 / total as f64,
        kernel_fraction: kernel as f64 / total as f64,
    }
}

/// Count this repository's code the same way: per-ISA SIMD code vs
/// portable SIMD vs kernels. Returns `None` when sources are not on disk
/// (e.g. an installed binary).
pub fn this_repo_manifest() -> Option<Vec<CodeComponent>> {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).parent()?.parent()?.to_path_buf();
    let count = |rel: &str| -> Option<u64> {
        let body = std::fs::read_to_string(root.join(rel)).ok()?;
        Some(body.lines().count() as u64)
    };
    Some(vec![
        CodeComponent {
            name: "vsimd/v4 (SSE ad hoc)",
            platform: "x86",
            vector_bits: 128,
            loc: count("crates/vsimd/src/v4.rs")?,
            category: "simd",
        },
        CodeComponent {
            name: "vsimd/adhoc (AVX2 ad hoc)",
            platform: "x86",
            vector_bits: 256,
            loc: count("crates/vsimd/src/adhoc.rs")?,
            category: "simd",
        },
        CodeComponent {
            name: "vsimd portable (simd+mask+transpose+math+chunks)",
            platform: "all",
            vector_bits: 0,
            loc: count("crates/vsimd/src/simd.rs")?
                + count("crates/vsimd/src/mask.rs")?
                + count("crates/vsimd/src/transpose.rs")?
                + count("crates/vsimd/src/math.rs")?
                + count("crates/vsimd/src/chunks.rs")?,
            category: "simd",
        },
        CodeComponent {
            name: "vpic-core kernels (push+interp+accumulate)",
            platform: "all",
            vector_bits: 0,
            loc: count("crates/core/src/push.rs")?
                + count("crates/core/src/interp.rs")?
                + count("crates/core/src/accumulate.rs")?,
            category: "kernel",
        },
    ])
}

/// Figure-1 result bundle.
#[derive(Debug, Clone, Serialize)]
pub struct Fig1 {
    /// The VPIC 1.2 reconstruction.
    pub vpic12: Vec<CodeComponent>,
    /// Its aggregate split.
    pub vpic12_breakdown: Breakdown,
    /// This repository, classified the same way (if sources available).
    pub ours: Option<Vec<CodeComponent>>,
}

/// Produce and print Figure 1.
pub fn run() -> Fig1 {
    let vpic12 = vpic12_manifest();
    let b = breakdown(&vpic12);
    println!("Figure 1 — VPIC 1.2 code breakdown by SIMD width/platform");
    println!("{:<28} {:>9} {:>6} {:>8}", "component", "platform", "bits", "LoC");
    for c in &vpic12 {
        println!("{:<28} {:>9} {:>6} {:>8}", c.name, c.platform, c.vector_bits, c.loc);
    }
    println!(
        "SIMD support: {} LoC ({:.0}%)   kernels: {} LoC ({:.0}%)   total: {}",
        b.simd,
        100.0 * b.simd_fraction,
        b.kernel,
        100.0 * b.kernel_fraction,
        b.total
    );
    let ours = this_repo_manifest();
    if let Some(m) = &ours {
        let ob = breakdown(m);
        println!("\nThis reproduction, classified the same way:");
        for c in m {
            println!("{:<52} {:>8}", c.name, c.loc);
        }
        let per_isa: u64 = m
            .iter()
            .filter(|c| c.category == "simd" && c.platform != "all")
            .map(|c| c.loc)
            .sum();
        println!(
            "per-ISA SIMD: {} LoC vs VPIC 1.2's {} LoC ({}x less)",
            per_isa,
            b.simd,
            b.simd / per_isa.max(1)
        );
        let _ = ob;
    }
    Fig1 { vpic12_breakdown: b, vpic12, ours }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manifest_reproduces_paper_percentages() {
        let b = breakdown(&vpic12_manifest());
        assert!(
            (b.simd_fraction - 0.57).abs() < 0.01,
            "paper: >57% SIMD, got {:.3}",
            b.simd_fraction
        );
        assert!(
            (b.kernel_fraction - 0.11).abs() < 0.01,
            "paper: 11% kernels, got {:.3}",
            b.kernel_fraction
        );
    }

    #[test]
    fn manifest_covers_five_isas() {
        let m = vpic12_manifest();
        let isas: std::collections::HashSet<&str> = m
            .iter()
            .filter(|c| c.category == "simd" && c.platform != "all")
            .map(|c| c.platform)
            .collect();
        // paper §4.2: AVX, AVX2, AVX512 (Xeon Phi), Neon, Altivec
        assert!(isas.len() >= 3, "{isas:?}");
        assert!(m.iter().any(|c| c.vector_bits == 512));
    }

    #[test]
    fn our_repo_counts_and_is_far_smaller() {
        let ours = this_repo_manifest().expect("sources on disk in-repo");
        let per_isa: u64 = ours
            .iter()
            .filter(|c| c.category == "simd" && c.platform != "all")
            .map(|c| c.loc)
            .sum();
        let vpic_simd = breakdown(&vpic12_manifest()).simd;
        assert!(per_isa > 0);
        assert!(
            per_isa * 10 < vpic_simd,
            "portable approach must cut per-ISA code >10x: {per_isa} vs {vpic_simd}"
        );
    }
}
