//! `push` target: a profiled particle-push loop that reconciles the
//! telemetry spans against wall-clock time.
//!
//! This is the observability acceptance check in executable form: run a
//! real LPI deck on the pooled `Threads` backend with profiling on, then
//! verify that the per-step `sim.step` spans account for the measured
//! wall time and that the phase spans (sort / interpolate / push /
//! accumulate / field-solve) account for the step spans. A profiler
//! whose numbers do not add up is worse than no profiler.
//!
//! Span sums are filtered to this thread's trace track and to the
//! measured time window, so concurrent activity (parallel tests, other
//! targets) cannot pollute the reconciliation.

use pk::atomic::ScatterMode;
use pk::Threads;
use psort::SortOrder;
use serde::Serialize;
use vpic_core::Deck;

/// The per-step phases instrumented in `vpic_core::sim::step_on`,
/// in execution order. Together they should cover nearly all of
/// `sim.step`.
pub const PHASES: [&str; 5] =
    ["sim.sort", "sim.interpolate", "sim.push", "sim.accumulate", "sim.field_solve"];

/// The `push` target's result: throughput plus span/wall reconciliation.
#[derive(Serialize)]
pub struct Report {
    /// Worker lanes of the pooled `Threads` space.
    pub workers: u64,
    /// Measured steps (after warmup).
    pub steps: u64,
    /// Particles in the deck.
    pub particles: u64,
    /// Wall time of the measured steps, seconds.
    pub wall_s: f64,
    /// Particle pushes per second over the measured window.
    pub particles_per_sec: f64,
    /// Sum of `sim.step` span durations inside the window, seconds.
    pub step_span_total_s: f64,
    /// Sum of phase span durations inside the window, seconds.
    pub phase_span_total_s: f64,
    /// `phase_span_total_s / step_span_total_s` — how much of each step
    /// the named phases explain.
    pub phase_coverage: f64,
}

/// Run the push target at its default shape: 4 workers, 2 warmup steps,
/// 10 measured steps on the 16×8×8 LPI deck.
pub fn run() -> Report {
    run_with(4, 2, 10)
}

/// Parameterized body of the `push` target.
pub fn run_with(workers: usize, warmup: usize, steps: usize) -> Report {
    let was_enabled = telemetry::enabled();
    telemetry::set_enabled(true);

    let space = Threads::new(workers);
    let mut sim = Deck::lpi(16, 8, 8, 8).build();
    sim.configure_scatter(workers, ScatterMode::Duplicated);
    sim.sort_order = Some(SortOrder::Standard);
    sim.sort_interval = 5;
    for _ in 0..warmup {
        sim.step_on(&space);
    }

    let track = telemetry::current_track();
    let t0 = telemetry::now_ns();
    for _ in 0..steps {
        sim.step_on(&space);
    }
    let t1 = telemetry::now_ns();
    telemetry::set_enabled(was_enabled);

    let particles = sim.particle_count() as u64;
    let wall_s = (t1 - t0) as f64 / 1e9;
    let snap = telemetry::snapshot();
    let in_window = |e: &&telemetry::Event| {
        e.track == track && e.start_ns >= t0 && e.start_ns.saturating_add(e.dur_ns) <= t1
    };
    let step_span_total_ns: u64 = snap
        .events
        .iter()
        .filter(|e| e.name == "sim.step")
        .filter(in_window)
        .map(|e| e.dur_ns)
        .sum();
    let phase_span_total_ns: u64 = snap
        .events
        .iter()
        .filter(|e| PHASES.contains(&e.name.as_str()))
        .filter(in_window)
        .map(|e| e.dur_ns)
        .sum();
    let step_span_total_s = step_span_total_ns as f64 / 1e9;
    let phase_span_total_s = phase_span_total_ns as f64 / 1e9;

    let report = Report {
        workers: workers as u64,
        steps: steps as u64,
        particles,
        wall_s,
        particles_per_sec: particles as f64 * steps as f64 / wall_s,
        step_span_total_s,
        phase_span_total_s,
        phase_coverage: if step_span_total_ns == 0 {
            0.0
        } else {
            phase_span_total_s / step_span_total_s
        },
    };

    println!(
        "push: {} particles × {} steps on Threads({workers}): {:.2} Mp/s",
        report.particles,
        report.steps,
        report.particles_per_sec / 1e6
    );
    println!(
        "  wall {:>10}   sim.step spans {:>10}   ({:.1}% of wall)",
        crate::fmt_time(report.wall_s),
        crate::fmt_time(report.step_span_total_s),
        100.0 * report.step_span_total_s / report.wall_s
    );
    println!(
        "  phase spans {:>10}   ({:.1}% of sim.step)",
        crate::fmt_time(report.phase_span_total_s),
        100.0 * report.phase_coverage
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_reconcile_with_wall_time() {
        let _g = crate::telemetry_test_lock();
        let r = run_with(2, 1, 6);
        assert_eq!(r.steps, 6);
        assert!(r.wall_s > 0.0 && r.particles_per_sec > 0.0);
        // per-step span totals must explain the measured wall time
        let rel = (r.step_span_total_s - r.wall_s).abs() / r.wall_s;
        assert!(
            rel < 0.10,
            "sim.step spans ({:.6}s) vs wall ({:.6}s): {:.1}% off",
            r.step_span_total_s,
            r.wall_s,
            100.0 * rel
        );
        // and the named phases must explain the steps
        assert!(
            r.phase_coverage > 0.9 && r.phase_coverage <= 1.001,
            "phase coverage {:.3}",
            r.phase_coverage
        );
    }
}
