//! Figure 3 — normalized runtime of the auto/guided/manual vectorization
//! strategies on the RAJAPerf kernels (AXPY, PLANCKIAN, PI_REDUCE) across
//! the six CPU platforms.
//!
//! Two ingredients:
//!
//! 1. **Host measurement (real)** — each strategy's kernel is timed on
//!    this machine; the auto-normalized ratios are genuine compiler/SIMD
//!    behaviour of the three code shapes.
//! 2. **Platform projection (modelled)** — the paper's per-platform ISA
//!    findings are applied as multiplicative factors (documented in
//!    [`isa_factor`]): Kokkos SIMD has no SVE, so *manual* on A64FX runs
//!    at NEON width (≈2× slower, paper §5.3); Grace's 4×128-bit units
//!    favor manual; MI300A's Zen 4 shows no manual win on reductions.

use crate::timing::{black_box, median_time};
use rajaperf::{axpy, pi_reduce, planckian, Kernel};
use serde::Serialize;
use vsimd::Strategy;

/// Kernel size for host measurements (large enough to defeat caches).
const N: usize = 1 << 22;

/// One bar of Figure 3.
#[derive(Debug, Clone, Serialize)]
pub struct Fig3Row {
    /// Microkernel.
    pub kernel: String,
    /// CPU platform.
    pub platform: String,
    /// Vectorization strategy.
    pub strategy: String,
    /// Runtime normalized to the auto strategy on the same platform.
    pub normalized_runtime: f64,
}

/// Host-measured wall times per strategy for one kernel, seconds.
pub fn host_times(kernel: Kernel) -> [(Strategy, f64); 3] {
    let mut out = [(Strategy::Auto, 0.0), (Strategy::Guided, 0.0), (Strategy::Manual, 0.0)];
    match kernel {
        Kernel::Axpy => {
            let x: Vec<f64> = (0..N).map(|i| (i % 97) as f64).collect();
            let mut y: Vec<f64> = vec![1.0; N];
            for (s, t) in &mut out {
                *t = median_time(1, 5, || {
                    axpy::run(*s, 1.0001, black_box(&x), black_box(&mut y));
                });
            }
        }
        Kernel::Planckian => {
            let u: Vec<f64> = (0..N).map(|i| 0.5 + (i % 13) as f64 * 0.1).collect();
            let v: Vec<f64> = (0..N).map(|i| 1.0 + (i % 7) as f64 * 0.1).collect();
            let y: Vec<f64> = vec![2.0; N];
            let mut w: Vec<f64> = vec![0.0; N];
            for (s, t) in &mut out {
                *t = median_time(1, 3, || {
                    planckian::run(*s, black_box(&u), black_box(&v), black_box(&y), &mut w);
                });
            }
        }
        Kernel::PiReduce => {
            for (s, t) in &mut out {
                *t = median_time(1, 3, || {
                    black_box(pi_reduce::run(*s, N));
                });
            }
        }
    }
    out
}

/// The paper's per-platform ISA effects, as runtime multipliers applied
/// on top of the host-measured strategy ratio (1.0 = no platform effect).
pub fn isa_factor(platform: &str, strategy: Strategy, kernel: Kernel) -> f64 {
    match (platform, strategy) {
        // Kokkos SIMD lacks SVE: manual falls back to NEON width —
        // "nearly twice as slow on A64FX" (paper §5.3, AXPY)
        ("A64FX", Strategy::Manual) => 1.9,
        // Grace's 4×128-bit units align with NEON: manual helps more
        ("Grace", Strategy::Manual) => 0.85,
        // MI300A (Zen 4): no manual advantage on reductions (paper:
        // manual is faster "on non-MI300A CPUs")
        ("MI300A (CPU)", Strategy::Manual) if kernel == Kernel::PiReduce => 1.35,
        _ => 1.0,
    }
}

/// The six CPU platform names, in Table 1 order.
pub fn cpu_names() -> Vec<String> {
    memsim::platform::cpus().iter().map(|p| p.name.to_string()).collect()
}

/// Produce and print Figure 3.
pub fn run() -> Vec<Fig3Row> {
    let mut rows = Vec::new();
    println!("Figure 3 — normalized runtime (auto = 1.0), host-measured ratios × platform ISA factors");
    for kernel in Kernel::ALL {
        let times = host_times(kernel);
        let auto_t = times[0].1;
        println!("\n{}:", kernel.name());
        println!("{:<14} {:>8} {:>8} {:>8}", "platform", "auto", "guided", "manual");
        for platform in cpu_names() {
            let mut vals = Vec::new();
            for (s, t) in times {
                let norm = (t / auto_t) * isa_factor(&platform, s, kernel);
                vals.push(norm);
                rows.push(Fig3Row {
                    kernel: kernel.name().to_string(),
                    platform: platform.clone(),
                    strategy: s.name().to_string(),
                    normalized_runtime: norm,
                });
            }
            println!(
                "{:<14} {:>8.2} {:>8.2} {:>8.2}",
                platform, vals[0], vals[1], vals[2]
            );
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn axpy_strategies_are_comparable() {
        if cfg!(debug_assertions) {
            return; // strategy ratios are only meaningful at opt-level 3
        }
        // paper: "AXPY performs similarly across all strategies"
        let times = host_times(Kernel::Axpy);
        let auto_t = times[0].1;
        for (s, t) in times {
            let ratio = t / auto_t;
            assert!(
                (0.3..3.0).contains(&ratio),
                "{s}: AXPY ratio {ratio} out of family"
            );
        }
    }

    #[test]
    fn manual_wins_pi_reduce() {
        if cfg!(debug_assertions) {
            return; // strategy ratios are only meaningful at opt-level 3
        }
        // paper: manual up to 80% faster on reductions (auto keeps a
        // serial dependence chain; manual breaks it)
        let times = host_times(Kernel::PiReduce);
        let auto_t = times[0].1;
        let manual_t = times[2].1;
        assert!(
            manual_t < auto_t,
            "manual must beat auto on PI_REDUCE: {manual_t} vs {auto_t}"
        );
    }

    #[test]
    fn a64fx_manual_penalty_applied() {
        assert!(isa_factor("A64FX", Strategy::Manual, Kernel::Axpy) > 1.5);
        assert_eq!(isa_factor("EPYC 7763", Strategy::Manual, Kernel::Axpy), 1.0);
        assert_eq!(isa_factor("A64FX", Strategy::Auto, Kernel::Axpy), 1.0);
    }

    #[test]
    fn full_figure_has_all_cells() {
        let rows = run();
        // 3 kernels × 6 platforms × 3 strategies
        assert_eq!(rows.len(), 3 * 6 * 3);
        // every auto bar is exactly 1.0
        for r in rows.iter().filter(|r| r.strategy == "auto") {
            assert!((r.normalized_runtime - 1.0).abs() < 1e-12);
        }
    }
}
