//! `repro -- regress <base> <new>`: diff two `BENCH.json` files and fail
//! on median regressions.
//!
//! The comparator reads per-target `wall_s` plus every histogram p50
//! present in *both* files and flags any metric that slowed down by more
//! than the threshold (default 15%, the paper-harness noise floor on a
//! quiet host). Targets or histograms present on only one side are
//! reported but never fatal — the suite's composition is allowed to
//! evolve without invalidating old baselines.
//!
//! The offline `serde_json` shim only *writes* JSON, so this module
//! carries its own small recursive-descent parser producing the shim's
//! [`serde::Value`] tree. It handles exactly the JSON the harness emits
//! (objects, arrays, strings with `\"`-style escapes, numbers, bools,
//! null) and rejects everything else loudly.

use serde::Value;
use std::fmt::Write as _;

/// Median-regression threshold: ratios above `1.0 + REGRESS_THRESHOLD`
/// fail the gate.
pub const REGRESS_THRESHOLD: f64 = 0.15;

// ─────────────────────────────── mini JSON parser ──────────────────────────

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Parser { bytes: text.as_bytes(), pos: 0 }
    }

    fn err(&self, msg: &str) -> String {
        format!("json parse error at byte {}: {msg}", self.pos)
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn eat_lit(&mut self, lit: &str) -> Result<(), String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string().map(Value::Str),
            Some(b't') => self.eat_lit("true").map(|()| Value::Bool(true)),
            Some(b'f') => self.eat_lit("false").map(|()| Value::Bool(false)),
            Some(b'n') => self.eat_lit("null").map(|()| Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(self.err(&format!("unexpected '{}'", other as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.eat(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            let val = self.value()?;
            entries.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("dangling escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let cp = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            out.push(char::from_u32(cp).unwrap_or('\u{FFFD}'));
                        }
                        other => {
                            return Err(self.err(&format!("bad escape '\\{}'", other as char)))
                        }
                    }
                }
                Some(_) => {
                    // multi-byte UTF-8 passes through unchanged
                    let start = self.pos;
                    while let Some(&b) = self.bytes.get(self.pos) {
                        if b == b'"' || b == b'\\' {
                            break;
                        }
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|_| self.err("invalid utf-8 in string"))?,
                    );
                }
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if float {
            text.parse::<f64>().map(Value::Float).map_err(|_| self.err("bad number"))
        } else if text.starts_with('-') {
            text.parse::<i64>().map(Value::Int).map_err(|_| self.err("bad number"))
        } else {
            text.parse::<u64>().map(Value::UInt).map_err(|_| self.err("bad number"))
        }
    }
}

/// Parse a JSON document into the serde shim's [`Value`] tree.
pub fn parse_json(text: &str) -> Result<Value, String> {
    let mut p = Parser::new(text);
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing garbage after document"));
    }
    Ok(v)
}

// ─────────────────────────────── value helpers ─────────────────────────────

fn get<'a>(v: &'a Value, key: &str) -> Option<&'a Value> {
    match v {
        Value::Map(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
        _ => None,
    }
}

fn as_f64(v: &Value) -> Option<f64> {
    match v {
        Value::Float(f) => Some(*f),
        Value::Int(i) => Some(*i as f64),
        Value::UInt(u) => Some(*u as f64),
        _ => None,
    }
}

fn as_str(v: &Value) -> Option<&str> {
    match v {
        Value::Str(s) => Some(s),
        _ => None,
    }
}

fn as_seq(v: &Value) -> Option<&[Value]> {
    match v {
        Value::Seq(items) => Some(items),
        _ => None,
    }
}

// ─────────────────────────────── comparison ────────────────────────────────

/// One metric compared across the two files.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricDiff {
    /// `"<target>/wall_s"` or `"<target>/<hist>.p50"`.
    pub metric: String,
    /// Baseline value.
    pub base: f64,
    /// New value.
    pub new: f64,
    /// `new / base` (∞ when base is zero and new is not).
    pub ratio: f64,
    /// Regressed past the threshold.
    pub regressed: bool,
}

/// The comparator's full verdict.
#[derive(Debug, Clone, Default)]
pub struct Comparison {
    /// Every metric found in both files, in report order.
    pub diffs: Vec<MetricDiff>,
    /// Notes: skipped targets, host mismatches, schema drift.
    pub notes: Vec<String>,
}

impl Comparison {
    /// Metrics that regressed past the threshold.
    pub fn regressions(&self) -> Vec<&MetricDiff> {
        self.diffs.iter().filter(|d| d.regressed).collect()
    }

    /// Human-readable report, deterministic for fixed inputs.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<44} {:>12} {:>12} {:>8}",
            "metric", "base", "new", "ratio"
        );
        for d in &self.diffs {
            let _ = writeln!(
                out,
                "{:<44} {:>12.6} {:>12.6} {:>7.3}x{}",
                d.metric,
                d.base,
                d.new,
                d.ratio,
                if d.regressed { "  << REGRESSION" } else { "" }
            );
        }
        for note in &self.notes {
            let _ = writeln!(out, "note: {note}");
        }
        let n = self.regressions().len();
        let _ = writeln!(
            out,
            "{} metric(s) compared, {n} regression(s) past {:.0}%",
            self.diffs.len(),
            REGRESS_THRESHOLD * 100.0
        );
        out
    }
}

fn diff_metric(diffs: &mut Vec<MetricDiff>, metric: String, base: f64, new: f64) {
    // sub-microsecond medians are dominated by timer noise; never gate
    // on them
    let ratio = if base > 0.0 { new / base } else if new > 0.0 { f64::INFINITY } else { 1.0 };
    let measurable = base > 1e-7 || new > 1e-7;
    diffs.push(MetricDiff {
        metric,
        base,
        new,
        ratio,
        regressed: measurable && ratio > 1.0 + REGRESS_THRESHOLD,
    });
}

/// Compare two parsed `BENCH.json` documents.
pub fn compare_values(base: &Value, new: &Value) -> Result<Comparison, String> {
    for (side, v) in [("base", base), ("new", new)] {
        let schema = get(v, "bench_schema").and_then(as_f64).unwrap_or(0.0);
        if schema != crate::suite::BENCH_SCHEMA as f64 {
            return Err(format!(
                "{side} file has bench_schema {schema}, expected {}",
                crate::suite::BENCH_SCHEMA
            ));
        }
    }
    let mut cmp = Comparison::default();
    let host_of = |v: &Value| {
        get(v, "host").map(|h| {
            (
                get(h, "os").and_then(as_str).unwrap_or("?").to_string(),
                get(h, "arch").and_then(as_str).unwrap_or("?").to_string(),
                get(h, "hardware_threads").and_then(as_f64).unwrap_or(0.0) as u64,
            )
        })
    };
    if host_of(base) != host_of(new) {
        cmp.notes.push(
            "host descriptors differ — medians are not directly comparable".to_string(),
        );
    }

    fn targets(v: &Value) -> Vec<&Value> {
        get(v, "targets").and_then(as_seq).map(|s| s.iter().collect()).unwrap_or_default()
    }
    let name_of = |t: &Value| get(t, "name").and_then(as_str).unwrap_or("?").to_string();
    let new_targets = targets(new);

    for bt in targets(base) {
        let name = name_of(bt);
        let Some(nt) = new_targets.iter().find(|t| name_of(t) == name) else {
            cmp.notes.push(format!("target '{name}' missing from new file — skipped"));
            continue;
        };
        if let (Some(b), Some(n)) = (
            get(bt, "wall_s").and_then(as_f64),
            get(nt, "wall_s").and_then(as_f64),
        ) {
            diff_metric(&mut cmp.diffs, format!("{name}/wall_s"), b, n);
        }
        let hists = |t: &Value| -> Vec<(String, f64)> {
            get(t, "hists")
                .and_then(as_seq)
                .map(|rows| {
                    rows.iter()
                        .filter_map(|r| {
                            Some((
                                get(r, "name").and_then(as_str)?.to_string(),
                                get(r, "p50").and_then(as_f64)?,
                            ))
                        })
                        .collect()
                })
                .unwrap_or_default()
        };
        let new_hists = hists(nt);
        for (hname, bp50) in hists(bt) {
            if let Some((_, np50)) = new_hists.iter().find(|(n, _)| *n == hname) {
                diff_metric(&mut cmp.diffs, format!("{name}/{hname}.p50"), bp50, *np50);
            }
        }
    }
    if cmp.diffs.is_empty() {
        return Err("no comparable metrics between the two files".to_string());
    }
    Ok(cmp)
}

/// Compare two `BENCH.json` files on disk.
pub fn compare_files(base_path: &str, new_path: &str) -> Result<Comparison, String> {
    let read = |p: &str| {
        std::fs::read_to_string(p)
            .map_err(|e| format!("cannot read {p}: {e}"))
            .and_then(|t| parse_json(&t).map_err(|e| format!("{p}: {e}")))
    };
    compare_values(&read(base_path)?, &read(new_path)?)
}

// ─────────────────────────────── self-test ─────────────────────────────────

fn synthetic_report(scale: f64) -> String {
    let mk = |wall: f64, p50: f64| {
        format!(
            "{{\"name\": \"t\", \"wall_s\": {wall}, \"hists\": [{{\"name\": \"sim.step\", \
             \"count\": 10, \"mean\": {p50}, \"p50\": {p50}, \"p95\": {p50}, \"p99\": {p50}}}]}}"
        )
    };
    format!(
        "{{\"bench_schema\": 1, \"git_rev\": \"selftest\", \"host\": {{\"os\": \"linux\", \
         \"arch\": \"x86_64\", \"hardware_threads\": 1}}, \"targets\": [{}]}}",
        mk(2.0 * scale, (1000.0 * scale).round())
    )
}

/// Prove the comparator catches what it claims to: identical inputs pass,
/// an injected 20% slowdown fails. Returns `Err` describing any miss.
pub fn self_test() -> Result<(), String> {
    let base = parse_json(&synthetic_report(1.0))?;
    let same = compare_values(&base, &base)?;
    if !same.regressions().is_empty() {
        return Err(format!(
            "identical inputs flagged {} regression(s)",
            same.regressions().len()
        ));
    }
    let slow = parse_json(&synthetic_report(1.2))?;
    let cmp = compare_values(&base, &slow)?;
    let flagged = cmp.regressions();
    if flagged.is_empty() {
        return Err("injected 20% slowdown was not flagged".to_string());
    }
    // both the wall time and the histogram median slowed by 20%
    if flagged.len() != cmp.diffs.len() {
        return Err(format!(
            "expected every metric flagged, got {}/{}",
            flagged.len(),
            cmp.diffs.len()
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parser_roundtrips_harness_shaped_json() {
        let v = parse_json(
            "{\"a\": 1, \"b\": -2.5, \"c\": [true, false, null], \"d\": \"x\\ny\", \
             \"e\": {\"nested\": 1e3}}",
        )
        .unwrap();
        assert_eq!(get(&v, "a").and_then(as_f64), Some(1.0));
        assert_eq!(get(&v, "b").and_then(as_f64), Some(-2.5));
        assert_eq!(as_seq(get(&v, "c").unwrap()).unwrap().len(), 3);
        assert_eq!(get(&v, "d").and_then(as_str), Some("x\ny"));
        assert_eq!(get(get(&v, "e").unwrap(), "nested").and_then(as_f64), Some(1000.0));
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(parse_json("{").is_err());
        assert!(parse_json("[1, 2,]").is_err());
        assert!(parse_json("{\"a\": 1} trailing").is_err());
        assert!(parse_json("nope").is_err());
    }

    #[test]
    fn parser_handles_save_json_output() {
        // exactly what the shim writer produces
        let text = serde_json::to_string_pretty(&vec![(1u64, 2.5f64)]).unwrap();
        let v = parse_json(&text).unwrap();
        assert_eq!(as_seq(&v).unwrap().len(), 1);
    }

    #[test]
    fn identical_reports_pass() {
        let v = parse_json(&synthetic_report(1.0)).unwrap();
        let cmp = compare_values(&v, &v).unwrap();
        assert!(cmp.regressions().is_empty(), "{}", cmp.render());
        assert_eq!(cmp.diffs.len(), 2); // wall_s + one hist p50
    }

    #[test]
    fn twenty_percent_slowdown_is_flagged() {
        let base = parse_json(&synthetic_report(1.0)).unwrap();
        let slow = parse_json(&synthetic_report(1.2)).unwrap();
        let cmp = compare_values(&base, &slow).unwrap();
        assert_eq!(cmp.regressions().len(), 2, "{}", cmp.render());
        // and the reverse direction — a speedup — never fails the gate
        let cmp = compare_values(&slow, &base).unwrap();
        assert!(cmp.regressions().is_empty());
    }

    #[test]
    fn ten_percent_drift_stays_under_threshold() {
        let base = parse_json(&synthetic_report(1.0)).unwrap();
        let drift = parse_json(&synthetic_report(1.1)).unwrap();
        let cmp = compare_values(&base, &drift).unwrap();
        assert!(cmp.regressions().is_empty(), "{}", cmp.render());
    }

    #[test]
    fn schema_mismatch_is_fatal() {
        let good = parse_json(&synthetic_report(1.0)).unwrap();
        let bad = parse_json("{\"bench_schema\": 99, \"targets\": []}").unwrap();
        assert!(compare_values(&good, &bad).is_err());
    }

    #[test]
    fn missing_target_is_a_note_not_a_failure() {
        let base = parse_json(&synthetic_report(1.0)).unwrap();
        let new = parse_json(
            "{\"bench_schema\": 1, \"host\": {\"os\": \"linux\", \"arch\": \"x86_64\", \
             \"hardware_threads\": 1}, \"targets\": [{\"name\": \"other\", \"wall_s\": 1.0, \
             \"hists\": []}, {\"name\": \"t\", \"wall_s\": 2.0, \"hists\": []}]}",
        )
        .unwrap();
        let cmp = compare_values(&base, &new).unwrap();
        assert!(cmp.regressions().is_empty());
        assert!(cmp.notes.is_empty());
        // base's hist row has no counterpart → only wall_s compared
        assert_eq!(cmp.diffs.len(), 1);
    }

    #[test]
    fn comparator_self_test_passes() {
        self_test().unwrap();
    }

    #[test]
    fn render_is_deterministic_and_labelled() {
        let base = parse_json(&synthetic_report(1.0)).unwrap();
        let slow = parse_json(&synthetic_report(1.2)).unwrap();
        let cmp = compare_values(&base, &slow).unwrap();
        let a = cmp.render();
        assert_eq!(a, cmp.render());
        assert!(a.contains("<< REGRESSION"));
        assert!(a.contains("t/wall_s"));
        assert!(a.contains("t/sim.step.p50"));
    }
}
