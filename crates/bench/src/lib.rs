//! # bench — the reproduction harness
//!
//! One module per paper table/figure. Each module's `run()` returns the
//! figure's data (serde-serializable) and pretty-prints the same
//! rows/series the paper reports; the `repro` binary dispatches on
//! subcommands and stores JSON under `results/`.
//!
//! Where a figure is *measured* (host wall-clock: Figs 3 and 4's strategy
//! ratios, the sorting kernels) the harness times real code; where it is
//! *modelled* (the twelve Table-1 platforms, GPUs, the cluster) it drives
//! `memsim`/`cluster` with real key/cell streams. EXPERIMENTS.md records
//! which is which, per figure.

pub mod ablate;
pub mod ckpt;
pub mod dispatch;
pub mod field;
pub mod fig1;
pub mod fig10;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod gpu;
pub mod push;
pub mod ranks;
pub mod regress;
pub mod serve;
pub mod suite;
pub mod table1;
pub mod tile;
pub mod timing;
pub mod tune;

use serde::Serialize;
use std::io::Write;
use std::path::PathBuf;


/// True in unoptimized builds, where the trace-driven model tests are
/// impractically slow (they run in full under `--release`, as CI does).
pub fn skip_heavy_in_debug() -> bool {
    if cfg!(debug_assertions) {
        eprintln!("skipping model-heavy test in debug build; run with --release");
        true
    } else {
        false
    }
}

/// Where the harness writes JSON results.
pub fn results_dir() -> PathBuf {
    let dir = std::env::var("REPRO_RESULTS_DIR").unwrap_or_else(|_| "results".into());
    PathBuf::from(dir)
}

/// Serialize a figure's data to `results/<name>.json`.
pub fn save_json<T: Serialize>(name: &str, value: &T) -> std::io::Result<PathBuf> {
    let dir = results_dir();
    std::fs::create_dir_all(&dir)?;
    let path = dir.join(format!("{name}.json"));
    let mut f = std::fs::File::create(&path)?;
    let json = serde_json::to_string_pretty(value).expect("serializable");
    f.write_all(json.as_bytes())?;
    f.write_all(b"\n")?;
    Ok(path)
}

/// Format a throughput/bandwidth in GB/s.
pub fn gbps(bytes_per_sec: f64) -> String {
    format!("{:.1} GB/s", bytes_per_sec / 1e9)
}

/// Format seconds human-readably.
pub fn fmt_time(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.2} s")
    } else if s >= 1e-3 {
        format!("{:.2} ms", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:.2} µs", s * 1e6)
    } else {
        format!("{:.0} ns", s * 1e9)
    }
}

/// Serializes tests that flip the process-global telemetry flag so they
/// cannot race each other (or poison a concurrent measurement).
#[cfg(test)]
pub(crate) fn telemetry_test_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatting_helpers() {
        assert_eq!(gbps(1.65e11), "165.0 GB/s");
        assert_eq!(fmt_time(2.5), "2.50 s");
        assert_eq!(fmt_time(2.5e-3), "2.50 ms");
        assert_eq!(fmt_time(2.5e-6), "2.50 µs");
        assert_eq!(fmt_time(2.6e-9), "3 ns");
    }

    #[test]
    fn save_json_roundtrips() {
        std::env::set_var("REPRO_RESULTS_DIR", "/tmp/repro-test-results");
        let path = save_json("unit-test", &vec![1, 2, 3]).unwrap();
        let body = std::fs::read_to_string(path).unwrap();
        assert!(body.contains('1') && body.contains('3'));
        std::env::remove_var("REPRO_RESULTS_DIR");
    }
}
