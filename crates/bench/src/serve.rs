//! Multi-tenant serving throughput and latency (DESIGN §15).
//!
//! Stands up one [`serve::Server`] and floods it with a synthetic tenant
//! population — a mix of plain, double-weight, tuner-armed, and tiled
//! jobs over small Weibel decks — far above the residency cap, so
//! checkpoint preemption and pool migration are the steady state rather
//! than a corner case. Drains the fleet and reports jobs/second, p50/p95
//! step latency from the `serve.step.ns` histogram, queue-wait and
//! preemption-cost percentiles, park/unpark/migration counts, and the
//! worst weight-normalized fairness ratio the scheduler allowed.
//!
//! Two gates: every admitted tenant must finish (no quarantines under
//! healthy load), and the worst max/min progress ratio after warmup must
//! stay ≤ 2 (the paper's fairness bar for the serving tier).
//!
//! Environment: `SERVE_TENANTS` (default 120; the ISSUE gate needs
//! ≥ 100), `SERVE_STEPS` (default 8 per job), `SERVE_QUANTUM` (default
//! 2), `SERVE_RESIDENT` (default 8 live sims).

use serde::Serialize;
use serve::{JobSpec, ServePolicy, Server};
use vpic_core::{Deck, TilePolicy};

/// The `serve` target's result set.
#[derive(Serialize)]
pub struct Report {
    /// Tenants admitted (concurrently in flight).
    pub tenants: u64,
    /// Steps each tenant requested.
    pub steps_per_job: u64,
    /// Worker-pool lane counts the scheduler rotated over.
    pub pools: Vec<usize>,
    /// Steps per scheduler slice.
    pub quantum: u32,
    /// Live-simulation residency cap (preemption pressure knob).
    pub max_resident: usize,
    /// Jobs that ran to completion.
    pub completed: u64,
    /// Jobs quarantined (0 under healthy load).
    pub quarantined: u64,
    /// Scheduler rounds to drain the fleet.
    pub rounds: u64,
    /// Total simulation steps executed across the fleet.
    pub total_steps: u64,
    /// Wall time of the drain, seconds.
    pub wall_s: f64,
    /// Completed jobs per second.
    pub jobs_per_sec: f64,
    /// Fleet steps per second.
    pub steps_per_sec: f64,
    /// Median per-step latency, ns (`serve.step.ns`).
    pub p50_step_ns: u64,
    /// 95th-percentile per-step latency, ns.
    pub p95_step_ns: u64,
    /// 95th-percentile admission-to-first-step wait, ns.
    pub p95_queue_wait_ns: u64,
    /// 95th-percentile preemption cost (park or unpark), ns.
    pub p95_preempt_ns: u64,
    /// Checkpoint parks (residency-cap evictions).
    pub parks: u64,
    /// Checkpoint resumes.
    pub unparks: u64,
    /// Slices that ran on a different pool than the job's previous one.
    pub migrations: u64,
    /// Worst weight-normalized max/min progress ratio after warmup
    /// (gate: ≤ 2), if the drain ever had ≥ 2 jobs in flight.
    pub fairness_worst: Option<f64>,
}

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

/// One synthetic tenant. The mix cycles deterministically by index:
/// every 7th tenant is double-weight, every 9th carries a tuner, every
/// 11th steps tiled (in-memory compressed tiles), the rest are plain.
fn tenant(i: u64, steps: u64) -> JobSpec {
    let grid = 4 + (i % 3) as usize; // 4³..6³ cells
    let mut deck = Deck::weibel(grid, grid, grid, 2, 0.3);
    deck.seed = 1000 + i;
    let mut spec = JobSpec::new(deck, steps);
    spec.name = format!("tenant-{i:04}");
    if i.is_multiple_of(7) {
        spec.weight = 2;
    }
    if i.is_multiple_of(9) {
        spec.tune = true;
    }
    if i.is_multiple_of(11) {
        let cells = grid * grid * grid;
        spec.tile = Some(TilePolicy::new((cells / 4).max(1)));
    }
    spec
}

/// Run the thousand-tenant-shaped serving measurement and print the
/// summary table.
pub fn run() -> Report {
    let tenants = env_u64("SERVE_TENANTS", 120);
    let steps = env_u64("SERVE_STEPS", 8);
    let quantum = env_u64("SERVE_QUANTUM", 2) as u32;
    let max_resident = env_u64("SERVE_RESIDENT", 8) as usize;

    // the histograms only fill with telemetry on; restore on exit so a
    // standalone `repro -- serve` leaves the process as it found it
    let was_enabled = telemetry::enabled();
    telemetry::set_enabled(true);
    let before = telemetry::metrics_snapshot();
    let parks0 = telemetry::counter("serve.preempt.parks");
    let unparks0 = telemetry::counter("serve.preempt.unparks");
    let migrations0 = telemetry::counter("serve.migrations");

    let policy = ServePolicy {
        max_jobs: tenants as usize,
        max_bytes: 8 << 30,
        max_resident,
        pools: vec![4, 2, 2],
        quantum,
        tuner_epoch: 2,
        // per-tenant histograms at 100+ tenants would drown the fleet
        // rows; the fleet-wide `serve.*` set is what this bench reads
        per_job_metrics: false,
    };
    let mut srv = Server::new(policy);
    for i in 0..tenants {
        srv.submit(tenant(i, steps)).expect("bench population fits the admission budget");
    }

    let report = srv.run_until_done(100_000);

    let delta = telemetry::metrics_snapshot().delta_since(&before);
    let parks = telemetry::counter("serve.preempt.parks") - parks0;
    let unparks = telemetry::counter("serve.preempt.unparks") - unparks0;
    let migrations = telemetry::counter("serve.migrations") - migrations0;
    telemetry::set_enabled(was_enabled);

    let hist = |name: &str, p: f64| {
        delta.hists.get(name).map(|h| h.percentile(p)).unwrap_or(0)
    };
    let wall_s = report.wall_ns as f64 / 1e9;

    let out = Report {
        tenants,
        steps_per_job: steps,
        pools: srv.policy().pools.clone(),
        quantum,
        max_resident,
        completed: report.completed,
        quarantined: report.quarantined,
        rounds: report.rounds,
        total_steps: report.steps,
        wall_s,
        jobs_per_sec: report.jobs_per_sec(),
        steps_per_sec: if wall_s > 0.0 { report.steps as f64 / wall_s } else { 0.0 },
        p50_step_ns: hist("serve.step.ns", 50.0),
        p95_step_ns: hist("serve.step.ns", 95.0),
        p95_queue_wait_ns: hist("serve.queue_wait.ns", 95.0),
        p95_preempt_ns: hist("serve.preempt.ns", 95.0),
        parks,
        unparks,
        migrations,
        fairness_worst: report.fairness_worst,
    };

    println!(
        "multi-tenant serving — {} tenants × {} steps, pools {:?}, quantum {}, {} resident",
        out.tenants, out.steps_per_job, out.pools, out.quantum, out.max_resident
    );
    println!("  completed           {:>10}  ({} quarantined)", out.completed, out.quarantined);
    println!("  drain               {:>10} rounds, {}", out.rounds, crate::fmt_time(out.wall_s));
    println!("  throughput          {:>10.1} jobs/s  ({:.0} steps/s)", out.jobs_per_sec, out.steps_per_sec);
    println!("  step latency        {:>10} p50, {} p95", fmt_ns(out.p50_step_ns), fmt_ns(out.p95_step_ns));
    println!("  queue wait p95      {:>10}", fmt_ns(out.p95_queue_wait_ns));
    println!("  preemption p95      {:>10}  ({} parks, {} unparks)", fmt_ns(out.p95_preempt_ns), out.parks, out.unparks);
    println!("  pool migrations     {:>10}", out.migrations);
    match out.fairness_worst {
        Some(r) => println!("  fairness worst      {:>10.2}  (gate: <= 2)", r),
        None => println!("  fairness worst         (never measurable)"),
    }

    assert!(out.tenants >= 100, "the serving gate needs >= 100 concurrent tenants");
    assert_eq!(out.completed, out.tenants, "every healthy tenant must finish");
    assert_eq!(out.quarantined, 0, "healthy load must not quarantine anyone");
    if let Some(r) = out.fairness_worst {
        assert!(r <= 2.0, "weighted round-robin must keep max/min progress <= 2, got {r:.2}");
    }
    out
}

fn fmt_ns(ns: u64) -> String {
    crate::fmt_time(ns as f64 / 1e9)
}
