//! Executed multi-rank stepping vs the closed-form overlap model.
//!
//! Drives [`cluster::MultiRankSim`] over the LLC-resident Weibel deck at
//! 1/2/4/8 virtual ranks and reports, per rank count: the executed mean
//! step time (real per-rank kernels + real halo exchange, network time
//! from the α–β model), the fraction of modeled exchange hidden behind
//! interior compute, and the executed speedup next to the closed-form
//! prediction `T(N) = T(1)/N + exposed(N)`. CI regression-checks
//! `results/ranks.json`; the tier-1 suite asserts executed and model
//! speedups agree within the tolerance EXPERIMENTS.md documents.
//!
//! The sweep also arms each `MultiRankSim` with a scaled V100
//! [`GpuModel`]: every rank's executed cell streams are charged through
//! the `memsim` push model, and the per-rank-count modeled compute time
//! exhibits the paper's §6 superlinear regime — as the per-rank working
//! set approaches the (scaled) LLC, partial reuse pushes the modeled
//! speedup over ideal, and the full fit is an unmistakable cliff. The
//! crossing is reported in `results/ranks.json` under
//! `gpu.superlinear_at`.

use cluster::{systems, MultiRankSim};
use memsim::gpu::GpuModel;
use memsim::push::grid_footprint_bytes;
use serde::Serialize;
use vpic_core::Deck;

/// Rank counts the sweep executes.
pub const RANK_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// Platform the per-rank GPU cost model charges against.
pub const GPU_PLATFORM: &str = "V100";

/// LLC shrink applied to [`GPU_PLATFORM`]: 6 MB / 10 ≈ 614 KiB. The
/// gather working set each rank's push actually touches is its *owned*
/// cells (particles never sit in ghost cells once migration drains
/// them): 16³ over 1/2/4/8 ranks gives 1.77 MB / 886 KB / 443 KB /
/// 221 KB at 432 B per cell — outside the scaled cache at 1–2 ranks,
/// fully inside from 4 on. Partial reuse starts the superlinear
/// crossing at 2 ranks; the full fit at 4 is the cliff the test pins.
pub const GPU_SCALE: f64 = 10.0;

/// One rank count's modeled-GPU numbers.
#[derive(Debug, Clone, Serialize)]
pub struct GpuRankPoint {
    /// Virtual ranks stepped.
    pub ranks: usize,
    /// Largest per-rank local grid, cells (ghosts included).
    pub rank_cells: usize,
    /// Owned (interior) cells per rank — the gather working set the
    /// push stream actually touches.
    pub owned_cells: usize,
    /// Whether the owned-cell push footprint fits the scaled LLC.
    pub in_cache: bool,
    /// Mean per-step modeled GPU compute of the slowest rank, s.
    pub mean_gpu_compute_s: f64,
    /// Mean per-step modeled GPU step (compute + exposed exchange), s.
    pub mean_gpu_step_s: f64,
    /// Modeled speedup vs the 1-rank modeled compute.
    pub speedup_gpu: f64,
    /// Ideal linear speedup (= ranks).
    pub speedup_ideal: f64,
}

/// The GPU-model arm of the `ranks` target.
#[derive(Debug, Clone, Serialize)]
pub struct GpuRanksReport {
    /// Platform charged.
    pub platform: String,
    /// LLC shrink factor.
    pub scale: f64,
    /// The scaled LLC, bytes.
    pub scaled_llc_bytes: u64,
    /// Per rank count.
    pub points: Vec<GpuRankPoint>,
    /// First rank count whose modeled speedup exceeds ideal — the
    /// superlinear knee (None if the sweep never crosses). The crossing
    /// starts no later than the first fully-in-cache point: LRU reuse
    /// ramps up smoothly as the working set approaches the LLC.
    pub superlinear_at: Option<usize>,
}

/// One executed rank-count point.
#[derive(Debug, Clone, Serialize)]
pub struct RankPoint {
    /// Virtual ranks stepped.
    pub ranks: usize,
    /// Measured steps (after warmup).
    pub steps: usize,
    /// Mean executed step: max over ranks of compute + exposed exchange, s.
    pub mean_step_s: f64,
    /// Mean per-step compute wall of the slowest rank, s.
    pub mean_compute_s: f64,
    /// Σ modeled exchange time across ranks and steps, s.
    pub modeled_exchange_s: f64,
    /// Σ exchange time not hidden behind overlapped compute, s.
    pub exposed_exchange_s: f64,
    /// Fraction of modeled exchange hidden by the overlap schedule.
    pub hidden_fraction: f64,
    /// Executed speedup vs the 1-rank executed step.
    pub speedup_exec: f64,
    /// Closed-form speedup: `T(1) / (T(1)/N + mean exposed per rank)`.
    pub speedup_model: f64,
    /// Ideal linear speedup (= ranks).
    pub speedup_ideal: f64,
}

/// The `ranks` target's result set.
#[derive(Debug, Clone, Serialize)]
pub struct Report {
    /// Deck description.
    pub deck: String,
    /// Global grid.
    pub grid: (usize, usize, usize),
    /// Particles per cell.
    pub ppc: usize,
    /// Interconnect modeled (Selene: GPU-aware α–β).
    pub network: String,
    /// Executed sweep points.
    pub points: Vec<RankPoint>,
    /// Hidden fraction aggregated over the multi-rank points — the
    /// overlap-effectiveness headline (acceptance: ≥ 0.5 on this deck).
    pub hidden_fraction_overall: f64,
    /// The per-rank modeled GPU costs and the superlinear knee.
    pub gpu: GpuRanksReport,
}

/// Execute the sweep. `steps` measured steps per rank count after
/// `warmup` unmeasured ones.
pub fn sweep(grid: (usize, usize, usize), ppc: usize, warmup: usize, steps: usize) -> Report {
    let network = systems::selene().network;
    let reference = Deck::weibel(grid.0, grid.1, grid.2, ppc, 0.3).build();
    let gpu_platform =
        memsim::platform::by_name(GPU_PLATFORM).expect("known GPU platform");
    let gpu_model = GpuModel::scaled(gpu_platform, GPU_SCALE);
    let scaled_llc = gpu_model.llc_bytes();
    let mut points = Vec::new();
    let mut gpu_points = Vec::new();
    let mut t1 = f64::NAN;
    let mut gpu1 = f64::NAN;
    let mut hidden_sum = 0.0;
    let mut modeled_sum = 0.0;
    // every rank keeps its particles in strided order (the GPUs' winning
    // order, re-sorted each step) and deposits through a duplicated
    // accumulator. Strided order makes the modeled gather stream a
    // cyclic sweep of the rank's cells — it misses everything while the
    // grid exceeds the scaled LLC and hits everything once it fits — and
    // duplicated deposition removes the atomic-replay floor that would
    // otherwise hide the cache transition (per-cell occupancy, which the
    // replay term scales with, is invariant under rank splitting). The
    // result is the sharp knee of the paper's §6 superlinear regime.
    let strided = tuner::Config {
        order: Some(psort::SortOrder::Strided),
        interval: 1,
        strategy: vsimd::Strategy::Auto,
        scatter: pk::atomic::ScatterMode::Duplicated,
        tile: None,
    };
    for &ranks in &RANK_COUNTS {
        let mut mr = MultiRankSim::new(&reference, ranks, network);
        mr.set_gpu_model(gpu_model.clone());
        for r in 0..ranks {
            mr.set_rank_config(r, &strided);
        }
        mr.run(warmup);
        let mut step_s = 0.0;
        let mut compute_s = 0.0;
        let mut modeled = 0.0;
        let mut exposed = 0.0;
        let mut gpu_compute = 0.0;
        let mut gpu_step = 0.0;
        for _ in 0..steps {
            let (_, _, t) = mr.step();
            step_s += t.step_s;
            compute_s += t.compute_s;
            modeled += t.modeled_exchange_s;
            exposed += t.exposed_exchange_s;
            gpu_compute += t.gpu_compute_s;
            gpu_step += t.gpu_step_s;
        }
        let mean_step_s = step_s / steps as f64;
        let mean_gpu_compute_s = gpu_compute / steps as f64;
        if ranks == 1 {
            t1 = mean_step_s;
            gpu1 = mean_gpu_compute_s;
        }
        let rank_cells =
            (0..ranks).map(|r| mr.rank_grid_cells(r)).max().unwrap_or(0);
        // ghosts are field-only: the push gather touches owned cells
        let owned_cells = grid.0 * grid.1 * grid.2 / ranks;
        gpu_points.push(GpuRankPoint {
            ranks,
            rank_cells,
            owned_cells,
            in_cache: grid_footprint_bytes(owned_cells) <= scaled_llc,
            mean_gpu_compute_s,
            mean_gpu_step_s: gpu_step / steps as f64,
            speedup_gpu: gpu1 / mean_gpu_compute_s,
            speedup_ideal: ranks as f64,
        });
        let hidden = modeled - exposed;
        if ranks > 1 {
            hidden_sum += hidden;
            modeled_sum += modeled;
        }
        // closed form: perfect compute scaling of the 1-rank step plus
        // the mean per-rank exposed exchange the overlap could not hide
        let exposed_per_rank_step = exposed / (steps as f64 * ranks as f64);
        let model_step = t1 / ranks as f64 + exposed_per_rank_step;
        points.push(RankPoint {
            ranks,
            steps,
            mean_step_s,
            mean_compute_s: compute_s / steps as f64,
            modeled_exchange_s: modeled,
            exposed_exchange_s: exposed,
            hidden_fraction: if modeled == 0.0 { 1.0 } else { hidden / modeled },
            speedup_exec: t1 / mean_step_s,
            speedup_model: t1 / model_step,
            speedup_ideal: ranks as f64,
        });
    }
    Report {
        deck: format!("weibel {}x{}x{} ppc {ppc} u=0.3", grid.0, grid.1, grid.2),
        grid,
        ppc,
        network: "Selene (GPU-aware α–β)".into(),
        points,
        hidden_fraction_overall: if modeled_sum == 0.0 {
            1.0
        } else {
            hidden_sum / modeled_sum
        },
        gpu: GpuRanksReport {
            platform: GPU_PLATFORM.into(),
            scale: GPU_SCALE,
            scaled_llc_bytes: scaled_llc,
            superlinear_at: gpu_points
                .iter()
                .find(|p| p.ranks > 1 && p.speedup_gpu > p.speedup_ideal)
                .map(|p| p.ranks),
            points: gpu_points,
        },
    }
}

/// Run the `ranks` target and print the summary table.
pub fn run() -> Report {
    // LLC-resident on every platform the paper tables: 16³ cells
    let report = sweep((16, 16, 16), 4, 2, 6);
    println!("executed multi-rank stepping — {} over {}", report.deck, report.network);
    println!(
        "{:>6} {:>12} {:>12} {:>10} {:>10} {:>8}",
        "ranks", "step (µs)", "compute (µs)", "exec ×", "model ×", "hidden"
    );
    for p in &report.points {
        println!(
            "{:>6} {:>12.1} {:>12.1} {:>10.2} {:>10.2} {:>7.0}%",
            p.ranks,
            p.mean_step_s * 1e6,
            p.mean_compute_s * 1e6,
            p.speedup_exec,
            p.speedup_model,
            p.hidden_fraction * 100.0
        );
    }
    println!(
        "overlap hides {:.0}% of modeled exchange time across multi-rank points",
        report.hidden_fraction_overall * 100.0
    );
    println!(
        "modeled {} (LLC/{:.0} = {} KiB) per-rank compute:",
        report.gpu.platform,
        report.gpu.scale,
        report.gpu.scaled_llc_bytes / 1024
    );
    println!(
        "{:>6} {:>10} {:>9} {:>14} {:>8} {:>8}",
        "ranks", "owned", "in-cache", "compute (µs)", "gpu ×", "ideal ×"
    );
    for p in &report.gpu.points {
        println!(
            "{:>6} {:>10} {:>9} {:>14.1} {:>8.2} {:>8.2}",
            p.ranks,
            p.owned_cells,
            if p.in_cache { "yes" } else { "no" },
            p.mean_gpu_compute_s * 1e6,
            p.speedup_gpu,
            p.speedup_ideal
        );
    }
    match report.gpu.superlinear_at {
        Some(r) => println!("superlinear knee: modeled speedup crosses ideal at {r} ranks"),
        None => println!("no superlinear point in this sweep"),
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gpu_arm_goes_superlinear_once_per_rank_grid_fits_the_llc() {
        if crate::skip_heavy_in_debug() {
            return;
        }
        let report = sweep((16, 16, 16), 4, 1, 4);
        let gpu = &report.gpu;
        assert_eq!(gpu.points.len(), RANK_COUNTS.len());
        // the deck is sized so the cache bit flips inside the sweep
        assert!(!gpu.points[0].in_cache, "1 rank must spill the scaled LLC");
        assert!(gpu.points.last().unwrap().in_cache, "8 ranks must fit");
        let knee = gpu.superlinear_at.expect("sweep must cross ideal speedup");
        let first_fit = gpu
            .points
            .iter()
            .find(|p| p.in_cache)
            .map(|p| p.ranks)
            .expect("some point fits");
        // LRU transitions are smooth: partial reuse pushes the speedup
        // over ideal no later than the full fit...
        assert!(
            knee <= first_fit,
            "knee at {knee} ranks must not trail the cache fit at {first_fit}"
        );
        // ...and once the per-rank working set actually fits, the cliff
        // is unmistakable: well past ideal at the fit, and still pulling
        // away at the deepest point
        let fit_point =
            gpu.points.iter().find(|p| p.ranks == first_fit).expect("fit point");
        assert!(
            fit_point.speedup_gpu >= 1.5 * fit_point.speedup_ideal,
            "cache fit must be a cliff: {} < 1.5x ideal {}",
            fit_point.speedup_gpu,
            fit_point.speedup_ideal
        );
        let last = gpu.points.last().unwrap();
        assert!(
            last.speedup_gpu >= 2.0 * last.speedup_ideal,
            "deep in cache the modeled speedup must stay far above ideal"
        );
        for p in &report.gpu.points {
            assert!(p.mean_gpu_compute_s > 0.0, "armed model must charge time");
            assert!(p.mean_gpu_step_s >= p.mean_gpu_compute_s);
        }
    }
}

