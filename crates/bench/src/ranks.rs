//! Executed multi-rank stepping vs the closed-form overlap model.
//!
//! Drives [`cluster::MultiRankSim`] over the LLC-resident Weibel deck at
//! 1/2/4/8 virtual ranks and reports, per rank count: the executed mean
//! step time (real per-rank kernels + real halo exchange, network time
//! from the α–β model), the fraction of modeled exchange hidden behind
//! interior compute, and the executed speedup next to the closed-form
//! prediction `T(N) = T(1)/N + exposed(N)`. CI regression-checks
//! `results/ranks.json`; the tier-1 suite asserts executed and model
//! speedups agree within the tolerance EXPERIMENTS.md documents.

use cluster::{systems, MultiRankSim};
use serde::Serialize;
use vpic_core::Deck;

/// Rank counts the sweep executes.
pub const RANK_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// One executed rank-count point.
#[derive(Debug, Clone, Serialize)]
pub struct RankPoint {
    /// Virtual ranks stepped.
    pub ranks: usize,
    /// Measured steps (after warmup).
    pub steps: usize,
    /// Mean executed step: max over ranks of compute + exposed exchange, s.
    pub mean_step_s: f64,
    /// Mean per-step compute wall of the slowest rank, s.
    pub mean_compute_s: f64,
    /// Σ modeled exchange time across ranks and steps, s.
    pub modeled_exchange_s: f64,
    /// Σ exchange time not hidden behind overlapped compute, s.
    pub exposed_exchange_s: f64,
    /// Fraction of modeled exchange hidden by the overlap schedule.
    pub hidden_fraction: f64,
    /// Executed speedup vs the 1-rank executed step.
    pub speedup_exec: f64,
    /// Closed-form speedup: `T(1) / (T(1)/N + mean exposed per rank)`.
    pub speedup_model: f64,
    /// Ideal linear speedup (= ranks).
    pub speedup_ideal: f64,
}

/// The `ranks` target's result set.
#[derive(Debug, Clone, Serialize)]
pub struct Report {
    /// Deck description.
    pub deck: String,
    /// Global grid.
    pub grid: (usize, usize, usize),
    /// Particles per cell.
    pub ppc: usize,
    /// Interconnect modeled (Selene: GPU-aware α–β).
    pub network: String,
    /// Executed sweep points.
    pub points: Vec<RankPoint>,
    /// Hidden fraction aggregated over the multi-rank points — the
    /// overlap-effectiveness headline (acceptance: ≥ 0.5 on this deck).
    pub hidden_fraction_overall: f64,
}

/// Execute the sweep. `steps` measured steps per rank count after
/// `warmup` unmeasured ones.
pub fn sweep(grid: (usize, usize, usize), ppc: usize, warmup: usize, steps: usize) -> Report {
    let network = systems::selene().network;
    let reference = Deck::weibel(grid.0, grid.1, grid.2, ppc, 0.3).build();
    let mut points = Vec::new();
    let mut t1 = f64::NAN;
    let mut hidden_sum = 0.0;
    let mut modeled_sum = 0.0;
    for &ranks in &RANK_COUNTS {
        let mut mr = MultiRankSim::new(&reference, ranks, network);
        mr.run(warmup);
        let mut step_s = 0.0;
        let mut compute_s = 0.0;
        let mut modeled = 0.0;
        let mut exposed = 0.0;
        for _ in 0..steps {
            let (_, _, t) = mr.step();
            step_s += t.step_s;
            compute_s += t.compute_s;
            modeled += t.modeled_exchange_s;
            exposed += t.exposed_exchange_s;
        }
        let mean_step_s = step_s / steps as f64;
        if ranks == 1 {
            t1 = mean_step_s;
        }
        let hidden = modeled - exposed;
        if ranks > 1 {
            hidden_sum += hidden;
            modeled_sum += modeled;
        }
        // closed form: perfect compute scaling of the 1-rank step plus
        // the mean per-rank exposed exchange the overlap could not hide
        let exposed_per_rank_step = exposed / (steps as f64 * ranks as f64);
        let model_step = t1 / ranks as f64 + exposed_per_rank_step;
        points.push(RankPoint {
            ranks,
            steps,
            mean_step_s,
            mean_compute_s: compute_s / steps as f64,
            modeled_exchange_s: modeled,
            exposed_exchange_s: exposed,
            hidden_fraction: if modeled == 0.0 { 1.0 } else { hidden / modeled },
            speedup_exec: t1 / mean_step_s,
            speedup_model: t1 / model_step,
            speedup_ideal: ranks as f64,
        });
    }
    Report {
        deck: format!("weibel {}x{}x{} ppc {ppc} u=0.3", grid.0, grid.1, grid.2),
        grid,
        ppc,
        network: "Selene (GPU-aware α–β)".into(),
        points,
        hidden_fraction_overall: if modeled_sum == 0.0 {
            1.0
        } else {
            hidden_sum / modeled_sum
        },
    }
}

/// Run the `ranks` target and print the summary table.
pub fn run() -> Report {
    // LLC-resident on every platform the paper tables: 16³ cells
    let report = sweep((16, 16, 16), 4, 2, 6);
    println!("executed multi-rank stepping — {} over {}", report.deck, report.network);
    println!(
        "{:>6} {:>12} {:>12} {:>10} {:>10} {:>8}",
        "ranks", "step (µs)", "compute (µs)", "exec ×", "model ×", "hidden"
    );
    for p in &report.points {
        println!(
            "{:>6} {:>12.1} {:>12.1} {:>10.2} {:>10.2} {:>7.0}%",
            p.ranks,
            p.mean_step_s * 1e6,
            p.mean_compute_s * 1e6,
            p.speedup_exec,
            p.speedup_model,
            p.hidden_fraction * 100.0
        );
    }
    println!(
        "overlap hides {:.0}% of modeled exchange time across multi-rank points",
        report.hidden_fraction_overall * 100.0
    );
    report
}
