//! Figure 4 — particle-push runtime under auto/guided/manual/ad hoc
//! vectorization across the six CPU platforms (LPI benchmark).
//!
//! Same recipe as Fig 3: host-measured strategy ratios on the *real* push
//! kernel (the full gather → Boris → mover/deposit pipeline on an
//! LPI-deck particle population), projected per platform with the paper's
//! ISA findings — plus two push-specific effects from §5.3: ad hoc is
//! NEON-only on ARM (no SVE/SVE2), and HBM platforms gain more from
//! manual/ad hoc load/store code ("compilers cannot easily generate the
//! optimized load/store code").

use crate::timing::median_time;
use pk::atomic::ScatterMode;
use serde::Serialize;
use vpic_core::accumulate::Accumulator;
use vpic_core::interp::load_interpolators;
use vpic_core::push::push_species;
use vpic_core::Deck;
use vsimd::Strategy;

/// One bar of Figure 4.
#[derive(Debug, Clone, Serialize)]
pub struct Fig4Row {
    /// CPU platform.
    pub platform: String,
    /// Vectorization strategy.
    pub strategy: String,
    /// Push runtime normalized to auto on the same platform.
    pub normalized_runtime: f64,
}

/// Host-measured push wall time per strategy, seconds.
pub fn host_push_times() -> [(Strategy, f64); 4] {
    // LPI-like state: build the deck, advance a few steps so fields and
    // particle distribution are non-trivial, then time pure pushes
    let mut sim = Deck::lpi(16, 8, 8, 16).build();
    sim.run(5);
    let grid = sim.grid.clone();
    let interps = load_interpolators(&sim.fields);
    let acc = Accumulator::new(grid.cells(), 1, ScatterMode::Atomic);
    let mut out = [
        (Strategy::Auto, 0.0),
        (Strategy::Guided, 0.0),
        (Strategy::Manual, 0.0),
        (Strategy::AdHoc, 0.0),
    ];
    for (strat, t) in &mut out {
        // clone the species so every strategy pushes identical particles
        let mut species = sim.species.clone();
        *t = median_time(1, 3, || {
            acc.reset();
            for s in &mut species {
                push_species(*strat, &grid, s, &interps, &acc);
            }
        });
    }
    out
}

/// Platform projection factors for the push kernel (paper §5.3).
pub fn push_isa_factor(platform: &str, strategy: Strategy) -> f64 {
    let base = match (platform, strategy) {
        // no SVE in Kokkos SIMD / the ad hoc library: ARM runs at NEON
        // width — "greater gains on A64FX and Grace are limited by the
        // lack of SVE/SVE2 support in manual/ad hoc strategies"
        ("A64FX", Strategy::Manual | Strategy::AdHoc) => 1.6,
        ("Grace", Strategy::Manual | Strategy::AdHoc) => 1.25,
        // guided is up to 83% faster on the MI300A CPU
        ("MI300A (CPU)", Strategy::Guided) => 0.62,
        _ => 1.0,
    };
    // HBM rewards the hand-scheduled load/store code of manual/ad hoc
    let hbm = matches!(platform, "SPR HBM" | "A64FX");
    let hbm_factor = if hbm && matches!(strategy, Strategy::Manual | Strategy::AdHoc) {
        0.9
    } else {
        1.0
    };
    base * hbm_factor
}

/// Produce and print Figure 4.
pub fn run() -> Vec<Fig4Row> {
    let times = host_push_times();
    let auto_t = times[0].1;
    println!("Figure 4 — particle push, normalized runtime (auto = 1.0)");
    println!(
        "{:<14} {:>8} {:>8} {:>8} {:>8}",
        "platform", "auto", "guided", "manual", "adhoc"
    );
    let mut rows = Vec::new();
    for platform in crate::fig3::cpu_names() {
        let mut vals = Vec::new();
        for (s, t) in times {
            let norm = (t / auto_t) * push_isa_factor(&platform, s);
            vals.push(norm);
            rows.push(Fig4Row {
                platform: platform.clone(),
                strategy: s.name().to_string(),
                normalized_runtime: norm,
            });
        }
        println!(
            "{:<14} {:>8.2} {:>8.2} {:>8.2} {:>8.2}",
            platform, vals[0], vals[1], vals[2], vals[3]
        );
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_times_are_positive_and_same_order() {
        let times = host_push_times();
        let auto_t = times[0].1;
        assert!(auto_t > 0.0);
        for (s, t) in times {
            let r = t / auto_t;
            assert!((0.2..5.0).contains(&r), "{s}: ratio {r}");
        }
    }

    #[test]
    fn mi300a_guided_gain_encoded() {
        // paper: guided up to 83% faster on MI300A
        assert!(push_isa_factor("MI300A (CPU)", Strategy::Guided) < 0.7);
        assert_eq!(push_isa_factor("MI300A (CPU)", Strategy::Auto), 1.0);
    }

    #[test]
    fn arm_manual_penalty_and_hbm_bonus() {
        assert!(push_isa_factor("A64FX", Strategy::AdHoc) > 1.0);
        assert!(push_isa_factor("SPR HBM", Strategy::Manual) < 1.0);
        assert_eq!(push_isa_factor("SPR DDR", Strategy::Manual), 1.0);
    }

    #[test]
    fn figure_shape_guided_beats_auto_on_x86() {
        let rows = run();
        assert_eq!(rows.len(), 6 * 4);
        // on MI300A the guided bar must show the paper's large gain
        let mi = rows
            .iter()
            .find(|r| r.platform == "MI300A (CPU)" && r.strategy == "guided")
            .unwrap();
        let mi_auto = rows
            .iter()
            .find(|r| r.platform == "MI300A (CPU)" && r.strategy == "auto")
            .unwrap();
        assert!(mi.normalized_runtime < mi_auto.normalized_runtime);
    }
}
