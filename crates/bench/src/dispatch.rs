//! Dispatch-overhead microbenchmark: the persistent worker pool behind
//! `pk::Threads` versus spawning OS threads on every dispatch, plus
//! pooled-vs-serial particle-push throughput.
//!
//! The pooled backend exists to take the thread create/join round-trip
//! off the kernel-launch critical path (the role of Kokkos' pinned
//! `Threads` backend); this target quantifies that overhead. The numbers
//! depend heavily on the host: with a single hardware thread every
//! multi-lane dispatch still pays scheduler round-trips and the pooled
//! push cannot beat serial — the dispatch-latency ratio is then the only
//! meaningful signal, and the push rows document the floor honestly.

use crate::timing::{black_box, measure_named, median_time_named, TimingStats};
use pk::atomic::ScatterMode;
use pk::{ExecSpace, Serial, Threads, WorkerPool};
use serde::Serialize;
use vpic_core::accumulate::Accumulator;
use vpic_core::push::push_species_on;
use vpic_core::Deck;
use vsimd::Strategy;

/// One empty-dispatch latency measurement.
#[derive(Serialize)]
pub struct DispatchRow {
    /// `pool` (persistent workers) or `spawn` (fresh scoped threads).
    pub backend: String,
    /// Lanes per dispatch (lane 0 is the caller in both backends).
    pub lanes: u64,
    /// Median latency of one empty dispatch, nanoseconds.
    pub empty_dispatch_ns: f64,
    /// Fastest rep's per-dispatch latency, nanoseconds.
    pub min_ns: f64,
    /// p95 rep's per-dispatch latency, nanoseconds.
    pub p95_ns: f64,
    /// Slowest rep's per-dispatch latency, nanoseconds.
    pub max_ns: f64,
}

/// One push-throughput measurement.
#[derive(Serialize)]
pub struct PushRow {
    /// Execution space description.
    pub space: String,
    /// Worker count of the space.
    pub workers: u64,
    /// Particles pushed per second (Auto strategy, LPI deck).
    pub particles_per_sec: f64,
}

/// The `dispatch` target's full result set.
#[derive(Serialize)]
pub struct Report {
    /// `std::thread::available_parallelism()` on the measuring host.
    pub hardware_threads: u64,
    /// Empty-dispatch latencies.
    pub dispatch: Vec<DispatchRow>,
    /// Push throughput by space.
    pub push: Vec<PushRow>,
    /// Spawn-per-dispatch latency over pooled latency at 4 lanes.
    pub pool_speedup_over_spawn_4_lanes: f64,
    /// Pooled 4-worker push rate over the serial push rate.
    pub push_speedup_threads4_over_serial: f64,
}

/// Per-dispatch latency distribution, nanoseconds.
struct DispatchNs {
    median: f64,
    min: f64,
    p95: f64,
    max: f64,
}

/// Scale per-rep seconds into per-dispatch nanoseconds.
fn per_dispatch_ns(stats: TimingStats, iters: u32) -> DispatchNs {
    let scale = 1e9 / iters as f64;
    DispatchNs {
        median: stats.median_s * scale,
        min: stats.min_s * scale,
        p95: stats.p95_s * scale,
        max: stats.max_s * scale,
    }
}

fn pool_dispatch_stats(lanes: usize) -> DispatchNs {
    let pool = WorkerPool::new(lanes);
    let iters = 200u32;
    let stats = measure_named("bench.dispatch.pool", 2, 10, || {
        for _ in 0..iters {
            pool.run(&|lane| {
                black_box(lane);
            });
        }
    });
    per_dispatch_ns(stats, iters)
}

#[cfg(test)]
fn pool_dispatch_ns(lanes: usize) -> f64 {
    pool_dispatch_stats(lanes).median
}

fn spawn_dispatch_stats(lanes: usize) -> DispatchNs {
    let iters = 50u32;
    let stats = measure_named("bench.dispatch.spawn", 1, 10, || {
        for _ in 0..iters {
            std::thread::scope(|s| {
                for _ in 1..lanes {
                    s.spawn(|| {});
                }
            });
        }
    });
    per_dispatch_ns(stats, iters)
}

fn push_rate<S: ExecSpace>(space: &S, workers: usize, mode: ScatterMode) -> f64 {
    let mut sim = Deck::lpi(16, 8, 8, 8).build();
    sim.run(3); // non-trivial fields and particle distribution
    let grid = sim.grid.clone();
    let interps = vpic_core::interp::load_interpolators(&sim.fields);
    let acc = Accumulator::new(grid.cells(), workers, mode);
    let n = sim.particle_count();
    let mut species = sim.species.clone();
    let t = median_time_named("bench.dispatch.push", 1, 7, || {
        acc.reset();
        for sp in &mut species {
            push_species_on(space, Strategy::Auto, &grid, sp, &interps, &acc);
        }
    });
    n as f64 / t
}

/// Run the full dispatch-overhead target.
pub fn run() -> Report {
    let hardware_threads =
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1) as u64;
    println!("dispatch overhead ({hardware_threads} hardware thread(s))");
    println!("{:<10} {:>6} {:>18}", "backend", "lanes", "dispatch latency");

    let mut dispatch = Vec::new();
    let mut pool4 = f64::NAN;
    let mut spawn4 = f64::NAN;
    for lanes in [1usize, 2, 4] {
        for (backend, ns) in [
            ("pool", pool_dispatch_stats(lanes)),
            ("spawn", spawn_dispatch_stats(lanes)),
        ] {
            println!(
                "{backend:<10} {lanes:>6} {:>18}  (min {} / p95 {} / max {})",
                crate::fmt_time(ns.median / 1e9),
                crate::fmt_time(ns.min / 1e9),
                crate::fmt_time(ns.p95 / 1e9),
                crate::fmt_time(ns.max / 1e9),
            );
            if lanes == 4 {
                if backend == "pool" {
                    pool4 = ns.median;
                } else {
                    spawn4 = ns.median;
                }
            }
            dispatch.push(DispatchRow {
                backend: backend.to_string(),
                lanes: lanes as u64,
                empty_dispatch_ns: ns.median,
                min_ns: ns.min,
                p95_ns: ns.p95,
                max_ns: ns.max,
            });
        }
    }
    let pool_speedup = spawn4 / pool4;
    println!("pool vs spawn at 4 lanes: {pool_speedup:.1}x lower latency");

    println!("\n{:<14} {:>8} {:>16}", "space", "workers", "push rate");
    let mut push = Vec::new();
    let serial_rate = push_rate(&Serial, 1, ScatterMode::Atomic);
    push.push(PushRow {
        space: "Serial".into(),
        workers: 1,
        particles_per_sec: serial_rate,
    });
    println!("{:<14} {:>8} {:>13.2} Mp/s", "Serial", 1, serial_rate / 1e6);
    let mut threads4_rate = f64::NAN;
    for workers in [2usize, 4] {
        let threads = Threads::new(workers);
        let rate = push_rate(&threads, workers, ScatterMode::Duplicated);
        if workers == 4 {
            threads4_rate = rate;
        }
        println!("{:<14} {:>8} {:>13.2} Mp/s", "Threads", workers, rate / 1e6);
        push.push(PushRow {
            space: "Threads".into(),
            workers: workers as u64,
            particles_per_sec: rate,
        });
    }
    let push_speedup = threads4_rate / serial_rate;
    println!("Threads(4) vs Serial push: {push_speedup:.2}x");

    Report {
        hardware_threads,
        dispatch,
        push,
        pool_speedup_over_spawn_4_lanes: pool_speedup,
        push_speedup_threads4_over_serial: push_speedup,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_lane_pool_dispatch_is_cheap() {
        // lane-0-only pools run inline: no parking, no hand-off
        let ns = pool_dispatch_ns(1);
        assert!((0.0..50_000.0).contains(&ns), "inline dispatch took {ns} ns");
    }

    #[test]
    fn enabled_profile_reports_nonzero_dispatch_totals() {
        let _g = crate::telemetry_test_lock();
        let dispatches0 = telemetry::counter("pk.pool.dispatches");
        telemetry::set_enabled(true);
        let ns = pool_dispatch_ns(2);
        telemetry::set_enabled(false);
        assert!(ns > 0.0);
        // 200 iters × (2 warmup + 10 reps) dispatches crossed the pool
        let delta = telemetry::counter("pk.pool.dispatches") - dispatches0;
        assert!(delta >= 200, "pool dispatch counter only moved by {delta}");
        let snap = telemetry::snapshot();
        let stats = telemetry::aggregate(&snap.events);
        for name in ["bench.dispatch.pool", "pk.pool.dispatch"] {
            let s = stats
                .iter()
                .find(|s| s.name == name)
                .unwrap_or_else(|| panic!("no {name} rows in summary"));
            assert!(s.total_ns > 0, "{name} total is zero");
            assert!(s.count > 0);
        }
    }

    #[test]
    fn report_shapes_are_consistent() {
        if crate::skip_heavy_in_debug() {
            return;
        }
        let r = run();
        assert_eq!(r.dispatch.len(), 6);
        for row in &r.dispatch {
            assert!(row.min_ns <= row.empty_dispatch_ns, "{}: min > median", row.backend);
            assert!(row.empty_dispatch_ns <= row.p95_ns, "{}: median > p95", row.backend);
            assert!(row.p95_ns <= row.max_ns, "{}: p95 > max", row.backend);
        }
        assert_eq!(r.push.len(), 3);
        assert!(r.pool_speedup_over_spawn_4_lanes > 0.0);
        assert!(r.push_speedup_threads4_over_serial > 0.0);
    }
}
