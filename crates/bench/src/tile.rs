//! Out-of-core tiled stepping: capacity and throughput (DESIGN §14).
//!
//! Steps a particle population through the tiled engine with a hot pool
//! budgeted far below the population's raw size — tiles live compressed
//! and disk-spilled except for the bounded pool — and reports the
//! capacity ratio (total raw particle bytes over the peak hot-pool raw
//! bytes), sustained pushes/second, the codec's compression ratio, and
//! two correctness gates: the energy ledger is bit-stable across
//! identical tiled runs, and the tiled run matches the untiled reference
//! bitwise. A short adaptive-tuner sweep over tile-size × compression
//! arms records which configuration the tuner commits.
//!
//! Environment: `TILE_STEPS` (default 20), `TILE_GRID` (default 12),
//! `TILE_PPC` (default 8) scale the measurement.

use pk::atomic::ScatterMode;
use serde::Serialize;
use tuner::{Config, Tuner};
use vpic_core::{Deck, Simulation, TilePolicy, TuneDriver};
use vsimd::Strategy;

/// The `tile` target's result set.
#[derive(Serialize)]
pub struct Report {
    /// Deck the measurements ran on.
    pub deck: String,
    /// Particles stepped.
    pub particles: u64,
    /// Steps measured.
    pub steps: u64,
    /// Tile size (grid cells per tile).
    pub tile_cells: usize,
    /// Cell-range tiles per species.
    pub tile_count: usize,
    /// Hot-pool slots.
    pub max_hot: usize,
    /// Total raw (uncompressed, unspilled) particle bytes, MB.
    pub total_raw_mb: f64,
    /// Peak raw bytes resident in the hot pool, MB.
    pub peak_hot_raw_mb: f64,
    /// `total_raw / peak_hot_raw` — how many times over the in-RAM
    /// budget the stepped population is (the acceptance gate is ≥10×).
    pub capacity_ratio: f64,
    /// Codec compression ratio (raw bytes in / encoded bytes out).
    pub compression_ratio: f64,
    /// Bytes written to the spill store, MB.
    pub spilled_mb: f64,
    /// Tile evictions over the run.
    pub evictions: u64,
    /// Sustained particle pushes per second through the tiled path.
    pub pushes_per_sec: f64,
    /// Energy ledger bit-identical across two identical tiled runs.
    pub energy_bit_stable: bool,
    /// Tiled run bit-identical to the untiled reference.
    pub tiled_matches_untiled: bool,
    /// Label of the configuration the tuner committed when sweeping
    /// tile-size × compression arms (untiled base included).
    pub tuner_chosen: String,
}

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

fn policy(tile_cells: usize, spill: &std::path::Path) -> TilePolicy {
    let mut p = TilePolicy::new(tile_cells);
    p.max_hot = 2;
    p.compress = true;
    p.spill_dir = Some(spill.to_path_buf());
    p
}

/// One tiled run to completion: returns the sim (untiled again, for the
/// ledger) and the engine's lifetime stats.
fn tiled_run(
    deck: &Deck,
    tile_cells: usize,
    spill: &std::path::Path,
    steps: usize,
) -> (Simulation, vpic_core::TileStats, f64) {
    let mut sim = deck.build();
    sim.sort_order = None;
    sim.enable_tiling(policy(tile_cells, spill));
    let t0 = std::time::Instant::now();
    sim.run(steps);
    let wall = t0.elapsed().as_secs_f64();
    let stats = sim.tile_engine().expect("engine").stats();
    sim.disable_tiling();
    (sim, stats, wall)
}

fn energies_bits(sim: &Simulation) -> Vec<u64> {
    let e = sim.energies();
    let mut bits = vec![e.field_e.to_bits(), e.field_b.to_bits()];
    bits.extend(e.kinetic.iter().map(|k| k.to_bits()));
    bits
}

/// Run the out-of-core capacity/throughput measurement and print the
/// summary table.
pub fn run() -> Report {
    let steps = env_usize("TILE_STEPS", 20);
    let grid = env_usize("TILE_GRID", 12);
    let ppc = env_usize("TILE_PPC", 8);
    let deck = Deck::weibel(grid, grid, grid, ppc, 0.3);
    let cells = grid * grid * grid;
    // tile the grid so the 2-slot hot pool holds well under a tenth of
    // the population: ≥ 32 tiles → capacity ratio ≥ 16 at uniform
    // occupancy
    let tile_cells = (cells / 32).max(1);

    let dir = std::env::temp_dir().join(format!("vpic2-tile-bench-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("spill dir");

    // measured tiled run + an identical twin for ledger bit-stability
    let (sim_a, stats, wall) = tiled_run(&deck, tile_cells, &dir, steps);
    let (sim_b, _, _) = tiled_run(&deck, tile_cells, &dir, steps);
    let energy_bit_stable = energies_bits(&sim_a) == energies_bits(&sim_b);

    // untiled sort-free reference: the ledger must agree bitwise
    let mut reference = deck.build();
    reference.sort_order = None;
    reference.run(steps);
    let tiled_matches_untiled = energies_bits(&sim_a) == energies_bits(&reference)
        && sim_a.species.iter().zip(&reference.species).all(|(x, y)| {
            x.cell == y.cell
                && x.ux.iter().zip(&y.ux).all(|(a, b)| a.to_bits() == b.to_bits())
        });

    let particles = sim_a.particle_count() as u64;
    let total_raw = particles * ptile_raw_bytes();
    let capacity_ratio = if stats.peak_hot_raw_bytes > 0 {
        total_raw as f64 / stats.peak_hot_raw_bytes as f64
    } else {
        0.0
    };
    let compression_ratio = if stats.encoded_bytes > 0 {
        stats.raw_bytes_encoded as f64 / stats.encoded_bytes as f64
    } else {
        0.0
    };

    // short adaptive sweep: untiled base + tile-size × compression arms
    let tuner_chosen = {
        let mut sim = deck.build();
        sim.sort_order = None;
        sim.set_tile_defaults(policy(tile_cells, &dir));
        let base = Config::unsorted(Strategy::Auto, ScatterMode::Atomic);
        let arms = tuner::tile_arms(&[base], &[tile_cells / 2, tile_cells, tile_cells * 2]);
        let n_arms = arms.len();
        let epoch = env_usize("TILE_EPOCH_STEPS", 3);
        sim.set_tuner(TuneDriver::new(Tuner::new(arms, epoch)));
        sim.run(epoch * (n_arms + 2));
        let driver = sim.take_tuner().expect("driver armed");
        let chosen = driver
            .tuner()
            .committed()
            .copied()
            .unwrap_or(*driver.tuner().current());
        sim.disable_tiling();
        chosen.label()
    };
    std::fs::remove_dir_all(&dir).ok();

    let report = Report {
        deck: format!("weibel {grid}x{grid}x{grid} ppc={ppc}"),
        particles,
        steps: steps as u64,
        tile_cells,
        tile_count: cells.div_ceil(tile_cells),
        max_hot: 2,
        total_raw_mb: total_raw as f64 / 1e6,
        peak_hot_raw_mb: stats.peak_hot_raw_bytes as f64 / 1e6,
        capacity_ratio,
        compression_ratio,
        spilled_mb: stats.spilled_bytes as f64 / 1e6,
        evictions: stats.evictions,
        pushes_per_sec: if wall > 0.0 {
            particles as f64 * steps as f64 / wall
        } else {
            0.0
        },
        energy_bit_stable,
        tiled_matches_untiled,
        tuner_chosen,
    };

    println!("out-of-core tiled stepping — {} ({} particles)", report.deck, report.particles);
    println!("  tiles               {:>10}  ({} cells each)", report.tile_count, report.tile_cells);
    println!("  population          {:>10.2} MB raw", report.total_raw_mb);
    println!("  hot-pool peak       {:>10.2} MB raw", report.peak_hot_raw_mb);
    println!("  capacity ratio      {:>10.1}x  (gate: >= 10x)", report.capacity_ratio);
    println!("  compression         {:>10.2}x", report.compression_ratio);
    println!("  spilled             {:>10.2} MB  ({} evictions)", report.spilled_mb, report.evictions);
    println!("  throughput          {:>10.0} pushes/s", report.pushes_per_sec);
    println!("  ledger bit-stable:  {}", report.energy_bit_stable);
    println!("  matches untiled:    {}", report.tiled_matches_untiled);
    println!("  tuner committed:    {}", report.tuner_chosen);
    assert!(report.capacity_ratio >= 10.0, "population must exceed 10x the hot budget");
    assert!(report.energy_bit_stable, "tiled ledger must be bit-stable");
    assert!(report.tiled_matches_untiled, "tiled must match untiled bitwise");
    report
}

/// Raw particle-record bytes in the tile codec's uncompressed layout.
fn ptile_raw_bytes() -> u64 {
    ptile::RAW_PARTICLE_BYTES as u64
}
