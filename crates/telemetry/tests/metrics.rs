//! Property tests for the streaming-metrics layer: merge is associative,
//! percentiles are a pure function of the recorded multiset (any thread
//! interleaving, any stripe assignment), and the exporters stay
//! byte-identical for fixed inputs when fed through the real pipeline.
//!
//! Lives in its own integration binary because the concurrency property
//! flips the global enabled flag.

use proptest::prelude::*;
use std::sync::{Mutex, MutexGuard};

/// Serialize tests that touch the process-global registry/flag.
fn global_lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// Build a `HistData` from samples without going through the registry.
fn hist_of(samples: &[u64]) -> telemetry::HistData {
    let mut h = telemetry::HistData::default();
    for &v in samples {
        h.count += 1;
        h.sum += v;
        *h.buckets.entry(telemetry::bucket_index(v) as u32).or_insert(0) += 1;
    }
    h
}

proptest! {
    /// (a ⊕ b) ⊕ c == a ⊕ (b ⊕ c): bucket counts are commutative sums,
    /// so merge order can never change a reported percentile.
    #[test]
    fn merge_is_associative(
        a in prop::collection::vec(0u64..1_000_000, 0..40),
        b in prop::collection::vec(0u64..1_000_000, 0..40),
        c in prop::collection::vec(0u64..1_000_000, 0..40),
    ) {
        let (ha, hb, hc) = (hist_of(&a), hist_of(&b), hist_of(&c));
        let mut left = ha.clone();
        left.merge(&hb);
        left.merge(&hc);
        let mut bc = hb.clone();
        bc.merge(&hc);
        let mut right = ha.clone();
        right.merge(&bc);
        prop_assert_eq!(&left, &right);
        // and commutative
        let mut ba = hb.clone();
        ba.merge(&ha);
        let mut ab = ha.clone();
        ab.merge(&hb);
        prop_assert_eq!(&ab, &ba);
    }

    /// Percentiles depend only on the sample multiset: shuffling the
    /// recording order (any interleaving a scheduler could produce)
    /// yields an identical snapshot.
    #[test]
    fn percentiles_are_order_independent(
        samples in prop::collection::vec(0u64..10_000_000, 1..120),
        seed in 0u64..1_000,
    ) {
        let forward = hist_of(&samples);
        // deterministic shuffle driven by the generated seed
        let mut shuffled = samples.clone();
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).max(1);
        for i in (1..shuffled.len()).rev() {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            shuffled.swap(i, (state as usize) % (i + 1));
        }
        let backward = hist_of(&shuffled);
        prop_assert_eq!(&forward, &backward);
        for p in [0.0, 50.0, 95.0, 99.0, 100.0] {
            prop_assert_eq!(forward.percentile(p), backward.percentile(p));
        }
    }

    /// Every percentile reads back within one bucket (≤12.5% relative
    /// error) of a true sample, and the floors are monotone in p.
    #[test]
    fn percentile_stays_within_quantization(
        samples in prop::collection::vec(1u64..1_000_000_000, 1..80),
    ) {
        let h = hist_of(&samples);
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        let mut prev = 0u64;
        for p in [10.0, 50.0, 90.0, 95.0, 99.0] {
            let got = h.percentile(p);
            prop_assert!(got >= prev, "percentile not monotone at p{p}");
            prev = got;
            // nearest-rank true value for the same p
            let idx = (((p / 100.0) * sorted.len() as f64).ceil() as usize)
                .clamp(1, sorted.len()) - 1;
            let truth = sorted[idx];
            // reported floor never exceeds the truth, and the truth sits
            // inside the reported bucket
            prop_assert!(got <= truth, "floor {got} above true p{p} {truth}");
            let bucket_end = telemetry::bucket_floor(
                telemetry::bucket_index(truth) + 1
            );
            prop_assert!(truth < bucket_end);
        }
    }
}

/// The concurrency property: a fixed multiset recorded from many threads
/// (landing on different stripes) snapshots identically to the same
/// multiset recorded serially — determinism does not depend on the
/// scheduler.
#[test]
fn concurrent_recording_matches_serial() {
    let _g = global_lock();
    telemetry::set_enabled(true);
    let h = telemetry::histogram("test.metrics.concurrent");
    let serial = telemetry::histogram("test.metrics.serial");
    let samples: Vec<u64> = (0..4096u64).map(|i| i.wrapping_mul(2654435761) % 1_000_000).collect();

    std::thread::scope(|s| {
        for chunk in samples.chunks(512) {
            s.spawn(move || {
                for &v in chunk {
                    h.record(v);
                }
            });
        }
    });
    for &v in &samples {
        serial.record(v);
    }
    telemetry::set_enabled(false);

    let concurrent_snap = h.snapshot();
    let serial_snap = serial.snapshot();
    assert_eq!(concurrent_snap, serial_snap, "stripe merge must erase the interleaving");
    assert_eq!(concurrent_snap.count, 4096);
    for p in [50.0, 95.0, 99.0] {
        assert_eq!(concurrent_snap.percentile(p), serial_snap.percentile(p));
    }
}

/// End-to-end determinism: fixed values through the real macro pipeline,
/// exported twice, must be byte-identical.
#[test]
fn exporters_are_byte_identical_through_the_pipeline() {
    let _g = global_lock();
    telemetry::set_enabled(true);
    for v in [3u64, 14, 159, 2653, 58979] {
        telemetry::hist!("test.metrics.pipeline", v);
        telemetry::gauge_set!("test.metrics.pipeline.gauge", v as i64);
    }
    telemetry::set_enabled(false);
    let snap = telemetry::snapshot();
    assert_eq!(telemetry::summary_json(&snap), telemetry::summary_json(&snap));
    assert_eq!(telemetry::prometheus_text(&snap), telemetry::prometheus_text(&snap));
    assert_eq!(
        telemetry::format_metrics(&snap.metrics),
        telemetry::format_metrics(&snap.metrics)
    );
    let prom = telemetry::prometheus_text(&snap);
    assert!(prom.contains("test_metrics_pipeline_count 5"));
    assert!(prom.contains("# TYPE test_metrics_pipeline_gauge gauge"));
}
