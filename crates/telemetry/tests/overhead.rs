//! The zero-cost-off guard: with profiling disabled, an instrumented
//! tight loop (1e6 empty spans) must cost < 5 ns/iteration over the
//! uninstrumented baseline. Lives in its own integration-test binary so
//! no concurrently-running test can flip the global flag mid-measurement.

use std::hint::black_box;
use std::sync::{Mutex, MutexGuard};
use std::time::Instant;

const ITERS: u64 = 1_000_000;
const TRIALS: usize = 7;

/// Both tests flip the global flag; serialize them so the enabled-path
/// test cannot turn profiling on mid-measurement of the disabled path.
fn flag_lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// Minimum-of-trials wall time for `f`, in nanoseconds.
fn best_of(mut f: impl FnMut()) -> f64 {
    (0..TRIALS)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_nanos() as f64
        })
        .fold(f64::INFINITY, f64::min)
}

#[test]
fn disabled_span_overhead_under_5ns_per_iter() {
    let _g = flag_lock();
    telemetry::set_enabled(false);
    assert!(!telemetry::enabled());

    let baseline = best_of(|| {
        for i in 0..ITERS {
            black_box(i);
        }
    });
    let instrumented = best_of(|| {
        for i in 0..ITERS {
            let _s = telemetry::span("overhead.guard");
            black_box(i);
        }
    });

    let per_iter = (instrumented - baseline).max(0.0) / ITERS as f64;
    // The 5 ns contract is about the optimized no-op path; unoptimized
    // builds pay for un-inlined plumbing, so debug only smoke-checks a
    // loose bound (CI runs this test under --release for the real budget).
    let budget = if cfg!(debug_assertions) { 100.0 } else { 5.0 };
    assert!(
        per_iter < budget,
        "disabled span path costs {per_iter:.2} ns/iter (budget: {budget} ns); \
         baseline {baseline:.0} ns, instrumented {instrumented:.0} ns for {ITERS} iters"
    );

    // and nothing may have been recorded
    let snap = telemetry::snapshot();
    assert!(
        !snap.events.iter().any(|e| e.name == "overhead.guard"),
        "disabled spans must not record events"
    );
}

#[test]
fn disabled_hist_overhead_under_5ns_per_iter() {
    let _g = flag_lock();
    telemetry::set_enabled(false);

    let baseline = best_of(|| {
        for i in 0..ITERS {
            black_box(i);
        }
    });
    let instrumented = best_of(|| {
        for i in 0..ITERS {
            telemetry::hist!("overhead.hist.disabled", i);
            black_box(i);
        }
    });

    let per_iter = (instrumented - baseline).max(0.0) / ITERS as f64;
    // same contract as disabled spans: the macro's only cost is one
    // relaxed atomic load of the gate
    let budget = if cfg!(debug_assertions) { 100.0 } else { 5.0 };
    assert!(
        per_iter < budget,
        "disabled hist! path costs {per_iter:.2} ns/iter (budget: {budget} ns); \
         baseline {baseline:.0} ns, instrumented {instrumented:.0} ns for {ITERS} iters"
    );
    let snap = telemetry::snapshot();
    assert!(
        !snap.metrics.hists.contains_key("overhead.hist.disabled"),
        "disabled hist! must not register or record"
    );
}

#[test]
fn enabled_hist_overhead_under_50ns_per_iter() {
    let _g = flag_lock();
    telemetry::set_enabled(true);

    let baseline = best_of(|| {
        for i in 0..ITERS {
            black_box(i);
        }
    });
    let instrumented = best_of(|| {
        for i in 0..ITERS {
            telemetry::hist!("overhead.hist.enabled", i);
            black_box(i);
        }
    });
    telemetry::set_enabled(false);

    let per_iter = (instrumented - baseline).max(0.0) / ITERS as f64;
    // enabled budget: bucket_index + three relaxed fetch_adds on a
    // thread-local stripe
    let budget = if cfg!(debug_assertions) { 500.0 } else { 50.0 };
    assert!(
        per_iter < budget,
        "enabled hist! path costs {per_iter:.2} ns/iter (budget: {budget} ns); \
         baseline {baseline:.0} ns, instrumented {instrumented:.0} ns for {ITERS} iters"
    );
    let snap = telemetry::snapshot();
    let h = snap.metrics.hists.get("overhead.hist.enabled").expect("histogram registered");
    assert!(h.count >= ITERS * TRIALS as u64, "all samples recorded, saw {}", h.count);
}

#[test]
fn enabled_spans_report_plausible_nonzero_totals() {
    let _g = flag_lock();
    telemetry::set_enabled(true);
    for _ in 0..100 {
        let _s = telemetry::span("overhead.enabled").arg("payload", 1);
        black_box(0u64);
    }
    telemetry::set_enabled(false);
    let snap = telemetry::snapshot();
    let stats = telemetry::aggregate(&snap.events);
    let s = stats
        .iter()
        .find(|s| s.name == "overhead.enabled")
        .expect("enabled spans must appear in the summary");
    assert!(s.count >= 100);
    assert!(s.total_ns > 0, "summary must report non-zero totals");
    assert!(s.max_ns >= s.p95_ns && s.p95_ns >= s.p50_ns);
}
