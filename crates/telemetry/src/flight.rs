//! Flight recorder: a bounded ring of the most recent span events per
//! shard, rendered into a deterministic post-mortem report when a run
//! dies — a worker-lane panic surfacing as `StepError::WorkerPanic`, or a
//! checkpoint restore that fails validation — so a dead run leaves
//! evidence instead of nothing.
//!
//! The ring rides on the span pipeline: it fills only while profiling is
//! enabled (the same one-relaxed-load gate as everything else) and keeps
//! recording after the main event buffers hit their cap, so the *last*
//! moments before a crash survive even in a soak run that dropped
//! millions of earlier events.
//!
//! [`render_flight_report`] is a pure function of its snapshot —
//! byte-identical output for fixed input, same discipline as the other
//! exporters.

use crate::registry::FlightSnapshot;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// Render a [`FlightSnapshot`] as the post-mortem report text. Pure:
/// timestamps and counts are carried in, never sampled.
pub fn render_flight_report(context: &str, snap: &FlightSnapshot) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "== vpic2 flight recorder ==");
    let _ = writeln!(out, "context: {context}");
    let _ = writeln!(out, "ring_events: {}", snap.events.len());
    let _ = writeln!(out, "dropped_events: {}", snap.dropped_events);
    if snap.events.is_empty() {
        let _ = writeln!(
            out,
            "(ring empty — enable profiling with PK_PROFILE=1 or telemetry::set_enabled \
             to capture evidence)"
        );
    }
    let _ = writeln!(out, "\n-- counters --");
    for (k, v) in &snap.counters {
        let _ = writeln!(out, "{k} = {v}");
    }
    let _ = writeln!(out, "\n-- recent events (oldest first) --");
    let _ = writeln!(out, "{:>14} {:>12} {:>5}  name / args", "start_ns", "dur_ns", "track");
    for e in &snap.events {
        let _ = write!(out, "{:>14} {:>12} {:>5}  {}", e.start_ns, e.dur_ns, e.track, e.name);
        for (k, v) in &e.args {
            let _ = write!(out, " {k}={v}");
        }
        out.push('\n');
    }
    out
}

/// The current flight report: recent-event rings merged, counters, drop
/// totals, rendered with `context` as the headline.
pub fn flight_report(context: &str) -> String {
    render_flight_report(context, &crate::registry::flight_snapshot())
}

/// Write the flight report to `$PK_FLIGHT_DIR/flight-report.txt`
/// (defaulting to the working directory) and return the path. Failures
/// are reported on stderr, never panicked — this runs on paths that are
/// already handling an error.
pub fn dump_flight(context: &str) -> Option<PathBuf> {
    let dir = std::env::var("PK_FLIGHT_DIR").unwrap_or_else(|_| ".".into());
    let path = Path::new(&dir).join("flight-report.txt");
    let write = std::fs::create_dir_all(&dir).and_then(|()| {
        std::fs::write(&path, flight_report(context))
    });
    match write {
        Ok(()) => {
            eprintln!("flight recorder: wrote {}", path.display());
            Some(path)
        }
        Err(e) => {
            eprintln!("flight recorder: failed to write {}: {e}", path.display());
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Event;
    use std::collections::BTreeMap;

    fn synthetic() -> FlightSnapshot {
        FlightSnapshot {
            events: vec![
                Event {
                    name: "sim.step".into(),
                    cat: "span",
                    track: 0,
                    start_ns: 1_000,
                    dur_ns: 9_500,
                    args: vec![("step", "7".into())],
                },
                Event {
                    name: "sim.push::lane".into(),
                    cat: "lane",
                    track: 2,
                    start_ns: 1_310,
                    dur_ns: 6_400,
                    args: vec![],
                },
            ],
            counters: BTreeMap::from([
                ("pk.pool.worker_panics".to_string(), 1u64),
                ("sim.particles_pushed".to_string(), 4096u64),
            ]),
            dropped_events: 3,
        }
    }

    #[test]
    fn report_is_byte_deterministic() {
        let snap = synthetic();
        let a = render_flight_report("test: worker panic", &snap);
        let b = render_flight_report("test: worker panic", &snap);
        assert_eq!(a, b);
    }

    #[test]
    fn report_carries_context_events_and_counters() {
        let out = render_flight_report("sim.try_step: worker panic on 2 lane(s)", &synthetic());
        assert!(out.contains("context: sim.try_step: worker panic on 2 lane(s)"));
        assert!(out.contains("dropped_events: 3"));
        assert!(out.contains("pk.pool.worker_panics = 1"));
        assert!(out.contains("sim.step step=7"));
        assert!(out.contains("sim.push::lane"));
    }

    #[test]
    fn empty_ring_reports_the_gate_hint() {
        let snap = FlightSnapshot::default();
        let out = render_flight_report("nothing recorded", &snap);
        assert!(out.contains("ring_events: 0"));
        assert!(out.contains("PK_PROFILE"));
    }

    #[test]
    fn dump_writes_under_flight_dir() {
        let dir = std::env::temp_dir().join("vpic2-flight-test");
        std::env::set_var("PK_FLIGHT_DIR", &dir);
        let path = dump_flight("unit test dump").expect("dump must succeed");
        std::env::remove_var("PK_FLIGHT_DIR");
        let body = std::fs::read_to_string(&path).unwrap();
        assert!(body.contains("context: unit test dump"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
