//! # telemetry — kernel-level tracing and counters
//!
//! The observability layer for the VPIC 2.0 reproduction, playing the role
//! of Kokkos' profiling hooks: every kernel dispatch, simulation phase,
//! sort pass, and virtual exchange can open a named [`span`] or bump a
//! [`count`]er, and the resulting event stream exports as
//!
//! * a human-readable end-of-run summary table ([`format_summary`]),
//! * machine-readable JSON ([`summary_json`]),
//! * a Prometheus-style text page ([`prometheus_text`]), and
//! * a Chrome `trace_event` file ([`chrome_trace`]) loadable in
//!   `chrome://tracing` or <https://ui.perfetto.dev>, with one track per
//!   worker lane, grouped per virtual rank.
//!
//! Beyond spans and counters, the crate carries *streaming metrics* —
//! lock-free log-bucketed [`Histogram`]s and [`Gauge`]s (see
//! [`hist!`]/[`gauge_set!`] and the `metrics` module docs) — and a
//! *flight recorder*: a bounded ring of the most recent span events that
//! [`dump_flight`] renders into a deterministic post-mortem report when a
//! run dies (worker panic, failed restore).
//!
//! ## The zero-cost-off contract
//!
//! Profiling is off by default. [`enabled`] is a single relaxed atomic
//! load; a [`span`] created while disabled is a `None` that allocates
//! nothing, records nothing, and formats none of its arguments. The guard
//! test in `tests/overhead.rs` holds the disabled span path to under
//! 5 ns/iteration over an empty loop. Enable with the `PK_PROFILE`
//! environment variable (any value but `""`/`0`) or [`set_enabled`].
//!
//! ## Clocks and determinism
//!
//! All timestamps come from one process-wide monotonic clock ([`now_ns`]:
//! nanoseconds since the first telemetry call). The exporters are pure
//! functions of their input events — timestamps are carried in, never
//! sampled — so a fixed synthetic event sequence renders byte-identically
//! every time (tested in `export.rs`).
//!
//! ## Spans, tracks, and lanes
//!
//! Spans are RAII guards: they must be dropped in LIFO order on the thread
//! that opened them (the natural shape of scoped `let _s = span(..)`
//! usage). Each event lands on a *track*: worker-pool lanes claim tracks
//! equal to their lane index via [`set_lane`], other threads get fresh
//! track ids on first use — so in the single-driver binary, track 0 is the
//! caller/lane-0 thread and tracks 1..N are pool workers.

mod export;
mod flight;
mod metrics;
mod registry;

pub use export::{
    aggregate, chrome_trace, format_metrics, format_summary, prometheus_text, summary_json,
    SpanStat,
};
pub use flight::{dump_flight, flight_report, render_flight_report};
pub use metrics::{
    bucket_floor, bucket_index, gauge, histogram, metrics_snapshot, record_hist, Gauge, GaugeData,
    HistData, Histogram, MetricsSnapshot, HIST_BUCKETS,
};
pub use registry::{
    counter, counters, flight_snapshot, reset, restore_counter_baselines, snapshot, window_mark,
    window_since, Event, FlightSnapshot, Snapshot, SpanWindow, WindowMark, WindowTotals,
};

use std::borrow::Cow;
use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicU32, AtomicU8, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

// ---------------------------------------------------------------- enabled

const UNINIT: u8 = 0;
const OFF: u8 = 1;
const ON: u8 = 2;

static STATE: AtomicU8 = AtomicU8::new(UNINIT);

/// True when profiling is active. One relaxed atomic load on the fast
/// path; the first call reads the `PK_PROFILE` environment variable.
#[inline]
pub fn enabled() -> bool {
    match STATE.load(Ordering::Relaxed) {
        ON => true,
        OFF => false,
        _ => init_from_env(),
    }
}

#[cold]
fn init_from_env() -> bool {
    let on = std::env::var("PK_PROFILE").map(|v| !v.is_empty() && v != "0").unwrap_or(false);
    // lose the race gracefully: an explicit set_enabled() wins
    let _ = STATE.compare_exchange(
        UNINIT,
        if on { ON } else { OFF },
        Ordering::Relaxed,
        Ordering::Relaxed,
    );
    STATE.load(Ordering::Relaxed) == ON
}

/// Turn profiling on or off at run time (overrides `PK_PROFILE`).
pub fn set_enabled(on: bool) {
    STATE.store(if on { ON } else { OFF }, Ordering::Relaxed);
}

// ------------------------------------------------------------------ clock

static EPOCH: OnceLock<Instant> = OnceLock::new();

/// Nanoseconds since the process-wide telemetry epoch (the first call).
/// Monotonic; the single clock every span, bench timer, and export shares.
#[inline]
pub fn now_ns() -> u64 {
    EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

// ----------------------------------------------------------------- tracks

const UNASSIGNED_TRACK: u32 = u32::MAX;

thread_local! {
    static TRACK: Cell<u32> = const { Cell::new(UNASSIGNED_TRACK) };
}

static NEXT_TRACK: AtomicU32 = AtomicU32::new(0);

/// Pin this thread's events to the track of worker lane `lane`. Called by
/// the `pk` worker pool so each lane renders as its own row in the trace.
pub fn set_lane(lane: usize) {
    TRACK.with(|t| t.set(lane as u32));
}

/// The track id this thread's events land on (assigning a fresh one on
/// first use). The first thread to record — the driver — gets track 0,
/// which is also pool lane 0 (the dispatching caller).
pub fn current_track() -> u32 {
    TRACK.with(|t| {
        let v = t.get();
        if v != UNASSIGNED_TRACK {
            return v;
        }
        let id = NEXT_TRACK.fetch_add(1, Ordering::Relaxed);
        t.set(id);
        id
    })
}

// ------------------------------------------------------------ label stack

thread_local! {
    static NAME_STACK: RefCell<Vec<String>> = const { RefCell::new(Vec::new()) };
}

/// The innermost open span's name on this thread, if profiling is on.
/// The worker pool uses this to label per-lane busy time with the kernel
/// being dispatched.
pub fn current_label() -> Option<String> {
    if !enabled() {
        return None;
    }
    NAME_STACK.with(|s| s.borrow().last().cloned())
}

// ------------------------------------------------------------------ spans

struct ActiveSpan {
    name: Cow<'static, str>,
    cat: &'static str,
    /// Explicit track override (worker-lane spans); `None` = this thread's.
    track: Option<u32>,
    start_ns: u64,
    args: Vec<(&'static str, String)>,
    /// Also feed the duration into the same-named streaming histogram on
    /// drop ([`hspan`]).
    hist: bool,
}

/// An RAII span guard: records one duration event on drop. Disabled spans
/// are a no-op `None`.
pub struct Span(Option<Box<ActiveSpan>>);

impl Span {
    /// A span that records nothing (the disabled-path value).
    #[inline]
    pub fn disabled() -> Span {
        Span(None)
    }

    /// Attach a key/value argument (shown in the trace viewer). No-op —
    /// the value is not even formatted — when the span is disabled.
    pub fn arg(mut self, key: &'static str, value: impl std::fmt::Display) -> Self {
        if let Some(a) = self.0.as_mut() {
            a.args.push((key, value.to_string()));
        }
        self
    }

    /// True when this span is live (profiling was on at creation).
    pub fn is_recording(&self) -> bool {
        self.0.is_some()
    }
}

/// Open a named span. Returns a no-op guard when profiling is off.
#[inline]
pub fn span(name: &'static str) -> Span {
    if !enabled() {
        Span(None)
    } else {
        begin(Cow::Borrowed(name), "span", None)
    }
}

/// [`span`] with a runtime-built name (allocates only when enabled).
#[inline]
pub fn span_dyn(name: impl Into<Cow<'static, str>>) -> Span {
    if !enabled() {
        Span(None)
    } else {
        begin(name.into(), "span", None)
    }
}

/// A span whose duration also streams into the same-named histogram on
/// drop — the phase-level instrumentation primitive: one call site yields
/// both the trace row *and* the p50/p95/p99 distribution that the bench
/// suite and Prometheus exporter read. Same disabled-path contract as
/// [`span`] (one relaxed load, `None`, records nothing).
#[inline]
pub fn hspan(name: &'static str) -> Span {
    if !enabled() {
        Span(None)
    } else {
        let mut s = begin(Cow::Borrowed(name), "span", None);
        if let Some(a) = s.0.as_mut() {
            a.hist = true;
        }
        s
    }
}

/// A span attributed to virtual rank `rank`: per-rank phase timing in a
/// multi-rank lockstep driver (`cluster::multirank`). Equivalent to
/// [`span`] with a `rank` argument, spelled as a helper so every rank
/// phase is tagged the same way and profiles can group by it.
#[inline]
pub fn rank_span(name: &'static str, rank: usize) -> Span {
    if !enabled() {
        Span(None)
    } else {
        begin(Cow::Borrowed(name), "span", None).arg("rank", rank)
    }
}

/// A span pinned to worker lane `lane`'s track: per-lane busy time inside
/// a pool dispatch. Not pushed on the label stack (it *is* the leaf).
#[inline]
pub fn lane_span(name: impl Into<Cow<'static, str>>, lane: usize) -> Span {
    if !enabled() {
        return Span(None);
    }
    Span(Some(Box::new(ActiveSpan {
        name: name.into(),
        cat: "lane",
        track: Some(lane as u32),
        start_ns: now_ns(),
        args: Vec::new(),
        hist: false,
    })))
}

#[cold]
fn begin(name: Cow<'static, str>, cat: &'static str, track: Option<u32>) -> Span {
    NAME_STACK.with(|s| s.borrow_mut().push(name.to_string()));
    Span(Some(Box::new(ActiveSpan {
        name,
        cat,
        track,
        start_ns: now_ns(),
        args: Vec::new(),
        hist: false,
    })))
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(a) = self.0.take() {
            let end = now_ns();
            if a.track.is_none() {
                NAME_STACK.with(|s| {
                    s.borrow_mut().pop();
                });
            }
            let dur_ns = end.saturating_sub(a.start_ns);
            if a.hist {
                metrics::record_named(&a.name, dur_ns);
            }
            registry::record(Event {
                name: a.name.into_owned(),
                cat: a.cat,
                track: a.track.unwrap_or_else(current_track),
                start_ns: a.start_ns,
                dur_ns,
                args: a.args,
            });
        }
    }
}

// --------------------------------------------------------------- counters

/// Add `n` to the named counter. No-op when profiling is off.
#[inline]
pub fn count(name: &'static str, n: u64) {
    if enabled() {
        registry::add_counter(name, n);
    }
}

// ----------------------------------------------------------------- timing

/// Run `f`, returning its result and elapsed nanoseconds on the telemetry
/// clock. Always measures (bench harnesses need the number either way);
/// additionally records a span when profiling is on — so figure timings
/// and sim-internal spans agree on one clock by construction.
pub fn timed<R>(name: &'static str, f: impl FnOnce() -> R) -> (R, u64) {
    let _s = span(name);
    let t0 = now_ns();
    let r = f();
    (r, now_ns().saturating_sub(t0))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serializes tests that flip the global enabled flag.
    fn flag_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disabled_spans_record_nothing() {
        let _g = flag_lock();
        let was = enabled();
        set_enabled(false);
        let before = snapshot().events.len();
        for _ in 0..100 {
            let _s = span("test.disabled").arg("k", 1);
        }
        count("test.disabled.counter", 5);
        let after = snapshot();
        set_enabled(was);
        assert_eq!(after.events.len(), before);
        assert!(!after.counters.contains_key("test.disabled.counter"));
    }

    #[test]
    fn enabled_spans_and_counters_land_in_snapshot() {
        let _g = flag_lock();
        let was = enabled();
        set_enabled(true);
        {
            let _outer = span("test.outer").arg("n", 42);
            assert_eq!(current_label().as_deref(), Some("test.outer"));
            let _inner = span("test.inner");
            assert_eq!(current_label().as_deref(), Some("test.inner"));
        }
        count("test.counter", 3);
        count("test.counter", 4);
        let snap = snapshot();
        set_enabled(was);
        let outer = snap.events.iter().find(|e| e.name == "test.outer").expect("outer recorded");
        assert!(outer.args.iter().any(|(k, v)| *k == "n" && v == "42"));
        assert!(snap.events.iter().any(|e| e.name == "test.inner"));
        assert!(snap.counters.get("test.counter").is_some_and(|&v| v >= 7));
    }

    #[test]
    fn nesting_is_preserved_in_timestamps() {
        let _g = flag_lock();
        let was = enabled();
        set_enabled(true);
        let t_mark = now_ns();
        {
            let _outer = span("test.nest.outer");
            let _inner = span("test.nest.inner");
            std::hint::black_box(0u64);
        }
        let snap = snapshot();
        set_enabled(was);
        let find = |n: &str| {
            snap.events
                .iter()
                .filter(|e| e.name == n && e.start_ns >= t_mark)
                .max_by_key(|e| e.start_ns)
                .unwrap()
                .clone()
        };
        let outer = find("test.nest.outer");
        let inner = find("test.nest.inner");
        assert!(inner.start_ns >= outer.start_ns);
        assert!(inner.start_ns + inner.dur_ns <= outer.start_ns + outer.dur_ns);
    }

    #[test]
    fn lane_spans_carry_their_lane_as_track() {
        let _g = flag_lock();
        let was = enabled();
        set_enabled(true);
        {
            let _s = lane_span("test.lane-span", 7);
        }
        let snap = snapshot();
        set_enabled(was);
        let ev = snap.events.iter().find(|e| e.name == "test.lane-span").unwrap();
        assert_eq!(ev.track, 7);
        assert_eq!(ev.cat, "lane");
    }

    #[test]
    fn hspan_records_both_event_and_histogram() {
        let _g = flag_lock();
        let was = enabled();
        set_enabled(true);
        let before = histogram("test.hspan").snapshot().count;
        {
            let _s = hspan("test.hspan");
            std::hint::black_box(0u64);
        }
        let after = histogram("test.hspan").snapshot();
        set_enabled(was);
        assert_eq!(after.count, before + 1, "hspan must stream its duration");
        assert!(snapshot().events.iter().any(|e| e.name == "test.hspan"));
    }

    #[test]
    fn hist_macro_gates_on_enabled() {
        let _g = flag_lock();
        let was = enabled();
        set_enabled(false);
        let before = histogram("test.hist-macro").snapshot().count;
        for i in 0..10u64 {
            hist!("test.hist-macro", i);
        }
        set_enabled(true);
        for i in 0..10u64 {
            hist!("test.hist-macro", i);
        }
        let after = histogram("test.hist-macro").snapshot();
        set_enabled(was);
        assert_eq!(after.count, before + 10, "only enabled records may land");
    }

    #[test]
    fn gauge_macro_sets_when_enabled() {
        let _g = flag_lock();
        let was = enabled();
        set_enabled(true);
        gauge_set!("test.gauge-macro", 7);
        gauge_set!("test.gauge-macro", 3);
        let d = gauge("test.gauge-macro").snapshot();
        set_enabled(was);
        assert_eq!(d.value, 3);
        assert_eq!(d.max, 7);
    }

    #[test]
    fn timed_measures_even_when_disabled() {
        let _g = flag_lock();
        let was = enabled();
        set_enabled(false);
        let (v, ns) = timed("test.timed", || {
            std::hint::black_box((0..10_000u64).sum::<u64>())
        });
        set_enabled(was);
        assert_eq!(v, 9_999 * 10_000 / 2);
        assert!(ns > 0, "disabled timed() must still measure");
    }

    #[test]
    fn clock_is_monotonic() {
        let a = now_ns();
        let b = now_ns();
        assert!(b >= a);
    }
}
