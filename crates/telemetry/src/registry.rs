//! The global event/counter registry: sharded mutexes so concurrent
//! worker lanes never contend on one lock, bounded so an instrumented
//! soak run cannot grow memory without limit.

use std::cell::Cell;
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};

/// One completed span occurrence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// Span name (aggregation key for the summary).
    pub name: String,
    /// Category: `"span"` (scoped region) or `"lane"` (per-lane busy time).
    pub cat: &'static str,
    /// Track the event renders on (worker lane, or a per-thread id).
    pub track: u32,
    /// Start, nanoseconds on the telemetry clock.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
    /// Key/value annotations (kernel name, range length, schedule, …).
    pub args: Vec<(&'static str, String)>,
}

const SHARD_COUNT: usize = 16;

/// Per-shard event cap. Beyond it events are counted as dropped rather
/// than silently vanishing (the drop count is exported).
const MAX_EVENTS_PER_SHARD: usize = 1 << 18;

#[derive(Default)]
struct Shard {
    events: Vec<Event>,
    counters: HashMap<&'static str, u64>,
    dropped: u64,
}

static SHARDS: OnceLock<Vec<Mutex<Shard>>> = OnceLock::new();
static NEXT_SHARD: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static SHARD_IDX: Cell<usize> = const { Cell::new(usize::MAX) };
}

fn shards() -> &'static [Mutex<Shard>] {
    SHARDS.get_or_init(|| (0..SHARD_COUNT).map(|_| Mutex::new(Shard::default())).collect())
}

fn lock(shard: &Mutex<Shard>) -> MutexGuard<'_, Shard> {
    shard.lock().unwrap_or_else(|e| e.into_inner())
}

/// This thread's home shard (round-robin assigned on first use, so pool
/// lanes spread across shards instead of hashing onto one).
fn my_shard() -> &'static Mutex<Shard> {
    let idx = SHARD_IDX.with(|i| {
        let v = i.get();
        if v != usize::MAX {
            return v;
        }
        let v = NEXT_SHARD.fetch_add(1, Ordering::Relaxed) % SHARD_COUNT;
        i.set(v);
        v
    });
    &shards()[idx]
}

pub(crate) fn record(event: Event) {
    let mut shard = lock(my_shard());
    if shard.events.len() < MAX_EVENTS_PER_SHARD {
        shard.events.push(event);
    } else {
        shard.dropped += 1;
    }
}

pub(crate) fn add_counter(name: &'static str, n: u64) {
    let mut shard = lock(my_shard());
    *shard.counters.entry(name).or_insert(0) += n;
}

/// Current total of a named counter across all shards (0 if never bumped).
pub fn counter(name: &str) -> u64 {
    shards().iter().map(|s| lock(s).counters.get(name).copied().unwrap_or(0)).sum()
}

/// A merged, ordered copy of everything recorded so far.
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    /// All events, sorted by (start, longest-first, track, name) so
    /// parents precede their children and the order is deterministic for
    /// a fixed event set.
    pub events: Vec<Event>,
    /// Counter totals, name-ordered.
    pub counters: BTreeMap<String, u64>,
    /// Events discarded because a shard hit its cap.
    pub dropped_events: u64,
}

/// Merge every shard into one ordered [`Snapshot`] (does not reset).
pub fn snapshot() -> Snapshot {
    let mut snap = Snapshot::default();
    for s in shards() {
        let shard = lock(s);
        snap.events.extend(shard.events.iter().cloned());
        for (&k, &v) in &shard.counters {
            *snap.counters.entry(k.to_string()).or_insert(0) += v;
        }
        snap.dropped_events += shard.dropped;
    }
    snap.events.sort_by(|a, b| {
        a.start_ns
            .cmp(&b.start_ns)
            .then(b.dur_ns.cmp(&a.dur_ns))
            .then(a.track.cmp(&b.track))
            .then(a.name.cmp(&b.name))
    });
    snap
}

/// Clear all recorded events and counters.
pub fn reset() {
    for s in shards() {
        let mut shard = lock(s);
        shard.events.clear();
        shard.counters.clear();
        shard.dropped = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(name: &str, start: u64, dur: u64) -> Event {
        Event {
            name: name.to_string(),
            cat: "span",
            track: 0,
            start_ns: start,
            dur_ns: dur,
            args: Vec::new(),
        }
    }

    #[test]
    fn snapshot_orders_parents_before_children() {
        // same start: the longer (enclosing) event must come first
        let mut events = [ev("child", 100, 10), ev("parent", 100, 50), ev("early", 5, 1)];
        events.sort_by(|a, b| {
            a.start_ns
                .cmp(&b.start_ns)
                .then(b.dur_ns.cmp(&a.dur_ns))
                .then(a.track.cmp(&b.track))
                .then(a.name.cmp(&b.name))
        });
        let names: Vec<&str> = events.iter().map(|e| e.name.as_str()).collect();
        assert_eq!(names, vec!["early", "parent", "child"]);
    }

    #[test]
    fn counters_accumulate_across_threads() {
        // add_counter is the post-enabled-check internal path, so this
        // needs no flag and cannot interfere with the flag-flipping tests
        let before = counter("registry.test.cross-thread");
        let threads: Vec<_> = (0..4)
            .map(|_| {
                std::thread::spawn(|| {
                    for _ in 0..100 {
                        add_counter("registry.test.cross-thread", 1);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(counter("registry.test.cross-thread"), before + 400);
    }
}
