//! The global event/counter registry: sharded mutexes so concurrent
//! worker lanes never contend on one lock, bounded so an instrumented
//! soak run cannot grow memory without limit.

use crate::metrics::MetricsSnapshot;
use std::cell::Cell;
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};

/// One completed span occurrence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// Span name (aggregation key for the summary).
    pub name: String,
    /// Category: `"span"` (scoped region) or `"lane"` (per-lane busy time).
    pub cat: &'static str,
    /// Track the event renders on (worker lane, or a per-thread id).
    pub track: u32,
    /// Start, nanoseconds on the telemetry clock.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
    /// Key/value annotations (kernel name, range length, schedule, …).
    pub args: Vec<(&'static str, String)>,
}

const SHARD_COUNT: usize = 16;

/// Per-shard event cap. Beyond it events are counted as dropped rather
/// than silently vanishing (the drop count is exported).
const MAX_EVENTS_PER_SHARD: usize = 1 << 18;

/// Flight-recorder ring capacity per shard: the most recent span events,
/// kept even after `MAX_EVENTS_PER_SHARD` starts dropping from the main
/// buffer, so a post-mortem always sees the run's last moments.
const FLIGHT_RING_PER_SHARD: usize = 256;

#[derive(Default)]
struct Shard {
    events: Vec<Event>,
    counters: HashMap<&'static str, u64>,
    dropped: u64,
    /// Bounded ring of the most recent events (flight recorder).
    recent: VecDeque<Event>,
}

static SHARDS: OnceLock<Vec<Mutex<Shard>>> = OnceLock::new();
static NEXT_SHARD: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static SHARD_IDX: Cell<usize> = const { Cell::new(usize::MAX) };
}

fn shards() -> &'static [Mutex<Shard>] {
    SHARDS.get_or_init(|| (0..SHARD_COUNT).map(|_| Mutex::new(Shard::default())).collect())
}

fn lock(shard: &Mutex<Shard>) -> MutexGuard<'_, Shard> {
    shard.lock().unwrap_or_else(|e| e.into_inner())
}

/// This thread's home shard (round-robin assigned on first use, so pool
/// lanes spread across shards instead of hashing onto one).
fn my_shard() -> &'static Mutex<Shard> {
    let idx = SHARD_IDX.with(|i| {
        let v = i.get();
        if v != usize::MAX {
            return v;
        }
        let v = NEXT_SHARD.fetch_add(1, Ordering::Relaxed) % SHARD_COUNT;
        i.set(v);
        v
    });
    &shards()[idx]
}

pub(crate) fn record(event: Event) {
    let mut shard = lock(my_shard());
    if shard.recent.len() == FLIGHT_RING_PER_SHARD {
        shard.recent.pop_front();
    }
    if shard.events.len() < MAX_EVENTS_PER_SHARD {
        shard.recent.push_back(event.clone());
        shard.events.push(event);
    } else {
        // the main buffer is full — the *ring* still keeps the tail so a
        // post-mortem sees the crash window, not just the drop counter
        shard.dropped += 1;
        shard.recent.push_back(event);
    }
}

pub(crate) fn add_counter(name: &'static str, n: u64) {
    let mut shard = lock(my_shard());
    *shard.counters.entry(name).or_insert(0) += n;
}

/// Baselines carried over from a restored checkpoint: lifetime counter
/// totals recorded by a previous process, added on top of this process's
/// live shard counters so restored runs keep reporting monotonic lifetime
/// totals (`pool.created`, `sim.particles_pushed`, …) without
/// double-counting. Windows ([`window_mark`]/[`window_since`]) read the
/// live shards only, so a restore never makes a window go backwards.
static BASELINES: OnceLock<Mutex<BTreeMap<String, u64>>> = OnceLock::new();

fn baselines() -> &'static Mutex<BTreeMap<String, u64>> {
    BASELINES.get_or_init(|| Mutex::new(BTreeMap::new()))
}

/// Live in-process total of a named counter, baselines excluded.
fn live_counter(name: &str) -> u64 {
    shards().iter().map(|s| lock(s).counters.get(name).copied().unwrap_or(0)).sum()
}

/// Current total of a named counter (0 if never bumped): this process's
/// shard totals plus any baseline restored from a checkpoint.
pub fn counter(name: &str) -> u64 {
    let base = baselines()
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .get(name)
        .copied()
        .unwrap_or(0);
    base + live_counter(name)
}

/// Adopt lifetime-counter totals saved in a checkpoint. For each saved
/// counter the baseline grows by however much the saved total exceeds the
/// [`counter`] total visible right now — so restoring into a fresh
/// process carries the full history forward, while restoring a snapshot
/// this same process wrote earlier adds nothing (the live counters
/// already cover it). Totals only ever grow; re-applying the same saved
/// map is idempotent.
pub fn restore_counter_baselines(saved: &BTreeMap<String, u64>) {
    for (name, &saved_total) in saved {
        let current = counter(name);
        if saved_total > current {
            let mut base = baselines().lock().unwrap_or_else(|e| e.into_inner());
            *base.entry(name.clone()).or_insert(0) += saved_total - current;
        }
    }
}

/// All counter totals (baselines included, matching [`counter`]),
/// name-ordered. Unlike [`snapshot`] this clones no events, so it is
/// cheap enough for the checkpoint write path.
pub fn counters() -> BTreeMap<String, u64> {
    let mut out: BTreeMap<String, u64> =
        baselines().lock().unwrap_or_else(|e| e.into_inner()).clone();
    for s in shards() {
        let shard = lock(s);
        for (&k, &v) in &shard.counters {
            *out.entry(k.to_string()).or_insert(0) += v;
        }
    }
    out
}

/// A merged, ordered copy of everything recorded so far.
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    /// All events, sorted by (start, longest-first, track, name) so
    /// parents precede their children and the order is deterministic for
    /// a fixed event set.
    pub events: Vec<Event>,
    /// Counter totals, name-ordered.
    pub counters: BTreeMap<String, u64>,
    /// Events discarded because a shard hit its cap.
    pub dropped_events: u64,
    /// Streaming-metric snapshots (histograms and gauges), name-ordered.
    pub metrics: MetricsSnapshot,
}

/// Merge every shard into one ordered [`Snapshot`] (does not reset).
/// Counter totals include restored baselines, matching [`counter`].
pub fn snapshot() -> Snapshot {
    let mut snap = Snapshot::default();
    for (k, &v) in baselines().lock().unwrap_or_else(|e| e.into_inner()).iter() {
        snap.counters.insert(k.clone(), v);
    }
    for s in shards() {
        let shard = lock(s);
        snap.events.extend(shard.events.iter().cloned());
        for (&k, &v) in &shard.counters {
            *snap.counters.entry(k.to_string()).or_insert(0) += v;
        }
        snap.dropped_events += shard.dropped;
    }
    snap.events.sort_by(event_order);
    snap.metrics = crate::metrics::metrics_snapshot();
    snap
}

/// The canonical event ordering: (start, longest-first, track, name), so
/// parents precede their children and fixed event sets order identically.
fn event_order(a: &Event, b: &Event) -> std::cmp::Ordering {
    a.start_ns
        .cmp(&b.start_ns)
        .then(b.dur_ns.cmp(&a.dur_ns))
        .then(a.track.cmp(&b.track))
        .then(a.name.cmp(&b.name))
}

// --------------------------------------------------------- flight recorder

/// The flight recorder's view: the most recent events (bounded ring per
/// shard, merged and ordered), counter totals, and the drop count.
#[derive(Debug, Clone, Default)]
pub struct FlightSnapshot {
    /// Ring contents, ordered like [`Snapshot::events`].
    pub events: Vec<Event>,
    /// Counter totals, name-ordered (baselines included).
    pub counters: BTreeMap<String, u64>,
    /// Events discarded from the main buffers (the ring kept recording).
    pub dropped_events: u64,
}

/// Merge every shard's recent-event ring into one ordered
/// [`FlightSnapshot`]. Cheap relative to [`snapshot`]: at most
/// `256 × shards` events regardless of run length.
pub fn flight_snapshot() -> FlightSnapshot {
    let mut snap = FlightSnapshot::default();
    for (k, &v) in baselines().lock().unwrap_or_else(|e| e.into_inner()).iter() {
        snap.counters.insert(k.clone(), v);
    }
    for s in shards() {
        let shard = lock(s);
        snap.events.extend(shard.recent.iter().cloned());
        for (&k, &v) in &shard.counters {
            *snap.counters.entry(k.to_string()).or_insert(0) += v;
        }
        snap.dropped_events += shard.dropped;
    }
    snap.events.sort_by(event_order);
    snap
}

// ---------------------------------------------------------------- windows

/// A cheap position marker into the event/counter stream, taken with
/// [`window_mark`] and later turned into per-span windowed totals by
/// [`window_since`]. The adaptive tuner reads one of these per epoch —
/// the cost of a mark is one lock per shard and a counter copy, with no
/// event cloning.
#[derive(Debug, Clone, Default)]
pub struct WindowMark {
    /// Per-shard event count at mark time.
    event_pos: Vec<usize>,
    /// Counter totals at mark time.
    counters: BTreeMap<String, u64>,
    /// Total dropped events at mark time.
    dropped: u64,
}

/// Windowed totals for one span name.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpanWindow {
    /// Occurrences inside the window.
    pub count: u64,
    /// Sum of durations inside the window, ns.
    pub total_ns: u64,
}

/// Aggregated telemetry activity since a [`WindowMark`]: per-span totals,
/// counter deltas, and — critically for the tuner — how many events were
/// *dropped* inside the window (a truncated window must not silently
/// mis-cost a measurement; see ISSUE satellite on `dropped_events`).
#[derive(Debug, Clone, Default)]
pub struct WindowTotals {
    /// Per-span-name count and total duration inside the window.
    pub spans: BTreeMap<String, SpanWindow>,
    /// Counter increments inside the window (zero-delta names omitted).
    pub counters: BTreeMap<String, u64>,
    /// Events discarded (shard cap reached) inside the window. A nonzero
    /// value means `spans` undercounts and the window should be treated
    /// as truncated.
    pub dropped_events: u64,
}

impl WindowTotals {
    /// Total duration of the named span inside the window, ns (0 if the
    /// span never closed inside the window).
    pub fn span_total_ns(&self, name: &str) -> u64 {
        self.spans.get(name).map_or(0, |w| w.total_ns)
    }

    /// Occurrences of the named span inside the window.
    pub fn span_count(&self, name: &str) -> u64 {
        self.spans.get(name).map_or(0, |w| w.count)
    }

    /// Increment of the named counter inside the window.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }
}

/// Mark the current position of the telemetry stream. O(shards); clones
/// counter totals but no events.
pub fn window_mark() -> WindowMark {
    let mut mark = WindowMark { event_pos: Vec::with_capacity(SHARD_COUNT), ..Default::default() };
    for s in shards() {
        let shard = lock(s);
        mark.event_pos.push(shard.events.len());
        for (&k, &v) in &shard.counters {
            *mark.counters.entry(k.to_string()).or_insert(0) += v;
        }
        mark.dropped += shard.dropped;
    }
    mark
}

/// Aggregate everything recorded since `mark` into per-span totals and
/// counter deltas — the epoch-readout path, which never clones events and
/// so stays cheap no matter how much history the registry holds. A
/// [`reset`] between mark and read is handled by saturating to "since the
/// reset".
pub fn window_since(mark: &WindowMark) -> WindowTotals {
    let mut totals = WindowTotals::default();
    let mut dropped_now = 0u64;
    for (i, s) in shards().iter().enumerate() {
        let shard = lock(s);
        let from = mark.event_pos.get(i).copied().unwrap_or(0).min(shard.events.len());
        for e in &shard.events[from..] {
            let w = totals.spans.entry(e.name.clone()).or_default();
            w.count += 1;
            w.total_ns += e.dur_ns;
        }
        for (&k, &v) in &shard.counters {
            *totals.counters.entry(k.to_string()).or_insert(0) += v;
        }
        dropped_now += shard.dropped;
    }
    // counter deltas relative to the mark; drop zero deltas
    for (k, v) in totals.counters.iter_mut() {
        *v = v.saturating_sub(mark.counters.get(k).copied().unwrap_or(0));
    }
    totals.counters.retain(|_, &mut v| v > 0);
    totals.dropped_events = dropped_now.saturating_sub(mark.dropped);
    totals
}

/// Clear all recorded events, counters, restored baselines, the flight
/// ring, and every metric (histograms/gauges are zeroed in place, so
/// cached handles stay valid).
pub fn reset() {
    for s in shards() {
        let mut shard = lock(s);
        shard.events.clear();
        shard.counters.clear();
        shard.dropped = 0;
        shard.recent.clear();
    }
    baselines().lock().unwrap_or_else(|e| e.into_inner()).clear();
    crate::metrics::reset_metrics();
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(name: &str, start: u64, dur: u64) -> Event {
        Event {
            name: name.to_string(),
            cat: "span",
            track: 0,
            start_ns: start,
            dur_ns: dur,
            args: Vec::new(),
        }
    }

    #[test]
    fn snapshot_orders_parents_before_children() {
        // same start: the longer (enclosing) event must come first
        let mut events = [ev("child", 100, 10), ev("parent", 100, 50), ev("early", 5, 1)];
        events.sort_by(|a, b| {
            a.start_ns
                .cmp(&b.start_ns)
                .then(b.dur_ns.cmp(&a.dur_ns))
                .then(a.track.cmp(&b.track))
                .then(a.name.cmp(&b.name))
        });
        let names: Vec<&str> = events.iter().map(|e| e.name.as_str()).collect();
        assert_eq!(names, vec!["early", "parent", "child"]);
    }

    #[test]
    fn window_totals_track_only_new_events() {
        let mark = window_mark();
        record(ev("registry.test.window.span", 100, 10));
        record(ev("registry.test.window.span", 120, 20));
        record(ev("registry.test.window.span", 150, 30));
        add_counter("registry.test.window.counter", 7);
        let w = window_since(&mark);
        assert_eq!(w.span_count("registry.test.window.span"), 3);
        assert_eq!(w.span_total_ns("registry.test.window.span"), 60);
        assert_eq!(w.counter("registry.test.window.counter"), 7);
        // a fresh mark sees none of it
        let w2 = window_since(&window_mark());
        assert_eq!(w2.span_count("registry.test.window.span"), 0);
        assert_eq!(w2.counter("registry.test.window.counter"), 0);
    }

    #[test]
    fn window_survives_marks_past_current_positions() {
        // simulates a reset() between mark and readout: positions beyond
        // the live buffers clamp, counters/dropped saturate to zero
        let mut counters = BTreeMap::new();
        counters.insert("registry.test.window.stale".to_string(), u64::MAX);
        let stale =
            WindowMark { event_pos: vec![usize::MAX; SHARD_COUNT], counters, dropped: u64::MAX };
        let w = window_since(&stale);
        assert!(w.spans.is_empty());
        assert_eq!(w.counter("registry.test.window.stale"), 0);
        assert_eq!(w.dropped_events, 0);
    }

    #[test]
    fn restored_baselines_carry_lifetime_totals_without_double_count() {
        // fresh-process restore: nothing live yet, the saved total carries
        // over wholesale
        let name = "registry.test.baseline.fresh";
        assert_eq!(counter(name), 0);
        let mut saved = BTreeMap::new();
        saved.insert(name.to_string(), 1000u64);
        restore_counter_baselines(&saved);
        assert_eq!(counter(name), 1000);
        // re-applying the same checkpoint adds nothing (idempotent)
        restore_counter_baselines(&saved);
        assert_eq!(counter(name), 1000);
        // live increments stack on top of the baseline
        add_counter("registry.test.baseline.fresh", 5);
        assert_eq!(counter(name), 1005);
        // same-process restore: the saved total is already covered by
        // live + baseline, so nothing is double-counted
        let mut resaved = BTreeMap::new();
        resaved.insert(name.to_string(), counter(name));
        restore_counter_baselines(&resaved);
        assert_eq!(counter(name), 1005);
        // snapshot() reports the same baseline-inclusive totals
        assert_eq!(snapshot().counters.get(name).copied(), Some(1005));
    }

    #[test]
    fn windows_stay_monotonic_across_a_baseline_restore() {
        // a window opened before the restore must see only live activity,
        // never a negative/huge jump from the adopted baseline
        let name = "registry.test.baseline.window";
        let mark = window_mark();
        let mut saved = BTreeMap::new();
        saved.insert(name.to_string(), 999_999u64);
        restore_counter_baselines(&saved);
        let w = window_since(&mark);
        assert_eq!(w.counter(name), 0, "baselines must not leak into windows");
        add_counter("registry.test.baseline.window", 3);
        assert_eq!(window_since(&mark).counter(name), 3);
    }

    #[test]
    fn flight_ring_keeps_the_most_recent_events() {
        let n = FLIGHT_RING_PER_SHARD + 10;
        for i in 0..n {
            record(ev("registry.test.flight", i as u64, 1));
        }
        let fs = flight_snapshot();
        let mine: Vec<_> =
            fs.events.iter().filter(|e| e.name == "registry.test.flight").collect();
        assert!(mine.len() <= FLIGHT_RING_PER_SHARD, "ring must stay bounded");
        assert!(
            mine.iter().any(|e| e.start_ns == (n - 1) as u64),
            "the newest event must survive eviction"
        );
        assert!(
            !mine.iter().any(|e| e.start_ns == 0),
            "the oldest overflow event must have been evicted"
        );
    }

    #[test]
    fn counters_accumulate_across_threads() {
        // add_counter is the post-enabled-check internal path, so this
        // needs no flag and cannot interfere with the flag-flipping tests
        let before = counter("registry.test.cross-thread");
        let threads: Vec<_> = (0..4)
            .map(|_| {
                std::thread::spawn(|| {
                    for _ in 0..100 {
                        add_counter("registry.test.cross-thread", 1);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(counter("registry.test.cross-thread"), before + 400);
    }
}
