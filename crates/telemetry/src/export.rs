//! Exporters: summary table, summary JSON, and Chrome `trace_event` JSON.
//!
//! Every function here is a pure function of its input — timestamps are
//! injected via the events, never sampled — so output is byte-identical
//! for a fixed event sequence (the determinism tests below pin this).

use crate::registry::{Event, Snapshot};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;

/// Aggregated statistics for one span name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanStat {
    /// Span name.
    pub name: String,
    /// Occurrences.
    pub count: u64,
    /// Sum of durations, ns.
    pub total_ns: u64,
    /// Mean duration, ns.
    pub mean_ns: u64,
    /// Median duration, ns (nearest-rank).
    pub p50_ns: u64,
    /// 95th-percentile duration, ns (nearest-rank).
    pub p95_ns: u64,
    /// Longest single occurrence, ns.
    pub max_ns: u64,
}

/// Nearest-rank percentile of an ascending-sorted slice.
fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Aggregate events by span name, largest total first (name-ordered ties).
pub fn aggregate(events: &[Event]) -> Vec<SpanStat> {
    let mut durs: BTreeMap<&str, Vec<u64>> = BTreeMap::new();
    for e in events {
        durs.entry(e.name.as_str()).or_default().push(e.dur_ns);
    }
    let mut stats: Vec<SpanStat> = durs
        .into_iter()
        .map(|(name, mut d)| {
            d.sort_unstable();
            let total: u64 = d.iter().sum();
            SpanStat {
                name: name.to_string(),
                count: d.len() as u64,
                total_ns: total,
                mean_ns: total / d.len() as u64,
                p50_ns: percentile(&d, 50.0),
                p95_ns: percentile(&d, 95.0),
                max_ns: *d.last().unwrap(),
            }
        })
        .collect();
    stats.sort_by(|a, b| b.total_ns.cmp(&a.total_ns).then(a.name.cmp(&b.name)));
    stats
}

/// Human-readable duration: picks s/ms/µs/ns to keep 3-4 significant digits.
fn fmt_ns(ns: u64) -> String {
    let s = ns as f64 / 1e9;
    if s >= 1.0 {
        format!("{s:.2} s")
    } else if s >= 1e-3 {
        format!("{:.2} ms", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:.2} µs", s * 1e6)
    } else {
        format!("{ns} ns")
    }
}

/// Render the end-of-run summary table (count, total, mean, p50, p95, max
/// per span name, largest total first).
pub fn format_summary(stats: &[SpanStat]) -> String {
    let name_w = stats.iter().map(|s| s.name.len()).max().unwrap_or(4).max(4);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<name_w$} {:>8} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "span", "count", "total", "mean", "p50", "p95", "max"
    );
    for s in stats {
        let _ = writeln!(
            out,
            "{:<name_w$} {:>8} {:>10} {:>10} {:>10} {:>10} {:>10}",
            s.name,
            s.count,
            fmt_ns(s.total_ns),
            fmt_ns(s.mean_ns),
            fmt_ns(s.p50_ns),
            fmt_ns(s.p95_ns),
            fmt_ns(s.max_ns),
        );
    }
    out
}

/// JSON-escape a string (quotes, backslashes, control characters).
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Microseconds with fixed 3-decimal nanosecond remainder (`ts`/`dur`
/// fields of the Chrome trace format are microseconds).
fn fmt_us(ns: u64) -> String {
    format!("{}.{:03}", ns / 1000, ns % 1000)
}

/// Render events as a Chrome `trace_event` JSON array — loadable in
/// `chrome://tracing` and Perfetto. One `tid` (track) per worker lane,
/// with thread-name metadata so lanes are labeled in the viewer.
pub fn chrome_trace(events: &[Event]) -> String {
    let mut out = String::from("[\n");
    out.push_str(
        "{\"ph\":\"M\",\"pid\":0,\"tid\":0,\"name\":\"process_name\",\
         \"args\":{\"name\":\"vpic2\"}}",
    );
    let tracks: BTreeSet<u32> = events.iter().map(|e| e.track).collect();
    for t in tracks {
        let label = if t == 0 { "lane 0 (caller)".to_string() } else { format!("lane {t}") };
        let _ = write!(
            out,
            ",\n{{\"ph\":\"M\",\"pid\":0,\"tid\":{t},\"name\":\"thread_name\",\
             \"args\":{{\"name\":\"{label}\"}}}}"
        );
    }
    for e in events {
        let _ = write!(
            out,
            ",\n{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"pid\":0,\"tid\":{},\
             \"ts\":{},\"dur\":{}",
            esc(&e.name),
            esc(e.cat),
            e.track,
            fmt_us(e.start_ns),
            fmt_us(e.dur_ns),
        );
        if !e.args.is_empty() {
            out.push_str(",\"args\":{");
            for (i, (k, v)) in e.args.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(out, "\"{}\":\"{}\"", esc(k), esc(v));
            }
            out.push('}');
        }
        out.push('}');
    }
    out.push_str("\n]\n");
    out
}

/// Render a snapshot as machine-readable summary JSON: counters, per-span
/// stats, and the dropped-event count.
pub fn summary_json(snap: &Snapshot) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"dropped_events\": {},", snap.dropped_events);
    out.push_str("  \"counters\": {");
    for (i, (k, v)) in snap.counters.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\n    \"{}\": {}", esc(k), v);
    }
    if !snap.counters.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("},\n  \"spans\": [");
    let stats = aggregate(&snap.events);
    for (i, s) in stats.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\n    {{\"name\": \"{}\", \"count\": {}, \"total_ns\": {}, \"mean_ns\": {}, \
             \"p50_ns\": {}, \"p95_ns\": {}, \"max_ns\": {}}}",
            esc(&s.name),
            s.count,
            s.total_ns,
            s.mean_ns,
            s.p50_ns,
            s.p95_ns,
            s.max_ns,
        );
    }
    if !stats.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A fixed synthetic event sequence with injected timestamps — no
    /// wall-clock sampling anywhere, matching the shims' no-`Date::now`
    /// determinism story.
    fn synthetic_events() -> Vec<Event> {
        vec![
            Event {
                name: "sim.step".into(),
                cat: "span",
                track: 0,
                start_ns: 1_000,
                dur_ns: 9_500,
                args: vec![("step", "0".into()), ("space", "Threads".into())],
            },
            Event {
                name: "sim.push".into(),
                cat: "span",
                track: 0,
                start_ns: 1_200,
                dur_ns: 7_000,
                args: vec![],
            },
            Event {
                name: "sim.push::lane".into(),
                cat: "lane",
                track: 1,
                start_ns: 1_300,
                dur_ns: 6_500,
                args: vec![],
            },
            Event {
                name: "sim.push::lane".into(),
                cat: "lane",
                track: 2,
                start_ns: 1_310,
                dur_ns: 6_400,
                args: vec![],
            },
            Event {
                name: "odd \"name\"\twith\nescapes\\".into(),
                cat: "span",
                track: 0,
                start_ns: 12_000,
                dur_ns: 1,
                args: vec![("k", "v\"w".into())],
            },
        ]
    }

    #[test]
    fn chrome_trace_is_byte_deterministic() {
        let events = synthetic_events();
        let a = chrome_trace(&events);
        let b = chrome_trace(&events);
        assert_eq!(a, b, "same events must render byte-identically");
    }

    #[test]
    fn chrome_trace_shape() {
        let events = synthetic_events();
        let out = chrome_trace(&events);
        assert!(out.starts_with("[\n"));
        assert!(out.ends_with("\n]\n"));
        // one thread_name metadata record per distinct track
        assert_eq!(out.matches("\"thread_name\"").count(), 3);
        assert!(out.contains("\"name\":\"lane 0 (caller)\""));
        assert!(out.contains("\"name\":\"lane 2\""));
        // complete events with microsecond timestamps: 1000 ns = 1.000 µs
        assert!(out.contains("\"ts\":1.000,\"dur\":9.500"));
        // escapes survive
        assert!(out.contains("odd \\\"name\\\"\\twith\\nescapes\\\\"));
        // every line is one JSON object or a bracket — no trailing commas
        assert!(!out.contains(",\n]"));
    }

    #[test]
    fn summary_json_is_byte_deterministic() {
        let snap = Snapshot {
            events: synthetic_events(),
            counters: [("sim.particles_pushed".to_string(), 16384u64), ("pk.pool.dispatches".to_string(), 12u64)]
                .into_iter()
                .collect(),
            dropped_events: 0,
        };
        let a = summary_json(&snap);
        let b = summary_json(&snap);
        assert_eq!(a, b);
        assert!(a.contains("\"pk.pool.dispatches\": 12"));
        assert!(a.contains("\"dropped_events\": 0"));
        assert!(a.contains("\"name\": \"sim.push::lane\", \"count\": 2, \"total_ns\": 12900"));
    }

    #[test]
    fn empty_inputs_render_valid_skeletons() {
        let empty = chrome_trace(&[]);
        assert!(empty.contains("process_name"));
        assert!(!empty.contains(",\n]"));
        let json = summary_json(&Snapshot::default());
        assert!(json.contains("\"counters\": {}"));
        assert!(json.contains("\"spans\": []"));
    }

    #[test]
    fn aggregate_computes_stats() {
        let stats = aggregate(&synthetic_events());
        // largest total first
        assert_eq!(stats[0].name, "sim.push::lane");
        assert_eq!(stats[0].count, 2);
        assert_eq!(stats[0].total_ns, 12_900);
        assert_eq!(stats[0].mean_ns, 6_450);
        assert_eq!(stats[0].p50_ns, 6_400);
        assert_eq!(stats[0].p95_ns, 6_500);
        assert_eq!(stats[0].max_ns, 6_500);
        assert_eq!(stats[1].name, "sim.step");
    }

    #[test]
    fn percentile_nearest_rank() {
        let d: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&d, 50.0), 50);
        assert_eq!(percentile(&d, 95.0), 95);
        assert_eq!(percentile(&d, 100.0), 100);
        assert_eq!(percentile(&[7], 95.0), 7);
        assert_eq!(percentile(&[], 50.0), 0);
    }

    #[test]
    fn summary_table_lists_every_span() {
        let table = format_summary(&aggregate(&synthetic_events()));
        assert!(table.lines().next().unwrap().contains("p95"));
        assert!(table.contains("sim.step"));
        assert!(table.contains("sim.push::lane"));
        // header + one row per name (the "odd" name embeds a raw newline,
        // so it contributes two lines)
        assert_eq!(table.lines().count(), 1 + 4 + 1);
    }
}
