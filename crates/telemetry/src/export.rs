//! Exporters: summary table, summary JSON, and Chrome `trace_event` JSON.
//!
//! Every function here is a pure function of its input — timestamps are
//! injected via the events, never sampled — so output is byte-identical
//! for a fixed event sequence (the determinism tests below pin this).

use crate::metrics::MetricsSnapshot;
use crate::registry::{Event, Snapshot};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;

/// Aggregated statistics for one span name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanStat {
    /// Span name.
    pub name: String,
    /// Occurrences.
    pub count: u64,
    /// Sum of durations, ns.
    pub total_ns: u64,
    /// Mean duration, ns.
    pub mean_ns: u64,
    /// Median duration, ns (nearest-rank).
    pub p50_ns: u64,
    /// 95th-percentile duration, ns (nearest-rank).
    pub p95_ns: u64,
    /// 99th-percentile duration, ns (nearest-rank).
    pub p99_ns: u64,
    /// Longest single occurrence, ns.
    pub max_ns: u64,
}

/// Nearest-rank percentile of an ascending-sorted slice.
fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Aggregate events by span name, largest total first (name-ordered ties).
pub fn aggregate(events: &[Event]) -> Vec<SpanStat> {
    let mut durs: BTreeMap<&str, Vec<u64>> = BTreeMap::new();
    for e in events {
        durs.entry(e.name.as_str()).or_default().push(e.dur_ns);
    }
    let mut stats: Vec<SpanStat> = durs
        .into_iter()
        .map(|(name, mut d)| {
            d.sort_unstable();
            let total: u64 = d.iter().sum();
            SpanStat {
                name: name.to_string(),
                count: d.len() as u64,
                total_ns: total,
                mean_ns: total / d.len() as u64,
                p50_ns: percentile(&d, 50.0),
                p95_ns: percentile(&d, 95.0),
                p99_ns: percentile(&d, 99.0),
                max_ns: *d.last().unwrap(),
            }
        })
        .collect();
    stats.sort_by(|a, b| b.total_ns.cmp(&a.total_ns).then(a.name.cmp(&b.name)));
    stats
}

/// Human-readable duration: picks s/ms/µs/ns to keep 3-4 significant digits.
fn fmt_ns(ns: u64) -> String {
    let s = ns as f64 / 1e9;
    if s >= 1.0 {
        format!("{s:.2} s")
    } else if s >= 1e-3 {
        format!("{:.2} ms", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:.2} µs", s * 1e6)
    } else {
        format!("{ns} ns")
    }
}

/// Render the end-of-run summary table (count, total, mean, p50, p95,
/// p99, max per span name, largest total first).
pub fn format_summary(stats: &[SpanStat]) -> String {
    let name_w = stats.iter().map(|s| s.name.len()).max().unwrap_or(4).max(4);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<name_w$} {:>8} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "span", "count", "total", "mean", "p50", "p95", "p99", "max"
    );
    for s in stats {
        let _ = writeln!(
            out,
            "{:<name_w$} {:>8} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10}",
            s.name,
            s.count,
            fmt_ns(s.total_ns),
            fmt_ns(s.mean_ns),
            fmt_ns(s.p50_ns),
            fmt_ns(s.p95_ns),
            fmt_ns(s.p99_ns),
            fmt_ns(s.max_ns),
        );
    }
    out
}

/// Render the streaming-metrics table (histograms with count/mean/p50/
/// p95/p99, then gauges), name-ordered. Empty string when nothing was
/// recorded.
pub fn format_metrics(metrics: &MetricsSnapshot) -> String {
    let mut out = String::new();
    if !metrics.hists.is_empty() {
        let name_w = metrics.hists.keys().map(|n| n.len()).max().unwrap_or(9).max(9);
        let _ = writeln!(
            out,
            "{:<name_w$} {:>10} {:>12} {:>12} {:>12} {:>12}",
            "histogram", "count", "mean", "p50", "p95", "p99"
        );
        for (name, h) in &metrics.hists {
            let _ = writeln!(
                out,
                "{:<name_w$} {:>10} {:>12} {:>12} {:>12} {:>12}",
                name,
                h.count,
                h.mean(),
                h.percentile(50.0),
                h.percentile(95.0),
                h.percentile(99.0),
            );
        }
    }
    if !metrics.gauges.is_empty() {
        let name_w = metrics.gauges.keys().map(|n| n.len()).max().unwrap_or(5).max(5);
        let _ = writeln!(
            out,
            "{:<name_w$} {:>12} {:>12} {:>12} {:>10}",
            "gauge", "value", "min", "max", "sets"
        );
        for (name, g) in &metrics.gauges {
            let _ = writeln!(
                out,
                "{:<name_w$} {:>12} {:>12} {:>12} {:>10}",
                name, g.value, g.min, g.max, g.sets
            );
        }
    }
    out
}

/// JSON-escape a string (quotes, backslashes, control characters).
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Microseconds with fixed 3-decimal nanosecond remainder (`ts`/`dur`
/// fields of the Chrome trace format are microseconds).
fn fmt_us(ns: u64) -> String {
    format!("{}.{:03}", ns / 1000, ns % 1000)
}

/// The Chrome-trace process an event belongs to: virtual rank `r` (from a
/// `rank` span argument, as `rank_span` attaches) maps to `pid = r + 1`;
/// everything else stays on the host process `pid = 0`. Perfetto groups
/// tracks by pid, so multirank traces render one lane group per rank
/// instead of one flat track list.
fn event_pid(e: &Event) -> u32 {
    e.args
        .iter()
        .find(|(k, _)| *k == "rank")
        .and_then(|(_, v)| v.parse::<u32>().ok())
        .map_or(0, |r| r.saturating_add(1))
}

/// Render events as a Chrome `trace_event` JSON array — loadable in
/// `chrome://tracing` and Perfetto. One `tid` (track) per worker lane
/// with thread-name metadata, and one `pid` (process) per virtual rank
/// with process-name metadata, so multirank traces group by rank.
pub fn chrome_trace(events: &[Event]) -> String {
    let mut out = String::from("[\n");
    out.push_str(
        "{\"ph\":\"M\",\"pid\":0,\"tid\":0,\"name\":\"process_name\",\
         \"args\":{\"name\":\"vpic2\"}}",
    );
    let mut tracks: BTreeSet<(u32, u32)> = BTreeSet::new();
    let mut rank_pids: BTreeSet<u32> = BTreeSet::new();
    for e in events {
        let pid = event_pid(e);
        tracks.insert((pid, e.track));
        if pid > 0 {
            rank_pids.insert(pid);
        }
    }
    for &pid in &rank_pids {
        let _ = write!(
            out,
            ",\n{{\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\"name\":\"process_name\",\
             \"args\":{{\"name\":\"rank {}\"}}}}",
            pid - 1
        );
    }
    for &(pid, t) in &tracks {
        let label = if t == 0 { "lane 0 (caller)".to_string() } else { format!("lane {t}") };
        let _ = write!(
            out,
            ",\n{{\"ph\":\"M\",\"pid\":{pid},\"tid\":{t},\"name\":\"thread_name\",\
             \"args\":{{\"name\":\"{label}\"}}}}"
        );
    }
    for e in events {
        let _ = write!(
            out,
            ",\n{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"pid\":{},\"tid\":{},\
             \"ts\":{},\"dur\":{}",
            esc(&e.name),
            esc(e.cat),
            event_pid(e),
            e.track,
            fmt_us(e.start_ns),
            fmt_us(e.dur_ns),
        );
        if !e.args.is_empty() {
            out.push_str(",\"args\":{");
            for (i, (k, v)) in e.args.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(out, "\"{}\":\"{}\"", esc(k), esc(v));
            }
            out.push('}');
        }
        out.push('}');
    }
    out.push_str("\n]\n");
    out
}

/// Render a snapshot as machine-readable summary JSON: counters, per-span
/// stats, streaming histograms/gauges, and the dropped-event count.
pub fn summary_json(snap: &Snapshot) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"dropped_events\": {},", snap.dropped_events);
    out.push_str("  \"counters\": {");
    for (i, (k, v)) in snap.counters.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\n    \"{}\": {}", esc(k), v);
    }
    if !snap.counters.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("},\n  \"spans\": [");
    let stats = aggregate(&snap.events);
    for (i, s) in stats.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\n    {{\"name\": \"{}\", \"count\": {}, \"total_ns\": {}, \"mean_ns\": {}, \
             \"p50_ns\": {}, \"p95_ns\": {}, \"p99_ns\": {}, \"max_ns\": {}}}",
            esc(&s.name),
            s.count,
            s.total_ns,
            s.mean_ns,
            s.p50_ns,
            s.p95_ns,
            s.p99_ns,
            s.max_ns,
        );
    }
    if !stats.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("],\n  \"hists\": [");
    for (i, (name, h)) in snap.metrics.hists.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\n    {{\"name\": \"{}\", \"count\": {}, \"sum\": {}, \"mean\": {}, \
             \"p50\": {}, \"p95\": {}, \"p99\": {}}}",
            esc(name),
            h.count,
            h.sum,
            h.mean(),
            h.percentile(50.0),
            h.percentile(95.0),
            h.percentile(99.0),
        );
    }
    if !snap.metrics.hists.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("],\n  \"gauges\": [");
    for (i, (name, g)) in snap.metrics.gauges.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\n    {{\"name\": \"{}\", \"value\": {}, \"min\": {}, \"max\": {}, \"sets\": {}}}",
            esc(name),
            g.value,
            g.min,
            g.max,
            g.sets,
        );
    }
    if !snap.metrics.gauges.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("]\n}\n");
    out
}

/// Sanitize a metric name for the Prometheus exposition format
/// (`[a-zA-Z_:][a-zA-Z0-9_:]*`): every other character becomes `_`, and a
/// leading digit gets a `_` prefix.
fn prom_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for (i, c) in name.chars().enumerate() {
        if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
            if i == 0 && c.is_ascii_digit() {
                out.push('_');
            }
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

/// Render a snapshot in the Prometheus text exposition format: counters
/// as `counter`, span stats as `summary` (quantiles 0.5/0.95/0.99),
/// streaming histograms as cumulative-`le` `histogram`, gauges as
/// `gauge`. Pure function of the snapshot — byte-identical for fixed
/// input, like every other exporter here.
pub fn prometheus_text(snap: &Snapshot) -> String {
    let mut out = String::new();
    for (name, v) in &snap.counters {
        let n = prom_name(name);
        let _ = writeln!(out, "# TYPE {n}_total counter");
        let _ = writeln!(out, "{n}_total {v}");
    }
    for s in aggregate(&snap.events) {
        let n = format!("{}_ns", prom_name(&s.name));
        let _ = writeln!(out, "# TYPE {n} summary");
        let _ = writeln!(out, "{n}{{quantile=\"0.5\"}} {}", s.p50_ns);
        let _ = writeln!(out, "{n}{{quantile=\"0.95\"}} {}", s.p95_ns);
        let _ = writeln!(out, "{n}{{quantile=\"0.99\"}} {}", s.p99_ns);
        let _ = writeln!(out, "{n}_sum {}", s.total_ns);
        let _ = writeln!(out, "{n}_count {}", s.count);
    }
    for (name, h) in &snap.metrics.hists {
        let n = prom_name(name);
        let _ = writeln!(out, "# TYPE {n} histogram");
        let mut cum = 0u64;
        for (&idx, &c) in &h.buckets {
            cum += c;
            // `le` is the bucket's exclusive ceiling: with integer
            // samples, every value in bucket `idx` is ≤ floor(idx+1) − 1
            // < floor(idx+1), so the cumulative count is exact
            let le = crate::metrics::bucket_floor(idx as usize + 1);
            let _ = writeln!(out, "{n}_bucket{{le=\"{le}\"}} {cum}");
        }
        let _ = writeln!(out, "{n}_bucket{{le=\"+Inf\"}} {}", h.count);
        let _ = writeln!(out, "{n}_sum {}", h.sum);
        let _ = writeln!(out, "{n}_count {}", h.count);
    }
    for (name, g) in &snap.metrics.gauges {
        let n = prom_name(name);
        let _ = writeln!(out, "# TYPE {n} gauge");
        let _ = writeln!(out, "{n} {}", g.value);
        let _ = writeln!(out, "{n}_min {}", g.min);
        let _ = writeln!(out, "{n}_max {}", g.max);
    }
    let _ = writeln!(out, "# TYPE telemetry_dropped_events_total counter");
    let _ = writeln!(out, "telemetry_dropped_events_total {}", snap.dropped_events);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A fixed synthetic event sequence with injected timestamps — no
    /// wall-clock sampling anywhere, matching the shims' no-`Date::now`
    /// determinism story.
    fn synthetic_events() -> Vec<Event> {
        vec![
            Event {
                name: "sim.step".into(),
                cat: "span",
                track: 0,
                start_ns: 1_000,
                dur_ns: 9_500,
                args: vec![("step", "0".into()), ("space", "Threads".into())],
            },
            Event {
                name: "sim.push".into(),
                cat: "span",
                track: 0,
                start_ns: 1_200,
                dur_ns: 7_000,
                args: vec![],
            },
            Event {
                name: "sim.push::lane".into(),
                cat: "lane",
                track: 1,
                start_ns: 1_300,
                dur_ns: 6_500,
                args: vec![],
            },
            Event {
                name: "sim.push::lane".into(),
                cat: "lane",
                track: 2,
                start_ns: 1_310,
                dur_ns: 6_400,
                args: vec![],
            },
            Event {
                name: "odd \"name\"\twith\nescapes\\".into(),
                cat: "span",
                track: 0,
                start_ns: 12_000,
                dur_ns: 1,
                args: vec![("k", "v\"w".into())],
            },
        ]
    }

    #[test]
    fn chrome_trace_is_byte_deterministic() {
        let events = synthetic_events();
        let a = chrome_trace(&events);
        let b = chrome_trace(&events);
        assert_eq!(a, b, "same events must render byte-identically");
    }

    #[test]
    fn chrome_trace_shape() {
        let events = synthetic_events();
        let out = chrome_trace(&events);
        assert!(out.starts_with("[\n"));
        assert!(out.ends_with("\n]\n"));
        // one thread_name metadata record per distinct track
        assert_eq!(out.matches("\"thread_name\"").count(), 3);
        assert!(out.contains("\"name\":\"lane 0 (caller)\""));
        assert!(out.contains("\"name\":\"lane 2\""));
        // complete events with microsecond timestamps: 1000 ns = 1.000 µs
        assert!(out.contains("\"ts\":1.000,\"dur\":9.500"));
        // escapes survive
        assert!(out.contains("odd \\\"name\\\"\\twith\\nescapes\\\\"));
        // every line is one JSON object or a bracket — no trailing commas
        assert!(!out.contains(",\n]"));
    }

    #[test]
    fn chrome_trace_groups_ranked_events_by_pid() {
        let mut events = synthetic_events();
        events.push(Event {
            name: "cluster.exchange".into(),
            cat: "span",
            track: 0,
            start_ns: 5_000,
            dur_ns: 700,
            args: vec![("rank", "2".into())],
        });
        let out = chrome_trace(&events);
        // rank 2 becomes Perfetto pid 3 with its own process_name...
        assert!(out.contains("\"pid\":3,\"tid\":0,\"name\":\"process_name\""));
        assert!(out.contains("\"name\":\"rank 2\""));
        // ...and the ranked event emits under that pid
        assert!(out.contains("\"ph\":\"X\",\"pid\":3,\"tid\":0"));
        // rank-less events stay under the root process
        assert!(out.contains("\"ph\":\"X\",\"pid\":0,\"tid\":0"));
        // thread_name metadata now covers the (pid 3, tid 0) track too
        assert!(out.contains("\"pid\":3,\"tid\":0,\"name\":\"thread_name\""));
        assert_eq!(chrome_trace(&events), out, "still byte-deterministic with ranks");
    }

    /// A fixed synthetic metrics snapshot to pair with the events.
    fn synthetic_metrics() -> MetricsSnapshot {
        let mut m = MetricsSnapshot::default();
        let mut h = crate::metrics::HistData::default();
        for v in [100u64, 200, 400, 800, 6400] {
            h.count += 1;
            h.sum += v;
            *h.buckets.entry(crate::metrics::bucket_index(v) as u32).or_insert(0) += 1;
        }
        m.hists.insert("sim.step".to_string(), h);
        m.gauges.insert(
            "pk.pool.lanes".to_string(),
            crate::metrics::GaugeData { value: 4, min: 1, max: 4, sets: 3 },
        );
        m
    }

    fn synthetic_snapshot() -> Snapshot {
        Snapshot {
            events: synthetic_events(),
            counters: [
                ("sim.particles_pushed".to_string(), 16384u64),
                ("pk.pool.dispatches".to_string(), 12u64),
            ]
            .into_iter()
            .collect(),
            dropped_events: 0,
            metrics: synthetic_metrics(),
        }
    }

    #[test]
    fn summary_json_is_byte_deterministic() {
        let snap = synthetic_snapshot();
        let a = summary_json(&snap);
        let b = summary_json(&snap);
        assert_eq!(a, b);
        assert!(a.contains("\"pk.pool.dispatches\": 12"));
        assert!(a.contains("\"dropped_events\": 0"));
        assert!(a.contains("\"name\": \"sim.push::lane\", \"count\": 2, \"total_ns\": 12900"));
        // streaming metrics render alongside the span stats
        assert!(a.contains("\"hists\": ["));
        assert!(a.contains("\"p99\": "));
        assert!(a.contains("\"name\": \"pk.pool.lanes\", \"value\": 4, \"min\": 1, \"max\": 4"));
    }

    #[test]
    fn prometheus_text_is_byte_deterministic_and_shaped() {
        let snap = synthetic_snapshot();
        let a = prometheus_text(&snap);
        assert_eq!(a, prometheus_text(&snap), "fixed snapshot must render identically");
        // counters with the _total convention
        assert!(a.contains("# TYPE sim_particles_pushed_total counter"));
        assert!(a.contains("sim_particles_pushed_total 16384"));
        // spans as summaries with sanitized names (colons are legal)
        assert!(a.contains("# TYPE sim_push::lane_ns summary"));
        assert!(a.contains("sim_step_ns{quantile=\"0.99\"} 9500"));
        // histograms as cumulative le buckets ending at +Inf
        assert!(a.contains("# TYPE sim_step histogram"));
        assert!(a.contains("_bucket{le=\"+Inf\"} 5"));
        assert!(a.contains("sim_step_count 5"));
        // gauges with watermarks
        assert!(a.contains("# TYPE pk_pool_lanes gauge"));
        assert!(a.contains("pk_pool_lanes 4"));
        assert!(a.contains("pk_pool_lanes_max 4"));
        assert!(a.contains("telemetry_dropped_events_total 0"));
    }

    #[test]
    fn prometheus_histogram_buckets_are_cumulative() {
        let snap = synthetic_snapshot();
        let out = prometheus_text(&snap);
        let counts: Vec<u64> = out
            .lines()
            .filter(|l| l.starts_with("sim_step_bucket"))
            .map(|l| l.rsplit(' ').next().unwrap().parse().unwrap())
            .collect();
        assert!(counts.windows(2).all(|w| w[0] <= w[1]), "le counts must be monotone");
        assert_eq!(*counts.last().unwrap(), 5, "+Inf bucket equals total count");
    }

    #[test]
    fn prom_name_sanitizes() {
        assert_eq!(prom_name("sim.push::lane"), "sim_push::lane");
        assert_eq!(prom_name("9lives"), "_9lives");
        assert_eq!(prom_name("ok_name:x"), "ok_name:x");
    }

    #[test]
    fn empty_inputs_render_valid_skeletons() {
        let empty = chrome_trace(&[]);
        assert!(empty.contains("process_name"));
        assert!(!empty.contains(",\n]"));
        let json = summary_json(&Snapshot::default());
        assert!(json.contains("\"counters\": {}"));
        assert!(json.contains("\"spans\": []"));
    }

    #[test]
    fn aggregate_computes_stats() {
        let stats = aggregate(&synthetic_events());
        // largest total first
        assert_eq!(stats[0].name, "sim.push::lane");
        assert_eq!(stats[0].count, 2);
        assert_eq!(stats[0].total_ns, 12_900);
        assert_eq!(stats[0].mean_ns, 6_450);
        assert_eq!(stats[0].p50_ns, 6_400);
        assert_eq!(stats[0].p95_ns, 6_500);
        assert_eq!(stats[0].max_ns, 6_500);
        assert_eq!(stats[1].name, "sim.step");
    }

    #[test]
    fn percentile_nearest_rank() {
        let d: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&d, 50.0), 50);
        assert_eq!(percentile(&d, 95.0), 95);
        assert_eq!(percentile(&d, 100.0), 100);
        assert_eq!(percentile(&[7], 95.0), 7);
        assert_eq!(percentile(&[], 50.0), 0);
    }

    #[test]
    fn summary_table_lists_every_span() {
        let table = format_summary(&aggregate(&synthetic_events()));
        assert!(table.lines().next().unwrap().contains("p95"));
        assert!(table.contains("sim.step"));
        assert!(table.contains("sim.push::lane"));
        // header + one row per name (the "odd" name embeds a raw newline,
        // so it contributes two lines)
        assert_eq!(table.lines().count(), 1 + 4 + 1);
    }
}
