//! Streaming metrics: lock-free log-bucketed histograms and gauges.
//!
//! Spans answer "*when* did this phase run and for how long"; histograms
//! answer "what does the *distribution* of that duration look like" without
//! storing one event per occurrence — a soak run records millions of
//! samples into a few kilobytes of buckets. Per Ruzicka et al.
//! (PAPERS.md), per-phase distributions (not means) are what expose
//! backend-specific tail behavior, so the percentile surface here
//! (p50/p95/p99) is what the bench suite, the tuner's cost model, and the
//! CI regression harness consume.
//!
//! ## Discipline (same as spans)
//!
//! * **Gate**: the [`hist!`]/[`gauge_set!`] macros are one relaxed atomic
//!   load when profiling is off — nothing is registered, formatted, or
//!   touched (regression-tested in `tests/overhead.rs` at ≤ 5 ns, with
//!   the enabled path held to ≤ 50 ns).
//! * **Lock-free recording**: a sample is three relaxed `fetch_add`s on
//!   the recording thread's stripe — no mutex anywhere on the hot path.
//!   Stripes keep concurrent lanes off each other's cache lines; the
//!   exporter merges them.
//! * **Determinism**: bucket counts are commutative sums, so any
//!   interleaving of a fixed sample multiset yields byte-identical
//!   snapshots and percentiles (proptested in `tests/metrics.rs`,
//!   including merge associativity).
//!
//! ## Bucket scheme
//!
//! Log-linear base-2 ("HDR-lite"): values `0..8` get exact unit buckets;
//! above that, each power-of-two octave is split into 8 linear
//! sub-buckets, so the relative quantization error is bounded by 1/8 =
//! 12.5% across the full `u64` range. 496 buckets cover everything from
//! 1 ns to ~584 years; snapshots store only the non-zero ones.
//! Percentiles are nearest-rank over bucket *floors* — a deterministic,
//! conservative (never over-reporting) readout.

use std::cell::Cell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};

/// Sub-buckets per octave as a power of two (8 → ≤12.5% relative error).
const SUB_BITS: u32 = 3;
/// Sub-buckets per octave.
const SUBS: usize = 1 << SUB_BITS;
/// Total bucket count: unit buckets 0..8, then 8 per octave for octaves
/// 3..=63.
pub const HIST_BUCKETS: usize = SUBS + (64 - SUB_BITS as usize) * SUBS;

/// Stripes per histogram: concurrent recorders spread round-robin so
/// worker lanes do not share bucket cache lines.
const HIST_STRIPES: usize = 8;

/// The bucket a value lands in.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v < SUBS as u64 {
        v as usize
    } else {
        let octave = 63 - v.leading_zeros() as usize; // floor(log2 v), ≥ 3
        let shift = octave as u32 - SUB_BITS;
        SUBS + (octave - SUB_BITS as usize) * SUBS + (((v >> shift) as usize) & (SUBS - 1))
    }
}

/// Smallest value that lands in bucket `idx` (the percentile readout
/// value, making reported quantiles deterministic underestimates by at
/// most 12.5%).
pub fn bucket_floor(idx: usize) -> u64 {
    if idx < SUBS {
        idx as u64
    } else {
        let octave = SUB_BITS as usize + (idx - SUBS) / SUBS;
        let sub = ((idx - SUBS) % SUBS) as u64;
        (SUBS as u64 + sub) << (octave - SUB_BITS as usize)
    }
}

// ---------------------------------------------------------------- stripes

static NEXT_STRIPE: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// This thread's stripe (round-robin on first use, like event shards).
    static STRIPE: Cell<usize> = const { Cell::new(usize::MAX) };
}

#[inline]
fn my_stripe() -> usize {
    STRIPE.with(|s| {
        let v = s.get();
        if v != usize::MAX {
            return v;
        }
        let v = NEXT_STRIPE.fetch_add(1, Ordering::Relaxed) % HIST_STRIPES;
        s.set(v);
        v
    })
}

// -------------------------------------------------------------- histogram

struct HistStripe {
    count: AtomicU64,
    sum: AtomicU64,
    buckets: Box<[AtomicU64]>,
}

impl HistStripe {
    fn new() -> Self {
        HistStripe {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            buckets: (0..HIST_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
        }
    }
}

/// A lock-free, log-bucketed, striped streaming histogram. Obtain a
/// process-lifetime handle with [`histogram`]; record hot-path samples
/// through the [`hist!`] macro (which caches the handle per call site and
/// applies the `enabled()` gate).
pub struct Histogram {
    name: String,
    stripes: Vec<HistStripe>,
}

impl Histogram {
    fn new(name: &str) -> Self {
        Histogram {
            name: name.to_string(),
            stripes: (0..HIST_STRIPES).map(|_| HistStripe::new()).collect(),
        }
    }

    /// Histogram name (the registry key).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Record one sample: three relaxed `fetch_add`s on this thread's
    /// stripe. Does **not** check [`crate::enabled`] — the `hist!` macro
    /// (or whoever holds the handle) gates before calling.
    #[inline]
    pub fn record(&self, v: u64) {
        let s = &self.stripes[my_stripe()];
        s.count.fetch_add(1, Ordering::Relaxed);
        s.sum.fetch_add(v, Ordering::Relaxed);
        s.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
    }

    /// Merge every stripe into one [`HistData`].
    pub fn snapshot(&self) -> HistData {
        let mut data = HistData::default();
        for s in &self.stripes {
            data.count += s.count.load(Ordering::Relaxed);
            data.sum += s.sum.load(Ordering::Relaxed);
            for (i, b) in s.buckets.iter().enumerate() {
                let v = b.load(Ordering::Relaxed);
                if v > 0 {
                    *data.buckets.entry(i as u32).or_insert(0) += v;
                }
            }
        }
        data
    }

    fn clear(&self) {
        for s in &self.stripes {
            s.count.store(0, Ordering::Relaxed);
            s.sum.store(0, Ordering::Relaxed);
            for b in s.buckets.iter() {
                b.store(0, Ordering::Relaxed);
            }
        }
    }
}

/// A merged histogram snapshot: sparse non-zero bucket counts. Mergeable
/// (bucket-wise addition — associative and commutative) and diffable, so
/// the bench suite reads per-target windows by subtracting two snapshots.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HistData {
    /// Total samples.
    pub count: u64,
    /// Sum of all sample values.
    pub sum: u64,
    /// Non-zero buckets: index → count, index-ordered.
    pub buckets: BTreeMap<u32, u64>,
}

impl HistData {
    /// Bucket-wise accumulate `other` into `self`.
    pub fn merge(&mut self, other: &HistData) {
        self.count += other.count;
        self.sum += other.sum;
        for (&i, &c) in &other.buckets {
            *self.buckets.entry(i).or_insert(0) += c;
        }
    }

    /// Samples recorded since `earlier` was taken (saturating, so a
    /// `reset` between the two snapshots yields "since the reset").
    pub fn delta_since(&self, earlier: &HistData) -> HistData {
        let mut out = HistData {
            count: self.count.saturating_sub(earlier.count),
            sum: self.sum.saturating_sub(earlier.sum),
            buckets: BTreeMap::new(),
        };
        for (&i, &c) in &self.buckets {
            let base = earlier.buckets.get(&i).copied().unwrap_or(0);
            if c > base {
                out.buckets.insert(i, c - base);
            }
        }
        out
    }

    /// Nearest-rank percentile over bucket floors (0 when empty).
    /// Deterministic for a fixed sample multiset regardless of recording
    /// order or stripe assignment.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((p / 100.0) * self.count as f64).ceil() as u64;
        let rank = rank.clamp(1, self.count);
        let mut cum = 0u64;
        for (&i, &c) in &self.buckets {
            cum += c;
            if cum >= rank {
                return bucket_floor(i as usize);
            }
        }
        // unreachable when count equals the bucket sum; be safe anyway
        self.buckets.keys().next_back().map_or(0, |&i| bucket_floor(i as usize))
    }

    /// Mean sample value (0 when empty).
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }
}

// ------------------------------------------------------------------ gauge

/// A last-value gauge with min/max watermarks. `value` reflects the most
/// recent [`Gauge::set`] (meaningful with one logical writer); `min`/`max`
/// are commutative watermarks and stay deterministic under concurrent
/// writers.
pub struct Gauge {
    value: AtomicI64,
    min: AtomicI64,
    max: AtomicI64,
    sets: AtomicU64,
}

impl Gauge {
    fn new() -> Self {
        Gauge {
            value: AtomicI64::new(0),
            min: AtomicI64::new(i64::MAX),
            max: AtomicI64::new(i64::MIN),
            sets: AtomicU64::new(0),
        }
    }

    /// Set the gauge. Does **not** check [`crate::enabled`] — the
    /// `gauge_set!` macro gates before calling.
    #[inline]
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
        self.sets.fetch_add(1, Ordering::Relaxed);
    }

    /// Add a delta and update the watermarks with the result.
    #[inline]
    pub fn add(&self, d: i64) {
        let v = self.value.fetch_add(d, Ordering::Relaxed) + d;
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
        self.sets.fetch_add(1, Ordering::Relaxed);
    }

    /// Current value/min/max/update-count.
    pub fn snapshot(&self) -> GaugeData {
        let sets = self.sets.load(Ordering::Relaxed);
        if sets == 0 {
            return GaugeData::default();
        }
        GaugeData {
            value: self.value.load(Ordering::Relaxed),
            min: self.min.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
            sets,
        }
    }

    fn clear(&self) {
        self.value.store(0, Ordering::Relaxed);
        self.min.store(i64::MAX, Ordering::Relaxed);
        self.max.store(i64::MIN, Ordering::Relaxed);
        self.sets.store(0, Ordering::Relaxed);
    }
}

/// A gauge snapshot.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GaugeData {
    /// Most recent value set.
    pub value: i64,
    /// Smallest value ever set.
    pub min: i64,
    /// Largest value ever set.
    pub max: i64,
    /// Number of updates.
    pub sets: u64,
}

// --------------------------------------------------------------- registry

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

static HISTOGRAMS: OnceLock<Mutex<BTreeMap<String, &'static Histogram>>> = OnceLock::new();
static GAUGES: OnceLock<Mutex<BTreeMap<String, &'static Gauge>>> = OnceLock::new();

fn hist_registry() -> &'static Mutex<BTreeMap<String, &'static Histogram>> {
    HISTOGRAMS.get_or_init(|| Mutex::new(BTreeMap::new()))
}

fn gauge_registry() -> &'static Mutex<BTreeMap<String, &'static Gauge>> {
    GAUGES.get_or_init(|| Mutex::new(BTreeMap::new()))
}

/// Process-lifetime handle to the named histogram, registering it on
/// first use. Handles are `&'static` (one bounded leak per distinct
/// name), so call sites cache them — the [`hist!`] macro does this
/// automatically — and [`crate::reset`] zeroes buckets in place without
/// invalidating anything.
pub fn histogram(name: &str) -> &'static Histogram {
    let mut reg = lock(hist_registry());
    if let Some(h) = reg.get(name) {
        return h;
    }
    let h: &'static Histogram = Box::leak(Box::new(Histogram::new(name)));
    reg.insert(name.to_string(), h);
    h
}

/// Process-lifetime handle to the named gauge (see [`histogram`]).
pub fn gauge(name: &str) -> &'static Gauge {
    let mut reg = lock(gauge_registry());
    if let Some(g) = reg.get(name) {
        return g;
    }
    let g: &'static Gauge = Box::leak(Box::new(Gauge::new()));
    reg.insert(name.to_string(), g);
    g
}

/// Record one sample into the named histogram when profiling is on.
/// Convenience for cold paths (one registry lock per call); hot paths use
/// the [`hist!`] macro, which caches the handle per call site.
pub fn record_hist(name: &str, v: u64) {
    if crate::enabled() {
        histogram(name).record(v);
    }
}

/// Record into a histogram by (possibly runtime-built) name without the
/// enabled gate — the internal path for `hspan` drops, whose gate ran at
/// span creation.
pub(crate) fn record_named(name: &str, v: u64) {
    histogram(name).record(v);
}

/// Every registered histogram and gauge, merged and name-ordered.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Histogram snapshots by name.
    pub hists: BTreeMap<String, HistData>,
    /// Gauge snapshots by name (never-set gauges omitted).
    pub gauges: BTreeMap<String, GaugeData>,
}

impl MetricsSnapshot {
    /// Histograms' activity since `earlier` (gauges pass through current
    /// values — they are not cumulative).
    pub fn delta_since(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        let mut out = MetricsSnapshot { hists: BTreeMap::new(), gauges: self.gauges.clone() };
        for (name, h) in &self.hists {
            let d = match earlier.hists.get(name) {
                Some(e) => h.delta_since(e),
                None => h.clone(),
            };
            if d.count > 0 {
                out.hists.insert(name.clone(), d);
            }
        }
        out
    }
}

/// Snapshot every registered histogram and gauge.
pub fn metrics_snapshot() -> MetricsSnapshot {
    let mut snap = MetricsSnapshot::default();
    for (name, h) in lock(hist_registry()).iter() {
        snap.hists.insert(name.clone(), h.snapshot());
    }
    for (name, g) in lock(gauge_registry()).iter() {
        let data = g.snapshot();
        if data.sets > 0 {
            snap.gauges.insert(name.clone(), data);
        }
    }
    snap
}

/// Zero every registered histogram and gauge in place (handles stay
/// valid). Called by [`crate::reset`].
pub(crate) fn reset_metrics() {
    for h in lock(hist_registry()).values() {
        h.clear();
    }
    for g in lock(gauge_registry()).values() {
        g.clear();
    }
}

/// Record a sample into a named histogram when profiling is enabled.
/// Disabled cost is one relaxed atomic load; the value expression is not
/// evaluated. The handle is looked up once per call site and cached in a
/// static, so the enabled path is the lookup-free [`Histogram::record`].
#[macro_export]
macro_rules! hist {
    ($name:expr, $value:expr) => {{
        if $crate::enabled() {
            static __VPIC_HIST: ::std::sync::OnceLock<&'static $crate::Histogram> =
                ::std::sync::OnceLock::new();
            __VPIC_HIST.get_or_init(|| $crate::histogram($name)).record($value);
        }
    }};
}

/// Set a named gauge when profiling is enabled (same gate and per-site
/// handle caching as [`hist!`]).
#[macro_export]
macro_rules! gauge_set {
    ($name:expr, $value:expr) => {{
        if $crate::enabled() {
            static __VPIC_GAUGE: ::std::sync::OnceLock<&'static $crate::Gauge> =
                ::std::sync::OnceLock::new();
            __VPIC_GAUGE.get_or_init(|| $crate::gauge($name)).set($value);
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_and_floor_roundtrip() {
        // exact unit buckets below 8
        for v in 0..8u64 {
            assert_eq!(bucket_index(v), v as usize);
            assert_eq!(bucket_floor(v as usize), v);
        }
        // floors are the smallest member of their bucket, error ≤ 12.5%
        for v in [8u64, 9, 15, 16, 100, 1_000, 123_456, u64::MAX / 3, u64::MAX] {
            let idx = bucket_index(v);
            let floor = bucket_floor(idx);
            assert!(floor <= v, "floor {floor} above value {v}");
            assert!(v - floor <= floor / 8, "bucket too wide at {v}: floor {floor}");
            assert_eq!(bucket_index(floor), idx, "floor must land in its own bucket");
        }
        assert!(bucket_index(u64::MAX) < HIST_BUCKETS);
    }

    #[test]
    fn bucket_indices_are_monotone() {
        let mut prev = bucket_index(0);
        for v in 1..100_000u64 {
            let idx = bucket_index(v);
            assert!(idx >= prev, "bucket index decreased at {v}");
            prev = idx;
        }
    }

    #[test]
    fn percentiles_read_back_recorded_values() {
        let h = Histogram::new("metrics.test.readback");
        for v in 1..=100u64 {
            h.record(v);
        }
        let d = h.snapshot();
        assert_eq!(d.count, 100);
        assert_eq!(d.sum, 5050);
        // exact below 8; within 12.5% above
        let p50 = d.percentile(50.0);
        assert!((44..=50).contains(&p50), "p50 {p50}");
        let p99 = d.percentile(99.0);
        assert!((87..=99).contains(&p99), "p99 {p99}");
        assert_eq!(d.percentile(100.0), bucket_floor(bucket_index(100)));
    }

    #[test]
    fn empty_histogram_percentile_is_zero() {
        assert_eq!(HistData::default().percentile(50.0), 0);
        assert_eq!(HistData::default().mean(), 0);
    }

    #[test]
    fn merge_adds_and_delta_subtracts() {
        let a = Histogram::new("metrics.test.merge.a");
        let b = Histogram::new("metrics.test.merge.b");
        for v in [1u64, 10, 100] {
            a.record(v);
        }
        for v in [2u64, 20, 200, 2000] {
            b.record(v);
        }
        let (sa, sb) = (a.snapshot(), b.snapshot());
        let mut merged = sa.clone();
        merged.merge(&sb);
        assert_eq!(merged.count, 7);
        assert_eq!(merged.sum, sa.sum + sb.sum);
        let back = merged.delta_since(&sb);
        assert_eq!(back, sa, "delta must invert merge");
    }

    #[test]
    fn gauge_tracks_value_and_watermarks() {
        let g = Gauge::new();
        assert_eq!(g.snapshot(), GaugeData::default());
        g.set(5);
        g.set(-3);
        g.set(2);
        let d = g.snapshot();
        assert_eq!(d.value, 2);
        assert_eq!(d.min, -3);
        assert_eq!(d.max, 5);
        assert_eq!(d.sets, 3);
        g.add(10);
        assert_eq!(g.snapshot().value, 12);
        assert_eq!(g.snapshot().max, 12);
    }

    #[test]
    fn registry_returns_same_handle_and_reset_keeps_it_valid() {
        let h1 = histogram("metrics.test.registry");
        let h2 = histogram("metrics.test.registry");
        assert!(std::ptr::eq(h1, h2));
        h1.record(42);
        assert!(h2.snapshot().count >= 1);
        reset_metrics();
        assert_eq!(h1.snapshot().count, 0, "reset zeroes in place");
        h1.record(1); // handle still usable
        assert!(h1.snapshot().count >= 1);
    }

    #[test]
    fn snapshot_delta_isolates_a_window() {
        let h = histogram("metrics.test.window");
        h.record(7);
        let before = metrics_snapshot();
        h.record(9);
        h.record(11);
        let delta = metrics_snapshot().delta_since(&before);
        let d = &delta.hists["metrics.test.window"];
        assert_eq!(d.count, 2);
        assert_eq!(d.sum, 20);
    }
}
