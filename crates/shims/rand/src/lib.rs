//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! The build environment for this repository has no access to crates.io,
//! so the external dependencies are replaced by local shims that provide
//! exactly the API surface the workspace uses (see DESIGN.md §2). This
//! shim covers:
//!
//! * [`RngCore`] / [`Rng`] with `gen_range` over integer and float ranges
//!   and `gen` for a few primitive types,
//! * [`SeedableRng`] with `from_seed` / `seed_from_u64` (the same
//!   SplitMix64 seed expansion upstream rand uses),
//! * [`seq::SliceRandom`] with `shuffle` and `choose`.
//!
//! Generators are deterministic for a fixed seed, which is all the
//! workspace relies on; the streams do **not** match upstream `rand`
//! bit-for-bit.

use std::ops::Range;

/// Core random-number source: 32/64-bit words and byte fills.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for c in &mut chunks {
            c.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let w = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&w[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A type that can be sampled uniformly from a range by an [`Rng`].
pub trait SampleRange<T> {
    /// Draw one uniform sample from `self`.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (self.start as i128 + v) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (lo as i128 + v) as $t
            }
        }
    )*};
}

impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                // 53 uniform mantissa bits in [0, 1)
                let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
                let v = self.start as f64 + unit * (self.end as f64 - self.start as f64);
                // rounding can land exactly on `end` for narrow ranges
                (v as $t).clamp(self.start, self.end.next_down().max(self.start))
            }
        }
    )*};
}

impl_range_float!(f32, f64);

/// Uniform full-domain generation for `Rng::gen`.
pub trait Standard: Sized {
    /// Sample one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard {
    ($($t:ty => $e:expr),*) => {$(
        impl Standard for $t {
            #[inline]
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                let f: fn(&mut R) -> $t = $e;
                f(rng)
            }
        }
    )*};
}

impl_standard!(
    u32 => |r| r.next_u32(),
    u64 => |r| r.next_u64(),
    usize => |r| r.next_u64() as usize,
    i32 => |r| r.next_u32() as i32,
    i64 => |r| r.next_u64() as i64,
    bool => |r| r.next_u32() & 1 == 1,
    f32 => |r| (r.next_u32() >> 8) as f32 / (1u32 << 24) as f32,
    f64 => |r| (r.next_u64() >> 11) as f64 / (1u64 << 53) as f64
);

/// User-facing sampling methods, blanket-implemented for every source.
pub trait Rng: RngCore {
    /// Uniform sample from `range` (half-open or inclusive).
    #[inline]
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Sample a value of `T` from its full/default domain.
    #[inline]
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Bernoulli sample with probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministic construction from a seed.
pub trait SeedableRng: Sized {
    /// Raw seed type (a byte array).
    type Seed: Default + AsMut<[u8]>;

    /// Build from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Build from a `u64` by expanding it with SplitMix64 (matching the
    /// construction upstream rand documents for this method).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            // SplitMix64 step
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

pub mod rngs {
    //! Small self-contained generators.

    use super::{RngCore, SeedableRng};

    /// A fast xoshiro256**-style generator (the `SmallRng` analog).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        #[inline]
        fn next_u64(&mut self) -> u64 {
            let out = self.s[1]
                .wrapping_mul(5)
                .rotate_left(7)
                .wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, w) in s.iter_mut().enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(&seed[i * 8..i * 8 + 8]);
                *w = u64::from_le_bytes(b);
            }
            // avoid the all-zero state
            if s.iter().all(|&w| w == 0) {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            SmallRng { s }
        }
    }
}

pub mod seq {
    //! Sequence-related sampling (`SliceRandom`).

    use super::{Rng, RngCore};

    /// Shuffling and choosing on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly chosen element, `None` when empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

/// Prelude matching `rand::prelude::*` for the used subset.
pub mod prelude {
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(10u32..20);
            assert!((10..20).contains(&v));
            let f = rng.gen_range(-1.0f32..1.0);
            assert!((-1.0..1.0).contains(&f));
            let i = rng.gen_range(-5i32..5);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "a 100-element shuffle should move something");
    }

    #[test]
    fn gen_bool_is_roughly_fair() {
        let mut rng = SmallRng::seed_from_u64(11);
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4000..6000).contains(&heads), "{heads}");
    }
}
