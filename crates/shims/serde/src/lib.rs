//! Offline stand-in for `serde` (serialization only).
//!
//! The workspace only ever *writes* JSON results (`bench::save_json`), so
//! this shim models serialization as conversion to a small [`Value`] tree
//! that the `serde_json` shim renders. `#[derive(Serialize)]` is provided
//! by the sibling `serde_derive` proc-macro for structs with named fields
//! and enums with unit or struct variants — the only shapes the workspace
//! uses.

pub use serde_derive::Serialize;

/// A JSON-shaped value tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true`/`false`
    Bool(bool),
    /// Signed integer.
    Int(i64),
    /// Unsigned integer.
    UInt(u64),
    /// Floating point.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Seq(Vec<Value>),
    /// Object, in insertion order.
    Map(Vec<(String, Value)>),
}

/// Conversion into a [`Value`] tree (the role of `serde::Serialize`).
pub trait Serialize {
    /// Build the value tree for `self`.
    fn to_value(&self) -> Value;
}

macro_rules! impl_ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::UInt(*self as u64) }
        }
    )*};
}

macro_rules! impl_ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::Int(*self as i64) }
        }
    )*};
}

impl_ser_uint!(u8, u16, u32, u64, usize);
impl_ser_int!(i8, i16, i32, i64, isize);

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(*self as f64)
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<V: Serialize> Serialize for std::collections::BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Map(self.iter().map(|(k, v)| (k.clone(), v.to_value())).collect())
    }
}

macro_rules! impl_ser_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$n.to_value()),+])
            }
        }
    )*};
}

impl_ser_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_map_to_expected_variants() {
        assert_eq!(3u32.to_value(), Value::UInt(3));
        assert_eq!((-4i64).to_value(), Value::Int(-4));
        assert_eq!(1.5f32.to_value(), Value::Float(1.5));
        assert_eq!(true.to_value(), Value::Bool(true));
        assert_eq!("hi".to_value(), Value::Str("hi".into()));
        assert_eq!(None::<u32>.to_value(), Value::Null);
    }

    #[test]
    fn containers_nest() {
        let v = vec![(1usize, 2.0f64), (3, 4.0)];
        match v.to_value() {
            Value::Seq(items) => {
                assert_eq!(items.len(), 2);
                assert_eq!(items[0], Value::Seq(vec![Value::UInt(1), Value::Float(2.0)]));
            }
            other => panic!("expected seq, got {other:?}"),
        }
    }

    #[test]
    fn derive_handles_structs_and_enums() {
        #[derive(Serialize)]
        struct Point {
            x: f64,
            y: f64,
        }

        #[derive(Serialize)]
        enum Kind {
            Unit,
            Data { n: u32 },
        }

        let p = Point { x: 1.0, y: -2.0 };
        assert_eq!(
            p.to_value(),
            Value::Map(vec![
                ("x".into(), Value::Float(1.0)),
                ("y".into(), Value::Float(-2.0)),
            ])
        );
        assert_eq!(Kind::Unit.to_value(), Value::Str("Unit".into()));
        assert_eq!(
            Kind::Data { n: 7 }.to_value(),
            Value::Map(vec![(
                "Data".into(),
                Value::Map(vec![("n".into(), Value::UInt(7))])
            )])
        );
    }
}
