//! Offline stand-in for `serde_derive`.
//!
//! A dependency-free `#[derive(Serialize)]` (no `syn`/`quote`): the input
//! `TokenStream` is walked by hand, the impl is rendered as source text and
//! parsed back. Supported shapes — the only ones the workspace uses:
//!
//! * structs with named fields,
//! * enums whose variants are unit (`Kind`) or struct-like
//!   (`Kind { a: T }`).
//!
//! Anything else (tuple structs, tuple variants, generics) produces a
//! `compile_error!` naming the unsupported shape.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match generate(input) {
        Ok(code) => code.parse().expect("generated impl must parse"),
        Err(msg) => format!("compile_error!({msg:?});").parse().expect("error must parse"),
    }
}

fn generate(input: TokenStream) -> Result<String, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    // Skip outer attributes (#[...]) and visibility (pub, pub(...)).
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => i += 2,
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            _ => break,
        }
    }

    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("derive(Serialize): expected struct/enum, got {other:?}")),
    };
    i += 1;

    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("derive(Serialize): expected type name, got {other:?}")),
    };
    i += 1;

    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!("derive(Serialize): generics on `{name}` are not supported by the offline shim"));
    }

    let body = match tokens.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        _ => {
            return Err(format!(
                "derive(Serialize): `{name}` must be a brace-bodied {kind} (tuple/unit shapes unsupported)"
            ))
        }
    };

    match kind.as_str() {
        "struct" => {
            let fields = named_fields(body)?;
            let entries: Vec<String> = fields
                .iter()
                .map(|f| format!("(String::from({f:?}), serde::Serialize::to_value(&self.{f}))"))
                .collect();
            Ok(format!(
                "impl serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> serde::Value {{\n\
                         serde::Value::Map(vec![{}])\n\
                     }}\n\
                 }}",
                entries.join(", ")
            ))
        }
        "enum" => {
            let variants = enum_variants(body)?;
            let arms: Vec<String> = variants
                .iter()
                .map(|(vname, fields)| match fields {
                    None => format!(
                        "{name}::{vname} => serde::Value::Str(String::from({vname:?}))"
                    ),
                    Some(fs) => {
                        let binds = fs.join(", ");
                        let entries: Vec<String> = fs
                            .iter()
                            .map(|f| format!("(String::from({f:?}), serde::Serialize::to_value({f}))"))
                            .collect();
                        format!(
                            "{name}::{vname} {{ {binds} }} => serde::Value::Map(vec![\
                                 (String::from({vname:?}), serde::Value::Map(vec![{}]))\
                             ])",
                            entries.join(", ")
                        )
                    }
                })
                .collect();
            Ok(format!(
                "impl serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> serde::Value {{\n\
                         match self {{ {} }}\n\
                     }}\n\
                 }}",
                arms.join(", ")
            ))
        }
        other => Err(format!("derive(Serialize): unsupported item kind `{other}`")),
    }
}

/// Parse `name: Type, ...` (named struct fields), skipping attributes,
/// visibility, and type tokens (tracking `<...>` nesting through commas).
fn named_fields(body: TokenStream) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        // skip field attributes and visibility
        loop {
            match tokens.get(i) {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => i += 2,
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    i += 1;
                    if let Some(TokenTree::Group(g)) = tokens.get(i) {
                        if g.delimiter() == Delimiter::Parenthesis {
                            i += 1;
                        }
                    }
                }
                _ => break,
            }
        }
        let Some(tok) = tokens.get(i) else { break };
        let TokenTree::Ident(id) = tok else {
            return Err(format!("derive(Serialize): expected field name, got {tok:?}"));
        };
        fields.push(id.to_string());
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => return Err(format!("derive(Serialize): expected `:` after field, got {other:?}")),
        }
        // skip the type until a comma at angle-bracket depth 0
        let mut depth = 0i32;
        while let Some(tok) = tokens.get(i) {
            if let TokenTree::Punct(p) = tok {
                match p.as_char() {
                    '<' => depth += 1,
                    '>' => depth -= 1,
                    ',' if depth == 0 => {
                        i += 1;
                        break;
                    }
                    _ => {}
                }
            }
            i += 1;
        }
    }
    Ok(fields)
}

/// Parse enum variants: `Unit` or `Name { field: Type, ... }`.
/// Returns `(variant, None)` for unit variants and `(variant, Some(fields))`
/// for struct variants.
type Variants = Vec<(String, Option<Vec<String>>)>;

fn enum_variants(body: TokenStream) -> Result<Variants, String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        loop {
            match tokens.get(i) {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => i += 2,
                _ => break,
            }
        }
        let Some(tok) = tokens.get(i) else { break };
        let TokenTree::Ident(id) = tok else {
            return Err(format!("derive(Serialize): expected variant name, got {tok:?}"));
        };
        let vname = id.to_string();
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                variants.push((vname, Some(named_fields(g.stream())?)));
                i += 1;
                if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
                    i += 1;
                }
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                return Err(format!(
                    "derive(Serialize): tuple variant `{vname}` is not supported by the offline shim"
                ));
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => {
                variants.push((vname, None));
                i += 1;
            }
            None => {
                variants.push((vname, None));
            }
            other => {
                return Err(format!(
                    "derive(Serialize): unexpected token after variant `{vname}`: {other:?}"
                ))
            }
        }
    }
    Ok(variants)
}
