//! Offline stand-in for `criterion`.
//!
//! Mirrors the criterion API shape the workspace's benches use
//! (`benchmark_group`, `bench_with_input`, `iter`, `iter_batched`,
//! `Throughput::Elements`, `criterion_group!`/`criterion_main!`) with a
//! plain wall-clock harness: calibrated inner loops, a median over
//! `sample_size` samples, one `name ... time: ... ns/iter` line per
//! benchmark. No statistical analysis, plots, or saved baselines.
//!
//! Mode selection matches criterion's CLI contract: `--bench` (what
//! `cargo bench` passes) runs full measurements; anything else — notably
//! `--test` from `cargo test`, or a direct run — executes each benchmark
//! once so the target doubles as a smoke test.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

const CALIBRATION_TARGET: Duration = Duration::from_millis(2);
const MAX_CALIBRATION_ITERS: u64 = 1 << 24;

/// Top-level harness handle.
pub struct Criterion {
    quick: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let args: Vec<String> = std::env::args().collect();
        let quick = !args.iter().any(|a| a == "--bench") || args.iter().any(|a| a == "--test");
        Criterion { quick }
    }
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            throughput: None,
            quick: self.quick,
            _parent: std::marker::PhantomData,
        }
    }

    /// Single benchmark outside a group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self {
        let quick = self.quick;
        run_one(&id.into_benchmark_id().label(), 10, None, quick, &mut f);
        self
    }
}

/// Per-element / per-byte normalization for reports.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Batch sizing hint for [`Bencher::iter_batched`]; the shim times each
/// routine call individually, so the hint is accepted but unused.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Input too large to amortize across a batch.
    LargeInput,
    /// Small input, batchable.
    SmallInput,
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: Option<String>,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// `function/parameter` form.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { function: Some(function.into()), parameter: Some(parameter.to_string()) }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { function: None, parameter: Some(parameter.to_string()) }
    }

    fn label(&self) -> String {
        match (&self.function, &self.parameter) {
            (Some(f), Some(p)) => format!("{f}/{p}"),
            (Some(f), None) => f.clone(),
            (None, Some(p)) => p.clone(),
            (None, None) => String::from("bench"),
        }
    }
}

/// Conversion into [`BenchmarkId`] (criterion's `IntoBenchmarkId`).
pub trait IntoBenchmarkId {
    /// Convert.
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { function: Some(self.to_string()), parameter: None }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { function: Some(self), parameter: None }
    }
}

/// A group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    quick: bool,
    _parent: std::marker::PhantomData<&'a mut Criterion>,
}

impl BenchmarkGroup<'_> {
    /// Number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Normalization used in the printed throughput column.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Benchmark with an explicit input value.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.label());
        run_one(&label, self.sample_size, self.throughput, self.quick, &mut |b| f(b, input));
        self
    }

    /// Benchmark without an input value.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into_benchmark_id().label());
        run_one(&label, self.sample_size, self.throughput, self.quick, &mut f);
        self
    }

    /// End the group (report separator).
    pub fn finish(self) {}
}

fn run_one(
    label: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    quick: bool,
    f: &mut dyn FnMut(&mut Bencher),
) {
    let mut b = Bencher { quick, sample_size, samples_ns: Vec::new() };
    f(&mut b);
    if quick {
        println!("{label}: ok (test mode, 1 iteration)");
        return;
    }
    let mut ns = b.samples_ns;
    if ns.is_empty() {
        println!("{label}: no samples recorded");
        return;
    }
    ns.sort_by(|a, b| a.partial_cmp(b).expect("sample times are finite"));
    let median = ns[ns.len() / 2];
    let (lo, hi) = (ns[0], ns[ns.len() - 1]);
    let rate = match throughput {
        Some(Throughput::Elements(n)) => format!("  thrpt: {}/s", si(n as f64 / (median * 1e-9))),
        Some(Throughput::Bytes(n)) => format!("  thrpt: {}B/s", si(n as f64 / (median * 1e-9))),
        None => String::new(),
    };
    println!(
        "{label}: time: [{} {} {}]{}",
        fmt_ns(lo),
        fmt_ns(median),
        fmt_ns(hi),
        rate
    );
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

fn si(v: f64) -> String {
    if v >= 1e9 {
        format!("{:.2} G", v / 1e9)
    } else if v >= 1e6 {
        format!("{:.2} M", v / 1e6)
    } else if v >= 1e3 {
        format!("{:.2} K", v / 1e3)
    } else {
        format!("{v:.1} ")
    }
}

/// Measurement driver handed to benchmark closures.
pub struct Bencher {
    quick: bool,
    sample_size: usize,
    /// ns per iteration, one entry per sample.
    samples_ns: Vec<f64>,
}

impl Bencher {
    /// Time `f`, amortizing timer overhead over a calibrated inner loop.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        if self.quick {
            black_box(f());
            return;
        }
        // calibrate: double the loop count until one batch ≥ target
        let mut iters: u64 = 1;
        let mut elapsed;
        loop {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            elapsed = t.elapsed();
            if elapsed >= CALIBRATION_TARGET || iters >= MAX_CALIBRATION_ITERS {
                break;
            }
            iters *= 2;
        }
        self.samples_ns.push(elapsed.as_nanos() as f64 / iters as f64);
        for _ in 1..self.sample_size {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            self.samples_ns.push(t.elapsed().as_nanos() as f64 / iters as f64);
        }
    }

    /// Time `routine` on fresh inputs from `setup`; setup cost excluded.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        if self.quick {
            black_box(routine(setup()));
            return;
        }
        for _ in 0..self.sample_size {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            self.samples_ns.push(t.elapsed().as_nanos() as f64);
        }
    }

    /// Like `iter_batched` but the routine takes `&mut I`.
    pub fn iter_batched_ref<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(&mut I) -> O,
        _size: BatchSize,
    ) {
        if self.quick {
            black_box(routine(&mut setup()));
            return;
        }
        for _ in 0..self.sample_size {
            let mut input = setup();
            let t = Instant::now();
            black_box(routine(&mut input));
            self.samples_ns.push(t.elapsed().as_nanos() as f64);
        }
    }
}

/// Bundle benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Entry point running one or more groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_mode_runs_each_closure_once() {
        let mut c = Criterion { quick: true };
        let mut g = c.benchmark_group("g");
        let mut calls = 0usize;
        g.sample_size(50).bench_with_input(BenchmarkId::from_parameter(1), &(), |b, _| {
            b.iter(|| calls += 1)
        });
        g.finish();
        assert_eq!(calls, 1);
    }

    #[test]
    fn measured_mode_collects_samples() {
        let mut b = Bencher { quick: false, sample_size: 4, samples_ns: Vec::new() };
        let mut x = 0u64;
        b.iter(|| {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            x
        });
        assert_eq!(b.samples_ns.len(), 4);
        assert!(b.samples_ns.iter().all(|&s| s > 0.0));
    }

    #[test]
    fn id_labels() {
        assert_eq!(BenchmarkId::from_parameter(8).label(), "8");
        assert_eq!(BenchmarkId::new("axpy", "serial").label(), "axpy/serial");
    }
}
