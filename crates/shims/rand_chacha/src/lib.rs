//! Offline stand-in for the `rand_chacha` crate.
//!
//! Implements a genuine ChaCha8 block function (RFC 8439 core, 8 rounds)
//! behind the local `rand` shim's [`RngCore`]/[`SeedableRng`] traits. For
//! a fixed seed the stream is fully deterministic and of cryptographic
//! mixing quality, which is what the workspace's "deterministic shuffle"
//! and particle-loading call sites rely on; it does **not** reproduce
//! upstream `rand_chacha`'s exact word order.

use rand::{RngCore, SeedableRng};

/// The ChaCha8 generator (`rand_chacha::ChaCha8Rng` analog).
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// Key + constant + counter/nonce state laid out as in RFC 8439.
    state: [u32; 16],
    /// Current keystream block.
    block: [u32; 16],
    /// Next unread word in `block` (16 = exhausted).
    cursor: usize,
}

const CHACHA_CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646E, 0x7962_2D32, 0x6B20_6574];
const ROUNDS: usize = 8;

#[inline(always)]
fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut working = self.state;
        for _ in 0..ROUNDS / 2 {
            // column round
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            // diagonal round
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (o, (&w, &s)) in self.block.iter_mut().zip(working.iter().zip(&self.state)) {
            *o = w.wrapping_add(s);
        }
        self.cursor = 0;
        // 64-bit block counter in words 12–13
        let (lo, carry) = self.state[12].overflowing_add(1);
        self.state[12] = lo;
        if carry {
            self.state[13] = self.state[13].wrapping_add(1);
        }
    }

    /// Current 64-bit block counter (diagnostics/tests).
    pub fn word_pos(&self) -> u64 {
        (self.state[12] as u64) | ((self.state[13] as u64) << 32)
    }
}

impl RngCore for ChaCha8Rng {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        if self.cursor >= 16 {
            self.refill();
        }
        let w = self.block[self.cursor];
        self.cursor += 1;
        w
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CHACHA_CONSTANTS);
        for (i, chunk) in seed.chunks_exact(4).enumerate() {
            state[4 + i] = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        // counter (12–13) and nonce (14–15) start at zero
        let mut rng = ChaCha8Rng { state, block: [0; 16], cursor: 16 };
        rng.refill();
        rng
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn fixed_seed_reproduces_stream() {
        let mut a = ChaCha8Rng::seed_from_u64(0xC0FFEE);
        let mut b = ChaCha8Rng::seed_from_u64(0xC0FFEE);
        let va: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..64).map(|_| b.next_u64()).collect();
        assert_eq!(va, vb);
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn counter_advances_across_blocks() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let start = rng.word_pos();
        for _ in 0..40 {
            rng.next_u32(); // > one 16-word block
        }
        assert!(rng.word_pos() > start);
    }

    #[test]
    fn uniformity_smoke_test() {
        let mut rng = ChaCha8Rng::seed_from_u64(123);
        let mut counts = [0usize; 16];
        for _ in 0..16_000 {
            counts[rng.gen_range(0..16usize)] += 1;
        }
        for &c in &counts {
            assert!((800..1200).contains(&c), "bucket far from uniform: {c}");
        }
    }
}
