//! Offline stand-in for `proptest`.
//!
//! Provides the subset of the proptest API the workspace uses:
//! [`Strategy`] over integer/float ranges, [`any`], tuples, and
//! [`prop::collection::vec`]; the [`proptest!`] macro with
//! `prop_assert!` / `prop_assert_eq!` / `prop_assume!`. Differences from
//! upstream, by design of this offline shim:
//!
//! * **no shrinking** — a failing case reports the generated inputs as-is;
//! * **no persistence** — `.proptest-regressions` files are not read or
//!   written (pinned historical failures should be promoted to plain
//!   `#[test]`s);
//! * case count comes from `PROPTEST_CASES` (default 64) and the RNG seed
//!   is derived from the test name, so every run is deterministic.

use std::fmt::Debug;

/// Per-test deterministic RNG (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeded construction.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed ^ 0x9E37_79B9_7F4A_7C15 }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }

    /// Uniform f64 in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Why a single generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// Assertion failure: the property is violated.
    Fail(String),
    /// `prop_assume!` rejected the inputs; try another case.
    Reject(String),
}

/// A value generator (the role of `proptest::strategy::Strategy`).
pub trait Strategy {
    /// Generated type.
    type Value: Debug + Clone;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

macro_rules! impl_strategy_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128 % span) as i128;
                (self.start as i128 + v) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128 % span) as i128;
                (lo as i128 + v) as $t
            }
        }
    )*};
}

impl_strategy_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_strategy_float_range {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let v = self.start as f64
                    + rng.unit_f64() * (self.end as f64 - self.start as f64);
                (v as $t).clamp(self.start, self.end.next_down().max(self.start))
            }
        }
    )*};
}

impl_strategy_float_range!(f32, f64);

/// Full-domain generation for [`any`].
pub trait Arbitrary: Debug + Clone {
    /// Draw one value from the type's canonical strategy.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary {
    ($($t:ty => $e:expr),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                let f: fn(&mut TestRng) -> $t = $e;
                f(rng)
            }
        }
    )*};
}

impl_arbitrary!(
    bool => |r| r.next_u64() & 1 == 1,
    u8 => |r| r.next_u64() as u8,
    u16 => |r| r.next_u64() as u16,
    u32 => |r| r.next_u64() as u32,
    u64 => |r| r.next_u64(),
    usize => |r| r.next_u64() as usize,
    i8 => |r| r.next_u64() as i8,
    i16 => |r| r.next_u64() as i16,
    i32 => |r| r.next_u64() as i32,
    i64 => |r| r.next_u64() as i64,
    isize => |r| r.next_u64() as isize,
    f32 => |r| r.unit_f64() as f32,
    f64 => |r| r.unit_f64()
);

/// Strategy produced by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T` (`proptest::arbitrary::any`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any { _marker: std::marker::PhantomData }
}

macro_rules! impl_strategy_tuple {
    ($(($($n:tt $s:ident),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.sample(rng),)+)
            }
        }
    )*};
}

impl_strategy_tuple! {
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
}

/// Length bounds for collection strategies.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    /// Inclusive lower bound.
    pub min: usize,
    /// Exclusive upper bound.
    pub max: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n + 1 }
    }
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange { min: r.start, max: r.end }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> Self {
        SizeRange { min: *r.start(), max: *r.end() + 1 }
    }
}

pub mod collection {
    //! Collection strategies (`prop::collection`).

    use super::{SizeRange, Strategy, TestRng};

    /// Strategy for `Vec<S::Value>` with lengths drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `prop::collection::vec(element, 0..300)`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.max - self.size.min) as u64;
            let len = self.size.min + if span == 0 { 0 } else { rng.below(span) as usize };
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// The `prop` facade module (`prop::collection::vec`, ...).
pub mod prop {
    pub use crate::collection;
}

/// Number of cases per property (`PROPTEST_CASES`, default 64).
pub fn case_count() -> usize {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(64)
}

/// Deterministic seed derived from the test name (FNV-1a).
pub fn seed_for(name: &str) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Driver used by the [`proptest!`] expansion: runs `case` repeatedly,
/// counting rejects, and panics on the first failing case.
pub fn run_cases(name: &str, mut case: impl FnMut(&mut TestRng) -> Result<(), TestCaseError>) {
    let cases = case_count();
    let max_rejects = cases.saturating_mul(64);
    let mut rng = TestRng::new(seed_for(name));
    let mut passed = 0usize;
    let mut rejected = 0usize;
    while passed < cases {
        match case(&mut rng) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject(_)) => {
                rejected += 1;
                if rejected > max_rejects {
                    panic!(
                        "proptest `{name}`: too many input rejections \
                         ({rejected} rejects for {passed} passes)"
                    );
                }
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!("proptest `{name}` failed after {passed} passing case(s): {msg}");
            }
        }
    }
}

/// Defines property tests. Each function runs `PROPTEST_CASES` random
/// cases; any `prop_assert*` failure panics with the generated inputs.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let strategies = ($($strat,)+);
                let ($($arg,)+) = &strategies;
                $crate::run_cases(stringify!($name), |rng| {
                    $(let $arg = $crate::Strategy::sample($arg, rng);)+
                    // rendered before the body runs: the body may move the
                    // generated values
                    let inputs = {
                        let mut s = String::new();
                        $(
                            s.push_str(concat!(stringify!($arg), " = "));
                            s.push_str(&format!("{:?}, ", &$arg));
                        )+
                        s
                    };
                    let outcome = {
                        let body = || -> ::std::result::Result<(), $crate::TestCaseError> {
                            $body
                            Ok(())
                        };
                        match ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(body)) {
                            Ok(r) => r,
                            Err(cause) => {
                                let msg = if let Some(s) = cause.downcast_ref::<&str>() {
                                    (*s).to_string()
                                } else if let Some(s) = cause.downcast_ref::<String>() {
                                    s.clone()
                                } else {
                                    "panic".to_string()
                                };
                                Err($crate::TestCaseError::Fail(format!("panicked: {msg}")))
                            }
                        }
                    };
                    outcome.map_err(|e| match e {
                        $crate::TestCaseError::Fail(m) => $crate::TestCaseError::Fail(
                            format!("{m}\n    inputs: {inputs}")
                        ),
                        reject => reject,
                    })
                });
            }
        )*
    };
}

/// Asserts a condition inside a property; on failure the case (with its
/// inputs) is reported instead of a bare panic.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a property (compares by reference, reports both
/// values on failure).
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr) => {{
        let (l, r) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($lhs), stringify!($rhs), l, r
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$lhs, &$rhs);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)+), l, r
            )));
        }
    }};
}

/// Discards the current case when the precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

/// Prelude matching `proptest::prelude::*` for the used subset.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assume, proptest, Strategy, TestCaseError,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        /// Generated values respect their range bounds.
        #[test]
        fn ranges_in_bounds(a in 3usize..10, f in -2.0f32..2.0, b in any::<bool>()) {
            prop_assert!((3..10).contains(&a));
            prop_assert!((-2.0..2.0).contains(&f));
            let _ = b;
        }

        /// Vec strategies respect their size range.
        #[test]
        fn vec_lengths(v in prop::collection::vec((0u64..50, any::<i32>()), 2..30)) {
            prop_assert!(v.len() >= 2 && v.len() < 30, "len {}", v.len());
            for &(k, _) in &v {
                prop_assert!(k < 50);
            }
        }

        /// Assume rejects without failing.
        #[test]
        fn assume_filters(n in 0u32..100) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::TestRng::new(crate::seed_for("x"));
        let mut b = crate::TestRng::new(crate::seed_for("x"));
        assert_eq!(
            (0..32).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..32).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn failing_property_reports_inputs() {
        let result = std::panic::catch_unwind(|| {
            crate::run_cases("always_fails", |_rng| {
                Err(crate::TestCaseError::Fail("expected failure".into()))
            });
        });
        let msg = *result.unwrap_err().downcast::<String>().unwrap();
        assert!(msg.contains("expected failure"), "{msg}");
    }
}
