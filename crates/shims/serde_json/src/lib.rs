//! Offline stand-in for `serde_json` (serialization only).
//!
//! Renders the `serde` shim's [`Value`](serde::Value) tree as JSON text.
//! Floats that are finite and integral print with one decimal (`3.0`) the
//! way upstream `serde_json` prints `f64` whole numbers; non-finite floats
//! become `null` (upstream's behavior for non-finite values).

use serde::{Serialize, Value};
use std::fmt::Write as _;

/// Error type placeholder (the shim writer is infallible).
#[derive(Debug)]
pub struct Error;

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("serde_json shim error")
    }
}

impl std::error::Error for Error {}

/// Compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Pretty JSON with two-space indentation.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, level: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => {
            let _ = write!(out, "{i}");
        }
        Value::UInt(u) => {
            let _ = write!(out, "{u}");
        }
        Value::Float(f) => {
            if !f.is_finite() {
                out.push_str("null");
            } else if f.fract() == 0.0 && f.abs() < 1e15 {
                let _ = write!(out, "{f:.1}");
            } else {
                let _ = write!(out, "{f}");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Seq(items) => write_seq(out, items, indent, level),
        Value::Map(entries) => write_map(out, entries, indent, level),
    }
}

fn write_seq(out: &mut String, items: &[Value], indent: Option<usize>, level: usize) {
    if items.is_empty() {
        out.push_str("[]");
        return;
    }
    out.push('[');
    for (i, item) in items.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        newline_indent(out, indent, level + 1);
        write_value(out, item, indent, level + 1);
    }
    newline_indent(out, indent, level);
    out.push(']');
}

fn write_map(out: &mut String, entries: &[(String, Value)], indent: Option<usize>, level: usize) {
    if entries.is_empty() {
        out.push_str("{}");
        return;
    }
    out.push('{');
    for (i, (k, v)) in entries.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        newline_indent(out, indent, level + 1);
        write_string(out, k);
        out.push(':');
        if indent.is_some() {
            out.push(' ');
        }
        write_value(out, v, indent, level + 1);
    }
    newline_indent(out, indent, level);
    out.push('}');
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * level {
            out.push(' ');
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_rendering() {
        let v = vec![1u32, 2, 3];
        assert_eq!(to_string(&v).unwrap(), "[1,2,3]");
        assert_eq!(to_string("a\"b").unwrap(), "\"a\\\"b\"");
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(to_string(&2.5f64).unwrap(), "2.5");
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
    }

    #[test]
    fn pretty_struct_rendering() {
        #[derive(Serialize)]
        struct Row {
            name: String,
            count: usize,
        }
        let rows = vec![Row { name: "a".into(), count: 1 }];
        let text = to_string_pretty(&rows).unwrap();
        assert_eq!(
            text,
            "[\n  {\n    \"name\": \"a\",\n    \"count\": 1\n  }\n]"
        );
    }

    #[test]
    fn empty_containers() {
        assert_eq!(to_string_pretty(&Vec::<u32>::new()).unwrap(), "[]");
    }
}
