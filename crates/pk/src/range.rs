//! Range policies: how an index range is partitioned across workers.
//!
//! Mirrors `Kokkos::RangePolicy` with static/dynamic schedules
//! (`Kokkos::Schedule<Static>` / `Kokkos::Schedule<Dynamic>`).

use std::ops::Range;

/// Work-distribution schedule for a [`RangePolicy`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Schedule {
    /// Each worker gets one contiguous block (lowest overhead, best
    /// locality; Kokkos default on CPU backends).
    #[default]
    Static,
    /// Workers pull fixed-size chunks from a shared counter (load balance
    /// for irregular iterations, e.g. variable particles per cell).
    Dynamic,
}

/// An iteration range plus scheduling hints.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RangePolicy {
    /// Half-open iteration range.
    pub range: Range<usize>,
    /// Work-distribution schedule.
    pub schedule: Schedule,
    /// Chunk size for [`Schedule::Dynamic`]; `0` means "auto" (range length
    /// divided by 8× the worker count, at least 1).
    pub chunk: usize,
}

impl RangePolicy {
    /// Policy over `0..n` with the default static schedule.
    pub fn new(n: usize) -> Self {
        Self { range: 0..n, schedule: Schedule::Static, chunk: 0 }
    }

    /// Policy over an explicit half-open range.
    pub fn over(range: Range<usize>) -> Self {
        Self { range, schedule: Schedule::Static, chunk: 0 }
    }

    /// Switch to a dynamic schedule with the given chunk size (`0` = auto).
    pub fn dynamic(mut self, chunk: usize) -> Self {
        self.schedule = Schedule::Dynamic;
        self.chunk = chunk;
        self
    }

    /// Number of iterations.
    pub fn len(&self) -> usize {
        self.range.end.saturating_sub(self.range.start)
    }

    /// True when the range is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Resolve the chunk size for `workers` workers.
    pub fn effective_chunk(&self, workers: usize) -> usize {
        if self.chunk > 0 {
            self.chunk
        } else {
            (self.len() / (workers.max(1) * 8)).max(1)
        }
    }

    /// Split the range into `parts` near-equal contiguous blocks (static
    /// schedule). Returns exactly `min(parts, len)` non-empty blocks.
    pub fn static_blocks(&self, parts: usize) -> Vec<Range<usize>> {
        let n = self.len();
        if n == 0 {
            return Vec::new();
        }
        let parts = parts.max(1).min(n);
        let base = n / parts;
        let rem = n % parts;
        let mut blocks = Vec::with_capacity(parts);
        let mut start = self.range.start;
        for p in 0..parts {
            let sz = base + usize::from(p < rem);
            blocks.push(start..start + sz);
            start += sz;
        }
        debug_assert_eq!(start, self.range.end);
        blocks
    }
}

impl From<Range<usize>> for RangePolicy {
    fn from(range: Range<usize>) -> Self {
        RangePolicy::over(range)
    }
}

impl From<usize> for RangePolicy {
    fn from(n: usize) -> Self {
        RangePolicy::new(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_blocks_partition_exactly() {
        let p = RangePolicy::over(3..103);
        let blocks = p.static_blocks(7);
        assert_eq!(blocks.len(), 7);
        assert_eq!(blocks.first().unwrap().start, 3);
        assert_eq!(blocks.last().unwrap().end, 103);
        let total: usize = blocks.iter().map(|b| b.len()).sum();
        assert_eq!(total, 100);
        // contiguous, non-overlapping
        for w in blocks.windows(2) {
            assert_eq!(w[0].end, w[1].start);
        }
        // near-equal: sizes differ by at most 1
        let sizes: Vec<usize> = blocks.iter().map(|b| b.len()).collect();
        assert!(sizes.iter().max().unwrap() - sizes.iter().min().unwrap() <= 1);
    }

    #[test]
    fn static_blocks_never_empty() {
        let p = RangePolicy::new(3);
        let blocks = p.static_blocks(8);
        assert_eq!(blocks.len(), 3);
        assert!(blocks.iter().all(|b| !b.is_empty()));
    }

    #[test]
    fn empty_range_yields_no_blocks() {
        let p = RangePolicy::new(0);
        assert!(p.is_empty());
        assert!(p.static_blocks(4).is_empty());
    }

    #[test]
    fn effective_chunk_auto_and_explicit() {
        let p = RangePolicy::new(1024).dynamic(0);
        assert_eq!(p.effective_chunk(4), 1024 / 32);
        let p = RangePolicy::new(1024).dynamic(100);
        assert_eq!(p.effective_chunk(4), 100);
        let tiny = RangePolicy::new(2).dynamic(0);
        assert_eq!(tiny.effective_chunk(64), 1);
    }

    #[test]
    fn conversions() {
        let a: RangePolicy = 10usize.into();
        assert_eq!(a.range, 0..10);
        let b: RangePolicy = (5..9).into();
        assert_eq!(b.len(), 4);
        assert_eq!(b.schedule, Schedule::Static);
    }
}
