//! Memory layouts for multi-dimensional [views](crate::view).
//!
//! Mirrors `Kokkos::LayoutRight` / `Kokkos::LayoutLeft`. The layout is a
//! runtime value rather than a type parameter so that the same kernel code
//! can be benchmarked against both layouts (the paper's memory-layout
//! discussion, §2.3) without monomorphization tricks.

/// How a multi-dimensional index maps onto linear memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Layout {
    /// C / row-major order: the **last** index is stride-1.
    ///
    /// Kokkos calls this `LayoutRight`; it is the default for host (CPU)
    /// views because a thread iterating the last index walks contiguous
    /// memory.
    #[default]
    Right,
    /// Fortran / column-major order: the **first** index is stride-1.
    ///
    /// Kokkos calls this `LayoutLeft`; it is the default for device (GPU)
    /// views because consecutive *threads* indexing consecutive first
    /// indices produce coalesced accesses.
    Left,
}

impl Layout {
    /// Strides for a 2-D extent `(n0, n1)` under this layout.
    #[inline]
    pub fn strides2(self, n0: usize, n1: usize) -> (usize, usize) {
        match self {
            Layout::Right => (n1, 1),
            Layout::Left => (1, n0),
        }
    }

    /// Strides for a 3-D extent `(n0, n1, n2)` under this layout.
    #[inline]
    pub fn strides3(self, n0: usize, n1: usize, n2: usize) -> (usize, usize, usize) {
        match self {
            Layout::Right => (n1 * n2, n2, 1),
            Layout::Left => (1, n0, n0 * n1),
        }
    }

    /// Linear offset of `(i, j)` in a 2-D view of extent `(n0, n1)`.
    #[inline(always)]
    pub fn offset2(self, i: usize, j: usize, n0: usize, n1: usize) -> usize {
        let (s0, s1) = self.strides2(n0, n1);
        i * s0 + j * s1
    }

    /// Linear offset of `(i, j, k)` in a 3-D view of extent `(n0, n1, n2)`.
    #[inline(always)]
    pub fn offset3(self, i: usize, j: usize, k: usize, n0: usize, n1: usize, n2: usize) -> usize {
        let (s0, s1, s2) = self.strides3(n0, n1, n2);
        i * s0 + j * s1 + k * s2
    }

    /// The layout Kokkos would pick for a host execution space.
    #[inline]
    pub fn host_default() -> Self {
        Layout::Right
    }

    /// The layout Kokkos would pick for a device execution space.
    #[inline]
    pub fn device_default() -> Self {
        Layout::Left
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn right_layout_last_index_is_contiguous() {
        let l = Layout::Right;
        assert_eq!(l.offset2(0, 0, 3, 4), 0);
        assert_eq!(l.offset2(0, 1, 3, 4), 1);
        assert_eq!(l.offset2(1, 0, 3, 4), 4);
        assert_eq!(l.offset3(0, 0, 1, 2, 3, 4), 1);
        assert_eq!(l.offset3(0, 1, 0, 2, 3, 4), 4);
        assert_eq!(l.offset3(1, 0, 0, 2, 3, 4), 12);
    }

    #[test]
    fn left_layout_first_index_is_contiguous() {
        let l = Layout::Left;
        assert_eq!(l.offset2(1, 0, 3, 4), 1);
        assert_eq!(l.offset2(0, 1, 3, 4), 3);
        assert_eq!(l.offset3(1, 0, 0, 2, 3, 4), 1);
        assert_eq!(l.offset3(0, 1, 0, 2, 3, 4), 2);
        assert_eq!(l.offset3(0, 0, 1, 2, 3, 4), 6);
    }

    #[test]
    fn offsets_cover_full_extent_bijectively() {
        for layout in [Layout::Right, Layout::Left] {
            let (n0, n1, n2) = (3, 4, 5);
            let mut seen = vec![false; n0 * n1 * n2];
            for i in 0..n0 {
                for j in 0..n1 {
                    for k in 0..n2 {
                        let off = layout.offset3(i, j, k, n0, n1, n2);
                        assert!(!seen[off], "layout {layout:?} not injective at {off}");
                        seen[off] = true;
                    }
                }
            }
            assert!(seen.iter().all(|&s| s));
        }
    }

    #[test]
    fn defaults_match_kokkos_convention() {
        assert_eq!(Layout::host_default(), Layout::Right);
        assert_eq!(Layout::device_default(), Layout::Left);
        assert_eq!(Layout::default(), Layout::Right);
    }
}
