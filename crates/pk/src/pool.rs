//! Persistent worker pool backing the [`Threads`](crate::Threads)
//! execution space.
//!
//! The original `Threads` backend spawned OS threads on every dispatch
//! (`crossbeam::scope` per `parallel_for`), which puts a thread
//! create/join round-trip (tens of microseconds) on the critical path of
//! every kernel launch — the exact overhead Kokkos' pinned `Threads`
//! backend exists to avoid. This module provides the Kokkos-style
//! alternative: a fixed set of long-lived workers, spawned once, that park
//! on a condvar between dispatches.
//!
//! Design:
//!
//! * a pool with `lanes` lanes spawns `lanes - 1` OS threads; the caller
//!   participates as lane 0, so a 1-lane pool runs inline with no threads
//!   and no synchronization;
//! * [`WorkerPool::run`] publishes one job — a `Fn(lane)` — under a mutex,
//!   bumps an epoch counter, and wakes all workers; each worker runs the
//!   job for its own lane exactly once per epoch;
//! * lane panics are caught, counted, and surfaced on the **calling**
//!   thread after every lane has finished (so borrowed data is never
//!   touched after the dispatch returns) — as a typed [`DispatchPanic`]
//!   unwind from [`WorkerPool::run`], or as a plain `Err(DispatchPanic)`
//!   from [`WorkerPool::try_run`] for callers with a restore point armed
//!   (the checkpoint/restart path treats a dead lane as a recoverable
//!   fault, not a process abort);
//! * `Drop` sets a shutdown flag, wakes the workers, and joins them.
//!
//! Pools are cached per worker count in a process-wide registry
//! ([`global`]) so `Threads::new(4)` constructed repeatedly (e.g. in a
//! test loop) reuses one set of OS threads instead of respawning.

use std::cell::Cell;
use std::collections::HashMap;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock, Weak};
use std::thread::JoinHandle;

/// Typed panic payload / error for a dispatch in which one or more lanes
/// panicked. [`WorkerPool::run`] re-raises it with `resume_unwind` (the
/// original per-lane panic messages were already printed by the panic
/// hook when each lane failed), so a `catch_unwind` around a pooled
/// kernel can downcast to this type and distinguish "a lane died
/// mid-dispatch, state is suspect — restore from the last snapshot" from
/// unrelated panics. [`WorkerPool::try_run`] returns it as a plain error.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DispatchPanic {
    /// How many lanes' tasks panicked during the dispatch.
    pub panicked_lanes: usize,
}

impl std::fmt::Display for DispatchPanic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} pool lane(s) panicked during dispatch", self.panicked_lanes)
    }
}

impl std::error::Error for DispatchPanic {}

/// The job currently being dispatched: a lifetime-erased pointer to the
/// caller's `Fn(lane)`. Valid only while the owning [`WorkerPool::run`]
/// call is blocked, which is exactly the window workers read it in.
#[derive(Clone, Copy)]
struct Job {
    task: *const (dyn Fn(usize) + Sync),
}

// SAFETY: the pointee is `Sync` (shared-callable from any thread) and the
// dispatch protocol guarantees it outlives every worker's use of it.
unsafe impl Send for Job {}

struct PoolState {
    /// Incremented once per dispatch; workers run one job per new epoch.
    epoch: u64,
    /// The published job for the current epoch.
    job: Option<Job>,
    /// Workers that have not yet finished the current epoch's job.
    remaining: usize,
    /// Worker panics observed during the current epoch.
    worker_panics: usize,
    /// Set by `Drop`; workers exit their loop when they observe it.
    shutdown: bool,
}

struct Shared {
    state: Mutex<PoolState>,
    /// Workers park here between dispatches.
    work_cv: Condvar,
    /// The dispatching caller parks here until `remaining == 0`.
    done_cv: Condvar,
}

thread_local! {
    /// The `Shared` of the pool whose task is currently executing on this
    /// thread (null when none). Distinguishes true reentrancy — `run`
    /// called from inside a task of the *same* pool, which can never make
    /// progress — from two independent threads dispatching concurrently,
    /// which is legal and serialized by [`WorkerPool::dispatch`].
    static ACTIVE_POOL: Cell<*const Shared> = const { Cell::new(std::ptr::null()) };
}

/// RAII marker: records `shared` as this thread's active pool for the
/// duration of one task invocation, restoring the previous value on drop
/// (including via panic unwind).
struct TaskScope {
    prev: *const Shared,
}

impl TaskScope {
    fn enter(shared: &Shared) -> Self {
        let prev = ACTIVE_POOL.with(|c| c.replace(shared as *const Shared));
        TaskScope { prev }
    }
}

impl Drop for TaskScope {
    fn drop(&mut self) {
        let prev = self.prev;
        ACTIVE_POOL.with(|c| c.set(prev));
    }
}

impl Shared {
    /// Lock the state, ignoring poisoning: a panicking kernel must not
    /// wedge the pool (panics are re-raised by `run` itself).
    fn lock(&self) -> MutexGuard<'_, PoolState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// A fixed set of persistent worker threads (see module docs).
pub struct WorkerPool {
    shared: Arc<Shared>,
    /// Serializes whole dispatches: pools are shared process-wide (see
    /// [`global`]), so independent threads may call [`run`](Self::run)
    /// concurrently; the second caller waits here until the first
    /// dispatch fully completes.
    dispatch: Mutex<()>,
    handles: Vec<JoinHandle<()>>,
    lanes: usize,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool").field("lanes", &self.lanes).finish()
    }
}

impl WorkerPool {
    /// Build a pool with `lanes` lanes (minimum 1). Spawns `lanes - 1`
    /// threads; the dispatching caller is always lane 0.
    pub fn new(lanes: usize) -> Self {
        let lanes = lanes.max(1);
        let shared = Arc::new(Shared {
            state: Mutex::new(PoolState {
                epoch: 0,
                job: None,
                remaining: 0,
                worker_panics: 0,
                shutdown: false,
            }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
        });
        let handles = (1..lanes)
            .map(|lane| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("pk-worker-{lane}"))
                    .spawn(move || worker_loop(&shared, lane))
                    .expect("spawning pool worker")
            })
            .collect();
        telemetry::count("pk.pool.created", 1);
        telemetry::gauge_set!("pk.pool.lanes", lanes as i64);
        WorkerPool { shared, dispatch: Mutex::new(()), handles, lanes }
    }

    /// Number of lanes (caller + spawned workers).
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Run `task(lane)` once on every lane, returning when all lanes have
    /// finished. The caller executes lane 0 itself. If any lane panics,
    /// a typed [`DispatchPanic`] unwind is raised here — after every other
    /// lane has completed, so data borrowed by `task` is never used past
    /// this call.
    ///
    /// Concurrent dispatch from independent threads is allowed (pools are
    /// shared process-wide, see [`global`]): the second caller blocks
    /// until the first dispatch completes. Dispatch is not *reentrant*,
    /// though — calling `run` from inside a task on the same pool can
    /// never make progress and panics.
    ///
    /// When profiling is enabled (`PK_PROFILE` / `telemetry::set_enabled`)
    /// every dispatch opens a `pk.pool.dispatch` span and records each
    /// lane's busy time on that lane's own trace track — lane imbalance is
    /// read directly off the per-lane `<kernel>::lane` rows.
    pub fn run(&self, task: &(dyn Fn(usize) + Sync)) {
        if let Err(dp) = self.try_run(task) {
            // resume_unwind, not panic_any: every lane's own panic message
            // already went through the panic hook, so re-raising must not
            // print a second (payload-less) report
            resume_unwind(Box::new(dp));
        }
    }

    /// Like [`WorkerPool::run`], but lane panics come back as
    /// `Err(DispatchPanic)` instead of unwinding — the recoverable surface
    /// the checkpoint/restart path uses when a restore point is armed.
    /// All lanes have finished (successfully or not) by the time this
    /// returns, and the pool remains usable either way.
    pub fn try_run(&self, task: &(dyn Fn(usize) + Sync)) -> Result<(), DispatchPanic> {
        let panicked_lanes = if !telemetry::enabled() {
            self.run_inner(task)
        } else {
            telemetry::count("pk.pool.dispatches", 1);
            // label lane busy-time with the kernel being dispatched (the
            // innermost open span on the calling thread, e.g.
            // "pk.parallel_for" under a "sim.push" phase)
            let kernel = telemetry::current_label().unwrap_or_else(|| "pk.dispatch".to_string());
            let lane_label = format!("{kernel}::lane");
            let _span =
                telemetry::span("pk.pool.dispatch").arg("lanes", self.lanes).arg("kernel", kernel);
            let lane_label = &lane_label;
            let t0 = telemetry::now_ns();
            let panicked = self.run_inner(&move |lane| {
                let _busy = telemetry::lane_span(lane_label.clone(), lane);
                task(lane);
            });
            telemetry::hist!("pk.pool.dispatch.ns", telemetry::now_ns().saturating_sub(t0));
            panicked
        };
        if panicked_lanes > 0 {
            telemetry::count("pk.pool.worker_panics", panicked_lanes as u64);
            return Err(DispatchPanic { panicked_lanes });
        }
        Ok(())
    }

    /// Dispatch `task` over every lane and count how many panicked.
    fn run_inner(&self, task: &(dyn Fn(usize) + Sync)) -> usize {
        if self.handles.is_empty() {
            return usize::from(catch_unwind(AssertUnwindSafe(|| task(0))).is_err());
        }
        assert!(
            ACTIVE_POOL.with(|c| c.get()) != Arc::as_ptr(&self.shared),
            "nested dispatch on the same WorkerPool"
        );
        // Serialize with any dispatch already in flight from another
        // thread. Poisoning is ignored: a panicking kernel is re-raised
        // by `run` itself and must not wedge the pool.
        let _dispatch = self.dispatch.lock().unwrap_or_else(|e| e.into_inner());
        // Erase the borrow lifetime: workers only dereference the pointer
        // between the notify below and the `remaining == 0` wait, during
        // which this frame (and therefore `task`'s borrows) is pinned.
        let erased: &'static (dyn Fn(usize) + Sync) =
            unsafe { std::mem::transmute::<&(dyn Fn(usize) + Sync), _>(task) };
        {
            let mut st = self.shared.lock();
            debug_assert!(st.job.is_none(), "dispatch mutex must serialize jobs");
            st.job = Some(Job { task: erased });
            st.epoch = st.epoch.wrapping_add(1);
            st.remaining = self.handles.len();
            st.worker_panics = 0;
            self.shared.work_cv.notify_all();
        }
        let mine = catch_unwind(AssertUnwindSafe(|| {
            let _scope = TaskScope::enter(&self.shared);
            task(0)
        }));
        let worker_panics = {
            let mut st = self.shared.lock();
            while st.remaining > 0 {
                st = self
                    .shared
                    .done_cv
                    .wait(st)
                    .unwrap_or_else(|e| e.into_inner());
            }
            st.job = None;
            st.worker_panics
        };
        worker_panics + usize::from(mine.is_err())
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut st = self.shared.lock();
            st.shutdown = true;
            self.shared.work_cv.notify_all();
        }
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(shared: &Shared, lane: usize) {
    // pool workers render on the trace track of their lane index
    telemetry::set_lane(lane);
    let mut seen_epoch = 0u64;
    loop {
        let job = {
            let mut st = shared.lock();
            loop {
                if st.shutdown {
                    return;
                }
                if st.epoch != seen_epoch {
                    if let Some(job) = st.job {
                        seen_epoch = st.epoch;
                        break job;
                    }
                }
                st = shared.work_cv.wait(st).unwrap_or_else(|e| e.into_inner());
            }
        };
        // SAFETY: `run` keeps the caller frame alive until `remaining`
        // reaches 0, which happens only after this call returns.
        let task = unsafe { &*job.task };
        let panicked = catch_unwind(AssertUnwindSafe(|| {
            let _scope = TaskScope::enter(shared);
            task(lane)
        }))
        .is_err();
        let mut st = shared.lock();
        if panicked {
            st.worker_panics += 1;
        }
        st.remaining -= 1;
        if st.remaining == 0 {
            shared.done_cv.notify_one();
        }
    }
}

/// Shareable raw base pointer for handing disjoint sub-slices to lanes.
/// The caller must guarantee the lanes' index sets are disjoint.
///
/// Public so kernels outside `pk` (e.g. the field-solve row sweeps in
/// `vpic-core`) can reuse the same disjoint-write idiom the pool's own
/// `run_chunks_mut` uses instead of reinventing an unsafe wrapper.
pub struct SendPtr<T>(pub *mut T);

impl<T> SendPtr<T> {
    /// Wrap a base pointer (typically `slice.as_mut_ptr()`).
    pub fn new(p: *mut T) -> Self {
        Self(p)
    }

    /// By-value accessor: closures calling this capture the whole
    /// wrapper (which is `Sync`), not the raw-pointer field (which
    /// is not — Rust 2021 closures capture fields individually).
    pub fn get(self) -> *mut T {
        self.0
    }
}

// manual impls: the derive would add an unwanted `T: Copy` bound
impl<T> Clone for SendPtr<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for SendPtr<T> {}

// SAFETY: used only to reconstruct disjoint `&mut [T]` chunks, one owner
// per chunk, so aliasing rules are upheld by construction.
unsafe impl<T: Send> Sync for SendPtr<T> {}
unsafe impl<T: Send> Send for SendPtr<T> {}

static REGISTRY: OnceLock<Mutex<HashMap<usize, Weak<WorkerPool>>>> = OnceLock::new();

/// The process-wide pool for `lanes` lanes. Live pools are shared (two
/// `Threads::new(4)` handles drive the same workers); once every handle is
/// dropped the pool shuts down, and the next request respawns it.
pub fn global(lanes: usize) -> Arc<WorkerPool> {
    let lanes = lanes.max(1);
    let registry = REGISTRY.get_or_init(|| Mutex::new(HashMap::new()));
    let mut map = registry.lock().unwrap_or_else(|e| e.into_inner());
    if let Some(pool) = map.get(&lanes).and_then(Weak::upgrade) {
        return pool;
    }
    // Drop stale entries for pools whose every handle has gone away, so
    // drop/recreate loops don't grow the map without bound.
    let before = map.len();
    map.retain(|_, weak| weak.strong_count() > 0);
    telemetry::count("pk.pool.registry_pruned", (before - map.len()) as u64);
    let pool = Arc::new(WorkerPool::new(lanes));
    map.insert(lanes, Arc::downgrade(&pool));
    pool
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn every_lane_runs_exactly_once_per_dispatch() {
        let pool = WorkerPool::new(4);
        let counts: Vec<AtomicUsize> = (0..4).map(|_| AtomicUsize::new(0)).collect();
        for _ in 0..100 {
            pool.run(&|lane| {
                counts[lane].fetch_add(1, Ordering::Relaxed);
            });
        }
        for c in &counts {
            assert_eq!(c.load(Ordering::Relaxed), 100);
        }
    }

    #[test]
    fn single_lane_pool_runs_inline() {
        let pool = WorkerPool::new(1);
        let caller = std::thread::current().id();
        pool.run(&|lane| {
            assert_eq!(lane, 0);
            assert_eq!(std::thread::current().id(), caller);
        });
    }

    #[test]
    fn worker_panic_propagates_to_caller() {
        let pool = WorkerPool::new(3);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.run(&|lane| {
                if lane == 1 {
                    panic!("lane 1 failure");
                }
            });
        }));
        assert!(result.is_err(), "worker panic must reach the caller");
        // the pool stays usable after a panic
        let hits = AtomicUsize::new(0);
        pool.run(&|_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn lane_panic_unwinds_with_a_typed_payload() {
        // the payload `run` re-raises must downcast to DispatchPanic, so a
        // catch_unwind further up (Simulation::try_step_on) can tell "a
        // pool lane died" apart from arbitrary panics
        let pool = WorkerPool::new(3);
        let cause = catch_unwind(AssertUnwindSafe(|| {
            pool.run(&|lane| {
                if lane > 0 {
                    panic!("both workers fail");
                }
            });
        }))
        .expect_err("lane panics must unwind");
        let dp = cause.downcast::<DispatchPanic>().expect("typed DispatchPanic payload");
        assert_eq!(dp.panicked_lanes, 2);
    }

    #[test]
    fn try_run_reports_lane_panics_as_errors() {
        let pool = WorkerPool::new(3);
        assert_eq!(pool.try_run(&|_| {}), Ok(()));
        let err = pool
            .try_run(&|lane| {
                if lane == 2 {
                    panic!("lane 2 failure");
                }
            })
            .expect_err("panicking lane must surface");
        assert_eq!(err, DispatchPanic { panicked_lanes: 1 });
        assert!(err.to_string().contains("1 pool lane(s)"));
        // the pool stays usable, including on the inline single-lane path
        assert_eq!(pool.try_run(&|_| {}), Ok(()));
        let inline = WorkerPool::new(1);
        let err = inline.try_run(&|_| panic!("inline failure")).unwrap_err();
        assert_eq!(err.panicked_lanes, 1);
        assert_eq!(inline.try_run(&|_| {}), Ok(()));
    }

    #[test]
    fn caller_panic_still_joins_workers() {
        let pool = WorkerPool::new(2);
        let worker_done = AtomicUsize::new(0);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.run(&|lane| {
                if lane == 0 {
                    panic!("caller lane failure");
                }
                worker_done.fetch_add(1, Ordering::Relaxed);
            });
        }));
        assert!(result.is_err());
        assert_eq!(
            worker_done.load(Ordering::Relaxed),
            1,
            "worker lane must have completed before the panic resumed"
        );
    }

    #[test]
    fn drop_shuts_the_pool_down() {
        let pool = WorkerPool::new(4);
        pool.run(&|_| {});
        drop(pool); // must not hang
    }

    #[test]
    fn concurrent_dispatch_from_independent_threads_serializes() {
        // Regression: pools are shared process-wide, so two Threads
        // handles may dispatch from different OS threads at once. That
        // used to trip the nested-dispatch assert; it must now serialize.
        let pool = Arc::new(WorkerPool::new(4));
        let total = Arc::new(AtomicUsize::new(0));
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let pool = Arc::clone(&pool);
                let total = Arc::clone(&total);
                std::thread::spawn(move || {
                    for _ in 0..50 {
                        pool.run(&|_| {
                            total.fetch_add(1, Ordering::Relaxed);
                        });
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(total.load(Ordering::Relaxed), 8 * 50 * 4);
    }

    #[test]
    fn reentrant_dispatch_from_caller_lane_panics() {
        let pool = WorkerPool::new(2);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.run(&|lane| {
                if lane == 0 {
                    pool.run(&|_| {});
                }
            });
        }));
        assert!(result.is_err(), "reentrant dispatch must panic, not deadlock");
        // the pool stays usable afterwards
        let hits = AtomicUsize::new(0);
        pool.run(&|_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn reentrant_dispatch_from_worker_lane_panics() {
        let pool = WorkerPool::new(2);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.run(&|lane| {
                if lane == 1 {
                    pool.run(&|_| {});
                }
            });
        }));
        assert!(result.is_err(), "worker-lane reentrancy must panic, not deadlock");
    }

    #[test]
    fn registry_prunes_dead_entries() {
        // dead Weak entries are cleared when a pool is (re)created
        drop(global(11));
        drop(global(13));
        let _live = global(12);
        let registry = REGISTRY.get_or_init(|| Mutex::new(HashMap::new()));
        let map = registry.lock().unwrap_or_else(|e| e.into_inner());
        assert!(!map.contains_key(&11), "dead 11-lane entry must be pruned");
        assert!(!map.contains_key(&13), "dead 13-lane entry must be pruned");
        assert!(map.contains_key(&12));
    }

    #[test]
    fn pool_lifetime_counters_exported() {
        // extends the PR 1 registry-prune regression test: the prune is
        // now observable as a telemetry counter across a drop/recreate
        // loop, alongside created/dispatch/panic lifetime counters
        let was = telemetry::enabled();
        telemetry::set_enabled(true);
        let created0 = telemetry::counter("pk.pool.created");
        let pruned0 = telemetry::counter("pk.pool.registry_pruned");
        let dispatch0 = telemetry::counter("pk.pool.dispatches");
        let panics0 = telemetry::counter("pk.pool.worker_panics");
        for _ in 0..5 {
            // each recreate finds the previous iteration's Weak entry dead
            // and prunes it before inserting the fresh pool
            drop(global(17));
        }
        let pool = WorkerPool::new(2);
        pool.run(&|_| {});
        let _ = catch_unwind(AssertUnwindSafe(|| {
            pool.run(&|lane| {
                if lane == 1 {
                    panic!("telemetry counter probe");
                }
            });
        }));
        telemetry::set_enabled(was);
        assert!(telemetry::counter("pk.pool.created") >= created0 + 6);
        assert!(
            telemetry::counter("pk.pool.registry_pruned") >= pruned0 + 4,
            "every recreate after the first must prune the dead 17-lane entry"
        );
        assert!(telemetry::counter("pk.pool.dispatches") >= dispatch0 + 2);
        assert!(telemetry::counter("pk.pool.worker_panics") > panics0);
    }

    #[test]
    fn registry_shares_live_pools_per_lane_count() {
        let a = global(3);
        let b = global(3);
        assert!(Arc::ptr_eq(&a, &b), "same lane count must share one pool");
        let c = global(2);
        assert!(!Arc::ptr_eq(&a, &c));
    }

    #[test]
    fn dispatch_from_many_epochs_sees_fresh_closures() {
        let pool = WorkerPool::new(3);
        for round in 0..50usize {
            let sum = AtomicUsize::new(0);
            pool.run(&|lane| {
                sum.fetch_add(round * 10 + lane, Ordering::Relaxed);
            });
            assert_eq!(sum.load(Ordering::Relaxed), 3 * round * 10 + (1 + 2));
        }
    }
}
