//! Reduction operators, mirroring `Kokkos::Sum`, `Kokkos::Min`,
//! `Kokkos::Max`, and `Kokkos::MinMax`.
//!
//! A [`Reducer`] supplies an identity element and an associative `join`;
//! execution spaces reduce per-worker partials and join them, so any
//! reducer must be associative (floating-point sums are therefore only
//! reproducible per-space, exactly as in Kokkos).

use std::marker::PhantomData;

/// A numeric element usable in reductions and scans.
pub trait Scalar: Copy + Send + Sync + PartialOrd + 'static {
    /// Additive identity.
    const ZERO: Self;
    /// Multiplicative identity.
    const ONE: Self;
    /// Least value (identity for max-reductions).
    const MIN_VALUE: Self;
    /// Greatest value (identity for min-reductions).
    const MAX_VALUE: Self;
    /// Addition.
    fn add(self, other: Self) -> Self;
    /// Multiplication.
    fn mul(self, other: Self) -> Self;
}

macro_rules! impl_scalar_int {
    ($($t:ty),*) => {$(
        impl Scalar for $t {
            const ZERO: Self = 0;
            const ONE: Self = 1;
            const MIN_VALUE: Self = <$t>::MIN;
            const MAX_VALUE: Self = <$t>::MAX;
            #[inline(always)]
            fn add(self, other: Self) -> Self { self.wrapping_add(other) }
            #[inline(always)]
            fn mul(self, other: Self) -> Self { self.wrapping_mul(other) }
        }
    )*};
}

macro_rules! impl_scalar_float {
    ($($t:ty),*) => {$(
        impl Scalar for $t {
            const ZERO: Self = 0.0;
            const ONE: Self = 1.0;
            const MIN_VALUE: Self = <$t>::NEG_INFINITY;
            const MAX_VALUE: Self = <$t>::INFINITY;
            #[inline(always)]
            fn add(self, other: Self) -> Self { self + other }
            #[inline(always)]
            fn mul(self, other: Self) -> Self { self * other }
        }
    )*};
}

impl_scalar_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);
impl_scalar_float!(f32, f64);

/// An associative reduction with an identity element.
pub trait Reducer: Send + Sync {
    /// The reduced value type.
    type Value: Send + Clone;
    /// The identity element (`join(identity(), x) == x`).
    fn identity(&self) -> Self::Value;
    /// Associative combine.
    fn join(&self, a: Self::Value, b: Self::Value) -> Self::Value;
}

/// Sum reduction (`Kokkos::Sum`).
#[derive(Debug, Clone, Copy, Default)]
pub struct Sum<T>(PhantomData<T>);

impl<T> Sum<T> {
    /// Create a sum reducer.
    pub fn new() -> Self {
        Sum(PhantomData)
    }
}

impl<T: Scalar> Reducer for Sum<T> {
    type Value = T;
    #[inline(always)]
    fn identity(&self) -> T {
        T::ZERO
    }
    #[inline(always)]
    fn join(&self, a: T, b: T) -> T {
        a.add(b)
    }
}

/// Product reduction (`Kokkos::Prod`).
#[derive(Debug, Clone, Copy, Default)]
pub struct Prod<T>(PhantomData<T>);

impl<T> Prod<T> {
    /// Create a product reducer.
    pub fn new() -> Self {
        Prod(PhantomData)
    }
}

impl<T: Scalar> Reducer for Prod<T> {
    type Value = T;
    #[inline(always)]
    fn identity(&self) -> T {
        T::ONE
    }
    #[inline(always)]
    fn join(&self, a: T, b: T) -> T {
        a.mul(b)
    }
}

/// Minimum reduction (`Kokkos::Min`).
#[derive(Debug, Clone, Copy, Default)]
pub struct Min<T>(PhantomData<T>);

impl<T> Min<T> {
    /// Create a min reducer.
    pub fn new() -> Self {
        Min(PhantomData)
    }
}

impl<T: Scalar> Reducer for Min<T> {
    type Value = T;
    #[inline(always)]
    fn identity(&self) -> T {
        T::MAX_VALUE
    }
    #[inline(always)]
    fn join(&self, a: T, b: T) -> T {
        if b < a {
            b
        } else {
            a
        }
    }
}

/// Maximum reduction (`Kokkos::Max`).
#[derive(Debug, Clone, Copy, Default)]
pub struct Max<T>(PhantomData<T>);

impl<T> Max<T> {
    /// Create a max reducer.
    pub fn new() -> Self {
        Max(PhantomData)
    }
}

impl<T: Scalar> Reducer for Max<T> {
    type Value = T;
    #[inline(always)]
    fn identity(&self) -> T {
        T::MIN_VALUE
    }
    #[inline(always)]
    fn join(&self, a: T, b: T) -> T {
        if b > a {
            b
        } else {
            a
        }
    }
}

/// Simultaneous min+max reduction (`Kokkos::MinMax`), as used by the
/// paper's Algorithm 1/2 step "find the minimum and maximum keys".
#[derive(Debug, Clone, Copy, Default)]
pub struct MinMax<T>(PhantomData<T>);

impl<T> MinMax<T> {
    /// Create a min-max reducer.
    pub fn new() -> Self {
        MinMax(PhantomData)
    }
}

impl<T: Scalar> Reducer for MinMax<T> {
    type Value = (T, T);
    #[inline(always)]
    fn identity(&self) -> (T, T) {
        (T::MAX_VALUE, T::MIN_VALUE)
    }
    #[inline(always)]
    fn join(&self, a: (T, T), b: (T, T)) -> (T, T) {
        (
            if b.0 < a.0 { b.0 } else { a.0 },
            if b.1 > a.1 { b.1 } else { a.1 },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sum_identity_and_join() {
        let r = Sum::<i64>::new();
        assert_eq!(r.identity(), 0);
        assert_eq!(r.join(3, 4), 7);
        assert_eq!(r.join(r.identity(), 9), 9);
    }

    #[test]
    fn prod_identity_and_join() {
        let r = Prod::<u32>::new();
        assert_eq!(r.identity(), 1);
        assert_eq!(r.join(3, 4), 12);
    }

    #[test]
    fn min_max_identities_absorb() {
        let mn = Min::<f64>::new();
        let mx = Max::<f64>::new();
        assert_eq!(mn.join(mn.identity(), -5.0), -5.0);
        assert_eq!(mx.join(mx.identity(), -5.0), -5.0);
        assert_eq!(mn.join(2.0, 3.0), 2.0);
        assert_eq!(mx.join(2.0, 3.0), 3.0);
    }

    #[test]
    fn minmax_tracks_both_ends() {
        let r = MinMax::<i32>::new();
        let mut acc = r.identity();
        for v in [5, -2, 9, 0] {
            acc = r.join(acc, (v, v));
        }
        assert_eq!(acc, (-2, 9));
    }

    #[test]
    fn join_is_associative_for_ints() {
        let r = Sum::<i32>::new();
        let (a, b, c) = (11, -4, 7);
        assert_eq!(r.join(r.join(a, b), c), r.join(a, r.join(b, c)));
        let m = Min::<i32>::new();
        assert_eq!(m.join(m.join(a, b), c), m.join(a, m.join(b, c)));
    }

    #[test]
    fn wrapping_sum_does_not_panic_in_debug() {
        let r = Sum::<u8>::new();
        assert_eq!(r.join(250, 10), 4); // wraps, mirroring release semantics
    }
}
