//! Multi-dimensional range policies, mirroring `Kokkos::MDRangePolicy`.
//!
//! Field kernels (the FDTD advance, interpolator loads) iterate 3-D cell
//! index space; an MDRange policy tiles that space and dispatches tiles
//! to the execution space, preserving spatial locality within a tile.

use crate::range::RangePolicy;
use crate::space::ExecSpace;

/// A 2-D iteration space with tiling.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MDRange2 {
    /// Extent along the first (slow) dimension.
    pub n0: usize,
    /// Extent along the second (fast) dimension.
    pub n1: usize,
    /// Tile shape.
    pub tile: (usize, usize),
}

impl MDRange2 {
    /// Policy over `(0..n0) × (0..n1)` with a default 8×64 tile.
    pub fn new(n0: usize, n1: usize) -> Self {
        Self { n0, n1, tile: (8, 64) }
    }

    /// Override the tile shape (each component ≥ 1).
    pub fn with_tile(mut self, t0: usize, t1: usize) -> Self {
        self.tile = (t0.max(1), t1.max(1));
        self
    }

    /// Number of tiles.
    pub fn tiles(&self) -> usize {
        self.n0.div_ceil(self.tile.0) * self.n1.div_ceil(self.tile.1)
    }
}

/// A 3-D iteration space with tiling.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MDRange3 {
    /// Extent along the slowest dimension.
    pub n0: usize,
    /// Middle extent.
    pub n1: usize,
    /// Fastest extent.
    pub n2: usize,
    /// Tile shape.
    pub tile: (usize, usize, usize),
}

impl MDRange3 {
    /// Policy over the full box with a default 4×8×32 tile.
    pub fn new(n0: usize, n1: usize, n2: usize) -> Self {
        Self { n0, n1, n2, tile: (4, 8, 32) }
    }

    /// Override the tile shape.
    pub fn with_tile(mut self, t0: usize, t1: usize, t2: usize) -> Self {
        self.tile = (t0.max(1), t1.max(1), t2.max(1));
        self
    }

    /// Number of tiles.
    pub fn tiles(&self) -> usize {
        self.n0.div_ceil(self.tile.0)
            * self.n1.div_ceil(self.tile.1)
            * self.n2.div_ceil(self.tile.2)
    }
}

/// `parallel_for` over a tiled 2-D index space: `f(i, j)` for every pair,
/// tiles distributed over the space's workers.
pub fn parallel_for_2d<S: ExecSpace>(space: &S, policy: &MDRange2, f: impl Fn(usize, usize) + Sync) {
    let (t0, t1) = policy.tile;
    let tiles1 = policy.n1.div_ceil(t1);
    let total = policy.tiles();
    space.parallel_for(RangePolicy::new(total), |tile| {
        let b0 = (tile / tiles1) * t0;
        let b1 = (tile % tiles1) * t1;
        for i in b0..(b0 + t0).min(policy.n0) {
            for j in b1..(b1 + t1).min(policy.n1) {
                f(i, j);
            }
        }
    });
}

/// `parallel_for` over a tiled 3-D index space.
pub fn parallel_for_3d<S: ExecSpace>(
    space: &S,
    policy: &MDRange3,
    f: impl Fn(usize, usize, usize) + Sync,
) {
    let (t0, t1, t2) = policy.tile;
    let tiles1 = policy.n1.div_ceil(t1);
    let tiles2 = policy.n2.div_ceil(t2);
    let total = policy.tiles();
    space.parallel_for(RangePolicy::new(total), |tile| {
        let b0 = (tile / (tiles1 * tiles2)) * t0;
        let b1 = ((tile / tiles2) % tiles1) * t1;
        let b2 = (tile % tiles2) * t2;
        for i in b0..(b0 + t0).min(policy.n0) {
            for j in b1..(b1 + t1).min(policy.n1) {
                for k in b2..(b2 + t2).min(policy.n2) {
                    f(i, j, k);
                }
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::{Serial, Threads};
    use std::sync::atomic::{AtomicU32, Ordering};

    #[test]
    fn md2_visits_every_pair_once() {
        let policy = MDRange2::new(13, 29).with_tile(4, 8);
        let hits: Vec<AtomicU32> = (0..13 * 29).map(|_| AtomicU32::new(0)).collect();
        parallel_for_2d(&Threads::new(3), &policy, |i, j| {
            hits[i * 29 + j].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn md3_visits_every_triple_once() {
        let policy = MDRange3::new(5, 7, 11).with_tile(2, 3, 4);
        let n = 5 * 7 * 11;
        let hits: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(0)).collect();
        parallel_for_3d(&Serial, &policy, |i, j, k| {
            hits[(i * 7 + j) * 11 + k].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn tile_counts() {
        assert_eq!(MDRange2::new(16, 64).with_tile(8, 64).tiles(), 2);
        assert_eq!(MDRange2::new(17, 65).with_tile(8, 64).tiles(), 3 * 2);
        assert_eq!(MDRange3::new(8, 8, 8).with_tile(4, 4, 4).tiles(), 8);
    }

    #[test]
    fn degenerate_tiles_clamped() {
        let p = MDRange3::new(4, 4, 4).with_tile(0, 0, 0);
        assert_eq!(p.tile, (1, 1, 1));
        assert_eq!(p.tiles(), 64);
    }

    #[test]
    fn empty_extent_runs_nothing() {
        let policy = MDRange2::new(0, 10);
        let count = AtomicU32::new(0);
        parallel_for_2d(&Serial, &policy, |_, _| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 0);
    }
}
