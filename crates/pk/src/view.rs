//! Multi-dimensional array views, mirroring `Kokkos::View`.
//!
//! Unlike Kokkos views (which are unmanaged handles with reference
//! semantics), these own their storage and follow Rust borrow rules; the
//! parallel patterns in [`crate::parallel`] provide the controlled aliasing
//! that Kokkos leaves to the programmer.
//!
//! All views are dense. [`View2`] and [`View3`] carry a runtime
//! [`Layout`] so kernels can be benchmarked against both index orders.

use crate::layout::Layout;
use std::fmt;
use std::ops::{Index, IndexMut};

/// A labelled 1-D view (owning vector with a Kokkos-style label).
#[derive(Clone, PartialEq)]
pub struct View1<T> {
    label: String,
    data: Vec<T>,
}

impl<T: Default + Clone> View1<T> {
    /// Allocate a zero/default-initialized view of length `n`.
    pub fn new(label: impl Into<String>, n: usize) -> Self {
        Self { label: label.into(), data: vec![T::default(); n] }
    }
}

impl<T> View1<T> {
    /// Wrap an existing vector.
    pub fn from_vec(label: impl Into<String>, data: Vec<T>) -> Self {
        Self { label: label.into(), data }
    }

    /// The Kokkos-style debug label.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Number of elements (Kokkos `extent(0)`).
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the view holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Borrow the underlying storage.
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Mutably borrow the underlying storage.
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Consume the view, returning its storage.
    pub fn into_vec(self) -> Vec<T> {
        self.data
    }

    /// Kokkos `deep_copy(self, src)`: element-wise copy from another view of
    /// identical extent.
    ///
    /// # Panics
    /// Panics if extents differ.
    pub fn deep_copy_from(&mut self, src: &Self)
    where
        T: Clone,
    {
        assert_eq!(self.len(), src.len(), "deep_copy extent mismatch");
        self.data.clone_from_slice(&src.data);
    }
}

impl<T> Index<usize> for View1<T> {
    type Output = T;
    #[inline(always)]
    fn index(&self, i: usize) -> &T {
        &self.data[i]
    }
}

impl<T> IndexMut<usize> for View1<T> {
    #[inline(always)]
    fn index_mut(&mut self, i: usize) -> &mut T {
        &mut self.data[i]
    }
}

impl<T: fmt::Debug> fmt::Debug for View1<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "View1(\"{}\", len={})", self.label, self.data.len())
    }
}

/// A labelled 2-D view with runtime layout.
#[derive(Clone, PartialEq)]
pub struct View2<T> {
    label: String,
    n0: usize,
    n1: usize,
    layout: Layout,
    data: Vec<T>,
}

impl<T: Default + Clone> View2<T> {
    /// Allocate a default-initialized `(n0, n1)` view with the given layout.
    pub fn new(label: impl Into<String>, n0: usize, n1: usize, layout: Layout) -> Self {
        Self { label: label.into(), n0, n1, layout, data: vec![T::default(); n0 * n1] }
    }
}

impl<T> View2<T> {
    /// Wrap an existing vector; `data.len()` must equal `n0 * n1`.
    pub fn from_vec(
        label: impl Into<String>,
        n0: usize,
        n1: usize,
        layout: Layout,
        data: Vec<T>,
    ) -> Self {
        assert_eq!(data.len(), n0 * n1, "View2 storage/extent mismatch");
        Self { label: label.into(), n0, n1, layout, data }
    }

    /// The Kokkos-style debug label.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Extent along dimension `d` (0 or 1).
    pub fn extent(&self, d: usize) -> usize {
        match d {
            0 => self.n0,
            1 => self.n1,
            _ => panic!("View2 has rank 2, asked for extent({d})"),
        }
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The memory layout.
    pub fn layout(&self) -> Layout {
        self.layout
    }

    /// Linear offset of `(i, j)`.
    #[inline(always)]
    pub fn offset(&self, i: usize, j: usize) -> usize {
        debug_assert!(i < self.n0 && j < self.n1, "View2 index out of bounds");
        self.layout.offset2(i, j, self.n0, self.n1)
    }

    /// Borrow the linear storage.
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Mutably borrow the linear storage.
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Element access with bounds checks in all builds.
    pub fn get(&self, i: usize, j: usize) -> Option<&T> {
        if i < self.n0 && j < self.n1 {
            Some(&self.data[self.layout.offset2(i, j, self.n0, self.n1)])
        } else {
            None
        }
    }

    /// Re-layout into `target`, preserving logical content.
    pub fn to_layout(&self, target: Layout) -> Self
    where
        T: Clone + Default,
    {
        let mut out = Self::new(self.label.clone(), self.n0, self.n1, target);
        for i in 0..self.n0 {
            for j in 0..self.n1 {
                out[(i, j)] = self[(i, j)].clone();
            }
        }
        out
    }
}

impl<T> Index<(usize, usize)> for View2<T> {
    type Output = T;
    #[inline(always)]
    fn index(&self, (i, j): (usize, usize)) -> &T {
        let off = self.offset(i, j);
        &self.data[off]
    }
}

impl<T> IndexMut<(usize, usize)> for View2<T> {
    #[inline(always)]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut T {
        let off = self.offset(i, j);
        &mut self.data[off]
    }
}

impl<T: fmt::Debug> fmt::Debug for View2<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "View2(\"{}\", {}x{}, {:?})",
            self.label, self.n0, self.n1, self.layout
        )
    }
}

/// A labelled 3-D view with runtime layout.
#[derive(Clone, PartialEq)]
pub struct View3<T> {
    label: String,
    n0: usize,
    n1: usize,
    n2: usize,
    layout: Layout,
    data: Vec<T>,
}

impl<T: Default + Clone> View3<T> {
    /// Allocate a default-initialized `(n0, n1, n2)` view.
    pub fn new(label: impl Into<String>, n0: usize, n1: usize, n2: usize, layout: Layout) -> Self {
        Self { label: label.into(), n0, n1, n2, layout, data: vec![T::default(); n0 * n1 * n2] }
    }
}

impl<T> View3<T> {
    /// Wrap an existing vector; `data.len()` must equal `n0 * n1 * n2`.
    pub fn from_vec(
        label: impl Into<String>,
        n0: usize,
        n1: usize,
        n2: usize,
        layout: Layout,
        data: Vec<T>,
    ) -> Self {
        assert_eq!(data.len(), n0 * n1 * n2, "View3 storage/extent mismatch");
        Self { label: label.into(), n0, n1, n2, layout, data }
    }

    /// The Kokkos-style debug label.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Extent along dimension `d` (0, 1, or 2).
    pub fn extent(&self, d: usize) -> usize {
        match d {
            0 => self.n0,
            1 => self.n1,
            2 => self.n2,
            _ => panic!("View3 has rank 3, asked for extent({d})"),
        }
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The memory layout.
    pub fn layout(&self) -> Layout {
        self.layout
    }

    /// Linear offset of `(i, j, k)`.
    #[inline(always)]
    pub fn offset(&self, i: usize, j: usize, k: usize) -> usize {
        debug_assert!(
            i < self.n0 && j < self.n1 && k < self.n2,
            "View3 index out of bounds"
        );
        self.layout.offset3(i, j, k, self.n0, self.n1, self.n2)
    }

    /// Borrow the linear storage.
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Mutably borrow the linear storage.
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Element access with bounds checks in all builds.
    pub fn get(&self, i: usize, j: usize, k: usize) -> Option<&T> {
        if i < self.n0 && j < self.n1 && k < self.n2 {
            Some(&self.data[self.layout.offset3(i, j, k, self.n0, self.n1, self.n2)])
        } else {
            None
        }
    }
}

impl<T> Index<(usize, usize, usize)> for View3<T> {
    type Output = T;
    #[inline(always)]
    fn index(&self, (i, j, k): (usize, usize, usize)) -> &T {
        let off = self.offset(i, j, k);
        &self.data[off]
    }
}

impl<T> IndexMut<(usize, usize, usize)> for View3<T> {
    #[inline(always)]
    fn index_mut(&mut self, (i, j, k): (usize, usize, usize)) -> &mut T {
        let off = self.offset(i, j, k);
        &mut self.data[off]
    }
}

impl<T: fmt::Debug> fmt::Debug for View3<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "View3(\"{}\", {}x{}x{}, {:?})",
            self.label, self.n0, self.n1, self.n2, self.layout
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn view1_roundtrip_and_label() {
        let mut v = View1::<f32>::new("x", 8);
        assert_eq!(v.label(), "x");
        assert_eq!(v.len(), 8);
        v[3] = 1.5;
        assert_eq!(v[3], 1.5);
        assert_eq!(v.as_slice().iter().sum::<f32>(), 1.5);
    }

    #[test]
    fn view1_deep_copy_clones_contents() {
        let src = View1::from_vec("s", vec![1, 2, 3]);
        let mut dst = View1::<i32>::new("d", 3);
        dst.deep_copy_from(&src);
        assert_eq!(dst.as_slice(), &[1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "extent mismatch")]
    fn view1_deep_copy_checks_extents() {
        let src = View1::from_vec("s", vec![1, 2, 3]);
        let mut dst = View1::<i32>::new("d", 2);
        dst.deep_copy_from(&src);
    }

    #[test]
    fn view2_layouts_agree_logically() {
        let mut r = View2::<i32>::new("r", 3, 4, Layout::Right);
        let mut l = View2::<i32>::new("l", 3, 4, Layout::Left);
        for i in 0..3 {
            for j in 0..4 {
                r[(i, j)] = (10 * i + j) as i32;
                l[(i, j)] = (10 * i + j) as i32;
            }
        }
        for i in 0..3 {
            for j in 0..4 {
                assert_eq!(r[(i, j)], l[(i, j)]);
            }
        }
        // but the linear storage differs
        assert_ne!(r.as_slice(), l.as_slice());
    }

    #[test]
    fn view2_to_layout_preserves_content() {
        let mut r = View2::<i32>::new("r", 2, 5, Layout::Right);
        for i in 0..2 {
            for j in 0..5 {
                r[(i, j)] = (i * 5 + j) as i32;
            }
        }
        let l = r.to_layout(Layout::Left);
        for i in 0..2 {
            for j in 0..5 {
                assert_eq!(r[(i, j)], l[(i, j)]);
            }
        }
        assert_eq!(l.layout(), Layout::Left);
    }

    #[test]
    fn view2_get_is_bounds_checked() {
        let v = View2::<u8>::new("v", 2, 2, Layout::Right);
        assert!(v.get(1, 1).is_some());
        assert!(v.get(2, 0).is_none());
        assert!(v.get(0, 2).is_none());
    }

    #[test]
    fn view3_indexing_and_extents() {
        let mut v = View3::<f64>::new("f", 2, 3, 4, Layout::Right);
        assert_eq!((v.extent(0), v.extent(1), v.extent(2)), (2, 3, 4));
        v[(1, 2, 3)] = 7.0;
        assert_eq!(v[(1, 2, 3)], 7.0);
        assert_eq!(v.as_slice()[v.offset(1, 2, 3)], 7.0);
    }

    #[test]
    fn view3_left_layout_first_index_fastest() {
        let v = View3::<u8>::new("v", 4, 3, 2, Layout::Left);
        assert_eq!(v.offset(1, 0, 0), 1);
        assert_eq!(v.offset(0, 1, 0), 4);
        assert_eq!(v.offset(0, 0, 1), 12);
    }

    #[test]
    #[should_panic]
    fn view3_index_out_of_bounds_panics() {
        let v = View3::<u8>::new("v", 2, 2, 2, Layout::Right);
        let _ = v[(2, 0, 0)];
    }

    #[test]
    #[should_panic(expected = "storage/extent mismatch")]
    fn view2_from_vec_validates_size() {
        let _ = View2::from_vec("bad", 2, 3, Layout::Right, vec![0u8; 5]);
    }
}
