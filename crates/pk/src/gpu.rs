//! `SimGpu` — the modelled-GPU execution space.
//!
//! The paper's portability claim is *one kernel source on every backend*.
//! This reproduction has no device to run on, so the GPU backend executes
//! kernels **functionally on the host** — through exactly the same
//! [`ExecSpace`] primitives as [`crate::Serial`], in the same order, so
//! results are bit-identical — while every dispatch *charges* its real
//! memory behaviour to `memsim`'s trace-driven hardware model:
//!
//! * the particle push is costed by `memsim::push::gpu_push` over the
//!   kernel's **actual** cell-visit order (warp formation over consecutive
//!   indices, per-warp distinct-sector counting, LLC simulation,
//!   same-address atomic serialization);
//! * the sort is costed as the permutation gather it really performs;
//! * the grid-side field kernels are costed as bandwidth-bound streams.
//!
//! The division of labour is strict: kernels describe *what they touch*
//! via [`Access`] at their dispatch sites; the cost arithmetic lives
//! entirely in `memsim`. A [`SimGpu`] accumulates one [`KernelRecord`]
//! per charged dispatch in an internal ledger; callers bracket a step
//! with [`SimGpu::reset`] / [`SimGpu::modeled_time`] to read the modeled
//! per-step cost of the code that just ran.
//!
//! Why functional execution stays bit-identical to `Serial`: `SimGpu`
//! reports `concurrency() == 1` and implements `run_blocks` /
//! `run_chunks_mut` / `reduce_blocks` exactly as `Serial` does (one
//! block, index order, block-ordered reduction). Every kernel in the
//! stack partitions work by `space.concurrency()` and folds partials in
//! block order, so a 1-block space is *structurally* the serial path —
//! cost charging happens strictly outside the arithmetic.

use crate::range::RangePolicy;
use crate::reduce::Reducer;
use crate::space::ExecSpace;
use memsim::gpu::GpuModel;
use memsim::platform::Platform;
use memsim::push::{gpu_push, PushSpec};
use memsim::trace::{GatherScatterSpec, KernelCost};
use std::ops::Range;
use std::sync::Mutex;

/// One kernel's memory-access description, declared at its dispatch site.
///
/// Real backends ([`crate::Serial`], [`crate::Threads`]) ignore these;
/// [`SimGpu`] maps each variant onto the matching `memsim` model. Charge
/// sites should gate on [`ExecSpace::accounting`] when building the
/// description costs anything (e.g. a key-array conversion).
#[derive(Debug)]
pub enum Access<'a> {
    /// The VPIC particle push: `cells[i]` is the cell index of the `i`-th
    /// particle *in the order the kernel visits them* (i.e. after any
    /// sort), which is everything the coalescing/cache/atomic model needs.
    Push {
        /// Per-particle cell indices in execution order.
        cells: &'a [u32],
        /// Addressable interpolator/accumulator entries.
        grid_cells: usize,
    },
    /// A gather(/scatter) over a table, described by its actual key
    /// stream — e.g. the sort's record permutation.
    Gather {
        /// Ledger label.
        label: &'static str,
        /// Table indices in execution order.
        keys: &'a [u32],
        /// Addressable table entries.
        table_len: usize,
        /// Bytes per gathered element.
        elem_bytes: u64,
        /// Streaming bytes per element (ordered write-back).
        stream_bytes: f64,
        /// FLOPs per element.
        flops: f64,
        /// Whether the scatter phase is an atomic accumulation.
        atomic: bool,
    },
    /// A streaming sweep with no reuse structure worth simulating: the
    /// grid-side field kernels (interpolator load, J clear, accumulator
    /// unload, leapfrog advance).
    Stream {
        /// Ledger label.
        label: &'static str,
        /// Total bytes moved.
        bytes: f64,
        /// Total FLOPs executed.
        flops: f64,
    },
}

/// One charged dispatch in a [`SimGpu`] ledger.
#[derive(Debug, Clone, Copy)]
pub struct KernelRecord {
    /// Ledger label (`"push"`, `"sort"`, `"interpolate"`, …).
    pub label: &'static str,
    /// Elements processed (particles, keys; 0 for pure streams).
    pub elements: usize,
    /// The model's full bottleneck decomposition.
    pub cost: KernelCost,
}

/// The modelled-GPU execution space (module docs).
///
/// Cheap to construct per platform; `Sync`, so it drops into any
/// `step_on(&space)` call site. The ledger is behind a mutex, but with
/// `concurrency() == 1` charges never contend.
#[derive(Debug)]
pub struct SimGpu {
    model: GpuModel,
    ledger: Mutex<Vec<KernelRecord>>,
}

impl SimGpu {
    /// A space modelling `platform` at its native LLC capacity.
    ///
    /// # Panics
    /// Panics if `platform` is not a GPU (same contract as [`GpuModel`]).
    pub fn new(platform: Platform) -> Self {
        Self::from_model(GpuModel::new(platform))
    }

    /// A space whose simulated LLC is shrunk by `problem_scale`, for
    /// decks `problem_scale`× smaller than the paper's runs (preserves
    /// working-set : cache ratios — see [`GpuModel::scaled`]).
    pub fn scaled(platform: Platform, problem_scale: f64) -> Self {
        Self::from_model(GpuModel::scaled(platform, problem_scale))
    }

    /// Wrap an existing model.
    pub fn from_model(model: GpuModel) -> Self {
        Self { model, ledger: Mutex::new(Vec::new()) }
    }

    /// The platform being modelled.
    pub fn platform(&self) -> &Platform {
        self.model.platform()
    }

    /// The underlying cost model.
    pub fn model(&self) -> &GpuModel {
        &self.model
    }

    /// Clear the ledger (start of a measured window).
    pub fn reset(&self) {
        self.lock().clear();
    }

    /// Take every record charged since the last reset.
    pub fn drain(&self) -> Vec<KernelRecord> {
        std::mem::take(&mut *self.lock())
    }

    /// Snapshot the records charged since the last reset.
    pub fn records(&self) -> Vec<KernelRecord> {
        self.lock().clone()
    }

    /// Modeled wall time of everything charged since the last reset:
    /// Σ per-kernel `cost.time` (kernels launch back-to-back on one
    /// stream, the paper's execution style).
    pub fn modeled_time(&self) -> f64 {
        self.lock().iter().map(|r| r.cost.time).sum()
    }

    /// Modeled time charged to kernels labelled `label`.
    pub fn kernel_time(&self, label: &str) -> f64 {
        self.lock().iter().filter(|r| r.label == label).map(|r| r.cost.time).sum()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Vec<KernelRecord>> {
        self.ledger.lock().unwrap_or_else(|e| e.into_inner())
    }
}

impl ExecSpace for SimGpu {
    fn concurrency(&self) -> usize {
        1
    }

    fn name(&self) -> &'static str {
        "SimGpu"
    }

    // The three primitives are byte-for-byte `Serial`'s: one block, index
    // order, block-ordered reduction. This is the bit-identity contract.

    fn run_blocks(&self, policy: &RangePolicy, f: &(dyn Fn(Range<usize>) + Sync)) {
        if !policy.is_empty() {
            f(policy.range.clone());
        }
    }

    fn run_chunks_mut<T: Send>(
        &self,
        data: &mut [T],
        _parts: usize,
        f: &(dyn Fn(usize, &mut [T]) + Sync),
    ) {
        if !data.is_empty() {
            f(0, data);
        }
    }

    fn reduce_blocks<R: Reducer>(
        &self,
        policy: &RangePolicy,
        reducer: &R,
        f: &(dyn Fn(Range<usize>) -> R::Value + Sync),
    ) -> R::Value {
        if policy.is_empty() {
            reducer.identity()
        } else {
            f(policy.range.clone())
        }
    }

    fn accounting(&self) -> bool {
        true
    }

    fn charge(&self, access: &Access<'_>) {
        let record = match *access {
            Access::Push { cells, grid_cells } => {
                if cells.is_empty() {
                    return;
                }
                let push = gpu_push(&self.model, &PushSpec::vpic(cells, grid_cells));
                KernelRecord { label: "push", elements: cells.len(), cost: push.cost }
            }
            Access::Gather {
                label,
                keys,
                table_len,
                elem_bytes,
                stream_bytes,
                flops,
                atomic,
            } => {
                if keys.is_empty() {
                    return;
                }
                let cost = self.model.run(&GatherScatterSpec {
                    keys,
                    table_len,
                    elem_bytes,
                    stencil: &[0],
                    stream_bytes,
                    flops,
                    atomic,
                });
                KernelRecord { label, elements: keys.len(), cost }
            }
            Access::Stream { label, bytes, flops } => {
                KernelRecord { label, elements: 0, cost: self.model.stream(bytes, flops) }
            }
        };
        telemetry::count("pk.gpu.charges", 1);
        self.lock().push(record);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reduce::Sum;
    use crate::space::Serial;

    fn v100() -> SimGpu {
        SimGpu::new(memsim::platform::by_name("V100").unwrap())
    }

    #[test]
    fn patterns_match_serial_bitwise() {
        let gpu = v100();
        let serial = Serial;
        let n = 4097;
        // parallel_for_mut: same writes
        let mut a = vec![0.0f32; n];
        let mut b = vec![0.0f32; n];
        serial.parallel_for_mut(&mut a, |i, v| *v = 1.0 / (1.0 + i as f32));
        gpu.parallel_for_mut(&mut b, |i, v| *v = 1.0 / (1.0 + i as f32));
        assert_eq!(a, b);
        // parallel_reduce: identical fold order ⇒ identical f32 bits
        let ra = serial.parallel_reduce(n, Sum::<f32>::new(), |i| a[i]);
        let rb = gpu.parallel_reduce(n, Sum::<f32>::new(), |i| b[i]);
        assert_eq!(ra.to_bits(), rb.to_bits());
        // parallel_scan: identical prefix
        let input: Vec<u64> = (0..257).map(|i| (i % 7) as u64).collect();
        let mut sa = vec![0u64; input.len()];
        let mut sb = vec![0u64; input.len()];
        assert_eq!(serial.parallel_scan(&input, &mut sa), gpu.parallel_scan(&input, &mut sb));
        assert_eq!(sa, sb);
    }

    #[test]
    fn reports_single_lane_accounting_space() {
        let gpu = v100();
        assert_eq!(gpu.concurrency(), 1);
        assert_eq!(gpu.name(), "SimGpu");
        assert!(gpu.accounting());
        assert!(!Serial.accounting());
        assert_eq!(gpu.platform().name, "V100");
    }

    #[test]
    fn push_charge_lands_in_ledger() {
        let gpu = v100();
        let cells: Vec<u32> = (0..4096).map(|i| (i * 37 % 1024) as u32).collect();
        gpu.charge(&Access::Push { cells: &cells, grid_cells: 1024 });
        let recs = gpu.records();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].label, "push");
        assert_eq!(recs[0].elements, 4096);
        assert!(recs[0].cost.time > 0.0);
        assert!(gpu.modeled_time() > 0.0);
        assert_eq!(gpu.kernel_time("push"), gpu.modeled_time());
        assert_eq!(gpu.kernel_time("sort"), 0.0);
    }

    #[test]
    fn stream_and_gather_charges_accumulate_and_reset_clears() {
        let gpu = v100();
        gpu.charge(&Access::Stream { label: "field_solve", bytes: 1.0e6, flops: 5.0e5 });
        let keys: Vec<u32> = (0..1024).rev().collect();
        gpu.charge(&Access::Gather {
            label: "sort",
            keys: &keys,
            table_len: 1024,
            elem_bytes: 32,
            stream_bytes: 32.0,
            flops: 0.0,
            atomic: false,
        });
        assert_eq!(gpu.records().len(), 2);
        let total = gpu.modeled_time();
        assert!(
            (gpu.kernel_time("field_solve") + gpu.kernel_time("sort") - total).abs()
                < 1e-18
        );
        let drained = gpu.drain();
        assert_eq!(drained.len(), 2);
        assert_eq!(gpu.records().len(), 0);
        gpu.charge(&Access::Stream { label: "x", bytes: 1.0, flops: 0.0 });
        gpu.reset();
        assert_eq!(gpu.modeled_time(), 0.0);
    }

    #[test]
    fn empty_charges_are_free() {
        let gpu = v100();
        gpu.charge(&Access::Push { cells: &[], grid_cells: 64 });
        gpu.charge(&Access::Gather {
            label: "sort",
            keys: &[],
            table_len: 1,
            elem_bytes: 32,
            stream_bytes: 32.0,
            flops: 0.0,
            atomic: false,
        });
        assert!(gpu.records().is_empty());
    }

    #[test]
    fn scaled_space_shrinks_model_cache() {
        let p = memsim::platform::by_name("A100").unwrap();
        let native = SimGpu::new(p.clone());
        let scaled = SimGpu::scaled(p, 100.0);
        assert!(scaled.model().llc_bytes() < native.model().llc_bytes() / 50);
    }
}
