//! Hierarchical (team) parallelism, mirroring `Kokkos::TeamPolicy`.
//!
//! A *league* of teams is distributed across workers; the members of one
//! team execute on the same worker. This is the abstraction VPIC 2.0 uses
//! for its particle-push loops: one team per cell (or per particle block)
//! with the team's members striding the particles — on a GPU the team is a
//! thread block, on a CPU it degenerates to a vectorizable inner loop.
//!
//! As in Kokkos host backends, members of a team run **sequentially** on
//! one worker, so [`TeamMember::team_barrier`] is a no-op; code relying on
//! concurrent progress *between* members of one team is out of contract
//! (same contract as `Kokkos::Serial`).

use crate::range::RangePolicy;
use crate::space::ExecSpace;
use std::ops::Range;

/// League/team shape for hierarchical dispatch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TeamPolicy {
    /// Number of teams.
    pub league_size: usize,
    /// Members per team (GPU: threads per block; CPU: inner vector lanes).
    pub team_size: usize,
}

impl TeamPolicy {
    /// A policy with `league_size` teams of `team_size` members.
    pub fn new(league_size: usize, team_size: usize) -> Self {
        Self { league_size, team_size: team_size.max(1) }
    }

    /// Total number of member invocations.
    pub fn total(&self) -> usize {
        self.league_size * self.team_size
    }
}

/// Identity of one team member inside a hierarchical dispatch.
#[derive(Debug, Clone, Copy)]
pub struct TeamMember {
    /// This team's index within the league (`Kokkos: league_rank()`).
    pub league_rank: usize,
    /// This member's index within the team (`Kokkos: team_rank()`).
    pub team_rank: usize,
    /// Members per team.
    pub team_size: usize,
    /// Teams in the league.
    pub league_size: usize,
}

impl TeamMember {
    /// Indices of `0..n` owned by this member under a block-strided
    /// split (`Kokkos::TeamThreadRange` analog): member `r` visits
    /// `r, r+team_size, r+2*team_size, ...`.
    ///
    /// The stride-by-team_size pattern is exactly what makes GPU accesses
    /// coalesce when data is in *strided sort* order (paper §3.2.1).
    pub fn team_thread_range(&self, n: usize) -> impl Iterator<Item = usize> + '_ {
        (self.team_rank..n).step_by(self.team_size)
    }

    /// Contiguous block of `0..n` owned by this member (CPU-friendly
    /// split where each member walks consecutive memory).
    pub fn team_block_range(&self, n: usize) -> Range<usize> {
        let policy = RangePolicy::new(n);
        let blocks = policy.static_blocks(self.team_size);
        blocks.get(self.team_rank).cloned().unwrap_or(n..n)
    }

    /// Synchronize the team. Host backends execute members sequentially,
    /// so this is a no-op (same as `Kokkos::Serial`).
    #[inline(always)]
    pub fn team_barrier(&self) {}
}

/// Dispatch `f` once per (league_rank, team_rank) pair; teams are spread
/// across the space's workers, members of one team stay on one worker and
/// run in rank order.
pub fn parallel_for_team<S: ExecSpace>(
    space: &S,
    policy: TeamPolicy,
    f: impl Fn(TeamMember) + Sync,
) {
    let TeamPolicy { league_size, team_size } = policy;
    space.parallel_for(league_size, |league_rank| {
        for team_rank in 0..team_size {
            f(TeamMember { league_rank, team_rank, team_size, league_size });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::{Serial, Threads};
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn every_member_invoked_exactly_once() {
        let policy = TeamPolicy::new(5, 3);
        let hits: Vec<AtomicUsize> = (0..policy.total()).map(|_| AtomicUsize::new(0)).collect();
        parallel_for_team(&Threads::new(2), policy, |m| {
            hits[m.league_rank * m.team_size + m.team_rank].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn team_thread_range_partitions_with_stride() {
        let m0 = TeamMember { league_rank: 0, team_rank: 0, team_size: 4, league_size: 1 };
        let m1 = TeamMember { league_rank: 0, team_rank: 1, team_size: 4, league_size: 1 };
        let i0: Vec<usize> = m0.team_thread_range(10).collect();
        let i1: Vec<usize> = m1.team_thread_range(10).collect();
        assert_eq!(i0, vec![0, 4, 8]);
        assert_eq!(i1, vec![1, 5, 9]);
        // all members together cover 0..10 exactly once
        let mut all: Vec<usize> = (0..4)
            .flat_map(|r| {
                TeamMember { league_rank: 0, team_rank: r, team_size: 4, league_size: 1 }
                    .team_thread_range(10)
                    .collect::<Vec<_>>()
            })
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn team_block_range_partitions_contiguously() {
        let team_size = 3;
        let mut all = Vec::new();
        for r in 0..team_size {
            let m = TeamMember { league_rank: 0, team_rank: r, team_size, league_size: 1 };
            all.extend(m.team_block_range(10));
        }
        assert_eq!(all, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn team_block_range_excess_ranks_get_empty() {
        let m = TeamMember { league_rank: 0, team_rank: 5, team_size: 8, league_size: 1 };
        assert!(m.team_block_range(3).is_empty());
    }

    #[test]
    fn serial_space_runs_in_rank_order() {
        let order = std::sync::Mutex::new(Vec::new());
        parallel_for_team(&Serial, TeamPolicy::new(2, 2), |m| {
            order.lock().unwrap().push((m.league_rank, m.team_rank));
        });
        assert_eq!(
            order.into_inner().unwrap(),
            vec![(0, 0), (0, 1), (1, 0), (1, 1)]
        );
    }

    #[test]
    fn team_size_zero_clamped_to_one() {
        let p = TeamPolicy::new(4, 0);
        assert_eq!(p.team_size, 1);
        assert_eq!(p.total(), 4);
    }
}
