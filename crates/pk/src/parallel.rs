//! Free-function forms of the parallel patterns.
//!
//! Kokkos exposes `Kokkos::parallel_for(policy, functor)` as free functions
//! that dispatch on the policy's execution space; these wrappers provide the
//! same call style over any [`ExecSpace`].

use crate::range::RangePolicy;
use crate::reduce::{Reducer, Scalar};
use crate::space::ExecSpace;

/// Invoke `f(i)` for each index of `policy` on `space`.
pub fn parallel_for<S: ExecSpace, P: Into<RangePolicy>>(
    space: &S,
    policy: P,
    f: impl Fn(usize) + Sync,
) {
    space.parallel_for(policy, f)
}

/// Invoke `f(i, &mut data[i])` for every element on `space`.
pub fn parallel_for_mut<S: ExecSpace, T: Send>(
    space: &S,
    data: &mut [T],
    f: impl Fn(usize, &mut T) + Sync,
) {
    space.parallel_for_mut(data, f)
}

/// Reduce `f(i)` over the policy's range with `reducer` on `space`.
pub fn parallel_reduce<S: ExecSpace, P: Into<RangePolicy>, R: Reducer>(
    space: &S,
    policy: P,
    reducer: R,
    f: impl Fn(usize) -> R::Value + Sync,
) -> R::Value {
    space.parallel_reduce(policy, reducer, f)
}

/// Exclusive prefix-sum `input` into `out` on `space`, returning the total.
pub fn parallel_scan<S: ExecSpace, T: Scalar>(space: &S, input: &[T], out: &mut [T]) -> T {
    space.parallel_scan(input, out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reduce::Sum;
    use crate::space::{Serial, Threads};
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn free_functions_delegate() {
        let s = Serial;
        let count = AtomicUsize::new(0);
        parallel_for(&s, 10usize, |_| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 10);

        let mut v = vec![0usize; 5];
        parallel_for_mut(&s, &mut v, |i, x| *x = i + 1);
        assert_eq!(v, vec![1, 2, 3, 4, 5]);

        let total = parallel_reduce(&s, 5usize, Sum::<usize>::new(), |i| v[i]);
        assert_eq!(total, 15);

        let mut scan = vec![0usize; 5];
        let tot = parallel_scan(&s, &v, &mut scan);
        assert_eq!(scan, vec![0, 1, 3, 6, 10]);
        assert_eq!(tot, 15);
    }

    #[test]
    fn free_functions_work_on_threads_space() {
        let t = Threads::new(2);
        let mut v = vec![0u64; 100];
        parallel_for_mut(&t, &mut v, |i, x| *x = i as u64);
        let total = parallel_reduce(&t, 100usize, Sum::<u64>::new(), |i| v[i]);
        assert_eq!(total, 99 * 100 / 2);
    }
}
