//! # pk — Portability Kernels
//!
//! A Kokkos-analog performance-portability layer in Rust. This crate provides
//! the abstractions that the rest of the VPIC 2.0 reproduction is written
//! against, mirroring the role Kokkos plays in the paper:
//!
//! * **Views** ([`View1`], [`View2`], [`View3`]) — multi-dimensional arrays
//!   with a runtime memory [`Layout`] (`LayoutRight` = C order, `LayoutLeft`
//!   = Fortran order), mirroring `Kokkos::View`.
//! * **Execution spaces** ([`Serial`], [`Threads`], [`SimGpu`]) — pluggable
//!   backends for the parallel patterns, mirroring `Kokkos::Serial` /
//!   `Kokkos::OpenMP` / `Kokkos::Cuda`. The GPU backend executes the same
//!   kernels functionally (bit-identical to [`Serial`]) while charging their
//!   memory behaviour through the `memsim` hardware model.
//! * **Parallel patterns** — [`parallel_for`], [`parallel_for_mut`],
//!   [`parallel_reduce`], [`parallel_scan`], and hierarchical
//!   [`team::parallel_for_team`], mirroring `Kokkos::parallel_for` et al.
//! * **Atomics** ([`atomic`]) — floating-point `fetch_add` via CAS loops and
//!   a [`atomic::ScatterBuf`] for contended scatter phases (current
//!   deposition), mirroring `Kokkos::atomic_add` / `ScatterView`.
//! * **Sorting** ([`sort`]) — a `sort_by_key` plus the `min_max` and
//!   histogram primitives the paper's Algorithms 1 and 2 need, mirroring
//!   `Kokkos::Experimental::sort_by_key` / `Kokkos::MinMax`.
//!
//! ## Example
//!
//! ```
//! use pk::prelude::*;
//!
//! let space = Serial;
//! let mut y = vec![0.0f64; 1024];
//! let x: Vec<f64> = (0..1024).map(|i| i as f64).collect();
//! // y = 2x  (a trivial parallel_for)
//! space.parallel_for_mut(&mut y, |i, yi| *yi = 2.0 * x[i]);
//! let total: f64 = space.parallel_reduce(0..1024, Sum::<f64>::new(), |i| y[i]);
//! assert_eq!(total, 2.0 * (1023.0 * 1024.0 / 2.0));
//! ```

pub mod atomic;
pub mod gpu;
pub mod layout;
pub mod mdrange;
pub mod parallel;
pub mod pool;
pub mod range;
pub mod reduce;
pub mod sort;
pub mod space;
pub mod team;
pub mod view;

pub use gpu::{Access, KernelRecord, SimGpu};
pub use layout::Layout;
pub use mdrange::{parallel_for_2d, parallel_for_3d, MDRange2, MDRange3};
pub use parallel::{parallel_for, parallel_for_mut, parallel_reduce, parallel_scan};
pub use pool::{DispatchPanic, SendPtr, WorkerPool};
pub use range::{RangePolicy, Schedule};
pub use reduce::{Max, Min, MinMax, Prod, Reducer, Sum};
pub use space::{ExecSpace, Serial, Threads};
pub use view::{View1, View2, View3};

/// Convenience prelude: `use pk::prelude::*;`.
pub mod prelude {
    pub use crate::atomic::{AtomicF32Buf, AtomicF64Buf, ScatterBuf};
    pub use crate::gpu::SimGpu;
    pub use crate::layout::Layout;
    pub use crate::mdrange::{parallel_for_2d, parallel_for_3d, MDRange2, MDRange3};
    pub use crate::parallel::{parallel_for, parallel_for_mut, parallel_reduce, parallel_scan};
    pub use crate::range::{RangePolicy, Schedule};
    pub use crate::reduce::{Max, Min, MinMax, Prod, Reducer, Sum};
    pub use crate::sort::{apply_permutation, min_max, sort_by_key, sort_permutation};
    pub use crate::space::{ExecSpace, Serial, Threads};
    pub use crate::team::{TeamMember, TeamPolicy};
    pub use crate::view::{View1, View2, View3};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn doc_example_holds() {
        let space = Serial;
        let mut y = vec![0.0f64; 16];
        let x: Vec<f64> = (0..16).map(|i| i as f64).collect();
        space.parallel_for_mut(&mut y, |i, yi| *yi = 2.0 * x[i]);
        let total: f64 = space.parallel_reduce(0..16, Sum::<f64>::new(), |i| y[i]);
        assert_eq!(total, 2.0 * (15.0 * 16.0 / 2.0));
    }
}
