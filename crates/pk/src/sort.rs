//! Key/value sorting primitives, mirroring
//! `Kokkos::Experimental::sort_by_key`, plus the `min_max` and histogram
//! helpers the paper's sorting algorithms (Algorithms 1 and 2) are built on.
//!
//! All sorts here are **stable**: the paper's strided orders rely on
//! duplicate keys keeping a deterministic relative order so that the
//! rewritten keys (which encode the duplicate ordinal) reconstruct exactly
//! the intended sequence.

use crate::reduce::{MinMax, Scalar};
use crate::space::ExecSpace;

/// Stable argsort: returns the permutation `perm` such that
/// `keys[perm[0]] <= keys[perm[1]] <= ...`, with equal keys in original
/// order.
pub fn sort_permutation<K: Ord>(keys: &[K]) -> Vec<usize> {
    let mut perm: Vec<usize> = (0..keys.len()).collect();
    perm.sort_by_key(|&i| &keys[i]);
    perm
}

/// Stable counting-sort argsort for unsigned keys within `[min, max]`.
///
/// O(n + range); the fast path `sort_by_key` takes when the key range is
/// small relative to n (the common case for cell indices).
pub fn counting_sort_permutation(keys: &[u64], min: u64, max: u64) -> Vec<usize> {
    debug_assert!(keys.iter().all(|&k| (min..=max).contains(&k)));
    let range = (max - min + 1) as usize;
    let mut counts = vec![0usize; range + 1];
    for &k in keys {
        counts[(k - min) as usize + 1] += 1;
    }
    for i in 1..counts.len() {
        counts[i] += counts[i - 1];
    }
    let mut perm = vec![0usize; keys.len()];
    for (i, &k) in keys.iter().enumerate() {
        let slot = &mut counts[(k - min) as usize];
        perm[*slot] = i;
        *slot += 1;
    }
    perm
}

/// Gather `values` through `perm`: `out[i] = values[perm[i]]`.
pub fn apply_permutation<T: Clone>(perm: &[usize], values: &[T]) -> Vec<T> {
    assert_eq!(perm.len(), values.len(), "permutation length mismatch");
    perm.iter().map(|&i| values[i].clone()).collect()
}

/// In-place permutation apply via cycle decomposition (O(n) time, O(n)
/// bits of scratch, no clone of the whole array).
pub fn permute_in_place<T>(perm: &[usize], values: &mut [T]) {
    let mut done = Vec::new();
    permute_in_place_with(perm, values, &mut done);
}

/// [`permute_in_place`] with a caller-owned `done` scratch buffer, so a
/// hot loop (per-step particle sorting) applying the same-sized
/// permutation to many arrays allocates nothing after warmup. The buffer
/// is resized and reset here; its capacity persists across calls.
pub fn permute_in_place_with<T>(perm: &[usize], values: &mut [T], done: &mut Vec<bool>) {
    assert_eq!(perm.len(), values.len(), "permutation length mismatch");
    done.clear();
    done.resize(perm.len(), false);
    for start in 0..perm.len() {
        if done[start] || perm[start] == start {
            done[start] = true;
            continue;
        }
        // walk the cycle, moving each element to its destination
        let mut i = start;
        loop {
            let src = perm[i];
            done[i] = true;
            if done[src] {
                break;
            }
            values.swap(i, src);
            i = src;
        }
    }
}

/// Threshold on `range/n` above which `sort_by_key` falls back from
/// counting sort to comparison sort.
const COUNTING_SORT_MAX_RANGE_FACTOR: u64 = 8;

/// Stable sort of `values` by `keys`, sorting both in tandem
/// (`Kokkos::Experimental::sort_by_key` analog).
///
/// Uses an O(n + range) counting sort when the key range is at most
/// 8× the element count, otherwise a stable comparison argsort.
pub fn sort_by_key<V>(keys: &mut [u64], values: &mut [V]) {
    assert_eq!(keys.len(), values.len(), "sort_by_key extent mismatch");
    if keys.len() <= 1 {
        return;
    }
    let (min, max) = keys
        .iter()
        .fold((u64::MAX, u64::MIN), |(lo, hi), &k| (lo.min(k), hi.max(k)));
    let range = max - min;
    let perm = if range / (keys.len() as u64) <= COUNTING_SORT_MAX_RANGE_FACTOR {
        counting_sort_permutation(keys, min, max)
    } else {
        sort_permutation(keys)
    };
    permute_in_place(&perm, keys);
    permute_in_place(&perm, values);
}

/// Parallel min/max of a slice (`Kokkos::MinMax` reduction).
///
/// Returns `None` for an empty slice.
pub fn min_max<S: ExecSpace, T: Scalar>(space: &S, data: &[T]) -> Option<(T, T)> {
    if data.is_empty() {
        return None;
    }
    Some(space.parallel_reduce(data.len(), MinMax::<T>::new(), |i| (data[i], data[i])))
}

/// Histogram of `keys` over `[min, max]`: `out[k - min]` counts key `k`.
pub fn histogram(keys: &[u64], min: u64, max: u64) -> Vec<u32> {
    let mut counts = vec![0u32; (max - min + 1) as usize];
    for &k in keys {
        debug_assert!((min..=max).contains(&k), "key {k} outside [{min}, {max}]");
        counts[(k - min) as usize] += 1;
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::Serial;

    #[test]
    fn sort_permutation_is_stable() {
        let keys = vec![2u64, 1, 2, 1, 0];
        let perm = sort_permutation(&keys);
        assert_eq!(perm, vec![4, 1, 3, 0, 2]); // equal keys keep input order
    }

    #[test]
    fn counting_sort_matches_comparison_sort() {
        let keys: Vec<u64> = (0..500).map(|i| ((i * 7919) % 37) as u64 + 5).collect();
        let a = counting_sort_permutation(&keys, 5, 41);
        let b = sort_permutation(&keys);
        assert_eq!(a, b, "both sorts are stable so permutations must agree");
    }

    #[test]
    fn apply_and_inplace_permutation_agree() {
        let keys = vec![3u64, 1, 4, 1, 5, 9, 2, 6];
        let perm = sort_permutation(&keys);
        let gathered = apply_permutation(&perm, &keys);
        let mut inplace = keys.clone();
        permute_in_place(&perm, &mut inplace);
        assert_eq!(gathered, inplace);
        assert!(inplace.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn permute_in_place_identity_is_noop() {
        let mut v = vec![10, 20, 30];
        permute_in_place(&[0, 1, 2], &mut v);
        assert_eq!(v, vec![10, 20, 30]);
    }

    #[test]
    fn permute_in_place_with_reuses_scratch_across_calls() {
        let keys = vec![3u64, 1, 4, 1, 5, 9, 2, 6];
        let perm = sort_permutation(&keys);
        let mut done = Vec::new();
        let mut a = keys.clone();
        permute_in_place_with(&perm, &mut a, &mut done);
        assert_eq!(a, apply_permutation(&perm, &keys));
        let cap = done.capacity();
        assert!(cap >= keys.len());
        // second apply of a same-size permutation must not regrow scratch
        let mut b = keys.clone();
        permute_in_place_with(&perm, &mut b, &mut done);
        assert_eq!(b, a);
        assert_eq!(done.capacity(), cap);
    }

    #[test]
    fn sort_by_key_sorts_both_arrays() {
        let mut keys = vec![5u64, 3, 8, 3, 1];
        let mut vals = vec!["e", "c1", "h", "c2", "a"];
        sort_by_key(&mut keys, &mut vals);
        assert_eq!(keys, vec![1, 3, 3, 5, 8]);
        assert_eq!(vals, vec!["a", "c1", "c2", "e", "h"]); // stability
    }

    #[test]
    fn sort_by_key_handles_trivial_inputs() {
        let mut k: Vec<u64> = vec![];
        let mut v: Vec<u8> = vec![];
        sort_by_key(&mut k, &mut v);
        let mut k = vec![7u64];
        let mut v = vec![1u8];
        sort_by_key(&mut k, &mut v);
        assert_eq!((k[0], v[0]), (7, 1));
    }

    #[test]
    fn sort_by_key_wide_range_uses_comparison_path() {
        // range >> n forces the comparison-sort fallback
        let mut keys = vec![u64::MAX, 0, u64::MAX / 2, 1];
        let mut vals = vec![3, 0, 2, 1];
        sort_by_key(&mut keys, &mut vals);
        assert_eq!(vals, vec![0, 1, 2, 3]);
        assert!(keys.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn min_max_reduction() {
        let s = Serial;
        assert_eq!(min_max::<_, i64>(&s, &[]), None);
        assert_eq!(min_max(&s, &[3i64]), Some((3, 3)));
        assert_eq!(min_max(&s, &[5i64, -2, 8, 0]), Some((-2, 8)));
    }

    #[test]
    fn histogram_counts_each_key() {
        let keys = vec![2u64, 4, 2, 3, 4, 4];
        let h = histogram(&keys, 2, 5);
        assert_eq!(h, vec![2, 1, 3, 0]);
        assert_eq!(h.iter().sum::<u32>() as usize, keys.len());
    }

    #[test]
    fn sorted_output_is_permutation_of_input() {
        let mut keys: Vec<u64> = (0..1000).map(|i| ((i * 31) % 97) as u64).collect();
        let orig = keys.clone();
        let mut vals: Vec<usize> = (0..1000).collect();
        sort_by_key(&mut keys, &mut vals);
        let mut sorted_orig = orig.clone();
        sorted_orig.sort_unstable();
        assert_eq!(keys, sorted_orig);
        // values carry original indices; keys[vals[i]] in orig must equal keys[i]
        for (i, &vi) in vals.iter().enumerate() {
            assert_eq!(orig[vi], keys[i]);
        }
    }
}
