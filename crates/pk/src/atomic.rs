//! Floating-point atomics and scatter buffers.
//!
//! Mirrors `Kokkos::atomic_add` on `float`/`double` (implemented, as on most
//! hardware without native FP atomics, by a compare-and-swap loop on the bit
//! pattern) and `Kokkos::Experimental::ScatterView` (a buffer written by
//! many threads with atomic accumulation).
//!
//! Current deposition in the particle push — the paper's contended scatter
//! phase — goes through these types.

use std::sync::atomic::{AtomicU32, AtomicU64, AtomicUsize, Ordering};

/// Atomically add `val` to the `f32` stored in `cell` (bitwise CAS loop).
#[inline]
pub fn atomic_add_f32(cell: &AtomicU32, val: f32) -> f32 {
    let mut cur = cell.load(Ordering::Relaxed);
    loop {
        let old = f32::from_bits(cur);
        let new = (old + val).to_bits();
        match cell.compare_exchange_weak(cur, new, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return old,
            Err(actual) => cur = actual,
        }
    }
}

/// Atomically add `val` to the `f64` stored in `cell` (bitwise CAS loop).
#[inline]
pub fn atomic_add_f64(cell: &AtomicU64, val: f64) -> f64 {
    let mut cur = cell.load(Ordering::Relaxed);
    loop {
        let old = f64::from_bits(cur);
        let new = (old + val).to_bits();
        match cell.compare_exchange_weak(cur, new, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return old,
            Err(actual) => cur = actual,
        }
    }
}

/// Atomically record `max(cell, val)` for `usize` counters.
#[inline]
pub fn atomic_max_usize(cell: &AtomicUsize, val: usize) -> usize {
    cell.fetch_max(val, Ordering::Relaxed)
}

/// A shared buffer of `f32` accumulators addressable from many threads.
///
/// Plays the role of a `Kokkos::View<float*>` written with `atomic_add`.
#[derive(Debug, Default)]
pub struct AtomicF32Buf {
    cells: Vec<AtomicU32>,
}

impl AtomicF32Buf {
    /// A zeroed buffer of length `n`.
    pub fn zeros(n: usize) -> Self {
        Self { cells: (0..n).map(|_| AtomicU32::new(0f32.to_bits())).collect() }
    }

    /// Build from existing values.
    pub fn from_slice(vals: &[f32]) -> Self {
        Self { cells: vals.iter().map(|v| AtomicU32::new(v.to_bits())).collect() }
    }

    /// Number of accumulators.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Atomic `buf[i] += val`, returning the previous value.
    #[inline]
    pub fn fetch_add(&self, i: usize, val: f32) -> f32 {
        atomic_add_f32(&self.cells[i], val)
    }

    /// Non-atomic read (only safe to interpret once writers are done).
    #[inline]
    pub fn load(&self, i: usize) -> f32 {
        f32::from_bits(self.cells[i].load(Ordering::Relaxed))
    }

    /// Snapshot into a plain vector.
    pub fn to_vec(&self) -> Vec<f32> {
        self.cells.iter().map(|c| f32::from_bits(c.load(Ordering::Relaxed))).collect()
    }

    /// Reset all accumulators to zero.
    pub fn reset(&self) {
        for c in &self.cells {
            c.store(0f32.to_bits(), Ordering::Relaxed);
        }
    }
}

/// A shared buffer of `f64` accumulators addressable from many threads.
#[derive(Debug, Default)]
pub struct AtomicF64Buf {
    cells: Vec<AtomicU64>,
}

impl AtomicF64Buf {
    /// A zeroed buffer of length `n`.
    pub fn zeros(n: usize) -> Self {
        Self { cells: (0..n).map(|_| AtomicU64::new(0f64.to_bits())).collect() }
    }

    /// Build from existing values.
    pub fn from_slice(vals: &[f64]) -> Self {
        Self { cells: vals.iter().map(|v| AtomicU64::new(v.to_bits())).collect() }
    }

    /// Number of accumulators.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Atomic `buf[i] += val`, returning the previous value.
    #[inline]
    pub fn fetch_add(&self, i: usize, val: f64) -> f64 {
        atomic_add_f64(&self.cells[i], val)
    }

    /// Non-atomic read.
    #[inline]
    pub fn load(&self, i: usize) -> f64 {
        f64::from_bits(self.cells[i].load(Ordering::Relaxed))
    }

    /// Snapshot into a plain vector.
    pub fn to_vec(&self) -> Vec<f64> {
        self.cells.iter().map(|c| f64::from_bits(c.load(Ordering::Relaxed))).collect()
    }

    /// Reset all accumulators to zero.
    pub fn reset(&self) {
        for c in &self.cells {
            c.store(0f64.to_bits(), Ordering::Relaxed);
        }
    }
}

/// Contention strategy for a [`ScatterBuf`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ScatterMode {
    /// Every contribution is an atomic read-modify-write on the shared
    /// buffer (Kokkos `ScatterAtomic`; what GPUs do).
    #[default]
    Atomic,
    /// Each worker owns a private replica, combined on `collect`
    /// (Kokkos `ScatterDuplicated`; what low-core-count CPUs prefer).
    Duplicated,
}

/// A scatter-accumulation buffer, mirroring `Kokkos::ScatterView<double*>`.
///
/// With [`ScatterMode::Atomic`] all workers share one atomic buffer; with
/// [`ScatterMode::Duplicated`] each worker id gets a private replica and
/// [`ScatterBuf::collect`] reduces them. The deposition ablation bench
/// compares the two.
#[derive(Debug)]
pub struct ScatterBuf {
    mode: ScatterMode,
    len: usize,
    shared: AtomicF64Buf,
    replicas: Vec<AtomicF64Buf>,
}

impl ScatterBuf {
    /// Create a zeroed scatter buffer of `len` accumulators for up to
    /// `workers` concurrent writers.
    pub fn new(len: usize, workers: usize, mode: ScatterMode) -> Self {
        let replicas = match mode {
            ScatterMode::Atomic => Vec::new(),
            ScatterMode::Duplicated => (0..workers.max(1)).map(|_| AtomicF64Buf::zeros(len)).collect(),
        };
        Self { mode, len, shared: AtomicF64Buf::zeros(len), replicas }
    }

    /// The contention strategy in use.
    pub fn mode(&self) -> ScatterMode {
        self.mode
    }

    /// Number of accumulators.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Accumulate `val` into slot `i` on behalf of `worker`.
    #[inline]
    pub fn add(&self, worker: usize, i: usize, val: f64) {
        match self.mode {
            ScatterMode::Atomic => {
                self.shared.fetch_add(i, val);
            }
            ScatterMode::Duplicated => {
                // replica is still atomic so the same worker id may be used
                // from a work-stealing schedule without UB
                self.replicas[worker % self.replicas.len()].fetch_add(i, val);
            }
        }
    }

    /// Read one accumulator (shared value plus all replica
    /// contributions) without materializing the whole buffer.
    pub fn get(&self, i: usize) -> f64 {
        match self.mode {
            ScatterMode::Atomic => self.shared.load(i),
            ScatterMode::Duplicated => self.replicas.iter().map(|r| r.load(i)).sum(),
        }
    }

    /// Reduce all contributions into a plain vector.
    pub fn collect(&self) -> Vec<f64> {
        let mut out = Vec::new();
        self.collect_into(&mut out);
        out
    }

    /// [`ScatterBuf::collect`], but into caller-owned scratch: `out` is
    /// cleared and refilled in place, so a buffer reused across steps
    /// allocates only until its capacity first reaches `len` (the
    /// no-alloc-after-warmup contract the accumulator unload relies on).
    /// Replicas are summed in replica order, identical to `collect`.
    pub fn collect_into(&self, out: &mut Vec<f64>) {
        out.clear();
        out.resize(self.len, 0.0);
        match self.mode {
            ScatterMode::Atomic => {
                for (i, o) in out.iter_mut().enumerate() {
                    *o = self.shared.load(i);
                }
            }
            ScatterMode::Duplicated => {
                for r in &self.replicas {
                    for (i, o) in out.iter_mut().enumerate() {
                        *o += r.load(i);
                    }
                }
            }
        }
    }

    /// Zero every accumulator (shared and replicas).
    pub fn reset(&self) {
        self.shared.reset();
        for r in &self.replicas {
            r.reset();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::{ExecSpace, Threads};

    #[test]
    fn atomic_add_f32_accumulates() {
        let cell = AtomicU32::new(1.0f32.to_bits());
        let old = atomic_add_f32(&cell, 2.5);
        assert_eq!(old, 1.0);
        assert_eq!(f32::from_bits(cell.load(Ordering::Relaxed)), 3.5);
    }

    #[test]
    fn atomic_add_f64_under_contention_loses_nothing() {
        let buf = AtomicF64Buf::zeros(1);
        let threads = Threads::new(8);
        threads.parallel_for(10_000usize, |_| {
            buf.fetch_add(0, 1.0);
        });
        assert_eq!(buf.load(0), 10_000.0);
    }

    #[test]
    fn f32_buf_roundtrip_and_reset() {
        let buf = AtomicF32Buf::from_slice(&[1.0, 2.0]);
        buf.fetch_add(1, 0.5);
        assert_eq!(buf.to_vec(), vec![1.0, 2.5]);
        buf.reset();
        assert_eq!(buf.to_vec(), vec![0.0, 0.0]);
        assert_eq!(buf.len(), 2);
        assert!(!buf.is_empty());
    }

    #[test]
    fn atomic_max_usize_tracks_max() {
        let c = AtomicUsize::new(3);
        atomic_max_usize(&c, 10);
        atomic_max_usize(&c, 5);
        assert_eq!(c.load(Ordering::Relaxed), 10);
    }

    #[test]
    fn scatter_modes_agree() {
        let workers = 4;
        let threads = Threads::new(workers);
        let n = 64;
        for mode in [ScatterMode::Atomic, ScatterMode::Duplicated] {
            let buf = ScatterBuf::new(n, workers, mode);
            threads.parallel_for(100_000usize, |i| {
                // worker id proxy: contention pattern doesn't affect totals
                buf.add(i % workers, i % n, 1.0);
            });
            let out = buf.collect();
            let total: f64 = out.iter().sum();
            assert_eq!(total, 100_000.0, "mode {mode:?} lost updates");
            // each slot gets ceil/floor of uniform share
            for &v in &out {
                assert!((v - 100_000.0 / n as f64).abs() <= 1.0);
            }
        }
    }

    #[test]
    fn collect_into_matches_collect_and_reuses_capacity() {
        for mode in [ScatterMode::Atomic, ScatterMode::Duplicated] {
            let buf = ScatterBuf::new(16, 3, mode);
            for i in 0..16 {
                buf.add(i % 3, i, i as f64 * 0.5);
                buf.add((i + 1) % 3, i, 1.0);
            }
            let fresh = buf.collect();
            let mut scratch = Vec::new();
            buf.collect_into(&mut scratch);
            assert_eq!(fresh, scratch, "mode {mode:?}");
            // stale contents are overwritten, capacity is reused
            scratch.iter_mut().for_each(|v| *v = f64::NAN);
            let cap = scratch.capacity();
            buf.collect_into(&mut scratch);
            assert_eq!(fresh, scratch);
            assert_eq!(scratch.capacity(), cap, "collect_into reallocated");
        }
    }

    #[test]
    fn scatter_reset_clears_all_replicas() {
        let buf = ScatterBuf::new(4, 2, ScatterMode::Duplicated);
        buf.add(0, 1, 3.0);
        buf.add(1, 1, 4.0);
        assert_eq!(buf.collect()[1], 7.0);
        buf.reset();
        assert!(buf.collect().iter().all(|&v| v == 0.0));
    }
}
