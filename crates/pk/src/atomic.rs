//! Floating-point atomics and scatter buffers.
//!
//! Mirrors `Kokkos::atomic_add` on `float`/`double` (implemented, as on most
//! hardware without native FP atomics, by a compare-and-swap loop on the bit
//! pattern) and `Kokkos::Experimental::ScatterView` (a buffer written by
//! many threads with atomic accumulation).
//!
//! Current deposition in the particle push — the paper's contended scatter
//! phase — goes through these types.

use std::sync::atomic::{AtomicU32, AtomicU64, AtomicUsize, Ordering};

/// Atomically add `val` to the `f32` stored in `cell` (bitwise CAS loop).
#[inline]
pub fn atomic_add_f32(cell: &AtomicU32, val: f32) -> f32 {
    let mut cur = cell.load(Ordering::Relaxed);
    loop {
        let old = f32::from_bits(cur);
        let new = (old + val).to_bits();
        match cell.compare_exchange_weak(cur, new, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return old,
            Err(actual) => cur = actual,
        }
    }
}

/// Atomically add `val` to the `f64` stored in `cell` (bitwise CAS loop).
#[inline]
pub fn atomic_add_f64(cell: &AtomicU64, val: f64) -> f64 {
    let mut cur = cell.load(Ordering::Relaxed);
    loop {
        let old = f64::from_bits(cur);
        let new = (old + val).to_bits();
        match cell.compare_exchange_weak(cur, new, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return old,
            Err(actual) => cur = actual,
        }
    }
}

/// Atomically record `max(cell, val)` for `usize` counters.
#[inline]
pub fn atomic_max_usize(cell: &AtomicUsize, val: usize) -> usize {
    cell.fetch_max(val, Ordering::Relaxed)
}

/// A shared buffer of `f32` accumulators addressable from many threads.
///
/// Plays the role of a `Kokkos::View<float*>` written with `atomic_add`.
#[derive(Debug, Default)]
pub struct AtomicF32Buf {
    cells: Vec<AtomicU32>,
}

impl AtomicF32Buf {
    /// A zeroed buffer of length `n`.
    pub fn zeros(n: usize) -> Self {
        Self { cells: (0..n).map(|_| AtomicU32::new(0f32.to_bits())).collect() }
    }

    /// Build from existing values.
    pub fn from_slice(vals: &[f32]) -> Self {
        Self { cells: vals.iter().map(|v| AtomicU32::new(v.to_bits())).collect() }
    }

    /// Number of accumulators.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Atomic `buf[i] += val`, returning the previous value.
    #[inline]
    pub fn fetch_add(&self, i: usize, val: f32) -> f32 {
        atomic_add_f32(&self.cells[i], val)
    }

    /// Non-atomic read (only safe to interpret once writers are done).
    #[inline]
    pub fn load(&self, i: usize) -> f32 {
        f32::from_bits(self.cells[i].load(Ordering::Relaxed))
    }

    /// Snapshot into a plain vector.
    pub fn to_vec(&self) -> Vec<f32> {
        self.cells.iter().map(|c| f32::from_bits(c.load(Ordering::Relaxed))).collect()
    }

    /// Reset all accumulators to zero.
    pub fn reset(&self) {
        for c in &self.cells {
            c.store(0f32.to_bits(), Ordering::Relaxed);
        }
    }
}

/// A shared buffer of `f64` accumulators addressable from many threads.
#[derive(Debug, Default)]
pub struct AtomicF64Buf {
    cells: Vec<AtomicU64>,
}

impl AtomicF64Buf {
    /// A zeroed buffer of length `n`.
    pub fn zeros(n: usize) -> Self {
        Self { cells: (0..n).map(|_| AtomicU64::new(0f64.to_bits())).collect() }
    }

    /// Build from existing values.
    pub fn from_slice(vals: &[f64]) -> Self {
        Self { cells: vals.iter().map(|v| AtomicU64::new(v.to_bits())).collect() }
    }

    /// Number of accumulators.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Atomic `buf[i] += val`, returning the previous value.
    #[inline]
    pub fn fetch_add(&self, i: usize, val: f64) -> f64 {
        atomic_add_f64(&self.cells[i], val)
    }

    /// Non-atomic read.
    #[inline]
    pub fn load(&self, i: usize) -> f64 {
        f64::from_bits(self.cells[i].load(Ordering::Relaxed))
    }

    /// Snapshot into a plain vector.
    pub fn to_vec(&self) -> Vec<f64> {
        self.cells.iter().map(|c| f64::from_bits(c.load(Ordering::Relaxed))).collect()
    }

    /// Reset all accumulators to zero.
    pub fn reset(&self) {
        for c in &self.cells {
            c.store(0f64.to_bits(), Ordering::Relaxed);
        }
    }
}

/// Contention strategy for a [`ScatterBuf`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ScatterMode {
    /// Every contribution is an atomic read-modify-write on the shared
    /// buffer (Kokkos `ScatterAtomic`; what GPUs do).
    #[default]
    Atomic,
    /// Each worker owns a private replica, combined on `collect`
    /// (Kokkos `ScatterDuplicated`; what low-core-count CPUs prefer).
    Duplicated,
}

/// A scatter-accumulation buffer, mirroring `Kokkos::ScatterView<double*>`.
///
/// With [`ScatterMode::Atomic`] all workers share one atomic buffer; with
/// [`ScatterMode::Duplicated`] each worker id gets a private replica and
/// [`ScatterBuf::collect`] reduces them. The deposition ablation bench
/// compares the two.
#[derive(Debug)]
pub struct ScatterBuf {
    mode: ScatterMode,
    len: usize,
    shared: AtomicF64Buf,
    replicas: Vec<AtomicF64Buf>,
}

impl ScatterBuf {
    /// Create a zeroed scatter buffer of `len` accumulators for up to
    /// `workers` concurrent writers.
    pub fn new(len: usize, workers: usize, mode: ScatterMode) -> Self {
        let replicas = match mode {
            ScatterMode::Atomic => Vec::new(),
            ScatterMode::Duplicated => (0..workers.max(1)).map(|_| AtomicF64Buf::zeros(len)).collect(),
        };
        Self { mode, len, shared: AtomicF64Buf::zeros(len), replicas }
    }

    /// The contention strategy in use.
    pub fn mode(&self) -> ScatterMode {
        self.mode
    }

    /// Number of accumulators.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Accumulate `val` into slot `i` on behalf of `worker`.
    #[inline]
    pub fn add(&self, worker: usize, i: usize, val: f64) {
        match self.mode {
            ScatterMode::Atomic => {
                self.shared.fetch_add(i, val);
            }
            ScatterMode::Duplicated => {
                // replica is still atomic so the same worker id may be used
                // from a work-stealing schedule without UB
                self.replicas[worker % self.replicas.len()].fetch_add(i, val);
            }
        }
    }

    /// Read one accumulator (shared value plus all replica
    /// contributions) without materializing the whole buffer.
    pub fn get(&self, i: usize) -> f64 {
        match self.mode {
            ScatterMode::Atomic => self.shared.load(i),
            ScatterMode::Duplicated => self.replicas.iter().map(|r| r.load(i)).sum(),
        }
    }

    /// Reduce all contributions into a plain vector.
    pub fn collect(&self) -> Vec<f64> {
        let mut out = Vec::new();
        self.collect_into(&mut out);
        out
    }

    /// [`ScatterBuf::collect`], but into caller-owned scratch: `out` is
    /// cleared and refilled in place, so a buffer reused across steps
    /// allocates only until its capacity first reaches `len` (the
    /// no-alloc-after-warmup contract the accumulator unload relies on).
    /// Replicas are summed in replica order, identical to `collect`.
    pub fn collect_into(&self, out: &mut Vec<f64>) {
        out.clear();
        out.resize(self.len, 0.0);
        match self.mode {
            ScatterMode::Atomic => {
                for (i, o) in out.iter_mut().enumerate() {
                    *o = self.shared.load(i);
                }
            }
            ScatterMode::Duplicated => {
                for r in &self.replicas {
                    for (i, o) in out.iter_mut().enumerate() {
                        *o += r.load(i);
                    }
                }
            }
        }
    }

    /// Zero every accumulator (shared and replicas).
    pub fn reset(&self) {
        self.shared.reset();
        for r in &self.replicas {
            r.reset();
        }
    }
}

/// Fixed-point quantum for [`FixedScatterBuf`]: values are stored as
/// `round(val × 2⁴⁰)` in an `i64`. Integer (wrapping) addition is exactly
/// associative and commutative, so accumulated totals are bit-identical
/// for *any* ordering or partitioning of the contributions — across
/// worker counts, scatter modes, and (in the cluster layer) rank
/// decompositions. The quantum, 2⁻⁴⁰ ≈ 9.1e-13, sits far below every
/// physics tolerance in the repo, and current-deposition slot totals are
/// bounded well inside ±2²³ so the 63-bit range never saturates.
pub const FIXED_SCATTER_SCALE: f64 = (1u64 << 40) as f64;

/// A scatter-accumulation buffer over fixed-point `i64` accumulators.
///
/// Same shape as [`ScatterBuf`] (shared-atomic or per-worker-duplicated
/// replicas, selected by [`ScatterMode`]) but order-independent: every
/// contribution is quantized to a multiple of `2⁻⁴⁰` and summed with
/// integer adds, so `collect` returns the same bits no matter how the
/// contributions were interleaved or partitioned. Current deposition uses
/// this so multi-rank halo merges can be bit-identical to the single-rank
/// run.
#[derive(Debug)]
pub struct FixedScatterBuf {
    mode: ScatterMode,
    len: usize,
    shared: Vec<std::sync::atomic::AtomicI64>,
    replicas: Vec<Vec<std::sync::atomic::AtomicI64>>,
}

use std::sync::atomic::AtomicI64;

fn zeros_i64(n: usize) -> Vec<AtomicI64> {
    (0..n).map(|_| AtomicI64::new(0)).collect()
}

impl FixedScatterBuf {
    /// Create a zeroed buffer of `len` accumulators for up to `workers`
    /// concurrent writers.
    pub fn new(len: usize, workers: usize, mode: ScatterMode) -> Self {
        let replicas = match mode {
            ScatterMode::Atomic => Vec::new(),
            ScatterMode::Duplicated => (0..workers.max(1)).map(|_| zeros_i64(len)).collect(),
        };
        Self { mode, len, shared: zeros_i64(len), replicas }
    }

    /// The contention strategy in use.
    pub fn mode(&self) -> ScatterMode {
        self.mode
    }

    /// Number of accumulators.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Quantize a contribution to the fixed-point grid.
    #[inline]
    pub fn quantize(val: f64) -> i64 {
        (val * FIXED_SCATTER_SCALE).round() as i64
    }

    /// Dequantize an accumulated total back to `f64` (exact: a power-of-
    /// two scale only changes the exponent).
    #[inline]
    pub fn dequantize(raw: i64) -> f64 {
        raw as f64 / FIXED_SCATTER_SCALE
    }

    /// Accumulate `val` into slot `i` on behalf of `worker`.
    #[inline]
    pub fn add(&self, worker: usize, i: usize, val: f64) {
        self.add_raw(worker, i, Self::quantize(val));
    }

    /// Accumulate an already-quantized contribution (used by the halo
    /// merge, which exchanges raw fixed-point values between ranks).
    #[inline]
    pub fn add_raw(&self, worker: usize, i: usize, raw: i64) {
        let cell = match self.mode {
            ScatterMode::Atomic => &self.shared[i],
            ScatterMode::Duplicated => &self.replicas[worker % self.replicas.len()][i],
        };
        cell.fetch_add(raw, Ordering::Relaxed);
    }

    /// Read one accumulator's raw fixed-point total (shared value plus
    /// all replica contributions, summed with wrapping adds).
    #[inline]
    pub fn get_raw(&self, i: usize) -> i64 {
        match self.mode {
            ScatterMode::Atomic => self.shared[i].load(Ordering::Relaxed),
            ScatterMode::Duplicated => self
                .replicas
                .iter()
                .fold(0i64, |acc, r| acc.wrapping_add(r[i].load(Ordering::Relaxed))),
        }
    }

    /// Read one accumulator as `f64`.
    pub fn get(&self, i: usize) -> f64 {
        Self::dequantize(self.get_raw(i))
    }

    /// Overwrite slot `i`'s total with `raw` (clears replicas; the value
    /// lands in the shared buffer — or replica 0 in duplicated mode).
    /// Used by the cluster halo fill, which replaces boundary-slot totals
    /// with the owner's merged value.
    pub fn set_raw(&self, i: usize, raw: i64) {
        match self.mode {
            ScatterMode::Atomic => self.shared[i].store(raw, Ordering::Relaxed),
            ScatterMode::Duplicated => {
                self.replicas[0][i].store(raw, Ordering::Relaxed);
                for r in &self.replicas[1..] {
                    r[i].store(0, Ordering::Relaxed);
                }
            }
        }
    }

    /// Reduce all contributions into caller-owned scratch as `f64`
    /// (cleared and refilled in place; no allocation once capacity has
    /// warmed up, matching [`ScatterBuf::collect_into`]).
    pub fn collect_into(&self, out: &mut Vec<f64>) {
        out.clear();
        out.resize(self.len, 0.0);
        for (i, o) in out.iter_mut().enumerate() {
            *o = self.get(i);
        }
    }

    /// Reduce all contributions into a plain vector.
    pub fn collect(&self) -> Vec<f64> {
        let mut out = Vec::new();
        self.collect_into(&mut out);
        out
    }

    /// Zero every accumulator (shared and replicas).
    pub fn reset(&self) {
        for c in &self.shared {
            c.store(0, Ordering::Relaxed);
        }
        for r in &self.replicas {
            for c in r {
                c.store(0, Ordering::Relaxed);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::{ExecSpace, Threads};

    #[test]
    fn atomic_add_f32_accumulates() {
        let cell = AtomicU32::new(1.0f32.to_bits());
        let old = atomic_add_f32(&cell, 2.5);
        assert_eq!(old, 1.0);
        assert_eq!(f32::from_bits(cell.load(Ordering::Relaxed)), 3.5);
    }

    #[test]
    fn atomic_add_f64_under_contention_loses_nothing() {
        let buf = AtomicF64Buf::zeros(1);
        let threads = Threads::new(8);
        threads.parallel_for(10_000usize, |_| {
            buf.fetch_add(0, 1.0);
        });
        assert_eq!(buf.load(0), 10_000.0);
    }

    #[test]
    fn f32_buf_roundtrip_and_reset() {
        let buf = AtomicF32Buf::from_slice(&[1.0, 2.0]);
        buf.fetch_add(1, 0.5);
        assert_eq!(buf.to_vec(), vec![1.0, 2.5]);
        buf.reset();
        assert_eq!(buf.to_vec(), vec![0.0, 0.0]);
        assert_eq!(buf.len(), 2);
        assert!(!buf.is_empty());
    }

    #[test]
    fn atomic_max_usize_tracks_max() {
        let c = AtomicUsize::new(3);
        atomic_max_usize(&c, 10);
        atomic_max_usize(&c, 5);
        assert_eq!(c.load(Ordering::Relaxed), 10);
    }

    #[test]
    fn scatter_modes_agree() {
        let workers = 4;
        let threads = Threads::new(workers);
        let n = 64;
        for mode in [ScatterMode::Atomic, ScatterMode::Duplicated] {
            let buf = ScatterBuf::new(n, workers, mode);
            threads.parallel_for(100_000usize, |i| {
                // worker id proxy: contention pattern doesn't affect totals
                buf.add(i % workers, i % n, 1.0);
            });
            let out = buf.collect();
            let total: f64 = out.iter().sum();
            assert_eq!(total, 100_000.0, "mode {mode:?} lost updates");
            // each slot gets ceil/floor of uniform share
            for &v in &out {
                assert!((v - 100_000.0 / n as f64).abs() <= 1.0);
            }
        }
    }

    #[test]
    fn collect_into_matches_collect_and_reuses_capacity() {
        for mode in [ScatterMode::Atomic, ScatterMode::Duplicated] {
            let buf = ScatterBuf::new(16, 3, mode);
            for i in 0..16 {
                buf.add(i % 3, i, i as f64 * 0.5);
                buf.add((i + 1) % 3, i, 1.0);
            }
            let fresh = buf.collect();
            let mut scratch = Vec::new();
            buf.collect_into(&mut scratch);
            assert_eq!(fresh, scratch, "mode {mode:?}");
            // stale contents are overwritten, capacity is reused
            scratch.iter_mut().for_each(|v| *v = f64::NAN);
            let cap = scratch.capacity();
            buf.collect_into(&mut scratch);
            assert_eq!(fresh, scratch);
            assert_eq!(scratch.capacity(), cap, "collect_into reallocated");
        }
    }

    #[test]
    fn fixed_scatter_is_order_independent() {
        // Same multiset of contributions, three different partitionings /
        // orderings / modes — identical bits out.
        let vals: Vec<f64> = (0..257).map(|i| (i as f64 - 128.0) * 1.7e-3).collect();
        let sum_of = |chunks: &[&[f64]], workers: usize, mode: ScatterMode| -> i64 {
            let buf = FixedScatterBuf::new(1, workers, mode);
            for (w, ch) in chunks.iter().enumerate() {
                for &v in *ch {
                    buf.add(w, 0, v);
                }
            }
            buf.get_raw(0)
        };
        let whole = sum_of(&[&vals], 1, ScatterMode::Atomic);
        let (lo, hi) = vals.split_at(100);
        assert_eq!(whole, sum_of(&[hi, lo], 2, ScatterMode::Duplicated));
        let rev: Vec<f64> = vals.iter().rev().copied().collect();
        assert_eq!(whole, sum_of(&[&rev], 3, ScatterMode::Atomic));
    }

    #[test]
    fn fixed_scatter_quantum_is_small_and_exact() {
        let buf = FixedScatterBuf::new(2, 1, ScatterMode::Atomic);
        buf.add(0, 0, 0.125); // exactly representable on the 2^-40 grid
        assert_eq!(buf.get(0), 0.125);
        buf.add(0, 1, 1.0e-3);
        assert!((buf.get(1) - 1.0e-3).abs() < 1.0 / FIXED_SCATTER_SCALE);
        assert_eq!(
            FixedScatterBuf::dequantize(FixedScatterBuf::quantize(0.75)),
            0.75
        );
    }

    #[test]
    fn fixed_scatter_raw_roundtrip_and_set() {
        for mode in [ScatterMode::Atomic, ScatterMode::Duplicated] {
            let buf = FixedScatterBuf::new(4, 3, mode);
            buf.add(0, 2, 1.5);
            buf.add(2, 2, -0.25);
            let raw = buf.get_raw(2);
            assert_eq!(raw, FixedScatterBuf::quantize(1.25));
            buf.set_raw(2, FixedScatterBuf::quantize(9.0));
            assert_eq!(buf.get(2), 9.0, "mode {mode:?}");
            buf.add_raw(1, 2, FixedScatterBuf::quantize(1.0));
            assert_eq!(buf.get(2), 10.0, "mode {mode:?}");
            buf.reset();
            assert!(buf.collect().iter().all(|&v| v == 0.0));
        }
    }

    #[test]
    fn fixed_scatter_under_contention_loses_nothing() {
        let threads = Threads::new(4);
        let buf = FixedScatterBuf::new(8, 4, ScatterMode::Atomic);
        threads.parallel_for(10_000usize, |i| {
            buf.add(i % 4, i % 8, 0.5);
        });
        let total: f64 = buf.collect().iter().sum();
        assert_eq!(total, 5_000.0);
    }

    #[test]
    fn scatter_reset_clears_all_replicas() {
        let buf = ScatterBuf::new(4, 2, ScatterMode::Duplicated);
        buf.add(0, 1, 3.0);
        buf.add(1, 1, 4.0);
        assert_eq!(buf.collect()[1], 7.0);
        buf.reset();
        assert!(buf.collect().iter().all(|&v| v == 0.0));
    }
}
