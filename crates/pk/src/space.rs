//! Execution spaces: where parallel patterns run.
//!
//! Mirrors `Kokkos::Serial` and `Kokkos::OpenMP`/`Kokkos::Threads`. The
//! GPU execution space of this reproduction is *modelled* rather than real
//! (see the `memsim` crate): kernels run functionally on the host while a
//! hardware model accounts their memory behaviour.

use crate::pool::{self, SendPtr, WorkerPool};
use crate::range::{RangePolicy, Schedule};
use crate::reduce::{Reducer, Scalar};
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

fn sched_name(s: Schedule) -> &'static str {
    match s {
        Schedule::Static => "static",
        Schedule::Dynamic => "dynamic",
    }
}

/// Kokkos-style profiling hook at the dispatch boundary: every pattern
/// opens a named span carrying the backend, worker count, range length,
/// schedule, and (when one is open) the enclosing kernel label — so every
/// kernel in the stack is observable for free when `PK_PROFILE` is set.
fn dispatch_span(
    op: &'static str,
    space: &str,
    workers: usize,
    len: usize,
    schedule: &'static str,
) -> telemetry::Span {
    if !telemetry::enabled() {
        return telemetry::Span::disabled();
    }
    let kernel = telemetry::current_label();
    let s = telemetry::span(op)
        .arg("space", space)
        .arg("workers", workers)
        .arg("len", len)
        .arg("schedule", schedule);
    match kernel {
        Some(k) => s.arg("kernel", k),
        None => s,
    }
}

/// A backend capable of executing the parallel patterns.
///
/// The two required primitives are [`ExecSpace::run_blocks`] (read-only
/// index-space dispatch) and [`ExecSpace::run_chunks_mut`] (disjoint
/// mutable-slice dispatch); everything else has default implementations in
/// terms of them.
pub trait ExecSpace: Sync {
    /// Number of workers this space dispatches to (`Kokkos::concurrency()`).
    fn concurrency(&self) -> usize;

    /// Human-readable backend name.
    fn name(&self) -> &'static str;

    /// Execute `f` over contiguous sub-ranges that exactly partition the
    /// policy's range. Blocks may run concurrently.
    fn run_blocks(&self, policy: &RangePolicy, f: &(dyn Fn(Range<usize>) + Sync));

    /// Split `data` into `parts` near-equal contiguous chunks and run
    /// `f(offset, chunk)` for each, possibly concurrently. `offset` is the
    /// index of the chunk's first element within `data`.
    fn run_chunks_mut<T: Send>(
        &self,
        data: &mut [T],
        parts: usize,
        f: &(dyn Fn(usize, &mut [T]) + Sync),
    );

    /// Reduce per-block partial values with `reducer.join`.
    ///
    /// Each block folds sequentially from the reducer identity, then the
    /// partials are joined in block order, so results are deterministic for
    /// a fixed space/worker count (the Kokkos guarantee).
    fn reduce_blocks<R: Reducer>(
        &self,
        policy: &RangePolicy,
        reducer: &R,
        f: &(dyn Fn(Range<usize>) -> R::Value + Sync),
    ) -> R::Value;

    /// `Kokkos::parallel_for`: invoke `f(i)` for every index in the policy.
    fn parallel_for<P: Into<RangePolicy>>(&self, policy: P, f: impl Fn(usize) + Sync) {
        let policy = policy.into();
        let _hook = dispatch_span(
            "pk.parallel_for",
            self.name(),
            self.concurrency(),
            policy.len(),
            sched_name(policy.schedule),
        );
        match policy.schedule {
            Schedule::Static => {
                self.run_blocks(&policy, &|block| {
                    for i in block {
                        f(i);
                    }
                });
            }
            Schedule::Dynamic => {
                // `effective_chunk` guarantees a nonzero chunk; a zero chunk
                // would make every claim empty and this loop endless.
                let chunk = policy.effective_chunk(self.concurrency()).max(1);
                let next = AtomicUsize::new(policy.range.start);
                let end = policy.range.end;
                // one "block" per worker; each pulls chunks dynamically
                let workers = RangePolicy::new(self.concurrency());
                self.run_blocks(&workers, &|_| loop {
                    // Claim [cur, cur + chunk) ∩ [.., end) without ever
                    // storing a cursor past `end`: a plain fetch_add would
                    // overshoot and, for ranges ending near usize::MAX,
                    // wrap the cursor back below `end`, re-running indices.
                    let claim = next.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |cur| {
                        if cur >= end {
                            None
                        } else {
                            Some(cur.saturating_add(chunk).min(end))
                        }
                    });
                    let Ok(start) = claim else { break };
                    for i in start..start.saturating_add(chunk).min(end) {
                        f(i);
                    }
                });
            }
        }
    }

    /// `Kokkos::parallel_for` over a mutable slice: invoke
    /// `f(i, &mut data[i])` for every element, with disjoint mutable access.
    fn parallel_for_mut<T: Send>(&self, data: &mut [T], f: impl Fn(usize, &mut T) + Sync) {
        let parts = self.concurrency();
        let _hook =
            dispatch_span("pk.parallel_for_mut", self.name(), parts, data.len(), "static");
        self.run_chunks_mut(data, parts, &|offset, chunk| {
            for (k, item) in chunk.iter_mut().enumerate() {
                f(offset + k, item);
            }
        });
    }

    /// Like [`ExecSpace::parallel_for_mut`] but hands each worker a whole
    /// contiguous chunk (for kernels that want to vectorize internally).
    fn parallel_for_chunks<T: Send>(
        &self,
        data: &mut [T],
        parts: usize,
        f: impl Fn(usize, &mut [T]) + Sync,
    ) {
        let _hook =
            dispatch_span("pk.parallel_for_chunks", self.name(), parts, data.len(), "static");
        self.run_chunks_mut(data, parts, &f);
    }

    /// `Kokkos::parallel_reduce`: reduce `f(i)` over the policy's range.
    fn parallel_reduce<P: Into<RangePolicy>, R: Reducer>(
        &self,
        policy: P,
        reducer: R,
        f: impl Fn(usize) -> R::Value + Sync,
    ) -> R::Value {
        let policy = policy.into();
        let _hook = dispatch_span(
            "pk.parallel_reduce",
            self.name(),
            self.concurrency(),
            policy.len(),
            sched_name(policy.schedule),
        );
        self.reduce_blocks(&policy, &reducer, &|block| {
            let mut acc = reducer.identity();
            for i in block {
                acc = reducer.join(acc, f(i));
            }
            acc
        })
    }

    /// `Kokkos::parallel_scan`: exclusive prefix sum of `input` into `out`,
    /// returning the grand total. `out.len()` must equal `input.len()`.
    fn parallel_scan<T: Scalar>(&self, input: &[T], out: &mut [T]) -> T {
        assert_eq!(input.len(), out.len(), "parallel_scan extent mismatch");
        let _hook = dispatch_span(
            "pk.parallel_scan",
            self.name(),
            self.concurrency(),
            input.len(),
            "static",
        );
        let n = input.len();
        if n == 0 {
            return T::ZERO;
        }
        let parts = self.concurrency().min(n);
        let policy = RangePolicy::new(n);
        let blocks = policy.static_blocks(parts);
        // pass 1: per-block sums
        let mut partials: Vec<T> = Vec::with_capacity(blocks.len());
        for b in &blocks {
            let mut s = T::ZERO;
            for i in b.clone() {
                s = s.add(input[i]);
            }
            partials.push(s);
        }
        // exclusive scan of partials (small, serial)
        let mut offsets = Vec::with_capacity(partials.len());
        let mut running = T::ZERO;
        for &p in &partials {
            offsets.push(running);
            running = running.add(p);
        }
        // pass 2: per-block exclusive scan with offset, parallel over chunks
        let starts: Vec<usize> = blocks.iter().map(|b| b.start).collect();
        self.run_chunks_mut(out, parts, &|offset, chunk| {
            let bi = starts
                .binary_search(&offset)
                .expect("chunk boundaries follow static blocks");
            let mut acc = offsets[bi];
            for (k, o) in chunk.iter_mut().enumerate() {
                *o = acc;
                acc = acc.add(input[offset + k]);
            }
        });
        running
    }

    /// `Kokkos::fence()` — all patterns here are synchronous, so this is a
    /// no-op provided for API parity.
    fn fence(&self) {}

    /// Whether this space charges memory-access costs ([`crate::gpu::SimGpu`]
    /// returns `true`). Charge sites should gate any work done purely to
    /// *build* an access description behind this, so real backends pay
    /// nothing.
    fn accounting(&self) -> bool {
        false
    }

    /// Account a kernel's memory behaviour against the space's hardware
    /// model. A no-op on real backends; [`crate::gpu::SimGpu`] records a
    /// costed ledger entry.
    fn charge(&self, _access: &crate::gpu::Access<'_>) {}
}

/// The serial execution space (`Kokkos::Serial`): everything runs on the
/// calling thread, in index order.
#[derive(Debug, Clone, Copy, Default)]
pub struct Serial;

impl ExecSpace for Serial {
    fn concurrency(&self) -> usize {
        1
    }

    fn name(&self) -> &'static str {
        "Serial"
    }

    fn run_blocks(&self, policy: &RangePolicy, f: &(dyn Fn(Range<usize>) + Sync)) {
        if !policy.is_empty() {
            f(policy.range.clone());
        }
    }

    fn run_chunks_mut<T: Send>(
        &self,
        data: &mut [T],
        _parts: usize,
        f: &(dyn Fn(usize, &mut [T]) + Sync),
    ) {
        if !data.is_empty() {
            f(0, data);
        }
    }

    fn reduce_blocks<R: Reducer>(
        &self,
        policy: &RangePolicy,
        reducer: &R,
        f: &(dyn Fn(Range<usize>) -> R::Value + Sync),
    ) -> R::Value {
        if policy.is_empty() {
            reducer.identity()
        } else {
            f(policy.range.clone())
        }
    }
}

/// The host-threads execution space (`Kokkos::Threads`/`Kokkos::OpenMP`
/// analog), backed by a persistent [`WorkerPool`]: the workers are spawned
/// once (shared process-wide per worker count) and park between
/// dispatches, so a kernel launch costs a mutex/condvar hand-off instead
/// of a thread create/join round-trip.
///
/// Cloning is cheap and clones share the same pool. The pool shuts down
/// (joining its threads) when the last handle for its worker count drops.
#[derive(Clone)]
pub struct Threads {
    pool: Arc<WorkerPool>,
}

impl std::fmt::Debug for Threads {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Threads").field("workers", &self.pool.lanes()).finish()
    }
}

impl Threads {
    /// A space with `workers` worker lanes (minimum 1). Lane 0 is the
    /// dispatching caller; lanes 1.. are pooled OS threads.
    pub fn new(workers: usize) -> Self {
        Self { pool: pool::global(workers) }
    }

    /// A space sized to the machine's available parallelism.
    pub fn hardware() -> Self {
        let workers = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        Self::new(workers)
    }
}

impl Default for Threads {
    fn default() -> Self {
        Self::hardware()
    }
}

impl ExecSpace for Threads {
    fn concurrency(&self) -> usize {
        self.pool.lanes()
    }

    fn name(&self) -> &'static str {
        "Threads"
    }

    fn run_blocks(&self, policy: &RangePolicy, f: &(dyn Fn(Range<usize>) + Sync)) {
        let blocks = policy.static_blocks(self.pool.lanes());
        match blocks.len() {
            0 => {}
            1 => f(blocks[0].clone()),
            _ => {
                let lanes = self.pool.lanes();
                let blocks = &blocks;
                self.pool.run(&|lane| {
                    let mut b = lane;
                    while b < blocks.len() {
                        f(blocks[b].clone());
                        b += lanes;
                    }
                });
            }
        }
    }

    fn run_chunks_mut<T: Send>(
        &self,
        data: &mut [T],
        parts: usize,
        f: &(dyn Fn(usize, &mut [T]) + Sync),
    ) {
        let n = data.len();
        if n == 0 {
            return;
        }
        let blocks = RangePolicy::new(n).static_blocks(parts.max(1));
        if blocks.len() <= 1 {
            f(0, data);
            return;
        }
        // Hand lane `k` chunks k, k+lanes, k+2·lanes, …: the strided
        // assignment partitions the chunk list, and the chunks partition
        // `data`, so every element has exactly one mutable owner.
        let base = SendPtr(data.as_mut_ptr());
        let spans: Vec<(usize, usize)> = blocks.iter().map(|b| (b.start, b.len())).collect();
        let lanes = self.pool.lanes();
        let spans = &spans;
        self.pool.run(&move |lane| {
            let ptr = base.get();
            let mut c = lane;
            while c < spans.len() {
                let (start, len) = spans[c];
                // SAFETY: spans are disjoint, in-bounds, and each is
                // visited by exactly one lane (see above).
                let chunk = unsafe { std::slice::from_raw_parts_mut(ptr.add(start), len) };
                f(start, chunk);
                c += lanes;
            }
        });
    }

    fn reduce_blocks<R: Reducer>(
        &self,
        policy: &RangePolicy,
        reducer: &R,
        f: &(dyn Fn(Range<usize>) -> R::Value + Sync),
    ) -> R::Value {
        let blocks = policy.static_blocks(self.pool.lanes());
        match blocks.len() {
            0 => reducer.identity(),
            1 => f(blocks[0].clone()),
            _ => {
                // one slot per block, filled by whichever lane owns the
                // block, then joined in block order: deterministic for a
                // fixed space/worker count (the Kokkos guarantee)
                let slots: Vec<Mutex<Option<R::Value>>> =
                    blocks.iter().map(|_| Mutex::new(None)).collect();
                let lanes = self.pool.lanes();
                let (blocks, slots) = (&blocks, &slots);
                self.pool.run(&|lane| {
                    let mut b = lane;
                    while b < blocks.len() {
                        let v = f(blocks[b].clone());
                        *slots[b].lock().unwrap_or_else(|e| e.into_inner()) = Some(v);
                        b += lanes;
                    }
                });
                let mut acc = reducer.identity();
                for slot in slots {
                    let v = slot
                        .lock()
                        .unwrap_or_else(|e| e.into_inner())
                        .take()
                        .expect("every block produced a partial");
                    acc = reducer.join(acc, v);
                }
                acc
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reduce::{Max, Min, MinMax, Sum};
    use std::sync::atomic::{AtomicU64, Ordering};

    fn spaces() -> (Serial, Threads) {
        (Serial, Threads::new(4))
    }

    #[test]
    fn parallel_for_visits_every_index_once() {
        let (serial, threads) = spaces();
        let n = 1000;
        for run in 0..2 {
            let hits: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
            let f = |i: usize| {
                hits[i].fetch_add(1, Ordering::Relaxed);
            };
            if run == 0 {
                serial.parallel_for(n, f);
            } else {
                threads.parallel_for(n, f);
            }
            assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
        }
    }

    #[test]
    fn parallel_for_dynamic_schedule_covers_range() {
        let threads = Threads::new(3);
        let n = 500;
        let hits: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
        threads.parallel_for(RangePolicy::new(n).dynamic(7), |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn dynamic_schedule_tiny_range_many_workers() {
        // effective_chunk must clamp to ≥ 1 when workers ≫ len — a zero
        // chunk would make every claim empty and the pull loop endless
        let threads = Threads::new(8);
        let hits: Vec<AtomicU64> = (0..3).map(|_| AtomicU64::new(0)).collect();
        threads.parallel_for(RangePolicy::new(3).dynamic(0), |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn dynamic_schedule_survives_range_ending_at_usize_max() {
        // regression: a plain fetch_add claim cursor overshoots `end` and,
        // for ranges ending at usize::MAX, wraps below it, re-running
        // indices forever
        let start = usize::MAX - 61;
        let policy = RangePolicy::over(start..usize::MAX).dynamic(7);
        for workers in [1usize, 3] {
            let threads = Threads::new(workers);
            let count = AtomicU64::new(0);
            let sum = AtomicU64::new(0);
            threads.parallel_for(policy.clone(), |i| {
                count.fetch_add(1, Ordering::Relaxed);
                sum.fetch_add((i - start) as u64, Ordering::Relaxed);
            });
            assert_eq!(count.load(Ordering::Relaxed), 61, "workers={workers}");
            assert_eq!(sum.load(Ordering::Relaxed), 60 * 61 / 2, "workers={workers}");
        }
    }

    #[test]
    fn reduce_blocks_bitwise_deterministic_across_runs() {
        // per-block partials joined in block order: repeated runs at a
        // fixed worker count must agree to the bit even for f32 sums
        let threads = Threads::new(4);
        let policy = RangePolicy::new(10_000);
        let reducer = Sum::<f32>::new();
        let f = |block: Range<usize>| {
            let mut acc = 0.0f32;
            for i in block {
                acc += 1.0 / (1.0 + i as f32);
            }
            acc
        };
        let first = threads.reduce_blocks(&policy, &reducer, &f);
        for _ in 0..20 {
            let again = threads.reduce_blocks(&policy, &reducer, &f);
            assert_eq!(again.to_bits(), first.to_bits());
        }
    }

    #[test]
    fn parallel_for_mut_writes_by_global_index() {
        let (serial, threads) = spaces();
        let mut a = vec![0usize; 257];
        serial.parallel_for_mut(&mut a, |i, v| *v = i * 2);
        assert!(a.iter().enumerate().all(|(i, &v)| v == i * 2));
        let mut b = vec![0usize; 257];
        threads.parallel_for_mut(&mut b, |i, v| *v = i * 2);
        assert_eq!(a, b);
    }

    #[test]
    fn parallel_reduce_matches_sequential() {
        let (serial, threads) = spaces();
        let data: Vec<f64> = (0..10_000).map(|i| (i as f64).sin()).collect();
        let seq: f64 = data.iter().sum();
        let s = serial.parallel_reduce(data.len(), Sum::<f64>::new(), |i| data[i]);
        assert!((s - seq).abs() < 1e-9);
        let t = threads.parallel_reduce(data.len(), Sum::<f64>::new(), |i| data[i]);
        assert!((t - seq).abs() < 1e-9);
    }

    #[test]
    fn parallel_reduce_min_max_minmax() {
        let threads = Threads::new(4);
        let data: Vec<i64> = (0..999).map(|i| ((i * 7919) % 1543) as i64 - 500).collect();
        let mn = threads.parallel_reduce(data.len(), Min::<i64>::new(), |i| data[i]);
        let mx = threads.parallel_reduce(data.len(), Max::<i64>::new(), |i| data[i]);
        let (lo, hi) =
            threads.parallel_reduce(data.len(), MinMax::<i64>::new(), |i| (data[i], data[i]));
        assert_eq!(mn, *data.iter().min().unwrap());
        assert_eq!(mx, *data.iter().max().unwrap());
        assert_eq!((lo, hi), (mn, mx));
    }

    #[test]
    fn parallel_reduce_empty_range_is_identity() {
        let (serial, threads) = spaces();
        assert_eq!(serial.parallel_reduce(0usize, Sum::<u32>::new(), |_| 1), 0);
        assert_eq!(threads.parallel_reduce(0usize, Sum::<u32>::new(), |_| 1), 0);
    }

    #[test]
    fn parallel_scan_exclusive_prefix_sum() {
        let (serial, threads) = spaces();
        let input: Vec<u64> = (0..1000).map(|i| (i % 13) as u64).collect();
        let mut expect = vec![0u64; input.len()];
        let mut acc = 0u64;
        for (i, &v) in input.iter().enumerate() {
            expect[i] = acc;
            acc += v;
        }
        let mut out_s = vec![0u64; input.len()];
        let tot_s = serial.parallel_scan(&input, &mut out_s);
        assert_eq!(out_s, expect);
        assert_eq!(tot_s, acc);
        let mut out_t = vec![0u64; input.len()];
        let tot_t = threads.parallel_scan(&input, &mut out_t);
        assert_eq!(out_t, expect);
        assert_eq!(tot_t, acc);
    }

    #[test]
    fn parallel_scan_empty_and_single() {
        let serial = Serial;
        let mut out: Vec<u32> = vec![];
        assert_eq!(serial.parallel_scan(&[], &mut out), 0);
        let mut out = vec![99u32];
        assert_eq!(serial.parallel_scan(&[5], &mut out), 5);
        assert_eq!(out, vec![0]);
    }

    #[test]
    fn threads_space_reports_concurrency() {
        assert_eq!(Threads::new(7).concurrency(), 7);
        assert_eq!(Threads::new(0).concurrency(), 1);
        assert_eq!(Serial.concurrency(), 1);
        assert!(Threads::hardware().concurrency() >= 1);
    }

    #[test]
    fn parallel_for_chunks_covers_disjointly() {
        let threads = Threads::new(4);
        let mut data = vec![0u8; 103];
        threads.parallel_for_chunks(&mut data, 4, |_, chunk| {
            for v in chunk {
                *v += 1;
            }
        });
        assert!(data.iter().all(|&v| v == 1));
    }

    #[test]
    fn float_reduction_deterministic_per_space() {
        let threads = Threads::new(4);
        let data: Vec<f32> = (0..4096).map(|i| 1.0 / (1.0 + i as f32)).collect();
        let a = threads.parallel_reduce(data.len(), Sum::<f32>::new(), |i| data[i]);
        let b = threads.parallel_reduce(data.len(), Sum::<f32>::new(), |i| data[i]);
        assert_eq!(a, b, "same space + worker count must reproduce bitwise");
    }
}
