//! Property-based tests for the portability layer's core invariants.

use pk::prelude::*;
use proptest::prelude::*;

proptest! {
    /// Both layouts of a View2 store the same logical content.
    #[test]
    fn view2_layout_independence(n0 in 1usize..12, n1 in 1usize..12, seed in any::<u64>()) {
        let mut r = View2::<u64>::new("r", n0, n1, Layout::Right);
        let mut l = View2::<u64>::new("l", n0, n1, Layout::Left);
        let mut s = seed;
        for i in 0..n0 {
            for j in 0..n1 {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                r[(i, j)] = s;
                l[(i, j)] = s;
            }
        }
        for i in 0..n0 {
            for j in 0..n1 {
                prop_assert_eq!(r[(i, j)], l[(i, j)]);
            }
        }
    }

    /// sort_by_key output is sorted and a permutation of the input pairs.
    #[test]
    fn sort_by_key_is_sorted_permutation(pairs in prop::collection::vec((0u64..50, any::<i32>()), 0..200)) {
        let mut keys: Vec<u64> = pairs.iter().map(|p| p.0).collect();
        let mut vals: Vec<i32> = pairs.iter().map(|p| p.1).collect();
        sort_by_key(&mut keys, &mut vals);
        prop_assert!(keys.windows(2).all(|w| w[0] <= w[1]));
        let mut got: Vec<(u64, i32)> = keys.iter().copied().zip(vals.iter().copied()).collect();
        let mut want = pairs.clone();
        got.sort_unstable();
        want.sort_unstable();
        prop_assert_eq!(got, want);
    }

    /// sort_by_key is stable: equal keys keep their input order.
    #[test]
    fn sort_by_key_is_stable(keys_in in prop::collection::vec(0u64..8, 1..150)) {
        let mut keys = keys_in.clone();
        let mut vals: Vec<usize> = (0..keys.len()).collect();
        sort_by_key(&mut keys, &mut vals);
        for w in vals.windows(2).zip(keys.windows(2)) {
            let (v, k) = w;
            if k[0] == k[1] {
                prop_assert!(v[0] < v[1], "equal keys reordered: {:?}", v);
            }
        }
    }

    /// apply_permutation and permute_in_place agree for any valid permutation.
    #[test]
    fn permutation_apply_equivalence(n in 1usize..100, seed in any::<u64>()) {
        // build a deterministic pseudo-random permutation via keyed sort
        let keys: Vec<u64> = (0..n as u64)
            .map(|i| i.wrapping_mul(seed | 1).rotate_left(17))
            .collect();
        let perm = sort_permutation(&keys);
        let values: Vec<u64> = (0..n as u64).collect();
        let gathered = apply_permutation(&perm, &values);
        let mut inplace = values.clone();
        pk::sort::permute_in_place(&perm, &mut inplace);
        prop_assert_eq!(gathered, inplace);
    }

    /// Parallel reductions on Threads equal sequential folds (exact for ints).
    #[test]
    fn threads_reduce_matches_sequential(data in prop::collection::vec(any::<i32>(), 0..500), workers in 1usize..6) {
        let t = Threads::new(workers);
        let sum = t.parallel_reduce(data.len(), Sum::<i64>::new(), |i| data[i] as i64);
        let want: i64 = data.iter().map(|&v| v as i64).sum();
        prop_assert_eq!(sum, want);
        if !data.is_empty() {
            let mn = t.parallel_reduce(data.len(), Min::<i32>::new(), |i| data[i]);
            prop_assert_eq!(mn, *data.iter().min().unwrap());
        }
    }

    /// parallel_scan is the exclusive prefix sum for any worker count.
    #[test]
    fn scan_matches_reference(data in prop::collection::vec(0u64..1000, 0..300), workers in 1usize..6) {
        let t = Threads::new(workers);
        let mut out = vec![0u64; data.len()];
        let total = t.parallel_scan(&data, &mut out);
        let mut acc = 0u64;
        for (i, &v) in data.iter().enumerate() {
            prop_assert_eq!(out[i], acc);
            acc += v;
        }
        prop_assert_eq!(total, acc);
    }

    /// min_max agrees with the standard library on any float data.
    #[test]
    fn min_max_matches_std(data in prop::collection::vec(-1e6f64..1e6, 1..300)) {
        let got = min_max(&Serial, &data).unwrap();
        let lo = data.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = data.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        prop_assert_eq!(got, (lo, hi));
    }

    /// Histogram totals the input length and counts every key.
    #[test]
    fn histogram_is_exact(keys in prop::collection::vec(3u64..40, 0..300)) {
        let h = pk::sort::histogram(&keys, 3, 39);
        prop_assert_eq!(h.iter().map(|&c| c as usize).sum::<usize>(), keys.len());
        for (i, &c) in h.iter().enumerate() {
            let k = 3 + i as u64;
            prop_assert_eq!(c as usize, keys.iter().filter(|&&x| x == k).count());
        }
    }

    /// ScatterBuf modes agree with each other and with a serial fold.
    #[test]
    fn scatter_modes_agree_with_serial(
        updates in prop::collection::vec((0usize..16, -100i32..100), 0..300),
        workers in 1usize..5,
    ) {
        let t = Threads::new(workers);
        let mut want = vec![0.0f64; 16];
        for &(slot, v) in &updates {
            want[slot] += v as f64;
        }
        for mode in [pk::atomic::ScatterMode::Atomic, pk::atomic::ScatterMode::Duplicated] {
            let buf = ScatterBuf::new(16, workers, mode);
            t.parallel_for(updates.len(), |i| {
                let (slot, v) = updates[i];
                buf.add(i % workers, slot, v as f64);
            });
            let got = buf.collect();
            for (g, w) in got.iter().zip(&want) {
                prop_assert!((g - w).abs() < 1e-9, "mode {mode:?}: {g} vs {w}");
            }
        }
    }
}
