//! # serve — simulation-as-a-service
//!
//! A multi-tenant job runtime over the PIC core: tenants submit
//! deck-defined jobs ([`JobSpec`], or the `key=value` deckfile format),
//! an admission controller enforces job-count and memory budgets with
//! typed refusals ([`AdmitError`]), and a weighted round-robin
//! scheduler multiplexes hundreds of concurrent small
//! [`Simulation`](vpic_core::Simulation)s over a bounded set of shared
//! worker pools in slices of step quanta.
//!
//! The mechanism that makes the multiplexing safe is **checkpoint
//! preemption**: beyond the residency cap, jobs are parked as `ckpt`
//! snapshot blobs and resumed — possibly on a different pool — when the
//! scheduler returns to them. Because stepping is worker-count
//! invariant and checkpointing is bit-transparent (both for tiled and
//! tuner-armed jobs, whose engine policy and driver state ride in the
//! blob), a job preempted at *any* step finishes in a bit-identical
//! final state; `tests/serving.rs` property-tests exactly that.
//!
//! Failure is contained per tenant: a worker-lane panic, a typed
//! [`StepError`](vpic_core::StepError), or a corrupted parked blob
//! quarantines the offending job and the fleet keeps stepping. Tuned
//! tenants warm-start from the [`FleetPrior`]: configurations committed
//! by earlier tenants of the same deck class are explored first.
//!
//! See `DESIGN.md` §15 for the design rationale and the README serving
//! quick-start for usage.

pub mod fleet;
pub mod server;
pub mod spec;

pub use fleet::FleetPrior;
pub use server::{
    AdmitError, CancelReason, JobId, JobPhase, JobStatus, ServeError, ServePolicy, ServeReport,
    Server,
};
pub use spec::{JobSpec, SpecError};
