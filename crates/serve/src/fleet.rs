//! Fleet-wide tuning memory: what the server learned from tenants that
//! already finished.
//!
//! Every completed tuned job reports the configuration its tuner
//! committed (and the measured cost that won). New tenants in the same
//! *deck class* — grid shape and particles-per-cell bucket — get their
//! arm list reordered so fleet-proven configurations are explored
//! first. The tuner still measures everything itself (a warm start is a
//! hint, not a verdict), but short jobs commit to a good arm epochs
//! sooner, which is exactly where a thousand-tenant fleet spends its
//! time.

use std::collections::BTreeMap;
use tuner::Config;
use vpic_core::Deck;

/// Aggregate over every commit of one configuration within a class.
#[derive(Debug, Clone)]
struct ArmStat {
    config: Config,
    commits: u64,
    total_cost: f64,
}

impl ArmStat {
    fn mean_cost(&self) -> f64 {
        self.total_cost / self.commits.max(1) as f64
    }
}

/// Per-deck-class record of fleet-committed tuner configurations.
#[derive(Debug, Default)]
pub struct FleetPrior {
    classes: BTreeMap<String, Vec<ArmStat>>,
}

impl FleetPrior {
    /// An empty prior (no tenant has finished yet).
    pub fn new() -> Self {
        Self::default()
    }

    /// The class key for a deck: shape plus a power-of-two ppc bucket.
    /// Decks in one class share a cache-behavior regime, so their tuned
    /// optima transfer; ppc is bucketed because 4 vs 5 particles per
    /// cell tune alike while 4 vs 64 do not.
    pub fn class_of(deck: &Deck) -> String {
        let (nx, ny, nz) = deck.shape;
        format!("{nx}x{ny}x{nz}/ppc{}", deck.ppc.next_power_of_two())
    }

    /// Fold one finished tenant's committed arm into the class record.
    pub fn record_commit(&mut self, class: &str, config: Config, cost_per_particle: f64) {
        let stats = self.classes.entry(class.to_string()).or_default();
        match stats.iter_mut().find(|s| s.config == config) {
            Some(s) => {
                s.commits += 1;
                s.total_cost += cost_per_particle;
            }
            None => stats.push(ArmStat { config, commits: 1, total_cost: cost_per_particle }),
        }
    }

    /// Commits recorded for a class (0 for an unseen class).
    pub fn commits(&self, class: &str) -> u64 {
        self.classes.get(class).map_or(0, |s| s.iter().map(|a| a.commits).sum())
    }

    /// Reorder `arms` in place so fleet-committed configurations for
    /// `class` come first — most-committed first, mean cost as the tie
    /// break — with the relative order of the rest preserved. Returns
    /// how many arms were promoted (0 means cold start).
    pub fn reorder(&self, class: &str, arms: &mut Vec<Config>) -> usize {
        let Some(stats) = self.classes.get(class) else { return 0 };
        // rank each known arm; unknown arms keep rank None
        let rank = |c: &Config| -> Option<(u64, f64)> {
            stats.iter().find(|s| s.config == *c).map(|s| (s.commits, s.mean_cost()))
        };
        let mut promoted: Vec<Config> =
            arms.iter().copied().filter(|c| rank(c).is_some()).collect();
        if promoted.is_empty() {
            return 0;
        }
        promoted.sort_by(|a, b| {
            let (ca, costa) = rank(a).expect("filtered to known arms");
            let (cb, costb) = rank(b).expect("filtered to known arms");
            cb.cmp(&ca).then(costa.total_cmp(&costb))
        });
        let rest: Vec<Config> = arms.iter().copied().filter(|c| rank(c).is_none()).collect();
        let n = promoted.len();
        promoted.extend(rest);
        *arms = promoted;
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pk::atomic::ScatterMode;
    use psort::SortOrder;
    use vsimd::Strategy;

    fn arm(order: Option<SortOrder>, interval: usize) -> Config {
        Config { order, interval, strategy: Strategy::Auto, scatter: ScatterMode::Atomic, tile: None }
    }

    #[test]
    fn class_buckets_ppc() {
        let a = Deck::uniform(6, 6, 6, 4);
        let b = Deck::uniform(6, 6, 6, 3);
        let c = Deck::uniform(6, 6, 6, 64);
        assert_eq!(FleetPrior::class_of(&a), FleetPrior::class_of(&b));
        assert_ne!(FleetPrior::class_of(&a), FleetPrior::class_of(&c));
    }

    #[test]
    fn cold_start_reorders_nothing() {
        let prior = FleetPrior::new();
        let mut arms = vec![arm(None, 0), arm(Some(SortOrder::Standard), 20)];
        let orig = arms.clone();
        assert_eq!(prior.reorder("6x6x6/ppc4", &mut arms), 0);
        assert_eq!(arms, orig);
    }

    #[test]
    fn committed_arms_are_promoted_most_committed_first() {
        let mut prior = FleetPrior::new();
        let hot = arm(Some(SortOrder::Standard), 20);
        let warm = arm(Some(SortOrder::Strided), 20);
        prior.record_commit("c", warm, 3.0);
        prior.record_commit("c", hot, 2.0);
        prior.record_commit("c", hot, 2.5);
        let mut arms = vec![arm(None, 0), warm, arm(Some(SortOrder::Standard), 5), hot];
        let n = prior.reorder("c", &mut arms);
        assert_eq!(n, 2);
        assert_eq!(arms[0], hot, "two commits beat one");
        assert_eq!(arms[1], warm);
        // the unknown arms keep their relative order behind the prior
        assert_eq!(arms[2], arm(None, 0));
        assert_eq!(arms[3], arm(Some(SortOrder::Standard), 5));
        assert_eq!(prior.commits("c"), 3);
        assert_eq!(prior.commits("elsewhere"), 0);
    }

    #[test]
    fn tie_break_is_mean_cost() {
        let mut prior = FleetPrior::new();
        let cheap = arm(Some(SortOrder::Standard), 20);
        let dear = arm(Some(SortOrder::Strided), 20);
        prior.record_commit("c", dear, 9.0);
        prior.record_commit("c", cheap, 1.0);
        let mut arms = vec![dear, cheap];
        prior.reorder("c", &mut arms);
        assert_eq!(arms, vec![cheap, dear]);
    }
}
