//! The job submission surface: what a tenant hands the server.
//!
//! A [`JobSpec`] is a deck plus run-control knobs (step budget,
//! scheduler weight, deadline, tuning/tiling requests). Tenants can
//! build one programmatically or submit a **deckfile** — a tiny
//! `key=value` text format ([`JobSpec::parse`]) mirroring how VPIC runs
//! are configured by input decks. Parsing is total: every malformed
//! input is a typed [`SpecError`], never a panic.

use std::path::PathBuf;
use vpic_core::{Deck, TilePolicy};

/// Why a deckfile (or a programmatic spec) was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpecError {
    /// A required key is absent (`deck=`, `steps=`).
    MissingKey(&'static str),
    /// A key the format does not define.
    UnknownKey {
        /// 1-based deckfile line.
        line: usize,
        /// The offending key.
        key: String,
    },
    /// A token without `=`, or a value that does not parse.
    BadValue {
        /// 1-based deckfile line.
        line: usize,
        /// The key whose value failed.
        key: String,
        /// The raw value text.
        value: String,
        /// What the parser wanted.
        expected: &'static str,
    },
    /// `deck=` names no known deck.
    UnknownDeck(String),
    /// The assembled spec violates an invariant (zero steps, zero
    /// weight, degenerate grid…).
    Invalid(&'static str),
}

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::MissingKey(k) => write!(f, "deckfile is missing required key `{k}`"),
            Self::UnknownKey { line, key } => {
                write!(f, "deckfile line {line}: unknown key `{key}`")
            }
            Self::BadValue { line, key, value, expected } => {
                write!(f, "deckfile line {line}: `{key}={value}` — expected {expected}")
            }
            Self::UnknownDeck(d) => {
                write!(f, "unknown deck `{d}` (expected uniform, weibel, or lpi)")
            }
            Self::Invalid(why) => write!(f, "invalid job spec: {why}"),
        }
    }
}

impl std::error::Error for SpecError {}

/// A complete, validated job description.
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// Tenant-visible job name (defaults to the deck name).
    pub name: String,
    /// The simulation configuration.
    pub deck: Deck,
    /// Total steps the job wants.
    pub steps: u64,
    /// Scheduler share: slices granted per round (≥ 1).
    pub weight: u32,
    /// Cancel the job if it has not finished within this many scheduler
    /// rounds of admission. Rounds, not wall time, so the contract is
    /// deterministic and testable.
    pub deadline_rounds: Option<u64>,
    /// Arm the adaptive tuner for this job.
    pub tune: bool,
    /// Run the job on the tiled execution path under this policy.
    pub tile: Option<TilePolicy>,
}

impl JobSpec {
    /// A plain job: run `deck` for `steps` steps at weight 1, no
    /// deadline, no tuning, untiled.
    pub fn new(deck: Deck, steps: u64) -> Self {
        Self {
            name: deck.name.clone(),
            deck,
            steps,
            weight: 1,
            deadline_rounds: None,
            tune: false,
            tile: None,
        }
    }

    /// Estimated resident working set: the paper's per-cell field/
    /// interpolator/accumulator state plus the SoA particle record
    /// (see `memsim::push::working_set_bytes`). Admission control
    /// prices the job at this estimate.
    pub fn estimated_bytes(&self) -> u64 {
        let (nx, ny, nz) = self.deck.shape;
        let cells = nx * ny * nz;
        let species = if self.deck.ions { 2 } else { 1 };
        memsim::push::working_set_bytes(cells, self.deck.electron_count() * species)
    }

    /// Check the invariants the scheduler relies on.
    pub fn validate(&self) -> Result<(), SpecError> {
        if self.steps == 0 {
            return Err(SpecError::Invalid("steps must be ≥ 1"));
        }
        if self.weight == 0 {
            return Err(SpecError::Invalid("weight must be ≥ 1"));
        }
        let (nx, ny, nz) = self.deck.shape;
        if nx == 0 || ny == 0 || nz == 0 {
            return Err(SpecError::Invalid("grid extent must be ≥ 1 in every axis"));
        }
        if self.deck.ppc == 0 {
            return Err(SpecError::Invalid("ppc must be ≥ 1"));
        }
        if let Some(t) = &self.tile {
            if t.tile_cells == 0 || t.max_hot == 0 {
                return Err(SpecError::Invalid("tile_cells and tile_hot must be ≥ 1"));
            }
        }
        if self.deadline_rounds == Some(0) {
            return Err(SpecError::Invalid("deadline_rounds must be ≥ 1"));
        }
        Ok(())
    }

    /// Parse a deckfile: whitespace-separated `key=value` tokens,
    /// `#` starts a comment, blank lines ignored.
    ///
    /// ```text
    /// # a tuned, tiled Weibel tenant
    /// deck=weibel nx=6 ny=6 nz=6 ppc=4 drift=0.3
    /// steps=40 weight=2 deadline_rounds=200
    /// tune=on tile=64 tile_hot=2 tile_compress=on
    /// ```
    ///
    /// Keys: `deck` (uniform|weibel|lpi, required), `nx ny nz` (default
    /// 6), `ppc` (default 4), `drift` (weibel beam speed), `seed`,
    /// `name`, `steps` (required), `weight`, `deadline_rounds`,
    /// `tune` (on|off), `tile` (cells per tile — presence enables the
    /// tiled path), `tile_hot`, `tile_compress` (on|off), `spill`
    /// (directory for tile spill files).
    pub fn parse(text: &str) -> Result<Self, SpecError> {
        let mut deck_kind: Option<String> = None;
        let mut name: Option<String> = None;
        let (mut nx, mut ny, mut nz) = (6usize, 6usize, 6usize);
        let mut ppc = 4usize;
        let mut drift = 0.3f32;
        let mut seed: Option<u64> = None;
        let mut steps: Option<u64> = None;
        let mut weight = 1u32;
        let mut deadline_rounds: Option<u64> = None;
        let mut tune = false;
        let mut tile_cells: Option<usize> = None;
        let mut tile_hot: Option<usize> = None;
        let mut tile_compress = true;
        let mut spill: Option<PathBuf> = None;

        for (li, raw) in text.lines().enumerate() {
            let line = li + 1;
            let body = raw.split('#').next().unwrap_or("");
            for tok in body.split_whitespace() {
                let Some((key, value)) = tok.split_once('=') else {
                    return Err(SpecError::BadValue {
                        line,
                        key: tok.to_string(),
                        value: String::new(),
                        expected: "a key=value token",
                    });
                };
                let bad = |expected: &'static str| SpecError::BadValue {
                    line,
                    key: key.to_string(),
                    value: value.to_string(),
                    expected,
                };
                match key {
                    "deck" => deck_kind = Some(value.to_string()),
                    "name" => name = Some(value.to_string()),
                    "nx" => nx = value.parse().map_err(|_| bad("a cell count"))?,
                    "ny" => ny = value.parse().map_err(|_| bad("a cell count"))?,
                    "nz" => nz = value.parse().map_err(|_| bad("a cell count"))?,
                    "ppc" => ppc = value.parse().map_err(|_| bad("particles per cell"))?,
                    "drift" => drift = value.parse().map_err(|_| bad("a beam speed"))?,
                    "seed" => seed = Some(value.parse().map_err(|_| bad("an RNG seed"))?),
                    "steps" => steps = Some(value.parse().map_err(|_| bad("a step count"))?),
                    "weight" => weight = value.parse().map_err(|_| bad("a scheduler weight"))?,
                    "deadline_rounds" => {
                        deadline_rounds =
                            Some(value.parse().map_err(|_| bad("a round count"))?)
                    }
                    "tune" => tune = parse_switch(value).ok_or_else(|| bad("on or off"))?,
                    "tile" => {
                        // `TilePolicy::new` clamps 0 to 1; reject here
                        // so the tenant hears about the typo instead
                        let cells: usize = value.parse().map_err(|_| bad("cells per tile"))?;
                        if cells == 0 {
                            return Err(bad("a nonzero tile size"));
                        }
                        tile_cells = Some(cells);
                    }
                    "tile_hot" => {
                        tile_hot = Some(value.parse().map_err(|_| bad("a hot-pool size"))?)
                    }
                    "tile_compress" => {
                        tile_compress = parse_switch(value).ok_or_else(|| bad("on or off"))?
                    }
                    "spill" => spill = Some(PathBuf::from(value)),
                    _ => {
                        return Err(SpecError::UnknownKey { line, key: key.to_string() });
                    }
                }
            }
        }

        let kind = deck_kind.ok_or(SpecError::MissingKey("deck"))?;
        let mut deck = match kind.as_str() {
            "uniform" => Deck::uniform(nx, ny, nz, ppc),
            "weibel" => Deck::weibel(nx, ny, nz, ppc, drift),
            "lpi" => Deck::lpi(nx, ny, nz, ppc),
            _ => return Err(SpecError::UnknownDeck(kind)),
        };
        if let Some(s) = seed {
            deck.seed = s;
        }
        let tile = tile_cells.map(|cells| {
            let mut p = TilePolicy::new(cells);
            p.compress = tile_compress;
            if let Some(hot) = tile_hot {
                p.max_hot = hot;
            }
            p.spill_dir = spill.clone();
            p
        });
        let spec = Self {
            name: name.unwrap_or_else(|| deck.name.clone()),
            deck,
            steps: steps.ok_or(SpecError::MissingKey("steps"))?,
            weight,
            deadline_rounds,
            tune,
            tile,
        };
        spec.validate()?;
        Ok(spec)
    }
}

fn parse_switch(v: &str) -> Option<bool> {
    match v {
        "on" | "true" | "1" => Some(true),
        "off" | "false" | "0" => Some(false),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_full_deckfile() {
        let spec = JobSpec::parse(
            "# tenant 7\n\
             deck=weibel nx=5 ny=6 nz=7 ppc=3 drift=0.25 seed=99\n\
             name=tenant-7 steps=40 weight=2 deadline_rounds=200\n\
             tune=on tile=64 tile_hot=2 tile_compress=off\n",
        )
        .expect("valid deckfile");
        assert_eq!(spec.name, "tenant-7");
        assert_eq!(spec.deck.shape, (5, 6, 7));
        assert_eq!(spec.deck.ppc, 3);
        assert_eq!(spec.deck.seed, 99);
        assert_eq!(spec.steps, 40);
        assert_eq!(spec.weight, 2);
        assert_eq!(spec.deadline_rounds, Some(200));
        assert!(spec.tune);
        let tile = spec.tile.expect("tiled");
        assert_eq!(tile.tile_cells, 64);
        assert_eq!(tile.max_hot, 2);
        assert!(!tile.compress);
    }

    #[test]
    fn defaults_fill_in() {
        let spec = JobSpec::parse("deck=uniform steps=5").expect("minimal deckfile");
        assert_eq!(spec.deck.shape, (6, 6, 6));
        assert_eq!(spec.weight, 1);
        assert!(!spec.tune);
        assert!(spec.tile.is_none());
        assert_eq!(spec.name, spec.deck.name);
    }

    #[test]
    fn every_malformed_input_is_typed() {
        assert!(matches!(JobSpec::parse("steps=5"), Err(SpecError::MissingKey("deck"))));
        assert!(matches!(JobSpec::parse("deck=uniform"), Err(SpecError::MissingKey("steps"))));
        assert!(matches!(
            JobSpec::parse("deck=vlasov steps=5"),
            Err(SpecError::UnknownDeck(d)) if d == "vlasov"
        ));
        assert!(matches!(
            JobSpec::parse("deck=uniform steps=5 flux=9"),
            Err(SpecError::UnknownKey { line: 1, key }) if key == "flux"
        ));
        assert!(matches!(
            JobSpec::parse("deck=uniform\nsteps=banana"),
            Err(SpecError::BadValue { line: 2, .. })
        ));
        assert!(matches!(
            JobSpec::parse("deck=uniform steps"),
            Err(SpecError::BadValue { .. })
        ));
        assert!(matches!(
            JobSpec::parse("deck=uniform steps=0"),
            Err(SpecError::Invalid(_))
        ));
        assert!(matches!(
            JobSpec::parse("deck=uniform steps=5 weight=0"),
            Err(SpecError::Invalid(_))
        ));
        assert!(matches!(
            JobSpec::parse("deck=uniform steps=5 tile=0"),
            Err(SpecError::BadValue { .. })
        ));
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let spec = JobSpec::parse(
            "\n# header\n  deck=lpi   # trailing comment\n\nsteps=3\n",
        )
        .expect("comments stripped");
        assert!(spec.deck.laser.is_some());
    }

    #[test]
    fn estimate_scales_with_the_deck() {
        let small = JobSpec::parse("deck=uniform nx=4 ny=4 nz=4 ppc=2 steps=1").unwrap();
        let large = JobSpec::parse("deck=uniform nx=8 ny=8 nz=8 ppc=8 steps=1").unwrap();
        assert!(large.estimated_bytes() > 4 * small.estimated_bytes());
    }
}
