//! The multi-tenant job runtime: admission, fair scheduling, preemption,
//! and graceful degradation.
//!
//! One [`Server`] multiplexes many small [`Simulation`]s over a bounded
//! set of shared worker pools. The design choices, in order of
//! importance:
//!
//! * **Fairness** — a weighted round-robin over *step quanta*: each
//!   round visits every runnable job in admission order and grants it
//!   `weight` slices of `quantum` steps. Equal-weight tenants never
//!   drift more than one round's worth of steps apart.
//! * **Bounded residency** — at most `max_resident` simulations are
//!   live at once; the rest are **parked** as checkpoint blobs
//!   ([`Simulation::checkpoint_bytes`]). Parking and resuming are
//!   bit-transparent, and the untiled/tiled step paths are worker-count
//!   invariant, so a job preempted at any step and resumed — on any
//!   pool — ends in a bit-identical final state (property-tested in
//!   `tests/serving.rs`).
//! * **Typed failure, contained** — admission past the budget is a
//!   typed [`AdmitError`]; a lane panic, a torn-invariant
//!   [`StepError`], or a corrupt parked blob **quarantines that job
//!   only**; the fleet keeps stepping. No panic escapes the job loop.
//! * **Fleet learning** — tuned tenants start from the
//!   [`FleetPrior`](crate::fleet::FleetPrior): arms other tenants of
//!   the same deck class committed are explored first.

use crate::fleet::FleetPrior;
use crate::spec::{JobSpec, SpecError};
use pk::atomic::ScatterMode;
use pk::Threads;
use psort::SortOrder;
use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use telemetry::{gauge_set, hist};
use tuner::{Config, Tuner};
use vpic_core::{Simulation, TuneDriver};
use vsimd::Strategy;

/// Why a job submission was refused at the door. Admission control is
/// the *only* place the server says no; once admitted, a job either
/// completes, hits its deadline, is cancelled, or is quarantined.
#[derive(Debug, Clone, PartialEq)]
pub enum AdmitError {
    /// The deckfile (or programmatic spec) is malformed.
    Spec(SpecError),
    /// The server already holds `max_jobs` unfinished jobs.
    JobBudget {
        /// Unfinished jobs currently admitted.
        active: usize,
        /// The policy ceiling.
        max_jobs: usize,
    },
    /// Admitting the job would push the estimated working-set total
    /// past the memory budget.
    MemoryBudget {
        /// This job's estimated bytes ([`JobSpec::estimated_bytes`]).
        estimated: u64,
        /// Bytes already pledged to admitted unfinished jobs.
        pledged: u64,
        /// The policy ceiling.
        max_bytes: u64,
    },
}

impl std::fmt::Display for AdmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Spec(e) => write!(f, "rejected: {e}"),
            Self::JobBudget { active, max_jobs } => {
                write!(f, "rejected: job budget exhausted ({active}/{max_jobs} jobs active)")
            }
            Self::MemoryBudget { estimated, pledged, max_bytes } => write!(
                f,
                "rejected: memory budget exhausted ({estimated} B requested, \
                 {pledged}/{max_bytes} B pledged)"
            ),
        }
    }
}

impl std::error::Error for AdmitError {}

impl From<SpecError> for AdmitError {
    fn from(e: SpecError) -> Self {
        Self::Spec(e)
    }
}

/// An operation referenced a job the server cannot act on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeError {
    /// No job with this id was ever admitted.
    UnknownJob(JobId),
    /// The job exists but is not in a state the operation applies to
    /// (e.g. parking a job that already finished).
    NotRunnable(JobId),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::UnknownJob(id) => write!(f, "unknown job {id}"),
            Self::NotRunnable(id) => write!(f, "job {id} is not runnable"),
        }
    }
}

impl std::error::Error for ServeError {}

/// Opaque job handle, unique per server for its lifetime.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct JobId(pub u64);

impl std::fmt::Display for JobId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "j{}", self.0)
    }
}

/// Server sizing and scheduling policy.
#[derive(Debug, Clone)]
pub struct ServePolicy {
    /// Maximum unfinished jobs admitted at once.
    pub max_jobs: usize,
    /// Memory budget: the sum of admitted unfinished jobs' estimated
    /// working sets may not exceed this. Conservative — a parked job
    /// actually costs only its snapshot blob — but it guarantees the
    /// server can always make any admitted job resident.
    pub max_bytes: u64,
    /// Simulations held live at once; beyond this, the least recently
    /// scheduled resident job is parked to a checkpoint blob.
    pub max_resident: usize,
    /// Lane counts of the shared worker pools. Slices rotate over
    /// these, so migration between pools is the steady state, not an
    /// edge case.
    pub pools: Vec<usize>,
    /// Steps per scheduler slice.
    pub quantum: u32,
    /// Epoch length (steps) for tuned tenants.
    pub tuner_epoch: usize,
    /// Record per-tenant `serve.job.*` histograms in addition to the
    /// fleet-wide ones.
    pub per_job_metrics: bool,
}

impl Default for ServePolicy {
    fn default() -> Self {
        Self {
            max_jobs: 256,
            max_bytes: 256 << 20,
            max_resident: 8,
            pools: vec![4, 2],
            quantum: 4,
            tuner_epoch: 3,
            per_job_metrics: true,
        }
    }
}

/// Why a job was cancelled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CancelReason {
    /// [`Server::cancel`] was called.
    Requested,
    /// The job missed its [`JobSpec::deadline_rounds`] deadline.
    Deadline,
}

/// Where a job is in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobPhase {
    /// Admitted, simulation not built yet.
    Queued,
    /// Live in memory, receiving slices.
    Resident,
    /// Preempted to a checkpoint blob.
    Parked,
    /// Ran its full step budget; final state retained as a blob.
    Done,
    /// Cancelled by request or deadline.
    Cancelled,
    /// Failed (lane panic, step error, corrupt blob); removed from
    /// scheduling, fleet unaffected.
    Quarantined,
}

/// A point-in-time job summary.
#[derive(Debug, Clone)]
pub struct JobStatus {
    /// The job's handle.
    pub id: JobId,
    /// Tenant-visible name.
    pub name: String,
    /// Lifecycle phase.
    pub phase: JobPhase,
    /// Steps completed.
    pub steps_done: u64,
    /// Steps requested.
    pub steps_total: u64,
    /// Quarantine or cancellation detail, empty otherwise.
    pub detail: String,
}

enum State {
    Fresh,
    Resident(Box<Simulation>),
    Parked(Vec<u8>),
    Done {
        final_blob: Vec<u8>,
        schedule: Option<Vec<vpic_core::tune::ScheduleEntry>>,
    },
    Cancelled(CancelReason),
    Quarantined(String),
    /// Transient placeholder while a slice owns the simulation; never
    /// observable between public calls.
    Torn,
}

struct Job {
    spec: JobSpec,
    state: State,
    steps_done: u64,
    admitted_round: u64,
    admitted_ns: u64,
    started: bool,
    last_scheduled: u64,
    last_pool: Option<usize>,
    step_hist: &'static telemetry::Histogram,
    wait_hist: &'static telemetry::Histogram,
    preempt_hist: &'static telemetry::Histogram,
}

impl Job {
    fn phase(&self) -> JobPhase {
        match &self.state {
            State::Fresh => JobPhase::Queued,
            State::Resident(_) => JobPhase::Resident,
            State::Parked(_) => JobPhase::Parked,
            State::Done { .. } => JobPhase::Done,
            State::Cancelled(_) => JobPhase::Cancelled,
            State::Quarantined(_) => JobPhase::Quarantined,
            State::Torn => unreachable!("torn state observed outside a slice"),
        }
    }

    fn runnable(&self) -> bool {
        matches!(self.state, State::Fresh | State::Resident(_) | State::Parked(_))
    }
}

/// What one [`Server::run_until_done`] drain observed.
#[derive(Debug, Clone, Default)]
pub struct ServeReport {
    /// Scheduler rounds executed.
    pub rounds: u64,
    /// Jobs that completed their step budget.
    pub completed: u64,
    /// Jobs cancelled (request or deadline).
    pub cancelled: u64,
    /// Jobs quarantined.
    pub quarantined: u64,
    /// Total simulation steps executed across the fleet.
    pub steps: u64,
    /// Wall time of the drain, ns.
    pub wall_ns: u64,
    /// Worst (largest) weight-normalized max/min progress ratio
    /// observed across in-flight jobs after warmup (1.0 = perfectly
    /// fair; `None` if never measurable).
    pub fairness_worst: Option<f64>,
}

impl ServeReport {
    /// Completed jobs per wall-clock second.
    pub fn jobs_per_sec(&self) -> f64 {
        if self.wall_ns == 0 {
            return 0.0;
        }
        self.completed as f64 / (self.wall_ns as f64 / 1e9)
    }
}

/// The job runtime. See the module docs for the design.
pub struct Server {
    policy: ServePolicy,
    pools: Vec<Threads>,
    jobs: BTreeMap<u64, Job>,
    next_id: u64,
    round: u64,
    pool_cursor: usize,
    steps_total: u64,
    fleet: FleetPrior,
}

impl Server {
    /// A server with `policy`. Pools are materialized now (shared
    /// process-wide per lane count) so the first slice pays no spawn
    /// cost.
    pub fn new(policy: ServePolicy) -> Self {
        let lanes: Vec<usize> = if policy.pools.is_empty() { vec![1] } else { policy.pools.clone() };
        let pools = lanes.iter().map(|&n| Threads::new(n)).collect();
        Self {
            policy,
            pools,
            jobs: BTreeMap::new(),
            next_id: 0,
            round: 0,
            pool_cursor: 0,
            steps_total: 0,
            fleet: FleetPrior::new(),
        }
    }

    /// The active policy.
    pub fn policy(&self) -> &ServePolicy {
        &self.policy
    }

    /// Completed scheduler rounds.
    pub fn round(&self) -> u64 {
        self.round
    }

    /// Admitted unfinished jobs (queued + resident + parked).
    pub fn active_jobs(&self) -> usize {
        self.jobs.values().filter(|j| j.runnable()).count()
    }

    /// Estimated bytes pledged to admitted unfinished jobs.
    pub fn pledged_bytes(&self) -> u64 {
        self.jobs
            .values()
            .filter(|j| j.runnable())
            .map(|j| j.spec.estimated_bytes())
            .sum()
    }

    // ───────────────────────────────────────────── admission control ──

    /// Admit a job, or refuse with a typed [`AdmitError`]. Admission is
    /// the capacity gate: a job that gets a [`JobId`] is guaranteed a
    /// resident slot whenever the scheduler reaches it.
    pub fn submit(&mut self, spec: JobSpec) -> Result<JobId, AdmitError> {
        if let Err(e) = spec.validate() {
            telemetry::count("serve.jobs.rejected", 1);
            return Err(AdmitError::Spec(e));
        }
        let active = self.active_jobs();
        if active >= self.policy.max_jobs {
            telemetry::count("serve.jobs.rejected", 1);
            return Err(AdmitError::JobBudget { active, max_jobs: self.policy.max_jobs });
        }
        let estimated = spec.estimated_bytes();
        let pledged = self.pledged_bytes();
        if pledged.saturating_add(estimated) > self.policy.max_bytes {
            telemetry::count("serve.jobs.rejected", 1);
            return Err(AdmitError::MemoryBudget {
                estimated,
                pledged,
                max_bytes: self.policy.max_bytes,
            });
        }
        let id = self.next_id;
        self.next_id += 1;
        let hist_name = |kind: &str| -> &'static telemetry::Histogram {
            telemetry::histogram(&format!("serve.job.{}.{kind}", spec.name))
        };
        self.jobs.insert(
            id,
            Job {
                step_hist: hist_name("step.ns"),
                wait_hist: hist_name("wait.ns"),
                preempt_hist: hist_name("preempt.ns"),
                spec,
                state: State::Fresh,
                steps_done: 0,
                admitted_round: self.round,
                admitted_ns: telemetry::now_ns(),
                started: false,
                last_scheduled: self.round,
                last_pool: None,
            },
        );
        telemetry::count("serve.jobs.admitted", 1);
        gauge_set!("serve.jobs.active", self.active_jobs() as i64);
        Ok(JobId(id))
    }

    /// Parse a deckfile and admit it.
    pub fn submit_deck(&mut self, text: &str) -> Result<JobId, AdmitError> {
        let spec = JobSpec::parse(text)?;
        self.submit(spec)
    }

    // ─────────────────────────────────────────────────── scheduling ──

    /// One weighted round-robin pass: every runnable job, in admission
    /// order, gets `weight` slices of `quantum` steps, each slice on
    /// the next pool in rotation. Returns whether any runnable job
    /// remains.
    pub fn run_round(&mut self) -> bool {
        self.round += 1;
        // deadline sweep first: a job that missed its deadline gets no
        // further slices
        let expired: Vec<u64> = self
            .jobs
            .iter()
            .filter(|(_, j)| j.runnable())
            .filter(|(_, j)| {
                j.spec
                    .deadline_rounds
                    .is_some_and(|d| self.round > j.admitted_round.saturating_add(d))
            })
            .map(|(&id, _)| id)
            .collect();
        for id in expired {
            self.cancel_with(id, CancelReason::Deadline);
        }
        let runnable: Vec<(u64, u32)> = self
            .jobs
            .iter()
            .filter(|(_, j)| j.runnable())
            .map(|(&id, j)| (id, j.spec.weight))
            .collect();
        for (id, weight) in runnable {
            for _ in 0..weight {
                let pool_idx = self.pool_cursor % self.pools.len();
                self.pool_cursor += 1;
                self.run_slice(id, pool_idx);
                if !self.jobs.get(&id).map(Job::runnable).unwrap_or(false) {
                    break;
                }
            }
            if let Some(j) = self.jobs.get_mut(&id) {
                j.last_scheduled = self.round;
            }
        }
        gauge_set!("serve.jobs.active", self.active_jobs() as i64);
        self.jobs.values().any(Job::runnable)
    }

    /// Drain the fleet: rounds until no runnable job remains (or
    /// `max_rounds`, a backstop against misconfigured deadlines).
    pub fn run_until_done(&mut self, max_rounds: u64) -> ServeReport {
        let t0 = telemetry::now_ns();
        let steps0 = self.steps_total;
        let mut rounds = 0;
        let mut fairness_worst: Option<f64> = None;
        while rounds < max_rounds {
            let more = self.run_round();
            rounds += 1;
            if let Some(r) = self.fairness_ratio() {
                fairness_worst = Some(fairness_worst.map_or(r, |w: f64| w.max(r)));
            }
            if !more {
                break;
            }
        }
        let mut report = ServeReport {
            rounds,
            steps: self.steps_total - steps0,
            wall_ns: telemetry::now_ns().saturating_sub(t0),
            fairness_worst,
            ..ServeReport::default()
        };
        for j in self.jobs.values() {
            match j.phase() {
                JobPhase::Done => report.completed += 1,
                JobPhase::Cancelled => report.cancelled += 1,
                JobPhase::Quarantined => report.quarantined += 1,
                _ => {}
            }
        }
        report
    }

    /// Weight-normalized progress spread across in-flight jobs that
    /// have started: `max(steps/weight) / min(steps/weight)`. `None`
    /// with fewer than two in-flight started jobs, or when an in-flight
    /// job has not stepped yet (warmup). 1.0 is perfectly fair.
    pub fn fairness_ratio(&self) -> Option<f64> {
        let mut min = f64::INFINITY;
        let mut max: f64 = 0.0;
        let mut n = 0;
        for j in self.jobs.values().filter(|j| j.runnable()) {
            if j.steps_done == 0 {
                return None; // still warming up
            }
            let p = j.steps_done as f64 / j.spec.weight as f64;
            min = min.min(p);
            max = max.max(p);
            n += 1;
        }
        (n >= 2).then(|| max / min)
    }

    fn run_slice(&mut self, id: u64, pool_idx: usize) {
        if !self.ensure_resident(id) {
            return;
        }
        let pool = self.pools[pool_idx].clone();
        let quantum = self.policy.quantum.max(1);
        let per_job = self.policy.per_job_metrics && telemetry::enabled();
        let Some(job) = self.jobs.get_mut(&id) else { return };
        if job.last_pool.is_some_and(|p| p != pool_idx) {
            telemetry::count("serve.migrations", 1);
        }
        job.last_pool = Some(pool_idx);
        if !job.started {
            job.started = true;
            let wait = telemetry::now_ns().saturating_sub(job.admitted_ns);
            hist!("serve.queue_wait.ns", wait);
            if per_job {
                job.wait_hist.record(wait);
            }
        }
        let State::Resident(sim) = &mut job.state else { return };
        let mut failure: Option<String> = None;
        let mut stepped = 0u64;
        for _ in 0..quantum {
            if job.steps_done >= job.spec.steps {
                break;
            }
            let t0 = telemetry::now_ns();
            // `try_step_on` types worker-lane panics; the outer catch
            // contains everything else a hostile deck can throw from
            // inside a step (e.g. tile-spill I/O panics), so a tenant
            // failure can never take the server down
            let result = catch_unwind(AssertUnwindSafe(|| sim.try_step_on(&pool)));
            let dt = telemetry::now_ns().saturating_sub(t0);
            match result {
                Ok(Ok(_)) => {
                    job.steps_done += 1;
                    stepped += 1;
                    hist!("serve.step.ns", dt);
                    if per_job {
                        job.step_hist.record(dt);
                    }
                }
                Ok(Err(e)) => {
                    failure = Some(e.to_string());
                    break;
                }
                Err(payload) => {
                    failure = Some(format!("panic in step: {}", panic_text(&payload)));
                    break;
                }
            }
        }
        self.steps_total += stepped;
        telemetry::count("serve.steps", stepped);
        if let Some(reason) = failure {
            self.quarantine(id, reason);
        } else if self.jobs.get(&id).is_some_and(|j| j.steps_done >= j.spec.steps) {
            self.finish(id);
        }
    }

    /// Make `id` resident, evicting the least recently scheduled other
    /// resident job first if the residency cap is hit. Returns `false`
    /// when the job ended up non-runnable (quarantined on a corrupt
    /// blob, or was never runnable).
    fn ensure_resident(&mut self, id: u64) -> bool {
        match self.jobs.get(&id).map(|j| &j.state) {
            Some(State::Resident(_)) => return true,
            Some(State::Fresh) | Some(State::Parked(_)) => {}
            _ => return false,
        }
        // evict before building: the cap counts simultaneous sims
        let resident: Vec<u64> = self
            .jobs
            .iter()
            .filter(|(&jid, j)| jid != id && matches!(j.state, State::Resident(_)))
            .map(|(&jid, _)| jid)
            .collect();
        if resident.len() >= self.policy.max_resident.max(1) {
            let victim = resident
                .into_iter()
                .min_by_key(|jid| (self.jobs[jid].last_scheduled, *jid))
                .expect("cap hit implies a resident job");
            // an eviction park can only fail by panicking inside
            // checkpointing, which `park_job` contains
            self.park_job(victim);
        }
        let job = self.jobs.get_mut(&id).expect("checked above");
        match std::mem::replace(&mut job.state, State::Torn) {
            State::Fresh => {
                // building can panic inside the core (e.g. a tile spill
                // directory that cannot be created); contain it so one
                // bad deck cannot take the fleet down
                let spec = job.spec.clone();
                let fleet = &self.fleet;
                let epoch = self.policy.tuner_epoch;
                let built = catch_unwind(AssertUnwindSafe(|| build_sim(&spec, fleet, epoch)));
                match built {
                    Ok((sim, promoted)) => {
                        if promoted > 0 {
                            telemetry::count("serve.warm_starts", 1);
                        }
                        job.state = State::Resident(Box::new(sim));
                    }
                    Err(payload) => {
                        job.state = State::Torn; // replaced by quarantine below
                        let reason = format!("panic in step 0 build: {}", panic_text(&payload));
                        self.quarantine(id, reason);
                        return false;
                    }
                }
            }
            State::Parked(blob) => {
                let t0 = telemetry::now_ns();
                match Simulation::restore_bytes(&blob) {
                    Ok(sim) => {
                        let dt = telemetry::now_ns().saturating_sub(t0);
                        hist!("serve.preempt.ns", dt);
                        if self.policy.per_job_metrics && telemetry::enabled() {
                            job.preempt_hist.record(dt);
                        }
                        telemetry::count("serve.preempt.unparks", 1);
                        job.state = State::Resident(Box::new(sim));
                    }
                    Err(e) => {
                        job.state = State::Torn; // replaced by quarantine below
                        self.quarantine(id, format!("parked checkpoint unreadable: {e}"));
                        return false;
                    }
                }
            }
            other => {
                job.state = other;
                return false;
            }
        }
        gauge_set!(
            "serve.jobs.resident",
            self.jobs.values().filter(|j| matches!(j.state, State::Resident(_))).count() as i64
        );
        true
    }

    /// Park a resident job to a checkpoint blob (the preemption write
    /// half). A panic inside checkpointing quarantines the job.
    fn park_job(&mut self, id: u64) {
        let per_job = self.policy.per_job_metrics && telemetry::enabled();
        let Some(job) = self.jobs.get_mut(&id) else { return };
        let State::Resident(sim) = &mut job.state else { return };
        let t0 = telemetry::now_ns();
        let blob = catch_unwind(AssertUnwindSafe(|| sim.checkpoint_bytes()));
        match blob {
            Ok(blob) => {
                let dt = telemetry::now_ns().saturating_sub(t0);
                hist!("serve.preempt.ns", dt);
                if per_job {
                    job.preempt_hist.record(dt);
                }
                telemetry::count("serve.preempt.parks", 1);
                job.state = State::Parked(blob);
            }
            Err(payload) => {
                let reason = format!("panic while parking: {}", panic_text(&payload));
                self.quarantine(id, reason);
            }
        }
    }

    fn finish(&mut self, id: u64) {
        let Some(job) = self.jobs.get_mut(&id) else { return };
        let State::Resident(sim) = &mut job.state else { return };
        // disarm the tuner first: its schedule is the job's tuning
        // record, and the committed arm feeds the fleet prior for the
        // next tenant of this class
        let mut commit = None;
        let schedule = sim.take_tuner().map(|driver| {
            commit = driver.tuner().best().map(|(cfg, cost)| (*cfg, cost));
            driver.schedule().to_vec()
        });
        // the final state keeps its tiling; `checkpoint_bytes` handles
        // tiled sims transparently and records the policy in the blob
        let final_blob = sim.checkpoint_bytes();
        let class = FleetPrior::class_of(&job.spec.deck);
        job.state = State::Done { final_blob, schedule };
        if let Some((cfg, cost)) = commit {
            self.fleet.record_commit(&class, cfg, cost);
        }
        telemetry::count("serve.jobs.completed", 1);
    }

    fn quarantine(&mut self, id: u64, reason: String) {
        if let Some(job) = self.jobs.get_mut(&id) {
            job.state = State::Quarantined(reason);
            telemetry::count("serve.jobs.quarantined", 1);
        }
    }

    fn cancel_with(&mut self, id: u64, reason: CancelReason) {
        if let Some(job) = self.jobs.get_mut(&id) {
            if job.runnable() {
                job.state = State::Cancelled(reason);
                telemetry::count("serve.jobs.cancelled", 1);
            }
        }
    }

    // ─────────────────────────────────────────────────── operations ──

    /// Cancel a runnable job. Its simulation (or blob) is dropped.
    pub fn cancel(&mut self, id: JobId) -> Result<(), ServeError> {
        let job = self.jobs.get(&id.0).ok_or(ServeError::UnknownJob(id))?;
        if !job.runnable() {
            return Err(ServeError::NotRunnable(id));
        }
        self.cancel_with(id.0, CancelReason::Requested);
        Ok(())
    }

    /// Explicitly preempt a job: park a resident job to its checkpoint
    /// blob (queued and already-parked jobs are a no-op success).
    pub fn park(&mut self, id: JobId) -> Result<(), ServeError> {
        let job = self.jobs.get(&id.0).ok_or(ServeError::UnknownJob(id))?;
        match job.state {
            State::Resident(_) => {
                self.park_job(id.0);
                Ok(())
            }
            State::Fresh | State::Parked(_) => Ok(()),
            _ => Err(ServeError::NotRunnable(id)),
        }
    }

    /// A job's current status.
    pub fn status(&self, id: JobId) -> Option<JobStatus> {
        self.jobs.get(&id.0).map(|j| JobStatus {
            id,
            name: j.spec.name.clone(),
            phase: j.phase(),
            steps_done: j.steps_done,
            steps_total: j.spec.steps,
            detail: match &j.state {
                State::Quarantined(r) => r.clone(),
                State::Cancelled(CancelReason::Deadline) => "deadline expired".into(),
                State::Cancelled(CancelReason::Requested) => "cancelled by request".into(),
                _ => String::new(),
            },
        })
    }

    /// Every job's status, in admission order.
    pub fn statuses(&self) -> Vec<JobStatus> {
        self.jobs.keys().map(|&id| self.status(JobId(id)).expect("key exists")).collect()
    }

    /// A finished job's final checkpoint blob
    /// (restore with [`Simulation::restore_bytes`]).
    pub fn final_blob(&self, id: JobId) -> Option<&[u8]> {
        match self.jobs.get(&id.0).map(|j| &j.state) {
            Some(State::Done { final_blob, .. }) => Some(final_blob),
            _ => None,
        }
    }

    /// A finished tuned job's configuration schedule (see
    /// [`vpic_core::tune::TuneDriver::schedule`]); replaying it on the
    /// same deck reproduces the job bit-for-bit.
    pub fn tune_schedule(&self, id: JobId) -> Option<&[vpic_core::tune::ScheduleEntry]> {
        match self.jobs.get(&id.0).map(|j| &j.state) {
            Some(State::Done { schedule: Some(s), .. }) => Some(s),
            _ => None,
        }
    }

    /// Mutable access to a parked job's checkpoint blob. This is the
    /// fault-injection seam the quarantine contract is tested through
    /// (`ckpt::faults` corrupting a blob must quarantine exactly this
    /// job); it is also how an external migration would carry a tenant
    /// to another host.
    pub fn parked_blob_mut(&mut self, id: JobId) -> Option<&mut Vec<u8>> {
        match self.jobs.get_mut(&id.0).map(|j| &mut j.state) {
            Some(State::Parked(blob)) => Some(blob),
            _ => None,
        }
    }

    /// The fleet tuning prior (commit counts per deck class).
    pub fn fleet(&self) -> &FleetPrior {
        &self.fleet
    }
}

/// Build a tenant's simulation from its spec: deck, tiling, tuner with
/// fleet-warm-started arms. Returns the sim and how many arms the fleet
/// prior promoted.
fn build_sim(spec: &JobSpec, fleet: &FleetPrior, epoch: usize) -> (Simulation, usize) {
    let mut sim = spec.deck.build();
    if let Some(policy) = &spec.tile {
        sim.enable_tiling(policy.clone());
    }
    let mut promoted = 0;
    if spec.tune {
        let mut arms = base_arms();
        promoted = fleet.reorder(&FleetPrior::class_of(&spec.deck), &mut arms);
        sim.set_tuner(TuneDriver::new(Tuner::new(arms, epoch.max(1))));
    }
    (sim, promoted)
}

/// The serving arm set: a compact slice of the paper's configuration
/// space sized for short tenant jobs (a thousand-tenant fleet cannot
/// afford an 80-arm sweep per job — the fleet prior, not an exhaustive
/// search, is what amortizes exploration). All arms use atomic scatter,
/// whose fixed-point deposits are worker-count invariant, so exploration
/// is unaffected by slice-to-slice pool migration.
fn base_arms() -> Vec<Config> {
    vec![
        Config::unsorted(Strategy::Auto, ScatterMode::Atomic),
        Config {
            order: Some(SortOrder::Standard),
            interval: 20,
            strategy: Strategy::Auto,
            scatter: ScatterMode::Atomic,
            tile: None,
        },
        Config {
            order: Some(SortOrder::Strided),
            interval: 20,
            strategy: Strategy::Auto,
            scatter: ScatterMode::Atomic,
            tile: None,
        },
        Config {
            order: Some(SortOrder::Standard),
            interval: 5,
            strategy: Strategy::Manual,
            scatter: ScatterMode::Atomic,
            tile: None,
        },
    ]
}

fn panic_text(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vpic_core::Deck;

    fn tiny_spec(name: &str, steps: u64) -> JobSpec {
        let mut spec = JobSpec::new(Deck::weibel(4, 4, 4, 2, 0.3), steps);
        spec.name = name.to_string();
        spec
    }

    fn small_server(max_resident: usize) -> Server {
        Server::new(ServePolicy {
            max_jobs: 16,
            max_bytes: 64 << 20,
            max_resident,
            pools: vec![2, 1],
            quantum: 2,
            tuner_epoch: 2,
            per_job_metrics: false,
        })
    }

    #[test]
    fn jobs_run_to_completion_in_fair_rounds() {
        let mut srv = small_server(4);
        let a = srv.submit(tiny_spec("a", 6)).unwrap();
        let b = srv.submit(tiny_spec("b", 6)).unwrap();
        let report = srv.run_until_done(100);
        assert_eq!(report.completed, 2);
        assert_eq!(report.steps, 12);
        for id in [a, b] {
            let st = srv.status(id).unwrap();
            assert_eq!(st.phase, JobPhase::Done);
            assert_eq!(st.steps_done, 6);
            assert!(srv.final_blob(id).is_some());
        }
        if let Some(f) = report.fairness_worst {
            assert!(f <= 2.0, "fairness ratio {f}");
        }
    }

    #[test]
    fn job_budget_is_a_typed_refusal() {
        let mut srv = Server::new(ServePolicy { max_jobs: 1, ..ServePolicy::default() });
        srv.submit(tiny_spec("a", 2)).unwrap();
        match srv.submit(tiny_spec("b", 2)) {
            Err(AdmitError::JobBudget { active: 1, max_jobs: 1 }) => {}
            other => panic!("expected JobBudget, got {other:?}"),
        }
        // draining the first job frees the slot
        srv.run_until_done(100);
        srv.submit(tiny_spec("b", 2)).expect("slot freed after completion");
    }

    #[test]
    fn memory_budget_is_a_typed_refusal() {
        let probe = tiny_spec("probe", 2);
        let one_job = probe.estimated_bytes();
        let mut srv = Server::new(ServePolicy {
            max_bytes: one_job + one_job / 2,
            ..ServePolicy::default()
        });
        srv.submit(tiny_spec("a", 2)).unwrap();
        match srv.submit(tiny_spec("b", 2)) {
            Err(AdmitError::MemoryBudget { estimated, pledged, .. }) => {
                assert_eq!(estimated, one_job);
                assert_eq!(pledged, one_job);
            }
            other => panic!("expected MemoryBudget, got {other:?}"),
        }
    }

    #[test]
    fn malformed_spec_is_refused_at_the_door() {
        let mut srv = small_server(2);
        let mut spec = tiny_spec("zero", 0);
        spec.steps = 0;
        assert!(matches!(srv.submit(spec), Err(AdmitError::Spec(_))));
        assert!(matches!(
            srv.submit_deck("deck=unknown steps=1"),
            Err(AdmitError::Spec(SpecError::UnknownDeck(_)))
        ));
    }

    #[test]
    fn residency_cap_parks_and_resumes_jobs() {
        let mut srv = small_server(1); // every other job must park
        let ids: Vec<JobId> =
            (0..3).map(|i| srv.submit(tiny_spec(&format!("t{i}"), 4)).unwrap()).collect();
        // after one round everyone has stepped, so parking demonstrably
        // round-trips live state, not just fresh builds
        srv.run_round();
        let mut parked = 0;
        for &id in &ids {
            let st = srv.status(id).unwrap();
            assert!(st.steps_done > 0, "{} never stepped", st.name);
            parked += usize::from(st.phase == JobPhase::Parked);
        }
        assert!(parked >= 2, "cap of 1 must park the other jobs ({parked} parked)");
        let report = srv.run_until_done(100);
        assert_eq!(report.completed, 3);
    }

    #[test]
    fn deadline_cancels_only_the_late_job() {
        let mut srv = small_server(4);
        let mut late = tiny_spec("late", 1_000_000);
        late.deadline_rounds = Some(2);
        let late = srv.submit(late).unwrap();
        let ok = srv.submit(tiny_spec("ok", 4)).unwrap();
        let report = srv.run_until_done(100);
        assert_eq!(srv.status(late).unwrap().phase, JobPhase::Cancelled);
        assert_eq!(srv.status(late).unwrap().detail, "deadline expired");
        assert_eq!(srv.status(ok).unwrap().phase, JobPhase::Done);
        assert_eq!(report.cancelled, 1);
        assert_eq!(report.completed, 1);
    }

    #[test]
    fn cancel_is_immediate_and_typed() {
        let mut srv = small_server(4);
        let id = srv.submit(tiny_spec("a", 100)).unwrap();
        srv.run_round();
        srv.cancel(id).unwrap();
        assert_eq!(srv.status(id).unwrap().phase, JobPhase::Cancelled);
        assert_eq!(srv.cancel(id), Err(ServeError::NotRunnable(id)));
        assert_eq!(srv.cancel(JobId(999)), Err(ServeError::UnknownJob(JobId(999))));
        let report = srv.run_until_done(10);
        assert_eq!(report.completed, 0);
    }

    #[test]
    fn explicit_park_preempts_a_resident_job() {
        let mut srv = small_server(4);
        let id = srv.submit(tiny_spec("a", 10)).unwrap();
        srv.run_round();
        assert_eq!(srv.status(id).unwrap().phase, JobPhase::Resident);
        srv.park(id).unwrap();
        assert_eq!(srv.status(id).unwrap().phase, JobPhase::Parked);
        assert!(srv.parked_blob_mut(id).is_some());
        let report = srv.run_until_done(100);
        assert_eq!(report.completed, 1);
    }

    #[test]
    fn tuned_jobs_complete_and_feed_the_fleet_prior() {
        let mut srv = small_server(4);
        let mut spec = tiny_spec("tuned", 20);
        spec.tune = true;
        let id = srv.submit(spec).unwrap();
        srv.run_until_done(200);
        assert_eq!(srv.status(id).unwrap().phase, JobPhase::Done);
        let sched = srv.tune_schedule(id).expect("tuned job records its schedule");
        assert!(!sched.is_empty());
        let class = FleetPrior::class_of(&Deck::weibel(4, 4, 4, 2, 0.3));
        assert_eq!(srv.fleet().commits(&class), 1);
    }
}
