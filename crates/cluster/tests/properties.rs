//! Property tests for decomposition and network-model invariants.

use cluster::decompose::Decomposition;
use cluster::network::NetworkModel;
use proptest::prelude::*;

/// The deleted `.proptest-regressions` file pinned two shrunken inputs,
/// `n = 4, ranks = 7` and `n = 4, ranks = 27` — the argument shape of
/// `decomposition_is_balanced`. Both seeds are stale with respect to the
/// checked-in property text (which has been unchanged, along with
/// `decompose.rs`, since the seed commit):
///
/// * `ranks = 27` → dims (3,3,3); the balance bound holds with exact
///   equality (max 8 cells vs `8 · max(min, 1)` = 8), so the seed can
///   only have been produced by an earlier, stricter assertion;
/// * `ranks = 7` → 7 is prime, so dims (1,1,7) is forced, 7 parts over a
///   4-cell axis leaves ranks 4–6 empty, and the property's own
///   `prop_assume` guard (`dims ≤ n` on every axis) rejects the input
///   before the balance assertion runs — the seed predates that guard.
///
/// The offline proptest shim does not replay seed files, so this test
/// pins those exact inputs and the *exact* semantics each one exercises:
/// the equality-boundary pass for 27 and the documented guard exemption
/// (not a silent skip) for 7.
#[test]
fn pinned_regressions_small_grid_awkward_rank_counts() {
    let n = 4usize;

    // ranks = 27: the guard passes and the balance bound is tight.
    let d = Decomposition::new((n, n, n), 27);
    assert_eq!(d.dims, (3, 3, 3));
    assert!(d.dims.0 <= n && d.dims.1 <= n && d.dims.2 <= n, "guard must admit this input");
    let counts: Vec<usize> = (0..d.ranks()).map(|r| d.local_cells(r)).collect();
    assert_eq!(counts.iter().sum::<usize>(), n * n * n);
    let mx = *counts.iter().max().unwrap();
    let mn = *counts.iter().min().unwrap();
    assert_eq!((mx, mn), (8, 1), "historical boundary case: bound holds with equality");
    assert!(mx <= 8 * mn.max(1), "{mx} vs {mn}");

    // ranks = 7: prime rank count on a smaller grid — empty ranks are
    // forced, the guard must reject it, and without the guard the
    // balance assertion would indeed fail (the historical violation).
    let d = Decomposition::new((n, n, n), 7);
    assert_eq!(d.dims, (1, 1, 7));
    assert!(
        !(d.dims.0 <= n && d.dims.1 <= n && d.dims.2 <= n),
        "guard must exempt decompositions with empty ranks"
    );
    let counts: Vec<usize> = (0..d.ranks()).map(|r| d.local_cells(r)).collect();
    assert_eq!(counts, [16, 16, 16, 16, 0, 0, 0]);
    let mx = *counts.iter().max().unwrap();
    let mn = *counts.iter().min().unwrap();
    assert!(
        mx > 8 * mn.max(1),
        "if this starts passing, drop the guard exemption and assert balance directly"
    );

    // ownership still partitions the domain for both inputs — the
    // stronger property holds even where balance is exempted.
    for ranks in [7usize, 27] {
        let d = Decomposition::new((n, n, n), ranks);
        assert_eq!(d.ranks(), ranks);
        let mut per_rank = vec![0usize; ranks];
        for z in 0..n {
            for y in 0..n {
                for x in 0..n {
                    let r = d.owner(x, y, z);
                    assert!(r < ranks, "ranks={ranks}");
                    per_rank[r] += 1;
                    let (ox, oy, oz) = d.local_origin(r);
                    let (lx, ly, lz) = d.local_extent(r);
                    assert!((ox..ox + lx).contains(&x), "ranks={ranks}");
                    assert!((oy..oy + ly).contains(&y), "ranks={ranks}");
                    assert!((oz..oz + lz).contains(&z), "ranks={ranks}");
                }
            }
        }
        for (r, &count) in per_rank.iter().enumerate() {
            assert_eq!(count, d.local_cells(r), "rank {r} cell count, ranks={ranks}");
        }
    }
}

proptest! {
    /// Every global cell has exactly one owner, and the owner's block
    /// contains it.
    #[test]
    fn ownership_partitions_the_domain(
        nx in 1usize..20,
        ny in 1usize..20,
        nz in 1usize..20,
        ranks in 1usize..40,
    ) {
        let d = Decomposition::new((nx, ny, nz), ranks);
        prop_assert_eq!(d.ranks(), ranks);
        let mut per_rank = vec![0usize; ranks];
        for z in 0..nz {
            for y in 0..ny {
                for x in 0..nx {
                    let r = d.owner(x, y, z);
                    prop_assert!(r < ranks);
                    per_rank[r] += 1;
                    let (ox, oy, oz) = d.local_origin(r);
                    let (lx, ly, lz) = d.local_extent(r);
                    prop_assert!((ox..ox + lx).contains(&x));
                    prop_assert!((oy..oy + ly).contains(&y));
                    prop_assert!((oz..oz + lz).contains(&z));
                }
            }
        }
        for (r, &count) in per_rank.iter().enumerate() {
            prop_assert_eq!(count, d.local_cells(r), "rank {} cell count", r);
        }
    }

    /// Local cell counts across ranks differ by at most the largest block
    /// rounding (near-balance).
    #[test]
    fn decomposition_is_balanced(
        n in 4usize..64,
        ranks in 1usize..33,
    ) {
        let d = Decomposition::new((n, n, n), ranks);
        // balance is only claimed when every axis has at least one cell
        // per rank along it (otherwise some ranks are legitimately empty)
        prop_assume!(d.dims.0 <= n && d.dims.1 <= n && d.dims.2 <= n);
        let counts: Vec<usize> = (0..d.ranks()).map(|r| d.local_cells(r)).collect();
        let total: usize = counts.iter().sum();
        prop_assert_eq!(total, n * n * n);
        let mx = *counts.iter().max().unwrap();
        let mn = *counts.iter().min().unwrap();
        // block distribution: each axis differs by ≤1 cell per rank, so
        // the volume ratio is bounded by ((base+1)/base)³ ≤ 2³
        prop_assert!(mx <= 8 * mn.max(1), "{mx} vs {mn}");
    }

    /// Face-neighbor relations are symmetric under the opposite face.
    #[test]
    fn neighbors_symmetric(ranks in 1usize..65) {
        let d = Decomposition::new((32, 32, 32), ranks);
        for r in 0..d.ranks() {
            let n = d.face_neighbors(r);
            for (dir, rev) in [(0, 1), (2, 3), (4, 5)] {
                prop_assert_eq!(d.face_neighbors(n[dir])[rev], r);
            }
        }
    }

    /// Message time grows monotonically with payload and is at least α.
    #[test]
    fn network_monotone(bytes_a in 0f64..1e9, bytes_b in 0f64..1e9, aware in any::<bool>()) {
        let net = NetworkModel {
            latency: 2e-6,
            bandwidth: 25e9,
            gpu_aware: aware,
            staging_bw: 12e9,
        };
        let (lo, hi) = if bytes_a <= bytes_b { (bytes_a, bytes_b) } else { (bytes_b, bytes_a) };
        prop_assert!(net.message_time(lo) <= net.message_time(hi));
        prop_assert!(net.message_time(lo) >= net.latency);
        // staging can only slow a message down
        let staged = NetworkModel { gpu_aware: false, ..net };
        let direct = NetworkModel { gpu_aware: true, ..net };
        prop_assert!(staged.message_time(hi) >= direct.message_time(hi));
    }

    /// Exchange time is superadditive in message count.
    #[test]
    fn exchange_superadditive(msgs in 1usize..12, bytes in 1f64..1e7) {
        let net = NetworkModel {
            latency: 2e-6,
            bandwidth: 25e9,
            gpu_aware: true,
            staging_bw: 12e9,
        };
        let one = net.exchange_time(1, bytes);
        let many = net.exchange_time(msgs, bytes);
        prop_assert!(many >= one * 0.99);
        prop_assert!(many <= one * msgs as f64 * 1.01);
    }
}
