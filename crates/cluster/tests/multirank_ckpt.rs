//! Property tests for multi-rank checkpoint/restart (DESIGN §12).
//!
//! A mid-run [`cluster::MultiRankSim`] snapshot carries the per-rank
//! simulations and particle identity maps; exchange plans and migration
//! buffers are derived state rebuilt on restore. The property: resuming
//! from any mid-run snapshot is bit-identical to never having stopped,
//! for any rank count and any checkpoint step — and any truncation of
//! the snapshot maps to a typed error, never a silently-wrong `Ok`.

use cluster::{systems, MultiRankSim};
use proptest::prelude::*;
use vpic_core::{Deck, Simulation};

fn assert_bits_eq(a: &Simulation, b: &Simulation) {
    for (name, x, y) in [
        ("ex", &a.fields.ex, &b.fields.ex),
        ("ey", &a.fields.ey, &b.fields.ey),
        ("ez", &a.fields.ez, &b.fields.ez),
        ("bx", &a.fields.bx, &b.fields.bx),
        ("by", &a.fields.by, &b.fields.by),
        ("bz", &a.fields.bz, &b.fields.bz),
        ("jx", &a.fields.jx, &b.fields.jx),
        ("jy", &a.fields.jy, &b.fields.jy),
        ("jz", &a.fields.jz, &b.fields.jz),
    ] {
        for v in 0..x.len() {
            assert_eq!(x[v].to_bits(), y[v].to_bits(), "{name}[{v}]");
        }
    }
    assert_eq!(a.species.len(), b.species.len());
    for (sa, sb) in a.species.iter().zip(&b.species) {
        assert_eq!(sa.cell, sb.cell);
        for p in 0..sa.len() {
            assert_eq!(sa.dx[p].to_bits(), sb.dx[p].to_bits());
            assert_eq!(sa.dy[p].to_bits(), sb.dy[p].to_bits());
            assert_eq!(sa.dz[p].to_bits(), sb.dz[p].to_bits());
            assert_eq!(sa.ux[p].to_bits(), sb.ux[p].to_bits());
            assert_eq!(sa.uy[p].to_bits(), sb.uy[p].to_bits());
            assert_eq!(sa.uz[p].to_bits(), sb.uz[p].to_bits());
            assert_eq!(sa.w[p].to_bits(), sb.w[p].to_bits());
        }
    }
    let (ea, eb) = (a.energies(), b.energies());
    assert_eq!(ea.field_e.to_bits(), eb.field_e.to_bits());
    assert_eq!(ea.field_b.to_bits(), eb.field_b.to_bits());
    for (ka, kb) in ea.kinetic.iter().zip(&eb.kinetic) {
        assert_eq!(ka.to_bits(), kb.to_bits());
    }
}

proptest! {
    /// Checkpoint anywhere mid-run, restore, continue: the resumed
    /// cluster gathers bit-identically to the uninterrupted one at every
    /// subsequent step. Migration buffers never need to be carried —
    /// snapshots are taken between steps, where they are empty by
    /// construction.
    #[test]
    fn midrun_checkpoint_resumes_bit_identical(
        ranks_pow in 0usize..4,       // 1, 2, 4, 8 ranks
        pre in 1usize..4,             // steps before the snapshot
        post in 1usize..4,            // steps after it
    ) {
        let ranks = 1usize << ranks_pow;
        let deck = Deck::weibel(8, 8, 8, 2, 0.3).build();
        let net = systems::selene().network;
        let mut live = MultiRankSim::new(&deck, ranks, net);
        live.run(pre);
        let snap = live.checkpoint_bytes();
        let mut resumed = MultiRankSim::restore_bytes(&snap).expect("clean snapshot restores");
        prop_assert_eq!(resumed.step_count(), live.step_count());
        prop_assert_eq!(resumed.ranks(), live.ranks());
        for _ in 0..post {
            live.step();
            resumed.step();
            assert_bits_eq(&live.gather(), &resumed.gather());
        }
    }

    /// Any truncation of a snapshot — header, section directory, or
    /// payload — is a typed [`ckpt::RestoreError`], never `Ok`.
    #[test]
    fn truncated_snapshot_never_restores(
        ranks_pow in 0usize..3,
        keep_frac in 0.0f64..0.999,
    ) {
        let ranks = 1usize << ranks_pow;
        let deck = Deck::weibel(8, 8, 8, 2, 0.3).build();
        let mut live = MultiRankSim::new(&deck, ranks, systems::selene().network);
        live.run(1);
        let snap = live.checkpoint_bytes();
        let keep = ((snap.len() as f64) * keep_frac) as usize;
        let cut = ckpt::faults::truncated(&snap, keep);
        prop_assert!(
            MultiRankSim::restore_bytes(&cut).is_err(),
            "truncation to {keep}/{} bytes must be rejected",
            snap.len()
        );
    }
}
