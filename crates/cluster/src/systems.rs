//! The paper's three scaling systems (§5.1/§5.5).
//!
//! GPU descriptors come from `memsim::platform`; interconnect parameters
//! are public-specification estimates for each machine's fabric and MPI
//! stack generation. The decisive qualitative difference is GPU-aware
//! MPI: Sierra's runs staged through the host (the paper attributes the
//! V100 roll-off to communication and names GPU-aware MPI as the fix),
//! while Selene (NVLink/HDR + GPUDirect) and Tuolumne (Slingshot-11 +
//! unified APU memory) send device memory directly.

use crate::network::NetworkModel;
use memsim::platform;
use memsim::Platform;
use serde::Serialize;

/// One scaling system: a GPU model plus its fabric.
#[derive(Debug, Clone, Serialize)]
pub struct System {
    /// System name as in the paper.
    pub name: &'static str,
    /// GPU platform name in `memsim::platform`.
    pub gpu: &'static str,
    /// GPUs per node (Sierra 4× V100, Selene 8× A100, Tuolumne 4× MI300A).
    pub gpus_per_node: usize,
    /// Interconnect model.
    pub network: NetworkModel,
    /// GPU counts the paper sweeps on this system.
    pub sweep: Vec<usize>,
}

impl System {
    /// The GPU platform descriptor.
    pub fn platform(&self) -> Platform {
        platform::by_name(self.gpu).expect("known platform")
    }
}

/// Sierra (LLNL): IBM AC922 nodes, 4× V100, EDR InfiniBand, pre-GPUDirect
/// MPI stack → staged messages.
pub fn sierra() -> System {
    System {
        name: "Sierra",
        gpu: "V100",
        gpus_per_node: 4,
        network: NetworkModel {
            latency: 2.0e-6,
            bandwidth: 12.5e9, // EDR ~100 Gb/s per port
            gpu_aware: false,
            staging_bw: 12.0e9, // PCIe3 x16 staging
        },
        sweep: vec![1, 2, 4, 8, 16, 32],
    }
}

/// Selene (Nvidia): DGX A100 SuperPod, 8× A100, HDR InfiniBand with
/// GPUDirect RDMA.
pub fn selene() -> System {
    System {
        name: "Selene",
        gpu: "A100",
        gpus_per_node: 8,
        network: NetworkModel {
            latency: 2.0e-6,
            bandwidth: 25.0e9, // HDR 200 Gb/s
            gpu_aware: true,
            staging_bw: 20.0e9,
        },
        sweep: vec![8, 16, 32, 64, 128, 256, 512],
    }
}

/// Tuolumne (LLNL): 4× MI300A APU nodes on Slingshot-11; unified memory
/// makes transfers effectively GPU-aware.
pub fn tuolumne() -> System {
    System {
        name: "Tuolumne",
        gpu: "MI300A (GPU)",
        gpus_per_node: 4,
        network: NetworkModel {
            latency: 2.5e-6,
            bandwidth: 25.0e9, // Slingshot-11 200 Gb/s
            gpu_aware: true,
            staging_bw: 48.0e9,
        },
        sweep: vec![1, 2, 4, 8, 16, 32, 64],
    }
}

/// All three systems in paper order.
pub fn all() -> Vec<System> {
    vec![sierra(), selene(), tuolumne()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn platforms_resolve() {
        for s in all() {
            let p = s.platform();
            assert!(p.is_gpu(), "{}", s.name);
            assert!(!s.sweep.is_empty());
            assert!(s.sweep.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn sierra_is_the_only_staged_system() {
        assert!(!sierra().network.gpu_aware);
        assert!(selene().network.gpu_aware);
        assert!(tuolumne().network.gpu_aware);
    }

    #[test]
    fn sweeps_match_paper_figures() {
        assert_eq!(sierra().sweep.first(), Some(&1));
        assert_eq!(sierra().sweep.last(), Some(&32));
        assert_eq!(selene().sweep.first(), Some(&8));
        assert_eq!(selene().sweep.last(), Some(&512));
        assert_eq!(tuolumne().sweep.last(), Some(&64));
    }
}
