//! Rank emulation over a single-domain simulation.
//!
//! Runs the *real* `vpic-core` simulation while book-keeping a virtual
//! decomposition on top of it: every step it tracks which particles
//! changed owning rank and to where. Physics is bit-identical to the
//! plain single-domain run (there is no halo truncation to get wrong),
//! while the migration counts — the quantity the strong-scaling network
//! model needs — are *measured* from the actual particle motion instead
//! of assumed.

use crate::decompose::Decomposition;
use serde::Serialize;
use vpic_core::push::PushStats;
use vpic_core::Simulation;

/// Per-step migration bookkeeping.
#[derive(Debug, Clone, Default, Serialize)]
pub struct MigrationStats {
    /// Particles that changed owning rank this step.
    pub migrants: usize,
    /// Total particles (for fraction computations).
    pub total: usize,
    /// Largest number of migrants leaving any single rank.
    pub max_out_of_rank: usize,
}

impl MigrationStats {
    /// Fraction of particles that migrated.
    pub fn fraction(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.migrants as f64 / self.total as f64
        }
    }
}

/// A single-domain simulation with a virtual rank decomposition.
pub struct ClusterSim {
    /// The underlying (exact) simulation.
    pub sim: Simulation,
    /// The virtual decomposition.
    pub decomp: Decomposition,
    owner_of_cell: Vec<u32>,
    /// Reusable per-species pre-push owner snapshot. Cleared and refilled
    /// every step instead of rebuilt, so the steady-state exchange path
    /// allocates nothing once the buffers have warmed to population size.
    owners_before: Vec<Vec<u32>>,
}

impl ClusterSim {
    /// Wrap `sim` with a virtual decomposition over `ranks` ranks.
    pub fn new(sim: Simulation, ranks: usize) -> Self {
        let g = &sim.grid;
        let decomp = Decomposition::new((g.nx, g.ny, g.nz), ranks);
        let owner_of_cell: Vec<u32> = (0..g.cells())
            .map(|v| {
                let (ix, iy, iz) = g.coords(v);
                decomp.owner(ix, iy, iz) as u32
            })
            .collect();
        let owners_before = vec![Vec::new(); sim.species.len()];
        Self { sim, decomp, owner_of_cell, owners_before }
    }

    /// Owning rank of a cell voxel.
    pub fn owner(&self, cell: u32) -> u32 {
        self.owner_of_cell[cell as usize]
    }

    /// Particles currently owned by each rank.
    pub fn rank_populations(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.decomp.ranks()];
        for s in &self.sim.species {
            for &c in &s.cell {
                counts[self.owner_of_cell[c as usize] as usize] += 1;
            }
        }
        counts
    }

    /// Capacities of the per-species owner-snapshot scratch, in species
    /// order — exposed so tests can assert no-alloc-after-warmup.
    pub fn owner_scratch_capacities(&self) -> Vec<usize> {
        self.owners_before.iter().map(Vec::capacity).collect()
    }

    /// Advance one step, measuring migration.
    pub fn step(&mut self) -> (PushStats, MigrationStats) {
        // snapshot owners before the push into the persistent scratch
        // (a species added after construction still gets a row)
        self.owners_before.resize_with(self.sim.species.len(), Vec::new);
        for (buf, s) in self.owners_before.iter_mut().zip(&self.sim.species) {
            buf.clear();
            buf.extend(s.cell.iter().map(|&c| self.owner_of_cell[c as usize]));
        }
        let push = self.sim.step();
        let _span = telemetry::span("cluster.exchange").arg("ranks", self.decomp.ranks());
        let mut stats = MigrationStats::default();
        let mut out_of = vec![0usize; self.decomp.ranks()];
        // distinct (was → now) rank pairs this step ≈ point-to-point
        // messages a real exchange would send
        let mut pairs = std::collections::BTreeSet::new();
        for (si, s) in self.sim.species.iter().enumerate() {
            stats.total += s.len();
            for (p, &c) in s.cell.iter().enumerate() {
                let now = self.owner_of_cell[c as usize];
                let was = self.owners_before[si][p];
                if now != was {
                    stats.migrants += 1;
                    out_of[was as usize] += 1;
                    pairs.insert((was, now));
                }
            }
        }
        stats.max_out_of_rank = out_of.into_iter().max().unwrap_or(0);
        if telemetry::enabled() {
            telemetry::count("cluster.migrants", stats.migrants as u64);
            // payload a real exchange would move: the full particle
            // record (7×f32 phase-space + u32 cell = 32 bytes)
            telemetry::count("cluster.bytes_moved", stats.migrants as u64 * 32);
            telemetry::count("cluster.messages", pairs.len() as u64);
        }
        (push, stats)
    }

    /// Run `n` steps and return the mean migration fraction.
    pub fn measure_migration(&mut self, n: usize) -> f64 {
        let mut acc = 0.0;
        for _ in 0..n {
            let (_, m) = self.step();
            acc += m.fraction();
        }
        acc / n.max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vpic_core::Deck;

    fn sim() -> Simulation {
        Deck::uniform(8, 8, 8, 8).build()
    }

    #[test]
    fn owners_partition_all_cells() {
        let cs = ClusterSim::new(sim(), 8);
        let pops = cs.rank_populations();
        assert_eq!(pops.len(), 8);
        let total: usize = pops.iter().sum();
        assert_eq!(total, cs.sim.particle_count());
        // uniform deck → roughly balanced ranks
        let (mn, mx) = (pops.iter().min().unwrap(), pops.iter().max().unwrap());
        assert!(*mx < 2 * *mn, "balance: {pops:?}");
    }

    #[test]
    fn physics_identical_to_undecomposed_run() {
        let mut plain = sim();
        let mut cs = ClusterSim::new(sim(), 8);
        for _ in 0..5 {
            plain.step();
            cs.step();
        }
        assert_eq!(plain.energies().total(), cs.sim.energies().total());
        assert_eq!(plain.species[1].cell, cs.sim.species[1].cell);
    }

    #[test]
    fn migration_is_small_and_boundary_driven() {
        let mut cs = ClusterSim::new(sim(), 8);
        let frac = cs.measure_migration(5);
        // thermal vth=0.05 → well under 10% of particles cross a rank
        // boundary per step
        assert!(frac < 0.1, "migration fraction {frac}");
        assert!(frac > 0.0, "some particles must cross");
    }

    #[test]
    fn migration_grows_with_rank_count() {
        // more ranks → more boundary surface → more migrants
        let mut few = ClusterSim::new(sim(), 2);
        let mut many = ClusterSim::new(sim(), 64);
        let f_few = few.measure_migration(3);
        let f_many = many.measure_migration(3);
        assert!(f_many > f_few, "{f_many} vs {f_few}");
    }

    #[test]
    fn exchange_counters_recorded_when_profiling() {
        let migrants0 = telemetry::counter("cluster.migrants");
        let bytes0 = telemetry::counter("cluster.bytes_moved");
        let msgs0 = telemetry::counter("cluster.messages");
        telemetry::set_enabled(true);
        let mut cs = ClusterSim::new(sim(), 8);
        let (_, m) = cs.step();
        telemetry::set_enabled(false);
        let dm = telemetry::counter("cluster.migrants") - migrants0;
        let db = telemetry::counter("cluster.bytes_moved") - bytes0;
        let dmsg = telemetry::counter("cluster.messages") - msgs0;
        assert!(dm >= m.migrants as u64, "migrants counter {dm} < {}", m.migrants);
        assert!(db >= m.migrants as u64 * 32, "bytes counter {db}");
        assert!(dmsg >= 1, "at least one rank pair exchanged");
    }

    #[test]
    fn owner_scratch_stops_allocating_after_warmup() {
        let mut cs = ClusterSim::new(sim(), 8);
        let (_, warm) = cs.step();
        let caps = cs.owner_scratch_capacities();
        assert_eq!(caps.len(), cs.sim.species.len());
        for (cap, s) in caps.iter().zip(&cs.sim.species) {
            assert!(*cap >= s.len(), "scratch must hold the population: {cap} < {}", s.len());
        }
        // populations are constant (periodic domain, no injection): later
        // steps must reuse the warmed buffers, not grow or replace them
        let mut last = warm;
        for _ in 0..4 {
            let (_, m) = cs.step();
            last = m;
        }
        assert_eq!(cs.owner_scratch_capacities(), caps, "steady state must not reallocate");
        // and the stats stay well-formed through the reuse path
        assert_eq!(last.total, cs.sim.particle_count());
        assert!(last.migrants <= last.total);
    }

    #[test]
    fn migration_stats_unchanged_by_scratch_reuse() {
        // two identical runs: per-step stats must agree exactly, i.e. the
        // reused scratch never leaks a stale owner row between steps
        let mut a = ClusterSim::new(sim(), 8);
        let mut b = ClusterSim::new(sim(), 8);
        for step in 0..5 {
            let (_, ma) = a.step();
            let (_, mb) = b.step();
            assert_eq!(ma.migrants, mb.migrants, "step {step}");
            assert_eq!(ma.total, mb.total, "step {step}");
            assert_eq!(ma.max_out_of_rank, mb.max_out_of_rank, "step {step}");
        }
    }

    #[test]
    fn max_out_of_rank_aggregates_across_species() {
        // two species leave the same rank in the same step: the per-rank
        // peak must count their *sum*, not the largest single species.
        // 2 ranks over 8³ → dims (1,1,2): rank 0 owns z ∈ [0,4).
        use vpic_core::{Grid, Species, Simulation};
        let mut sim = Simulation::new(Grid::new(8, 8, 8));
        let mut a = Species::new("a", -1.0, 1.0);
        let mut b = Species::new("b", -1.0, 1.0);
        // w = 0 ballistic probes at the z = 3 face, dz ≈ +1 and a large
        // +z momentum: guaranteed to cross into rank 1's z = 4 layer
        let grid = sim.grid.clone();
        for x in 0..3 {
            a.push_particle(0.0, 0.0, 0.99, grid.voxel(x + 1, 1, 3) as u32, 0.0, 0.0, 10.0, 0.0);
        }
        for x in 0..2 {
            b.push_particle(0.0, 0.0, 0.99, grid.voxel(x + 1, 2, 3) as u32, 0.0, 0.0, 10.0, 0.0);
        }
        sim.add_species(a);
        sim.add_species(b);
        let mut cs = ClusterSim::new(sim, 2);
        let (_, m) = cs.step();
        assert_eq!(m.migrants, 5, "all five probes cross the rank face");
        assert_eq!(
            m.max_out_of_rank, 5,
            "peak must aggregate species (3 + 2), not take the per-species max"
        );
    }

    #[test]
    fn single_rank_never_migrates() {
        let mut cs = ClusterSim::new(sim(), 1);
        let (_, m) = cs.step();
        assert_eq!(m.migrants, 0);
        assert_eq!(m.fraction(), 0.0);
    }
}
