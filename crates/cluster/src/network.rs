//! Interconnect cost model.
//!
//! The classic α–β model (`time = latency + bytes / bandwidth`) per
//! message, with the paper's GPU-aware-MPI distinction: without
//! GPU-aware MPI (Sierra-era stacks), every message pays an extra
//! device↔host staging copy on both ends, which is exactly why the
//! paper's V100 scaling rolls off first and why it names "GPU-aware MPI"
//! as the future fix.

use serde::Serialize;

/// An α–β interconnect with optional staging penalty.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct NetworkModel {
    /// Per-message latency (α), seconds. Includes software overhead.
    pub latency: f64,
    /// Link bandwidth (1/β), bytes/s.
    pub bandwidth: f64,
    /// Whether MPI can send device memory directly.
    pub gpu_aware: bool,
    /// Host↔device staging bandwidth (bytes/s) paid twice per message
    /// when not GPU-aware.
    pub staging_bw: f64,
}

/// Wire packet granularity, bytes. Payloads are charged rounded up to
/// whole packets: a NIC moves cache-line-sized flits, so a 9-byte halo
/// message costs a full packet, not nine bytes of bandwidth.
pub const PACKET_BYTES: f64 = 64.0;

impl NetworkModel {
    /// `bytes` rounded up to whole [`PACKET_BYTES`] packets — the size
    /// actually charged against the link.
    pub fn packet_ceil(bytes: f64) -> f64 {
        (bytes / PACKET_BYTES).ceil() * PACKET_BYTES
    }

    /// Time to send one `bytes`-sized message (packet-granular).
    pub fn message_time(&self, bytes: f64) -> f64 {
        let bytes = Self::packet_ceil(bytes);
        let wire = self.latency + bytes / self.bandwidth;
        if self.gpu_aware {
            wire
        } else {
            wire + 2.0 * bytes / self.staging_bw + self.latency
        }
    }

    /// Time for a neighbor exchange of `messages` concurrent messages of
    /// `bytes` each (packet-granular). VPIC's sends are non-blocking, so
    /// concurrent messages overlap on the wire; serialization shows up
    /// only through the per-message software latency.
    ///
    /// `messages` counts *directed* point-to-point sends — one per
    /// ordered `(src, dst)` rank pair with `src != dst` — the same
    /// convention the `cluster.messages` telemetry counter records, so
    /// model charges and counters agree on rank-pair counting. Periodic
    /// self-neighbor faces (see [`crate::Decomposition::remote_faces`])
    /// are in-memory copies: never counted, never charged.
    pub fn exchange_time(&self, messages: usize, bytes: f64) -> f64 {
        if messages == 0 {
            return 0.0;
        }
        let bytes = Self::packet_ceil(bytes);
        // α costs accumulate (CPU issues each message); payload streams
        // concurrently, bounded by the link
        let alpha = self.latency * messages as f64;
        let beta = bytes * messages as f64 / self.bandwidth;
        let staging = if self.gpu_aware {
            0.0
        } else {
            2.0 * bytes * messages as f64 / self.staging_bw + self.latency * messages as f64
        };
        alpha + beta + staging
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net(gpu_aware: bool) -> NetworkModel {
        NetworkModel {
            latency: 2e-6,
            bandwidth: 12.5e9,
            gpu_aware,
            staging_bw: 8e9,
        }
    }

    #[test]
    fn message_time_is_alpha_beta() {
        let n = net(true);
        let t = n.message_time(12.5e9 / 2.0);
        assert!((t - (2e-6 + 0.5)).abs() < 1e-9);
    }

    #[test]
    fn staging_penalty_applies_only_without_gpu_aware() {
        let aware = net(true).message_time(1e6);
        let staged = net(false).message_time(1e6);
        assert!(staged > aware + 2.0 * 1e6 / 8e9 - 1e-12);
    }

    #[test]
    fn exchange_scales_with_message_count() {
        let n = net(true);
        let one = n.exchange_time(1, 1e4);
        let six = n.exchange_time(6, 1e4);
        assert!(six > 5.0 * one && six < 7.0 * one);
        assert_eq!(n.exchange_time(0, 1e9), 0.0);
    }

    #[test]
    fn latency_dominates_small_messages() {
        let n = net(true);
        let t = n.exchange_time(6, 8.0);
        assert!((t - 6.0 * n.latency) / t < 0.01);
    }

    #[test]
    fn payloads_are_charged_in_whole_packets() {
        let n = net(true);
        // every sub-packet payload costs exactly one packet
        assert_eq!(n.message_time(1.0), n.message_time(PACKET_BYTES));
        assert_eq!(n.exchange_time(3, 9.0), n.exchange_time(3, PACKET_BYTES));
        // the next byte starts a second packet
        assert!(n.message_time(PACKET_BYTES + 1.0) > n.message_time(PACKET_BYTES));
        // exact multiples are unchanged by the rounding
        assert_eq!(NetworkModel::packet_ceil(128.0), 128.0);
        assert_eq!(NetworkModel::packet_ceil(0.0), 0.0);
    }
}
