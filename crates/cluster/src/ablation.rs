//! Scaling ablations: the paper's named what-ifs, made runnable.
//!
//! * **GPU-aware MPI on Sierra** — the paper attributes the V100
//!   roll-off to communication and says "additional features like
//!   GPU-aware MPI will reduce the communication overhead … and enable
//!   greater superlinear scaling in the future". Flipping the staging
//!   bit on the Sierra model quantifies exactly that claim.
//! * **Weak scaling** — the paper's §6 motivates "large batches of
//!   smaller simulations"; the weak-scaling generator keeps per-GPU work
//!   fixed and grows the problem with the machine.

use crate::decompose::Decomposition;
use crate::scaling::{strong_scaling, ScalePoint};
use crate::systems::System;
use serde::Serialize;

/// A strong-scaling curve with and without GPU-aware MPI.
#[derive(Debug, Clone, Serialize)]
pub struct GpuAwareAblation {
    /// System name.
    pub system: String,
    /// Points with the system's real network.
    pub baseline: Vec<ScalePoint>,
    /// Points with `gpu_aware` forced on.
    pub gpu_aware: Vec<ScalePoint>,
}

impl GpuAwareAblation {
    /// Speedup of the last sweep point, baseline vs GPU-aware.
    pub fn endpoint_gain(&self) -> f64 {
        let b = self.baseline.last().expect("nonempty sweep");
        let a = self.gpu_aware.last().expect("nonempty sweep");
        b.step_time / a.step_time
    }
}

/// Run the GPU-aware-MPI ablation on `system`.
pub fn gpu_aware_mpi(system: &System, grid: (usize, usize, usize), ppc: usize) -> GpuAwareAblation {
    let baseline = strong_scaling(system, grid, ppc);
    let mut aware = system.clone();
    aware.network.gpu_aware = true;
    let gpu_aware = strong_scaling(&aware, grid, ppc);
    GpuAwareAblation {
        system: system.name.to_string(),
        baseline,
        gpu_aware,
    }
}

/// One point of a weak-scaling curve: per-GPU problem held fixed.
#[derive(Debug, Clone, Serialize)]
pub struct WeakPoint {
    /// GPU count.
    pub gpus: usize,
    /// Step time, seconds.
    pub step_time: f64,
    /// Efficiency relative to the single-GPU step time
    /// (1.0 = perfect weak scaling).
    pub efficiency: f64,
}

/// Weak scaling: each GPU keeps `cells_per_gpu` cells and
/// `cells_per_gpu × ppc` particles; the global problem grows with the
/// sweep. Communication per rank is constant in this regime, so
/// efficiency should stay near 1 with a mild α-term decline.
pub fn weak_scaling(system: &System, cells_per_gpu: usize, ppc: usize) -> Vec<WeakPoint> {
    let side = (cells_per_gpu as f64).cbrt().round() as usize;
    let mut out = Vec::new();
    let mut base_time = None;
    for &gpus in &system.sweep {
        // grow the global grid so each rank keeps ~cells_per_gpu: the
        // processor grid's factorization sets the global shape
        let dims = Decomposition::new((1, 1, 1), gpus).dims;
        let global = (side * dims.0, side * dims.1, side * dims.2);
        let pts = strong_scaling_single_point(system, global, ppc, gpus);
        let t = pts.step_time;
        let base = *base_time.get_or_insert(t);
        out.push(WeakPoint { gpus, step_time: t, efficiency: base / t });
    }
    out
}

/// Evaluate one GPU count of a strong-scaling configuration (helper for
/// weak scaling, which changes the global grid per point).
fn strong_scaling_single_point(
    system: &System,
    global: (usize, usize, usize),
    ppc: usize,
    gpus: usize,
) -> ScalePoint {
    let mut sys = system.clone();
    sys.sweep = vec![gpus]; // restrict the sweep to the one point we need
    strong_scaling(&sys, global, ppc).pop().expect("one point")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scaling::paper_global_grid;
    use crate::systems;

    #[test]
    fn gpu_aware_mpi_rescues_sierra_scaling() {
        let sys = systems::sierra();
        let ab = gpu_aware_mpi(&sys, paper_global_grid(&sys), 24);
        // the paper's claim: GPU-aware MPI reduces communication overhead
        // and extends superlinear scaling
        assert!(
            ab.endpoint_gain() > 1.1,
            "GPU-aware MPI must speed up the comm-limited endpoint: {:.2}x",
            ab.endpoint_gain()
        );
        let b32 = ab.baseline.last().unwrap();
        let a32 = ab.gpu_aware.last().unwrap();
        assert!(a32.comm_time < b32.comm_time);
        assert_eq!(a32.push_time, b32.push_time, "compute unchanged");
    }

    #[test]
    fn gpu_aware_is_noop_on_already_aware_systems() {
        let sys = systems::selene();
        let ab = gpu_aware_mpi(&sys, paper_global_grid(&sys), 16);
        let gain = ab.endpoint_gain();
        assert!((0.99..1.01).contains(&gain), "{gain}");
    }

    #[test]
    fn weak_scaling_is_near_flat() {
        let sys = systems::selene();
        let pts = weak_scaling(&sys, 24_000, 16);
        assert_eq!(pts.len(), sys.sweep.len());
        assert_eq!(pts[0].efficiency, 1.0);
        for p in &pts {
            assert!(
                p.efficiency > 0.6,
                "weak scaling should hold: {:.2} at {} GPUs",
                p.efficiency,
                p.gpus
            );
        }
    }

    #[test]
    fn weak_scaling_grows_the_problem_not_the_time() {
        let sys = systems::tuolumne();
        let pts = weak_scaling(&sys, 16_000, 8);
        let t0 = pts.first().unwrap().step_time;
        let tn = pts.last().unwrap().step_time;
        assert!(tn < 3.0 * t0, "step time must stay bounded: {t0} → {tn}");
    }
}
