//! The strong-scaling generator (paper Fig 10).
//!
//! For each GPU count, the per-GPU step time is
//! `push + field-advance + communication`:
//!
//! * **push** — from `memsim::push::gpu_push` over the rank's share of
//!   the grid, with a random (sorting-disabled, as in §5.5) particle
//!   order. As ranks multiply, the local grid shrinks into the GPU's
//!   last-level cache and the per-particle cost drops — the superlinear
//!   mechanism.
//! * **field advance** — bandwidth-bound sweep over the local cells.
//! * **communication** — the α–β model over six ghost-face messages plus
//!   migrated particles (fraction estimated from surface/volume and the
//!   deck's thermal velocity; cross-checked against the measured
//!   migration of [`crate::exchange::ClusterSim`]).

use crate::decompose::Decomposition;
use crate::systems::System;
use memsim::gpu::GpuModel;
use memsim::platform::{Platform, PlatformKind};
use memsim::push::{fits_llc_with_particles, grid_fits_llc, gpu_push, PushSpec, PARTICLE_BYTES};
use psort::patterns::random_cells;
use serde::Serialize;

/// Ghost bytes per surface cell per exchange: 6 field components × 4 B.
const GHOST_BYTES_PER_CELL: f64 = 24.0;

/// Fraction of a rank-boundary cell layer's particles that migrate per
/// step (thermal flux estimate, ≈ v̄·dt/2 with v̄ ≈ 0.2c benchmark decks).
const BOUNDARY_CROSS_FRACTION: f64 = 0.05;

/// Cell count the push model is evaluated at; larger local grids are
/// evaluated at this size with the LLC shrunk by the same factor, which
/// preserves every working-set:cache ratio while bounding model cost.
const MODEL_CELLS: usize = 48_000;

/// Model particles per cell (per-particle cost is ppc-insensitive in
/// both the cache-resident and streaming regimes).
const MODEL_PPC: usize = 3;

/// One point on a strong-scaling curve.
#[derive(Debug, Clone, Serialize)]
pub struct ScalePoint {
    /// GPU count.
    pub gpus: usize,
    /// Cells per GPU.
    pub local_cells: usize,
    /// Particles per GPU.
    pub local_particles: usize,
    /// Push time per step, seconds.
    pub push_time: f64,
    /// Field-advance time per step, seconds.
    pub field_time: f64,
    /// Communication time per step, seconds.
    pub comm_time: f64,
    /// Total step time, seconds.
    pub step_time: f64,
    /// Whether the local grid fits in the GPU's LLC.
    pub grid_in_cache: bool,
    /// Particle pushes per nanosecond (per GPU).
    pub pushes_per_ns: f64,
}

impl ScalePoint {
    /// Speedup of this point relative to a baseline step time.
    pub fn speedup_vs(&self, baseline: &ScalePoint) -> f64 {
        baseline.step_time / self.step_time
    }
}

/// Particle records resident in a GPU's LLC alongside the grid: one warp
/// in flight per compute unit. This is the *occupancy window* that
/// competes with grid data for cache, not the whole population (particles
/// stream; the grid is the reused set). CPUs prefetch through their LLC
/// rather than holding a fixed window, so they contribute zero here.
pub fn resident_particles(platform: &Platform) -> usize {
    match platform.kind {
        PlatformKind::Gpu => platform.compute_units * platform.warp_width,
        PlatformKind::Cpu => 0,
    }
}

/// The in-cache predicate behind [`ScalePoint::grid_in_cache`]: on GPUs,
/// the grid footprint *plus* the resident particle window must fit
/// ([`memsim::push::fits_llc_with_particles`] — a grid that barely fits
/// alone still thrashes once the occupancy window moves in); on CPUs the
/// grid-only predicate, matching the live tuner's prior.
pub fn local_grid_in_cache(platform: &Platform, local_cells: usize) -> bool {
    match platform.kind {
        PlatformKind::Gpu => {
            fits_llc_with_particles(platform, local_cells, resident_particles(platform))
        }
        PlatformKind::Cpu => grid_fits_llc(platform, local_cells),
    }
}

/// The paper's grid choice per system: "carefully selecting the size of
/// our grid to match the peak performance in Figure 9" — the global grid
/// is the Fig 9 peak size times the GPU count where superlinearity should
/// peak (8× for Sierra, 64× for Selene and Tuolumne).
pub fn paper_global_grid(system: &System) -> (usize, usize, usize) {
    match system.name {
        "Sierra" => (48, 48, 48),      // 8 × 24³ (Fig 9 peak 13,824)
        "Selene" => (176, 176, 176),   // 64 × 44³ (Fig 9 peak 85,184)
        "Tuolumne" => (136, 136, 136), // 64 × 34³ (Fig 9 peak 39,304)
        _ => (64, 64, 64),
    }
}

/// Generate the strong-scaling curve for `system` over its paper sweep.
///
/// `global_grid` is the fixed total problem; `ppc` sets the fixed total
/// particle count (`cells × ppc`).
pub fn strong_scaling(
    system: &System,
    global_grid: (usize, usize, usize),
    ppc: usize,
) -> Vec<ScalePoint> {
    let platform = system.platform();
    let global_cells = global_grid.0 * global_grid.1 * global_grid.2;
    let total_particles = global_cells * ppc;
    let mut points = Vec::with_capacity(system.sweep.len());
    for &gpus in &system.sweep {
        let decomp = Decomposition::new(global_grid, gpus);
        let local_cells = decomp.local_cells(0);
        let local_particles = total_particles / gpus;
        // push model: random order (sorting disabled, §5.5), evaluated
        // at a bounded grid size with the cache scaled by the same factor
        let model_cells = local_cells.min(MODEL_CELLS);
        let scale = local_cells as f64 / model_cells as f64;
        let model_n = (model_cells * MODEL_PPC).min(local_particles).max(1);
        let cells = random_cells(model_n, model_cells, 0x5CA1E + gpus as u64);
        let model = GpuModel::scaled(platform.clone(), scale.max(1.0));
        // atomic terms are excluded from the per-particle extrapolation:
        // in random order their fixed (N-independent) hot-cell component
        // would be mis-scaled, and at these grid sizes and occupancies
        // they are negligible at real particle counts
        let spec = PushSpec { atomic_ops: 0, ..PushSpec::vpic(&cells, model_cells) };
        let push = gpu_push(&model, &spec);
        let per_particle = push.cost.time / model_n as f64;
        let push_time = per_particle * local_particles as f64;
        // field advance: E+B+J sweep, ~100 B touched per cell
        let field_time = local_cells as f64 * 100.0 / platform.dram_bw;
        // communication: ghost faces + migrated particles, one packed
        // message per *remote* face (periodic self-neighbor faces are
        // in-memory copies: a single rank sends nothing, and surface
        // cells are counted per remote face to match)
        let faces = decomp.remote_faces(0);
        let comm_time = if faces == 0 {
            0.0
        } else {
            let face_cells = decomp.surface_cells(0) as f64 / faces as f64;
            let boundary_particles =
                decomp.surface_cells(0) as f64 / local_cells as f64 * local_particles as f64;
            let migrants = boundary_particles * BOUNDARY_CROSS_FRACTION;
            let bytes_per_msg = face_cells * GHOST_BYTES_PER_CELL
                + migrants * PARTICLE_BYTES as f64 / faces as f64;
            system.network.exchange_time(faces, bytes_per_msg)
        };
        // VPIC's sends are non-blocking and overlapped with the push;
        // only the non-overlapped remainder extends the step
        let step_time = field_time + push_time.max(comm_time);
        points.push(ScalePoint {
            gpus,
            local_cells,
            local_particles,
            push_time,
            field_time,
            comm_time,
            step_time,
            // particle-aware on GPUs, grid-only on CPUs — shared with the
            // live tuner's cache prior family
            grid_in_cache: local_grid_in_cache(&platform, local_cells),
            pushes_per_ns: local_particles as f64 / (push_time * 1e9),
        });
    }
    points
}

/// Speedups relative to the sweep's first point, paired with the ideal
/// linear speedup for the same GPU ratio.
pub fn speedup_curve(points: &[ScalePoint]) -> Vec<(usize, f64, f64)> {
    let base = &points[0];
    points
        .iter()
        .map(|p| {
            (
                p.gpus,
                p.speedup_vs(base),
                p.gpus as f64 / base.gpus as f64,
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::systems;

    #[test]
    fn sierra_superlinear_then_comm_limited() {
        let sys = systems::sierra();
        let pts = strong_scaling(&sys, paper_global_grid(&sys), 48);
        let curve = speedup_curve(&pts);
        // paper: 25× speedup for 8× GPUs (1 → 8); accept clearly
        // superlinear (> 1.3× ideal)
        let at8 = curve.iter().find(|c| c.0 == 8).unwrap();
        assert!(
            at8.1 > 1.5 * at8.2,
            "Sierra must be superlinear at 8 GPUs: {:.1}x vs ideal {:.0}x",
            at8.1,
            at8.2
        );
        // beyond 8 the efficiency (speedup/ideal) must fall
        let eff = |g: usize| {
            let c = curve.iter().find(|c| c.0 == g).unwrap();
            c.1 / c.2
        };
        assert!(
            eff(32) < eff(8),
            "communication must erode efficiency at 32 GPUs: {} vs {}",
            eff(32),
            eff(8)
        );
        // and communication dominates the 32-GPU step
        let p32 = pts.iter().find(|p| p.gpus == 32).unwrap();
        assert!(p32.comm_time > p32.push_time, "V100@32: comm-limited");
    }

    #[test]
    fn selene_sustains_superlinear_to_512() {
        let sys = systems::selene();
        let pts = strong_scaling(&sys, paper_global_grid(&sys), 32);
        let curve = speedup_curve(&pts);
        // paper: 19× for 8× (8 → 64)
        let at64 = curve.iter().find(|c| c.0 == 64).unwrap();
        assert!(
            at64.1 > 1.3 * at64.2,
            "Selene superlinear at 64: {:.1}x vs ideal {:.0}x",
            at64.1,
            at64.2
        );
        // near-ideal or better all the way to 512
        let at512 = curve.iter().find(|c| c.0 == 512).unwrap();
        assert!(
            at512.1 > 0.8 * at512.2,
            "Selene ≥ near-ideal at 512: {:.0}x vs ideal {:.0}x",
            at512.1,
            at512.2
        );
    }

    #[test]
    fn tuolumne_superlinear_at_64() {
        let sys = systems::tuolumne();
        let pts = strong_scaling(&sys, paper_global_grid(&sys), 32);
        let curve = speedup_curve(&pts);
        // paper: 90.5× for 64×
        let at64 = curve.iter().find(|c| c.0 == 64).unwrap();
        assert!(
            at64.1 > at64.2,
            "Tuolumne superlinear at 64: {:.1}x vs {:.0}x",
            at64.1,
            at64.2
        );
    }

    #[test]
    fn cache_transition_drives_the_superlinearity() {
        let sys = systems::sierra();
        let pts = strong_scaling(&sys, paper_global_grid(&sys), 48);
        let p1 = &pts[0];
        let p8 = pts.iter().find(|p| p.gpus == 8).unwrap();
        assert!(!p1.grid_in_cache, "1 GPU: grid exceeds LLC");
        assert!(p8.grid_in_cache, "8 GPUs: grid fits LLC");
        assert!(p8.pushes_per_ns > p1.pushes_per_ns * 1.5);
    }

    #[test]
    fn superlinear_knee_pinned_at_8_gpus_on_sierra() {
        // regression pin for the particle-aware in-cache bit: the knee
        // (first in-cache sweep point) must stay at 8 GPUs — drifting to
        // 4 or 16 means the resident-particle window changed size
        let sys = systems::sierra();
        let pts = strong_scaling(&sys, paper_global_grid(&sys), 48);
        let knee = pts.iter().find(|p| p.grid_in_cache).map(|p| p.gpus);
        assert_eq!(knee, Some(8), "Sierra knee moved");
        for p in &pts {
            assert_eq!(p.grid_in_cache, p.gpus >= 8, "monotone at {} GPUs", p.gpus);
        }
    }

    #[test]
    fn gpu_in_cache_bit_counts_resident_particles() {
        use memsim::platform::by_name;
        use memsim::push::grid_footprint_bytes;
        let v100 = by_name("V100").unwrap();
        // V100: one warp per CU in flight, 64 B per record
        assert_eq!(resident_particles(&v100), 80 * 32);
        // boundary case: a grid that barely fits alone no longer fits
        // once the 163,840 B occupancy window is charged
        let cells = 14_400;
        assert!(grid_footprint_bytes(cells) <= v100.llc_bytes);
        assert!(grid_fits_llc(&v100, cells));
        assert!(!local_grid_in_cache(&v100, cells));
        // far smaller grids still read in-cache
        assert!(local_grid_in_cache(&v100, 13_000));
        // CPUs keep the grid-only predicate (and zero resident window)
        let milan = by_name("EPYC 7763").unwrap();
        assert_eq!(resident_particles(&milan), 0);
        assert_eq!(local_grid_in_cache(&milan, 500_000), grid_fits_llc(&milan, 500_000));
    }

    #[test]
    fn grids_match_fig9_peaks() {
        let s = systems::sierra();
        let g = paper_global_grid(&s);
        assert_eq!(g.0 * g.1 * g.2, 8 * 13_824);
        let s = systems::selene();
        let g = paper_global_grid(&s);
        assert_eq!(g.0 * g.1 * g.2, 64 * 85_184);
        let s = systems::tuolumne();
        let g = paper_global_grid(&s);
        assert_eq!(g.0 * g.1 * g.2, 64 * 39_304);
    }
}
