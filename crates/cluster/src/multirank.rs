//! Real multi-rank stepping with overlapped halo exchange (DESIGN §12).
//!
//! [`MultiRankSim`] drives N per-rank [`Simulation`]s through the full
//! VPIC step. The deck is partitioned via [`Decomposition`] into per-rank
//! grids with a one-cell halo shell; every step performs real field halo
//! exchange and particle migration between the ranks, serialized through
//! reusable per-pair buffers, with latency and bandwidth charged through
//! the [`NetworkModel`]. Interior field kernels run while boundary shells
//! wait on in-flight exchanges, so the executed step time reflects the
//! paper's compute/communication overlap rather than their sum.
//!
//! ## Bit-identity
//!
//! The correctness oracle: for any rank count, the gathered global state
//! is bit-identical to the single-rank (sort-disabled) run. Three
//! disciplines make that hold, extending PRs 1 and 5 per-kernel
//! determinism across ranks:
//!
//! * **Fixed-point deposition** — the accumulator stores quantized `i64`
//!   partials, so rank-boundary current merges are integer adds: exactly
//!   associative and commutative, independent of which rank's array a
//!   segment landed in.
//! * **Shared op trees** — every field kernel walks one op tree per cell
//!   whether sweeping the whole grid, a row interior, or a boundary box,
//!   so halo grids reproduce the global sweep cell-for-cell.
//! * **Deterministic migrant ordering** — migrants drain in ascending
//!   array order, carry their global load index, and are appended sorted
//!   by `(species, id)`; the gather reassembles canonical global arrays
//!   by id, restoring the single-rank summation order everywhere.
//!
//! Halo cells compute garbage during full-grid sweeps (they wrap inside
//! the local grid); every consumer reads them only after the exchange
//! that overwrites them with the owner's canonical values, and owned
//! cells never wrap because CFL limits motion and stencils to one cell.

use crate::decompose::Decomposition;
use crate::exchange::MigrationStats;
use crate::network::NetworkModel;
use ckpt::{RestoreError, Snapshot, Writer};
use memsim::gpu::GpuModel;
use memsim::push::{gpu_push, PushSpec};
use serde::Serialize;
use std::collections::{BTreeMap, BTreeSet};
use vpic_core::accumulate::SLOTS;
use vpic_core::push::PushStats;
use vpic_core::sim::LaserDriver;
use vpic_core::{Grid, ParticleRecord, Simulation, TuneDriver};

/// Bytes shipped per migrating particle: the 32-byte phase-space record
/// plus the 8-byte global id that keeps gather order canonical.
pub const MIGRANT_BYTES: usize = 40;

/// Bytes per halo cell per field exchange (3 components × f32).
pub const FIELD_HALO_BYTES: usize = 12;

/// Bytes per halo cell for the current-accumulator exchange
/// (12 fixed-point i64 slots).
pub const ACC_HALO_BYTES: usize = SLOTS * 8;

/// Where a particle found outside the owned box must go.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Route {
    /// An owned cell (canonical index: stays put).
    Owned,
    /// A halo image of a cell this rank owns (periodic self-neighbor
    /// axis): remap to the canonical local index, no migration.
    Remap(u32),
    /// A halo image of a cell another rank owns: migrate there.
    Remote(u32),
}

/// One neighbor link of a rank: the per-pair exchange plan. Both
/// endpoints build the pair's overlap list in the same (ascending global
/// cell) order, so position `k` refers to the same global cell on both
/// sides without shipping indices.
#[derive(Debug, Clone)]
struct Link {
    /// The other rank (may be `self` for periodic self-copies, which
    /// move no network bytes).
    rank: usize,
    /// Positions into this rank's `shared` table for the pair's overlap
    /// cells, ascending-global order.
    acc_pos: Vec<u32>,
    /// Field halo send plan: this rank's canonical local index of each
    /// overlap cell *it* owns, ascending-global order.
    field_src: Vec<u32>,
    /// Field halo receive plan: flattened local image indices of each
    /// overlap cell *the other rank* owns, grouped per cell by
    /// `field_dst_off`, ascending-global order.
    field_dst: Vec<u32>,
    /// Offsets into `field_dst`: cell `k`'s images are
    /// `field_dst[off[k]..off[k+1]]`.
    field_dst_off: Vec<u32>,
}

/// Per-rank geometry and exchange plan, all precomputed at construction.
#[derive(Debug, Clone)]
struct RankPlan {
    origin: (usize, usize, usize),
    extent: (usize, usize, usize),
    /// Global cell id of every local cell (halo included).
    local_to_global: Vec<u32>,
    /// Migration routing for every local cell.
    route: Vec<Route>,
    /// Cells that exist in more than one local array (or more than once
    /// in this one): `(global, local images)` ascending by global id.
    shared: Vec<(u32, Vec<u32>)>,
    /// Neighbor links, ascending by rank id (self link last if present).
    links: Vec<Link>,
}

impl RankPlan {
    /// Canonical local index of an owned global cell.
    fn canonical(&self, g: u32, global: &Grid, local: &Grid) -> u32 {
        let (gx, gy, gz) = global.coords(g as usize);
        let lx = gx - self.origin.0 + 1;
        let ly = gy - self.origin.1 + 1;
        let lz = gz - self.origin.2 + 1;
        local.voxel(lx, ly, lz) as u32
    }
}

/// One rank's live state.
struct RankState {
    sim: Simulation,
    plan: RankPlan,
    /// Global load index of every particle, per species, parallel to the
    /// species arrays. Migrates with the particle; the gather reassembles
    /// canonical global order from it.
    ids: Vec<Vec<u64>>,
    /// Per-shared-cell fixed-point deposition partials (this rank's own
    /// images summed), rebuilt every step.
    partials: Vec<[i64; SLOTS]>,
    /// Merged totals across every rank holding the cell.
    totals: Vec<[i64; SLOTS]>,
    /// Reusable drain scratch: indices of out-migrating particles.
    drain_idx: Vec<usize>,
    /// Reusable drain scratch: their records.
    drain_rec: Vec<ParticleRecord>,
}

/// A migrating particle in flight: species index, global load index, and
/// the phase-space record with `cell` rewritten to the *global* cell id.
#[derive(Debug, Clone, Copy)]
struct Migrant {
    species: u32,
    id: u64,
    rec: ParticleRecord,
}

/// Executed/modeled timing of one multi-rank step.
#[derive(Debug, Clone, Copy, Default, Serialize)]
pub struct StepTiming {
    /// Largest per-rank compute wall (all kernel and copy segments), s.
    pub compute_s: f64,
    /// Sum over ranks of modeled exchange time, s.
    pub modeled_exchange_s: f64,
    /// Sum over ranks of the exchange time *not* hidden behind interior
    /// compute, s.
    pub exposed_exchange_s: f64,
    /// Sum over ranks of the exchange time hidden behind overlapped
    /// compute windows, s.
    pub hidden_exchange_s: f64,
    /// Executed step time: max over ranks of compute + exposed, s.
    pub step_s: f64,
    /// Largest per-rank *modeled GPU* compute time (push over the rank's
    /// executed cell stream + field sweep, costed through the armed
    /// [`GpuModel`]), s. Zero when no model is armed.
    pub gpu_compute_s: f64,
    /// Modeled GPU step time: max over ranks of modeled compute + exposed
    /// exchange, s. Zero when no model is armed.
    pub gpu_step_s: f64,
}

/// Accumulated timing over a run.
#[derive(Debug, Clone, Default, Serialize)]
pub struct RunTiming {
    /// Steps accumulated.
    pub steps: usize,
    /// Σ per-step executed step time, s.
    pub step_s: f64,
    /// Σ over ranks and steps of modeled exchange time, s.
    pub modeled_exchange_s: f64,
    /// Σ over ranks and steps of exposed exchange time, s.
    pub exposed_exchange_s: f64,
    /// Σ over ranks and steps of hidden exchange time, s.
    pub hidden_exchange_s: f64,
    /// Σ per-step modeled GPU step time, s (zero when no model is armed).
    pub gpu_step_s: f64,
}

impl RunTiming {
    fn add(&mut self, t: &StepTiming) {
        self.steps += 1;
        self.step_s += t.step_s;
        self.modeled_exchange_s += t.modeled_exchange_s;
        self.exposed_exchange_s += t.exposed_exchange_s;
        self.hidden_exchange_s += t.hidden_exchange_s;
        self.gpu_step_s += t.gpu_step_s;
    }

    /// Mean executed step time, s.
    pub fn mean_step_s(&self) -> f64 {
        self.step_s / self.steps.max(1) as f64
    }

    /// Fraction of modeled exchange time hidden behind interior compute.
    pub fn hidden_fraction(&self) -> f64 {
        if self.modeled_exchange_s == 0.0 {
            1.0
        } else {
            self.hidden_exchange_s / self.modeled_exchange_s
        }
    }
}

/// N real per-rank simulations stepping in lockstep with halo exchange,
/// particle migration, and modeled network charges (module docs).
pub struct MultiRankSim {
    /// The rank layout.
    pub decomp: Decomposition,
    /// The interconnect being modeled.
    pub network: NetworkModel,
    global_grid: Grid,
    laser: Option<LaserDriver>,
    ranks: Vec<RankState>,
    step: u64,
    /// Reusable per-`(src, dst)` migration buffers (the satellite's
    /// "serialized through reusable per-pair buffers").
    mig_buffers: BTreeMap<(usize, usize), Vec<Migrant>>,
    /// Reusable per-rank incoming-migrant staging.
    incoming: Vec<Vec<Migrant>>,
    timing: RunTiming,
    /// When armed, each step also charges per-rank compute through this
    /// GPU cost model (over the *executed* per-rank cell streams), so the
    /// paper's cache-driven superlinear regime shows up in the executed
    /// loop. Not checkpointed — re-arm after a restore.
    gpu: Option<GpuModel>,
}

fn secs(ns: u64) -> f64 {
    ns as f64 * 1e-9
}

impl MultiRankSim {
    /// Partition `sim` (a freshly built deck: canonical particle order,
    /// any field state) over `ranks` ranks.
    ///
    /// Per-rank sims run sort-disabled — migration would invalidate
    /// sorted order rank-locally anyway — so bit-identity oracles must
    /// compare against a sort-disabled single-rank run.
    ///
    /// # Panics
    /// Panics if the decomposition leaves any rank without cells (more
    /// ranks than cells along an axis); use the virtual
    /// [`crate::ClusterSim`] for such degenerate layouts.
    pub fn new(sim: &Simulation, ranks: usize, network: NetworkModel) -> Self {
        let g = sim.grid.clone();
        let decomp = Decomposition::new((g.nx, g.ny, g.nz), ranks);
        for r in 0..decomp.ranks() {
            assert!(
                decomp.local_cells(r) > 0,
                "rank {r} owns no cells: {} ranks over {:?}",
                decomp.ranks(),
                (g.nx, g.ny, g.nz)
            );
        }
        let plans = build_plans(&decomp, &g);
        let nranks = decomp.ranks();
        let mut states: Vec<RankState> = plans
            .into_iter()
            .map(|plan| {
                let (lx, ly, lz) = plan.extent;
                let local = Grid::new(lx + 2, ly + 2, lz + 2);
                debug_assert_eq!(local.dt, g.dt, "unit cells: dt is extent-independent");
                let mut rsim = Simulation::new(local);
                rsim.strategy = sim.strategy;
                for s in &sim.species {
                    let mut rs = vpic_core::Species::new(s.name.clone(), s.q, s.m);
                    // keep steady-state appends allocation-free-ish
                    rs.dx.reserve(s.len() / nranks + 16);
                    rsim.add_species(rs);
                }
                let shared = plan.shared.len();
                RankState {
                    sim: rsim,
                    plan,
                    ids: vec![Vec::new(); sim.species.len()],
                    partials: vec![[0i64; SLOTS]; shared],
                    totals: vec![[0i64; SLOTS]; shared],
                    drain_idx: Vec::new(),
                    drain_rec: Vec::new(),
                }
            })
            .collect();
        // scatter particles to their owning rank, carrying the global
        // load index as the identity the gather reassembles
        for (si, s) in sim.species.iter().enumerate() {
            for p in 0..s.len() {
                let (gx, gy, gz) = g.coords(s.cell[p] as usize);
                let r = decomp.owner(gx, gy, gz);
                let st = &mut states[r];
                let lcell =
                    st.plan.canonical(s.cell[p], &g, &st.sim.grid);
                let mut rec = s.record(p);
                rec.cell = lcell;
                st.sim.species[si].push_record(&rec);
                st.ids[si].push(p as u64);
            }
        }
        // copy the field state (owned and halo alike) straight from the
        // global arrays — at t = 0 no exchange is needed
        for st in &mut states {
            for lv in 0..st.sim.grid.cells() {
                let gv = st.plan.local_to_global[lv] as usize;
                let (f, gf) = (&mut st.sim.fields, &sim.fields);
                f.ex[lv] = gf.ex[gv];
                f.ey[lv] = gf.ey[gv];
                f.ez[lv] = gf.ez[gv];
                f.bx[lv] = gf.bx[gv];
                f.by[lv] = gf.by[gv];
                f.bz[lv] = gf.bz[gv];
                f.jx[lv] = gf.jx[gv];
                f.jy[lv] = gf.jy[gv];
                f.jz[lv] = gf.jz[gv];
            }
        }
        let incoming = vec![Vec::new(); nranks];
        Self {
            decomp,
            network,
            global_grid: g,
            laser: sim.laser.clone(),
            ranks: states,
            step: sim.step_count(),
            mig_buffers: BTreeMap::new(),
            incoming,
            timing: RunTiming::default(),
            gpu: None,
        }
    }

    /// Rank count.
    pub fn ranks(&self) -> usize {
        self.ranks.len()
    }

    /// Steps taken.
    pub fn step_count(&self) -> u64 {
        self.step
    }

    /// Accumulated run timing.
    pub fn timing(&self) -> &RunTiming {
        &self.timing
    }

    /// Particles currently owned by each rank.
    pub fn rank_populations(&self) -> Vec<usize> {
        self.ranks.iter().map(|r| r.sim.particle_count()).collect()
    }

    // ── Per-rank tuning ────────────────────────────────────────────────
    //
    // Heterogeneous systems want heterogeneous configurations: a GPU
    // rank and a CPU rank pick different strategies and scatter modes.
    // Every per-rank knob is bit-safe — all strategies walk one IEEE op
    // tree, deposits are order-independent fixed-point adds, and the
    // gather reassembles canonical order by id — so ranks may diverge in
    // configuration while the gathered state stays bit-identical to the
    // single-rank run.

    /// Apply a fixed tuner configuration to one rank's simulation.
    /// Tiled arms are rejected: decomposed stepping drives untiled
    /// ranks (see [`Simulation::begin_step`]).
    pub fn set_rank_config(&mut self, rank: usize, cfg: &tuner::Config) {
        assert!(cfg.tile.is_none(), "decomposed stepping drives untiled ranks");
        self.ranks[rank].sim.apply_tune_config(cfg, 1);
    }

    /// Arm one rank with its own adaptive tuner. The driver brackets the
    /// rank's push phase each step (epoch scoring measures the phase-A
    /// wall), and rides the rank simulation's checkpoint, so a restored
    /// cluster resumes every rank's schedule. Arms must be untiled.
    pub fn set_rank_tuner(&mut self, rank: usize, driver: TuneDriver) {
        assert!(
            driver.tuner().state().arms.iter().all(|a| a.tile.is_none()),
            "decomposed stepping drives untiled ranks"
        );
        self.ranks[rank].sim.set_tuner(driver);
    }

    /// One rank's armed tuning driver, if any.
    pub fn rank_tuner(&self, rank: usize) -> Option<&TuneDriver> {
        self.ranks[rank].sim.tuner()
    }

    /// Disarm and return one rank's tuning driver.
    pub fn take_rank_tuner(&mut self, rank: usize) -> Option<TuneDriver> {
        self.ranks[rank].sim.take_tuner()
    }

    /// Arm a GPU cost model: every subsequent step also charges each
    /// rank's compute (push over its executed particle cell stream, plus
    /// a bandwidth-bound field sweep) through `model`, reported as
    /// [`StepTiming::gpu_compute_s`] / [`StepTiming::gpu_step_s`]. The
    /// functional physics is untouched. Not checkpointed — re-arm after
    /// [`MultiRankSim::restore`].
    pub fn set_gpu_model(&mut self, model: GpuModel) {
        self.gpu = Some(model);
    }

    /// The armed GPU cost model, if any.
    pub fn gpu_model(&self) -> Option<&GpuModel> {
        self.gpu.as_ref()
    }

    /// Cells of one rank's local grid (halo shell included) — the grid
    /// footprint the armed GPU model sees.
    pub fn rank_grid_cells(&self, rank: usize) -> usize {
        self.ranks[rank].sim.grid.cells()
    }

    /// Read access to one rank's local simulation (diagnostics: cost
    /// models and tests inspect the executed per-rank streams).
    pub fn rank_sim(&self, rank: usize) -> &Simulation {
        &self.ranks[rank].sim
    }

    /// Advance one lockstep multi-rank step.
    pub fn step(&mut self) -> (PushStats, MigrationStats, StepTiming) {
        let n = self.ranks.len();
        let _span = telemetry::hspan("cluster.exchange").arg("ranks", n).arg("step", self.step);
        let mut push = PushStats::default();
        let mut mig = MigrationStats::default();
        let mut out_of = vec![0usize; n];
        let mut messages = 0u64;
        let mut halo_bytes = 0u64;
        // per-rank measured compute segments and modeled exchange charges
        let mut t_push = vec![0.0f64; n];
        let mut t_b1 = vec![0.0f64; n];
        let mut t_merge = vec![0.0f64; n];
        let mut t_unload = vec![0.0f64; n];
        let mut t_bfill = vec![0.0f64; n];
        let mut t_e = vec![0.0f64; n];
        let mut t_b2i = vec![0.0f64; n];
        let mut t_efill = vec![0.0f64; n];
        let mut t_b2b = vec![0.0f64; n];
        let mut t_append = vec![0.0f64; n];
        let mut t_b2fill = vec![0.0f64; n];
        let mut x_acc = vec![0.0f64; n];
        let mut x_b = vec![0.0f64; n];
        let mut x_e = vec![0.0f64; n];
        let mut x_b2 = vec![0.0f64; n];
        let mut x_mig = vec![0.0f64; n];
        let mut g_comp = vec![0.0f64; n];
        for buf in self.mig_buffers.values_mut() {
            buf.clear();
        }
        // ── phase A: interpolate + push, drain migrants, compute
        //    deposition partials, launch migrant + accumulator sends ──
        let mut outbox: Vec<(usize, Migrant)> = Vec::new();
        for r in 0..n {
            let _rs = telemetry::rank_span("cluster.rank_push", r);
            let t0 = telemetry::now_ns();
            outbox.clear();
            let st = &mut self.ranks[r];
            // per-rank adaptive tuning brackets the push phase; config
            // swaps happen only here, never inside the step
            let mut driver = st.sim.take_tuner();
            if let Some(d) = &mut driver {
                d.before_step(&mut st.sim, 1);
            }
            // scheduled per-rank sort, the decomposed twin of the one in
            // `step_on`. The reorder must happen here rather than inside
            // `begin_step` because the id maps that track each particle's
            // global load order are parallel to the SoA arrays and have
            // to follow the same permutation — otherwise migration and
            // gather would hand back the wrong identities. Sorting stays
            // bit-safe: it permutes bit-identical records within a rank,
            // so the gathered canonical-order state is unchanged (see the
            // per-rank tuning contract above).
            if let Some(order) = st.sim.consume_due_sort() {
                for si in 0..st.sim.species.len() {
                    if st.sim.species[si].sort(order) {
                        let perm = st.sim.species[si].sort_perm();
                        let old = std::mem::take(&mut st.ids[si]);
                        st.ids[si] = perm.iter().map(|&p| old[p]).collect();
                    }
                }
            }
            let stats = st.sim.begin_step();
            if let Some(mut d) = driver {
                let push_ns = telemetry::now_ns().saturating_sub(t0);
                d.after_step(&stats, push_ns, 0, false);
                st.sim.set_tuner(d);
            }
            push.pushed += stats.pushed;
            push.crossings += stats.crossings;
            mig.total += st.sim.particle_count();
            // migrant drain: ascending index per species, aggregated
            // across species before the per-rank peak is taken
            for si in 0..st.sim.species.len() {
                st.drain_idx.clear();
                st.drain_rec.clear();
                {
                    let s = &mut st.sim.species[si];
                    let mut remapped = false;
                    for p in 0..s.len() {
                        match st.plan.route[s.cell[p] as usize] {
                            Route::Owned => {}
                            Route::Remap(c) => {
                                s.cell[p] = c;
                                remapped = true;
                            }
                            Route::Remote(_) => st.drain_idx.push(p),
                        }
                    }
                    if remapped {
                        s.mark_unsorted();
                    }
                }
                if st.drain_idx.is_empty() {
                    continue;
                }
                out_of[r] += st.drain_idx.len();
                mig.migrants += st.drain_idx.len();
                let drain_ids: Vec<u64> =
                    st.drain_idx.iter().map(|&p| st.ids[si][p]).collect();
                remove_sorted_indices(&mut st.ids[si], &st.drain_idx);
                let RankState { sim, plan, drain_idx, drain_rec, .. } = st;
                sim.species[si].drain_sorted_indices(drain_idx, drain_rec);
                for (k, record) in drain_rec.iter().enumerate() {
                    let dst = match plan.route[record.cell as usize] {
                        Route::Remote(d) => d as usize,
                        _ => unreachable!("drained cells are remote"),
                    };
                    let mut out = *record;
                    out.cell = plan.local_to_global[record.cell as usize];
                    outbox.push((
                        dst,
                        Migrant { species: si as u32, id: drain_ids[k], rec: out },
                    ));
                }
            }
            // deposition partials over this rank's images of shared cells
            for (i, (_, images)) in st.plan.shared.iter().enumerate() {
                let mut acc = [0i64; SLOTS];
                for &img in images {
                    let raw = st.sim.acc_cell_raw(img as usize);
                    for s in 0..SLOTS {
                        acc[s] = acc[s].wrapping_add(raw[s]);
                    }
                }
                st.partials[i] = acc;
            }
            t_push[r] = secs(telemetry::now_ns().saturating_sub(t0));
            // modeled GPU compute for this rank, over the *executed* cell
            // stream (after t_push is closed, so model evaluation wall
            // time never pollutes the executed measurements)
            if let Some(model) = &self.gpu {
                let sim = &self.ranks[r].sim;
                let cells = sim.grid.cells();
                // field sweep: ~100 B per cell, bandwidth-bound
                let mut t = cells as f64 * 100.0 / model.platform().dram_bw;
                // the deposition cost follows the rank's actual scatter
                // mode: atomic deposition pays collision replays (the
                // model's MLP-window hotness term), while duplicated
                // deposition privatizes the accumulator — no atomics at
                // all, but the replicas have to be reduced with one
                // extra bandwidth-bound sweep over the grid
                let atomic = matches!(sim.scatter_mode, pk::atomic::ScatterMode::Atomic);
                for s in &sim.species {
                    if !s.cell.is_empty() {
                        let mut spec = PushSpec::vpic(&s.cell, cells);
                        if !atomic {
                            spec.atomic_ops = 0;
                        }
                        t += gpu_push(model, &spec).cost.time;
                    }
                }
                if !atomic {
                    t += 2.0 * memsim::push::grid_footprint_bytes(cells) as f64
                        / model.platform().dram_bw;
                }
                g_comp[r] = t;
            }
            // launch the accumulator exchange: one directed message per
            // remote link
            for link in &self.ranks[r].plan.links {
                if link.rank != r {
                    let bytes = (link.acc_pos.len() * ACC_HALO_BYTES) as f64;
                    x_acc[r] += self.network.message_time(bytes);
                    messages += 1;
                    halo_bytes += bytes as u64;
                }
            }
            for &(dst, m) in &outbox {
                self.mig_buffers.entry((r, dst)).or_default().push(m);
            }
        }
        // migrant messages: the receiver is charged each incoming send
        for (&(src, dst), buf) in &self.mig_buffers {
            if src != dst && !buf.is_empty() {
                x_mig[dst] += self.network.message_time((buf.len() * MIGRANT_BYTES) as f64);
                messages += 1;
            }
        }
        // ── phase B: first half B advance over the full local grid,
        //    overlapping the accumulator + migrant exchanges ──
        for r in 0..n {
            let t0 = telemetry::now_ns();
            let st = &mut self.ranks[r];
            let strategy = st.sim.strategy;
            st.sim.fields.advance_b_on(&pk::Serial, strategy, 0.5);
            t_b1[r] = secs(telemetry::now_ns().saturating_sub(t0));
            // B halos must be current before the E advance: launch now,
            // overlap with the merge + unload window
            for link in &st.plan.links {
                if link.rank != r && !link.field_dst_off.is_empty() {
                    let cells = link.field_dst_off.len() - 1;
                    if cells > 0 {
                        let bytes = (cells * FIELD_HALO_BYTES) as f64;
                        x_b[r] += self.network.message_time(bytes);
                        messages += 1;
                        halo_bytes += bytes as u64;
                    }
                }
            }
        }
        // ── phase C: merge deposition partials (wait on the accumulator
        //    exchange), write totals to every local image ──
        // the loop body indexes several parallel per-rank arrays
        #[allow(clippy::needless_range_loop)]
        for r in 0..n {
            let t0 = telemetry::now_ns();
            let mut totals = std::mem::take(&mut self.ranks[r].totals);
            totals.copy_from_slice(&self.ranks[r].partials);
            for li in 0..self.ranks[r].plan.links.len() {
                let peer = self.ranks[r].plan.links[li].rank;
                if peer == r {
                    continue;
                }
                // the peer's link back to us lists the same overlap cells
                // in the same ascending-global order
                let back = self.ranks[peer]
                    .plan
                    .links
                    .iter()
                    .position(|l| l.rank == r)
                    .expect("links are symmetric");
                let mine = &self.ranks[r].plan.links[li].acc_pos;
                let theirs = &self.ranks[peer].plan.links[back].acc_pos;
                debug_assert_eq!(mine.len(), theirs.len());
                for (k, &pos) in mine.iter().enumerate() {
                    let src = &self.ranks[peer].partials[theirs[k] as usize];
                    let dst = &mut totals[pos as usize];
                    for s in 0..SLOTS {
                        dst[s] = dst[s].wrapping_add(src[s]);
                    }
                }
            }
            let st = &mut self.ranks[r];
            for (i, (_, images)) in st.plan.shared.iter().enumerate() {
                for &img in images {
                    st.sim.acc_set_cell_raw(img as usize, &totals[i]);
                }
            }
            st.totals = totals;
            t_merge[r] = secs(telemetry::now_ns().saturating_sub(t0));
        }
        // ── phase D: unload currents, drive the laser plane ──
        let drive = self.laser.as_ref().map(|l| {
            let t = (self.step as f64 * self.global_grid.dt as f64) as f32;
            (l.plane, l.amplitude * (l.omega * t).sin())
        });
        // the loop body indexes several parallel per-rank arrays
        #[allow(clippy::needless_range_loop)]
        for r in 0..n {
            let t0 = telemetry::now_ns();
            let st = &mut self.ranks[r];
            st.sim.unload_currents();
            if let Some((plane, drive)) = drive {
                let (ox, _, _) = st.plan.origin;
                let (lx, ly, lz) = st.plan.extent;
                if plane >= ox && plane < ox + lx {
                    let lp = plane - ox + 1;
                    for ly_i in 1..=ly {
                        for lz_i in 1..=lz {
                            let v = st.sim.grid.voxel(lp, ly_i, lz_i);
                            st.sim.fields.jz[v] += drive;
                        }
                    }
                }
            }
            t_unload[r] = secs(telemetry::now_ns().saturating_sub(t0));
        }
        // ── phase E: fill B halos (wait on the B exchange), full E
        //    advance ──
        for r in 0..n {
            let t0 = telemetry::now_ns();
            self.fill_halos(r, FieldSet::B);
            t_bfill[r] = secs(telemetry::now_ns().saturating_sub(t0));
            let t0 = telemetry::now_ns();
            let st = &mut self.ranks[r];
            let strategy = st.sim.strategy;
            st.sim.fields.advance_e_on(&pk::Serial, strategy);
            t_e[r] = secs(telemetry::now_ns().saturating_sub(t0));
            // launch the E halo exchange; the interior B half-advance
            // overlaps it
            for link in &st.plan.links {
                if link.rank != r && !link.field_dst_off.is_empty() {
                    let cells = link.field_dst_off.len() - 1;
                    if cells > 0 {
                        let bytes = (cells * FIELD_HALO_BYTES) as f64;
                        x_e[r] += self.network.message_time(bytes);
                        messages += 1;
                        halo_bytes += bytes as u64;
                    }
                }
            }
        }
        // ── phase F: second half B advance on the interior box while
        //    the E exchange is in flight ──
        // the loop body indexes several parallel per-rank arrays
        #[allow(clippy::needless_range_loop)]
        for r in 0..n {
            let t0 = telemetry::now_ns();
            let st = &mut self.ranks[r];
            let (lx, ly, lz) = st.plan.extent;
            st.sim.fields.advance_b_box(1..lx, 1..ly, 1..lz, 0.5);
            t_b2i[r] = secs(telemetry::now_ns().saturating_sub(t0));
        }
        // ── phase G: fill E halos (wait on the E exchange), sweep the
        //    boundary shells the interior pass skipped, launch the
        //    post-advance B exchange ──
        for r in 0..n {
            let t0 = telemetry::now_ns();
            self.fill_halos(r, FieldSet::E);
            t_efill[r] = secs(telemetry::now_ns().saturating_sub(t0));
            let t0 = telemetry::now_ns();
            let st = &mut self.ranks[r];
            let (lx, ly, lz) = st.plan.extent;
            // the three plus-face shells: disjoint, and together with the
            // interior box they cover the owned region exactly once
            st.sim.fields.advance_b_box(lx..lx + 1, 1..ly + 1, 1..lz + 1, 0.5);
            st.sim.fields.advance_b_box(1..lx, ly..ly + 1, 1..lz + 1, 0.5);
            st.sim.fields.advance_b_box(1..lx, 1..ly, lz..lz + 1, 0.5);
            t_b2b[r] = secs(telemetry::now_ns().saturating_sub(t0));
            for link in &st.plan.links {
                if link.rank != r && !link.field_dst_off.is_empty() {
                    let cells = link.field_dst_off.len() - 1;
                    if cells > 0 {
                        let bytes = (cells * FIELD_HALO_BYTES) as f64;
                        x_b2[r] += self.network.message_time(bytes);
                        messages += 1;
                        halo_bytes += bytes as u64;
                    }
                }
            }
        }
        // ── phase H: append migrants sorted by (species, id) — waiting
        //    on the migration exchange launched in phase A — then fill
        //    the post-advance B halos and close the step ──
        for r in 0..n {
            let t0 = telemetry::now_ns();
            let inc = &mut self.incoming[r];
            inc.clear();
            for (&(src, dst), buf) in &self.mig_buffers {
                let _ = src;
                if dst == r {
                    inc.extend_from_slice(buf);
                }
            }
            inc.sort_by_key(|m| (m.species, m.id));
            let st = &mut self.ranks[r];
            for m in inc.iter() {
                let lcell = st.plan.canonical(m.rec.cell, &self.global_grid, &st.sim.grid);
                let mut rec = m.rec;
                rec.cell = lcell;
                st.sim.species[m.species as usize].push_record(&rec);
                st.ids[m.species as usize].push(m.id);
            }
            t_append[r] = secs(telemetry::now_ns().saturating_sub(t0));
            let t0 = telemetry::now_ns();
            self.fill_halos(r, FieldSet::B);
            t_b2fill[r] = secs(telemetry::now_ns().saturating_sub(t0));
            self.ranks[r].sim.finish_step();
        }
        self.step += 1;
        mig.max_out_of_rank = out_of.into_iter().max().unwrap_or(0);
        if telemetry::enabled() {
            telemetry::count("cluster.migrants", mig.migrants as u64);
            telemetry::count("cluster.bytes_moved", (mig.migrants * MIGRANT_BYTES) as u64);
            telemetry::count("cluster.halo_bytes", halo_bytes);
            telemetry::count("cluster.messages", messages);
            telemetry::hist!("cluster.migrants.per_step", mig.migrants as u64);
        }
        // ── overlap accounting: each exchange is hidden by the compute
        //    window between its launch and its wait point ──
        let mut timing = StepTiming::default();
        let mut step_s = 0.0f64;
        for r in 0..n {
            let compute = t_push[r]
                + t_b1[r]
                + t_merge[r]
                + t_unload[r]
                + t_bfill[r]
                + t_e[r]
                + t_b2i[r]
                + t_efill[r]
                + t_b2b[r]
                + t_append[r]
                + t_b2fill[r];
            let win_acc = t_b1[r];
            let win_b = t_merge[r] + t_unload[r];
            let win_e = t_b2i[r];
            let win_mig = t_b1[r]
                + t_merge[r]
                + t_unload[r]
                + t_bfill[r]
                + t_e[r]
                + t_b2i[r]
                + t_efill[r]
                + t_b2b[r];
            let win_b2 = t_append[r];
            let modeled = x_acc[r] + x_b[r] + x_e[r] + x_mig[r] + x_b2[r];
            let exposed = (x_acc[r] - win_acc).max(0.0)
                + (x_b[r] - win_b).max(0.0)
                + (x_e[r] - win_e).max(0.0)
                + (x_mig[r] - win_mig).max(0.0)
                + (x_b2[r] - win_b2).max(0.0);
            timing.compute_s = timing.compute_s.max(compute);
            timing.modeled_exchange_s += modeled;
            timing.exposed_exchange_s += exposed;
            timing.hidden_exchange_s += modeled - exposed;
            step_s = step_s.max(compute + exposed);
            if self.gpu.is_some() {
                timing.gpu_compute_s = timing.gpu_compute_s.max(g_comp[r]);
                timing.gpu_step_s = timing.gpu_step_s.max(g_comp[r] + exposed);
            }
            // per-rank exchange-overlap distributions: exposed is the tail
            // that actually extends the step, hidden is what the compute
            // window absorbed
            telemetry::hist!("cluster.exposed_exchange.ns", (exposed * 1e9) as u64);
            telemetry::hist!(
                "cluster.hidden_exchange.ns",
                ((modeled - exposed).max(0.0) * 1e9) as u64
            );
        }
        timing.step_s = step_s;
        self.timing.add(&timing);
        (push, mig, timing)
    }

    /// Run `n` steps; returns aggregate push stats.
    pub fn run(&mut self, n: usize) -> PushStats {
        let mut total = PushStats::default();
        for _ in 0..n {
            let (p, _, _) = self.step();
            total.pushed += p.pushed;
            total.crossings += p.crossings;
        }
        total
    }

    /// Copy canonical owner values into every halo image of `rank` for
    /// the given field set: the in-memory completion of an exchange whose
    /// wire time was charged at launch.
    fn fill_halos(&mut self, rank: usize, set: FieldSet) {
        let _s = telemetry::rank_span("cluster.halo_fill", rank);
        for li in 0..self.ranks[rank].plan.links.len() {
            let peer = self.ranks[rank].plan.links[li].rank;
            if peer == rank {
                // periodic self-copy: canonical → images, no network
                let st = &mut self.ranks[rank];
                let link = &st.plan.links[li];
                for (k, &src) in link.field_src.iter().enumerate() {
                    let lo = link.field_dst_off[k] as usize;
                    let hi = link.field_dst_off[k + 1] as usize;
                    for &dst in &link.field_dst[lo..hi] {
                        copy_field(&mut st.sim.fields, set, src as usize, dst as usize);
                    }
                }
                continue;
            }
            let back = self.ranks[peer]
                .plan
                .links
                .iter()
                .position(|l| l.rank == rank)
                .expect("links are symmetric");
            // receive: the peer's canonical values land in our images
            let (a, b) = split_two(&mut self.ranks, rank, peer);
            let link = &a.plan.links[li];
            let src_link = &b.plan.links[back];
            debug_assert_eq!(
                link.field_dst_off.len().saturating_sub(1),
                src_link.field_src.len()
            );
            for (k, &src) in src_link.field_src.iter().enumerate() {
                let lo = link.field_dst_off[k] as usize;
                let hi = link.field_dst_off[k + 1] as usize;
                for &dst in &link.field_dst[lo..hi] {
                    copy_field_across(
                        &b.sim.fields,
                        &mut a.sim.fields,
                        set,
                        src as usize,
                        dst as usize,
                    );
                }
            }
        }
    }

    /// Reassemble the global single-domain state: owned field cells by
    /// global id, particles by their global load index. Bit-identical to
    /// the sort-disabled single-rank run (module docs).
    pub fn gather(&self) -> Simulation {
        let mut out = Simulation::new(self.global_grid.clone());
        out.strategy = self.ranks[0].sim.strategy;
        out.laser = self.laser.clone();
        out.set_step_count(self.step);
        for st in &self.ranks {
            let (lx, ly, lz) = st.plan.extent;
            for z in 1..=lz {
                for y in 1..=ly {
                    for x in 1..=lx {
                        let lv = st.sim.grid.voxel(x, y, z);
                        let gv = st.plan.local_to_global[lv] as usize;
                        let (f, gf) = (&st.sim.fields, &mut out.fields);
                        gf.ex[gv] = f.ex[lv];
                        gf.ey[gv] = f.ey[lv];
                        gf.ez[gv] = f.ez[lv];
                        gf.bx[gv] = f.bx[lv];
                        gf.by[gv] = f.by[lv];
                        gf.bz[gv] = f.bz[lv];
                        gf.jx[gv] = f.jx[lv];
                        gf.jy[gv] = f.jy[lv];
                        gf.jz[gv] = f.jz[lv];
                    }
                }
            }
        }
        for si in 0..self.ranks[0].sim.species.len() {
            let tmpl = &self.ranks[0].sim.species[si];
            let total: usize = self.ranks.iter().map(|st| st.sim.species[si].len()).sum();
            let mut s = vpic_core::Species::new(tmpl.name.clone(), tmpl.q, tmpl.m);
            s.dx = vec![0.0; total];
            s.dy = vec![0.0; total];
            s.dz = vec![0.0; total];
            s.cell = vec![0; total];
            s.ux = vec![0.0; total];
            s.uy = vec![0.0; total];
            s.uz = vec![0.0; total];
            s.w = vec![0.0; total];
            let mut seen = 0usize;
            for st in &self.ranks {
                let rs = &st.sim.species[si];
                for p in 0..rs.len() {
                    let id = st.ids[si][p] as usize;
                    debug_assert!(id < total, "load index out of range");
                    s.dx[id] = rs.dx[p];
                    s.dy[id] = rs.dy[p];
                    s.dz[id] = rs.dz[p];
                    s.cell[id] = st.plan.local_to_global[rs.cell[p] as usize];
                    s.ux[id] = rs.ux[p];
                    s.uy[id] = rs.uy[p];
                    s.uz[id] = rs.uz[p];
                    s.w[id] = rs.w[p];
                    seen += 1;
                }
            }
            debug_assert_eq!(seen, total, "particles conserved");
            out.add_species(s);
        }
        out
    }

    /// Serialize the whole cluster — decomposition metadata, every
    /// per-rank simulation, and the particle identity maps — into the
    /// `ckpt` container. Migration buffers are between-step-empty derived
    /// state and are not carried.
    pub fn checkpoint_bytes(&mut self) -> Vec<u8> {
        let mut w = Writer::new();
        {
            let m = w.section("cluster.meta");
            m.put_u64(self.step);
            m.put_usize(self.global_grid.nx);
            m.put_usize(self.global_grid.ny);
            m.put_usize(self.global_grid.nz);
            m.put_usize(self.ranks.len());
            m.put_f64(self.network.latency);
            m.put_f64(self.network.bandwidth);
            m.put_bool(self.network.gpu_aware);
            m.put_f64(self.network.staging_bw);
            m.put_bool(self.laser.is_some());
            if let Some(l) = &self.laser {
                m.put_usize(l.plane);
                m.put_f32(l.amplitude);
                m.put_f32(l.omega);
            }
        }
        for (r, st) in self.ranks.iter_mut().enumerate() {
            w.section(&format!("rank{r}.sim")).put_raw(&st.sim.checkpoint_bytes());
            let ids = w.section(&format!("rank{r}.ids"));
            ids.put_usize(st.ids.len());
            for species_ids in &st.ids {
                ids.put_usize(species_ids.len());
                for &id in species_ids {
                    ids.put_u64(id);
                }
            }
        }
        w.to_bytes()
    }

    /// Restore a cluster checkpointed by
    /// [`MultiRankSim::checkpoint_bytes`]. Exchange plans and migration
    /// buffers are derived state, rebuilt from the decomposition.
    pub fn restore_bytes(bytes: &[u8]) -> Result<Self, RestoreError> {
        let snap = Snapshot::from_bytes(bytes)?;
        let mut m = snap.section("cluster.meta")?;
        let step = m.get_u64()?;
        let nx = m.get_usize()?;
        let ny = m.get_usize()?;
        let nz = m.get_usize()?;
        let nranks = m.get_usize()?;
        let network = NetworkModel {
            latency: m.get_f64()?,
            bandwidth: m.get_f64()?,
            gpu_aware: m.get_bool()?,
            staging_bw: m.get_f64()?,
        };
        let laser = if m.get_bool()? {
            Some(LaserDriver {
                plane: m.get_usize()?,
                amplitude: m.get_f32()?,
                omega: m.get_f32()?,
            })
        } else {
            None
        };
        m.finish()?;
        let global = Grid::new(nx, ny, nz);
        let decomp = Decomposition::new((nx, ny, nz), nranks);
        let plans = build_plans(&decomp, &global);
        let mut ranks = Vec::with_capacity(nranks);
        for (r, plan) in plans.into_iter().enumerate() {
            let mut sim_sec = snap.section(&format!("rank{r}.sim"))?;
            let sim = Simulation::restore_bytes(sim_sec.take_rest())?;
            sim_sec.finish()?;
            let mut ids_sec = snap.section(&format!("rank{r}.ids"))?;
            let nspecies = ids_sec.get_usize()?;
            let mut ids = Vec::with_capacity(nspecies);
            for _ in 0..nspecies {
                let len = ids_sec.get_usize()?;
                let mut v = Vec::with_capacity(len);
                for _ in 0..len {
                    v.push(ids_sec.get_u64()?);
                }
                ids.push(v);
            }
            ids_sec.finish()?;
            let shared = plan.shared.len();
            ranks.push(RankState {
                sim,
                plan,
                ids,
                partials: vec![[0i64; SLOTS]; shared],
                totals: vec![[0i64; SLOTS]; shared],
                drain_idx: Vec::new(),
                drain_rec: Vec::new(),
            });
        }
        let incoming = vec![Vec::new(); nranks];
        Ok(Self {
            decomp,
            network,
            global_grid: global,
            laser,
            ranks,
            step,
            mig_buffers: BTreeMap::new(),
            incoming,
            timing: RunTiming::default(),
            gpu: None,
        })
    }
}

/// Which component triple a halo fill moves.
#[derive(Debug, Clone, Copy)]
enum FieldSet {
    E,
    B,
}

fn copy_field(f: &mut vpic_core::FieldArray, set: FieldSet, src: usize, dst: usize) {
    match set {
        FieldSet::E => {
            f.ex[dst] = f.ex[src];
            f.ey[dst] = f.ey[src];
            f.ez[dst] = f.ez[src];
        }
        FieldSet::B => {
            f.bx[dst] = f.bx[src];
            f.by[dst] = f.by[src];
            f.bz[dst] = f.bz[src];
        }
    }
}

fn copy_field_across(
    src_f: &vpic_core::FieldArray,
    dst_f: &mut vpic_core::FieldArray,
    set: FieldSet,
    src: usize,
    dst: usize,
) {
    match set {
        FieldSet::E => {
            dst_f.ex[dst] = src_f.ex[src];
            dst_f.ey[dst] = src_f.ey[src];
            dst_f.ez[dst] = src_f.ez[src];
        }
        FieldSet::B => {
            dst_f.bx[dst] = src_f.bx[src];
            dst_f.by[dst] = src_f.by[src];
            dst_f.bz[dst] = src_f.bz[src];
        }
    }
}

/// Disjoint mutable references to two distinct ranks.
fn split_two(ranks: &mut [RankState], a: usize, b: usize) -> (&mut RankState, &mut RankState) {
    debug_assert_ne!(a, b);
    if a < b {
        let (lo, hi) = ranks.split_at_mut(b);
        (&mut lo[a], &mut hi[0])
    } else {
        let (lo, hi) = ranks.split_at_mut(a);
        (&mut hi[0], &mut lo[b])
    }
}

/// Stable removal of ascending `indices` from `v`.
fn remove_sorted_indices(v: &mut Vec<u64>, indices: &[usize]) {
    if indices.is_empty() {
        return;
    }
    let mut write = indices[0];
    let mut next = 0usize;
    for read in indices[0]..v.len() {
        if next < indices.len() && indices[next] == read {
            next += 1;
            continue;
        }
        v[write] = v[read];
        write += 1;
    }
    v.truncate(write);
}

/// Build every rank's geometry and exchange plan. Two ranks exchange iff
/// their local arrays (owned block + one-cell halo shell) intersect in
/// global space; the pair's overlap list is enumerated in ascending
/// global-cell order on both sides, so buffer position identifies the
/// cell without shipping indices.
fn build_plans(decomp: &Decomposition, global: &Grid) -> Vec<RankPlan> {
    let nranks = decomp.ranks();
    // per-rank: global cell → local images, plus local_to_global
    let mut maps: Vec<BTreeMap<u32, Vec<u32>>> = Vec::with_capacity(nranks);
    let mut plans: Vec<RankPlan> = Vec::with_capacity(nranks);
    for r in 0..nranks {
        let origin = decomp.local_origin(r);
        let extent = decomp.local_extent(r);
        let (lx, ly, lz) = extent;
        let local = Grid::new(lx + 2, ly + 2, lz + 2);
        let mut l2g = vec![0u32; local.cells()];
        let mut map: BTreeMap<u32, Vec<u32>> = BTreeMap::new();
        let mut route = vec![Route::Owned; local.cells()];
        for lv in 0..local.cells() {
            let (x, y, z) = local.coords(lv);
            let gx = (origin.0 + x + global.nx - 1) % global.nx;
            let gy = (origin.1 + y + global.ny - 1) % global.ny;
            let gz = (origin.2 + z + global.nz - 1) % global.nz;
            let g = global.voxel(gx, gy, gz) as u32;
            l2g[lv] = g;
            map.entry(g).or_default().push(lv as u32);
            let halo = x == 0 || x == lx + 1 || y == 0 || y == ly + 1 || z == 0 || z == lz + 1;
            if halo {
                let owner = decomp.owner(gx, gy, gz);
                route[lv] = if owner == r {
                    let cx = (gx - origin.0 + 1) as u32;
                    let cy = (gy - origin.1 + 1) as u32;
                    let cz = (gz - origin.2 + 1) as u32;
                    Route::Remap(local.voxel(cx as usize, cy as usize, cz as usize) as u32)
                } else {
                    Route::Remote(owner as u32)
                };
            }
        }
        maps.push(map);
        plans.push(RankPlan {
            origin,
            extent,
            local_to_global: l2g,
            route,
            shared: Vec::new(),
            links: Vec::new(),
        });
    }
    // shared cells: multiplicity > 1 locally, or present in another rank
    let mut shared_keys: Vec<BTreeSet<u32>> = maps
        .iter()
        .map(|m| m.iter().filter(|(_, v)| v.len() > 1).map(|(&k, _)| k).collect())
        .collect();
    let mut pair_overlap: BTreeMap<(usize, usize), Vec<u32>> = BTreeMap::new();
    for r in 0..nranks {
        for n in (r + 1)..nranks {
            let (small, large) = if maps[r].len() <= maps[n].len() { (r, n) } else { (n, r) };
            let inter: Vec<u32> = maps[small]
                .keys()
                .filter(|k| maps[large].contains_key(k))
                .copied()
                .collect();
            if inter.is_empty() {
                continue;
            }
            for &g in &inter {
                shared_keys[r].insert(g);
                shared_keys[n].insert(g);
            }
            pair_overlap.insert((r, n), inter);
        }
    }
    // materialize shared tables and position lookups
    let mut shared_pos: Vec<BTreeMap<u32, u32>> = Vec::with_capacity(nranks);
    for r in 0..nranks {
        let mut table = Vec::with_capacity(shared_keys[r].len());
        let mut pos = BTreeMap::new();
        for (i, &g) in shared_keys[r].iter().enumerate() {
            table.push((g, maps[r][&g].clone()));
            pos.insert(g, i as u32);
        }
        plans[r].shared = table;
        shared_pos.push(pos);
    }
    // links: remote pairs, then the periodic self-copy link
    let owner_of = |g: u32| {
        let (gx, gy, gz) = global.coords(g as usize);
        decomp.owner(gx, gy, gz)
    };
    let canonical_of = |r: usize, g: u32| {
        let (gx, gy, gz) = global.coords(g as usize);
        let o = decomp.local_origin(r);
        let (lx, ly, lz) = decomp.local_extent(r);
        let local = Grid::new(lx + 2, ly + 2, lz + 2);
        local.voxel(gx - o.0 + 1, gy - o.1 + 1, gz - o.2 + 1) as u32
    };
    for (&(r, n), overlap) in &pair_overlap {
        let mk = |me: usize, other: usize| -> Link {
            let mut link = Link {
                rank: other,
                acc_pos: Vec::with_capacity(overlap.len()),
                field_src: Vec::new(),
                field_dst: Vec::new(),
                field_dst_off: vec![0],
            };
            for &g in overlap {
                link.acc_pos.push(shared_pos[me][&g]);
                let o = owner_of(g);
                if o == me {
                    link.field_src.push(canonical_of(me, g));
                } else if o == other {
                    for &img in &maps[me][&g] {
                        link.field_dst.push(img);
                    }
                    link.field_dst_off.push(link.field_dst.len() as u32);
                }
            }
            link
        };
        let link_rn = mk(r, n);
        let link_nr = mk(n, r);
        debug_assert_eq!(link_rn.field_src.len(), link_nr.field_dst_off.len() - 1);
        debug_assert_eq!(link_nr.field_src.len(), link_rn.field_dst_off.len() - 1);
        plans[r].links.push(link_rn);
        plans[n].links.push(link_nr);
    }
    // the loop body indexes several parallel per-rank arrays
    #[allow(clippy::needless_range_loop)]
    for r in 0..nranks {
        plans[r].links.sort_by_key(|l| l.rank);
        // periodic self-copies: a cell this rank owns that also appears
        // as halo images of itself (single-rank axes)
        let mut link = Link {
            rank: r,
            acc_pos: Vec::new(),
            field_src: Vec::new(),
            field_dst: Vec::new(),
            field_dst_off: vec![0],
        };
        for (g, images) in &plans[r].shared {
            if owner_of(*g) != r || images.len() < 2 {
                continue;
            }
            let canon = canonical_of(r, *g);
            link.field_src.push(canon);
            for &img in images {
                if img != canon {
                    link.field_dst.push(img);
                }
            }
            link.field_dst_off.push(link.field_dst.len() as u32);
        }
        if !link.field_src.is_empty() {
            plans[r].links.push(link);
        }
    }
    plans
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::systems;
    use vpic_core::Deck;

    fn net() -> NetworkModel {
        systems::selene().network
    }

    fn assert_state_eq(a: &Simulation, b: &Simulation, what: &str) {
        for (name, x, y) in [
            ("ex", &a.fields.ex, &b.fields.ex),
            ("ey", &a.fields.ey, &b.fields.ey),
            ("ez", &a.fields.ez, &b.fields.ez),
            ("bx", &a.fields.bx, &b.fields.bx),
            ("by", &a.fields.by, &b.fields.by),
            ("bz", &a.fields.bz, &b.fields.bz),
            ("jx", &a.fields.jx, &b.fields.jx),
            ("jy", &a.fields.jy, &b.fields.jy),
            ("jz", &a.fields.jz, &b.fields.jz),
        ] {
            for v in 0..x.len() {
                assert_eq!(x[v].to_bits(), y[v].to_bits(), "{what}: {name}[{v}]");
            }
        }
        assert_eq!(a.species.len(), b.species.len(), "{what}: species count");
        for (si, (sa, sb)) in a.species.iter().zip(&b.species).enumerate() {
            assert_eq!(sa.cell, sb.cell, "{what}: species {si} cells");
            for p in 0..sa.len() {
                for (f, xa, xb) in [
                    ("dx", sa.dx[p], sb.dx[p]),
                    ("dy", sa.dy[p], sb.dy[p]),
                    ("dz", sa.dz[p], sb.dz[p]),
                    ("ux", sa.ux[p], sb.ux[p]),
                    ("uy", sa.uy[p], sb.uy[p]),
                    ("uz", sa.uz[p], sb.uz[p]),
                    ("w", sa.w[p], sb.w[p]),
                ] {
                    assert_eq!(
                        xa.to_bits(),
                        xb.to_bits(),
                        "{what}: species {si} {f}[{p}]"
                    );
                }
            }
        }
        let (ea, eb) = (a.energies(), b.energies());
        assert_eq!(ea.field_e.to_bits(), eb.field_e.to_bits(), "{what}: field_e");
        assert_eq!(ea.field_b.to_bits(), eb.field_b.to_bits(), "{what}: field_b");
        for (k, (ka, kb)) in ea.kinetic.iter().zip(&eb.kinetic).enumerate() {
            assert_eq!(ka.to_bits(), kb.to_bits(), "{what}: kinetic[{k}]");
        }
    }

    #[test]
    fn gather_of_fresh_partition_is_identity() {
        let reference = Deck::weibel(8, 8, 8, 4, 0.3).build();
        for ranks in [1, 2, 4, 8] {
            let mr = MultiRankSim::new(&reference, ranks, net());
            assert_state_eq(&mr.gather(), &reference, &format!("{ranks} ranks, step 0"));
        }
    }

    #[test]
    fn weibel_bit_identical_across_rank_counts() {
        let mut reference = Deck::weibel(8, 8, 8, 4, 0.3).build();
        let mut clusters: Vec<MultiRankSim> =
            [1, 2, 4, 8].iter().map(|&n| MultiRankSim::new(&reference, n, net())).collect();
        for step in 1..=6 {
            reference.step();
            for mr in &mut clusters {
                mr.step();
                assert_state_eq(
                    &mr.gather(),
                    &reference,
                    &format!("{} ranks, step {step}", mr.ranks()),
                );
            }
        }
    }

    #[test]
    fn laser_deck_bit_identical_across_ranks() {
        // exercises the plane-antenna drive through the decomposed path
        let mut reference = Deck::lpi(8, 4, 4, 4).build();
        let mut mr = MultiRankSim::new(&reference, 4, net());
        for _ in 0..5 {
            reference.step();
            mr.step();
        }
        assert_state_eq(&mr.gather(), &reference, "lpi 4 ranks");
    }

    #[test]
    fn per_rank_scheduled_sort_fires_and_keeps_gather_bit_identical() {
        let reference = Deck::weibel(8, 8, 8, 2, 0.3).build();
        let mut plain = MultiRankSim::new(&reference, 4, net());
        let mut sorted = MultiRankSim::new(&reference, 4, net());
        let strided = tuner::Config {
            order: Some(psort::SortOrder::Strided),
            interval: 1,
            strategy: vsimd::Strategy::Auto,
            scatter: pk::atomic::ScatterMode::Duplicated,
            tile: None,
        };
        for r in 0..4 {
            sorted.set_rank_config(r, &strided);
        }
        let model = GpuModel::scaled(memsim::platform::by_name("V100").unwrap(), 6.0);
        plain.set_gpu_model(model.clone());
        sorted.set_gpu_model(model);
        for step in 1..=3 {
            let (_, _, tp) = plain.step();
            let (_, _, ts) = sorted.step();
            // the per-rank config reaches the cost model: duplicated
            // deposition drops the atomic-replay floor, and the sorted
            // in-cache gather stream is far cheaper than the unsorted
            // atomic default on this tiny grid
            assert!(
                ts.gpu_compute_s < tp.gpu_compute_s,
                "step {step}: sorted+duplicated {} !< plain atomic {}",
                ts.gpu_compute_s,
                tp.gpu_compute_s
            );
            // the scheduled per-rank sort actually reorders the streams…
            let moved = (0..4).any(|r| {
                sorted.ranks[r].sim.species.iter().zip(&plain.ranks[r].sim.species).any(
                    |(ss, ps)| ss.cell != ps.cell,
                )
            });
            assert!(moved, "step {step}: strided sort left every rank untouched");
            // …while the id maps follow the permutation, so the gathered
            // canonical-order state stays bit-identical
            assert_state_eq(
                &plain.gather(),
                &sorted.gather(),
                &format!("sorted step {step}"),
            );
        }
    }

    #[test]
    fn gpu_model_charges_timing_without_touching_physics() {
        let reference = Deck::weibel(8, 8, 8, 2, 0.3).build();
        let mut plain = MultiRankSim::new(&reference, 4, net());
        let mut armed = MultiRankSim::new(&reference, 4, net());
        armed.set_gpu_model(GpuModel::scaled(
            memsim::platform::by_name("V100").unwrap(),
            6.0,
        ));
        assert!(armed.gpu_model().is_some());
        assert!(plain.gpu_model().is_none());
        for step in 1..=3 {
            let (_, _, tp) = plain.step();
            let (_, _, ta) = armed.step();
            // unarmed runs report zero GPU time; armed runs a real cost
            assert_eq!(tp.gpu_compute_s, 0.0);
            assert_eq!(tp.gpu_step_s, 0.0);
            assert!(ta.gpu_compute_s > 0.0, "step {step}");
            assert!(ta.gpu_step_s >= ta.gpu_compute_s);
            assert_state_eq(&plain.gather(), &armed.gather(), &format!("step {step}"));
        }
        assert!(armed.timing().gpu_step_s > 0.0);
        assert_eq!(plain.timing().gpu_step_s, 0.0);
    }

    #[test]
    fn migration_stats_aggregate_across_species() {
        let mut reference = Deck::weibel(8, 8, 8, 4, 0.3).build();
        let mut mr = MultiRankSim::new(&reference, 8, net());
        let mut any = false;
        for _ in 0..6 {
            reference.step();
            let (_, m, _) = mr.step();
            assert!(m.max_out_of_rank <= m.migrants, "peak cannot exceed total");
            assert_eq!(m.total, reference.particle_count());
            if m.migrants > 0 {
                any = true;
                // the per-rank peak must bound migrants / ranks (pigeonhole
                // over the *summed* species counts)
                assert!(m.max_out_of_rank * mr.ranks() >= m.migrants);
            }
        }
        assert!(any, "a 0.3c beam deck must migrate particles");
    }

    #[test]
    fn single_rank_charges_no_network_time() {
        let reference = Deck::weibel(8, 8, 8, 2, 0.3).build();
        let mut mr = MultiRankSim::new(&reference, 1, net());
        for _ in 0..3 {
            let (_, m, t) = mr.step();
            assert_eq!(m.migrants, 0, "periodic self-crossings are remaps, not migrants");
            assert_eq!(t.modeled_exchange_s, 0.0);
            assert_eq!(t.exposed_exchange_s, 0.0);
        }
    }

    #[test]
    fn exchange_counters_and_span_recorded() {
        let msgs0 = telemetry::counter("cluster.messages");
        let halo0 = telemetry::counter("cluster.halo_bytes");
        telemetry::set_enabled(true);
        let reference = Deck::weibel(8, 8, 8, 2, 0.3).build();
        let mut mr = MultiRankSim::new(&reference, 8, net());
        mr.step();
        telemetry::set_enabled(false);
        assert!(telemetry::counter("cluster.messages") > msgs0, "directed messages recorded");
        assert!(telemetry::counter("cluster.halo_bytes") > halo0, "halo payload recorded");
    }

    #[test]
    fn overlap_hides_exchange_on_weibel() {
        let reference = Deck::weibel(16, 16, 16, 4, 0.3).build();
        let mut mr = MultiRankSim::new(&reference, 8, net());
        mr.run(5);
        let t = mr.timing();
        assert!(t.modeled_exchange_s > 0.0, "8 ranks must exchange");
        assert!(
            t.hidden_fraction() >= 0.5,
            "interior compute must hide ≥50% of modeled exchange: {}",
            t.hidden_fraction()
        );
    }

    #[test]
    fn heterogeneous_rank_configs_stay_bit_identical() {
        use pk::atomic::ScatterMode;
        use vsimd::Strategy;
        let mut reference = Deck::weibel(8, 8, 8, 4, 0.3).build();
        let mut mr = MultiRankSim::new(&reference, 4, net());
        // every rank picks a different (strategy, scatter) pair — the
        // heterogeneous-system configuration the paper targets
        let picks = [
            (Strategy::Manual, ScatterMode::Duplicated),
            (Strategy::AdHoc, ScatterMode::Atomic),
            (Strategy::Guided, ScatterMode::Duplicated),
            (Strategy::Auto, ScatterMode::Atomic),
        ];
        for (r, &(strategy, scatter)) in picks.iter().enumerate() {
            mr.set_rank_config(r, &tuner::Config::unsorted(strategy, scatter));
        }
        for step in 1..=6 {
            reference.step();
            mr.step();
            assert_state_eq(
                &mr.gather(),
                &reference,
                &format!("heterogeneous configs, step {step}"),
            );
        }
    }

    #[test]
    fn per_rank_tuners_explore_without_perturbing_physics() {
        use pk::atomic::ScatterMode;
        use tuner::{Config, Tuner};
        use vpic_core::TuneDriver;
        use vsimd::Strategy;
        let mut reference = Deck::weibel(8, 8, 8, 4, 0.3).build();
        let mut mr = MultiRankSim::new(&reference, 2, net());
        // different arm sets per rank, 2-step epochs: both ranks swap
        // configurations mid-run on their own schedules
        mr.set_rank_tuner(
            0,
            TuneDriver::new(Tuner::new(
                vec![
                    Config::unsorted(Strategy::Manual, ScatterMode::Duplicated),
                    Config::unsorted(Strategy::AdHoc, ScatterMode::Atomic),
                ],
                2,
            )),
        );
        mr.set_rank_tuner(
            1,
            TuneDriver::new(Tuner::new(
                vec![
                    Config::unsorted(Strategy::Guided, ScatterMode::Atomic),
                    Config::unsorted(Strategy::Auto, ScatterMode::Duplicated),
                ],
                2,
            )),
        );
        for step in 1..=8 {
            reference.step();
            mr.step();
            assert_state_eq(&mr.gather(), &reference, &format!("per-rank tuners, step {step}"));
        }
        for r in 0..2 {
            let d = mr.rank_tuner(r).expect("driver still armed");
            assert!(d.epochs() >= 2, "rank {r} closed {} epochs", d.epochs());
            assert!(!d.schedule().is_empty(), "rank {r} never applied an arm");
        }
    }

    #[test]
    #[should_panic(expected = "untiled ranks")]
    fn tiled_rank_configs_are_rejected() {
        use pk::atomic::ScatterMode;
        use vsimd::Strategy;
        let reference = Deck::weibel(8, 8, 8, 2, 0.3).build();
        let mut mr = MultiRankSim::new(&reference, 2, net());
        let cfg = tuner::Config {
            tile: Some(tuner::TileCfg { tile_cells: 64, compress: true }),
            ..tuner::Config::unsorted(Strategy::Auto, ScatterMode::Atomic)
        };
        mr.set_rank_config(0, &cfg);
    }

    #[test]
    fn checkpoint_restore_resumes_bit_identical() {
        let reference = Deck::weibel(8, 8, 8, 4, 0.3).build();
        let mut a = MultiRankSim::new(&reference, 4, net());
        a.run(3);
        let snap = a.checkpoint_bytes();
        let mut b = MultiRankSim::restore_bytes(&snap).expect("restore");
        assert_eq!(b.step_count(), a.step_count());
        a.run(3);
        b.run(3);
        assert_state_eq(&a.gather(), &b.gather(), "resumed vs uninterrupted");
    }

    #[test]
    fn truncated_checkpoint_is_rejected() {
        let reference = Deck::weibel(8, 8, 8, 2, 0.3).build();
        let mut a = MultiRankSim::new(&reference, 2, net());
        a.run(2);
        let snap = a.checkpoint_bytes();
        let cut = ckpt::faults::truncated(&snap, snap.len() - 7);
        assert!(
            MultiRankSim::restore_bytes(&cut).is_err(),
            "truncation must map to a typed error, never Ok"
        );
    }
}
