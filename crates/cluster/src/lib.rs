//! # cluster — multi-rank scaling: decomposition, exchange, network model
//!
//! The paper's strong-scaling study (Fig 10) runs VPIC 2.0 on up to 512
//! GPUs across Sierra, Selene, and Tuolumne. No cluster exists here, so
//! this crate provides:
//!
//! * [`decompose`] — 3-D Cartesian domain decomposition (rank geometry,
//!   surface/volume bookkeeping), the real arithmetic any MPI run uses;
//! * [`exchange`] — a rank-emulation layer over `vpic-core`: particles
//!   are partitioned by owning subdomain and migration between ranks is
//!   tracked each step, giving *measured* (not assumed) exchange volumes
//!   while preserving single-domain physics exactly;
//! * [`network`] — a latency/bandwidth message-cost model with the
//!   GPU-aware-vs-staged distinction the paper discusses;
//! * [`systems`] — Sierra, Selene, and Tuolumne descriptions;
//! * [`scaling`] — the Fig 10 generator: per-GPU push cost from
//!   `memsim::push` (which supplies the cache-capacity superlinearity)
//!   plus the communication model (which supplies the roll-off);
//! * [`multirank`] — real multi-rank execution: N per-rank simulations
//!   with halo grids, actual field halo exchange and particle migration,
//!   interior/boundary overlap, and modeled network charges — the
//!   executed counterpart the closed-form [`scaling`] curves are checked
//!   against.

pub mod ablation;
pub mod decompose;
pub mod exchange;
pub mod multirank;
pub mod network;
pub mod scaling;
pub mod systems;

pub use decompose::Decomposition;
pub use multirank::{MultiRankSim, RunTiming, StepTiming};
pub use network::NetworkModel;
pub use scaling::{strong_scaling, ScalePoint};
pub use systems::System;
