//! 3-D Cartesian domain decomposition.
//!
//! The same arithmetic an MPI-parallel VPIC performs: factor the rank
//! count into a near-cubic processor grid, give each rank a contiguous
//! block of cells, and know your six face neighbors. Surface cell counts
//! drive the halo-exchange traffic model.

use serde::Serialize;

/// A 3-D block decomposition of a global grid over `ranks()` ranks.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct Decomposition {
    /// Processor grid dimensions `(px, py, pz)`.
    pub dims: (usize, usize, usize),
    /// Global grid extent `(nx, ny, nz)` in cells.
    pub global: (usize, usize, usize),
}

impl Decomposition {
    /// Decompose `global` over `ranks` ranks with a near-cubic processor
    /// grid that minimizes total surface area.
    ///
    /// Among equally-balanced factorizations, one that fits the global
    /// extent (no more ranks than cells along any axis) is preferred, so
    /// decks with 1-cell axes get all their ranks along the long axes
    /// instead of empty blocks. When no factorization fits (e.g. a prime
    /// rank count larger than every axis), the extent-blind near-cubic
    /// choice is kept and the surplus ranks own zero cells — `owner`
    /// never returns such a rank.
    ///
    /// # Panics
    /// Panics if `ranks` is zero or any global extent is zero.
    pub fn new(global: (usize, usize, usize), ranks: usize) -> Self {
        assert!(ranks >= 1, "need at least one rank");
        assert!(global.0 >= 1 && global.1 >= 1 && global.2 >= 1);
        let dims = best_dims_for(global, ranks);
        Self { dims, global }
    }

    /// Total ranks.
    pub fn ranks(&self) -> usize {
        self.dims.0 * self.dims.1 * self.dims.2
    }

    /// Rank coordinates of rank `r` (x-fastest).
    pub fn coords(&self, r: usize) -> (usize, usize, usize) {
        debug_assert!(r < self.ranks());
        let (px, py, _) = self.dims;
        (r % px, (r / px) % py, r / (px * py))
    }

    /// Rank id from coordinates.
    pub fn rank_of(&self, c: (usize, usize, usize)) -> usize {
        let (px, py, _) = self.dims;
        c.0 + px * (c.1 + py * c.2)
    }

    /// Local cell extent of rank `r` (block distribution; remainders go
    /// to the lower-coordinate ranks).
    pub fn local_extent(&self, r: usize) -> (usize, usize, usize) {
        let (cx, cy, cz) = self.coords(r);
        (
            block_len(self.global.0, self.dims.0, cx),
            block_len(self.global.1, self.dims.1, cy),
            block_len(self.global.2, self.dims.2, cz),
        )
    }

    /// Starting global cell coordinate of rank `r`'s block.
    pub fn local_origin(&self, r: usize) -> (usize, usize, usize) {
        let (cx, cy, cz) = self.coords(r);
        (
            block_start(self.global.0, self.dims.0, cx),
            block_start(self.global.1, self.dims.1, cy),
            block_start(self.global.2, self.dims.2, cz),
        )
    }

    /// Owning rank of global cell `(ix, iy, iz)`.
    pub fn owner(&self, ix: usize, iy: usize, iz: usize) -> usize {
        self.rank_of((
            block_index(self.global.0, self.dims.0, ix),
            block_index(self.global.1, self.dims.1, iy),
            block_index(self.global.2, self.dims.2, iz),
        ))
    }

    /// Local cell count of rank `r`.
    pub fn local_cells(&self, r: usize) -> usize {
        let (x, y, z) = self.local_extent(r);
        x * y * z
    }

    /// Surface cell count of rank `r` (cells with a face on the block
    /// boundary, counted per *remote* face: the halo-exchange volume).
    ///
    /// Faces along an axis with a single rank are periodic
    /// self-neighbors — their halo is filled from the rank's own block
    /// without any network traffic — so they are excluded here; a single
    /// rank therefore has zero surface, matching its zero exchange cost.
    pub fn surface_cells(&self, r: usize) -> usize {
        let (x, y, z) = self.local_extent(r);
        if x * y * z == 0 {
            return 0; // empty rank (more ranks than cells on an axis)
        }
        let (px, py, pz) = self.dims;
        let fx = if px > 1 { 2 * y * z } else { 0 };
        let fy = if py > 1 { 2 * x * z } else { 0 };
        let fz = if pz > 1 { 2 * x * y } else { 0 };
        fx + fy + fz
    }

    /// Number of the six faces of `r` whose neighbor is a *different*
    /// rank — the per-step message count the network model should charge.
    /// Consistent with [`Decomposition::surface_cells`]: both exclude
    /// periodic self-neighbor faces.
    pub fn remote_faces(&self, r: usize) -> usize {
        self.face_neighbors(r).iter().filter(|&&n| n != r).count()
    }

    /// The six periodic face-neighbor ranks of `r`
    /// (−x, +x, −y, +y, −z, +z). With one rank along an axis, both
    /// neighbors are `r` itself.
    pub fn face_neighbors(&self, r: usize) -> [usize; 6] {
        let (cx, cy, cz) = self.coords(r);
        let (px, py, pz) = self.dims;
        let wrap = |c: usize, d: isize, n: usize| -> usize {
            (((c as isize + d) % n as isize + n as isize) % n as isize) as usize
        };
        [
            self.rank_of((wrap(cx, -1, px), cy, cz)),
            self.rank_of((wrap(cx, 1, px), cy, cz)),
            self.rank_of((cx, wrap(cy, -1, py), cz)),
            self.rank_of((cx, wrap(cy, 1, py), cz)),
            self.rank_of((cx, cy, wrap(cz, -1, pz))),
            self.rank_of((cx, cy, wrap(cz, 1, pz))),
        ]
    }
}

/// [`best_dims`] constrained to the global extent: the best-balanced
/// factorization with no more ranks than cells along any axis, falling
/// back to the unconstrained choice when none fits.
fn best_dims_for(global: (usize, usize, usize), n: usize) -> (usize, usize, usize) {
    let mut best: Option<(usize, usize, usize)> = None;
    let mut best_score = usize::MAX;
    for a in 1..=n {
        if !n.is_multiple_of(a) {
            continue;
        }
        let rem = n / a;
        for b in 1..=rem {
            if !rem.is_multiple_of(b) {
                continue;
            }
            let c = rem / b;
            if a > global.0 || b > global.1 || c > global.2 {
                continue;
            }
            let dims = [a, b, c];
            let score = dims.iter().max().unwrap() - dims.iter().min().unwrap();
            if score < best_score {
                best_score = score;
                best = Some((a, b, c));
            }
        }
    }
    best.unwrap_or_else(|| best_dims(n))
}

/// Near-cubic factorization of `n` minimizing surface-to-volume.
fn best_dims(n: usize) -> (usize, usize, usize) {
    let mut best = (n, 1, 1);
    let mut best_score = usize::MAX;
    for a in 1..=n {
        if !n.is_multiple_of(a) {
            continue;
        }
        let rem = n / a;
        for b in 1..=rem {
            if !rem.is_multiple_of(b) {
                continue;
            }
            let c = rem / b;
            // surface proxy: sum of pairwise products maximized when
            // cubic... we minimize max/min spread
            let dims = [a, b, c];
            let score = dims.iter().max().unwrap() - dims.iter().min().unwrap();
            if score < best_score {
                best_score = score;
                best = (a, b, c);
            }
        }
    }
    best
}

fn block_len(n: usize, parts: usize, idx: usize) -> usize {
    let base = n / parts;
    base + usize::from(idx < n % parts)
}

fn block_start(n: usize, parts: usize, idx: usize) -> usize {
    let base = n / parts;
    let rem = n % parts;
    idx * base + idx.min(rem)
}

fn block_index(n: usize, parts: usize, coord: usize) -> usize {
    debug_assert!(coord < n);
    // inverse of block_start/block_len; parts ≥ 1 so base and rem cannot
    // both be zero when coord < n
    let base = n / parts;
    let rem = n % parts;
    let big = (base + 1) * rem; // cells covered by the larger blocks
    if coord < big {
        coord / (base + 1)
    } else {
        // base == 0 implies big == n > coord, so this branch has base ≥ 1
        rem + (coord - big).checked_div(base).unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn best_dims_are_balanced() {
        assert_eq!(best_dims(1), (1, 1, 1));
        assert_eq!(best_dims(8), (2, 2, 2));
        assert_eq!(best_dims(64), (4, 4, 4));
        let (a, b, c) = best_dims(512);
        assert_eq!(a * b * c, 512);
        assert_eq!((a, b, c), (8, 8, 8));
        let (a, b, c) = best_dims(12);
        assert_eq!(a * b * c, 12);
        assert!(a.max(b).max(c) <= 4);
    }

    #[test]
    fn blocks_cover_domain_exactly() {
        let d = Decomposition::new((37, 23, 11), 12);
        let mut owned = vec![0u32; 37 * 23 * 11];
        for r in 0..d.ranks() {
            let (ox, oy, oz) = d.local_origin(r);
            let (lx, ly, lz) = d.local_extent(r);
            for z in oz..oz + lz {
                for y in oy..oy + ly {
                    for x in ox..ox + lx {
                        owned[x + 37 * (y + 23 * z)] += 1;
                        assert_eq!(d.owner(x, y, z), r, "owner mismatch at ({x},{y},{z})");
                    }
                }
            }
        }
        assert!(owned.iter().all(|&c| c == 1), "every cell owned exactly once");
    }

    #[test]
    fn local_cells_sum_to_global() {
        for ranks in [1, 2, 7, 8, 64, 100] {
            let d = Decomposition::new((50, 40, 30), ranks);
            let total: usize = (0..d.ranks()).map(|r| d.local_cells(r)).sum();
            assert_eq!(total, 50 * 40 * 30, "ranks={ranks}");
        }
    }

    #[test]
    fn face_neighbors_are_symmetric() {
        let d = Decomposition::new((32, 32, 32), 8);
        for r in 0..8 {
            let n = d.face_neighbors(r);
            // -x neighbor's +x neighbor is r
            assert_eq!(d.face_neighbors(n[0])[1], r);
            assert_eq!(d.face_neighbors(n[2])[3], r);
            assert_eq!(d.face_neighbors(n[4])[5], r);
        }
    }

    #[test]
    fn single_rank_is_its_own_neighbor() {
        let d = Decomposition::new((8, 8, 8), 1);
        assert_eq!(d.face_neighbors(0), [0; 6]);
        assert_eq!(d.local_cells(0), 512);
    }

    #[test]
    fn surface_shrinks_slower_than_volume() {
        // strong scaling: volume per rank ∝ 1/n, surface ∝ 1/n^(2/3)
        // (compared between two fully-decomposed rank counts: a single
        // rank has zero surface since all its faces are self-neighbors)
        let g = (128, 128, 128);
        let v8 = Decomposition::new(g, 8);
        let v64 = Decomposition::new(g, 64);
        let vol_ratio = v8.local_cells(0) as f64 / v64.local_cells(0) as f64;
        let surf_ratio = v8.surface_cells(0) as f64 / v64.surface_cells(0) as f64;
        assert!((vol_ratio - 8.0).abs() < 1.0);
        assert!((surf_ratio - 4.0).abs() < 1.0, "surface scales as n^(2/3): {surf_ratio}");
    }

    #[test]
    fn single_rank_has_no_remote_surface() {
        let d = Decomposition::new((8, 8, 8), 1);
        assert_eq!(d.surface_cells(0), 0, "all six faces are self-neighbors");
        assert_eq!(d.remote_faces(0), 0);
    }

    #[test]
    fn one_cell_axes_get_no_ranks_and_no_self_faces() {
        // a pancake deck: ranks must land on the extended axes only
        let d = Decomposition::new((1, 8, 8), 4);
        assert_eq!(d.dims, (1, 2, 2), "ranks avoid the 1-cell axis");
        for r in 0..4 {
            let (x, y, z) = d.local_extent(r);
            assert_eq!((x, y, z), (1, 4, 4));
            // x faces are periodic self-neighbors: excluded from surface
            assert_eq!(d.surface_cells(r), 2 * x * z + 2 * x * y);
            assert_eq!(d.remote_faces(r), 4);
            let n = d.face_neighbors(r);
            assert_eq!(n[0], r, "1-rank axis: -x neighbor is self");
            assert_eq!(n[1], r, "1-rank axis: +x neighbor is self");
        }
        // a needle deck: every rank along the single long axis
        let d = Decomposition::new((1, 1, 16), 4);
        assert_eq!(d.dims, (1, 1, 4));
        assert_eq!(d.local_extent(0), (1, 1, 4));
        assert_eq!(d.surface_cells(0), 2, "only the two z faces are remote");
        assert_eq!(d.remote_faces(0), 2);
        // owner stays in range and matches the block layout on 1-cell axes
        for z in 0..16 {
            assert_eq!(d.owner(0, 0, z), z / 4);
        }
    }

    #[test]
    fn ranks_beyond_cells_leave_empty_ranks_unowned() {
        // 7 ranks over 4 cells along z: no factorization fits, so the
        // extent-blind fallback keeps (1,1,7) and three ranks are empty
        let d = Decomposition::new((4, 4, 4), 7);
        assert_eq!(d.dims, (1, 1, 7));
        for r in 4..7 {
            assert_eq!(d.local_cells(r), 0, "rank {r} owns nothing");
            assert_eq!(d.surface_cells(r), 0, "empty rank exchanges nothing");
        }
        // owner never returns an empty rank
        for z in 0..4 {
            for y in 0..4 {
                for x in 0..4 {
                    let o = d.owner(x, y, z);
                    assert!(d.local_cells(o) > 0, "cell ({x},{y},{z}) → empty rank {o}");
                }
            }
        }
    }

    #[test]
    fn block_index_inverts_block_start() {
        for (n, parts) in [(10, 3), (37, 5), (8, 8), (100, 7)] {
            for idx in 0..parts {
                let start = block_start(n, parts, idx);
                let len = block_len(n, parts, idx);
                for c in start..start + len {
                    assert_eq!(block_index(n, parts, c), idx, "n={n} parts={parts} c={c}");
                }
            }
        }
    }
}
