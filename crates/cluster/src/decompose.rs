//! 3-D Cartesian domain decomposition.
//!
//! The same arithmetic an MPI-parallel VPIC performs: factor the rank
//! count into a near-cubic processor grid, give each rank a contiguous
//! block of cells, and know your six face neighbors. Surface cell counts
//! drive the halo-exchange traffic model.

use serde::Serialize;

/// A 3-D block decomposition of a global grid over `ranks()` ranks.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct Decomposition {
    /// Processor grid dimensions `(px, py, pz)`.
    pub dims: (usize, usize, usize),
    /// Global grid extent `(nx, ny, nz)` in cells.
    pub global: (usize, usize, usize),
}

impl Decomposition {
    /// Decompose `global` over `ranks` ranks with a near-cubic processor
    /// grid that minimizes total surface area.
    ///
    /// # Panics
    /// Panics if `ranks` is zero or any global extent is zero.
    pub fn new(global: (usize, usize, usize), ranks: usize) -> Self {
        assert!(ranks >= 1, "need at least one rank");
        assert!(global.0 >= 1 && global.1 >= 1 && global.2 >= 1);
        let dims = best_dims(ranks);
        Self { dims, global }
    }

    /// Total ranks.
    pub fn ranks(&self) -> usize {
        self.dims.0 * self.dims.1 * self.dims.2
    }

    /// Rank coordinates of rank `r` (x-fastest).
    pub fn coords(&self, r: usize) -> (usize, usize, usize) {
        debug_assert!(r < self.ranks());
        let (px, py, _) = self.dims;
        (r % px, (r / px) % py, r / (px * py))
    }

    /// Rank id from coordinates.
    pub fn rank_of(&self, c: (usize, usize, usize)) -> usize {
        let (px, py, _) = self.dims;
        c.0 + px * (c.1 + py * c.2)
    }

    /// Local cell extent of rank `r` (block distribution; remainders go
    /// to the lower-coordinate ranks).
    pub fn local_extent(&self, r: usize) -> (usize, usize, usize) {
        let (cx, cy, cz) = self.coords(r);
        (
            block_len(self.global.0, self.dims.0, cx),
            block_len(self.global.1, self.dims.1, cy),
            block_len(self.global.2, self.dims.2, cz),
        )
    }

    /// Starting global cell coordinate of rank `r`'s block.
    pub fn local_origin(&self, r: usize) -> (usize, usize, usize) {
        let (cx, cy, cz) = self.coords(r);
        (
            block_start(self.global.0, self.dims.0, cx),
            block_start(self.global.1, self.dims.1, cy),
            block_start(self.global.2, self.dims.2, cz),
        )
    }

    /// Owning rank of global cell `(ix, iy, iz)`.
    pub fn owner(&self, ix: usize, iy: usize, iz: usize) -> usize {
        self.rank_of((
            block_index(self.global.0, self.dims.0, ix),
            block_index(self.global.1, self.dims.1, iy),
            block_index(self.global.2, self.dims.2, iz),
        ))
    }

    /// Local cell count of rank `r`.
    pub fn local_cells(&self, r: usize) -> usize {
        let (x, y, z) = self.local_extent(r);
        x * y * z
    }

    /// Surface cell count of rank `r` (cells with a face on the block
    /// boundary, counted per face: the halo-exchange volume).
    pub fn surface_cells(&self, r: usize) -> usize {
        let (x, y, z) = self.local_extent(r);
        2 * (x * y + y * z + x * z)
    }

    /// The six periodic face-neighbor ranks of `r`
    /// (−x, +x, −y, +y, −z, +z). With one rank along an axis, both
    /// neighbors are `r` itself.
    pub fn face_neighbors(&self, r: usize) -> [usize; 6] {
        let (cx, cy, cz) = self.coords(r);
        let (px, py, pz) = self.dims;
        let wrap = |c: usize, d: isize, n: usize| -> usize {
            (((c as isize + d) % n as isize + n as isize) % n as isize) as usize
        };
        [
            self.rank_of((wrap(cx, -1, px), cy, cz)),
            self.rank_of((wrap(cx, 1, px), cy, cz)),
            self.rank_of((cx, wrap(cy, -1, py), cz)),
            self.rank_of((cx, wrap(cy, 1, py), cz)),
            self.rank_of((cx, cy, wrap(cz, -1, pz))),
            self.rank_of((cx, cy, wrap(cz, 1, pz))),
        ]
    }
}

/// Near-cubic factorization of `n` minimizing surface-to-volume.
fn best_dims(n: usize) -> (usize, usize, usize) {
    let mut best = (n, 1, 1);
    let mut best_score = usize::MAX;
    for a in 1..=n {
        if !n.is_multiple_of(a) {
            continue;
        }
        let rem = n / a;
        for b in 1..=rem {
            if !rem.is_multiple_of(b) {
                continue;
            }
            let c = rem / b;
            // surface proxy: sum of pairwise products maximized when
            // cubic... we minimize max/min spread
            let dims = [a, b, c];
            let score = dims.iter().max().unwrap() - dims.iter().min().unwrap();
            if score < best_score {
                best_score = score;
                best = (a, b, c);
            }
        }
    }
    best
}

fn block_len(n: usize, parts: usize, idx: usize) -> usize {
    let base = n / parts;
    base + usize::from(idx < n % parts)
}

fn block_start(n: usize, parts: usize, idx: usize) -> usize {
    let base = n / parts;
    let rem = n % parts;
    idx * base + idx.min(rem)
}

fn block_index(n: usize, parts: usize, coord: usize) -> usize {
    debug_assert!(coord < n);
    // inverse of block_start/block_len; parts ≥ 1 so base and rem cannot
    // both be zero when coord < n
    let base = n / parts;
    let rem = n % parts;
    let big = (base + 1) * rem; // cells covered by the larger blocks
    if coord < big {
        coord / (base + 1)
    } else {
        // base == 0 implies big == n > coord, so this branch has base ≥ 1
        rem + (coord - big).checked_div(base).unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn best_dims_are_balanced() {
        assert_eq!(best_dims(1), (1, 1, 1));
        assert_eq!(best_dims(8), (2, 2, 2));
        assert_eq!(best_dims(64), (4, 4, 4));
        let (a, b, c) = best_dims(512);
        assert_eq!(a * b * c, 512);
        assert_eq!((a, b, c), (8, 8, 8));
        let (a, b, c) = best_dims(12);
        assert_eq!(a * b * c, 12);
        assert!(a.max(b).max(c) <= 4);
    }

    #[test]
    fn blocks_cover_domain_exactly() {
        let d = Decomposition::new((37, 23, 11), 12);
        let mut owned = vec![0u32; 37 * 23 * 11];
        for r in 0..d.ranks() {
            let (ox, oy, oz) = d.local_origin(r);
            let (lx, ly, lz) = d.local_extent(r);
            for z in oz..oz + lz {
                for y in oy..oy + ly {
                    for x in ox..ox + lx {
                        owned[x + 37 * (y + 23 * z)] += 1;
                        assert_eq!(d.owner(x, y, z), r, "owner mismatch at ({x},{y},{z})");
                    }
                }
            }
        }
        assert!(owned.iter().all(|&c| c == 1), "every cell owned exactly once");
    }

    #[test]
    fn local_cells_sum_to_global() {
        for ranks in [1, 2, 7, 8, 64, 100] {
            let d = Decomposition::new((50, 40, 30), ranks);
            let total: usize = (0..d.ranks()).map(|r| d.local_cells(r)).sum();
            assert_eq!(total, 50 * 40 * 30, "ranks={ranks}");
        }
    }

    #[test]
    fn face_neighbors_are_symmetric() {
        let d = Decomposition::new((32, 32, 32), 8);
        for r in 0..8 {
            let n = d.face_neighbors(r);
            // -x neighbor's +x neighbor is r
            assert_eq!(d.face_neighbors(n[0])[1], r);
            assert_eq!(d.face_neighbors(n[2])[3], r);
            assert_eq!(d.face_neighbors(n[4])[5], r);
        }
    }

    #[test]
    fn single_rank_is_its_own_neighbor() {
        let d = Decomposition::new((8, 8, 8), 1);
        assert_eq!(d.face_neighbors(0), [0; 6]);
        assert_eq!(d.local_cells(0), 512);
    }

    #[test]
    fn surface_shrinks_slower_than_volume() {
        // strong scaling: volume per rank ∝ 1/n, surface ∝ 1/n^(2/3)
        let g = (128, 128, 128);
        let v1 = Decomposition::new(g, 1);
        let v64 = Decomposition::new(g, 64);
        let vol_ratio = v1.local_cells(0) as f64 / v64.local_cells(0) as f64;
        let surf_ratio = v1.surface_cells(0) as f64 / v64.surface_cells(0) as f64;
        assert!((vol_ratio - 64.0).abs() < 1.0);
        assert!((surf_ratio - 16.0).abs() < 1.0, "surface scales as n^(2/3): {surf_ratio}");
    }

    #[test]
    fn block_index_inverts_block_start() {
        for (n, parts) in [(10, 3), (37, 5), (8, 8), (100, 7)] {
            for idx in 0..parts {
                let start = block_start(n, parts, idx);
                let len = block_len(n, parts, idx);
                for c in start..start + len {
                    assert_eq!(block_index(n, parts, c), idx, "n={n} parts={parts} c={c}");
                }
            }
        }
    }
}
