//! The sorting-order selector swept by benchmarks and the repro harness.

use std::fmt;

/// Which order to arrange (key, value) pairs in before a kernel runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SortOrder {
    /// No sorting: a deterministic shuffle (the paper's "random" series in
    /// Fig 7, and what an unsorted particle population looks like).
    Random,
    /// Sort ascending by key — the paper's "standard classification".
    Standard,
    /// Algorithm 1: repeating strictly-increasing subsequences.
    Strided,
    /// Algorithm 2: strided order inside tiles of `tile` distinct keys.
    TiledStrided {
        /// Distinct keys per tile. The paper's rule: CPU thread count, or
        /// 3× the GPU core count.
        tile: usize,
    },
}

impl SortOrder {
    /// The four orders of Fig 7, with the paper's GPU tile rule applied.
    pub fn fig7_set(tile: usize) -> [SortOrder; 4] {
        [
            SortOrder::Random,
            SortOrder::Standard,
            SortOrder::Strided,
            SortOrder::TiledStrided { tile },
        ]
    }

    /// The GPU tuner's sort-order arm axis: never sorting at all, plus
    /// the three sorted orders of Figs 6–8. `None` is a real arm (on
    /// GPUs an unsorted population can win when the grid fits the LLC
    /// anyway and sorting is pure overhead), which is why this returns
    /// `Option`s unlike [`SortOrder::fig7_set`].
    pub fn gpu_arm_set(tile: usize) -> [Option<SortOrder>; 4] {
        [
            None,
            Some(SortOrder::Standard),
            Some(SortOrder::Strided),
            Some(SortOrder::TiledStrided { tile }),
        ]
    }

    /// The three sorted orders of Figs 5/6 (random excluded).
    pub fn sorted_set(tile: usize) -> [SortOrder; 3] {
        [
            SortOrder::Standard,
            SortOrder::Strided,
            SortOrder::TiledStrided { tile },
        ]
    }

    /// Figure label.
    pub fn name(&self) -> &'static str {
        match self {
            SortOrder::Random => "random",
            SortOrder::Standard => "standard",
            SortOrder::Strided => "strided",
            SortOrder::TiledStrided { .. } => "tiled-strided",
        }
    }
}

impl fmt::Display for SortOrder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SortOrder::TiledStrided { tile } => write!(f, "tiled-strided(tile={tile})"),
            other => f.write_str(other.name()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sets_have_expected_members() {
        let f7 = SortOrder::fig7_set(64);
        assert_eq!(f7.len(), 4);
        assert_eq!(f7[0], SortOrder::Random);
        assert_eq!(f7[3], SortOrder::TiledStrided { tile: 64 });
        let s = SortOrder::sorted_set(8);
        assert!(!s.contains(&SortOrder::Random));
    }

    #[test]
    fn display_includes_tile() {
        assert_eq!(SortOrder::Strided.to_string(), "strided");
        assert_eq!(
            SortOrder::TiledStrided { tile: 128 }.to_string(),
            "tiled-strided(tile=128)"
        );
        assert_eq!(SortOrder::TiledStrided { tile: 1 }.name(), "tiled-strided");
    }
}
