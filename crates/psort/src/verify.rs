//! Structural verifiers for the sorted orders.
//!
//! These encode, as checkable predicates, exactly the properties the paper
//! claims for each order — used by unit, property, and integration tests.

use pk::sort::histogram;

/// Minimum and maximum of a nonempty key slice.
fn min_max_keys(keys: &[u32]) -> (u64, u64) {
    let mut lo = u64::MAX;
    let mut hi = 0u64;
    for &k in keys {
        lo = lo.min(k as u64);
        hi = hi.max(k as u64);
    }
    (lo, hi)
}

/// True when `keys` is ascending (standard classification).
pub fn is_standard_order(keys: &[u32]) -> bool {
    keys.windows(2).all(|w| w[0] <= w[1])
}

/// True when `keys` is in strided order: replaying Algorithm 1's key
/// rewrite over the sequence yields a strictly increasing rewritten-key
/// stream. Equivalent to the paper's "repeating and strictly monotonically
/// increasing sequences" with the *p*-th occurrence of every key in the
/// *p*-th sweep.
pub fn is_strided_order(keys: &[u32]) -> bool {
    if keys.len() <= 1 {
        return true;
    }
    let (min_k, max_k) = min_max_keys(keys);
    let range = max_k - min_k + 1;
    let mut seen = vec![0u64; range as usize];
    let mut prev: Option<u64> = None;
    for &k in keys {
        let id = k as u64 - min_k;
        let ord = seen[id as usize];
        seen[id as usize] += 1;
        let rewritten = id + ord * range;
        if let Some(p) = prev {
            if rewritten <= p {
                return false;
            }
        }
        prev = Some(rewritten);
    }
    true
}

/// True when `keys` is in tiled strided order for the given `tile` size:
/// replaying Algorithm 2's rewrite (with the in-tile offset) yields a
/// strictly increasing rewritten-key stream.
pub fn is_tiled_strided_order(keys: &[u32], tile: usize) -> bool {
    if keys.len() <= 1 {
        return true;
    }
    let tile = tile.max(1) as u64;
    let (min_k, max_k) = min_max_keys(keys);
    let keys64: Vec<u64> = keys.iter().map(|&k| k as u64).collect();
    let counts = histogram(&keys64, min_k, max_k);
    let max_r = counts.iter().copied().max().unwrap_or(0) as u64;
    let chunk_sz = tile * max_r;
    let range = max_k - min_k + 1;
    let mut seen = vec![0u64; range as usize];
    let mut prev: Option<u64> = None;
    for &k in keys {
        let id = k as u64 - min_k;
        let t = seen[id as usize];
        seen[id as usize] += 1;
        let rewritten = (id / tile) * chunk_sz + t * tile + (id % tile);
        if let Some(p) = prev {
            if rewritten <= p {
                return false;
            }
        }
        prev = Some(rewritten);
    }
    true
}

/// Assert that `(keys, vals)` is a permutation of the original pairs,
/// where `vals` carries original indices: `keys[i] == orig[vals[i]]` and
/// `vals` is a permutation of `0..n`.
///
/// # Panics
/// Panics with a description when the invariant is violated.
pub fn assert_same_pairs(orig: &[u32], keys: &[u32], vals: &[usize]) {
    assert_eq!(orig.len(), keys.len());
    assert_eq!(keys.len(), vals.len());
    let mut seen = vec![false; vals.len()];
    for (i, &v) in vals.iter().enumerate() {
        assert!(!seen[v], "index {v} appears twice");
        seen[v] = true;
        assert_eq!(keys[i], orig[v], "pair broken at output position {i}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_order_predicate() {
        assert!(is_standard_order(&[1, 1, 2, 3]));
        assert!(!is_standard_order(&[2, 1]));
        assert!(is_standard_order(&[]));
    }

    #[test]
    fn strided_order_accepts_canonical_form() {
        // sweeps: [0,1,2] [0,1,2] [0,2]
        assert!(is_strided_order(&[0, 1, 2, 0, 1, 2, 0, 2]));
        assert!(is_strided_order(&[5])); // singleton
        assert!(is_strided_order(&[])); // empty
        assert!(is_strided_order(&[0, 1, 2, 3])); // unique keys ascending
    }

    #[test]
    fn strided_order_rejects_standard_form() {
        // standard order of duplicated keys is NOT strided
        assert!(!is_strided_order(&[0, 0, 1, 1]));
        // descending isn't either
        assert!(!is_strided_order(&[2, 1, 0]));
        // a sweep that repeats a key before finishing the cycle
        assert!(!is_strided_order(&[0, 1, 0, 1, 2, 2]));
    }

    #[test]
    fn tiled_order_accepts_tiles_and_rejects_strided_when_tiled_expected() {
        // tile=2, keys {0,1}x2 then {2,3}x2
        assert!(is_tiled_strided_order(&[0, 1, 0, 1, 2, 3, 2, 3], 2));
        // plain strided order breaks the chunk grouping
        assert!(!is_tiled_strided_order(&[0, 1, 2, 3, 0, 1, 2, 3], 2));
        // tile covering everything: strided order is valid
        assert!(is_tiled_strided_order(&[0, 1, 2, 3, 0, 1, 2, 3], 4));
    }

    #[test]
    fn assert_same_pairs_accepts_valid_permutation() {
        let orig = vec![7u32, 8, 7];
        let keys = vec![7u32, 7, 8];
        let vals = vec![0usize, 2, 1];
        assert_same_pairs(&orig, &keys, &vals);
    }

    #[test]
    #[should_panic(expected = "pair broken")]
    fn assert_same_pairs_rejects_broken_pairs() {
        let orig = vec![7u32, 8];
        assert_same_pairs(&orig, &[8, 8], &[0, 1]);
    }

    #[test]
    #[should_panic(expected = "appears twice")]
    fn assert_same_pairs_rejects_duplicate_indices() {
        let orig = vec![7u32, 7];
        assert_same_pairs(&orig, &[7, 7], &[0, 0]);
    }
}
