//! Executable gather-scatter workload (the microbenchmark of §5.4, run
//! for real on the host).
//!
//! For each element `i`: gather `table[key[i] + off]` over the stencil,
//! combine with the streamed `values[i]`, and atomically accumulate into
//! `out[key[i]]`. The kernel's result is independent of element order up
//! to floating-point associativity — which is what lets every sorting
//! order be validated against every other.

use pk::prelude::*;

/// The gather-scatter kernel, serial reference implementation.
///
/// `out[key[i]] += values[i] * Σ_off table[clamp(key[i] + off)]`
pub fn run_serial(keys: &[u32], values: &[f64], table: &[f64], stencil: &[i64]) -> Vec<f64> {
    assert_eq!(keys.len(), values.len(), "key/value extent mismatch");
    let mut out = vec![0.0f64; table.len()];
    for (&k, &v) in keys.iter().zip(values) {
        let mut acc = 0.0;
        for &off in stencil {
            let idx = (k as i64 + off).clamp(0, table.len() as i64 - 1) as usize;
            acc += table[idx];
        }
        out[k as usize] += v * acc;
    }
    out
}

/// The gather-scatter kernel executed on an execution space with atomic
/// scatter (the portable implementation VPIC 2.0 would run).
pub fn run_parallel<S: ExecSpace>(
    space: &S,
    keys: &[u32],
    values: &[f64],
    table: &[f64],
    stencil: &[i64],
) -> Vec<f64> {
    assert_eq!(keys.len(), values.len(), "key/value extent mismatch");
    let out = AtomicF64Buf::zeros(table.len());
    space.parallel_for(keys.len(), |i| {
        let k = keys[i];
        let mut acc = 0.0;
        for &off in stencil {
            let idx = (k as i64 + off).clamp(0, table.len() as i64 - 1) as usize;
            acc += table[idx];
        }
        out.fetch_add(k as usize, values[i] * acc);
    });
    out.to_vec()
}

/// FLOPs per element of the kernel (for roofline accounting):
/// `stencil.len()` adds for the gather sum, one multiply, one accumulate.
pub fn flops_per_element(stencil_len: usize) -> f64 {
    stencil_len as f64 + 2.0
}

/// Streaming bytes per element: the `values[i]` read.
pub const STREAM_BYTES_PER_ELEMENT: f64 = 8.0;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::patterns;
    use crate::sorts;
    use crate::SortOrder;

    fn table(n: usize) -> Vec<f64> {
        (0..n).map(|i| (i as f64 * 0.37).sin() + 2.0).collect()
    }

    #[test]
    fn serial_reference_simple_case() {
        let keys = vec![0u32, 1, 0];
        let values = vec![1.0, 2.0, 3.0];
        let t = vec![10.0, 20.0];
        let out = run_serial(&keys, &values, &t, &[0]);
        assert_eq!(out, vec![10.0 + 30.0, 40.0]);
    }

    #[test]
    fn stencil_clamps_at_edges() {
        let keys = vec![0u32];
        let values = vec![1.0];
        let t = vec![1.0, 2.0, 4.0];
        // offsets -1 (clamped to 0) + 0 + 1 → 1 + 1 + 2 = 4
        let out = run_serial(&keys, &values, &t, &[-1, 0, 1]);
        assert_eq!(out[0], 4.0);
    }

    #[test]
    fn parallel_matches_serial() {
        let keys = patterns::repeated_keys(64, 10, 3);
        let values: Vec<f64> = (0..keys.len()).map(|i| (i % 7) as f64).collect();
        let t = table(64);
        let stencil = patterns::five_point_stencil(8);
        let want = run_serial(&keys, &values, &t, &stencil);
        let got = run_parallel(&Threads::new(4), &keys, &values, &t, &stencil);
        for (g, w) in got.iter().zip(&want) {
            assert!((g - w).abs() < 1e-9, "{g} vs {w}");
        }
    }

    #[test]
    fn result_is_order_invariant_across_all_sorts() {
        let keys = patterns::repeated_keys(32, 8, 7);
        let values: Vec<f64> = (0..keys.len()).map(|i| 1.0 + (i as f64) * 0.01).collect();
        let t = table(32);
        let stencil = patterns::five_point_stencil(8);
        let reference = run_serial(&keys, &values, &t, &stencil);
        for order in SortOrder::fig7_set(8) {
            let mut k = keys.clone();
            let mut v = values.clone();
            sorts::sort_pairs(order, &mut k, &mut v);
            let got = run_serial(&k, &v, &t, &stencil);
            for (g, w) in got.iter().zip(&reference) {
                assert!(
                    (g - w).abs() < 1e-9,
                    "order {order} changed the physics: {g} vs {w}"
                );
            }
        }
    }

    #[test]
    fn flop_count_matches_kernel_shape() {
        assert_eq!(flops_per_element(1), 3.0);
        assert_eq!(flops_per_element(5), 7.0);
    }
}
