//! The sorting algorithms: standard, strided (Algorithm 1), tiled strided
//! (Algorithm 2), and the random baseline.
//!
//! Every function here reorders a key slice and a value slice *in tandem*
//! and costs O(N) key rewriting plus one `sort_by_key` (exactly the
//! paper's §4.3 structure: "The adjustment of the keys is O(N). Once the
//! new keys are generated, we use the parallel sort_by_key function").

use crate::order::SortOrder;
use pk::sort::{apply_permutation, histogram, min_max, permute_in_place, sort_permutation};
use pk::space::{ExecSpace, Serial};
use pk::RangePolicy;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Reorder `(keys, values)` by `order` (dispatcher over the algorithms).
pub fn sort_pairs<V>(order: SortOrder, keys: &mut [u32], values: &mut [V]) {
    sort_pairs_in(&Serial, order, keys, values);
}

/// [`sort_pairs`] with the O(N) key-rewrite passes run on `space`.
///
/// The output is identical to the serial functions for every space and
/// worker count: occurrence ordinals are assigned by a deterministic
/// block decomposition (per-block histograms, exclusive scan across
/// blocks) rather than atomic fetch-adds.
pub fn sort_pairs_in<V, S: ExecSpace>(
    space: &S,
    order: SortOrder,
    keys: &mut [u32],
    values: &mut [V],
) {
    let _s = telemetry::hspan("psort.sort_pairs")
        .arg("order", order)
        .arg("n", keys.len())
        .arg("space", space.name());
    match order {
        SortOrder::Random => random_order(0xC0FFEE, keys, values),
        SortOrder::Standard => standard_sort(keys, values),
        SortOrder::Strided => strided_sort_in(space, keys, values),
        SortOrder::TiledStrided { tile } => tiled_strided_sort_in(space, tile, keys, values),
    }
}

/// Standard classification: stable ascending sort by key.
pub fn standard_sort<V>(keys: &mut [u32], values: &mut [V]) {
    assert_eq!(keys.len(), values.len(), "key/value extent mismatch");
    let perm = {
        let _s = telemetry::span("psort.sort_by_key");
        sort_permutation(keys)
    };
    let _s = telemetry::span("psort.permute");
    permute_in_place(&perm, keys);
    permute_in_place(&perm, values);
}

/// Deterministic shuffle (Fisher–Yates with a fixed-seed ChaCha stream).
pub fn random_order<V>(seed: u64, keys: &mut [u32], values: &mut [V]) {
    assert_eq!(keys.len(), values.len(), "key/value extent mismatch");
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut perm: Vec<usize> = (0..keys.len()).collect();
    perm.shuffle(&mut rng);
    permute_in_place(&perm, keys);
    permute_in_place(&perm, values);
}

/// Algorithm 1 — strided sort.
///
/// Rewrites each key to `(key − min) + ordinal × range`, where `ordinal`
/// counts prior occurrences of the same key (the paper's
/// `atomic_fetch_add` on a histogram), then sorts by the rewritten keys.
/// The result is a concatenation of strictly-increasing subsequences: the
/// first occurrence of every key in ascending order, then every second
/// occurrence, and so on — so consecutive GPU threads touch consecutive
/// table entries (coalesced).
///
/// Deviation from the paper's pseudocode: the occurrence offset is
/// multiplied by the key *range* (`max − min + 1`) rather than `max + 1`;
/// they coincide when `min == 0` and the former is also correct for
/// shifted key domains.
pub fn strided_sort<V>(keys: &mut [u32], values: &mut [V]) {
    strided_sort_in(&Serial, keys, values);
}

/// [`strided_sort`] with the key rewrite run on `space` (same output for
/// every space — see [`sort_pairs_in`]).
pub fn strided_sort_in<V, S: ExecSpace>(space: &S, keys: &mut [u32], values: &mut [V]) {
    assert_eq!(keys.len(), values.len(), "key/value extent mismatch");
    if keys.len() <= 1 {
        return;
    }
    let keys64: Vec<u64> = keys.iter().map(|&k| k as u64).collect();
    let (min_k, max_k) = min_max(space, &keys64).expect("nonempty");
    let range = max_k - min_k + 1;
    let new_keys =
        rewrite_keys_in(space, &keys64, min_k, range, &|id, ordinal| id + ordinal * range);
    let perm = {
        let _s = telemetry::span("psort.sort_by_key");
        sort_permutation(&new_keys)
    };
    let _s = telemetry::span("psort.permute");
    permute_in_place(&perm, keys);
    permute_in_place(&perm, values);
}

/// Algorithm 2 — tiled strided sort.
///
/// Splits the key domain into chunks of `tile` consecutive keys. Each
/// chunk's pairs are laid out as `max_r` repeating tiles (where `max_r`
/// is the global maximum key multiplicity); within a tile, keys are in
/// strided (strictly increasing) order. A GPU thread block therefore
/// reads one coalesced, tile-sized working set over and over — reuse the
/// plain strided order cannot offer.
///
/// Deviation from the paper's pseudocode (Algorithm 2 line 14 adds the
/// *global* `id`): the in-tile offset `id mod tile` is used instead, which
/// keeps chunks disjoint in the rewritten key space for every input (the
/// published form can interleave chunks when `id ≥ tile`).
pub fn tiled_strided_sort<V>(tile: usize, keys: &mut [u32], values: &mut [V]) {
    tiled_strided_sort_in(&Serial, tile, keys, values);
}

/// [`tiled_strided_sort`] with the key rewrite run on `space` (same
/// output for every space — see [`sort_pairs_in`]).
pub fn tiled_strided_sort_in<V, S: ExecSpace>(
    space: &S,
    tile: usize,
    keys: &mut [u32],
    values: &mut [V],
) {
    assert_eq!(keys.len(), values.len(), "key/value extent mismatch");
    assert!(tile >= 1, "tile size must be at least 1");
    if keys.len() <= 1 {
        return;
    }
    let keys64: Vec<u64> = keys.iter().map(|&k| k as u64).collect();
    let (min_k, max_k) = min_max(space, &keys64).expect("nonempty");
    let range = max_k - min_k + 1;
    let counts = histogram(&keys64, min_k, max_k);
    let max_r = counts.iter().copied().max().unwrap_or(0) as u64;
    let tile = tile as u64;
    let chunk_sz = tile * max_r;
    let new_keys = rewrite_keys_in(space, &keys64, min_k, range, &|id, t| {
        (id / tile) * chunk_sz + t * tile + (id % tile)
    });
    let perm = {
        let _s = telemetry::span("psort.sort_by_key");
        sort_permutation(&new_keys)
    };
    let _s = telemetry::span("psort.permute");
    permute_in_place(&perm, keys);
    permute_in_place(&perm, values);
}

/// Rewrite every key to `rewrite(id, ordinal)` where `id = key − min_k`
/// and `ordinal` counts the key's earlier occurrences — the paper's O(N)
/// key-adjustment pass, parallelized deterministically.
///
/// Instead of the paper's `atomic_fetch_add` (whose ordinal assignment is
/// scheduling-dependent), each block histograms its own keys, an
/// exclusive scan across blocks gives every block its starting ordinal
/// per key, and blocks then assign ordinals independently. The result
/// equals the sequential left-to-right assignment for every space.
fn rewrite_keys_in<S: ExecSpace>(
    space: &S,
    keys64: &[u64],
    min_k: u64,
    range: u64,
    rewrite: &(dyn Fn(u64, u64) -> u64 + Sync),
) -> Vec<u64> {
    let n = keys64.len();
    let blocks = RangePolicy::new(n).static_blocks(space.concurrency());
    // pass 1: per-block key histograms
    let mut hists: Vec<Vec<u64>> = vec![vec![0u64; range as usize]; blocks.len()];
    {
        let _s = telemetry::span("psort.histogram").arg("n", n).arg("range", range);
        // sort occupancy in milli-particles-per-cell: the load factor that
        // decides whether tiled-strided beats strided for this grid
        telemetry::hist!("psort.occupancy.mppc", (n as u64).saturating_mul(1000) / range.max(1));
        space.parallel_for_mut(&mut hists, |b, hist| {
            for &k in &keys64[blocks[b].clone()] {
                hist[(k - min_k) as usize] += 1;
            }
        });
    }
    // pass 2: exclusive scan across blocks → each block's starting
    // ordinal per key (small: blocks × range, serial)
    {
        let _s = telemetry::span("psort.scan").arg("blocks", hists.len());
        let mut running = vec![0u64; range as usize];
        for hist in hists.iter_mut() {
            for (r, h) in running.iter_mut().zip(hist.iter_mut()) {
                let count = *h;
                *h = *r;
                *r += count;
            }
        }
    }
    // pass 3: blocks assign ordinals independently from their bases
    let _s = telemetry::span("psort.rewrite").arg("n", n);
    let starts: Vec<usize> = blocks.iter().map(|b| b.start).collect();
    let mut new_keys = vec![0u64; n];
    space.run_chunks_mut(&mut new_keys, blocks.len(), &|offset, out| {
        let b = starts
            .binary_search(&offset)
            .expect("chunk boundaries follow static blocks");
        let mut seen = hists[b].clone();
        for (&k, o) in keys64[offset..offset + out.len()].iter().zip(out.iter_mut()) {
            let id = k - min_k;
            let ordinal = seen[id as usize];
            seen[id as usize] += 1;
            *o = rewrite(id, ordinal);
        }
    });
    new_keys
}

/// Convenience: sort a copy of `keys` by `order` with carried indices,
/// returning `(sorted_keys, permutation)` where
/// `sorted_keys[i] == keys[permutation[i]]`.
pub fn ordered_keys(order: SortOrder, keys: &[u32]) -> (Vec<u32>, Vec<usize>) {
    let mut k = keys.to_vec();
    let mut idx: Vec<usize> = (0..keys.len()).collect();
    sort_pairs(order, &mut k, &mut idx);
    (k, idx)
}

/// Re-export helper: gather values through a permutation (forwarded from
/// `pk` so callers need only this crate).
pub fn gather<T: Clone>(perm: &[usize], values: &[T]) -> Vec<T> {
    apply_permutation(perm, values)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify;

    fn repeated_keys(unique: u32, reps: usize) -> Vec<u32> {
        // interleaved, slightly scrambled input
        let mut keys = Vec::with_capacity(unique as usize * reps);
        for r in 0..reps {
            for k in 0..unique {
                keys.push((k + r as u32 * 7) % unique);
            }
        }
        keys
    }

    #[test]
    fn standard_sort_produces_ascending_runs() {
        let mut keys = vec![3u32, 1, 3, 0, 1, 3];
        let mut vals = vec![30, 10, 31, 0, 11, 32];
        standard_sort(&mut keys, &mut vals);
        assert_eq!(keys, vec![0, 1, 1, 3, 3, 3]);
        assert_eq!(vals, vec![0, 10, 11, 30, 31, 32], "stable tandem sort");
    }

    #[test]
    fn strided_sort_structure() {
        let mut keys = repeated_keys(16, 5);
        let mut vals: Vec<usize> = (0..keys.len()).collect();
        let orig = keys.clone();
        strided_sort(&mut keys, &mut vals);
        assert!(verify::is_strided_order(&keys), "{keys:?}");
        verify::assert_same_pairs(&orig, &keys, &vals);
    }

    #[test]
    fn strided_sort_example_from_paper_figure2() {
        // Figure 2 uses keys with duplicates; strided output cycles
        // through the distinct keys
        let mut keys = vec![2u32, 0, 1, 0, 2, 1, 0, 2];
        let mut vals: Vec<char> = ('a'..='h').collect();
        strided_sort(&mut keys, &mut vals);
        assert_eq!(keys, vec![0, 1, 2, 0, 1, 2, 0, 2]);
    }

    #[test]
    fn tiled_sort_structure() {
        let tile = 4;
        let mut keys = repeated_keys(16, 6);
        let mut vals: Vec<usize> = (0..keys.len()).collect();
        let orig = keys.clone();
        tiled_strided_sort(tile, &mut keys, &mut vals);
        assert!(verify::is_tiled_strided_order(&keys, tile), "{keys:?}");
        verify::assert_same_pairs(&orig, &keys, &vals);
    }

    #[test]
    fn tiled_sort_with_uniform_counts_repeats_exact_tiles() {
        let tile = 2usize;
        let mut keys = vec![0u32, 1, 2, 3, 0, 1, 2, 3];
        let mut vals: Vec<usize> = (0..8).collect();
        tiled_strided_sort(tile, &mut keys, &mut vals);
        // chunk {0,1}: tiles [0,1][0,1]; chunk {2,3}: tiles [2,3][2,3]
        assert_eq!(keys, vec![0, 1, 0, 1, 2, 3, 2, 3]);
    }

    #[test]
    fn tile_one_degenerates_to_standard() {
        let mut a = repeated_keys(8, 3);
        let mut va: Vec<usize> = (0..a.len()).collect();
        let mut b = a.clone();
        let mut vb = va.clone();
        tiled_strided_sort(1, &mut a, &mut va);
        standard_sort(&mut b, &mut vb);
        assert_eq!(a, b, "tile=1 chunks are single keys → ascending runs");
    }

    #[test]
    fn huge_tile_degenerates_to_strided() {
        let mut a = repeated_keys(8, 3);
        let mut va: Vec<usize> = (0..a.len()).collect();
        let mut b = a.clone();
        let mut vb = va.clone();
        tiled_strided_sort(1 << 20, &mut a, &mut va);
        strided_sort(&mut b, &mut vb);
        assert_eq!(a, b, "one giant tile is exactly strided order");
    }

    #[test]
    fn threaded_rewrite_matches_serial_exactly() {
        use pk::Threads;
        let threads = Threads::new(4);
        for unique in [3u32, 16, 61] {
            let keys = repeated_keys(unique, 7);
            let mut ks = keys.clone();
            let mut vs: Vec<usize> = (0..keys.len()).collect();
            let mut kt = keys.clone();
            let mut vt = vs.clone();
            strided_sort(&mut ks, &mut vs);
            strided_sort_in(&threads, &mut kt, &mut vt);
            assert_eq!(ks, kt, "strided keys, unique={unique}");
            assert_eq!(vs, vt, "strided values, unique={unique}");
            let mut ks = keys.clone();
            let mut vs: Vec<usize> = (0..keys.len()).collect();
            let mut kt = keys.clone();
            let mut vt = vs.clone();
            tiled_strided_sort(4, &mut ks, &mut vs);
            tiled_strided_sort_in(&threads, 4, &mut kt, &mut vt);
            assert_eq!(ks, kt, "tiled keys, unique={unique}");
            assert_eq!(vs, vt, "tiled values, unique={unique}");
        }
    }

    #[test]
    fn sort_pairs_in_dispatches_on_threads() {
        use pk::Threads;
        let threads = Threads::new(3);
        let keys = repeated_keys(8, 3);
        for order in SortOrder::fig7_set(4) {
            let mut ks = keys.clone();
            let mut vs: Vec<usize> = (0..keys.len()).collect();
            let mut kt = keys.clone();
            let mut vt = vs.clone();
            sort_pairs(order, &mut ks, &mut vs);
            sort_pairs_in(&threads, order, &mut kt, &mut vt);
            assert_eq!(ks, kt, "{order}");
            assert_eq!(vs, vt, "{order}");
        }
    }

    #[test]
    fn random_order_is_deterministic_permutation() {
        let mut k1 = repeated_keys(8, 4);
        let mut v1: Vec<usize> = (0..k1.len()).collect();
        let orig = k1.clone();
        let mut k2 = k1.clone();
        let mut v2 = v1.clone();
        random_order(42, &mut k1, &mut v1);
        random_order(42, &mut k2, &mut v2);
        assert_eq!(k1, k2);
        assert_eq!(v1, v2);
        verify::assert_same_pairs(&orig, &k1, &v1);
        assert_ne!(k1, orig, "shuffle should move something");
    }

    #[test]
    fn sort_pairs_dispatches() {
        let keys = repeated_keys(8, 3);
        for order in SortOrder::fig7_set(4) {
            let (k, perm) = ordered_keys(order, &keys);
            // permutation validity
            let mut sorted_perm = perm.clone();
            sorted_perm.sort_unstable();
            assert_eq!(sorted_perm, (0..keys.len()).collect::<Vec<_>>());
            for (i, &p) in perm.iter().enumerate() {
                assert_eq!(k[i], keys[p], "{order}");
            }
        }
    }

    #[test]
    fn shifted_key_domain_handled() {
        // keys not starting at 0 (the min_k subtraction path)
        let mut keys = vec![1005u32, 1001, 1005, 1003, 1001];
        let mut vals: Vec<usize> = (0..5).collect();
        strided_sort(&mut keys, &mut vals);
        assert!(verify::is_strided_order(&keys));
        assert_eq!(keys[0], 1001);
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let mut keys: Vec<u32> = vec![];
        let mut vals: Vec<u8> = vec![];
        strided_sort(&mut keys, &mut vals);
        tiled_strided_sort(4, &mut keys, &mut vals);
        let mut keys = vec![9u32];
        let mut vals = vec![1u8];
        strided_sort(&mut keys, &mut vals);
        assert_eq!(keys, vec![9]);
        tiled_strided_sort(4, &mut keys, &mut vals);
        assert_eq!(vals, vec![1]);
    }

    #[test]
    #[should_panic(expected = "extent mismatch")]
    fn mismatched_lengths_panic() {
        let mut keys = vec![1u32, 2];
        let mut vals = vec![1u8];
        strided_sort(&mut keys, &mut vals);
    }
}
