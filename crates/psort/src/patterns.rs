//! Key-pattern generators for the paper's gather-scatter study (§5.4).
//!
//! The paper processes 10⁹ doubles under three patterns: *contiguous*
//! (unique keys in sorted order — the coalesced ideal), *repeated* (10⁷
//! unique keys × 100 — high atomic contention), and a *5-point stencil*
//! access applied on top of the repeated keys. The generators here produce
//! the same structures at any scale, deterministically.

use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::Serialize;

/// The paper's duplication factor: "each key repeated 100 times".
pub const PAPER_REPEATS: usize = 100;

/// The paper's element count: one billion doubles.
pub const PAPER_ELEMENTS: usize = 1_000_000_000;

/// A key pattern from §5.4.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum KeyPattern {
    /// Unique keys in ascending order (ideal, fully coalesced case).
    Contiguous,
    /// `unique × repeats` keys, randomly interleaved before sorting.
    Repeated {
        /// Distinct key values.
        unique: usize,
        /// Copies of each key.
        repeats: usize,
    },
}

impl KeyPattern {
    /// Total number of elements the pattern generates.
    pub fn len(&self) -> usize {
        match *self {
            KeyPattern::Contiguous => 0, // caller supplies n via generate
            KeyPattern::Repeated { unique, repeats } => unique * repeats,
        }
    }

    /// True when `len()` would be zero (contiguous defers to `generate`).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Unique keys `0..n` in ascending order.
pub fn contiguous_keys(n: usize) -> Vec<u32> {
    (0..n as u32).collect()
}

/// `unique` distinct keys, each `repeats` times, in a deterministic random
/// interleave (the pre-sort state of the paper's repeated pattern).
pub fn repeated_keys(unique: usize, repeats: usize, seed: u64) -> Vec<u32> {
    let mut keys = Vec::with_capacity(unique * repeats);
    for _ in 0..repeats {
        keys.extend(0..unique as u32);
    }
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    keys.shuffle(&mut rng);
    keys
}

/// The paper's 5-point stencil offsets over a `width`-wide 2-D index
/// space: self, ±1 (x neighbors), ±width (y neighbors).
pub fn five_point_stencil(width: usize) -> [i64; 5] {
    let w = width as i64;
    [0, -1, 1, -w, w]
}

/// Uniformly random cell assignments for `n` particles over `cells`
/// cells — the unsorted particle population used by Fig 9 ("sorting
/// disabled") and as the random baseline of Fig 7.
pub fn random_cells(n: usize, cells: usize, seed: u64) -> Vec<u32> {
    assert!(cells >= 1);
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    use rand::Rng;
    (0..n).map(|_| rng.gen_range(0..cells as u32)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contiguous_is_identity_sequence() {
        let k = contiguous_keys(5);
        assert_eq!(k, vec![0, 1, 2, 3, 4]);
        assert!(contiguous_keys(0).is_empty());
    }

    #[test]
    fn repeated_has_exact_multiplicities() {
        let k = repeated_keys(10, 7, 1);
        assert_eq!(k.len(), 70);
        for key in 0..10u32 {
            assert_eq!(k.iter().filter(|&&x| x == key).count(), 7);
        }
    }

    #[test]
    fn repeated_is_shuffled_but_deterministic() {
        let a = repeated_keys(50, 4, 99);
        let b = repeated_keys(50, 4, 99);
        let c = repeated_keys(50, 4, 100);
        assert_eq!(a, b);
        assert_ne!(a, c);
        // not already sorted
        assert!(a.windows(2).any(|w| w[0] > w[1]));
    }

    #[test]
    fn stencil_shape() {
        assert_eq!(five_point_stencil(100), [0, -1, 1, -100, 100]);
    }

    #[test]
    fn random_cells_in_range_and_covering() {
        let cells = random_cells(10_000, 64, 5);
        assert!(cells.iter().all(|&c| c < 64));
        let distinct: std::collections::HashSet<u32> = cells.iter().copied().collect();
        assert_eq!(distinct.len(), 64, "10k draws should hit all 64 cells");
    }

    #[test]
    fn pattern_lengths() {
        assert_eq!(KeyPattern::Repeated { unique: 10, repeats: 100 }.len(), 1000);
        assert!(KeyPattern::Contiguous.is_empty());
        assert_eq!(PAPER_ELEMENTS / PAPER_REPEATS, 10_000_000, "paper: 10M unique keys");
    }
}
