//! # psort — hardware-targeted particle sorting
//!
//! The paper's core contribution (§3.2/§4.3): three sorted orders for the
//! same key/value data, each targeting a different memory system, plus the
//! key-pattern generators and gather-scatter workloads used to evaluate
//! them (§5.4).
//!
//! | Order | Paper | Memory behaviour |
//! |---|---|---|
//! | [`standard_sort`] | "standard classification" | duplicates adjacent — best CPU cache reuse, worst GPU atomic conflicts |
//! | [`strided_sort`] | Algorithm 1 | repeating strictly-increasing subsequences — coalesced GPU accesses |
//! | [`tiled_strided_sort`] | Algorithm 2 | strided order inside cache-sized tiles — coalescing **and** reuse |
//! | [`random_order`] | baseline | fully divergent accesses |
//!
//! All orders are permutations of the same (key, value) pairs, so any
//! order-insensitive kernel (like the gather-scatter accumulation in
//! [`gather_scatter`]) computes the same result under each — the
//! correctness invariant the test suite leans on.

pub mod gather_scatter;
pub mod order;
pub mod patterns;
pub mod sorts;
pub mod verify;

pub use order::SortOrder;
pub use sorts::{
    random_order, sort_pairs, sort_pairs_in, standard_sort, strided_sort, strided_sort_in,
    tiled_strided_sort, tiled_strided_sort_in,
};
