//! Property tests: the sorting algorithms' structural invariants hold for
//! arbitrary inputs, and no order changes kernel results.

use proptest::prelude::*;
use psort::patterns;
use psort::sorts::{ordered_keys, sort_pairs, standard_sort, strided_sort, tiled_strided_sort};
use psort::verify;
use psort::SortOrder;

fn key_vec() -> impl Strategy<Value = Vec<u32>> {
    prop::collection::vec(0u32..64, 0..300)
}

proptest! {
    /// Strided sort always yields a valid strided order and preserves pairs.
    #[test]
    fn strided_sort_invariants(keys in key_vec()) {
        let orig = keys.clone();
        let mut k = keys;
        let mut v: Vec<usize> = (0..k.len()).collect();
        strided_sort(&mut k, &mut v);
        prop_assert!(verify::is_strided_order(&k));
        verify::assert_same_pairs(&orig, &k, &v);
    }

    /// Tiled strided sort yields a valid tiled order for any tile size.
    #[test]
    fn tiled_sort_invariants(keys in key_vec(), tile in 1usize..40) {
        let orig = keys.clone();
        let mut k = keys;
        let mut v: Vec<usize> = (0..k.len()).collect();
        tiled_strided_sort(tile, &mut k, &mut v);
        prop_assert!(verify::is_tiled_strided_order(&k, tile), "tile={tile} keys={k:?}");
        verify::assert_same_pairs(&orig, &k, &v);
    }

    /// Standard sort yields ascending keys and preserves pairs.
    #[test]
    fn standard_sort_invariants(keys in key_vec()) {
        let orig = keys.clone();
        let mut k = keys;
        let mut v: Vec<usize> = (0..k.len()).collect();
        standard_sort(&mut k, &mut v);
        prop_assert!(verify::is_standard_order(&k));
        verify::assert_same_pairs(&orig, &k, &v);
    }

    /// Every order produces a permutation: same key multiset.
    #[test]
    fn all_orders_are_permutations(keys in key_vec(), tile in 1usize..16) {
        for order in SortOrder::fig7_set(tile) {
            let (k, perm) = ordered_keys(order, &keys);
            let mut a = k.clone();
            let mut b = keys.clone();
            a.sort_unstable();
            b.sort_unstable();
            prop_assert_eq!(&a, &b, "order {} changed the multiset", order);
            let mut p = perm.clone();
            p.sort_unstable();
            prop_assert_eq!(p, (0..keys.len()).collect::<Vec<_>>());
        }
    }

    /// The gather-scatter kernel result is invariant across orders.
    #[test]
    fn kernel_result_order_invariant(
        unique in 1usize..24,
        reps in 1usize..8,
        seed in any::<u64>(),
        tile in 1usize..8,
    ) {
        let keys = patterns::repeated_keys(unique, reps, seed);
        let values: Vec<f64> = (0..keys.len()).map(|i| (i % 5) as f64 + 0.5).collect();
        let table: Vec<f64> = (0..unique).map(|i| i as f64 + 1.0).collect();
        let stencil = [0i64, -1, 1];
        let want = psort::gather_scatter::run_serial(&keys, &values, &table, &stencil);
        for order in SortOrder::fig7_set(tile) {
            let mut k = keys.clone();
            let mut v = values.clone();
            sort_pairs(order, &mut k, &mut v);
            let got = psort::gather_scatter::run_serial(&k, &v, &table, &stencil);
            for (g, w) in got.iter().zip(&want) {
                prop_assert!((g - w).abs() < 1e-9);
            }
        }
    }

    /// Strided order interleaves duplicates: no two equal keys adjacent
    /// (when more than one distinct key exists).
    #[test]
    fn strided_order_separates_duplicates(unique in 2usize..32, reps in 1usize..8, seed in any::<u64>()) {
        let mut keys = patterns::repeated_keys(unique, reps, seed);
        let mut v: Vec<usize> = (0..keys.len()).collect();
        strided_sort(&mut keys, &mut v);
        prop_assert!(
            keys.windows(2).all(|w| w[0] != w[1]),
            "duplicates must never be adjacent in strided order: {keys:?}"
        );
    }

    /// Sorting is idempotent: re-sorting an already-sorted array is a no-op.
    #[test]
    fn sorts_are_idempotent(keys in key_vec(), tile in 1usize..16) {
        for order in SortOrder::sorted_set(tile) {
            let (once, _) = ordered_keys(order, &keys);
            let (twice, _) = ordered_keys(order, &once);
            prop_assert_eq!(&once, &twice, "{} not idempotent", order);
        }
    }
}
