//! The four vectorization strategies of the paper (§3.1), as a runtime
//! selector so benchmarks and the repro harness can sweep them.

use std::fmt;

/// A vectorization strategy, in increasing order of developer effort
/// (paper: "Manual vectorization requires more effort than auto or guided
/// but much less than ad hoc").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Strategy {
    /// Compiler auto-vectorization of plain loops (Kokkos default;
    /// `#pragma ivdep` in the paper's implementation).
    Auto,
    /// Forced/assisted auto-vectorization: restructured fixed-width loops
    /// and split-out math (`#pragma omp simd` in the paper).
    Guided,
    /// Explicit portable SIMD types ([`crate::simd`]; Kokkos SIMD in the
    /// paper).
    Manual,
    /// Per-ISA intrinsics ([`crate::v4`] / [`crate::adhoc`]; the VPIC 1.2
    /// custom SIMD library in the paper).
    AdHoc,
}

impl Strategy {
    /// All strategies, in paper order.
    pub const ALL: [Strategy; 4] = [
        Strategy::Auto,
        Strategy::Guided,
        Strategy::Manual,
        Strategy::AdHoc,
    ];

    /// The three strategies evaluated on the RAJAPerf microkernels
    /// (Figure 3 excludes ad hoc, which exists only inside VPIC 1.2).
    pub const MICRO: [Strategy; 3] = [Strategy::Auto, Strategy::Guided, Strategy::Manual];

    /// Short lowercase name as used in the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            Strategy::Auto => "auto",
            Strategy::Guided => "guided",
            Strategy::Manual => "manual",
            Strategy::AdHoc => "adhoc",
        }
    }

    /// Relative developer effort on the paper's qualitative scale
    /// (auto < guided < manual ≪ ad hoc).
    pub fn effort_rank(self) -> u8 {
        match self {
            Strategy::Auto => 0,
            Strategy::Guided => 1,
            Strategy::Manual => 2,
            Strategy::AdHoc => 10, // "much less than ad hoc" — a gap, not a step
        }
    }

    /// Whether this strategy has a genuine (non-fallback) implementation
    /// on the build target. Ad hoc is per-ISA by definition: it is real
    /// only where its intrinsics exist (x86-64 here; the paper's table
    /// row for A64FX/Grace is the same story with SVE missing).
    pub fn is_native(self) -> bool {
        match self {
            Strategy::Auto | Strategy::Guided | Strategy::Manual => true,
            Strategy::AdHoc => cfg!(target_arch = "x86_64"),
        }
    }

    /// Parse from the names used in figures/CLI (`auto`, `guided`,
    /// `manual`, `adhoc`/`ad-hoc`/`ad_hoc`).
    pub fn parse(s: &str) -> Option<Strategy> {
        match s.to_ascii_lowercase().as_str() {
            "auto" => Some(Strategy::Auto),
            "guided" => Some(Strategy::Guided),
            "manual" => Some(Strategy::Manual),
            "adhoc" | "ad-hoc" | "ad_hoc" => Some(Strategy::AdHoc),
            _ => None,
        }
    }
}

impl fmt::Display for Strategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_contains_each_once_in_effort_order() {
        assert_eq!(Strategy::ALL.len(), 4);
        let ranks: Vec<u8> = Strategy::ALL.iter().map(|s| s.effort_rank()).collect();
        assert!(ranks.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn micro_excludes_adhoc() {
        assert!(!Strategy::MICRO.contains(&Strategy::AdHoc));
        assert_eq!(Strategy::MICRO.len(), 3);
    }

    #[test]
    fn parse_roundtrips_names() {
        for s in Strategy::ALL {
            assert_eq!(Strategy::parse(s.name()), Some(s));
            assert_eq!(Strategy::parse(&s.name().to_uppercase()), Some(s));
        }
        assert_eq!(Strategy::parse("ad-hoc"), Some(Strategy::AdHoc));
        assert_eq!(Strategy::parse("nonsense"), None);
    }

    #[test]
    fn display_matches_name() {
        assert_eq!(format!("{}", Strategy::Guided), "guided");
    }

    #[test]
    fn portable_strategies_always_native() {
        assert!(Strategy::Auto.is_native());
        assert!(Strategy::Guided.is_native());
        assert!(Strategy::Manual.is_native());
    }
}
