//! # vsimd — portable SIMD library and vectorization strategies
//!
//! This crate reproduces the *compute optimization* layer of VPIC 2.0
//! (paper §3.1/§4.2). It provides the building blocks for the paper's four
//! vectorization strategies:
//!
//! | Paper strategy | Paper implementation | Here |
//! |---|---|---|
//! | **auto** | Kokkos loops + `#pragma ivdep` | plain indexed loops left to rustc/LLVM auto-vectorization |
//! | **guided** | `#pragma omp simd` + kernel splitting | fixed-width chunked loops ([`chunks`]) that reliably auto-vectorize, with difficult math split out |
//! | **manual** | Kokkos SIMD (C++26 `std::simd`) | the portable [`Simd`](simd) lane types with [`Mask`]s, gathers, and register [`transpose`]s |
//! | **ad hoc** | VPIC 1.2 per-ISA intrinsics (AVX/AVX2/AVX512/NEON/Altivec) | [`v4::V4F32`] over `std::arch` SSE on x86-64 (scalar elsewhere) plus runtime-dispatched AVX2 slice kernels in [`adhoc`] |
//!
//! The actual kernels written in each strategy live in the `rajaperf`
//! crate (microbenchmarks) and `vpic-core` (particle push).

// indexed fixed-trip loops are the explicit idiom this crate exists to
// demonstrate (they are what the vectorizer lowers predictably), and the
// V4 type mirrors VPIC 1.2's add/sub/mul/div method names on purpose
#![allow(clippy::needless_range_loop)]
#![allow(clippy::should_implement_trait)]

pub mod adhoc;
pub mod chunks;
pub mod mask;
pub mod math;
pub mod simd;
pub mod stencil;
pub mod strategy;
pub mod transpose;
pub mod v4;

pub use mask::Mask;
pub use simd::{SimdF32, SimdF64, SimdI32};
pub use stencil::StencilLane;
pub use strategy::Strategy;

/// Preferred portable lane count for `f32` on the build target.
///
/// Mirrors `Kokkos::Experimental::native_simd<float>::size()`: 8 where
/// AVX2 is enabled at compile time, else 4 (SSE/NEON width).
pub const NATIVE_F32_LANES: usize = if cfg!(target_feature = "avx2") { 8 } else { 4 };

/// Preferred portable lane count for `f64` on the build target.
pub const NATIVE_F64_LANES: usize = NATIVE_F32_LANES / 2;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[allow(clippy::assertions_on_constants)] // target-dependent constants
    fn native_lane_constants_are_consistent() {
        assert!(NATIVE_F32_LANES == 4 || NATIVE_F32_LANES == 8);
        assert_eq!(NATIVE_F64_LANES * 2, NATIVE_F32_LANES);
    }
}
