//! Guided-vectorization loop helpers.
//!
//! The paper's *guided* strategy forces vectorization with
//! `#pragma omp simd` and splits kernels so hard-to-vectorize math sits in
//! its own loop. Rust has no vectorization pragma; the equivalent
//! guidance is to restructure the loop so LLVM's vectorizer cannot miss:
//! a main loop over exact fixed-width chunks (no trip-count unknowns, no
//! bounds checks, no cross-iteration dependence visible) plus a scalar
//! tail. These helpers encode that restructuring once.

/// Default guided-vectorization width (elements per chunk). 16 f32s = one
/// AVX-512 register or two AVX2 registers; small enough for NEON too.
pub const GUIDED_WIDTH: usize = 16;

/// Apply `f` to every element of exact `W`-sized chunk arrays of `data`,
/// then `tail` to the remainder. The chunk closure sees `&mut [T; W]`, so
/// the compiler knows the trip count exactly.
#[inline(always)]
pub fn for_each_chunk_mut<T, const W: usize>(
    data: &mut [T],
    mut f: impl FnMut(usize, &mut [T; W]),
    mut tail: impl FnMut(usize, &mut T),
) {
    let n = data.len();
    let main = n - n % W;
    let mut base = 0;
    while base < main {
        let chunk: &mut [T; W] = (&mut data[base..base + W]).try_into().expect("exact chunk");
        f(base, chunk);
        base += W;
    }
    for (k, item) in data[main..].iter_mut().enumerate() {
        tail(main + k, item);
    }
}

/// Zip two slices in exact `W`-sized chunks: `f(base, &mut a_chunk,
/// &b_chunk)` over the main part, `tail` over the remainder.
#[inline(always)]
pub fn zip_chunks_mut<A, B, const W: usize>(
    a: &mut [A],
    b: &[B],
    mut f: impl FnMut(usize, &mut [A; W], &[B; W]),
    mut tail: impl FnMut(usize, &mut A, &B),
) {
    assert_eq!(a.len(), b.len(), "zip_chunks_mut length mismatch");
    let n = a.len();
    let main = n - n % W;
    let mut base = 0;
    while base < main {
        let ca: &mut [A; W] = (&mut a[base..base + W]).try_into().expect("exact chunk");
        let cb: &[B; W] = (&b[base..base + W]).try_into().expect("exact chunk");
        f(base, ca, cb);
        base += W;
    }
    for k in main..n {
        tail(k, &mut a[k], &b[k]);
    }
}

/// Reduce a slice in exact `W`-sized chunks with `W` independent partial
/// accumulators (breaking the serial dependence chain that blocks
/// vectorized reductions), then fold the partials and the tail.
#[inline(always)]
pub fn reduce_chunks<T: Copy, const W: usize>(
    data: &[T],
    init: f64,
    mut f: impl FnMut(T) -> f64,
) -> f64 {
    let n = data.len();
    let main = n - n % W;
    let mut acc = [0.0f64; W];
    let mut base = 0;
    while base < main {
        let chunk: &[T; W] = (&data[base..base + W]).try_into().expect("exact chunk");
        for l in 0..W {
            acc[l] += f(chunk[l]);
        }
        base += W;
    }
    let mut total = init;
    for a in acc {
        total += a;
    }
    for &item in &data[main..] {
        total += f(item);
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn for_each_chunk_covers_all_including_tail() {
        let mut v: Vec<u32> = vec![0; 37];
        for_each_chunk_mut::<u32, 8>(
            &mut v,
            |base, chunk| {
                for (l, x) in chunk.iter_mut().enumerate() {
                    *x = (base + l) as u32;
                }
            },
            |i, x| *x = i as u32,
        );
        assert!(v.iter().enumerate().all(|(i, &x)| x == i as u32));
    }

    #[test]
    fn for_each_chunk_exact_multiple_has_empty_tail() {
        let mut v = vec![1u8; 32];
        let mut tail_calls = 0;
        for_each_chunk_mut::<u8, 16>(
            &mut v,
            |_, chunk| {
                for x in chunk.iter_mut() {
                    *x += 1;
                }
            },
            |_, _| tail_calls += 1,
        );
        assert_eq!(tail_calls, 0);
        assert!(v.iter().all(|&x| x == 2));
    }

    #[test]
    fn zip_chunks_axpy_matches_reference() {
        let n = 53;
        let x: Vec<f32> = (0..n).map(|i| i as f32).collect();
        let mut y = vec![1.0f32; n];
        let a = 2.0f32;
        zip_chunks_mut::<f32, f32, 16>(
            &mut y,
            &x,
            |_, yc, xc| {
                for l in 0..16 {
                    yc[l] += a * xc[l];
                }
            },
            |_, yi, xi| *yi += a * xi,
        );
        for i in 0..n {
            assert_eq!(y[i], 1.0 + 2.0 * i as f32);
        }
    }

    #[test]
    fn reduce_chunks_matches_sequential() {
        let data: Vec<f64> = (0..101).map(|i| (i as f64) * 0.5).collect();
        let got = reduce_chunks::<f64, 8>(&data, 0.0, |x| x * x);
        let want: f64 = data.iter().map(|&x| x * x).sum();
        assert!((got - want).abs() < 1e-9);
    }

    #[test]
    fn reduce_chunks_empty_returns_init() {
        let got = reduce_chunks::<f64, 8>(&[], 42.0, |x| x);
        assert_eq!(got, 42.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn zip_chunks_length_mismatch_panics() {
        let mut a = vec![0.0f32; 4];
        let b = vec![0.0f32; 5];
        zip_chunks_mut::<f32, f32, 4>(&mut a, &b, |_, _, _| {}, |_, _, _| {});
    }
}
