//! SIMD lane masks, mirroring `Kokkos::Experimental::simd_mask`.
//!
//! Masks are how branchy scalar code becomes branch-free vector code:
//! evaluate both sides, then [`blend`](crate::simd::SimdF32::select) with
//! the mask (paper §4.2: "includes SIMD masks for handling branches").

use std::ops::{BitAnd, BitOr, Not};

/// A boolean mask with one flag per SIMD lane.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(transparent)]
pub struct Mask<const N: usize>(pub [bool; N]);

impl<const N: usize> Mask<N> {
    /// All lanes set.
    #[inline(always)]
    pub fn all_set() -> Self {
        Self([true; N])
    }

    /// All lanes clear.
    #[inline(always)]
    pub fn none_set() -> Self {
        Self([false; N])
    }

    /// True if any lane is set (`simd_mask::any_of`).
    #[inline(always)]
    pub fn any(self) -> bool {
        self.0.iter().any(|&b| b)
    }

    /// True if every lane is set (`simd_mask::all_of`).
    #[inline(always)]
    pub fn all(self) -> bool {
        self.0.iter().all(|&b| b)
    }

    /// Number of set lanes (`simd_mask::reduce_count`).
    #[inline(always)]
    pub fn count(self) -> usize {
        self.0.iter().filter(|&&b| b).count()
    }

    /// Read one lane.
    #[inline(always)]
    pub fn lane(self, l: usize) -> bool {
        self.0[l]
    }

    /// First set lane, if any.
    #[inline(always)]
    pub fn first_set(self) -> Option<usize> {
        self.0.iter().position(|&b| b)
    }

    /// Pack as a bitmask (lane 0 = bit 0), like `movemask`.
    #[inline(always)]
    pub fn to_bits(self) -> u64 {
        debug_assert!(N <= 64);
        let mut bits = 0u64;
        for l in 0..N {
            bits |= (self.0[l] as u64) << l;
        }
        bits
    }
}

impl<const N: usize> Default for Mask<N> {
    fn default() -> Self {
        Self::none_set()
    }
}

impl<const N: usize> BitAnd for Mask<N> {
    type Output = Self;
    #[inline(always)]
    fn bitand(self, rhs: Self) -> Self {
        let mut out = [false; N];
        for l in 0..N {
            out[l] = self.0[l] & rhs.0[l];
        }
        Self(out)
    }
}

impl<const N: usize> BitOr for Mask<N> {
    type Output = Self;
    #[inline(always)]
    fn bitor(self, rhs: Self) -> Self {
        let mut out = [false; N];
        for l in 0..N {
            out[l] = self.0[l] | rhs.0[l];
        }
        Self(out)
    }
}

impl<const N: usize> Not for Mask<N> {
    type Output = Self;
    #[inline(always)]
    fn not(self) -> Self {
        let mut out = [false; N];
        for l in 0..N {
            out[l] = !self.0[l];
        }
        Self(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn any_all_count() {
        let m = Mask([true, false, true, false]);
        assert!(m.any());
        assert!(!m.all());
        assert_eq!(m.count(), 2);
        assert!(Mask::<4>::all_set().all());
        assert!(!Mask::<4>::none_set().any());
        assert_eq!(Mask::<4>::none_set().count(), 0);
    }

    #[test]
    fn boolean_algebra() {
        let a = Mask([true, true, false, false]);
        let b = Mask([true, false, true, false]);
        assert_eq!((a & b).0, [true, false, false, false]);
        assert_eq!((a | b).0, [true, true, true, false]);
        assert_eq!((!a).0, [false, false, true, true]);
        // De Morgan
        assert_eq!(!(a & b), (!a) | (!b));
        assert_eq!(!(a | b), (!a) & (!b));
    }

    #[test]
    fn bit_packing_and_first_set() {
        let m = Mask([false, true, false, true]);
        assert_eq!(m.to_bits(), 0b1010);
        assert_eq!(m.first_set(), Some(1));
        assert_eq!(Mask::<4>::none_set().first_set(), None);
        assert_eq!(Mask::<8>::all_set().to_bits(), 0xff);
    }

    #[test]
    fn lane_access() {
        let m = Mask([true, false, true]);
        assert!(m.lane(0));
        assert!(!m.lane(1));
        assert!(m.lane(2));
    }
}
