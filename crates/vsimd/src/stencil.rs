//! Lane abstraction for structured-grid stencil kernels.
//!
//! The field-solve / interpolator kernels in `vpic-core` sweep contiguous
//! row spans where every neighbor offset is affine (`±1, ±nx, ±nx·ny`), so
//! the same kernel body works at any lane width: scalar (`f32`, the *auto*
//! strategy's reference op tree), portable SIMD ([`SimdF32<4>`], the
//! *manual* strategy), and the VPIC-1.2-style intrinsics type
//! ([`V4F32`], the *ad hoc* strategy).
//!
//! [`StencilLane`] deliberately exposes only `+`, `−`, `×` (no FMA, no
//! approximate reciprocals): those three ops are IEEE-754-exact at every
//! width, so one generic kernel body instantiated at different widths
//! produces **bit-identical** results — the property the field pipeline's
//! strategy dispatch relies on. Keep `fma`/`rsqrt` out of this trait; their
//! results are target- and width-dependent.

use crate::simd::SimdF32;
use crate::v4::V4F32;

/// One vector lane group for stencil sweeps: unit-stride loads/stores at a
/// base offset plus exact `+`, `−`, `×`.
///
/// Implementations must be *width-transparent*: for any inputs, lane `l` of
/// `a.add(b)` equals `f32::add` of lane `l` of `a` and `b` (and likewise
/// `sub`/`mul`), so scalar and SIMD instantiations of one generic kernel
/// agree bitwise.
pub trait StencilLane: Copy {
    /// Lane count (1 for the scalar instantiation).
    const LANES: usize;

    /// Broadcast a scalar to all lanes.
    fn splat(v: f32) -> Self;

    /// Load `LANES` consecutive values starting at `src[offset]`.
    fn load(src: &[f32], offset: usize) -> Self;

    /// Store `LANES` consecutive values starting at `dst[offset]`.
    fn store(self, dst: &mut [f32], offset: usize);

    /// Lanewise exact addition.
    fn add(self, rhs: Self) -> Self;

    /// Lanewise exact subtraction.
    fn sub(self, rhs: Self) -> Self;

    /// Lanewise exact multiplication.
    fn mul(self, rhs: Self) -> Self;

    /// Extract lane `l` (used for AoS stores narrower than the lane width).
    fn extract(self, l: usize) -> f32;
}

impl StencilLane for f32 {
    const LANES: usize = 1;

    #[inline(always)]
    fn splat(v: f32) -> Self {
        v
    }

    #[inline(always)]
    fn load(src: &[f32], offset: usize) -> Self {
        src[offset]
    }

    #[inline(always)]
    fn store(self, dst: &mut [f32], offset: usize) {
        dst[offset] = self;
    }

    #[inline(always)]
    fn add(self, rhs: Self) -> Self {
        self + rhs
    }

    #[inline(always)]
    fn sub(self, rhs: Self) -> Self {
        self - rhs
    }

    #[inline(always)]
    fn mul(self, rhs: Self) -> Self {
        self * rhs
    }

    #[inline(always)]
    fn extract(self, l: usize) -> f32 {
        debug_assert_eq!(l, 0);
        self
    }
}

impl StencilLane for SimdF32<4> {
    const LANES: usize = 4;

    #[inline(always)]
    fn splat(v: f32) -> Self {
        SimdF32::splat(v)
    }

    #[inline(always)]
    fn load(src: &[f32], offset: usize) -> Self {
        SimdF32::load(src, offset)
    }

    #[inline(always)]
    fn store(self, dst: &mut [f32], offset: usize) {
        SimdF32::store(self, dst, offset)
    }

    #[inline(always)]
    fn add(self, rhs: Self) -> Self {
        self + rhs
    }

    #[inline(always)]
    fn sub(self, rhs: Self) -> Self {
        self - rhs
    }

    #[inline(always)]
    fn mul(self, rhs: Self) -> Self {
        self * rhs
    }

    #[inline(always)]
    fn extract(self, l: usize) -> f32 {
        self.lane(l)
    }
}

impl StencilLane for V4F32 {
    const LANES: usize = 4;

    #[inline(always)]
    fn splat(v: f32) -> Self {
        V4F32::splat(v)
    }

    #[inline(always)]
    fn load(src: &[f32], offset: usize) -> Self {
        V4F32::load(src, offset)
    }

    #[inline(always)]
    fn store(self, dst: &mut [f32], offset: usize) {
        V4F32::store(self, dst, offset)
    }

    #[inline(always)]
    fn add(self, rhs: Self) -> Self {
        V4F32::add(self, rhs)
    }

    #[inline(always)]
    fn sub(self, rhs: Self) -> Self {
        V4F32::sub(self, rhs)
    }

    #[inline(always)]
    fn mul(self, rhs: Self) -> Self {
        V4F32::mul(self, rhs)
    }

    #[inline(always)]
    fn extract(self, l: usize) -> f32 {
        self.to_array()[l]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // one representative stencil body: b -= dt * ((a[y+] - a[v])*r1 - (c[z+] - c[v])*r2)
    fn curl_like<L: StencilLane>(a: &[f32], c: &[f32], b: &mut [f32], off: usize) {
        let dt = L::splat(0.3);
        let r1 = L::splat(1.7);
        let r2 = L::splat(0.9);
        let av = L::load(a, off);
        let ay = L::load(a, off + 1);
        let cv = L::load(c, off);
        let cz = L::load(c, off + 2);
        let old = L::load(b, off);
        let upd = old.sub(dt.mul(ay.sub(av).mul(r1).sub(cz.sub(cv).mul(r2))));
        upd.store(b, off);
    }

    #[test]
    fn all_widths_agree_bitwise() {
        let a: Vec<f32> = (0..16).map(|i| (i as f32 * 0.618).sin()).collect();
        let c: Vec<f32> = (0..16).map(|i| (i as f32 * 0.417).cos()).collect();
        let base: Vec<f32> = (0..16).map(|i| i as f32 * 0.01).collect();

        let mut scalar = base.clone();
        for off in 0..4 {
            curl_like::<f32>(&a, &c, &mut scalar, off);
        }
        let mut manual = base.clone();
        curl_like::<SimdF32<4>>(&a, &c, &mut manual, 0);
        let mut adhoc = base.clone();
        curl_like::<V4F32>(&a, &c, &mut adhoc, 0);

        // scalar applied per-offset overlaps itself; redo scalar the same
        // way the vector version sees it: independent lanes from `base`
        let mut scalar_lanes = base.clone();
        for off in 0..4 {
            let mut tmp = base.clone();
            curl_like::<f32>(&a, &c, &mut tmp, off);
            scalar_lanes[off] = tmp[off];
        }
        for l in 0..4 {
            assert_eq!(scalar_lanes[l].to_bits(), manual[l].to_bits(), "manual lane {l}");
            assert_eq!(scalar_lanes[l].to_bits(), adhoc[l].to_bits(), "adhoc lane {l}");
        }
    }

    #[test]
    fn extract_matches_store() {
        let src: Vec<f32> = (0..8).map(|i| i as f32 + 0.5).collect();
        let m = <SimdF32<4> as StencilLane>::load(&src, 2);
        let v = <V4F32 as StencilLane>::load(&src, 2);
        for l in 0..4 {
            assert_eq!(m.extract(l), src[2 + l]);
            assert_eq!(v.extract(l), src[2 + l]);
        }
        assert_eq!(<f32 as StencilLane>::load(&src, 3).extract(0), src[3]);
    }
}
