//! In-register transposes for AoS ⇄ SoA conversion.
//!
//! VPIC stores particles as interleaved records (`dx, dy, dz, i, ux, uy,
//! uz, w`); vector kernels want lane-major (SoA) registers. The paper's
//! manual strategy "implement\[s\] functions for transposing data in
//! registers... to accelerate data loading and storing in VPIC" — these are
//! those functions, written portably (the ad hoc SSE version lives in
//! [`crate::v4`]).

use crate::simd::SimdF32;

/// Transpose a 4×4 block of `f32` held in four vectors: row-major in, its
/// transpose out.
#[inline(always)]
pub fn transpose_4x4(rows: [SimdF32<4>; 4]) -> [SimdF32<4>; 4] {
    let mut out = [[0.0f32; 4]; 4];
    for r in 0..4 {
        for c in 0..4 {
            out[c][r] = rows[r].0[c];
        }
    }
    [
        SimdF32(out[0]),
        SimdF32(out[1]),
        SimdF32(out[2]),
        SimdF32(out[3]),
    ]
}

/// Transpose an 8×8 block of `f32` held in eight vectors.
#[inline(always)]
pub fn transpose_8x8(rows: [SimdF32<8>; 8]) -> [SimdF32<8>; 8] {
    let mut out = [[0.0f32; 8]; 8];
    for r in 0..8 {
        for c in 0..8 {
            out[c][r] = rows[r].0[c];
        }
    }
    let mut vs = [SimdF32::<8>::zero(); 8];
    for (v, o) in vs.iter_mut().zip(out) {
        *v = SimdF32(o);
    }
    vs
}

/// Load 4 consecutive AoS records of `stride` floats starting at
/// `base`, returning the first 4 fields as SoA vectors
/// (`load_4x4_tr` in the VPIC 1.2 SIMD library).
///
/// `out[f].lane(r)` is field `f` of record `r`.
#[inline(always)]
pub fn load_4x4_tr(src: &[f32], base: usize, stride: usize) -> [SimdF32<4>; 4] {
    debug_assert!(stride >= 4, "need at least 4 fields per record");
    let rows = [
        SimdF32::<4>::load(src, base),
        SimdF32::<4>::load(src, base + stride),
        SimdF32::<4>::load(src, base + 2 * stride),
        SimdF32::<4>::load(src, base + 3 * stride),
    ];
    transpose_4x4(rows)
}

/// Store 4 SoA vectors back as the first 4 fields of 4 consecutive AoS
/// records (`store_4x4_tr` in the VPIC 1.2 SIMD library).
#[inline(always)]
pub fn store_4x4_tr(fields: [SimdF32<4>; 4], dst: &mut [f32], base: usize, stride: usize) {
    debug_assert!(stride >= 4);
    let rows = transpose_4x4(fields);
    rows[0].store(dst, base);
    rows[1].store(dst, base + stride);
    rows[2].store(dst, base + 2 * stride);
    rows[3].store(dst, base + 3 * stride);
}

/// Gathered AoS→SoA load: like [`load_4x4_tr`] but each record's base is
/// given explicitly (particles gathered through a sort permutation).
#[inline(always)]
pub fn gather_4x4_tr(src: &[f32], bases: [usize; 4]) -> [SimdF32<4>; 4] {
    let rows = [
        SimdF32::<4>::load(src, bases[0]),
        SimdF32::<4>::load(src, bases[1]),
        SimdF32::<4>::load(src, bases[2]),
        SimdF32::<4>::load(src, bases[3]),
    ];
    transpose_4x4(rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transpose_4x4_is_mathematical_transpose() {
        let rows = [
            SimdF32::from([0.0, 1.0, 2.0, 3.0]),
            SimdF32::from([10.0, 11.0, 12.0, 13.0]),
            SimdF32::from([20.0, 21.0, 22.0, 23.0]),
            SimdF32::from([30.0, 31.0, 32.0, 33.0]),
        ];
        let t = transpose_4x4(rows);
        for r in 0..4 {
            for c in 0..4 {
                assert_eq!(t[c].lane(r), rows[r].lane(c));
            }
        }
    }

    #[test]
    fn transpose_4x4_involution() {
        let rows = [
            SimdF32::from([1.0, 2.0, 3.0, 4.0]),
            SimdF32::from([5.0, 6.0, 7.0, 8.0]),
            SimdF32::from([9.0, 10.0, 11.0, 12.0]),
            SimdF32::from([13.0, 14.0, 15.0, 16.0]),
        ];
        assert_eq!(transpose_4x4(transpose_4x4(rows)), rows);
    }

    #[test]
    fn transpose_8x8_involution() {
        let mut rows = [SimdF32::<8>::zero(); 8];
        for (r, row) in rows.iter_mut().enumerate() {
            for c in 0..8 {
                row.0[c] = (r * 8 + c) as f32;
            }
        }
        let t = transpose_8x8(rows);
        for r in 0..8 {
            for c in 0..8 {
                assert_eq!(t[c].lane(r), rows[r].lane(c));
            }
        }
        assert_eq!(transpose_8x8(t), rows);
    }

    #[test]
    fn aos_load_store_roundtrip() {
        // 4 particle records with 8 fields each (VPIC particle layout)
        let stride = 8;
        let src: Vec<f32> = (0..4 * stride).map(|i| i as f32).collect();
        let soa = load_4x4_tr(&src, 0, stride);
        // field f of record r is src[r*stride + f]
        for f in 0..4 {
            for r in 0..4 {
                assert_eq!(soa[f].lane(r), (r * stride + f) as f32);
            }
        }
        let mut dst = vec![0.0f32; 4 * stride];
        store_4x4_tr(soa, &mut dst, 0, stride);
        for r in 0..4 {
            for f in 0..4 {
                assert_eq!(dst[r * stride + f], src[r * stride + f]);
            }
        }
    }

    #[test]
    fn gathered_load_matches_contiguous() {
        let stride = 8;
        let src: Vec<f32> = (0..8 * stride).map(|i| (i as f32).sin()).collect();
        let contiguous = load_4x4_tr(&src, 2 * stride, stride);
        let gathered = gather_4x4_tr(
            &src,
            [2 * stride, 3 * stride, 4 * stride, 5 * stride],
        );
        assert_eq!(contiguous, gathered);
        // a permuted gather picks the same records in a different order
        let permuted = gather_4x4_tr(
            &src,
            [5 * stride, 2 * stride, 3 * stride, 4 * stride],
        );
        for f in 0..4 {
            assert_eq!(permuted[f].lane(0), contiguous[f].lane(3));
        }
    }
}
