//! Ad hoc 4-lane SIMD: the VPIC 1.2 `v4float` class reproduced with
//! `std::arch` intrinsics.
//!
//! On x86-64 every operation maps to an SSE instruction (SSE2 is part of
//! the x86-64 baseline, so no runtime dispatch is needed); on other
//! targets a scalar fallback with identical semantics is compiled — which
//! is precisely the paper's point about ad hoc libraries: the fast path
//! exists only where someone hand-wrote it (Figure 1's per-ISA code
//! bodies), and VPIC 1.2 carries five such implementations.
//!
//! Note [`V4F32::rsqrt`] follows VPIC 1.2: the hardware estimate
//! (`rsqrtps`, ~12 bits) refined by one Newton–Raphson step (~23 bits) —
//! faster but *not* bit-identical to `1.0 / x.sqrt()`.

// SAFETY of the `unsafe` blocks below: SSE2 is part of the x86-64
// baseline, so the intrinsics are always available on this cfg; the only
// memory-touching intrinsics (`_mm_loadu_ps`/`_mm_storeu_ps`) are guarded
// by explicit slice bounds assertions at their call sites and tolerate
// any alignment.
#[cfg(target_arch = "x86_64")]
use std::arch::x86_64::*;

/// Four packed `f32` lanes backed by an SSE register on x86-64.
#[derive(Clone, Copy)]
pub struct V4F32(
    #[cfg(target_arch = "x86_64")] __m128,
    #[cfg(not(target_arch = "x86_64"))] [f32; 4],
);

#[cfg(target_arch = "x86_64")]
impl V4F32 {
    /// All lanes set to `v`.
    #[inline(always)]
    pub fn splat(v: f32) -> Self {
        unsafe { Self(_mm_set1_ps(v)) }
    }

    /// All lanes zero.
    #[inline(always)]
    pub fn zero() -> Self {
        unsafe { Self(_mm_setzero_ps()) }
    }

    /// Load 4 contiguous floats from `src[offset..]` (unaligned load).
    #[inline(always)]
    pub fn load(src: &[f32], offset: usize) -> Self {
        assert!(offset + 4 <= src.len(), "V4F32::load out of bounds");
        unsafe { Self(_mm_loadu_ps(src.as_ptr().add(offset))) }
    }

    /// Store 4 lanes into `dst[offset..]` (unaligned store).
    #[inline(always)]
    pub fn store(self, dst: &mut [f32], offset: usize) {
        assert!(offset + 4 <= dst.len(), "V4F32::store out of bounds");
        unsafe { _mm_storeu_ps(dst.as_mut_ptr().add(offset), self.0) }
    }

    /// Lane-wise addition (`addps`).
    #[inline(always)]
    pub fn add(self, rhs: Self) -> Self {
        unsafe { Self(_mm_add_ps(self.0, rhs.0)) }
    }

    /// Lane-wise subtraction (`subps`).
    #[inline(always)]
    pub fn sub(self, rhs: Self) -> Self {
        unsafe { Self(_mm_sub_ps(self.0, rhs.0)) }
    }

    /// Lane-wise multiplication (`mulps`).
    #[inline(always)]
    pub fn mul(self, rhs: Self) -> Self {
        unsafe { Self(_mm_mul_ps(self.0, rhs.0)) }
    }

    /// Lane-wise division (`divps`).
    #[inline(always)]
    pub fn div(self, rhs: Self) -> Self {
        unsafe { Self(_mm_div_ps(self.0, rhs.0)) }
    }

    /// `self * b + c` (`mulps` + `addps`; SSE has no FMA).
    #[inline(always)]
    pub fn fma(self, b: Self, c: Self) -> Self {
        self.mul(b).add(c)
    }

    /// Lane-wise square root (`sqrtps`).
    #[inline(always)]
    pub fn sqrt(self) -> Self {
        unsafe { Self(_mm_sqrt_ps(self.0)) }
    }

    /// Fast reciprocal square root: `rsqrtps` estimate + one
    /// Newton–Raphson refinement (the VPIC 1.2 recipe).
    #[inline(always)]
    pub fn rsqrt(self) -> Self {
        unsafe {
            let est = _mm_rsqrt_ps(self.0);
            // y1 = y0 * (1.5 - 0.5 * x * y0 * y0)
            let half = _mm_set1_ps(0.5);
            let three_halves = _mm_set1_ps(1.5);
            let y2 = _mm_mul_ps(est, est);
            let xh = _mm_mul_ps(self.0, half);
            let corr = _mm_sub_ps(three_halves, _mm_mul_ps(xh, y2));
            Self(_mm_mul_ps(est, corr))
        }
    }

    /// Lane-wise minimum (`minps`).
    #[inline(always)]
    pub fn min(self, rhs: Self) -> Self {
        unsafe { Self(_mm_min_ps(self.0, rhs.0)) }
    }

    /// Lane-wise maximum (`maxps`).
    #[inline(always)]
    pub fn max(self, rhs: Self) -> Self {
        unsafe { Self(_mm_max_ps(self.0, rhs.0)) }
    }

    /// Extract all lanes.
    #[inline(always)]
    pub fn to_array(self) -> [f32; 4] {
        let mut out = [0.0f32; 4];
        unsafe { _mm_storeu_ps(out.as_mut_ptr(), self.0) };
        out
    }

    /// Build from an array.
    #[inline(always)]
    pub fn from_array(a: [f32; 4]) -> Self {
        unsafe { Self(_mm_loadu_ps(a.as_ptr())) }
    }

    /// In-register 4×4 transpose (`_MM_TRANSPOSE4_PS`), the ad hoc
    /// counterpart of [`crate::transpose::transpose_4x4`].
    #[inline(always)]
    pub fn transpose(rows: [Self; 4]) -> [Self; 4] {
        unsafe {
            let mut r0 = rows[0].0;
            let mut r1 = rows[1].0;
            let mut r2 = rows[2].0;
            let mut r3 = rows[3].0;
            _MM_TRANSPOSE4_PS(&mut r0, &mut r1, &mut r2, &mut r3);
            [Self(r0), Self(r1), Self(r2), Self(r3)]
        }
    }
}

#[cfg(not(target_arch = "x86_64"))]
impl V4F32 {
    /// All lanes set to `v`.
    #[inline(always)]
    pub fn splat(v: f32) -> Self {
        Self([v; 4])
    }

    /// All lanes zero.
    #[inline(always)]
    pub fn zero() -> Self {
        Self::splat(0.0)
    }

    /// Load 4 contiguous floats.
    #[inline(always)]
    pub fn load(src: &[f32], offset: usize) -> Self {
        let mut out = [0.0f32; 4];
        out.copy_from_slice(&src[offset..offset + 4]);
        Self(out)
    }

    /// Store 4 lanes.
    #[inline(always)]
    pub fn store(self, dst: &mut [f32], offset: usize) {
        dst[offset..offset + 4].copy_from_slice(&self.0);
    }

    /// Lane-wise addition.
    #[inline(always)]
    pub fn add(self, rhs: Self) -> Self {
        let mut o = [0.0; 4];
        for l in 0..4 {
            o[l] = self.0[l] + rhs.0[l];
        }
        Self(o)
    }

    /// Lane-wise subtraction.
    #[inline(always)]
    pub fn sub(self, rhs: Self) -> Self {
        let mut o = [0.0; 4];
        for l in 0..4 {
            o[l] = self.0[l] - rhs.0[l];
        }
        Self(o)
    }

    /// Lane-wise multiplication.
    #[inline(always)]
    pub fn mul(self, rhs: Self) -> Self {
        let mut o = [0.0; 4];
        for l in 0..4 {
            o[l] = self.0[l] * rhs.0[l];
        }
        Self(o)
    }

    /// Lane-wise division.
    #[inline(always)]
    pub fn div(self, rhs: Self) -> Self {
        let mut o = [0.0; 4];
        for l in 0..4 {
            o[l] = self.0[l] / rhs.0[l];
        }
        Self(o)
    }

    /// `self * b + c`.
    #[inline(always)]
    pub fn fma(self, b: Self, c: Self) -> Self {
        self.mul(b).add(c)
    }

    /// Lane-wise square root.
    #[inline(always)]
    pub fn sqrt(self) -> Self {
        let mut o = [0.0; 4];
        for l in 0..4 {
            o[l] = self.0[l].sqrt();
        }
        Self(o)
    }

    /// Reciprocal square root (exact on the fallback path).
    #[inline(always)]
    pub fn rsqrt(self) -> Self {
        let mut o = [0.0; 4];
        for l in 0..4 {
            o[l] = 1.0 / self.0[l].sqrt();
        }
        Self(o)
    }

    /// Lane-wise minimum.
    #[inline(always)]
    pub fn min(self, rhs: Self) -> Self {
        let mut o = [0.0; 4];
        for l in 0..4 {
            o[l] = self.0[l].min(rhs.0[l]);
        }
        Self(o)
    }

    /// Lane-wise maximum.
    #[inline(always)]
    pub fn max(self, rhs: Self) -> Self {
        let mut o = [0.0; 4];
        for l in 0..4 {
            o[l] = self.0[l].max(rhs.0[l]);
        }
        Self(o)
    }

    /// Extract all lanes.
    #[inline(always)]
    pub fn to_array(self) -> [f32; 4] {
        self.0
    }

    /// Build from an array.
    #[inline(always)]
    pub fn from_array(a: [f32; 4]) -> Self {
        Self(a)
    }

    /// 4×4 transpose.
    #[inline(always)]
    pub fn transpose(rows: [Self; 4]) -> [Self; 4] {
        let mut out = [[0.0f32; 4]; 4];
        for r in 0..4 {
            for c in 0..4 {
                out[c][r] = rows[r].0[c];
            }
        }
        [Self(out[0]), Self(out[1]), Self(out[2]), Self(out[3])]
    }
}

impl std::fmt::Debug for V4F32 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "V4F32({:?})", self.to_array())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splat_and_roundtrip() {
        let v = V4F32::splat(3.25);
        assert_eq!(v.to_array(), [3.25; 4]);
        let a = [1.0f32, 2.0, 3.0, 4.0];
        assert_eq!(V4F32::from_array(a).to_array(), a);
        assert_eq!(V4F32::zero().to_array(), [0.0; 4]);
    }

    #[test]
    fn load_store_unaligned_offsets() {
        let src: Vec<f32> = (0..16).map(|i| i as f32).collect();
        for off in 0..12 {
            let v = V4F32::load(&src, off);
            let mut dst = vec![0.0f32; 16];
            v.store(&mut dst, off);
            assert_eq!(&dst[off..off + 4], &src[off..off + 4]);
        }
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn load_out_of_bounds_panics() {
        let src = vec![0.0f32; 6];
        let _ = V4F32::load(&src, 3);
    }

    #[test]
    fn arithmetic_matches_scalar() {
        let a = V4F32::from_array([1.0, 2.0, 3.0, 4.0]);
        let b = V4F32::from_array([0.5, 0.25, 2.0, -1.0]);
        assert_eq!(a.add(b).to_array(), [1.5, 2.25, 5.0, 3.0]);
        assert_eq!(a.sub(b).to_array(), [0.5, 1.75, 1.0, 5.0]);
        assert_eq!(a.mul(b).to_array(), [0.5, 0.5, 6.0, -4.0]);
        assert_eq!(a.div(b).to_array(), [2.0, 8.0, 1.5, -4.0]);
        assert_eq!(a.fma(b, V4F32::splat(1.0)).to_array(), [1.5, 1.5, 7.0, -3.0]);
        assert_eq!(a.min(b).to_array(), [0.5, 0.25, 2.0, -1.0]);
        assert_eq!(a.max(b).to_array(), [1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn sqrt_exact_rsqrt_approximate() {
        let v = V4F32::from_array([1.0, 4.0, 9.0, 16.0]);
        assert_eq!(v.sqrt().to_array(), [1.0, 2.0, 3.0, 4.0]);
        let r = v.rsqrt().to_array();
        let want = [1.0, 0.5, 1.0 / 3.0, 0.25];
        for l in 0..4 {
            let rel = ((r[l] - want[l]) / want[l]).abs();
            assert!(rel < 1e-5, "lane {l}: {} vs {}, rel {rel}", r[l], want[l]);
        }
    }

    #[test]
    fn transpose_matches_portable() {
        let rows = [
            V4F32::from_array([0.0, 1.0, 2.0, 3.0]),
            V4F32::from_array([10.0, 11.0, 12.0, 13.0]),
            V4F32::from_array([20.0, 21.0, 22.0, 23.0]),
            V4F32::from_array([30.0, 31.0, 32.0, 33.0]),
        ];
        let t = V4F32::transpose(rows);
        for r in 0..4 {
            for c in 0..4 {
                assert_eq!(t[c].to_array()[r], rows[r].to_array()[c]);
            }
        }
    }
}
