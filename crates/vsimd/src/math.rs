//! Vector-friendly math functions.
//!
//! Transcendental calls (`exp`, `sin`, …) are the canonical
//! auto-vectorization breakers the paper highlights for the PLANCKIAN
//! kernel: compilers either scalarize them or need a vector math library.
//! Here we provide range-reduced polynomial `exp` approximations whose
//! bodies are straight-line FMA chains — exactly the shape that vectorizes
//! when called lane-wise from [`crate::simd`] types, and the shape the
//! *guided* strategy splits into its own loop.

use crate::simd::{SimdF32, SimdF64};

/// Fused multiply-add that never falls back to the (catastrophically
/// slow) software `fma()` libm routine: on targets with a hardware FMA
/// unit it contracts, elsewhere it compiles to separate multiply+add.
#[inline(always)]
pub fn fma_f32(a: f32, b: f32, c: f32) -> f32 {
    if cfg!(target_feature = "fma") {
        a.mul_add(b, c)
    } else {
        a * b + c
    }
}

/// `f64` twin of [`fma_f32`].
#[inline(always)]
pub fn fma_f64(a: f64, b: f64, c: f64) -> f64 {
    if cfg!(target_feature = "fma") {
        a.mul_add(b, c)
    } else {
        a * b + c
    }
}

/// Fast `exp` for `f32`, accurate to ~2 ulp over `[-87, 88]`.
///
/// Range reduction `x = k·ln2 + r` with `|r| ≤ ln2/2`, then a degree-6
/// polynomial for `exp(r)` and an exponent-field reconstruction of `2^k`.
#[inline(always)]
pub fn fast_exp_f32(x: f32) -> f32 {
    // clamp to the representable range to avoid NaN from the bit tricks
    let x = x.clamp(-87.0, 88.0);
    const LOG2E: f32 = std::f32::consts::LOG2_E;
    const LN2_HI: f32 = 0.693_145_75;
    const LN2_LO: f32 = 1.428_606_8e-6;
    let k = (x * LOG2E).round();
    let r = x - k * LN2_HI - k * LN2_LO;
    // exp(r) ~= 1 + r + r^2/2! + ... + r^6/6!  (Horner, FMA-friendly)
    let p = 1.0f32 / 720.0;
    let p = fma_f32(p, r, 1.0 / 120.0);
    let p = fma_f32(p, r, 1.0 / 24.0);
    let p = fma_f32(p, r, 1.0 / 6.0);
    let p = fma_f32(p, r, 0.5);
    let p = fma_f32(p, r, 1.0);
    let p = fma_f32(p, r, 1.0);
    // 2^k via exponent bits
    let two_k = f32::from_bits((((k as i32) + 127) as u32) << 23);
    p * two_k
}

/// Fast `exp` for `f64`, accurate to ~1e-13 relative over `[-700, 700]`.
#[inline(always)]
pub fn fast_exp_f64(x: f64) -> f64 {
    let x = x.clamp(-700.0, 700.0);
    const LOG2E: f64 = std::f64::consts::LOG2_E;
    const LN2_HI: f64 = 0.693_147_180_369_123_8;
    const LN2_LO: f64 = 1.908_214_929_270_587_7e-10;
    let k = (x * LOG2E).round();
    let r = x - k * LN2_HI - k * LN2_LO;
    // degree-10 Taylor via Horner
    let mut p = 1.0f64 / 3_628_800.0;
    for c in [
        1.0 / 362_880.0,
        1.0 / 40_320.0,
        1.0 / 5_040.0,
        1.0 / 720.0,
        1.0 / 120.0,
        1.0 / 24.0,
        1.0 / 6.0,
        0.5,
        1.0,
        1.0,
    ] {
        p = fma_f64(p, r, c);
    }
    let two_k = f64::from_bits((((k as i64) + 1023) as u64) << 52);
    p * two_k
}

impl<const N: usize> SimdF32<N> {
    /// Lane-wise fast `exp` (see [`fast_exp_f32`]).
    #[inline(always)]
    pub fn exp(self) -> Self {
        let mut out = [0.0f32; N];
        for l in 0..N {
            out[l] = fast_exp_f32(self.0[l]);
        }
        Self(out)
    }
}

impl<const N: usize> SimdF64<N> {
    /// Lane-wise fast `exp` (see [`fast_exp_f64`]).
    #[inline(always)]
    pub fn exp(self) -> Self {
        let mut out = [0.0f64; N];
        for l in 0..N {
            out[l] = fast_exp_f64(self.0[l]);
        }
        Self(out)
    }
}

/// `expm1`-style helper used by the PLANCKIAN kernel: `exp(x) - 1`, with
/// the naive formulation the kernel actually benchmarks (the paper's
/// kernel divides by `exp(v) - 1`, not by `expm1`).
#[inline(always)]
pub fn exp_minus_one_f64(x: f64) -> f64 {
    fast_exp_f64(x) - 1.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fast_exp_f32_matches_std_to_tolerance() {
        for i in -870..=880 {
            let x = i as f32 / 10.0;
            let got = fast_exp_f32(x);
            let want = x.exp();
            let rel = if want == 0.0 { got.abs() } else { ((got - want) / want).abs() };
            assert!(rel < 3e-6, "x={x}: got {got}, want {want}, rel {rel}");
        }
    }

    #[test]
    fn fast_exp_f64_matches_std_to_tolerance() {
        for i in -7000..=7000 {
            let x = i as f64 / 10.0;
            let got = fast_exp_f64(x);
            let want = x.exp();
            let rel = ((got - want) / want).abs();
            assert!(rel < 1e-12, "x={x}: rel {rel}");
        }
    }

    #[test]
    fn exp_handles_extremes_without_nan() {
        assert!(fast_exp_f32(-1000.0).is_finite());
        assert!(fast_exp_f32(1000.0).is_finite());
        assert!(fast_exp_f64(-10_000.0).is_finite());
        assert!(fast_exp_f64(10_000.0).is_finite());
        assert_eq!(fast_exp_f32(0.0), 1.0);
        assert_eq!(fast_exp_f64(0.0), 1.0);
    }

    #[test]
    fn simd_exp_is_lanewise() {
        let v = SimdF32::<8>::from([0.0, 1.0, -1.0, 2.0, 0.5, -0.5, 3.0, -3.0]);
        let e = v.exp();
        for l in 0..8 {
            assert_eq!(e.lane(l), fast_exp_f32(v.lane(l)));
        }
        let w = SimdF64::<4>::from([0.0, 1.0, -2.0, 5.0]);
        let e = w.exp();
        for l in 0..4 {
            assert_eq!(e.lane(l), fast_exp_f64(w.lane(l)));
        }
    }

    #[test]
    fn exp_minus_one_basic() {
        assert!((exp_minus_one_f64(0.0)).abs() < 1e-15);
        assert!((exp_minus_one_f64(1.0) - (std::f64::consts::E - 1.0)).abs() < 1e-12);
    }
}
