//! Runtime-dispatched AVX2 slice kernels: the "wide" half of the ad hoc
//! strategy.
//!
//! Where [`crate::v4`] reproduces VPIC 1.2's fixed-width `v4` classes,
//! this module reproduces its wider per-ISA code paths (v8/AVX2 in the
//! original): whole-slice kernels hand-written with 256-bit intrinsics and
//! selected at runtime with CPU feature detection, falling back to the
//! portable implementation elsewhere. The duplication between this module
//! and the portable code is deliberate — it *is* the engineering burden
//! Figure 1 quantifies.

/// True when the running CPU can take the AVX2+FMA fast paths.
pub fn avx2_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// `y[i] += a * x[i]` with hand-written AVX2 where available.
pub fn axpy_f32(a: f32, x: &[f32], y: &mut [f32]) {
    assert_eq!(x.len(), y.len(), "axpy length mismatch");
    #[cfg(target_arch = "x86_64")]
    {
        if avx2_available() {
            // SAFETY: feature presence checked above
            unsafe { axpy_f32_avx2(a, x, y) };
            return;
        }
    }
    axpy_f32_fallback(a, x, y);
}

fn axpy_f32_fallback(a: f32, x: &[f32], y: &mut [f32]) {
    for (yi, &xi) in y.iter_mut().zip(x) {
        *yi += a * xi;
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn axpy_f32_avx2(a: f32, x: &[f32], y: &mut [f32]) {
    use std::arch::x86_64::*;
    let n = x.len();
    let main = n - n % 8;
    let av = _mm256_set1_ps(a);
    let xp = x.as_ptr();
    let yp = y.as_mut_ptr();
    let mut i = 0;
    while i < main {
        let xv = _mm256_loadu_ps(xp.add(i));
        let yv = _mm256_loadu_ps(yp.add(i));
        _mm256_storeu_ps(yp.add(i), _mm256_fmadd_ps(av, xv, yv));
        i += 8;
    }
    axpy_f32_fallback(a, &x[main..], &mut y[main..]);
}

/// Dot product `sum(x[i] * y[i])` with hand-written AVX2 where available.
///
/// Accumulates in 8 independent lanes, so results match the portable
/// chunk-reduced version, not the strictly sequential fold.
pub fn dot_f64(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "dot length mismatch");
    #[cfg(target_arch = "x86_64")]
    {
        if avx2_available() {
            // SAFETY: feature presence checked above
            return unsafe { dot_f64_avx2(x, y) };
        }
    }
    dot_f64_fallback(x, y)
}

fn dot_f64_fallback(x: &[f64], y: &[f64]) -> f64 {
    let mut acc = [0.0f64; 4];
    let n = x.len();
    let main = n - n % 4;
    let mut i = 0;
    while i < main {
        for l in 0..4 {
            acc[l] += x[i + l] * y[i + l];
        }
        i += 4;
    }
    let mut total = acc[0] + acc[1] + acc[2] + acc[3];
    for k in main..n {
        total += x[k] * y[k];
    }
    total
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn dot_f64_avx2(x: &[f64], y: &[f64]) -> f64 {
    use std::arch::x86_64::*;
    let n = x.len();
    let main = n - n % 4;
    let mut acc = _mm256_setzero_pd();
    let xp = x.as_ptr();
    let yp = y.as_ptr();
    let mut i = 0;
    while i < main {
        let xv = _mm256_loadu_pd(xp.add(i));
        let yv = _mm256_loadu_pd(yp.add(i));
        acc = _mm256_fmadd_pd(xv, yv, acc);
        i += 4;
    }
    let mut lanes = [0.0f64; 4];
    _mm256_storeu_pd(lanes.as_mut_ptr(), acc);
    let mut total = lanes[0] + lanes[1] + lanes[2] + lanes[3];
    for k in main..n {
        total += x[k] * y[k];
    }
    total
}

/// Gather `out[i] = src[idx[i]]` with AVX2 `vgatherdps` where available.
pub fn gather_f32(src: &[f32], idx: &[u32], out: &mut [f32]) {
    assert_eq!(idx.len(), out.len(), "gather length mismatch");
    #[cfg(target_arch = "x86_64")]
    {
        if avx2_available() {
            // bounds check the whole index set once, then go unchecked
            let max = idx.iter().copied().max().unwrap_or(0) as usize;
            assert!(idx.is_empty() || max < src.len(), "gather index out of range");
            // SAFETY: features checked; indices validated above
            unsafe { gather_f32_avx2(src, idx, out) };
            return;
        }
    }
    gather_f32_fallback(src, idx, out);
}

fn gather_f32_fallback(src: &[f32], idx: &[u32], out: &mut [f32]) {
    for (o, &i) in out.iter_mut().zip(idx) {
        *o = src[i as usize];
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn gather_f32_avx2(src: &[f32], idx: &[u32], out: &mut [f32]) {
    use std::arch::x86_64::*;
    let n = idx.len();
    let main = n - n % 8;
    let sp = src.as_ptr();
    let mut i = 0;
    while i < main {
        let iv = _mm256_loadu_si256(idx.as_ptr().add(i) as *const __m256i);
        let g = _mm256_i32gather_ps::<4>(sp, iv);
        _mm256_storeu_ps(out.as_mut_ptr().add(i), g);
        i += 8;
    }
    gather_f32_fallback(src, &idx[main..], &mut out[main..]);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn axpy_matches_reference_all_lengths() {
        for n in [0usize, 1, 7, 8, 9, 63, 64, 100] {
            let x: Vec<f32> = (0..n).map(|i| i as f32 * 0.5).collect();
            let mut y: Vec<f32> = (0..n).map(|i| i as f32).collect();
            let mut want = y.clone();
            axpy_f32(2.0, &x, &mut y);
            for (w, &xi) in want.iter_mut().zip(&x) {
                *w += 2.0 * xi;
            }
            assert_eq!(y, want, "n={n}");
        }
    }

    #[test]
    fn dot_matches_reference() {
        for n in [0usize, 1, 3, 4, 5, 33, 128] {
            let x: Vec<f64> = (0..n).map(|i| (i as f64).cos()).collect();
            let y: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();
            let want: f64 = x.iter().zip(&y).map(|(a, b)| a * b).sum();
            let got = dot_f64(&x, &y);
            assert!((got - want).abs() < 1e-10, "n={n}: {got} vs {want}");
        }
    }

    #[test]
    fn gather_matches_reference() {
        let src: Vec<f32> = (0..100).map(|i| (i * 3) as f32).collect();
        for n in [0usize, 1, 8, 9, 25] {
            let idx: Vec<u32> = (0..n).map(|i| ((i * 37) % 100) as u32).collect();
            let mut out = vec![0.0f32; n];
            gather_f32(&src, &idx, &mut out);
            for (k, &i) in idx.iter().enumerate() {
                assert_eq!(out[k], src[i as usize]);
            }
        }
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn axpy_checks_lengths() {
        let x = vec![0.0f32; 4];
        let mut y = vec![0.0f32; 5];
        axpy_f32(1.0, &x, &mut y);
    }

    #[test]
    fn feature_detection_is_stable() {
        // calling twice gives the same answer (detection is cached)
        assert_eq!(avx2_available(), avx2_available());
    }
}
