//! Portable fixed-lane SIMD value types (the Kokkos SIMD analog).
//!
//! `Simd*<N>` wraps `[T; N]` and implements element-wise arithmetic with
//! fully unrolled fixed-trip-count loops — the shape LLVM reliably lowers
//! to vector instructions at `opt-level=3`. This is the *manual*
//! vectorization strategy: lane count and operations are explicit in the
//! source, but no per-ISA intrinsics appear (contrast [`crate::v4`]).

use crate::mask::Mask;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

macro_rules! define_float_simd {
    ($name:ident, $elem:ty, $ielem:ty, $doc:literal) => {
        #[doc = $doc]
        #[derive(Debug, Clone, Copy, PartialEq)]
        #[repr(transparent)]
        pub struct $name<const N: usize>(pub [$elem; N]);

        impl<const N: usize> $name<N> {
            /// All lanes set to `v` (`simd::splat`).
            #[inline(always)]
            pub fn splat(v: $elem) -> Self {
                Self([v; N])
            }

            /// All lanes zero.
            #[inline(always)]
            pub fn zero() -> Self {
                Self::splat(0.0)
            }

            /// Load `N` contiguous elements from `src` starting at `offset`.
            ///
            /// # Panics
            /// Panics if `src[offset..offset + N]` is out of bounds.
            #[inline(always)]
            pub fn load(src: &[$elem], offset: usize) -> Self {
                let mut out = [0.0; N];
                out.copy_from_slice(&src[offset..offset + N]);
                Self(out)
            }

            /// Store all lanes contiguously into `dst` at `offset`.
            #[inline(always)]
            pub fn store(self, dst: &mut [$elem], offset: usize) {
                dst[offset..offset + N].copy_from_slice(&self.0);
            }

            /// Gather `src[idx[lane]]` into each lane (`simd::gather_from`).
            #[inline(always)]
            pub fn gather(src: &[$elem], idx: &[usize; N]) -> Self {
                let mut out = [0.0; N];
                for l in 0..N {
                    out[l] = src[idx[l]];
                }
                Self(out)
            }

            /// Scatter each lane to `dst[idx[lane]]`. Lanes with duplicate
            /// indices write in ascending lane order (last lane wins).
            #[inline(always)]
            pub fn scatter(self, dst: &mut [$elem], idx: &[usize; N]) {
                for l in 0..N {
                    dst[idx[l]] = self.0[l];
                }
            }

            /// Read one lane.
            #[inline(always)]
            pub fn lane(self, l: usize) -> $elem {
                self.0[l]
            }

            /// Multiply-add: `self * b + c` lane-wise. On targets with a
            /// hardware FMA unit this contracts to one fused instruction
            /// (single rounding, the scalar `mul_add` contract); elsewhere
            /// it compiles to separate multiply + add (two roundings)
            /// rather than the catastrophically slow software `fma()`
            /// libm routine — same policy as [`crate::math::fma_f32`].
            /// The manual strategy must never codegen slower than auto.
            #[inline(always)]
            pub fn mul_add(self, b: Self, c: Self) -> Self {
                let mut out = [0.0; N];
                for l in 0..N {
                    out[l] = if cfg!(target_feature = "fma") {
                        self.0[l].mul_add(b.0[l], c.0[l])
                    } else {
                        self.0[l] * b.0[l] + c.0[l]
                    };
                }
                Self(out)
            }

            /// Lane-wise square root.
            #[inline(always)]
            pub fn sqrt(self) -> Self {
                let mut out = [0.0; N];
                for l in 0..N {
                    out[l] = self.0[l].sqrt();
                }
                Self(out)
            }

            /// Lane-wise reciprocal.
            #[inline(always)]
            pub fn recip(self) -> Self {
                let mut out = [0.0; N];
                for l in 0..N {
                    out[l] = 1.0 / self.0[l];
                }
                Self(out)
            }

            /// Lane-wise reciprocal square root.
            #[inline(always)]
            pub fn rsqrt(self) -> Self {
                let mut out = [0.0; N];
                for l in 0..N {
                    out[l] = 1.0 / self.0[l].sqrt();
                }
                Self(out)
            }

            /// Lane-wise absolute value.
            #[inline(always)]
            pub fn abs(self) -> Self {
                let mut out = [0.0; N];
                for l in 0..N {
                    out[l] = self.0[l].abs();
                }
                Self(out)
            }

            /// Lane-wise minimum.
            #[inline(always)]
            pub fn min(self, other: Self) -> Self {
                let mut out = [0.0; N];
                for l in 0..N {
                    out[l] = self.0[l].min(other.0[l]);
                }
                Self(out)
            }

            /// Lane-wise maximum.
            #[inline(always)]
            pub fn max(self, other: Self) -> Self {
                let mut out = [0.0; N];
                for l in 0..N {
                    out[l] = self.0[l].max(other.0[l]);
                }
                Self(out)
            }

            /// Horizontal sum of all lanes (`simd::reduce`).
            #[inline(always)]
            pub fn reduce_sum(self) -> $elem {
                // pairwise tree reduction: deterministic and vector-friendly
                let mut vals = self.0;
                let mut n = N;
                while n > 1 {
                    let half = n / 2;
                    for l in 0..half {
                        vals[l] += vals[l + half];
                    }
                    if n % 2 == 1 {
                        vals[0] += vals[n - 1];
                    }
                    n = half;
                }
                vals[0]
            }

            /// Horizontal minimum of all lanes.
            #[inline(always)]
            pub fn reduce_min(self) -> $elem {
                self.0.iter().copied().fold(<$elem>::INFINITY, <$elem>::min)
            }

            /// Horizontal maximum of all lanes.
            #[inline(always)]
            pub fn reduce_max(self) -> $elem {
                self.0.iter().copied().fold(<$elem>::NEG_INFINITY, <$elem>::max)
            }

            /// Lane-wise `self < other` mask.
            #[inline(always)]
            pub fn lt(self, other: Self) -> Mask<N> {
                let mut m = [false; N];
                for l in 0..N {
                    m[l] = self.0[l] < other.0[l];
                }
                Mask(m)
            }

            /// Lane-wise `self <= other` mask.
            #[inline(always)]
            pub fn le(self, other: Self) -> Mask<N> {
                let mut m = [false; N];
                for l in 0..N {
                    m[l] = self.0[l] <= other.0[l];
                }
                Mask(m)
            }

            /// Lane-wise `self > other` mask.
            #[inline(always)]
            pub fn gt(self, other: Self) -> Mask<N> {
                let mut m = [false; N];
                for l in 0..N {
                    m[l] = self.0[l] > other.0[l];
                }
                Mask(m)
            }

            /// Lane-wise `self >= other` mask.
            #[inline(always)]
            pub fn ge(self, other: Self) -> Mask<N> {
                let mut m = [false; N];
                for l in 0..N {
                    m[l] = self.0[l] >= other.0[l];
                }
                Mask(m)
            }

            /// Blend: lane from `self` where the mask is set, else from
            /// `other` (`simd::simd_select`). This is how branches are
            /// vectorized (paper: "SIMD masks for handling branches").
            #[inline(always)]
            pub fn select(mask: Mask<N>, a: Self, b: Self) -> Self {
                let mut out = [0.0; N];
                for l in 0..N {
                    out[l] = if mask.0[l] { a.0[l] } else { b.0[l] };
                }
                Self(out)
            }

            /// Truncate each lane toward zero and convert to `i32` lanes.
            #[inline(always)]
            pub fn to_int(self) -> SimdI32<N> {
                let mut out = [0i32; N];
                for l in 0..N {
                    out[l] = self.0[l] as i32;
                }
                SimdI32(out)
            }
        }

        impl<const N: usize> Default for $name<N> {
            fn default() -> Self {
                Self::zero()
            }
        }

        impl<const N: usize> Add for $name<N> {
            type Output = Self;
            #[inline(always)]
            fn add(self, rhs: Self) -> Self {
                let mut out = [0.0; N];
                for l in 0..N {
                    out[l] = self.0[l] + rhs.0[l];
                }
                Self(out)
            }
        }

        impl<const N: usize> Sub for $name<N> {
            type Output = Self;
            #[inline(always)]
            fn sub(self, rhs: Self) -> Self {
                let mut out = [0.0; N];
                for l in 0..N {
                    out[l] = self.0[l] - rhs.0[l];
                }
                Self(out)
            }
        }

        impl<const N: usize> Mul for $name<N> {
            type Output = Self;
            #[inline(always)]
            fn mul(self, rhs: Self) -> Self {
                let mut out = [0.0; N];
                for l in 0..N {
                    out[l] = self.0[l] * rhs.0[l];
                }
                Self(out)
            }
        }

        impl<const N: usize> Div for $name<N> {
            type Output = Self;
            #[inline(always)]
            fn div(self, rhs: Self) -> Self {
                let mut out = [0.0; N];
                for l in 0..N {
                    out[l] = self.0[l] / rhs.0[l];
                }
                Self(out)
            }
        }

        impl<const N: usize> Neg for $name<N> {
            type Output = Self;
            #[inline(always)]
            fn neg(self) -> Self {
                let mut out = [0.0; N];
                for l in 0..N {
                    out[l] = -self.0[l];
                }
                Self(out)
            }
        }

        impl<const N: usize> AddAssign for $name<N> {
            #[inline(always)]
            fn add_assign(&mut self, rhs: Self) {
                *self = *self + rhs;
            }
        }

        impl<const N: usize> SubAssign for $name<N> {
            #[inline(always)]
            fn sub_assign(&mut self, rhs: Self) {
                *self = *self - rhs;
            }
        }

        impl<const N: usize> MulAssign for $name<N> {
            #[inline(always)]
            fn mul_assign(&mut self, rhs: Self) {
                *self = *self * rhs;
            }
        }

        impl<const N: usize> Mul<$elem> for $name<N> {
            type Output = Self;
            #[inline(always)]
            fn mul(self, rhs: $elem) -> Self {
                self * Self::splat(rhs)
            }
        }

        impl<const N: usize> Add<$elem> for $name<N> {
            type Output = Self;
            #[inline(always)]
            fn add(self, rhs: $elem) -> Self {
                self + Self::splat(rhs)
            }
        }

        impl<const N: usize> From<[$elem; N]> for $name<N> {
            fn from(v: [$elem; N]) -> Self {
                Self(v)
            }
        }

        #[allow(unused)]
        const _: () = {
            // ensure the int lane type matches
            let _ = std::mem::size_of::<$ielem>();
        };
    };
}

define_float_simd!(
    SimdF32,
    f32,
    i32,
    "Portable `f32` SIMD vector with `N` lanes (Kokkos `simd<float, N>` analog)."
);
define_float_simd!(
    SimdF64,
    f64,
    i64,
    "Portable `f64` SIMD vector with `N` lanes (Kokkos `simd<double, N>` analog)."
);

/// Portable `i32` SIMD vector with `N` lanes (cell indices, particle ids).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(transparent)]
pub struct SimdI32<const N: usize>(pub [i32; N]);

impl<const N: usize> SimdI32<N> {
    /// All lanes set to `v`.
    #[inline(always)]
    pub fn splat(v: i32) -> Self {
        Self([v; N])
    }

    /// All lanes zero.
    #[inline(always)]
    pub fn zero() -> Self {
        Self::splat(0)
    }

    /// Load `N` contiguous values.
    #[inline(always)]
    pub fn load(src: &[i32], offset: usize) -> Self {
        let mut out = [0; N];
        out.copy_from_slice(&src[offset..offset + N]);
        Self(out)
    }

    /// Store `N` contiguous values.
    #[inline(always)]
    pub fn store(self, dst: &mut [i32], offset: usize) {
        dst[offset..offset + N].copy_from_slice(&self.0);
    }

    /// Read one lane.
    #[inline(always)]
    pub fn lane(self, l: usize) -> i32 {
        self.0[l]
    }

    /// Lanes as gather/scatter indices.
    ///
    /// # Panics
    /// Panics in debug builds if any lane is negative.
    #[inline(always)]
    pub fn as_indices(self) -> [usize; N] {
        let mut out = [0usize; N];
        for l in 0..N {
            debug_assert!(self.0[l] >= 0, "negative index lane");
            out[l] = self.0[l] as usize;
        }
        out
    }

    /// Lane-wise equality mask.
    #[inline(always)]
    pub fn eq_lanes(self, other: Self) -> Mask<N> {
        let mut m = [false; N];
        for l in 0..N {
            m[l] = self.0[l] == other.0[l];
        }
        Mask(m)
    }

    /// Convert lanes to `f32`.
    #[inline(always)]
    pub fn to_f32(self) -> SimdF32<N> {
        let mut out = [0.0f32; N];
        for l in 0..N {
            out[l] = self.0[l] as f32;
        }
        SimdF32(out)
    }
}

impl<const N: usize> Add for SimdI32<N> {
    type Output = Self;
    #[inline(always)]
    fn add(self, rhs: Self) -> Self {
        let mut out = [0; N];
        for l in 0..N {
            out[l] = self.0[l].wrapping_add(rhs.0[l]);
        }
        Self(out)
    }
}

impl<const N: usize> Mul for SimdI32<N> {
    type Output = Self;
    #[inline(always)]
    fn mul(self, rhs: Self) -> Self {
        let mut out = [0; N];
        for l in 0..N {
            out[l] = self.0[l].wrapping_mul(rhs.0[l]);
        }
        Self(out)
    }
}

impl<const N: usize> Default for SimdI32<N> {
    fn default() -> Self {
        Self::zero()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splat_load_store_roundtrip() {
        let v = SimdF32::<8>::splat(2.5);
        assert!(v.0.iter().all(|&x| x == 2.5));
        let src: Vec<f32> = (0..16).map(|i| i as f32).collect();
        let v = SimdF32::<4>::load(&src, 3);
        assert_eq!(v.0, [3.0, 4.0, 5.0, 6.0]);
        let mut dst = vec![0.0f32; 16];
        v.store(&mut dst, 8);
        assert_eq!(&dst[8..12], &[3.0, 4.0, 5.0, 6.0]);
    }

    #[test]
    fn arithmetic_is_lanewise() {
        let a = SimdF64::<4>::from([1.0, 2.0, 3.0, 4.0]);
        let b = SimdF64::<4>::from([10.0, 20.0, 30.0, 40.0]);
        assert_eq!((a + b).0, [11.0, 22.0, 33.0, 44.0]);
        assert_eq!((b - a).0, [9.0, 18.0, 27.0, 36.0]);
        assert_eq!((a * b).0, [10.0, 40.0, 90.0, 160.0]);
        assert_eq!((b / a).0, [10.0, 10.0, 10.0, 10.0]);
        assert_eq!((-a).0, [-1.0, -2.0, -3.0, -4.0]);
        assert_eq!((a * 2.0).0, [2.0, 4.0, 6.0, 8.0]);
        assert_eq!((a + 1.0).0, [2.0, 3.0, 4.0, 5.0]);
    }

    #[test]
    fn mul_add_matches_scalar_fma() {
        let a = SimdF32::<4>::from([1.0, 2.0, 3.0, 4.0]);
        let b = SimdF32::<4>::splat(0.5);
        let c = SimdF32::<4>::splat(10.0);
        let r = a.mul_add(b, c);
        for l in 0..4 {
            let want = if cfg!(target_feature = "fma") {
                (a.lane(l)).mul_add(0.5, 10.0)
            } else {
                a.lane(l) * 0.5 + 10.0
            };
            assert_eq!(r.lane(l), want);
        }
    }

    #[test]
    fn gather_scatter_roundtrip() {
        let src: Vec<f32> = (0..32).map(|i| (i * i) as f32).collect();
        let idx = [5usize, 0, 31, 7];
        let v = SimdF32::<4>::gather(&src, &idx);
        assert_eq!(v.0, [25.0, 0.0, 961.0, 49.0]);
        let mut dst = vec![0.0f32; 32];
        v.scatter(&mut dst, &idx);
        assert_eq!(dst[5], 25.0);
        assert_eq!(dst[0], 0.0);
        assert_eq!(dst[31], 961.0);
        assert_eq!(dst[7], 49.0);
    }

    #[test]
    fn reductions() {
        let v = SimdF64::<8>::from([1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0]);
        assert_eq!(v.reduce_sum(), 36.0);
        assert_eq!(v.reduce_min(), 1.0);
        assert_eq!(v.reduce_max(), 8.0);
        // odd lane count exercises the tail fold in the tree reduction
        let w = SimdF32::<3>::from([1.0, 2.0, 4.0]);
        assert_eq!(w.reduce_sum(), 7.0);
    }

    #[test]
    fn masks_and_select() {
        let a = SimdF32::<4>::from([1.0, 5.0, 3.0, 7.0]);
        let b = SimdF32::<4>::splat(4.0);
        let m = a.lt(b);
        assert_eq!(m.0, [true, false, true, false]);
        let r = SimdF32::select(m, a, b);
        assert_eq!(r.0, [1.0, 4.0, 3.0, 4.0]);
        assert_eq!(a.ge(b).0, [false, true, false, true]);
        assert_eq!(a.gt(b).0, [false, true, false, true]);
        assert_eq!(a.le(b).0, [true, false, true, false]);
    }

    #[test]
    fn unary_math_ops() {
        let v = SimdF64::<4>::from([4.0, 9.0, 16.0, 25.0]);
        assert_eq!(v.sqrt().0, [2.0, 3.0, 4.0, 5.0]);
        assert_eq!(v.recip().0, [0.25, 1.0 / 9.0, 0.0625, 0.04]);
        let r = v.rsqrt();
        for l in 0..4 {
            assert!((r.lane(l) - 1.0 / v.lane(l).sqrt()).abs() < 1e-12);
        }
        let n = SimdF32::<4>::from([-1.0, 2.0, -3.0, 0.0]);
        assert_eq!(n.abs().0, [1.0, 2.0, 3.0, 0.0]);
        assert_eq!(n.min(SimdF32::zero()).0, [-1.0, 0.0, -3.0, 0.0]);
        assert_eq!(n.max(SimdF32::zero()).0, [0.0, 2.0, 0.0, 0.0]);
    }

    #[test]
    fn float_int_conversions() {
        let v = SimdF32::<4>::from([1.9, -1.9, 0.2, 100.7]);
        assert_eq!(v.to_int().0, [1, -1, 0, 100]);
        let i = SimdI32::<4>::from_array([3, 1, 2, 0]);
        assert_eq!(i.to_f32().0, [3.0, 1.0, 2.0, 0.0]);
    }

    impl<const N: usize> SimdI32<N> {
        fn from_array(a: [i32; N]) -> Self {
            Self(a)
        }
    }

    #[test]
    fn int_ops_and_indices() {
        let a = SimdI32::<4>::from_array([1, 2, 3, 4]);
        let b = SimdI32::<4>::splat(10);
        assert_eq!((a + b).0, [11, 12, 13, 14]);
        assert_eq!((a * b).0, [10, 20, 30, 40]);
        assert_eq!(a.as_indices(), [1usize, 2, 3, 4]);
        assert_eq!(a.eq_lanes(SimdI32::splat(2)).0, [false, true, false, false]);
    }
}
