//! Property tests: SIMD operations must agree lane-wise with scalar math,
//! and every strategy's kernels must agree with each other.

use proptest::prelude::*;
use vsimd::adhoc;
use vsimd::chunks;
use vsimd::math::{fast_exp_f32, fast_exp_f64};
use vsimd::simd::{SimdF32, SimdF64};
use vsimd::transpose;
use vsimd::v4::V4F32;

fn arr4(v: &[f32]) -> [f32; 4] {
    [v[0], v[1], v[2], v[3]]
}

proptest! {
    /// Every portable SimdF32 binary op equals the scalar op per lane.
    #[test]
    fn simd_f32_ops_match_scalar(a in prop::collection::vec(-1e6f32..1e6, 4), b in prop::collection::vec(1e-3f32..1e6, 4)) {
        let va = SimdF32::<4>::from(arr4(&a));
        let vb = SimdF32::<4>::from(arr4(&b));
        for l in 0..4 {
            prop_assert_eq!((va + vb).lane(l), a[l] + b[l]);
            prop_assert_eq!((va - vb).lane(l), a[l] - b[l]);
            prop_assert_eq!((va * vb).lane(l), a[l] * b[l]);
            prop_assert_eq!((va / vb).lane(l), a[l] / b[l]);
            prop_assert_eq!(va.min(vb).lane(l), a[l].min(b[l]));
            prop_assert_eq!(va.max(vb).lane(l), a[l].max(b[l]));
            // mul_add fuses only where hardware FMA exists (see simd.rs)
            let fma = if cfg!(target_feature = "fma") {
                a[l].mul_add(b[l], a[l])
            } else {
                a[l] * b[l] + a[l]
            };
            prop_assert_eq!(va.mul_add(vb, va).lane(l), fma);
        }
    }

    /// V4F32 (SSE) ops equal the scalar op per lane exactly (IEEE ops).
    #[test]
    fn v4_ops_match_scalar(a in prop::collection::vec(-1e6f32..1e6, 4), b in prop::collection::vec(1e-3f32..1e6, 4)) {
        let va = V4F32::from_array(arr4(&a));
        let vb = V4F32::from_array(arr4(&b));
        for l in 0..4 {
            prop_assert_eq!(va.add(vb).to_array()[l], a[l] + b[l]);
            prop_assert_eq!(va.sub(vb).to_array()[l], a[l] - b[l]);
            prop_assert_eq!(va.mul(vb).to_array()[l], a[l] * b[l]);
            prop_assert_eq!(va.div(vb).to_array()[l], a[l] / b[l]);
        }
    }

    /// V4F32 rsqrt is within 2 ulp-ish relative error of the exact value.
    #[test]
    fn v4_rsqrt_accuracy(a in prop::collection::vec(1e-6f32..1e12, 4)) {
        let r = V4F32::from_array(arr4(&a)).rsqrt().to_array();
        for l in 0..4 {
            let want = 1.0 / a[l].sqrt();
            let rel = ((r[l] - want) / want).abs();
            prop_assert!(rel < 1e-5, "lane {l}: rel {rel}");
        }
    }

    /// select(mask, a, b) picks lanes exactly by the mask.
    #[test]
    fn select_by_mask(a in prop::collection::vec(-100f32..100.0, 8), b in prop::collection::vec(-100f32..100.0, 8)) {
        let mut aa = [0.0f32; 8];
        let mut bb = [0.0f32; 8];
        aa.copy_from_slice(&a);
        bb.copy_from_slice(&b);
        let va = SimdF32::<8>::from(aa);
        let vb = SimdF32::<8>::from(bb);
        let m = va.lt(vb);
        let r = SimdF32::select(m, va, vb);
        for l in 0..8 {
            let want = if a[l] < b[l] { a[l] } else { b[l] };
            prop_assert_eq!(r.lane(l), want);
            prop_assert_eq!(r.lane(l), a[l].min(b[l]).min(want)); // consistent with min
        }
    }

    /// reduce_sum equals a scalar sum to tight tolerance.
    #[test]
    fn reduce_sum_matches(v in prop::collection::vec(-1e3f64..1e3, 8)) {
        let mut a = [0.0f64; 8];
        a.copy_from_slice(&v);
        let got = SimdF64::<8>::from(a).reduce_sum();
        let want: f64 = v.iter().sum();
        prop_assert!((got - want).abs() < 1e-9);
    }

    /// Fast exp stays within documented tolerance across its domain.
    #[test]
    fn fast_exp_tolerances(x32 in -80f32..80.0, x64 in -600f64..600.0) {
        let r32 = ((fast_exp_f32(x32) - x32.exp()) / x32.exp()).abs();
        prop_assert!(r32 < 3e-6, "f32 rel {r32} at {x32}");
        let r64 = ((fast_exp_f64(x64) - x64.exp()) / x64.exp()).abs();
        prop_assert!(r64 < 1e-12, "f64 rel {r64} at {x64}");
    }

    /// Transpose is an involution and moves (r,c) to (c,r).
    #[test]
    fn transpose_involution(vals in prop::collection::vec(-1e5f32..1e5, 16)) {
        let mut rows = [SimdF32::<4>::zero(); 4];
        for r in 0..4 {
            for c in 0..4 {
                rows[r].0[c] = vals[r * 4 + c];
            }
        }
        let t = transpose::transpose_4x4(rows);
        #[allow(clippy::needless_range_loop)]
        for r in 0..4 {
            for c in 0..4 {
                prop_assert_eq!(t[c].lane(r), rows[r].lane(c));
            }
        }
        prop_assert_eq!(transpose::transpose_4x4(t), rows);
        // ad hoc transpose agrees with portable
        let v4rows = [
            V4F32::from_array(rows[0].0),
            V4F32::from_array(rows[1].0),
            V4F32::from_array(rows[2].0),
            V4F32::from_array(rows[3].0),
        ];
        let v4t = V4F32::transpose(v4rows);
        for r in 0..4 {
            prop_assert_eq!(v4t[r].to_array(), t[r].0);
        }
    }

    /// Ad hoc AVX2 axpy equals the scalar reference bit-for-bit
    /// (FMA contraction cannot change a single mul+add rounding here
    /// because the fallback also uses separate rounding... so allow ulps).
    #[test]
    fn adhoc_axpy_close_to_reference(
        a in -10f32..10.0,
        x in prop::collection::vec(-1e3f32..1e3, 0..64),
    ) {
        let mut y: Vec<f32> = x.iter().map(|v| v * 0.5).collect();
        let mut want = y.clone();
        adhoc::axpy_f32(a, &x, &mut y);
        for (w, &xi) in want.iter_mut().zip(&x) {
            *w += a * xi;
        }
        for ((g, w), &xi) in y.iter().zip(&want).zip(&x) {
            // FMA vs mul+add differ by at most one rounding of the
            // *product* a·xi — the result can be much smaller than the
            // product when the update nearly cancels y, so the bound must
            // scale with the product, not with the result
            let scale = (a * xi).abs().max(w.abs());
            prop_assert!((g - w).abs() <= (scale * 1e-6).max(1e-6));
        }
    }

    /// Guided chunk reduce equals a plain fold.
    #[test]
    fn guided_reduce_matches(data in prop::collection::vec(-1e3f64..1e3, 0..200)) {
        let got = chunks::reduce_chunks::<f64, 16>(&data, 0.0, |x| x * 2.0);
        let want: f64 = data.iter().map(|&x| x * 2.0).sum();
        prop_assert!((got - want).abs() < 1e-8);
    }
}
