//! PLANCKIAN: `w[i] = y[i] / (exp(u[i] / v[i]) − 1)` — the
//! transcendental-in-the-loop kernel. The `exp` call is what breaks
//! compiler auto-vectorization (a libm call per element); the guided
//! strategy's fix is the paper's "splitting kernels to separate
//! difficult-to-vectorize mathematical functions".

use vsimd::chunks::for_each_chunk_mut;
use vsimd::math::fast_exp_f64;
use vsimd::simd::SimdF64;
use vsimd::Strategy;

/// Auto strategy: straight loop with libm `exp` — the compiler will not
/// vectorize across the call.
pub fn auto(u: &[f64], v: &[f64], y: &[f64], w: &mut [f64]) {
    assert!(u.len() == v.len() && v.len() == y.len() && y.len() == w.len());
    for i in 0..w.len() {
        w[i] = y[i] / ((u[i] / v[i]).exp() - 1.0);
    }
}

/// Guided strategy: kernel split. Pass 1 computes the ratios into the
/// output buffer (trivially vectorized); pass 2 applies the polynomial
/// `exp` in fixed-width chunks (vectorizable: no libm call); pass 3 forms
/// the quotient.
pub fn guided(u: &[f64], v: &[f64], y: &[f64], w: &mut [f64]) {
    assert!(u.len() == v.len() && v.len() == y.len() && y.len() == w.len());
    // pass 1: w = u / v
    for i in 0..w.len() {
        w[i] = u[i] / v[i];
    }
    // pass 2: w = exp(w), chunked polynomial
    for_each_chunk_mut::<f64, 8>(
        w,
        |_, chunk| {
            for val in chunk.iter_mut() {
                *val = fast_exp_f64(*val);
            }
        },
        |_, val| *val = fast_exp_f64(*val),
    );
    // pass 3: w = y / (w - 1)
    for i in 0..w.len() {
        w[i] = y[i] / (w[i] - 1.0);
    }
}

/// Manual strategy: one fused pass over explicit lanes with the lane-wise
/// polynomial `exp`.
pub fn manual(u: &[f64], v: &[f64], y: &[f64], w: &mut [f64]) {
    assert!(u.len() == v.len() && v.len() == y.len() && y.len() == w.len());
    const W: usize = 4;
    let n = w.len();
    let main = n - n % W;
    let one = SimdF64::<W>::splat(1.0);
    let mut i = 0;
    while i < main {
        let uv = SimdF64::<W>::load(u, i);
        let vv = SimdF64::<W>::load(v, i);
        let yv = SimdF64::<W>::load(y, i);
        let e = (uv / vv).exp();
        (yv / (e - one)).store(w, i);
        i += W;
    }
    for k in main..n {
        w[k] = y[k] / (fast_exp_f64(u[k] / v[k]) - 1.0);
    }
}

/// Dispatch by strategy (ad hoc maps to manual, as in AXPY).
pub fn run(strategy: Strategy, u: &[f64], v: &[f64], y: &[f64], w: &mut [f64]) {
    match strategy {
        Strategy::Auto => auto(u, v, y, w),
        Strategy::Guided => guided(u, v, y, w),
        Strategy::Manual | Strategy::AdHoc => manual(u, v, y, w),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inputs(n: usize) -> (Vec<f64>, Vec<f64>, Vec<f64>) {
        let u: Vec<f64> = (0..n).map(|i| 0.5 + (i % 17) as f64 * 0.3).collect();
        let v: Vec<f64> = (0..n).map(|i| 1.0 + (i % 5) as f64 * 0.2).collect();
        let y: Vec<f64> = (0..n).map(|i| 1.0 + (i % 3) as f64).collect();
        (u, v, y)
    }

    #[test]
    fn strategies_agree_with_reference() {
        let n = 517;
        let (u, v, y) = inputs(n);
        let mut want = vec![0.0; n];
        auto(&u, &v, &y, &mut want);
        for s in [Strategy::Guided, Strategy::Manual] {
            let mut w = vec![0.0; n];
            run(s, &u, &v, &y, &mut w);
            for (g, r) in w.iter().zip(&want) {
                let rel = ((g - r) / r).abs();
                assert!(rel < 1e-11, "{s}: {g} vs {r} (rel {rel})");
            }
        }
    }

    #[test]
    fn physical_sanity_planck_denominator() {
        // u/v > 0 → exp(u/v) > 1 → denominator positive → w has y's sign
        let (u, v, y) = inputs(64);
        let mut w = vec![0.0; 64];
        manual(&u, &v, &y, &mut w);
        assert!(w.iter().all(|&x| x > 0.0));
    }

    #[test]
    fn guided_split_equals_fused() {
        let n = 97;
        let (u, v, y) = inputs(n);
        let mut a = vec![0.0; n];
        let mut b = vec![0.0; n];
        guided(&u, &v, &y, &mut a);
        manual(&u, &v, &y, &mut b);
        for (x, z) in a.iter().zip(&b) {
            assert!((x - z).abs() < 1e-11 * z.abs().max(1.0));
        }
    }
}
