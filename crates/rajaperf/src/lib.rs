//! # rajaperf — microkernels for the vectorization study (paper Fig 3)
//!
//! Three kernels derived from the RAJAPerf suite, each implemented in the
//! paper's vectorization strategies:
//!
//! * [`axpy`] — `y += a·x`: "the simplest SIMD code without mathematical
//!   functions or branching";
//! * [`planckian`] — Planck's-law kernel with an `exp` in the inner loop,
//!   "which may hinder compiler vectorization";
//! * [`pi_reduce`] — parallel π approximation, "reveals how common
//!   operations \[reductions\] can inhibit vectorization".
//!
//! Strategy names follow `vsimd::Strategy`: *auto* is a plain indexed
//! loop (left to LLVM), *guided* is the restructured fixed-width-chunk
//! form with difficult math split into its own pass, *manual* uses the
//! explicit-lane `vsimd` types, and *ad hoc* (AXPY only, like the paper's
//! VPIC-internal library) uses raw `std::arch` intrinsics.

pub mod axpy;
pub mod pi_reduce;
pub mod planckian;

pub use vsimd::Strategy;

/// Which microkernel to run (Fig 3's x-axis grouping).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Kernel {
    /// `y[i] += a * x[i]`
    Axpy,
    /// `w[i] = y0[i] / (exp(u[i] / v[i]) - 1)`
    Planckian,
    /// `pi = Σ 4 / (1 + ((i+½)dx)²) · dx`
    PiReduce,
}

impl Kernel {
    /// All three kernels in figure order.
    pub const ALL: [Kernel; 3] = [Kernel::Axpy, Kernel::Planckian, Kernel::PiReduce];

    /// Figure label.
    pub fn name(self) -> &'static str {
        match self {
            Kernel::Axpy => "AXPY",
            Kernel::Planckian => "PLANCKIAN",
            Kernel::PiReduce => "PI_REDUCE",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_names() {
        assert_eq!(Kernel::ALL.len(), 3);
        assert_eq!(Kernel::Axpy.name(), "AXPY");
        assert_eq!(Kernel::PiReduce.name(), "PI_REDUCE");
    }
}
