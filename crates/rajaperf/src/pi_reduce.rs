//! PI_REDUCE: `π ≈ Σᵢ 4 / (1 + ((i+½)·dx)²) · dx` — the reduction
//! kernel. A naive serial accumulation is a loop-carried dependence the
//! vectorizer must *reassociate* to break; whether it does so is exactly
//! the auto-vs-manual gap the paper measures ("manual vectorization is up
//! to 80% faster than auto and guided on non-MI300A CPUs").

use vsimd::simd::SimdF64;
use vsimd::Strategy;

/// Auto strategy: naive serial accumulation (single dependence chain).
pub fn auto(n: usize) -> f64 {
    let dx = 1.0 / n as f64;
    let mut pi = 0.0;
    for i in 0..n {
        let x = (i as f64 + 0.5) * dx;
        pi += 4.0 / (1.0 + x * x);
    }
    pi * dx
}

/// Guided strategy: the dependence chain split into 8 independent
/// accumulators (the `omp simd reduction(+:pi)` restructuring).
#[allow(clippy::needless_range_loop)] // fixed-width lane loop, kept explicit
pub fn guided(n: usize) -> f64 {
    let dx = 1.0 / n as f64;
    const W: usize = 8;
    let main = n - n % W;
    let mut acc = [0.0f64; W];
    let mut i = 0;
    while i < main {
        for l in 0..W {
            let x = ((i + l) as f64 + 0.5) * dx;
            acc[l] += 4.0 / (1.0 + x * x);
        }
        i += W;
    }
    let mut pi: f64 = acc.iter().sum();
    for k in main..n {
        let x = (k as f64 + 0.5) * dx;
        pi += 4.0 / (1.0 + x * x);
    }
    pi * dx
}

/// Manual strategy: explicit lanes with a vector index and one horizontal
/// reduction at the end.
pub fn manual(n: usize) -> f64 {
    let dx = 1.0 / n as f64;
    const W: usize = 4;
    let main = n - n % W;
    let dxv = SimdF64::<W>::splat(dx);
    let four = SimdF64::<W>::splat(4.0);
    let one = SimdF64::<W>::splat(1.0);
    let mut acc = SimdF64::<W>::zero();
    let mut base = SimdF64::<W>::from([0.5, 1.5, 2.5, 3.5]);
    let step = SimdF64::<W>::splat(W as f64);
    let mut i = 0;
    while i < main {
        let x = base * dxv;
        acc += four / (one + x * x);
        base += step;
        i += W;
    }
    let mut pi = acc.reduce_sum();
    for k in main..n {
        let x = (k as f64 + 0.5) * dx;
        pi += 4.0 / (1.0 + x * x);
    }
    pi * dx
}

/// Dispatch by strategy (ad hoc maps to manual).
pub fn run(strategy: Strategy, n: usize) -> f64 {
    match strategy {
        Strategy::Auto => auto(n),
        Strategy::Guided => guided(n),
        Strategy::Manual | Strategy::AdHoc => manual(n),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn converges_to_pi() {
        for s in [Strategy::Auto, Strategy::Guided, Strategy::Manual] {
            let approx = run(s, 1_000_000);
            assert!(
                (approx - std::f64::consts::PI).abs() < 1e-9,
                "{s}: {approx}"
            );
        }
    }

    #[test]
    fn strategies_agree_tightly() {
        let a = auto(10_001);
        let g = guided(10_001);
        let m = manual(10_001);
        assert!((a - g).abs() < 1e-12);
        assert!((a - m).abs() < 1e-12);
    }

    #[test]
    fn error_shrinks_with_n() {
        let coarse = (auto(100) - std::f64::consts::PI).abs();
        let fine = (auto(10_000) - std::f64::consts::PI).abs();
        assert!(fine < coarse / 100.0, "midpoint rule is O(1/n^2)");
    }

    #[test]
    fn tail_handling_on_non_multiple_lengths() {
        for n in [1usize, 3, 7, 9, 13] {
            let a = auto(n);
            let g = guided(n);
            let m = manual(n);
            assert!((a - g).abs() < 1e-13, "n={n}");
            assert!((a - m).abs() < 1e-13, "n={n}");
        }
    }
}
