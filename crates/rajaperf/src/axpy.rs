//! AXPY: `y[i] += a * x[i]` — the baseline "compilers handle this" kernel.

use vsimd::chunks::zip_chunks_mut;
use vsimd::simd::SimdF64;
use vsimd::Strategy;

/// Auto strategy: the plain loop, vectorization left entirely to LLVM
/// (the paper's Kokkos-with-`#pragma ivdep` baseline).
pub fn auto(a: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy extent mismatch");
    for i in 0..y.len() {
        y[i] += a * x[i];
    }
}

/// Guided strategy: exact fixed-width chunks so the vectorizer cannot
/// miss (the paper's `#pragma omp simd`).
pub fn guided(a: f64, x: &[f64], y: &mut [f64]) {
    zip_chunks_mut::<f64, f64, 8>(
        y,
        x,
        |_, yc, xc| {
            for l in 0..8 {
                yc[l] += a * xc[l];
            }
        },
        |_, yi, xi| *yi += a * xi,
    );
}

/// Manual strategy: explicit `vsimd` lanes (the paper's Kokkos SIMD).
pub fn manual(a: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy extent mismatch");
    const W: usize = 4;
    let n = y.len();
    let main = n - n % W;
    let av = SimdF64::<W>::splat(a);
    let mut i = 0;
    while i < main {
        let xv = SimdF64::<W>::load(x, i);
        let yv = SimdF64::<W>::load(y, i);
        av.mul_add(xv, yv).store(y, i);
        i += W;
    }
    for k in main..n {
        y[k] = vsimd::math::fma_f64(a, x[k], y[k]);
    }
}

/// Ad hoc strategy: per-ISA intrinsics with runtime dispatch (f32
/// variant, matching the VPIC library's single-precision focus).
pub fn adhoc_f32(a: f32, x: &[f32], y: &mut [f32]) {
    vsimd::adhoc::axpy_f32(a, x, y);
}

/// Dispatch by strategy (ad hoc falls back to manual for f64 — the VPIC
/// 1.2 library is f32-only, as in the paper).
pub fn run(strategy: Strategy, a: f64, x: &[f64], y: &mut [f64]) {
    match strategy {
        Strategy::Auto => auto(a, x, y),
        Strategy::Guided => guided(a, x, y),
        Strategy::Manual | Strategy::AdHoc => manual(a, x, y),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inputs(n: usize) -> (Vec<f64>, Vec<f64>) {
        let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.1).sin()).collect();
        let y: Vec<f64> = (0..n).map(|i| (i as f64 * 0.2).cos()).collect();
        (x, y)
    }

    #[test]
    fn all_strategies_agree() {
        let n = 1003;
        let (x, y0) = inputs(n);
        let mut want = y0.clone();
        auto(2.5, &x, &mut want);
        for s in [Strategy::Guided, Strategy::Manual, Strategy::AdHoc] {
            let mut y = y0.clone();
            run(s, 2.5, &x, &mut y);
            for (g, w) in y.iter().zip(&want) {
                assert!((g - w).abs() < 1e-12, "{s}: {g} vs {w}");
            }
        }
    }

    #[test]
    fn adhoc_f32_matches_scalar() {
        let n = 100;
        let x: Vec<f32> = (0..n).map(|i| i as f32).collect();
        let mut y = vec![1.0f32; n];
        adhoc_f32(3.0, &x, &mut y);
        for (i, &v) in y.iter().enumerate() {
            let want = 1.0 + 3.0 * i as f32;
            assert!((v - want).abs() < want.abs() * 1e-6 + 1e-6);
        }
    }

    #[test]
    fn empty_input_ok() {
        let mut y: Vec<f64> = vec![];
        run(Strategy::Manual, 1.0, &[], &mut y);
    }
}
