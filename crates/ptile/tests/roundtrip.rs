//! Property tests: the codec is bitwise lossless for arbitrary input —
//! including bit patterns a simulation never produces (NaN payloads,
//! infinities, subnormals, `-0.0`) — in both raw and packed modes.

use proptest::prelude::*;
use ptile::{decode, encode, raw_size, TileData};

/// Arbitrary f32 *bit patterns*, not values: `any::<u32>()` reinterpreted,
/// so NaN payloads and subnormals are drawn with full probability.
fn tile_from_words(cells: &[u32], words: &[u64], ids: &[u64]) -> TileData {
    let n = cells.len().min(words.len() / 7).min(ids.len());
    let mut t = TileData::default();
    let mut cell = 0u32;
    for i in 0..n {
        // mostly-sorted cells with occasional jumps (post-migration shape)
        cell = cell.wrapping_add(cells[i] % 5).wrapping_add(if cells[i].is_multiple_of(97) { 1000 } else { 0 });
        t.cell.push(cell);
        let w = &words[i * 7..i * 7 + 7];
        t.dx.push(f32::from_bits(w[0] as u32));
        t.dy.push(f32::from_bits(w[1] as u32));
        t.dz.push(f32::from_bits(w[2] as u32));
        t.ux.push(f32::from_bits(w[3] as u32));
        t.uy.push(f32::from_bits(w[4] as u32));
        t.uz.push(f32::from_bits(w[5] as u32));
        t.w.push(f32::from_bits(w[6] as u32));
        t.id.push(ids[i]);
    }
    t
}

fn assert_bits_eq(a: &TileData, b: &TileData) {
    assert_eq!(a.cell, b.cell);
    assert_eq!(a.id, b.id);
    for (x, y) in [
        (&a.dx, &b.dx),
        (&a.dy, &b.dy),
        (&a.dz, &b.dz),
        (&a.ux, &b.ux),
        (&a.uy, &b.uy),
        (&a.uz, &b.uz),
        (&a.w, &b.w),
    ] {
        let xb: Vec<u32> = x.iter().map(|v| v.to_bits()).collect();
        let yb: Vec<u32> = y.iter().map(|v| v.to_bits()).collect();
        assert_eq!(xb, yb);
    }
}

proptest! {
    /// Raw and packed encodings both round-trip any bit pattern exactly.
    #[test]
    fn codec_round_trip_is_bitwise_lossless(
        cells in proptest::collection::vec(0u32..u32::MAX, 0..300),
        words in proptest::collection::vec(0u64..u64::MAX, 0..2100),
        ids in proptest::collection::vec(0u64..u64::MAX, 0..300),
    ) {
        let t = tile_from_words(&cells, &words, &ids);
        for compress in [false, true] {
            let blob = encode(&t, compress);
            let back = decode(&blob).expect("well-formed blob must decode");
            assert_bits_eq(&back, &t);
        }
    }

    /// Truncating a blob anywhere is a typed error, never a wrong tile.
    #[test]
    fn truncation_never_decodes(
        cells in proptest::collection::vec(0u32..u32::MAX, 1..100),
        words in proptest::collection::vec(0u64..u64::MAX, 7..700),
        ids in proptest::collection::vec(0u64..u64::MAX, 1..100),
        frac in 0.0f64..1.0,
    ) {
        let t = tile_from_words(&cells, &words, &ids);
        prop_assume!(!t.is_empty());
        for compress in [false, true] {
            let blob = encode(&t, compress);
            let cut = ((blob.len() - 1) as f64 * frac) as usize;
            prop_assert!(decode(&blob[..cut]).is_err(), "cut {cut}/{} decoded", blob.len());
        }
    }

    /// Degenerate (constant) species compress hard and still round-trip.
    #[test]
    fn constant_tiles_compress(n in 64usize..1000, bits in 0u32..u32::MAX) {
        let v = f32::from_bits(bits);
        let mut t = TileData::default();
        for i in 0..n {
            t.cell.push(7);
            t.dx.push(v); t.dy.push(v); t.dz.push(v);
            t.ux.push(v); t.uy.push(v); t.uz.push(v); t.w.push(v);
            t.id.push(i as u64);
        }
        let blob = encode(&t, true);
        prop_assert!(blob.len() * 4 < raw_size(n), "{} vs raw {}", blob.len(), raw_size(n));
        assert_bits_eq(&decode(&blob).unwrap(), &t);
    }
}
