//! Lossless particle-tile codec.
//!
//! A cell-sorted SoA tile is highly structured: the `cell` array is
//! non-decreasing (tiny deltas), particle ids assigned at load time are
//! near-sequential, and the f32 bit patterns of neighboring particles
//! share high bytes (positions live in `[-1, 1]`, momenta in a thermal
//! band). The codec exploits exactly that structure while staying
//! *bitwise* lossless — every f32 travels as its raw bit pattern, so
//! NaN payloads, `-0.0`, and subnormals round-trip exactly. That is a
//! hard requirement: decompressing a tile, stepping it, and comparing
//! against an untiled run must be bit-identical.
//!
//! ## Container format (`PTL1`)
//!
//! ```text
//! magic  b"PTL1"            4 bytes
//! flags  u8                 bit 0: packed (else raw little-endian arrays)
//! n      u64 LE             particle count
//! body   ...                per-array sections, fixed order:
//!                           cell, dx, dy, dz, ux, uy, uz, w, id
//! ```
//!
//! * **raw** — each array dumped as little-endian words. `raw_size(n)`
//!   bytes of body; the fallback when packing would not help.
//! * **packed** — `cell` and `id` as zigzag-varint deltas; each f32
//!   array as bit patterns (positions raw, momenta/weight XOR'd with
//!   the previous element) split into 4 byte-planes, each plane stored
//!   RLE or raw, whichever is smaller.
//!
//! Decoding is strict: bad magic, unknown flags, truncation, or
//! trailing bytes are typed [`DecodeError`]s, never partial tiles.

/// One tile's particle data in struct-of-arrays form, plus the global
/// load ids that make cross-tile migration and re-assembly order
/// deterministic (the PR 6 sorted-append discipline).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TileData {
    /// Voxel index per particle (non-decreasing in a sorted tile).
    pub cell: Vec<u32>,
    /// Cell-relative x offset in `[-1, 1]`.
    pub dx: Vec<f32>,
    /// Cell-relative y offset.
    pub dy: Vec<f32>,
    /// Cell-relative z offset.
    pub dz: Vec<f32>,
    /// Normalized momentum γβx.
    pub ux: Vec<f32>,
    /// γβy.
    pub uy: Vec<f32>,
    /// γβz.
    pub uz: Vec<f32>,
    /// Statistical weight.
    pub w: Vec<f32>,
    /// Global particle id (stable across migration).
    pub id: Vec<u64>,
}

impl TileData {
    /// Particle count (all arrays share it).
    pub fn len(&self) -> usize {
        self.cell.len()
    }

    /// True when the tile holds no particles.
    pub fn is_empty(&self) -> bool {
        self.cell.is_empty()
    }

    /// Assert the SoA invariant: every array has the same length.
    fn validate_shape(&self) -> bool {
        let n = self.cell.len();
        self.dx.len() == n
            && self.dy.len() == n
            && self.dz.len() == n
            && self.ux.len() == n
            && self.uy.len() == n
            && self.uz.len() == n
            && self.w.len() == n
            && self.id.len() == n
    }
}

/// Typed decode failures. The codec never returns partial tiles.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// Input shorter than the section being read claimed.
    Truncated,
    /// Magic bytes are not `PTL1`.
    BadMagic,
    /// Flag bits this version does not understand.
    BadFlags(u8),
    /// A plane or run header carried an impossible tag or length.
    Corrupt,
    /// Bytes left over after the last section.
    TrailingBytes(usize),
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "tile blob truncated"),
            DecodeError::BadMagic => write!(f, "bad tile magic (want PTL1)"),
            DecodeError::BadFlags(b) => write!(f, "unknown tile flags {b:#04x}"),
            DecodeError::Corrupt => write!(f, "corrupt tile section"),
            DecodeError::TrailingBytes(n) => write!(f, "{n} trailing bytes after tile"),
        }
    }
}

impl std::error::Error for DecodeError {}

const MAGIC: &[u8; 4] = b"PTL1";
const FLAG_PACKED: u8 = 0b1;
/// Bytes per particle in the uncompressed SoA: 7×f32 + u32 cell + u64 id.
pub const RAW_PARTICLE_BYTES: usize = 7 * 4 + 4 + 8;
const HEADER_BYTES: usize = 4 + 1 + 8;

/// Size in bytes of a raw-mode blob for `n` particles (header included).
pub fn raw_size(n: usize) -> usize {
    HEADER_BYTES + n * RAW_PARTICLE_BYTES
}

// ── varint / zigzag ────────────────────────────────────────────────────

fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let b = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(b);
            return;
        }
        out.push(b | 0x80);
    }
}

fn get_varint(buf: &[u8], pos: &mut usize) -> Result<u64, DecodeError> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let b = *buf.get(*pos).ok_or(DecodeError::Truncated)?;
        *pos += 1;
        if shift >= 64 {
            return Err(DecodeError::Corrupt);
        }
        v |= ((b & 0x7f) as u64) << shift;
        if b & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

// ── byte planes with per-plane RLE-or-raw ─────────────────────────────

/// Encode one byte plane: tag 0 = raw bytes, tag 1 = RLE (varint run
/// length + byte, repeated). Picks whichever is smaller.
fn put_plane(out: &mut Vec<u8>, plane: &[u8]) {
    let mut rle = Vec::with_capacity(plane.len() / 2 + 8);
    let mut i = 0;
    while i < plane.len() {
        let b = plane[i];
        let mut run = 1usize;
        while i + run < plane.len() && plane[i + run] == b {
            run += 1;
        }
        put_varint(&mut rle, run as u64);
        rle.push(b);
        i += run;
    }
    if rle.len() < plane.len() {
        out.push(1);
        out.extend_from_slice(&rle);
    } else {
        out.push(0);
        out.extend_from_slice(plane);
    }
}

fn get_plane(buf: &[u8], pos: &mut usize, n: usize, plane: &mut Vec<u8>) -> Result<(), DecodeError> {
    plane.clear();
    let tag = *buf.get(*pos).ok_or(DecodeError::Truncated)?;
    *pos += 1;
    match tag {
        0 => {
            let end = pos.checked_add(n).ok_or(DecodeError::Corrupt)?;
            let bytes = buf.get(*pos..end).ok_or(DecodeError::Truncated)?;
            plane.extend_from_slice(bytes);
            *pos = end;
        }
        1 => {
            while plane.len() < n {
                let run = get_varint(buf, pos)? as usize;
                if run == 0 || plane.len() + run > n {
                    return Err(DecodeError::Corrupt);
                }
                let b = *buf.get(*pos).ok_or(DecodeError::Truncated)?;
                *pos += 1;
                plane.resize(plane.len() + run, b);
            }
        }
        _ => return Err(DecodeError::Corrupt),
    }
    Ok(())
}

/// Encode a u32 array (f32 bit patterns or cells) as 4 byte planes.
/// `xor_delta` first replaces each word with `w[i] ^ w[i-1]` — momenta
/// of neighboring sorted particles share high bytes, so the planes
/// collapse to near-zero runs.
fn put_u32_planes(out: &mut Vec<u8>, words: &[u32], xor_delta: bool, scratch: &mut Vec<u8>) {
    for shift in [0u32, 8, 16, 24] {
        scratch.clear();
        let mut prev = 0u32;
        for &w in words {
            let v = if xor_delta { w ^ prev } else { w };
            scratch.push((v >> shift) as u8);
            if xor_delta {
                prev = w;
            }
        }
        put_plane(out, scratch);
    }
}

fn get_u32_planes(
    buf: &[u8],
    pos: &mut usize,
    n: usize,
    xor_delta: bool,
    planes: &mut [Vec<u8>; 4],
) -> Result<Vec<u32>, DecodeError> {
    for plane in planes.iter_mut() {
        get_plane(buf, pos, n, plane)?;
    }
    let mut words = Vec::with_capacity(n);
    let mut prev = 0u32;
    for i in 0..n {
        let mut v = 0u32;
        for (b, plane) in planes.iter().enumerate() {
            v |= (plane[i] as u32) << (8 * b as u32);
        }
        if xor_delta {
            v ^= prev;
            prev = v;
        }
        words.push(v);
    }
    Ok(words)
}

// ── encode ─────────────────────────────────────────────────────────────

/// Encode a tile. With `compress` false the blob is the raw-mode dump
/// (`raw_size(len)` bytes); with `compress` true the packed encoding is
/// used unless it would be larger than raw, in which case the raw blob
/// is returned (the flags byte records which happened).
///
/// Round-trip through [`decode`] is bitwise lossless in both modes.
///
/// # Panics
/// If the SoA arrays disagree on length.
pub fn encode(tile: &TileData, compress: bool) -> Vec<u8> {
    assert!(tile.validate_shape(), "ragged tile SoA");
    let n = tile.len();
    if !compress {
        return encode_raw(tile);
    }
    let mut out = Vec::with_capacity(raw_size(n) / 2);
    out.extend_from_slice(MAGIC);
    out.push(FLAG_PACKED);
    out.extend_from_slice(&(n as u64).to_le_bytes());
    // cell: sorted tiles have tiny non-negative deltas → 1-byte varints
    let mut prev = 0i64;
    for &c in &tile.cell {
        put_varint(&mut out, zigzag(c as i64 - prev));
        prev = c as i64;
    }
    // id: near-sequential at load time, arbitrary after migration
    // (wrapping deltas — full-range u64 ids reduce modulo 2^64)
    let mut prev = 0i64;
    for &id in &tile.id {
        put_varint(&mut out, zigzag((id as i64).wrapping_sub(prev)));
        prev = id as i64;
    }
    let mut scratch = Vec::with_capacity(n);
    // positions: raw bit patterns by byte plane (exponent/sign planes
    // are low-entropy for offsets in [-1, 1])
    for arr in [&tile.dx, &tile.dy, &tile.dz] {
        scratch.clear();
        let words: Vec<u32> = arr.iter().map(|v| v.to_bits()).collect();
        put_u32_planes(&mut out, &words, false, &mut scratch);
    }
    // momenta + weight: XOR-delta then byte planes
    for arr in [&tile.ux, &tile.uy, &tile.uz, &tile.w] {
        scratch.clear();
        let words: Vec<u32> = arr.iter().map(|v| v.to_bits()).collect();
        put_u32_planes(&mut out, &words, true, &mut scratch);
    }
    if out.len() >= raw_size(n) {
        return encode_raw(tile);
    }
    out
}

fn encode_raw(tile: &TileData) -> Vec<u8> {
    let n = tile.len();
    let mut out = Vec::with_capacity(raw_size(n));
    out.extend_from_slice(MAGIC);
    out.push(0);
    out.extend_from_slice(&(n as u64).to_le_bytes());
    for &c in &tile.cell {
        out.extend_from_slice(&c.to_le_bytes());
    }
    for arr in [&tile.dx, &tile.dy, &tile.dz, &tile.ux, &tile.uy, &tile.uz, &tile.w] {
        for &v in arr.iter() {
            out.extend_from_slice(&v.to_bits().to_le_bytes());
        }
    }
    for &id in &tile.id {
        out.extend_from_slice(&id.to_le_bytes());
    }
    out
}

// ── decode ─────────────────────────────────────────────────────────────

/// Decode a blob produced by [`encode`]. Strict: any malformed input is
/// a typed [`DecodeError`].
pub fn decode(buf: &[u8]) -> Result<TileData, DecodeError> {
    let mut tile = TileData::default();
    decode_into(buf, &mut tile)?;
    Ok(tile)
}

/// Decode into an existing [`TileData`], reusing its allocations — the
/// tile pool's steady-state path (no alloc once capacities warm up).
pub fn decode_into(buf: &[u8], tile: &mut TileData) -> Result<(), DecodeError> {
    if buf.len() < HEADER_BYTES {
        return Err(DecodeError::Truncated);
    }
    if &buf[..4] != MAGIC {
        return Err(DecodeError::BadMagic);
    }
    let flags = buf[4];
    if flags & !FLAG_PACKED != 0 {
        return Err(DecodeError::BadFlags(flags));
    }
    let n = u64::from_le_bytes(buf[5..13].try_into().unwrap()) as usize;
    let mut pos = HEADER_BYTES;
    for arr in [
        &mut tile.dx,
        &mut tile.dy,
        &mut tile.dz,
        &mut tile.ux,
        &mut tile.uy,
        &mut tile.uz,
        &mut tile.w,
    ] {
        arr.clear();
    }
    tile.cell.clear();
    tile.id.clear();
    if flags & FLAG_PACKED == 0 {
        if buf.len() != raw_size(n) {
            return Err(if buf.len() < raw_size(n) {
                DecodeError::Truncated
            } else {
                DecodeError::TrailingBytes(buf.len() - raw_size(n))
            });
        }
        for _ in 0..n {
            tile.cell.push(u32::from_le_bytes(buf[pos..pos + 4].try_into().unwrap()));
            pos += 4;
        }
        for arr in [
            &mut tile.dx,
            &mut tile.dy,
            &mut tile.dz,
            &mut tile.ux,
            &mut tile.uy,
            &mut tile.uz,
            &mut tile.w,
        ] {
            for _ in 0..n {
                arr.push(f32::from_bits(u32::from_le_bytes(
                    buf[pos..pos + 4].try_into().unwrap(),
                )));
                pos += 4;
            }
        }
        for _ in 0..n {
            tile.id.push(u64::from_le_bytes(buf[pos..pos + 8].try_into().unwrap()));
            pos += 8;
        }
        return Ok(());
    }
    // packed
    let mut prev = 0i64;
    for _ in 0..n {
        let d = unzigzag(get_varint(buf, &mut pos)?);
        let c = prev.wrapping_add(d);
        if !(0..=u32::MAX as i64).contains(&c) {
            return Err(DecodeError::Corrupt);
        }
        tile.cell.push(c as u32);
        prev = c;
    }
    let mut prev = 0i64;
    for _ in 0..n {
        let d = unzigzag(get_varint(buf, &mut pos)?);
        let id = prev.wrapping_add(d);
        tile.id.push(id as u64);
        prev = id;
    }
    let mut planes: [Vec<u8>; 4] = Default::default();
    for (arr, xor_delta) in [
        (&mut tile.dx, false),
        (&mut tile.dy, false),
        (&mut tile.dz, false),
        (&mut tile.ux, true),
        (&mut tile.uy, true),
        (&mut tile.uz, true),
        (&mut tile.w, true),
    ] {
        let words = get_u32_planes(buf, &mut pos, n, xor_delta, &mut planes)?;
        arr.extend(words.into_iter().map(f32::from_bits));
    }
    if pos != buf.len() {
        return Err(DecodeError::TrailingBytes(buf.len() - pos));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(n: usize, seed: u64) -> TileData {
        // deterministic LCG: tests must not depend on external RNG crates
        let mut state = seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(1);
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut t = TileData::default();
        let mut cell = 0u32;
        for i in 0..n {
            cell += (next() % 3) as u32;
            t.cell.push(cell);
            t.dx.push((next() % 2001) as f32 / 1000.0 - 1.0);
            t.dy.push((next() % 2001) as f32 / 1000.0 - 1.0);
            t.dz.push((next() % 2001) as f32 / 1000.0 - 1.0);
            t.ux.push(((next() % 401) as f32 / 1000.0 - 0.2) * 0.5);
            t.uy.push(((next() % 401) as f32 / 1000.0 - 0.2) * 0.5);
            t.uz.push(((next() % 401) as f32 / 1000.0 - 0.2) * 0.5);
            t.w.push(1.0);
            t.id.push(i as u64 * 7 + seed);
        }
        t
    }

    fn assert_bits_eq(a: &TileData, b: &TileData) {
        assert_eq!(a.cell, b.cell);
        assert_eq!(a.id, b.id);
        for (x, y) in [
            (&a.dx, &b.dx),
            (&a.dy, &b.dy),
            (&a.dz, &b.dz),
            (&a.ux, &b.ux),
            (&a.uy, &b.uy),
            (&a.uz, &b.uz),
            (&a.w, &b.w),
        ] {
            assert_eq!(x.len(), y.len());
            for (p, q) in x.iter().zip(y.iter()) {
                assert_eq!(p.to_bits(), q.to_bits());
            }
        }
    }

    #[test]
    fn raw_round_trip() {
        let t = sample(257, 3);
        let blob = encode(&t, false);
        assert_eq!(blob.len(), raw_size(t.len()));
        assert_bits_eq(&decode(&blob).unwrap(), &t);
    }

    #[test]
    fn packed_round_trip_and_compresses_sorted_data() {
        let t = sample(4096, 9);
        let blob = encode(&t, true);
        assert!(blob.len() < raw_size(t.len()), "{} vs {}", blob.len(), raw_size(t.len()));
        assert_bits_eq(&decode(&blob).unwrap(), &t);
    }

    #[test]
    fn special_bit_patterns_survive() {
        let mut t = TileData::default();
        let specials = [
            f32::NAN,
            f32::from_bits(0x7fc0_dead), // NaN payload
            f32::from_bits(0xffc0_0001), // negative quiet NaN
            -0.0,
            0.0,
            f32::INFINITY,
            f32::NEG_INFINITY,
            f32::MIN_POSITIVE / 2.0, // subnormal
            f32::from_bits(1),       // smallest subnormal
            1.0,
        ];
        for (i, &v) in specials.iter().enumerate() {
            t.cell.push(i as u32);
            t.dx.push(v);
            t.dy.push(-v);
            t.dz.push(v);
            t.ux.push(v);
            t.uy.push(v);
            t.uz.push(-v);
            t.w.push(v);
            t.id.push(u64::MAX - i as u64);
        }
        for compress in [false, true] {
            let blob = encode(&t, compress);
            assert_bits_eq(&decode(&blob).unwrap(), &t);
        }
    }

    #[test]
    fn empty_tile_round_trips() {
        let t = TileData::default();
        for compress in [false, true] {
            assert_bits_eq(&decode(&encode(&t, compress)).unwrap(), &t);
        }
    }

    #[test]
    fn decode_into_reuses_capacity() {
        let big = sample(1000, 1);
        let small = sample(10, 2);
        let mut t = TileData::default();
        decode_into(&encode(&big, true), &mut t).unwrap();
        let caps = (t.cell.capacity(), t.dx.capacity(), t.id.capacity());
        decode_into(&encode(&small, true), &mut t).unwrap();
        assert_bits_eq(&t, &small);
        assert_eq!((t.cell.capacity(), t.dx.capacity(), t.id.capacity()), caps);
    }

    #[test]
    fn truncation_and_garbage_are_typed_errors() {
        let t = sample(100, 5);
        for compress in [false, true] {
            let blob = encode(&t, compress);
            for cut in [0, 3, 5, 12, blob.len() / 2, blob.len() - 1] {
                assert!(decode(&blob[..cut]).is_err(), "cut at {cut} must fail");
            }
            let mut trailing = blob.clone();
            trailing.push(0);
            assert!(decode(&trailing).is_err());
        }
        assert_eq!(decode(b"nope"), Err(DecodeError::Truncated));
        assert_eq!(decode(b"XXXX\0\0\0\0\0\0\0\0\0"), Err(DecodeError::BadMagic));
        let mut badflags = encode(&t, false);
        badflags[4] = 0x80;
        assert_eq!(decode(&badflags), Err(DecodeError::BadFlags(0x80)));
    }

    #[test]
    fn varint_zigzag_round_trip() {
        for v in [0i64, 1, -1, 127, -128, 300, -300, i64::MAX, i64::MIN] {
            let mut buf = Vec::new();
            put_varint(&mut buf, zigzag(v));
            let mut pos = 0;
            assert_eq!(unzigzag(get_varint(&buf, &mut pos).unwrap()), v);
            assert_eq!(pos, buf.len());
        }
    }
}
