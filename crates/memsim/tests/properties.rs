//! Property tests for the hardware model's invariants.

use memsim::cache::CacheSim;
use memsim::platform;
use memsim::trace::{transaction_count, GatherScatterSpec};
use memsim::{CpuModel, GpuModel};
use proptest::prelude::*;

fn keys_strategy() -> impl Strategy<Value = Vec<u32>> {
    prop::collection::vec(0u32..512, 1..400)
}

proptest! {
    /// Cache hits + misses always equals accesses; hit rate in [0, 1].
    #[test]
    fn cache_accounting_is_exact(
        lines in prop::collection::vec(0u64..256, 1..500),
        capacity_kb in 1u64..64,
        assoc in 1usize..16,
    ) {
        let mut c = CacheSim::new(capacity_kb * 1024, assoc, 64);
        for &l in &lines {
            c.access_line(l);
        }
        let s = c.stats();
        prop_assert_eq!(s.total(), lines.len() as u64);
        prop_assert!(s.hit_rate() >= 0.0 && s.hit_rate() <= 1.0);
        // writebacks never exceed write accesses (here: zero writes)
        prop_assert_eq!(c.total_writebacks(), 0);
    }

    /// A larger cache never produces more misses on the same trace
    /// (fully-associative comparison; LRU anomalies need set conflicts).
    #[test]
    fn bigger_fully_assoc_cache_never_misses_more(
        lines in prop::collection::vec(0u64..128, 1..300),
    ) {
        let run = |cap_lines: u64| {
            let mut c = CacheSim::new(cap_lines * 64, cap_lines as usize, 64);
            for &l in &lines {
                c.access_line(l);
            }
            c.stats().misses
        };
        prop_assert!(run(64) <= run(16), "LRU is a stack algorithm");
        prop_assert!(run(128) <= run(64));
    }

    /// Writeback traffic is bounded by write accesses.
    #[test]
    fn writebacks_bounded_by_writes(
        ops in prop::collection::vec((0u64..128, any::<bool>()), 1..300),
    ) {
        let mut c = CacheSim::new(16 * 64, 4, 64);
        let mut writes = 0u64;
        for &(line, is_write) in &ops {
            if is_write {
                c.access_line_write(line);
                writes += 1;
            } else {
                c.access_line(line);
            }
        }
        prop_assert!(c.total_writebacks() <= writes);
    }

    /// Transaction counts are bounded: between groups and lanes×groups.
    #[test]
    fn transactions_bounded(keys in keys_strategy()) {
        let spec = GatherScatterSpec {
            keys: &keys,
            table_len: 512,
            elem_bytes: 8,
            stencil: &[0],
            stream_bytes: 8.0,
            flops: 1.0,
            atomic: true,
        };
        let groups = keys.len().div_ceil(32) as u64;
        let t = transaction_count(&spec, 32, &[0], 32);
        prop_assert!(t >= groups, "at least one transaction per warp");
        prop_assert!(t <= keys.len() as u64, "at most one per lane");
    }

    /// Model costs are finite, positive, and respect the bandwidth bound:
    /// useful bytes / time never exceeds a few × spec DRAM bandwidth.
    #[test]
    fn model_costs_are_sane(keys in keys_strategy(), gpu in any::<bool>()) {
        let spec = GatherScatterSpec {
            keys: &keys,
            table_len: 512,
            elem_bytes: 8,
            stencil: &[0],
            stream_bytes: 8.0,
            flops: 3.0,
            atomic: true,
        };
        let (cost, bw_limit) = if gpu {
            let p = platform::by_name("A100").unwrap();
            (GpuModel::new(p.clone()).run(&spec), p.dram_bw)
        } else {
            let p = platform::by_name("EPYC 7763").unwrap();
            (CpuModel::new(p.clone()).run(&spec), p.dram_bw)
        };
        prop_assert!(cost.time > 0.0 && cost.time.is_finite());
        prop_assert!(cost.dram_bytes >= 0.0);
        // logical bandwidth can exceed DRAM via cache reuse, but not
        // unboundedly: LLC bandwidth is the ceiling
        prop_assert!(cost.bandwidth() < 50.0 * bw_limit, "{}", cost.bandwidth());
    }

    /// The same trace costs (weakly) more on a platform with strictly
    /// lower bandwidth everywhere (V100 vs H100).
    #[test]
    fn slower_platform_is_never_faster(keys in keys_strategy()) {
        let spec = GatherScatterSpec {
            keys: &keys,
            table_len: 512,
            elem_bytes: 8,
            stencil: &[0],
            stream_bytes: 8.0,
            flops: 3.0,
            atomic: false,
        };
        let h100 = GpuModel::new(platform::by_name("H100").unwrap()).run(&spec);
        let v100 = GpuModel::new(platform::by_name("V100").unwrap()).run(&spec);
        prop_assert!(v100.time >= h100.time * 0.99);
    }
}
