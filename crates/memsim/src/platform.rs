//! Platform descriptors: the reproduction's Table 1.
//!
//! Core counts, last-level cache sizes, and main-memory bandwidths are
//! taken directly from the paper's Table 1. The remaining microarchitectural
//! parameters (latencies, LLC bandwidth, peak FLOP rates, atomic costs) are
//! not in the paper; they are filled in from public vendor specifications
//! and documented per field. They feed the [`crate::cpu`] / [`crate::gpu`]
//! cost models.

use serde::Serialize;

/// CPU socket vs GPU accelerator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum PlatformKind {
    /// Host processor: threads over cores, SIMD lanes within a thread.
    Cpu,
    /// Accelerator: warps over SMs/CUs, coalescing across lanes.
    Gpu,
}

/// Hardware vendor (drives a few model details, e.g. AMD's larger
/// wavefronts and sector sizes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum Vendor {
    /// Intel x86-64.
    Intel,
    /// AMD x86-64 CPUs and CDNA GPUs.
    Amd,
    /// Fujitsu/ARM (A64FX).
    Fujitsu,
    /// Nvidia GPUs and Grace CPUs.
    Nvidia,
}

/// One row of Table 1 plus the model parameters derived from public specs.
#[derive(Debug, Clone, Serialize)]
pub struct Platform {
    /// Display name, matching the paper's figures.
    pub name: &'static str,
    /// CPU or GPU.
    pub kind: PlatformKind,
    /// Hardware vendor.
    pub vendor: Vendor,
    /// Table 1 "Core count": CPU hardware cores, or GPU FP32 lanes
    /// (CUDA cores / stream processors).
    pub cores: usize,
    /// Execution groups that issue independently: CPU cores, GPU SMs/CUs.
    pub compute_units: usize,
    /// Lanes that issue one instruction together: CPU f32 SIMD width,
    /// GPU warp/wavefront width.
    pub warp_width: usize,
    /// Table 1 "Last Level Cache" in bytes.
    pub llc_bytes: u64,
    /// LLC associativity used by the cache simulation.
    pub llc_assoc: usize,
    /// Cache line size in bytes.
    pub line_bytes: u64,
    /// Memory transaction granularity (GPU sector; = line on CPUs).
    pub sector_bytes: u64,
    /// Table 1 "Main Memory Bandwidth" (STREAM Triad), bytes/s.
    pub dram_bw: f64,
    /// Main memory latency, seconds (public spec estimates).
    pub dram_latency: f64,
    /// LLC bandwidth, bytes/s (public spec estimates).
    pub llc_bw: f64,
    /// Peak FP32 throughput, FLOP/s.
    pub peak_flops_f32: f64,
    /// Cost of one serialized atomic RMW at the point of coherence, s.
    pub atomic_ns: f64,
    /// Maximum outstanding memory transactions platform-wide (MLP limit):
    /// caps how much latency can be hidden.
    pub max_inflight: f64,
    /// Main memory capacity in bytes (Table 1 "Main Memory").
    pub mem_bytes: u64,
    /// Memory technology label for Table 1 printing.
    pub mem_kind: &'static str,
}

const GB: u64 = 1024 * 1024 * 1024;
const MB: u64 = 1024 * 1024;
const GBPS: f64 = 1.0e9;

impl Platform {
    /// True for GPU platforms.
    pub fn is_gpu(&self) -> bool {
        self.kind == PlatformKind::Gpu
    }

    /// Warps (or SIMD groups) resident platform-wide assuming full
    /// occupancy: compute_units × (a fixed 16 resident warps per unit on
    /// GPUs, 1 per core on CPUs).
    pub fn resident_warps(&self) -> usize {
        match self.kind {
            PlatformKind::Gpu => self.compute_units * 16,
            PlatformKind::Cpu => self.compute_units,
        }
    }

    /// The paper's tile-size rule (§5.4): "Tile sizes match the number of
    /// CPU threads or three times the number of GPU cores."
    pub fn paper_tile_size(&self) -> usize {
        match self.kind {
            PlatformKind::Cpu => self.cores,
            PlatformKind::Gpu => 3 * self.cores,
        }
    }
}

/// The six CPU platforms of Table 1 (paper §5.1).
pub fn cpus() -> Vec<Platform> {
    vec![
        // Fujitsu A64FX: 48 cores, 32 GB HBM2, 4×8 MB L2 (its LLC), SVE-512.
        Platform {
            name: "A64FX",
            kind: PlatformKind::Cpu,
            vendor: Vendor::Fujitsu,
            cores: 48,
            compute_units: 48,
            warp_width: 16, // 512-bit SVE / f32
            llc_bytes: 32 * MB,
            llc_assoc: 16,
            line_bytes: 256,
            sector_bytes: 256,
            dram_bw: 424.0 * GBPS,
            dram_latency: 135e-9, // HBM2 on A64FX is high latency
            llc_bw: 3600.0 * GBPS,
            peak_flops_f32: 6.8e12, // 48 cores × 2×512-bit FMA @ 2.2 GHz
            atomic_ns: 40e-9,
            max_inflight: 48.0 * 8.0,
            mem_bytes: 32 * GB,
            mem_kind: "HBM",
        },
        // AMD EPYC 7763 (Zen 3, dual socket): 2×64 cores, DDR4-3200.
        Platform {
            name: "EPYC 7763",
            kind: PlatformKind::Cpu,
            vendor: Vendor::Amd,
            cores: 128,
            compute_units: 128,
            warp_width: 8, // AVX2 / f32
            llc_bytes: 256 * MB,
            llc_assoc: 16,
            line_bytes: 64,
            sector_bytes: 64,
            dram_bw: 165.0 * GBPS,
            dram_latency: 95e-9,
            llc_bw: 3000.0 * GBPS,
            peak_flops_f32: 5.0e12, // 128 × 2×256-bit FMA @ 2.45 GHz
            atomic_ns: 25e-9,
            max_inflight: 128.0 * 10.0,
            mem_bytes: 512 * GB,
            mem_kind: "DDR4",
        },
        // Intel Xeon Platinum 8480 (Sapphire Rapids, DDR5): "SPR DDR".
        Platform {
            name: "SPR DDR",
            kind: PlatformKind::Cpu,
            vendor: Vendor::Intel,
            cores: 112,
            compute_units: 112,
            warp_width: 16, // AVX-512 / f32
            llc_bytes: 105 * MB,
            llc_assoc: 15,
            line_bytes: 64,
            sector_bytes: 64,
            dram_bw: 96.77 * GBPS, // paper's measured Triad (low for config used)
            dram_latency: 110e-9,
            llc_bw: 2800.0 * GBPS,
            peak_flops_f32: 10.0e12,
            atomic_ns: 25e-9,
            max_inflight: 112.0 * 10.0,
            mem_bytes: 256 * GB,
            mem_kind: "DDR5",
        },
        // Intel Xeon Max 9480 (Sapphire Rapids + HBM2e): "SPR HBM".
        Platform {
            name: "SPR HBM",
            kind: PlatformKind::Cpu,
            vendor: Vendor::Intel,
            cores: 112,
            compute_units: 112,
            warp_width: 16,
            llc_bytes: 105 * MB,
            llc_assoc: 15,
            line_bytes: 64,
            sector_bytes: 64,
            dram_bw: 266.05 * GBPS,
            dram_latency: 130e-9, // HBM trades latency for bandwidth
            llc_bw: 2800.0 * GBPS,
            peak_flops_f32: 10.0e12,
            atomic_ns: 25e-9,
            max_inflight: 112.0 * 12.0,
            mem_bytes: 128 * GB,
            mem_kind: "HBM2e",
        },
        // Nvidia Grace (dual superchip halves): 2×72 Neoverse V2 cores.
        Platform {
            name: "Grace",
            kind: PlatformKind::Cpu,
            vendor: Vendor::Nvidia,
            cores: 144,
            compute_units: 144,
            warp_width: 4, // 4×128-bit SIMD units; NEON width per issue
            llc_bytes: 114 * MB,
            llc_assoc: 12,
            line_bytes: 64,
            sector_bytes: 64,
            dram_bw: 390.0 * GBPS,
            dram_latency: 105e-9,
            llc_bw: 3200.0 * GBPS,
            peak_flops_f32: 7.1e12,
            atomic_ns: 22e-9,
            max_inflight: 144.0 * 10.0,
            mem_bytes: 480 * GB,
            mem_kind: "LPDDR5X",
        },
        // AMD MI300A CPU side: 24 Zen 4 cores sharing the APU's HBM3.
        Platform {
            name: "MI300A (CPU)",
            kind: PlatformKind::Cpu,
            vendor: Vendor::Amd,
            cores: 24,
            compute_units: 24,
            warp_width: 16, // AVX-512 on Zen 4 (double-pumped)
            llc_bytes: 256 * MB,
            llc_assoc: 16,
            line_bytes: 64,
            sector_bytes: 64,
            dram_bw: 202.18 * GBPS,
            dram_latency: 140e-9,
            llc_bw: 1800.0 * GBPS,
            peak_flops_f32: 2.8e12,
            atomic_ns: 30e-9,
            max_inflight: 24.0 * 10.0,
            mem_bytes: 128 * GB,
            mem_kind: "HBM3",
        },
    ]
}

/// The six GPU platforms of Table 1 (paper §5.1).
pub fn gpus() -> Vec<Platform> {
    vec![
        // Nvidia V100S (Sierra's V100 modelled with the paper's V100S row).
        Platform {
            name: "V100",
            kind: PlatformKind::Gpu,
            vendor: Vendor::Nvidia,
            cores: 5120,
            compute_units: 80,
            warp_width: 32,
            llc_bytes: 6 * MB,
            llc_assoc: 16,
            line_bytes: 128,
            sector_bytes: 32,
            dram_bw: 886.4 * GBPS,
            dram_latency: 425e-9,
            llc_bw: 2700.0 * GBPS,
            peak_flops_f32: 15.7e12,
            atomic_ns: 12e-9,
            max_inflight: 80.0 * 512.0,
            mem_bytes: 32 * GB,
            mem_kind: "HBM2",
        },
        Platform {
            name: "A100",
            kind: PlatformKind::Gpu,
            vendor: Vendor::Nvidia,
            cores: 6912,
            compute_units: 108,
            warp_width: 32,
            llc_bytes: 40 * MB,
            llc_assoc: 16,
            line_bytes: 128,
            sector_bytes: 32,
            dram_bw: 1682.0 * GBPS,
            dram_latency: 400e-9,
            llc_bw: 5000.0 * GBPS,
            peak_flops_f32: 19.5e12,
            atomic_ns: 9e-9,
            max_inflight: 108.0 * 512.0,
            mem_bytes: 80 * GB,
            mem_kind: "HBM2e",
        },
        Platform {
            name: "H100",
            kind: PlatformKind::Gpu,
            vendor: Vendor::Nvidia,
            cores: 16896,
            compute_units: 132,
            warp_width: 32,
            llc_bytes: 50 * MB,
            llc_assoc: 16,
            line_bytes: 128,
            sector_bytes: 32,
            dram_bw: 3713.0 * GBPS,
            dram_latency: 380e-9,
            llc_bw: 8000.0 * GBPS,
            peak_flops_f32: 66.9e12,
            atomic_ns: 6e-9,
            max_inflight: 132.0 * 512.0,
            mem_bytes: 96 * GB,
            mem_kind: "HBM3",
        },
        // AMD MI100 (CDNA1): 120 CUs, wave64.
        Platform {
            name: "MI100",
            kind: PlatformKind::Gpu,
            vendor: Vendor::Amd,
            cores: 7680,
            compute_units: 120,
            warp_width: 64,
            llc_bytes: 8 * MB,
            llc_assoc: 16,
            line_bytes: 128,
            sector_bytes: 64, // CDNA L2 transaction granularity
            dram_bw: 970.9 * GBPS,
            dram_latency: 480e-9,
            llc_bw: 3000.0 * GBPS,
            peak_flops_f32: 23.1e12,
            atomic_ns: 18e-9, // AMD atomics serialize harder at L2 (paper Fig 7)
            max_inflight: 120.0 * 320.0,
            mem_bytes: 32 * GB,
            mem_kind: "HBM2",
        },
        // AMD MI250 (one package, both GCDs; figures use a single GCD where noted).
        Platform {
            name: "MI250",
            kind: PlatformKind::Gpu,
            vendor: Vendor::Amd,
            cores: 13312,
            compute_units: 208,
            warp_width: 64,
            llc_bytes: 16 * MB,
            llc_assoc: 16,
            line_bytes: 128,
            sector_bytes: 64,
            dram_bw: 2498.0 * GBPS,
            dram_latency: 470e-9,
            llc_bw: 6000.0 * GBPS,
            peak_flops_f32: 45.3e12,
            atomic_ns: 16e-9,
            max_inflight: 208.0 * 320.0,
            mem_bytes: 128 * GB,
            mem_kind: "HBM2e",
        },
        // AMD MI300A GPU side: 228 CUs + 256 MB Infinity Cache.
        Platform {
            name: "MI300A (GPU)",
            kind: PlatformKind::Gpu,
            vendor: Vendor::Amd,
            cores: 14592,
            compute_units: 228,
            warp_width: 64,
            llc_bytes: 256 * MB,
            llc_assoc: 16,
            line_bytes: 128,
            sector_bytes: 64,
            dram_bw: 3254.0 * GBPS,
            dram_latency: 500e-9,
            llc_bw: 6500.0 * GBPS,
            peak_flops_f32: 61.3e12,
            atomic_ns: 14e-9,
            max_inflight: 228.0 * 320.0,
            mem_bytes: 128 * GB,
            mem_kind: "HBM3",
        },
    ]
}

/// All twelve platforms, CPUs first (Table 1 order).
pub fn all() -> Vec<Platform> {
    let mut v = cpus();
    v.extend(gpus());
    v
}

/// Look up a platform by (case-insensitive) name.
pub fn by_name(name: &str) -> Option<Platform> {
    all().into_iter().find(|p| p.name.eq_ignore_ascii_case(name))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twelve_platforms_six_each() {
        assert_eq!(cpus().len(), 6);
        assert_eq!(gpus().len(), 6);
        assert_eq!(all().len(), 12);
        assert!(cpus().iter().all(|p| p.kind == PlatformKind::Cpu));
        assert!(gpus().iter().all(|p| p.kind == PlatformKind::Gpu));
    }

    #[test]
    fn names_unique_and_lookup_works() {
        let names: Vec<&str> = all().iter().map(|p| p.name).collect();
        let mut dedup = names.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len());
        assert!(by_name("a100").is_some());
        assert!(by_name("H100").is_some());
        assert!(by_name("Xeon 9999").is_none());
    }

    #[test]
    fn table1_core_counts_match_paper() {
        // spot-check the paper's Table 1 values survived transcription
        assert_eq!(by_name("A64FX").unwrap().cores, 48);
        assert_eq!(by_name("EPYC 7763").unwrap().cores, 128);
        assert_eq!(by_name("V100").unwrap().cores, 5120);
        assert_eq!(by_name("H100").unwrap().cores, 16896);
        assert_eq!(by_name("MI250").unwrap().cores, 13312);
        assert_eq!(by_name("MI300A (GPU)").unwrap().cores, 14592);
    }

    #[test]
    fn table1_bandwidth_and_cache_match_paper() {
        let h100 = by_name("H100").unwrap();
        assert_eq!(h100.dram_bw, 3713.0e9);
        assert_eq!(h100.llc_bytes, 50 * 1024 * 1024);
        let a64 = by_name("A64FX").unwrap();
        assert_eq!(a64.dram_bw, 424.0e9);
        assert_eq!(a64.llc_bytes, 32 * 1024 * 1024);
        let mi300 = by_name("MI300A (GPU)").unwrap();
        assert_eq!(mi300.llc_bytes, 256 * 1024 * 1024);
    }

    #[test]
    fn physically_sane_parameters() {
        for p in all() {
            assert!(p.llc_bw > p.dram_bw, "{}: LLC must outrun DRAM", p.name);
            assert!(p.sector_bytes <= p.line_bytes, "{}", p.name);
            assert!(p.warp_width >= 1 && p.compute_units >= 1, "{}", p.name);
            assert!(p.dram_latency > 0.0 && p.atomic_ns > 0.0, "{}", p.name);
            assert!(p.peak_flops_f32 > 1e12, "{}", p.name);
            assert!(p.llc_bytes < p.mem_bytes, "{}", p.name);
        }
    }

    #[test]
    fn paper_tile_rule() {
        assert_eq!(by_name("EPYC 7763").unwrap().paper_tile_size(), 128);
        assert_eq!(by_name("A100").unwrap().paper_tile_size(), 3 * 6912);
    }

    #[test]
    fn gpu_resident_warps_exceed_cpu() {
        assert!(by_name("A100").unwrap().resident_warps() > by_name("Grace").unwrap().resident_warps());
    }
}
