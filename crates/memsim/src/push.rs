//! GPU particle-push cost model (paper Figs 7, 8, 9 and the per-GPU term
//! of Fig 10).
//!
//! The VPIC particle push, seen by the memory system, is per particle:
//!
//! 1. **stream** — load the particle record, store it back (`particle_bytes`);
//! 2. **gather** — read the cell's interpolator coefficients
//!    (`interp_bytes`, shared by every particle in the cell);
//! 3. **compute** — the Boris rotation etc. (`flops_per_particle`);
//! 4. **scatter** — atomically accumulate the particle's current into the
//!    cell's accumulator (`accum_bytes`, `atomic_ops_per_particle` words).
//!
//! What sorting changes is only the *order* of `cells`, and therefore the
//! warp-level coalescing, the cache residency of the per-cell data, and
//! the atomic conflict rate — exactly the quantities this model counts.

use crate::cache::CacheSim;
use crate::gpu::GpuModel;
use crate::trace::KernelCost;
use serde::Serialize;

/// Interpolator coefficients gathered per cell: 18 f32 fields plus
/// alignment padding and neighbor metadata ≈ 240 B (VPIC's
/// `interpolator_t` is 18 floats; the padded/indexed form rounds to 240).
pub const INTERP_BYTES: u64 = 240;

/// Current accumulator scattered per cell: 12 f32 components with the
/// 4-way bank replication VPIC uses ≈ 192 B.
pub const ACCUM_BYTES: u64 = 192;

/// Per-cell cache footprint during the push (interpolator + accumulator).
/// 432 B/cell puts the V100's 6 MB LLC at ≈14.5 k resident cells,
/// matching the paper's Fig 9 peak at 13,824 grid points.
pub const CELL_FOOTPRINT_BYTES: u64 = INTERP_BYTES + ACCUM_BYTES;

/// Particle record streamed per push: 8 f32 fields (dx,dy,dz,cell,
/// ux,uy,uz,w) read and written = 64 B.
pub const PARTICLE_BYTES: u64 = 64;

/// FLOPs per particle push (field interpolation + Boris rotation +
/// current form factors), from counting the VPIC kernel.
pub const FLOPS_PER_PARTICLE: f64 = 250.0;

/// Atomic accumulator words updated per particle (12 current components).
pub const ATOMIC_OPS_PER_PARTICLE: u64 = 12;

/// A particle-push workload: the per-particle cell indices in execution
/// order plus the kernel's per-particle costs.
#[derive(Debug, Clone)]
pub struct PushSpec<'a> {
    /// Cell index of each particle, in the order the kernel visits them.
    pub cells: &'a [u32],
    /// Total grid cells (addressable interpolator/accumulator entries).
    pub grid_cells: usize,
    /// Bytes gathered per cell visit.
    pub interp_bytes: u64,
    /// Bytes scattered (atomically) per cell visit.
    pub accum_bytes: u64,
    /// Bytes streamed per particle (record read + write).
    pub particle_bytes: u64,
    /// FLOPs per particle.
    pub flops_per_particle: f64,
    /// Atomic word updates per particle.
    pub atomic_ops: u64,
}

impl<'a> PushSpec<'a> {
    /// A spec with the VPIC default per-particle costs.
    pub fn vpic(cells: &'a [u32], grid_cells: usize) -> Self {
        Self {
            cells,
            grid_cells,
            interp_bytes: INTERP_BYTES,
            accum_bytes: ACCUM_BYTES,
            particle_bytes: PARTICLE_BYTES,
            flops_per_particle: FLOPS_PER_PARTICLE,
            atomic_ops: ATOMIC_OPS_PER_PARTICLE,
        }
    }

    /// Number of particles.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// True when there are no particles.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// The grid's cache footprint under this spec.
    pub fn grid_footprint(&self) -> u64 {
        self.grid_cells as u64 * (self.interp_bytes + self.accum_bytes)
    }
}

/// Cache footprint of a grid's per-cell push data (interpolator +
/// accumulator) at the default VPIC record sizes.
pub fn grid_footprint_bytes(cells: usize) -> u64 {
    cells as u64 * CELL_FOOTPRINT_BYTES
}

/// The paper's superlinear-scaling heuristic as a predicate: does the
/// per-rank grid's push working set fit in the platform's last-level
/// cache? When it does, gather/scatter traffic stays cache-resident and
/// sorting particles buys little — `cluster::scaling` uses this to model
/// the strong-scaling cliff and the adaptive tuner uses the *same*
/// function to seed its search from "sorting off".
pub fn grid_fits_llc(platform: &crate::platform::Platform, cells: usize) -> bool {
    grid_footprint_bytes(cells) <= platform.llc_bytes
}

/// Full push working set: the grid's per-cell data *plus* the particle
/// records streaming through the cache. The grid-only footprint is the
/// steady-state floor (records stream once per step); this is the bound
/// that matters when a *tile* of particles must stay resident while the
/// kernel traverses it (DESIGN §14).
pub fn working_set_bytes(cells: usize, particles: usize) -> u64 {
    grid_footprint_bytes(cells) + particles as u64 * PARTICLE_BYTES
}

/// Particle-bytes-aware variant of [`grid_fits_llc`]: does a working set
/// of `cells` grid cells and `particles` resident particle records fit
/// the platform's LLC?
pub fn fits_llc_with_particles(
    platform: &crate::platform::Platform,
    cells: usize,
    particles: usize,
) -> bool {
    working_set_bytes(cells, particles) <= platform.llc_bytes
}

/// Largest cell-range tile (in grid cells) whose push working set —
/// per-cell interpolator + accumulator data and `ppc` resident particle
/// records per cell — fits the platform's LLC. Never returns 0: a
/// degenerate 1-cell tile is always allowed, it just spills.
/// `core`'s tiled engine takes this as its `tile_cells` policy knob.
pub fn llc_tile_cells(platform: &crate::platform::Platform, ppc: usize) -> usize {
    let per_cell = CELL_FOOTPRINT_BYTES + ppc as u64 * PARTICLE_BYTES;
    ((platform.llc_bytes / per_cell) as usize).max(1)
}

/// Outcome of a modelled push, with the paper's Fig 9 metric attached.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct PushCost {
    /// Full bottleneck decomposition.
    pub cost: KernelCost,
    /// Particles pushed per nanosecond (Fig 9's y-axis).
    pub pushes_per_ns: f64,
}

/// Model the push kernel on a GPU.
///
/// The kernel is accounted in *steady state* (the paper times many steps
/// of a running simulation): a warm-up pass populates the cache before
/// the measured pass counts misses.
pub fn gpu_push(model: &GpuModel, spec: &PushSpec<'_>) -> PushCost {
    let p = model.platform();
    let w = p.warp_width;
    let sector = p.sector_bytes;
    let n = spec.len() as f64;
    let mut llc = CacheSim::new(model.llc_bytes(), p.llc_assoc, sector);

    let interp_sectors = spec.interp_bytes.div_ceil(sector);
    let accum_sectors = spec.accum_bytes.div_ceil(sector);
    // address-space split: interpolators first, accumulators after
    let accum_base_sector = spec.grid_cells as u64 * interp_sectors;

    let mut transactions: u64 = 0;
    let mut gather_misses: u64 = 0;
    let mut scatter_misses: u64 = 0;
    let mut conflicts: u64 = 0;
    let mut seq_pairs: u64 = 0;
    let mut total_pairs: u64 = 0;
    let mut distinct: Vec<u64> = Vec::with_capacity(w);

    for pass in 0..2 {
        let measured = pass == 1;
        for warp in spec.cells.chunks(w) {
            distinct.clear();
            distinct.extend(warp.iter().map(|&c| c as u64));
            distinct.sort_unstable();
            distinct.dedup();
            let d = distinct.len() as u64;
            if measured {
                // DRAM row/burst locality: adjacent cell records stream
                // at full bandwidth, scattered ones pay row-activation
                // overhead
                if d >= 2 {
                    total_pairs += d - 1;
                    for pair in distinct.windows(2) {
                        if pair[1] == pair[0] + 1 {
                            seq_pairs += 1;
                        }
                    }
                }
                transactions += d * (interp_sectors + accum_sectors);
                // intra-warp atomic serialization: colliding replays
                conflicts += (warp.len() as u64 - d) * spec.atomic_ops;
            }
            // gather: every distinct cell's interpolator sectors
            for &c in &distinct {
                for s in 0..interp_sectors {
                    if !llc.access_line(c * interp_sectors + s) && measured {
                        gather_misses += 1;
                    }
                }
            }
            // scatter: every distinct cell's accumulator sectors
            for &c in &distinct {
                for s in 0..accum_sectors {
                    if !llc.access_line(accum_base_sector + c * accum_sectors + s)
                        && measured
                    {
                        scatter_misses += 1;
                    }
                }
            }
        }
    }

    // colliding writes during current deposition (the paper's hypothesis
    // for the A100 fall-off at very high particles-per-cell): among the
    // particles concurrently in flight (≈ the platform's MLP window), the
    // hottest cell's updates serialize, each replay exposing part of the
    // memory round trip rather than just the atomic ALU cost.
    let window = (p.max_inflight as usize).max(1);
    let hottest = window_hotness(spec, window) * spec.atomic_ops;
    let replay_cost = p.atomic_ns + p.dram_latency / 4.0;
    // intra-warp conflict replays also re-arbitrate at the L2
    let conflict_cost = p.atomic_ns + p.dram_latency / 8.0;

    let stream_bytes = n * spec.particle_bytes as f64;
    let dram_bytes =
        (gather_misses + 2 * scatter_misses) as f64 * sector as f64 + stream_bytes;
    let llc_traffic = transactions as f64 * sector as f64 + stream_bytes;
    let flops = n * spec.flops_per_particle;
    let cus = p.compute_units as f64;
    // scattered (non-sequential) record streams lose DRAM row locality;
    // CDNA parts degrade harder on scattered traffic (paper Fig 7:
    // "vendor-specific cache and memory differences play a key role")
    let seq_fraction = if total_pairs == 0 {
        1.0
    } else {
        seq_pairs as f64 / total_pairs as f64
    };
    let eff_floor = match p.vendor {
        crate::platform::Vendor::Amd => 0.30,
        _ => 0.45,
    };
    let dram_eff = eff_floor + (1.0 - eff_floor) * seq_fraction;

    let cost = KernelCost {
        dram_bytes,
        llc_bytes: llc_traffic,
        useful_bytes: stream_bytes
            + n * (spec.interp_bytes + 2 * spec.accum_bytes) as f64,
        flops,
        t_dram: dram_bytes / (p.dram_bw * dram_eff),
        t_llc: llc_traffic / p.llc_bw,
        t_issue: transactions as f64 / (cus * 1.0e9),
        t_atomic: (conflicts as f64 * conflict_cost / cus)
            .max(hottest as f64 * replay_cost),
        t_latency: transactions as f64 * p.dram_latency / p.max_inflight,
        t_compute: flops / p.peak_flops_f32,
        ..Default::default()
    }
    .finish();

    let pushes_per_ns = if cost.time > 0.0 { n / cost.time / 1e9 } else { 0.0 };
    PushCost { cost, pushes_per_ns }
}

/// Largest same-cell multiplicity within any `window` of consecutive
/// particles — the number of *temporally clustered* colliding writes.
/// A strided order spreads a cell's particles across the whole stream
/// (multiplicity ≈ 1 per window); a tiny grid makes every window hot.
fn window_hotness(spec: &PushSpec<'_>, window: usize) -> u64 {
    if spec.cells.is_empty() {
        return 0;
    }
    let mut counts = vec![0u32; spec.grid_cells];
    let mut touched: Vec<u32> = Vec::new();
    let mut best = 0u32;
    for chunk in spec.cells.chunks(window.max(1)) {
        for &c in chunk {
            let v = counts[c as usize] + 1;
            counts[c as usize] = v;
            if v == 1 {
                touched.push(c);
            }
            if v > best {
                best = v;
            }
        }
        for &c in &touched {
            counts[c as usize] = 0;
        }
        touched.clear();
    }
    best as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platform;

    fn random_cells(n: usize, grid: usize, seed: u64) -> Vec<u32> {
        let mut s = seed | 1;
        (0..n)
            .map(|_| {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                ((s >> 33) % grid as u64) as u32
            })
            .collect()
    }

    #[test]
    fn cell_footprint_matches_fig9_calibration() {
        // 6 MB V100 LLC / 432 B per cell ≈ 14.5k cells ≈ the paper's
        // 13,824-point peak
        let v100 = platform::by_name("V100").unwrap();
        let resident = v100.llc_bytes / CELL_FOOTPRINT_BYTES;
        assert!((12_000..20_000).contains(&resident), "{resident}");
    }

    #[test]
    fn grid_fits_llc_matches_platform_data() {
        // V100: 6 MB LLC / 432 B per cell → the Fig 9 peak grid
        // (24³ = 13,824 cells) fits; the next refinement does not
        let v100 = platform::by_name("V100").unwrap();
        assert!(grid_fits_llc(&v100, 13_824));
        assert!(!grid_fits_llc(&v100, 48 * 48 * 24));
        // EPYC 7763 (256 MB L3) holds over half a million cells
        let milan = platform::by_name("EPYC 7763").unwrap();
        assert!(grid_fits_llc(&milan, 500_000));
        assert!(!grid_fits_llc(&milan, 1_000_000));
        assert_eq!(grid_footprint_bytes(1), CELL_FOOTPRINT_BYTES);
    }

    #[test]
    fn particle_aware_working_set_matches_table1_platforms() {
        assert_eq!(working_set_bytes(100, 0), grid_footprint_bytes(100));
        assert_eq!(working_set_bytes(100, 7), 100 * 432 + 7 * 64);
        // V100 (6 MB LLC): the Fig 9 peak grid fits bare, but at 64
        // particles per cell the particle records push it out
        let v100 = platform::by_name("V100").unwrap();
        assert!(fits_llc_with_particles(&v100, 13_824, 0));
        assert!(!fits_llc_with_particles(&v100, 13_824, 64 * 13_824));
        // EPYC 7763 (256 MB L3) holds the same population with room
        let milan = platform::by_name("EPYC 7763").unwrap();
        assert!(fits_llc_with_particles(&milan, 13_824, 64 * 13_824));
    }

    #[test]
    fn llc_tile_cells_scales_with_cache_and_occupancy() {
        let v100 = platform::by_name("V100").unwrap();
        let a100 = platform::by_name("A100").unwrap();
        let h100 = platform::by_name("H100").unwrap();
        let milan = platform::by_name("EPYC 7763").unwrap();
        for ppc in [0usize, 4, 64, 4096] {
            // a bigger LLC always allows at least as large a tile
            let t_v100 = llc_tile_cells(&v100, ppc);
            let t_a100 = llc_tile_cells(&a100, ppc);
            let t_h100 = llc_tile_cells(&h100, ppc);
            let t_milan = llc_tile_cells(&milan, ppc);
            assert!(t_v100 <= t_a100 && t_a100 <= t_h100 && t_h100 <= t_milan);
            // the returned tile actually fits (or is the 1-cell floor)
            for (p, t) in
                [(&v100, t_v100), (&a100, t_a100), (&h100, t_h100), (&milan, t_milan)]
            {
                assert!(t >= 1);
                if t > 1 {
                    assert!(fits_llc_with_particles(p, t, ppc * t), "tile must fit");
                    assert!(
                        !fits_llc_with_particles(p, t + 1, ppc * (t + 1)),
                        "tile must be maximal"
                    );
                }
            }
        }
        // V100 at 4 ppc: 6 MB / (432 + 4·64) B ≈ 9.1k cells
        let t = llc_tile_cells(&v100, 4);
        assert!((8_000..10_000).contains(&t), "{t}");
        // heavy occupancy shrinks tiles hard: 4096 ppc ≈ 262 KB/cell
        assert!(llc_tile_cells(&v100, 4096) < 32);
    }

    #[test]
    fn grid_in_cache_is_faster_than_grid_out_of_cache() {
        let v100 = platform::by_name("V100").unwrap();
        let model = GpuModel::new(v100);
        let n = 200_000;
        let small = random_cells(n, 10_000, 7);
        let large = random_cells(n, 400_000, 7);
        let fast = gpu_push(&model, &PushSpec::vpic(&small, 10_000));
        let slow = gpu_push(&model, &PushSpec::vpic(&large, 400_000));
        assert!(
            fast.pushes_per_ns > 1.5 * slow.pushes_per_ns,
            "cache-resident grid must be much faster: {} vs {}",
            fast.pushes_per_ns,
            slow.pushes_per_ns
        );
    }

    #[test]
    fn tiny_grid_collapses_under_colliding_writes() {
        let a100 = platform::by_name("A100").unwrap();
        let model = GpuModel::new(a100);
        let n = 200_000;
        let tiny = random_cells(n, 32, 3);
        let good = random_cells(n, 50_000, 3);
        let c_tiny = gpu_push(&model, &PushSpec::vpic(&tiny, 32));
        let c_good = gpu_push(&model, &PushSpec::vpic(&good, 50_000));
        assert!(
            c_tiny.pushes_per_ns < c_good.pushes_per_ns,
            "very high particles-per-cell must be slower (Fig 9 left edge)"
        );
        assert_eq!(c_tiny.cost.bottleneck(), "atomics");
    }

    #[test]
    fn fig9_peaks_are_ordered_v100_a100_mi300a() {
        // at each GPU's own optimal grid size, newer GPUs push faster
        let n = 200_000;
        let peak_of = |name: &str, grid: usize| {
            let p = platform::by_name(name).unwrap();
            let cells = random_cells(n, grid, 11);
            gpu_push(&GpuModel::new(p), &PushSpec::vpic(&cells, grid)).pushes_per_ns
        };
        let v100 = peak_of("V100", 13_824);
        let a100 = peak_of("A100", 85_184);
        let mi300 = peak_of("MI300A (GPU)", 39_304);
        assert!(v100 < a100, "paper: ~4 vs ~6 pushes/ns ({v100:.2} vs {a100:.2})");
        assert!(a100 < mi300, "paper: ~6 vs ~9 pushes/ns ({a100:.2} vs {mi300:.2})");
        // magnitudes within a factor ~3 of the paper's 4/6/9
        assert!((1.0..=14.0).contains(&v100), "{v100}");
        assert!((2.0..=20.0).contains(&a100), "{a100}");
        assert!((3.0..=30.0).contains(&mi300), "{mi300}");
    }

    #[test]
    fn sorted_cells_reduce_transactions_but_raise_conflicts() {
        let grid = 50_000;
        let n = 100_000;
        let random = random_cells(n, grid, 5);
        let mut standard = random.clone();
        standard.sort_unstable();
        let model = GpuModel::new(platform::by_name("MI250").unwrap());
        let c_rnd = gpu_push(&model, &PushSpec::vpic(&random, grid));
        let c_std = gpu_push(&model, &PushSpec::vpic(&standard, grid));
        // sorting clusters duplicates: fewer distinct cells per warp →
        // less cache traffic and fewer transactions...
        assert!(c_std.cost.llc_bytes < c_rnd.cost.llc_bytes);
        // ...but more intra-warp atomic conflicts
        assert!(c_std.cost.t_atomic > c_rnd.cost.t_atomic);
    }

    #[test]
    fn empty_spec_is_free() {
        let model = GpuModel::new(platform::by_name("H100").unwrap());
        let cells: Vec<u32> = vec![];
        let c = gpu_push(&model, &PushSpec::vpic(&cells, 10));
        assert_eq!(c.pushes_per_ns, 0.0);
        assert_eq!(c.cost.time, 0.0);
    }

    #[test]
    fn window_hotness_counts() {
        let spec = PushSpec::vpic(&[1, 1, 2, 1, 0], 4);
        // whole stream in one window: cell 1 appears 3 times
        assert_eq!(window_hotness(&spec, 100), 3);
        // window of 2: at most two of the same cell land together
        assert_eq!(window_hotness(&spec, 2), 2);
        // strided-like stream: no window repeats
        let strided = PushSpec::vpic(&[0, 1, 2, 3, 0, 1, 2, 3], 4);
        assert_eq!(window_hotness(&strided, 4), 1);
        assert_eq!(spec.grid_footprint(), 4 * 432);
        assert_eq!(spec.len(), 5);
    }
}
