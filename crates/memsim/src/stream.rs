//! STREAM Triad through the kernel engines — the model's validation
//! anchor against Table 1's measured bandwidth column.
//!
//! Triad (`a[i] = b[i] + s·c[i]`) is the best case for any memory system:
//! three unit-stride streams, no reuse, no conflicts. Pushing it through
//! the same engines that model the sorting kernels checks that the
//! engines' overhead terms vanish when they should: the achieved
//! bandwidth must come out at (approximately) the platform's `dram_bw`,
//! which *is* the paper's STREAM Triad number.

use crate::cpu::CpuModel;
use crate::gpu::GpuModel;
use crate::platform::{Platform, PlatformKind};
use crate::trace::GatherScatterSpec;

/// Result of a modelled STREAM Triad run.
#[derive(Debug, Clone, Copy)]
pub struct TriadResult {
    /// Modelled runtime in seconds.
    pub time: f64,
    /// Achieved bandwidth, bytes/s (3 streams + write-allocate read).
    pub bandwidth: f64,
    /// Achieved / Table-1 spec bandwidth.
    pub efficiency: f64,
}

/// Model STREAM Triad over `n` f64 elements on `platform`.
pub fn triad(platform: &Platform, n: usize) -> TriadResult {
    // triad as a gather-scatter spec: contiguous unique "keys" make the
    // b-array access a unit-stride gather; a and c are pure streams.
    let keys: Vec<u32> = (0..n as u32).collect();
    let spec = GatherScatterSpec {
        keys: &keys,
        table_len: n,
        elem_bytes: 8,
        stencil: &[0],
        stream_bytes: 16.0, // read c[i], write a[i]
        flops: 2.0,         // one multiply + one add
        atomic: false,
    };
    // keep the simulated table far larger than the (scaled) cache so no
    // phantom reuse appears: scale caches down hard
    let cost = match platform.kind {
        PlatformKind::Gpu => GpuModel::scaled(platform.clone(), 4096.0).run(&spec),
        PlatformKind::Cpu => CpuModel::scaled(platform.clone(), 4096.0).run(&spec),
    };
    // STREAM counts 3 × 8 bytes per element (the paper's Table 1 numbers
    // are standard STREAM Triad reports)
    let useful = 24.0 * n as f64;
    let bandwidth = useful / cost.time;
    TriadResult { time: cost.time, bandwidth, efficiency: bandwidth / platform.dram_bw }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platform;

    #[test]
    fn triad_lands_near_spec_bandwidth_on_every_platform() {
        for p in platform::all() {
            let r = triad(&p, 1 << 19);
            assert!(
                r.efficiency > 0.5 && r.efficiency < 1.3,
                "{}: triad efficiency {:.2} (bw {:.3e} vs spec {:.3e})",
                p.name,
                r.efficiency,
                r.bandwidth,
                p.dram_bw
            );
        }
    }

    #[test]
    fn triad_time_scales_linearly() {
        let p = platform::by_name("A100").unwrap();
        let t1 = triad(&p, 1 << 18).time;
        let t2 = triad(&p, 1 << 19).time;
        let ratio = t2 / t1;
        assert!((1.6..=2.4).contains(&ratio), "doubling n should ~double time: {ratio}");
    }

    #[test]
    fn bandwidth_ordering_follows_table1() {
        let bw = |name: &str| triad(&platform::by_name(name).unwrap(), 1 << 18).bandwidth;
        assert!(bw("H100") > bw("A100"));
        assert!(bw("A100") > bw("V100"));
        assert!(bw("A64FX") > bw("EPYC 7763"));
        assert!(bw("SPR HBM") > bw("SPR DDR"));
    }
}
