//! Kernel descriptions and access-stream statistics.
//!
//! A [`GatherScatterSpec`] describes a kernel by its *actual* key array —
//! the sequence of table indices touched, in execution order, exactly as
//! produced by a sorting algorithm in `psort`. The statistics extracted
//! here (per-group distinct sectors, same-address conflicts, dependency
//! run lengths) are what the paper's mechanisms — coalescing, atomic
//! serialization, reuse — act on.

use serde::Serialize;

/// A gather/scatter kernel over a table, described by its access stream.
#[derive(Debug, Clone)]
pub struct GatherScatterSpec<'a> {
    /// Table indices in execution order (the sorted key array).
    pub keys: &'a [u32],
    /// Number of addressable table entries (`max key + 1` or larger).
    pub table_len: usize,
    /// Bytes per table element (8 for the paper's f64 benchmark).
    pub elem_bytes: u64,
    /// Stencil offsets applied to every key: `[0]` for plain
    /// gather-scatter, five offsets for the paper's 5-point stencil.
    pub stencil: &'a [i64],
    /// Streaming bytes per element (the `values` read plus any ordered
    /// write-back) — traffic that bypasses reuse.
    pub stream_bytes: f64,
    /// Floating-point operations per element.
    pub flops: f64,
    /// Whether the scatter phase is an atomic accumulation.
    pub atomic: bool,
}

impl GatherScatterSpec<'_> {
    /// Number of elements processed.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// True when the stream is empty.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Clamp `key + offset` into the table (paper's stencil benchmark
    /// clamps at the boundary).
    #[inline]
    pub fn stencil_index(&self, key: u32, off: i64) -> u64 {
        let idx = key as i64 + off;
        idx.clamp(0, self.table_len as i64 - 1) as u64
    }

    /// Logical bytes the kernel must move regardless of caching: the
    /// streaming traffic plus one read per stencil point, plus a
    /// read-modify-write (two element moves) for an atomic scatter. This
    /// is the paper's "total amount of data movement" numerator for
    /// bandwidth.
    pub fn useful_bytes(&self) -> f64 {
        let n = self.len() as f64;
        let accesses_per_elem = self.stencil.len() as f64 + if self.atomic { 2.0 } else { 0.0 };
        n * self.stream_bytes + n * accesses_per_elem * self.elem_bytes as f64
    }
}

/// Aggregate statistics of an access stream, grouped by `group` lanes
/// (a GPU warp or a CPU SIMD group).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize)]
pub struct TraceStats {
    /// Number of lane groups processed.
    pub groups: u64,
    /// Distinct memory sectors touched, summed over groups and stencil
    /// points (the GPU transaction count; 32 for a fully divergent warp,
    /// 1 for a broadcast).
    pub transactions: u64,
    /// Same-address overlaps within a group: Σ (multiplicity − 1).
    /// Serialization steps for intra-group atomic conflicts.
    pub conflicts: u64,
    /// Same-address *consecutive-run* overlaps across the whole stream:
    /// Σ (run_length − 1). Dependent-chain length for accumulations.
    pub dep_chain: u64,
}

/// Compute [`TraceStats`] for the scatter target addresses of `spec`,
/// grouping `group` consecutive elements per issue.
pub fn scatter_stats(spec: &GatherScatterSpec<'_>, group: usize) -> TraceStats {
    addr_stats(spec, group, &[0])
}

/// Compute [`TraceStats`] for the gather addresses of `spec` (all stencil
/// points), grouping `group` consecutive elements.
pub fn gather_stats(spec: &GatherScatterSpec<'_>, group: usize) -> TraceStats {
    addr_stats(spec, group, spec.stencil)
}

fn addr_stats(spec: &GatherScatterSpec<'_>, group: usize, stencil: &[i64]) -> TraceStats {
    let group = group.max(1);
    let mut stats = TraceStats::default();
    let sector = spec.elem_bytes.max(1); // conflicts are per element address
    let mut scratch: Vec<u64> = Vec::with_capacity(group * stencil.len());
    for chunk in spec.keys.chunks(group) {
        stats.groups += 1;
        for &off in stencil {
            scratch.clear();
            for &k in chunk {
                scratch.push(spec.stencil_index(k, off) * sector);
            }
            scratch.sort_unstable();
            // distinct elements → conflicts; handled per stencil point
            let mut distinct = 0u64;
            let mut prev = u64::MAX;
            for &a in scratch.iter() {
                if a != prev {
                    distinct += 1;
                    prev = a;
                }
            }
            stats.conflicts += chunk.len() as u64 - distinct;
        }
    }
    // transactions: distinct sectors per group per stencil point
    // (separate pass because sector size differs from element size)
    stats.transactions = transaction_count(spec, group, stencil, 32);
    // dependency runs over the raw stream (group-independent)
    let mut prev = u64::MAX;
    let mut run = 0u64;
    for &k in spec.keys {
        let a = k as u64;
        if a == prev {
            run += 1;
            stats.dep_chain += 1;
        } else {
            prev = a;
            run = 0;
        }
        let _ = run;
    }
    stats
}

/// Count distinct `sector_bytes` sectors touched per group of `group`
/// consecutive elements, summed over groups and stencil points.
pub fn transaction_count(
    spec: &GatherScatterSpec<'_>,
    group: usize,
    stencil: &[i64],
    sector_bytes: u64,
) -> u64 {
    let group = group.max(1);
    let sector_bytes = sector_bytes.max(1);
    let mut total = 0u64;
    let mut scratch: Vec<u64> = Vec::with_capacity(group);
    for chunk in spec.keys.chunks(group) {
        for &off in stencil {
            scratch.clear();
            for &k in chunk {
                scratch.push(spec.stencil_index(k, off) * spec.elem_bytes / sector_bytes);
            }
            scratch.sort_unstable();
            scratch.dedup();
            total += scratch.len() as u64;
        }
    }
    total
}

/// The bottleneck decomposition of a modelled kernel execution.
#[derive(Debug, Clone, Copy, Default, Serialize)]
pub struct KernelCost {
    /// Wall time, seconds (max of the component terms).
    pub time: f64,
    /// DRAM traffic in bytes (cache misses × line size + streaming).
    pub dram_bytes: f64,
    /// Last-level-cache traffic in bytes (all cached accesses).
    pub llc_bytes: f64,
    /// The kernel's logical data movement (bandwidth numerator).
    pub useful_bytes: f64,
    /// Floating-point operations executed.
    pub flops: f64,
    /// Time if DRAM bandwidth were the only limit.
    pub t_dram: f64,
    /// Time if LLC bandwidth were the only limit.
    pub t_llc: f64,
    /// Time if transaction issue were the only limit.
    pub t_issue: f64,
    /// Time if atomic serialization were the only limit.
    pub t_atomic: f64,
    /// Time if memory latency (limited MLP) were the only limit.
    pub t_latency: f64,
    /// Time if peak FLOP throughput were the only limit.
    pub t_compute: f64,
}

impl KernelCost {
    /// Finalize: wall time = the slowest component.
    pub fn finish(mut self) -> Self {
        self.time = self
            .t_dram
            .max(self.t_llc)
            .max(self.t_issue)
            .max(self.t_atomic)
            .max(self.t_latency)
            .max(self.t_compute);
        self
    }

    /// The paper's bandwidth metric: logical data movement / runtime.
    pub fn bandwidth(&self) -> f64 {
        if self.time > 0.0 {
            self.useful_bytes / self.time
        } else {
            0.0
        }
    }

    /// Achieved FLOP/s.
    pub fn gflops(&self) -> f64 {
        if self.time > 0.0 {
            self.flops / self.time / 1e9
        } else {
            0.0
        }
    }

    /// Roofline arithmetic intensity: FLOPs per DRAM byte.
    pub fn arithmetic_intensity(&self) -> f64 {
        if self.dram_bytes > 0.0 {
            self.flops / self.dram_bytes
        } else {
            0.0
        }
    }

    /// Name of the binding bottleneck term.
    pub fn bottleneck(&self) -> &'static str {
        let pairs = [
            (self.t_dram, "dram-bandwidth"),
            (self.t_llc, "llc-bandwidth"),
            (self.t_issue, "issue"),
            (self.t_atomic, "atomics"),
            (self.t_latency, "latency"),
            (self.t_compute, "compute"),
        ];
        pairs
            .iter()
            .max_by(|a, b| a.0.total_cmp(&b.0))
            .map(|p| p.1)
            .unwrap_or("none")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec<'a>(keys: &'a [u32], stencil: &'a [i64]) -> GatherScatterSpec<'a> {
        GatherScatterSpec {
            keys,
            table_len: 1 << 20,
            elem_bytes: 8,
            stencil,
            stream_bytes: 8.0,
            flops: 2.0,
            atomic: true,
        }
    }

    #[test]
    fn contiguous_keys_coalesce() {
        let keys: Vec<u32> = (0..128).collect();
        let s = spec(&keys, &[0]);
        // 32-lane groups of consecutive 8-byte elements: 32*8/32 = 8 sectors
        let t = transaction_count(&s, 32, &[0], 32);
        assert_eq!(t, 4 * 8);
        let st = gather_stats(&s, 32);
        assert_eq!(st.groups, 4);
        assert_eq!(st.conflicts, 0);
        assert_eq!(st.dep_chain, 0);
    }

    #[test]
    fn broadcast_keys_conflict() {
        let keys = vec![7u32; 64];
        let s = spec(&keys, &[0]);
        let t = transaction_count(&s, 32, &[0], 32);
        assert_eq!(t, 2, "same address → one sector per group");
        let st = scatter_stats(&s, 32);
        assert_eq!(st.conflicts, 2 * 31, "31 serialization steps per group");
        assert_eq!(st.dep_chain, 63, "one 64-long run");
    }

    #[test]
    fn random_like_keys_fully_diverge() {
        // widely spread keys: every lane hits its own sector
        let keys: Vec<u32> = (0..64).map(|i| i * 1000).collect();
        let s = spec(&keys, &[0]);
        let t = transaction_count(&s, 32, &[0], 32);
        assert_eq!(t, 64);
        let st = gather_stats(&s, 32);
        assert_eq!(st.conflicts, 0);
    }

    #[test]
    fn stencil_multiplies_transactions() {
        let keys: Vec<u32> = (100..164).collect();
        let five: [i64; 5] = [0, -1, 1, -32, 32];
        let s = spec(&keys, &five);
        let t1 = transaction_count(&s, 32, &[0], 32);
        let t5 = transaction_count(&s, 32, &five, 32);
        assert!(t5 > t1 * 3, "five offsets touch more sectors: {t5} vs {t1}");
    }

    #[test]
    fn stencil_clamps_at_boundaries() {
        let keys = vec![0u32, 1];
        let s = GatherScatterSpec { table_len: 4, ..spec(&keys, &[0]) };
        assert_eq!(s.stencil_index(0, -5), 0);
        assert_eq!(s.stencil_index(1, 100), 3);
        assert_eq!(s.stencil_index(1, 1), 2);
    }

    #[test]
    fn useful_bytes_counts_logical_traffic() {
        let keys: Vec<u32> = (0..10).collect();
        let s = spec(&keys, &[0]); // atomic: gather + RMW scatter, 8B stream
        assert_eq!(s.useful_bytes(), 10.0 * 8.0 + 10.0 * 3.0 * 8.0);
        let g = GatherScatterSpec { atomic: false, ..spec(&keys, &[0]) };
        assert_eq!(g.useful_bytes(), 10.0 * 8.0 + 10.0 * 8.0);
    }

    #[test]
    fn kernel_cost_takes_max_and_names_bottleneck() {
        let c = KernelCost {
            t_dram: 2.0,
            t_llc: 1.0,
            t_issue: 0.5,
            t_atomic: 3.0,
            t_latency: 0.1,
            t_compute: 0.2,
            useful_bytes: 6.0e9,
            flops: 3.0e9,
            dram_bytes: 1.0e9,
            ..Default::default()
        }
        .finish();
        assert_eq!(c.time, 3.0);
        assert_eq!(c.bottleneck(), "atomics");
        assert_eq!(c.bandwidth(), 2.0e9);
        assert_eq!(c.gflops(), 1.0);
        assert_eq!(c.arithmetic_intensity(), 3.0);
    }

    #[test]
    fn dep_chain_counts_runs_not_total_duplicates() {
        let keys = vec![5u32, 5, 5, 9, 5, 5];
        let s = spec(&keys, &[0]);
        let st = scatter_stats(&s, 32);
        // runs: 5,5,5 (2 steps) and 5,5 (1 step)
        assert_eq!(st.dep_chain, 3);
    }
}
