//! Set-associative LRU cache simulation.
//!
//! The model's cache-capacity mechanism: the *real* line-address streams of
//! a kernel (derived from the real sorted key arrays) are pushed through
//! this structure to decide which accesses hit in the last-level cache and
//! which go to DRAM. Everything cache-shaped in the paper — tiled-strided
//! reuse (Figs 5–7), the grid-in-cache performance cliff (Fig 9), and
//! superlinear strong scaling (Fig 10) — falls out of these hit/miss
//! counts.

/// Hit/miss tally from a simulation run.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CacheStats {
    /// Accesses that hit in the cache.
    pub hits: u64,
    /// Accesses that missed (went to the next level).
    pub misses: u64,
}

impl CacheStats {
    /// Total accesses.
    pub fn total(&self) -> u64 {
        self.hits + self.misses
    }

    /// Hit fraction in `[0, 1]`; `1.0` for an empty run.
    pub fn hit_rate(&self) -> f64 {
        if self.total() == 0 {
            1.0
        } else {
            self.hits as f64 / self.total() as f64
        }
    }
}

/// A set-associative cache with true-LRU replacement, indexed by line
/// address.
#[derive(Debug, Clone)]
pub struct CacheSim {
    sets: usize,
    assoc: usize,
    line_bytes: u64,
    /// tag storage: `lines[set * assoc + way]`, u64::MAX = invalid
    lines: Vec<u64>,
    /// LRU stamps parallel to `lines`
    stamps: Vec<u64>,
    /// dirty bits parallel to `lines`
    dirty: Vec<bool>,
    clock: u64,
    stats: CacheStats,
    writebacks: u64,
}

impl CacheSim {
    /// Build a cache of `capacity_bytes` with `assoc` ways and
    /// `line_bytes` lines. Capacity is rounded down to a whole number of
    /// sets (at least one).
    pub fn new(capacity_bytes: u64, assoc: usize, line_bytes: u64) -> Self {
        assert!(assoc >= 1 && line_bytes >= 1);
        let total_lines = (capacity_bytes / line_bytes).max(1) as usize;
        let sets = (total_lines / assoc).max(1);
        Self {
            sets,
            assoc,
            line_bytes,
            lines: vec![u64::MAX; sets * assoc],
            stamps: vec![0; sets * assoc],
            dirty: vec![false; sets * assoc],
            clock: 0,
            stats: CacheStats::default(),
            writebacks: 0,
        }
    }

    /// Line size in bytes.
    pub fn line_bytes(&self) -> u64 {
        self.line_bytes
    }

    /// Usable capacity in bytes (after set rounding).
    pub fn capacity_bytes(&self) -> u64 {
        (self.sets * self.assoc) as u64 * self.line_bytes
    }

    /// Touch the line containing byte address `addr` with a read; returns
    /// `true` on hit. Misses install the line, evicting the set's LRU way.
    pub fn access(&mut self, addr: u64) -> bool {
        let line = addr / self.line_bytes;
        self.touch(line, false)
    }

    /// Touch the line containing byte address `addr` with a write
    /// (marks the line dirty; dirty evictions count as writebacks).
    pub fn access_write(&mut self, addr: u64) -> bool {
        let line = addr / self.line_bytes;
        self.touch(line, true)
    }

    /// Read-touch line number `line` directly (callers that already work
    /// in line units avoid the division).
    pub fn access_line(&mut self, line: u64) -> bool {
        self.touch(line, false)
    }

    /// Write-touch line number `line` directly.
    pub fn access_line_write(&mut self, line: u64) -> bool {
        self.touch(line, true)
    }

    fn touch(&mut self, line: u64, write: bool) -> bool {
        self.clock += 1;
        let set = (line as usize) % self.sets;
        let base = set * self.assoc;
        let ways = &self.lines[base..base + self.assoc];
        // hit?
        if let Some(w) = ways.iter().position(|&t| t == line) {
            self.stamps[base + w] = self.clock;
            self.dirty[base + w] |= write;
            self.stats.hits += 1;
            return true;
        }
        // miss: install over LRU (or an invalid way)
        let mut victim = 0;
        let mut oldest = u64::MAX;
        for w in 0..self.assoc {
            if self.lines[base + w] == u64::MAX {
                victim = w;
                break;
            }
            if self.stamps[base + w] < oldest {
                oldest = self.stamps[base + w];
                victim = w;
            }
        }
        if self.lines[base + victim] != u64::MAX && self.dirty[base + victim] {
            self.writebacks += 1;
        }
        self.lines[base + victim] = line;
        self.stamps[base + victim] = self.clock;
        self.dirty[base + victim] = write;
        self.stats.misses += 1;
        false
    }

    /// Dirty lines evicted so far (each owes one line of write traffic).
    pub fn writebacks(&self) -> u64 {
        self.writebacks
    }

    /// Lines currently resident and dirty (write traffic still owed).
    pub fn dirty_resident(&self) -> u64 {
        self.lines
            .iter()
            .zip(&self.dirty)
            .filter(|(&l, &d)| l != u64::MAX && d)
            .count() as u64
    }

    /// Total write traffic owed: evicted writebacks plus resident dirty
    /// lines (which drain at kernel end).
    pub fn total_writebacks(&self) -> u64 {
        self.writebacks + self.dirty_resident()
    }

    /// Current tallies.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Zero the tallies, keeping cache contents (for warm-up then measure).
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    /// Invalidate everything and zero the tallies.
    pub fn flush(&mut self) {
        self.lines.fill(u64::MAX);
        self.stamps.fill(0);
        self.dirty.fill(false);
        self.clock = 0;
        self.stats = CacheStats::default();
        self.writebacks = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cold_misses_then_hits() {
        let mut c = CacheSim::new(1024, 4, 64); // 16 lines, 4 sets
        assert!(!c.access(0));
        assert!(c.access(0));
        assert!(c.access(63)); // same line
        assert!(!c.access(64)); // next line
        assert_eq!(c.stats(), CacheStats { hits: 2, misses: 2 });
    }

    #[test]
    fn working_set_within_capacity_all_hits_after_warmup() {
        let mut c = CacheSim::new(64 * 1024, 8, 64); // 1024 lines
        for line in 0..1000u64 {
            c.access_line(line);
        }
        c.reset_stats();
        for _ in 0..5 {
            for line in 0..1000u64 {
                c.access_line(line);
            }
        }
        assert_eq!(c.stats().hit_rate(), 1.0);
    }

    #[test]
    fn working_set_exceeding_capacity_thrashes_with_lru() {
        let mut c = CacheSim::new(64 * 64, 4, 64); // 64 lines
        // cyclic sweep over 2x capacity: LRU evicts exactly what's next
        for _ in 0..10 {
            for line in 0..128u64 {
                c.access_line(line);
            }
        }
        assert!(
            c.stats().hit_rate() < 0.01,
            "cyclic over-capacity sweep must thrash LRU, got {}",
            c.stats().hit_rate()
        );
    }

    #[test]
    fn lru_evicts_least_recent() {
        // 1 set, 2 ways
        let mut c = CacheSim::new(128, 2, 64);
        c.access_line(0); // miss
        c.access_line(1); // miss (other way)... same set because sets=1
        c.access_line(0); // hit, 1 becomes LRU
        c.access_line(2); // miss, evicts 1
        assert!(c.access_line(0), "0 stays resident");
        assert!(!c.access_line(1), "1 was evicted");
    }

    #[test]
    fn flush_and_reset_behave() {
        let mut c = CacheSim::new(1024, 4, 64);
        c.access_line(7);
        c.flush();
        assert_eq!(c.stats().total(), 0);
        assert!(!c.access_line(7), "flushed line must miss");
        c.reset_stats();
        assert!(c.access_line(7), "reset_stats keeps contents");
    }

    #[test]
    fn capacity_reporting() {
        let c = CacheSim::new(6 * 1024 * 1024, 16, 128);
        assert_eq!(c.capacity_bytes(), 6 * 1024 * 1024);
        assert_eq!(c.line_bytes(), 128);
    }

    #[test]
    fn empty_stats_hit_rate_is_one() {
        let c = CacheSim::new(1024, 2, 64);
        assert_eq!(c.stats().hit_rate(), 1.0);
    }

    #[test]
    fn writebacks_track_dirty_evictions() {
        // 1 set, 2 ways
        let mut c = CacheSim::new(128, 2, 64);
        assert!(!c.access_write(0)); // dirty line 0
        assert!(!c.access(64)); // clean line 1
        assert_eq!(c.total_writebacks(), 1, "one resident dirty line");
        c.access(128); // evicts line 0 (LRU, dirty) → writeback
        assert_eq!(c.writebacks(), 1);
        assert_eq!(c.dirty_resident(), 0);
        c.access(192); // evicts line 1 (clean) → no writeback
        assert_eq!(c.writebacks(), 1);
        assert_eq!(c.total_writebacks(), 1);
    }

    #[test]
    fn write_hit_marks_existing_line_dirty() {
        let mut c = CacheSim::new(1024, 4, 64);
        c.access(0); // clean install
        assert!(c.access_write(32)); // same line, now dirty
        assert_eq!(c.dirty_resident(), 1);
        c.flush();
        assert_eq!(c.total_writebacks(), 0);
    }
}
