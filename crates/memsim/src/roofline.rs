//! Roofline analysis (paper Fig 8).
//!
//! The paper profiles the push kernel with nsight-compute/rocprof and
//! plots achieved FP32 throughput against arithmetic intensity under each
//! sorting order. Here the model's own FLOP and DRAM-byte counters play
//! the role of the profiler: a [`RooflineSample`] is placed under a
//! [`Roofline`] built from the platform's peak FLOP rate and bandwidth.

use crate::platform::Platform;
use crate::trace::KernelCost;
use serde::Serialize;

/// A platform's roofline: the attainable-performance envelope.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct Roofline {
    /// Peak FP32 throughput, FLOP/s.
    pub peak_flops: f64,
    /// Peak DRAM bandwidth, bytes/s.
    pub peak_bw: f64,
}

impl Roofline {
    /// Build from a platform descriptor.
    pub fn of(platform: &Platform) -> Self {
        Self { peak_flops: platform.peak_flops_f32, peak_bw: platform.dram_bw }
    }

    /// Attainable FLOP/s at arithmetic intensity `ai` (FLOP/byte):
    /// `min(peak, ai × bw)`.
    pub fn attainable(&self, ai: f64) -> f64 {
        (ai * self.peak_bw).min(self.peak_flops)
    }

    /// The ridge point: intensity above which the kernel is compute-bound.
    pub fn ridge(&self) -> f64 {
        self.peak_flops / self.peak_bw
    }

    /// Place a kernel cost under this roofline.
    pub fn sample(&self, label: impl Into<String>, cost: &KernelCost) -> RooflineSample {
        let ai = cost.arithmetic_intensity();
        let gflops = cost.gflops();
        RooflineSample {
            label: label.into(),
            arithmetic_intensity: ai,
            gflops,
            peak_fraction: gflops * 1e9 / self.peak_flops,
            attainable_fraction: if self.attainable(ai) > 0.0 {
                gflops * 1e9 / self.attainable(ai)
            } else {
                0.0
            },
        }
    }
}

/// One kernel's position on a roofline plot.
#[derive(Debug, Clone, Serialize)]
pub struct RooflineSample {
    /// Series label (e.g. the sorting order).
    pub label: String,
    /// FLOPs per DRAM byte.
    pub arithmetic_intensity: f64,
    /// Achieved GFLOP/s.
    pub gflops: f64,
    /// Fraction of the platform's absolute FP32 peak.
    pub peak_fraction: f64,
    /// Fraction of the roofline-attainable value at this intensity.
    pub attainable_fraction: f64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platform;

    #[test]
    fn attainable_is_min_of_slopes() {
        let r = Roofline { peak_flops: 10e12, peak_bw: 1e12 };
        assert_eq!(r.ridge(), 10.0);
        assert_eq!(r.attainable(1.0), 1e12);
        assert_eq!(r.attainable(10.0), 10e12);
        assert_eq!(r.attainable(100.0), 10e12);
    }

    #[test]
    fn sample_computes_fractions() {
        let r = Roofline { peak_flops: 10e12, peak_bw: 1e12 };
        let cost = KernelCost {
            flops: 2e12,
            dram_bytes: 1e12,
            t_dram: 1.0,
            ..Default::default()
        }
        .finish();
        let s = r.sample("test", &cost);
        assert_eq!(s.arithmetic_intensity, 2.0);
        assert_eq!(s.gflops, 2000.0);
        assert!((s.peak_fraction - 0.2).abs() < 1e-12);
        assert!((s.attainable_fraction - 1.0).abs() < 1e-12, "memory-bound at its roof");
    }

    #[test]
    fn h100_ridge_is_to_the_right_of_v100() {
        // H100 grew compute faster than bandwidth
        let h = Roofline::of(&platform::by_name("H100").unwrap());
        let v = Roofline::of(&platform::by_name("V100").unwrap());
        assert!(h.ridge() > v.ridge() * 0.9);
        assert!(h.peak_flops > v.peak_flops);
    }
}
